// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// family per table/figure (see DESIGN.md's experiment index):
//
//   - BenchmarkTable1/<row>      — the per-benchmark pipeline behind Table 1;
//     custom metrics report the measured columns (potential, real,
//     exception pairs, hit probability).
//   - BenchmarkOverheadNormal / Hybrid / RaceFuzzer — Table 1's three
//     runtime columns: the same workload under plain random scheduling,
//     with hybrid detection attached, and under RaceFuzzer.
//   - BenchmarkFigure1           — §3.1's example, race + coin-flip errors.
//   - BenchmarkFigure2/prefix=N  — §3.2's sweep: RaceFuzzer hit rate (≈1,
//     independent of N) vs BenchmarkFigure2Baseline (decays with N).
//   - BenchmarkAblation*         — the design-choice ablations DESIGN.md
//     calls out (resolution randomness, livelock monitor).
//   - BenchmarkScheduler / Hybrid / VClock — substrate micro-benchmarks.
//
// Absolute times are machine-local; the paper-comparable signals are the
// custom metrics and the ratios between the overhead benchmarks.
package racefuzzer_test

import (
	"fmt"
	"testing"

	"racefuzzer"
	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/event"
	"racefuzzer/internal/hybrid"
	"racefuzzer/internal/lockset"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/vclock"
)

// BenchmarkTable1 runs the full two-phase pipeline per Table-1 row.
func BenchmarkTable1(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			var potential, real, excPairs int
			var prob float64
			for i := 0; i < b.N; i++ {
				rep := core.Analyze(bm.New(), core.Options{
					Seed:         int64(12345 + i),
					Phase1Trials: bm.Phase1Trials,
					Phase2Trials: 20,
					MaxSteps:     bm.MaxSteps,
				})
				potential = len(rep.Potential)
				real = rep.RealCount()
				excPairs = rep.ExceptionPairCount()
				prob = rep.MeanProbability()
			}
			b.ReportMetric(float64(potential), "potential-races")
			b.ReportMetric(float64(real), "real-races")
			b.ReportMetric(float64(excPairs), "exception-pairs")
			b.ReportMetric(prob, "hit-probability")
		})
	}
}

// overheadProgram is the compute-heavy row used for the runtime columns.
func overheadProgram() racefuzzer.Program { return bench.Moldyn(3, 9, 2) }

// BenchmarkOverheadNormal is Table 1 column 3: plain execution.
func BenchmarkOverheadNormal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched.Run(overheadProgram(), sched.Config{Seed: int64(i), Policy: sched.NewRandomPolicy()})
	}
}

// BenchmarkOverheadHybrid is Table 1 column 4: hybrid detection attached
// (tracks every shared access — the expensive configuration).
func BenchmarkOverheadHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched.Run(overheadProgram(), sched.Config{
			Seed: int64(i), Policy: sched.NewRandomPolicy(),
			Observers: []sched.Observer{hybrid.New()},
		})
	}
}

// BenchmarkOverheadRaceFuzzer is Table 1 column 5: RaceFuzzer tracks only
// synchronization and the single racing pair.
func BenchmarkOverheadRaceFuzzer(b *testing.B) {
	pair := event.MakeStmtPair(bench.MoldynEpotStmt, bench.MoldynEpotStmt)
	for i := 0; i < b.N; i++ {
		core.FuzzRun(overheadProgram(), pair, int64(i), core.Options{})
	}
}

// BenchmarkFigure1 fuzzes the Figure-1 z-pair and reports how often the race
// is created and how often ERROR1 fires (paper: 1.0 and ≈0.5).
func BenchmarkFigure1(b *testing.B) {
	races, errors := 0, 0
	for i := 0; i < b.N; i++ {
		run := core.FuzzRun(bench.Figure1(), bench.Fig1PairZ, int64(i), core.Options{})
		if run.RaceCreated {
			races++
		}
		if len(run.Result.Exceptions) > 0 {
			errors++
		}
	}
	b.ReportMetric(float64(races)/float64(b.N), "race-rate")
	b.ReportMetric(float64(errors)/float64(b.N), "error-rate")
}

// BenchmarkFigure2 is the §3.2 sweep under RaceFuzzer: the race-rate metric
// stays at 1.0 for every prefix length.
func BenchmarkFigure2(b *testing.B) {
	for _, n := range []int{5, 25, 100, 500} {
		n := n
		b.Run(fmt.Sprintf("prefix=%d", n), func(b *testing.B) {
			races, errors := 0, 0
			for i := 0; i < b.N; i++ {
				run := core.FuzzRun(bench.Figure2(n), bench.Fig2Pair, int64(i), core.Options{})
				if run.RaceCreated {
					races++
				}
				if len(run.Result.Exceptions) > 0 {
					errors++
				}
			}
			b.ReportMetric(float64(races)/float64(b.N), "race-rate")
			b.ReportMetric(float64(errors)/float64(b.N), "error-rate")
		})
	}
}

// BenchmarkFigure2Baseline is the same sweep under the simple random
// scheduler: the race-rate metric decays toward 0 as the prefix grows.
func BenchmarkFigure2Baseline(b *testing.B) {
	for _, n := range []int{5, 25, 100, 500} {
		n := n
		b.Run(fmt.Sprintf("prefix=%d", n), func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				w := core.NewRaceWitnessPolicy(sched.NewRandomPolicy(), bench.Fig2Pair)
				sched.Run(bench.Figure2(n), sched.Config{Seed: int64(i), Policy: w})
				if w.Hit() {
					hits++
				}
			}
			b.ReportMetric(float64(hits)/float64(b.N), "race-rate")
		})
	}
}

// BenchmarkAblationResolution compares the paper's random race resolution
// against fixed orders (DESIGN.md ablation 3): fixing the order loses
// roughly half the reachable outcomes, visible in the error-rate metric.
func BenchmarkAblationResolution(b *testing.B) {
	modes := []struct {
		name string
		mode core.ResolutionMode
	}{
		{"random", core.ResolveRandom},
		{"candidate-first", core.ResolveCandidateFirst},
		{"postponed-first", core.ResolvePostponedFirst},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			races, errors := 0, 0
			for i := 0; i < b.N; i++ {
				pol := core.NewRaceFuzzerPolicy(bench.Fig2Pair)
				pol.Resolution = m.mode
				res := sched.Run(bench.Figure2(25), sched.Config{Seed: int64(i), Policy: pol})
				if pol.RaceCreated() {
					races++
				}
				if len(res.Exceptions) > 0 {
					errors++
				}
			}
			b.ReportMetric(float64(races)/float64(b.N), "race-rate")
			b.ReportMetric(float64(errors)/float64(b.N), "error-rate")
		})
	}
}

// BenchmarkAblationLivelockMonitor measures §4's livelock relief with the
// exact moldyn-style pathology the paper describes: one thread is postponed
// at a target statement that never finds a partner, while another spins
// waiting for the postponed thread's result without synchronizing. With the
// livelock monitor, the postponed thread is released after its age bound
// and the program finishes in a few hundred steps; without it, the spinner
// keeps the enabled set non-empty forever — the line-26 rule never fires —
// and the run burns the whole step budget (the aborted-rate metric).
func BenchmarkAblationLivelockMonitor(b *testing.B) {
	target := event.StmtFor("ablation:target")
	const budget = 20_000
	prog := func() racefuzzer.Program {
		return func(mt *racefuzzer.Thread) {
			s := mt.Scheduler()
			loc := s.NewLoc("x")
			spinLoc := s.NewLoc("spin")
			done := false
			a := mt.Fork("a", func(c *racefuzzer.Thread) {
				c.MemWrite(loc, target)
				done = true
			})
			sp := mt.Fork("spin", func(c *racefuzzer.Thread) {
				for !done { // unsynchronized spin on a's progress (fair-scheduler assumption, §4)
					c.MemWrite(spinLoc, event.StmtFor("ablation:spin"))
				}
			})
			mt.Join(a)
			mt.Join(sp)
		}
	}
	for _, cfg := range []struct {
		name string
		age  int
	}{{"monitor-on", 100}, {"monitor-off", -1}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			totalSteps, aborted := 0, 0
			for i := 0; i < b.N; i++ {
				pol := core.NewRaceFuzzerPolicy(event.MakeStmtPair(target, target))
				pol.MaxPostponeAge = cfg.age
				res := sched.Run(prog(), sched.Config{Seed: int64(i), Policy: pol, MaxSteps: budget})
				totalSteps += res.Steps
				if res.Aborted {
					aborted++
				}
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/run")
			b.ReportMetric(float64(aborted)/float64(b.N), "aborted-rate")
		})
	}
}

// BenchmarkScheduler measures raw substrate throughput (steps/second) on a
// lock-ping workload.
func BenchmarkScheduler(b *testing.B) {
	steps := 0
	for i := 0; i < b.N; i++ {
		res := sched.Run(func(mt *racefuzzer.Thread) {
			s := mt.Scheduler()
			lk := s.NewLock("L")
			loc := s.NewLoc("x")
			kids := []*racefuzzer.Thread{}
			for w := 0; w < 4; w++ {
				kids = append(kids, mt.Fork("w", func(c *racefuzzer.Thread) {
					for j := 0; j < 50; j++ {
						c.LockAcquire(lk, event.StmtFor("bs:acq"))
						c.MemWrite(loc, event.StmtFor("bs:w"))
						c.LockRelease(lk, event.StmtFor("bs:rel"))
					}
				}))
			}
			for _, k := range kids {
				mt.Join(k)
			}
		}, sched.Config{Seed: int64(i)})
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
}

// BenchmarkSchedulerMetrics is BenchmarkScheduler with a RunMetrics attached
// to every execution — compare the two to see the cost of the observability
// on-switch (the off-switch cost is asserted near zero by the obs package's
// TestNoopOverhead).
func BenchmarkSchedulerMetrics(b *testing.B) {
	steps := 0
	for i := 0; i < b.N; i++ {
		res := sched.Run(func(mt *racefuzzer.Thread) {
			s := mt.Scheduler()
			lk := s.NewLock("L")
			loc := s.NewLoc("x")
			kids := []*racefuzzer.Thread{}
			for w := 0; w < 4; w++ {
				kids = append(kids, mt.Fork("w", func(c *racefuzzer.Thread) {
					for j := 0; j < 50; j++ {
						c.LockAcquire(lk, event.StmtFor("bs:acq"))
						c.MemWrite(loc, event.StmtFor("bs:w"))
						c.LockRelease(lk, event.StmtFor("bs:rel"))
					}
				}))
			}
			for _, k := range kids {
				mt.Join(k)
			}
		}, sched.Config{Seed: int64(i), Metrics: obs.NewRunMetrics()})
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
}

// BenchmarkHybridDetector measures the phase-1 detector on a synthetic
// event stream (events/op).
func BenchmarkHybridDetector(b *testing.B) {
	evs := make([]event.Event, 0, 1000)
	for i := 0; i < 1000; i++ {
		evs = append(evs, event.Event{
			Kind: event.KindMem, Thread: event.ThreadID(i % 4),
			Stmt: event.StmtFor(fmt.Sprintf("bh:s%d", i%16)),
			Loc:  event.MemLoc(i % 32), Access: event.AccessKind(i % 2),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := hybrid.New()
		d.MaxHistoryPerLoc = 64
		for _, e := range evs {
			d.OnEvent(e)
		}
	}
}

// BenchmarkVClock measures vector-clock join/compare throughput.
func BenchmarkVClock(b *testing.B) {
	a := vclock.New()
	c := vclock.New()
	for i := 0; i < 16; i++ {
		a.Set(event.ThreadID(i), int32(i))
		c.Set(event.ThreadID(15-i), int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := a.Copy()
		x.Join(c)
		_ = x.LessEq(a)
	}
}

// BenchmarkLockset measures the disjointness test on small sets.
func BenchmarkLockset(b *testing.B) {
	s1 := lockset.Of(1, 3, 5, 7)
	s2 := lockset.Of(2, 4, 6, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s1.Disjoint(s2)
	}
}

// BenchmarkDeadlockPipeline measures the deadlock instantiation of active
// testing (predict lock-order cycles, confirm by directed scheduling) on the
// classic bank-transfer ABBA model.
func BenchmarkDeadlockPipeline(b *testing.B) {
	prog := func() racefuzzer.Program {
		return func(mt *racefuzzer.Thread) {
			s := mt.Scheduler()
			l1 := s.NewLock("A")
			l2 := s.NewLock("B")
			t1 := mt.Fork("t1", func(c *racefuzzer.Thread) {
				c.LockAcquire(l1, event.StmtFor("bdl:a1"))
				c.LockAcquire(l2, event.StmtFor("bdl:a2"))
				c.LockRelease(l2, event.StmtFor("bdl:a3"))
				c.LockRelease(l1, event.StmtFor("bdl:a4"))
			})
			t2 := mt.Fork("t2", func(c *racefuzzer.Thread) {
				c.LockAcquire(l2, event.StmtFor("bdl:b1"))
				c.LockAcquire(l1, event.StmtFor("bdl:b2"))
				c.LockRelease(l1, event.StmtFor("bdl:b3"))
				c.LockRelease(l2, event.StmtFor("bdl:b4"))
			})
			mt.Join(t1)
			mt.Join(t2)
		}
	}
	confirmed := 0
	for i := 0; i < b.N; i++ {
		reps := core.AnalyzeDeadlocks(prog(), core.Options{
			Seed: int64(i), Phase1Trials: 4, Phase2Trials: 10,
		})
		for _, r := range reps {
			if r.IsReal {
				confirmed++
			}
		}
	}
	b.ReportMetric(float64(confirmed)/float64(b.N), "confirmed-cycles")
}

// BenchmarkAtomicityPipeline measures the atomicity instantiation on the
// counter++ lost-update pattern.
func BenchmarkAtomicityPipeline(b *testing.B) {
	prog := func() racefuzzer.Program {
		return bench.MustByName("weblech").New()
	}
	confirmed := 0
	for i := 0; i < b.N; i++ {
		reps := core.AnalyzeAtomicity(prog(), core.Options{
			Seed: int64(i), Phase1Trials: 3, Phase2Trials: 10,
		})
		for _, r := range reps {
			if r.IsReal {
				confirmed++
			}
		}
	}
	b.ReportMetric(float64(confirmed)/float64(b.N), "confirmed-violations")
}

// BenchmarkRAPOSBaseline measures the RAPOS partial-order sampler on the
// Figure-2 program — the §6 baseline that motivated race-directedness.
func BenchmarkRAPOSBaseline(b *testing.B) {
	hits := 0
	for i := 0; i < b.N; i++ {
		w := core.NewRaceWitnessPolicy(core.NewRAPOSPolicy(), bench.Fig2Pair)
		sched.Run(bench.Figure2(50), sched.Config{Seed: int64(i), Policy: w})
		if w.Hit() {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "race-rate")
}

// BenchmarkFuzzSetBatched compares the batched multi-pair campaign against
// per-pair campaigns on figure1 (time per confirmed verdict).
func BenchmarkFuzzSetBatched(b *testing.B) {
	pairs := []event.StmtPair{bench.Fig1PairX, bench.Fig1PairZ}
	for i := 0; i < b.N; i++ {
		core.FuzzSet(bench.Figure1(), pairs, core.Options{Seed: int64(i), Phase2Trials: 20})
	}
}

// BenchmarkAnalyzeParallel measures the campaign executor: the full
// two-phase pipeline on jigsaw (the registry's widest phase-2 grid, ≥6
// potential pairs × 50 trials) at increasing worker counts. The reports are
// bit-identical at every width (TestParallelDeterminismRace); only the
// wall-clock changes, and only when GOMAXPROCS offers real cores — on a
// single-core box every width measures the same, plus a little pool
// overhead.
func BenchmarkAnalyzeParallel(b *testing.B) {
	bm := bench.MustByName("jigsaw")
	widths := []int{1, 2, -1} // -1 resolves to runtime.NumCPU()
	for _, w := range widths {
		name := fmt.Sprintf("workers=%d", w)
		if w < 0 {
			name = "workers=numcpu"
		}
		w := w
		b.Run(name, func(b *testing.B) {
			real := 0
			for i := 0; i < b.N; i++ {
				rep := core.Analyze(bm.New(), core.Options{
					Seed:         12345,
					Phase1Trials: bm.Phase1Trials,
					Phase2Trials: 50,
					MaxSteps:     bm.MaxSteps,
					Workers:      w,
				})
				real = rep.RealCount()
			}
			b.ReportMetric(float64(real), "real-races")
		})
	}
}
