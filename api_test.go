package racefuzzer_test

import (
	"testing"

	"racefuzzer"
	"racefuzzer/internal/conc"
)

// These tests exercise the package through its public facade only — the way
// a downstream user would drive it.

// racyProgram has one real race (on data) and one flag-protected false
// alarm (on config), written purely against the public API + conc.
func racyProgram() racefuzzer.Program {
	return func(t *racefuzzer.Thread) {
		data := conc.NewVar(t, "data", 0)
		config := conc.NewVar(t, "config", 0)
		ready := conc.NewVar(t, "ready", false)
		l := conc.NewMutex(t, "L")

		writer := t.Fork("writer", func(c *racefuzzer.Thread) {
			config.Set(c, 7)
			l.Lock(c)
			ready.Set(c, true)
			l.Unlock(c)
			data.Set(c, 1) // real race with the reader
		})
		reader := t.Fork("reader", func(c *racefuzzer.Thread) {
			_ = data.Get(c) // real race
			l.Lock(c)
			ok := ready.Get(c)
			l.Unlock(c)
			if ok {
				_ = config.Get(c) // false alarm: ordered by the flag
			}
		})
		t.Join(writer)
		t.Join(reader)
	}
}

func TestPublicAnalyze(t *testing.T) {
	rep := racefuzzer.Analyze(racyProgram(), racefuzzer.Options{
		Seed: 99, Phase1Trials: 8, Phase2Trials: 50,
	})
	if len(rep.Potential) < 2 {
		t.Fatalf("potential = %v", rep.Potential)
	}
	if rep.RealCount() != 1 {
		t.Fatalf("real = %d, want exactly 1:\n%v", rep.RealCount(), rep.Pairs)
	}
	if rep.MeanProbability() < 0.9 {
		t.Fatalf("probability = %.2f", rep.MeanProbability())
	}
}

func TestPublicDetectThenFuzz(t *testing.T) {
	o := racefuzzer.Options{Seed: 3, Phase1Trials: 8, Phase2Trials: 40}
	pairs := racefuzzer.DetectPotentialRaces(racyProgram(), o)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	realSeen := false
	for i, p := range pairs {
		pr := racefuzzer.FuzzPair(racyProgram(), p, i, o)
		if pr.IsReal {
			realSeen = true
			run := racefuzzer.Replay(racyProgram(), p, pr.FirstRaceSeed, o)
			if !run.RaceCreated {
				t.Fatalf("replay lost the race for %v", p)
			}
			if len(run.Races) == 0 || run.Races[0].LocName == "" {
				t.Fatalf("race record incomplete: %+v", run.Races)
			}
		}
	}
	if !realSeen {
		t.Fatal("no pair confirmed")
	}
}

func TestPublicExplicitStatementLabels(t *testing.T) {
	w := racefuzzer.StmtFor("api:w")
	r := racefuzzer.StmtFor("api:r")
	prog := func(mt *racefuzzer.Thread) {
		v := conc.NewVar(mt, "x", 0)
		t1 := mt.Fork("w", func(c *racefuzzer.Thread) { v.SetAt(c, w, 1) })
		t2 := mt.Fork("r", func(c *racefuzzer.Thread) { _ = v.GetAt(c, r) })
		mt.Join(t1)
		mt.Join(t2)
	}
	pair := racefuzzer.MakeStmtPair(w, r)
	pr := racefuzzer.FuzzPair(prog, pair, 0, racefuzzer.Options{Seed: 2, Phase2Trials: 30})
	if !pr.IsReal || pr.Probability < 0.99 {
		t.Fatalf("explicit-label pair not confirmed: %v", pr)
	}
}

func TestPublicDeadlockPipeline(t *testing.T) {
	prog := func(mt *racefuzzer.Thread) {
		l1 := conc.NewMutex(mt, "A")
		l2 := conc.NewMutex(mt, "B")
		a := mt.Fork("a", func(c *racefuzzer.Thread) {
			l1.Lock(c)
			l2.Lock(c)
			l2.Unlock(c)
			l1.Unlock(c)
		})
		b := mt.Fork("b", func(c *racefuzzer.Thread) {
			l2.Lock(c)
			l1.Lock(c)
			l1.Unlock(c)
			l2.Unlock(c)
		})
		mt.Join(a)
		mt.Join(b)
	}
	reps := racefuzzer.AnalyzeDeadlocks(prog, racefuzzer.Options{Seed: 4, Phase1Trials: 6, Phase2Trials: 20})
	if len(reps) != 1 || !reps[0].IsReal {
		t.Fatalf("deadlock reports = %v", reps)
	}
}

func TestPublicAtomicityPipeline(t *testing.T) {
	prog := func(mt *racefuzzer.Thread) {
		counter := conc.NewIntVar(mt, "counter", 0)
		a := mt.Fork("a", func(c *racefuzzer.Thread) { counter.Add(c, 1) })
		b := mt.Fork("b", func(c *racefuzzer.Thread) { counter.Add(c, 1) })
		mt.Join(a)
		mt.Join(b)
	}
	reps := racefuzzer.AnalyzeAtomicity(prog, racefuzzer.Options{Seed: 6, Phase1Trials: 6, Phase2Trials: 25})
	real := 0
	for _, r := range reps {
		if r.IsReal {
			real++
		}
	}
	if real == 0 {
		t.Fatalf("counter++ violation not confirmed: %v", reps)
	}
}
