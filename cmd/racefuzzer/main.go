// Command racefuzzer runs race-directed random testing on one of the
// built-in benchmark models:
//
//	racefuzzer -list
//	racefuzzer -bench figure1                 # full two-phase analysis
//	racefuzzer -bench cache4j -trials 200     # more fuzzing per pair
//	racefuzzer -bench figure2 -pair 0 -replay 12345 -trace
//
// The tool prints phase-1's potential races, then each pair's verdict:
// whether RaceFuzzer confirmed it real, the race-creation probability, and
// any exceptions exposed by random race resolution. Replays are exact: the
// seed fully determines the schedule.
package main

import (
	"flag"
	"fmt"
	"os"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available benchmarks and exit")
		name    = flag.String("bench", "", "benchmark to analyze (see -list)")
		seed    = flag.Int64("seed", 1, "base seed for the campaign")
		trials  = flag.Int("trials", 100, "RaceFuzzer runs per potential pair")
		phase1  = flag.Int("phase1", 0, "phase-1 observations (0 = benchmark default)")
		pairIdx = flag.Int("pair", -1, "fuzz only the potential pair with this index")
		replay  = flag.Int64("replay", 0, "replay one run of -pair with this exact seed")
		dump    = flag.Bool("trace", false, "with -replay: dump the replayed event trace")
		dlMode  = flag.Bool("deadlocks", false, "run the deadlock-directed pipeline instead of races")
		atMode  = flag.Bool("atomicity", false, "run the atomicity-directed pipeline instead of races")
	)
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-12s %s\n", b.Name, b.Description)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "racefuzzer: -bench is required (try -list)")
		os.Exit(2)
	}
	b, ok := bench.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "racefuzzer: unknown benchmark %q (try -list)\n", *name)
		os.Exit(2)
	}
	opts := core.Options{
		Seed:         *seed,
		Phase1Trials: *phase1,
		Phase2Trials: *trials,
		MaxSteps:     b.MaxSteps,
	}
	if opts.Phase1Trials == 0 {
		opts.Phase1Trials = b.Phase1Trials
	}

	fmt.Printf("== %s: %s\n", b.Name, b.Description)
	if *dlMode {
		reps := core.AnalyzeDeadlocks(b.New(), opts)
		fmt.Printf("deadlock pipeline: %d potential lock cycle(s)\n", len(reps))
		for _, r := range reps {
			fmt.Printf("  %v\n", r)
		}
		return
	}
	if *atMode {
		reps := core.AnalyzeAtomicity(b.New(), opts)
		fmt.Printf("atomicity pipeline: %d inferred block(s)\n", len(reps))
		for _, r := range reps {
			fmt.Printf("  %v\n", r)
		}
		return
	}
	pairs := core.DetectPotentialRaces(b.New(), opts)
	fmt.Printf("phase 1 (hybrid detection, %d observations): %d potential racing pair(s)\n",
		max(opts.Phase1Trials, 3), len(pairs))
	for i, p := range pairs {
		fmt.Printf("  [%d] %v\n", i, p)
	}
	if len(pairs) == 0 {
		return
	}

	if *replay != 0 {
		if *pairIdx < 0 || *pairIdx >= len(pairs) {
			fmt.Fprintln(os.Stderr, "racefuzzer: -replay needs a valid -pair index")
			os.Exit(2)
		}
		pair := pairs[*pairIdx]
		fmt.Printf("\nreplaying pair %v with seed %d\n", pair, *replay)
		var rec *trace.Recorder
		observers := []sched.Observer{}
		if *dump {
			rec = trace.New(200)
			observers = append(observers, rec)
		}
		pol := core.NewRaceFuzzerPolicy(pair)
		res := sched.Run(b.New(), sched.Config{
			Seed: *replay, Policy: pol, MaxSteps: b.MaxSteps, Observers: observers,
		})
		for _, rr := range pol.Races() {
			fmt.Printf("  %v\n", rr)
		}
		for _, ex := range res.Exceptions {
			fmt.Printf("  exception: %v\n", ex)
		}
		if res.Deadlock != nil {
			fmt.Printf("  %v\n", res.Deadlock)
		}
		if rec != nil {
			fmt.Println("\nevent trace (most recent 200):")
			fmt.Print(rec.Dump())
		}
		return
	}

	fmt.Printf("\nphase 2 (RaceFuzzer, %d runs per pair):\n", opts.Phase2Trials)
	realCount, excCount := 0, 0
	for i, pair := range pairs {
		if *pairIdx >= 0 && i != *pairIdx {
			continue
		}
		rep := core.FuzzPair(b.New(), pair, i, opts)
		fmt.Printf("  [%d] %v\n", i, rep)
		if rep.IsReal {
			realCount++
			fmt.Printf("      replay a race-creating run with: -pair %d -replay %d\n", i, rep.FirstRaceSeed)
			if rep.ExceptionRuns > 0 {
				excCount++
				fmt.Printf("      replay an exception-throwing run with: -pair %d -replay %d\n", i, rep.FirstExceptionSeed)
			}
		}
	}
	fmt.Printf("\nsummary: %d potential, %d real, %d with exceptions (paper row: %d potential, %d real)\n",
		len(pairs), realCount, excCount, b.Paper.HybridRaces, b.Paper.RealRaces)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
