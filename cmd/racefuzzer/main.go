// Command racefuzzer runs race-directed random testing on one of the
// built-in benchmark models:
//
//	racefuzzer -list
//	racefuzzer -bench figure1                 # full two-phase analysis
//	racefuzzer -bench cache4j -trials 200     # more fuzzing per pair
//	racefuzzer -bench figure2 -pair 0 -replay 12345 -trace
//	racefuzzer -bench figure1 -metrics -json runs.jsonl -progress
//	racefuzzer -bench figure1 -corpusdir corpus   # dedup against prior runs
//	racefuzzer -corpusdir corpus -budget 600      # adaptive campaign, all benches
//	racefuzzer -corpusdir corpus -regress         # replay every stored witness
//	racefuzzer -corpusdir corpus -budget 600 -coordinate :7070   # fleet campaign
//	racefuzzer -worker http://host:7070           # join a fleet as a worker
//
// The tool prints phase-1's potential races, then each pair's verdict:
// whether RaceFuzzer confirmed it real, the race-creation probability, and
// any exceptions exposed by random race resolution. Replays are exact: the
// seed fully determines the schedule.
//
// Corpus flags (see README "Race corpus"): -corpusdir persists every
// confirmed finding under a canonical signature so repeated campaigns mark
// re-sightings "[known]" and only archive witnesses for new signatures;
// -budget runs the adaptive campaign, splitting one global trial budget
// across targets toward the ones still discovering; -regress replays every
// stored witness and fails (exit 1) on any divergence or signature churn.
//
// Observability flags (see README "Observability"): -metrics prints a
// campaign metrics table, -json writes one structured record per execution
// (JSONL, -jsonflush makes it tail-able), -progress emits periodic campaign
// progress lines to stderr, and -cpuprofile/-memprofile write pprof
// profiles of the campaign. -http serves the live campaign observatory (see
// README "Live monitoring"): an embedded dashboard, Prometheus /metrics,
// an SSE /events stream, /debug/sched scheduler-state snapshots, and
// /debug/perf scheduler latency aggregates. -perfdir exports a Perfetto
// timeline (Chrome trace-event JSON, open in https://ui.perfetto.dev) of
// each target's first confirming trial.
//
// Fleet flags (see README "Fleet campaigns"): -coordinate serves the fleet
// control plane on the given address and runs the -budget campaign on
// remote worker processes, which join with -worker <coordinator URL>. All
// corpus writes stay on the coordinator; workers stream result batches
// back over leases, so the fleet's corpus and findings match the
// single-process campaign at the same budget. -version prints this build's
// provenance — coordinator and workers should run identical builds, since
// that is what makes leased batches re-executable bit-identically.
//
// Analytics flags (see README "Campaign reports"): -report renders the
// offline campaign report (markdown) from a directory holding a run log
// and/or corpus, like cmd/campaignreport; -timing opts into per-run
// durationNs in -json records (off by default so run logs stay
// byte-identical across repeat runs).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"racefuzzer/internal/analytics"
	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/corpus"
	"racefuzzer/internal/fleet"
	"racefuzzer/internal/fleetspan"
	"racefuzzer/internal/flightrec"
	"racefuzzer/internal/harness"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/observatory"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available benchmarks and exit")
		name    = flag.String("bench", "", "benchmark to analyze (see -list)")
		seed    = flag.Int64("seed", 1, "base seed for the campaign")
		trials  = flag.Int("trials", 100, "RaceFuzzer runs per potential pair")
		phase1  = flag.Int("phase1", 0, "phase-1 observations (0 = benchmark default)")
		pairIdx = flag.Int("pair", -1, "fuzz only the potential pair with this index")
		replay  = flag.Int64("replay", 0, "replay one run of -pair with this exact seed")
		dump    = flag.Bool("trace", false, "with -replay: dump the replayed event trace")
		explain = flag.Bool("explain", false, "with -replay: render the race-explanation timeline of the replayed run")
		explTr  = flag.String("explaintrace", "", "explain a saved flight recording (*.trace.jsonl) and exit")
		trDir   = flag.String("tracedir", "", "auto-capture a flight recording of each target's first confirming run into this directory")
		pfDir   = flag.String("perfdir", "", "export a Perfetto timeline (Chrome trace-event JSON) of each target's first confirming trial into this directory")
		dlMode  = flag.Bool("deadlocks", false, "run the deadlock-directed pipeline instead of races")
		atMode  = flag.Bool("atomicity", false, "run the atomicity-directed pipeline instead of races")
		workers = flag.Int("workers", 0, "trial executor workers: 0 or 1 = sequential, N = pool of N, -1 = GOMAXPROCS (reports are identical at any setting)")

		corpusDir = flag.String("corpusdir", "", "persist confirmed findings (dedup, coverage, witnesses) in this corpus directory")
		budget    = flag.Int("budget", 0, "run the adaptive campaign: split this global phase-2 trial budget across all benchmarks (or just -bench)")
		rounds    = flag.Int("rounds", 3, "with -budget: number of adaptive allocation rounds")
		regress   = flag.Bool("regress", false, "with -corpusdir: replay every stored finding and fail on divergence or signature churn")

		timing     = flag.Bool("timing", false, "record per-run wall-clock durations (durationNs) in emitted records; off by default so run logs stay byte-identical across repeat runs")
		reportDir  = flag.String("report", "", "analyze a campaign directory (run log and/or corpus) offline and print a markdown report, then exit (see cmd/campaignreport for HTML/CSV)")
		metrics    = flag.Bool("metrics", false, "print the campaign metrics table after the run")
		jsonLog    = flag.String("json", "", "write a structured JSONL run log to this file (one record per execution)")
		jsonFlush  = flag.Int("jsonflush", 0, "with -json: flush the log every N records so tail -f sees them live (0 = flush only at close)")
		progress   = flag.Bool("progress", false, "print periodic campaign progress lines to stderr")
		httpAddr   = flag.String("http", "", "serve the live campaign observatory (dashboard, /metrics, /events, /debug/sched) on this address, e.g. :8080")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at campaign end to this file")

		coordAddr  = flag.String("coordinate", "", "with -budget: serve a fleet coordinator on this address (e.g. :7070) and run the campaign on remote -worker processes instead of in-process")
		fleetTrace = flag.Bool("fleettrace", false, "with -coordinate: record the fleet flight recorder — per-unit lifecycle spans stitched across worker clocks, served live on /fleet/health and persisted as fleetspans.jsonl + a Perfetto trace next to the corpus")
		workerURL  = flag.String("worker", "", "run as a fleet worker: pull leased trial batches from the coordinator at this base URL (e.g. http://host:7070) until its campaign completes")
		version    = flag.Bool("version", false, "print the tool's build provenance (version, commit, toolchain) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.CollectProvenance("racefuzzer", "", nil).String())
		return
	}
	// A replay seed of 0 is legitimate (derived seeds can be 0 under negative
	// base seeds), so "was -replay given" is tracked explicitly rather than
	// by comparing against the zero default.
	replaySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "replay" {
			replaySet = true
		}
	})

	// -trace and -explain describe a single replayed run; without -replay
	// there is no such run, so reject the combination loudly instead of
	// silently ignoring the flag.
	if *dump && !replaySet {
		fmt.Fprintln(os.Stderr, "racefuzzer: -trace requires -replay (e.g. -bench figure2 -pair 0 -replay 12345 -trace)")
		os.Exit(2)
	}
	if *explain && !replaySet {
		fmt.Fprintln(os.Stderr, "racefuzzer: -explain requires -replay (e.g. -bench figure2 -pair 0 -replay 12345 -explain), or use -explaintrace on a saved recording")
		os.Exit(2)
	}

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-12s %s\n", b.Name, b.Description)
		}
		return
	}
	// Worker mode needs none of the local campaign flags: the coordinator
	// sends the execution config with each registration, and all corpus
	// writes happen coordinator-side.
	if *workerURL != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		workerMetrics := obs.NewRegistry()
		err := fleet.RunWorker(ctx, fleet.WorkerOptions{
			Coordinator: *workerURL,
			Provenance:  obs.CollectProvenance("racefuzzer", "worker", nil),
			Metrics:     workerMetrics,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "racefuzzer: "+format+"\n", args...)
			},
		})
		if n := workerMetrics.Counter("results.permanent_reject").Value(); n > 0 {
			fmt.Fprintf(os.Stderr, "racefuzzer: -worker: %d result batch(es) permanently rejected (requeued elsewhere; no work lost)\n", n)
		}
		if err != nil && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "racefuzzer: -worker: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *coordAddr != "" && *budget <= 0 {
		fmt.Fprintln(os.Stderr, "racefuzzer: -coordinate requires -budget (the fleet runs the adaptive campaign)")
		os.Exit(2)
	}
	if *reportDir != "" {
		c, err := analytics.LoadDir(*reportDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "racefuzzer: -report: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(analytics.Markdown(analytics.Analyze(c)))
		return
	}
	if *explTr != "" {
		rec, err := flightrec.LoadFile(*explTr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "racefuzzer: -explaintrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rec.Explain())
		return
	}
	// Open the corpus before choosing a mode: regress reads it, the adaptive
	// campaign and the normal pipelines write through it.
	var store *corpus.Store
	if *corpusDir != "" {
		var err error
		store, err = corpus.Open(*corpusDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "racefuzzer: -corpusdir: %v\n", err)
			os.Exit(1)
		}
		if store.Truncated() {
			fmt.Fprintf(os.Stderr, "racefuzzer: warning: corpus %s ended in a partial record (crash mid-save); it was skipped\n", *corpusDir)
		}
	}
	// Witness captures belong to the corpus unless the user pointed them
	// elsewhere explicitly.
	traceDir := *trDir
	if traceDir == "" && store != nil {
		traceDir = store.WitnessDir()
	}

	if *regress {
		if store == nil {
			fmt.Fprintln(os.Stderr, "racefuzzer: -regress requires -corpusdir")
			os.Exit(2)
		}
		results, ok := harness.Regress(store)
		fmt.Printf("regress: replaying %d stored finding(s) from %s\n", len(results), *corpusDir)
		failed := 0
		for _, r := range results {
			if !r.OK() {
				failed++
			}
			fmt.Printf("  %v\n", r)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "racefuzzer: regress: %d of %d finding(s) failed\n", failed, len(results))
			os.Exit(1)
		}
		fmt.Printf("regress: all %d finding(s) reproduced and matched their witnesses\n", len(results))
		return
	}

	if *name == "" && *budget <= 0 {
		fmt.Fprintln(os.Stderr, "racefuzzer: -bench is required (try -list), or run a campaign with -budget")
		os.Exit(2)
	}
	var b bench.Benchmark
	if *name != "" {
		var ok bool
		b, ok = bench.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "racefuzzer: unknown benchmark %q (try -list)\n", *name)
			os.Exit(2)
		}
	}
	opts := core.Options{
		Seed:         *seed,
		Phase1Trials: *phase1,
		Phase2Trials: *trials,
		MaxSteps:     b.MaxSteps,
		Label:        b.Name,
		TraceDir:     traceDir,
		PerfDir:      *pfDir,
		Workers:      *workers,
		Corpus:       store,
		Timing:       *timing,
	}
	if opts.Phase1Trials == 0 {
		opts.Phase1Trials = b.Phase1Trials
	}
	if opts.Phase1Trials <= 0 {
		opts.Phase1Trials = 3 // the pipeline default, printed below
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "racefuzzer: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "racefuzzer: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "racefuzzer: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "racefuzzer: -memprofile: %v\n", err)
			}
		}()
	}

	// Assemble the observability chain: observatory, campaign metrics, JSONL
	// log, progress. The observatory rides the same nil-safe probes as the
	// rest — with -http unset every accessor below returns nil and the
	// campaign runs the identical unobserved code path.
	var obsv *observatory.Server
	if *httpAddr != "" {
		label := *name
		if label == "" {
			label = "campaign"
		}
		obsv = observatory.New(observatory.Config{Addr: *httpAddr, Label: label})
	}
	var campaign *obs.CampaignMetrics
	if *metrics || obsv != nil {
		campaign = obsv.Campaign()
		if campaign == nil {
			campaign = obs.NewCampaignMetrics()
		}
		opts.Metrics = campaign
	}
	opts.Introspect = obsv.Introspector()
	// The observatory's perf collector aggregates every execution into
	// /debug/perf; nil (no -http) profiles nothing, costing one predicted
	// branch per probe site.
	opts.Prof = obsv.Prof()
	// Provenance: the explicitly-set flags plus the tool's build identity,
	// stamped into both artifact trails (run-log header, corpus manifest) so
	// the offline report can attribute what it analyzes.
	provLabel := *name
	if provLabel == "" {
		provLabel = "campaign"
	}
	setFlags := map[string]string{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = f.Value.String() })
	prov := obs.CollectProvenance("racefuzzer", provLabel, setFlags)
	store.SetProvenance(prov)
	var sinks obs.MultiSink
	var jsonl *obs.JSONLSink
	if *jsonLog != "" {
		f, err := os.Create(*jsonLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "racefuzzer: -json: %v\n", err)
			os.Exit(1)
		}
		jsonl = obs.NewJSONLSink(f).AutoFlush(*jsonFlush).Header(prov)
		sinks = append(sinks, jsonl)
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr, 2*time.Second)
		sinks = append(sinks, prog)
	}
	if s := obsv.Sink(); s != nil {
		sinks = append(sinks, s)
	}
	if len(sinks) > 0 {
		opts.Sink = sinks
	}
	// Fleet coordinator: created before the observatory starts so its
	// /fleet/status endpoint rides the observatory mux, and its gauges land
	// in the same registry /metrics renders.
	var coord *fleet.Coordinator
	var spans *fleetspan.Collector
	fleetStore := store
	if *coordAddr != "" {
		if fleetStore == nil {
			fleetStore = corpus.NewStore()
		}
		if *fleetTrace {
			// The span-ID token comes from build provenance: deterministic
			// across identical builds, distinguishable across versions.
			token := prov.Commit
			if token == "" {
				token = "campaign"
			}
			spans = fleetspan.NewCollector(fleetspan.Config{Token: token})
		}
		coord = fleet.NewCoordinator(fleet.CoordinatorConfig{
			Addr:       *coordAddr,
			Store:      fleetStore,
			Workers:    *workers,
			Metrics:    campaign,
			Sink:       opts.Sink,
			Gauges:     obsv.Registry(),
			Provenance: prov,
			Spans:      spans,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "racefuzzer: "+format+"\n", args...)
			},
		})
		obsv.Handle("/fleet/status", coord.StatusHandler())
		obsv.Handle("/fleet/health", coord.HealthHandler())
	} else if *fleetTrace {
		fmt.Fprintln(os.Stderr, "racefuzzer: -fleettrace requires -coordinate (the flight recorder traces fleet campaigns)")
		os.Exit(2)
	}
	if obsv != nil {
		if err := obsv.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "racefuzzer: -http: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "racefuzzer: observatory listening on http://%s\n", obsv.Addr())
		// SIGINT/SIGTERM ends the campaign gracefully: flush a final
		// snapshot to subscribers, drain the server, exit clean.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := obsv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "racefuzzer: observatory shutdown: %v\n", err)
				os.Exit(1)
			}
			os.Exit(0)
		}()
	}
	finishObservers := func() {
		prog.Finish()
		if jsonl != nil {
			if err := jsonl.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "racefuzzer: -json: %v\n", err)
			}
		}
		if obsv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := obsv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "racefuzzer: observatory shutdown: %v\n", err)
			}
			cancel()
		}
		if *metrics {
			fmt.Println()
			fmt.Print(campaign.Snapshot().Table("campaign metrics").Render())
		}
		if store != nil {
			n, k := store.Counts()
			fmt.Printf("\ncorpus: %d new signature(s), %d known re-sighting(s), %d total (%s)\n",
				n, k, store.Len(), *corpusDir)
			if err := store.Save(); err != nil {
				fmt.Fprintf(os.Stderr, "racefuzzer: corpus save: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *budget > 0 {
		names := bench.Names()
		if *name != "" {
			names = []string{*name}
		}
		copt := harness.CampaignOptions{
			Seed:       *seed,
			Budget:     *budget,
			Rounds:     *rounds,
			Workers:    *workers,
			Corpus:     store,
			TraceDir:   traceDir,
			PerfDir:    *pfDir,
			Metrics:    campaign,
			Sink:       opts.Sink,
			Gauges:     obsv.Registry(),
			Introspect: obsv.Introspector(),
			Prof:       obsv.Prof(),
			Timing:     *timing,
		}
		var rows []harness.CampaignRow
		if coord != nil {
			// Fleet mode: the same campaign driver, but every unit executes
			// on a worker and reaches the corpus through the coordinator's
			// merge. Witness capture happens worker-side, so the local
			// TraceDir is irrelevant here.
			if err := coord.Start(); err != nil {
				fmt.Fprintf(os.Stderr, "racefuzzer: -coordinate: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "racefuzzer: fleet coordinator listening on http://%s (join with: racefuzzer -worker http://<this-host>:%s)\n",
				coord.Addr(), portOf(coord.Addr()))
			coord.SetTargets(names)
			copt.Corpus = fleetStore
			copt.Executor = coord
			var err error
			rows, err = harness.RunCampaign(names, copt)
			coord.Finish()
			if err != nil {
				fmt.Fprintf(os.Stderr, "racefuzzer: fleet campaign: %v\n", err)
				os.Exit(1)
			}
			// Give live workers a beat to collect their "done" and exit
			// before the control plane goes away.
			for deadline := time.Now().Add(5 * time.Second); !coord.Drained() && time.Now().Before(deadline); {
				time.Sleep(100 * time.Millisecond)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			coord.Shutdown(ctx)
			cancel()
			if spans != nil {
				saveFleetTrail(spans, *corpusDir)
			}
		} else {
			rows = harness.RunAdaptiveCampaign(names, copt)
		}
		fmt.Print(harness.RenderCampaign(rows))
		finishObservers()
		return
	}

	fmt.Printf("== %s: %s\n", b.Name, b.Description)
	if *dlMode {
		reps := core.AnalyzeDeadlocks(b.New(), opts)
		fmt.Printf("deadlock pipeline: %d potential lock cycle(s)\n", len(reps))
		for _, r := range reps {
			fmt.Printf("  %v\n", r)
			printWitness(r.TracePath, r.TraceErr)
			printPerf(r.PerfPath, r.PerfErr)
		}
		finishObservers()
		return
	}
	if *atMode {
		reps := core.AnalyzeAtomicity(b.New(), opts)
		fmt.Printf("atomicity pipeline: %d inferred block(s)\n", len(reps))
		for _, r := range reps {
			fmt.Printf("  %v\n", r)
			printWitness(r.TracePath, r.TraceErr)
			printPerf(r.PerfPath, r.PerfErr)
		}
		finishObservers()
		return
	}
	pairs := core.DetectPotentialRaces(b.New(), opts)
	fmt.Printf("phase 1 (hybrid detection, %d observations): %d potential racing pair(s)\n",
		opts.Phase1Trials, len(pairs))
	for i, p := range pairs {
		fmt.Printf("  [%d] %v\n", i, p)
	}
	if len(pairs) == 0 {
		finishObservers()
		return
	}

	if replaySet {
		if *pairIdx < 0 || *pairIdx >= len(pairs) {
			fmt.Fprintln(os.Stderr, "racefuzzer: -replay needs a valid -pair index")
			os.Exit(2)
		}
		pair := pairs[*pairIdx]
		fmt.Printf("\nreplaying pair %v with seed %d\n", pair, *replay)
		var rec *trace.Recorder
		observers := []sched.Observer{}
		if *dump {
			rec = trace.New(200)
			observers = append(observers, rec)
		}
		pol := core.NewRaceFuzzerPolicy(pair)
		cfg := sched.Config{
			Seed: *replay, Policy: pol, MaxSteps: b.MaxSteps, Observers: observers,
		}
		var flight *flightrec.Recorder
		if *explain {
			flight = flightrec.NewRecorder(flightrec.Header{
				Label: b.Name, Policy: pol.Name(), Kind: "race",
				Seed: *replay, Pair: pair.String(), MaxSteps: b.MaxSteps,
			})
			cfg.Flight = flight
		}
		res := sched.Run(b.New(), cfg)
		for _, rr := range pol.Races() {
			fmt.Printf("  %v\n", rr)
		}
		for _, ex := range res.Exceptions {
			fmt.Printf("  exception: %v\n", ex)
		}
		if res.Deadlock != nil {
			fmt.Printf("  %v\n", res.Deadlock)
		}
		if flight != nil {
			flight.Finish(res)
			fmt.Println()
			fmt.Print(flight.Recording().Explain())
		}
		if rec != nil {
			fmt.Println("\nevent trace (most recent 200):")
			fmt.Print(rec.Dump())
		}
		return
	}

	fmt.Printf("\nphase 2 (RaceFuzzer, %d runs per pair):\n", opts.Phase2Trials)
	realCount, excCount := 0, 0
	for i, pair := range pairs {
		if *pairIdx >= 0 && i != *pairIdx {
			continue
		}
		rep := core.FuzzPair(b.New(), pair, i, opts)
		fmt.Printf("  [%d] %v\n", i, rep)
		if rep.IsReal {
			realCount++
			fmt.Printf("      replay a race-creating run with: -pair %d -replay %d\n", i, rep.FirstRaceSeed)
			if rep.FirstExceptionTrial >= 0 {
				excCount++
				fmt.Printf("      replay an exception-throwing run with: -pair %d -replay %d\n", i, rep.FirstExceptionSeed)
			}
			printWitness(rep.TracePath, rep.TraceErr)
			printPerf(rep.PerfPath, rep.PerfErr)
		}
	}
	fmt.Printf("\nsummary: %d potential, %d real, %d with exceptions (paper row: %d potential, %d real)\n",
		len(pairs), realCount, excCount, b.Paper.HybridRaces, b.Paper.RealRaces)
	finishObservers()
}

// portOf extracts the port of a host:port listen address (for the join hint
// saveFleetTrail persists the flight recorder's artifacts next to the
// corpus findings: the schema-validatable fleetspans.jsonl trail and a
// Perfetto-loadable trace. Without -corpusdir they land in the working
// directory — the trail is a side channel, never part of corpus identity.
func saveFleetTrail(spans *fleetspan.Collector, corpusDir string) {
	trails := spans.Trails()
	trailPath := filepath.Join(corpusDir, fleetspan.TrailFile)
	if err := fleetspan.WriteTrails(trailPath, trails); err != nil {
		fmt.Fprintf(os.Stderr, "racefuzzer: -fleettrace: %v\n", err)
		return
	}
	perfettoPath := filepath.Join(corpusDir, "fleettrace.json")
	if err := fleetspan.SaveTrace(perfettoPath, trails); err != nil {
		fmt.Fprintf(os.Stderr, "racefuzzer: -fleettrace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "racefuzzer: fleet trace: %d unit attempt(s) -> %s, %s (load in https://ui.perfetto.dev)\n",
		len(trails), trailPath, perfettoPath)
}

// printed at coordinator startup).
func portOf(addr string) string {
	if _, port, err := net.SplitHostPort(addr); err == nil {
		return port
	}
	return addr
}

// printWitness reports an auto-captured witness recording (or a failed
// capture attempt) under a target's verdict line.
func printWitness(path string, err error) {
	if err != nil {
		fmt.Printf("      witness capture failed: %v\n", err)
		return
	}
	if path != "" {
		fmt.Printf("      witness trace: %s (render with -explaintrace %s)\n", path, path)
	}
}

// printPerf reports an exported Perfetto timeline (or a failed export) under
// a target's verdict line.
func printPerf(path string, err error) {
	if err != nil {
		fmt.Printf("      perf export failed: %v\n", err)
		return
	}
	if path != "" {
		fmt.Printf("      perf timeline: %s (open in https://ui.perfetto.dev)\n", path)
	}
}
