// Command benchtable regenerates the paper's evaluation artifacts on this
// machine's models:
//
//	benchtable                      # full Table 1 (all benchmarks)
//	benchtable -names figure1,sor   # selected rows
//	benchtable -sweep               # the Figure-2 probability sweep (§3.2)
//	benchtable -trials 100 -seed 7
//	benchtable -budget 600 -corpusdir corpus   # adaptive budget campaign
//
// Output: the measured table, the paper's original numbers for side-by-side
// comparison, and (with -sweep) the probability-vs-prefix-length experiment.
// With -budget the tool instead runs the adaptive campaign: one global
// phase-2 trial budget split across benchmarks round by round, reweighted
// toward targets still producing new corpus signatures; -corpusdir persists
// the findings (and enables cross-run dedup) like cmd/racefuzzer.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"racefuzzer/internal/corpus"
	"racefuzzer/internal/harness"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/observatory"
)

func main() {
	var (
		names      = flag.String("names", "", "comma-separated benchmark names (default: all)")
		seed       = flag.Int64("seed", 12345, "base seed")
		trials     = flag.Int("trials", 100, "RaceFuzzer runs per potential pair")
		timingRuns = flag.Int("timing-runs", 5, "runs averaged per runtime column")
		sweep      = flag.Bool("sweep", false, "also run the Figure-2 probability sweep")
		only       = flag.Bool("sweep-only", false, "run only the Figure-2 sweep")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		verify     = flag.Bool("verify", false, "check measured rows against each model's designed ground truth")
		trDir      = flag.String("tracedir", "", "auto-capture a flight recording of each target's first confirming run into this directory")
		pfDir      = flag.String("perfdir", "", "export a Perfetto timeline of each target's first confirming trial into this directory")
		workers    = flag.Int("workers", 0, "trial executor workers: 0 or 1 = sequential, N = pool of N, -1 = GOMAXPROCS (tables are identical at any setting)")

		corpusDir = flag.String("corpusdir", "", "persist confirmed findings (dedup, coverage, witnesses) in this corpus directory")
		budget    = flag.Int("budget", 0, "run the adaptive campaign instead of Table 1: split this global phase-2 trial budget across the benchmarks")
		rounds    = flag.Int("rounds", 3, "with -budget: number of adaptive allocation rounds")
		httpAddr  = flag.String("http", "", "serve the live campaign observatory (dashboard, /metrics, /events, /debug/sched) on this address, e.g. :8080")

		jsonLog   = flag.String("json", "", "write a structured JSONL run log to this file (one record per execution), analyzable with cmd/campaignreport")
		jsonFlush = flag.Int("jsonflush", 0, "with -json: flush the log every N records so tail -f sees them live (0 = flush only at close)")
		timing    = flag.Bool("timing", false, "record per-run wall-clock durations (durationNs) in emitted records; off by default so run logs stay byte-identical across repeat runs")
		version   = flag.Bool("version", false, "print the tool's build provenance (version, commit, toolchain) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.CollectProvenance("benchtable", "", nil).String())
		return
	}

	// Provenance: build identity plus the explicitly-set flags, stamped into
	// the run-log header and the corpus manifest like cmd/racefuzzer.
	setFlags := map[string]string{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = f.Value.String() })
	prov := obs.CollectProvenance("benchtable", "benchtable", setFlags)

	// The observatory is nil unless -http was given; every accessor on a nil
	// server returns nil, and nil probes no-op all the way down.
	var obsv *observatory.Server
	if *httpAddr != "" {
		obsv = observatory.New(observatory.Config{Addr: *httpAddr, Label: "benchtable"})
		if err := obsv.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtable: -http: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchtable: observatory listening on http://%s\n", obsv.Addr())
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := obsv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "benchtable: observatory shutdown: %v\n", err)
				os.Exit(1)
			}
			os.Exit(0)
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := obsv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "benchtable: observatory shutdown: %v\n", err)
			}
		}()
	}

	var list []string
	if *names != "" {
		list = strings.Split(*names, ",")
	}

	var store *corpus.Store
	if *corpusDir != "" {
		var err error
		store, err = corpus.Open(*corpusDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtable: -corpusdir: %v\n", err)
			os.Exit(1)
		}
	}
	store.SetProvenance(prov)

	// The JSONL run log and the observatory sink fan in together; the
	// provenance header leads the log like cmd/racefuzzer's.
	var jsonl *obs.JSONLSink
	var sinks obs.MultiSink
	if *jsonLog != "" {
		f, err := os.Create(*jsonLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtable: -json: %v\n", err)
			os.Exit(1)
		}
		jsonl = obs.NewJSONLSink(f).AutoFlush(*jsonFlush).Header(prov)
		sinks = append(sinks, jsonl)
	}
	closeLog := func() {
		if jsonl == nil {
			return
		}
		if err := jsonl.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtable: -json: %v\n", err)
		}
	}
	defer closeLog()
	if s := obsv.Sink(); s != nil {
		sinks = append(sinks, s)
	}
	var sink obs.Sink
	if len(sinks) > 0 {
		sink = sinks
	}

	saveCorpus := func() {
		if store == nil {
			return
		}
		n, k := store.Counts()
		fmt.Printf("\ncorpus: %d new signature(s), %d known re-sighting(s), %d total (%s)\n",
			n, k, store.Len(), *corpusDir)
		if err := store.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtable: corpus save: %v\n", err)
			os.Exit(1)
		}
	}

	if *budget > 0 {
		traceDir := *trDir
		if traceDir == "" && store != nil {
			traceDir = store.WitnessDir()
		}
		rows := harness.RunAdaptiveCampaign(list, harness.CampaignOptions{
			Seed: *seed, Budget: *budget, Rounds: *rounds, Workers: *workers,
			Corpus: store, TraceDir: traceDir, PerfDir: *pfDir,
			Metrics: obsv.Campaign(), Sink: sink,
			Gauges: obsv.Registry(), Introspect: obsv.Introspector(),
			Prof: obsv.Prof(), Timing: *timing,
		})
		fmt.Println(harness.RenderCampaign(rows))
		saveCorpus()
		return
	}

	if !*only {
		rows := harness.RunTable1(list, harness.Options{
			Seed: *seed, Phase2Trials: *trials, BaselineTrials: *trials, TimingRuns: *timingRuns,
			TraceDir: *trDir, PerfDir: *pfDir, Workers: *workers, Corpus: store,
			Metrics: obsv.Campaign(), Sink: sink, Introspect: obsv.Introspector(),
			Prof: obsv.Prof(), Timing: *timing,
		})
		if *csv {
			fmt.Print(harness.CSVTable1(rows))
		} else {
			fmt.Println(harness.RenderTable1(rows))
			fmt.Println(harness.RenderPaperTable(rows))
		}
		saveCorpus()
		if *verify {
			out, ok := harness.VerifyAll(rows)
			fmt.Print(out)
			if !ok {
				os.Exit(1)
			}
		}
	}
	if *sweep || *only {
		points := harness.Figure2Sweep([]int{5, 10, 25, 50, 100, 250, 500}, *trials, *seed)
		if *csv {
			fmt.Print(harness.CSVFigure2(points))
		} else {
			fmt.Println(harness.RenderFigure2(points))
		}
		noise := harness.NoiseSweep([]int{0, 2, 4, 8}, *trials, *seed)
		if !*csv {
			fmt.Println(harness.RenderNoise(noise))
		}
	}
}
