// Command campaignreport renders offline analytics reports from a
// campaign's artifacts — the JSONL run log (-json) and/or the corpus
// directory (-corpusdir) a racefuzzer/benchtable campaign wrote:
//
//	campaignreport -dir campaign/                      # markdown to stdout
//	campaignreport -dir campaign/ -html report.html    # self-contained HTML
//	campaignreport -log run.jsonl -corpusdir corpus -csv report.csv
//	campaignreport -diff old-campaign/ new-campaign/   # per-metric deltas
//
// The report covers discovery curves (new signatures / coverage cells vs
// trials), trials-to-first-confirm distributions, per-round dedup trends, a
// coverage-frontier summary with a Chao1 species-richness estimate, a
// bandit audit of allocated budget vs realized yield, and a reconciliation
// table cross-checking the log against the corpus manifest. Reports are
// deterministic: byte-identical inputs render byte-identical bytes, so CI
// can golden-test them (see the report-smoke job).
package main

import (
	"flag"
	"fmt"
	"os"

	"racefuzzer/internal/analytics"
	"racefuzzer/internal/fleetspan"
)

func main() {
	var (
		dir       = flag.String("dir", "", "campaign directory holding the run log (run.jsonl or first *.jsonl) and/or the corpus (MANIFEST.json, or a corpus/ subdirectory)")
		log       = flag.String("log", "", "JSONL run log to analyze (alternative to -dir)")
		corpusDir = flag.String("corpusdir", "", "corpus directory to analyze (alternative to -dir)")
		htmlOut   = flag.String("html", "", "write the self-contained HTML report to this file")
		csvOut    = flag.String("csv", "", "write the multi-section CSV tables to this file")
		mdOut     = flag.String("md", "", "write the markdown report to this file (default: stdout when no other output is chosen)")
		diff      = flag.Bool("diff", false, "compare two campaigns: campaignreport -diff <dirA> <dirB> prints per-metric deltas (B-A) as markdown")
		checkSpan = flag.String("checkspans", "", "validate a fleetspans.jsonl span trail against the schema (causal order, identity, outcome vocabulary) and print a summary; exits nonzero on any violation")
	)
	flag.Parse()

	if *checkSpan != "" {
		trails, err := fleetspan.LoadTrails(*checkSpan)
		if err != nil {
			fatal(err)
		}
		ingested, stitched := 0, 0
		for _, tr := range trails {
			if tr.Outcome == fleetspan.OutcomeIngested {
				ingested++
				if tr.Stitched() {
					stitched++
				}
			}
		}
		fmt.Printf("campaignreport: %s: %d attempts valid (%d ingested, %d stitched)\n",
			*checkSpan, len(trails), ingested, stitched)
		return
	}

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "campaignreport: -diff needs exactly two campaign directories: campaignreport -diff <dirA> <dirB>")
			os.Exit(2)
		}
		a, b := loadReport(flag.Arg(0)), loadReport(flag.Arg(1))
		fmt.Print(analytics.DiffMarkdown(analytics.Diff(a, b, flag.Arg(0), flag.Arg(1))))
		return
	}

	var r *analytics.Report
	switch {
	case *dir != "":
		r = loadReport(*dir)
	case *log != "" || *corpusDir != "":
		c, err := analytics.Load(analytics.Source{Log: *log, CorpusDir: *corpusDir})
		if err != nil {
			fatal(err)
		}
		r = analytics.Analyze(c)
	default:
		fmt.Fprintln(os.Stderr, "campaignreport: nothing to analyze; give -dir, or -log and/or -corpusdir (try -h)")
		os.Exit(2)
	}

	wrote := false
	if *htmlOut != "" {
		page, err := analytics.HTML(r)
		if err != nil {
			fatal(err)
		}
		writeFile(*htmlOut, page)
		wrote = true
	}
	if *csvOut != "" {
		writeFile(*csvOut, []byte(analytics.CSV(r)))
		wrote = true
	}
	if *mdOut != "" {
		writeFile(*mdOut, []byte(analytics.Markdown(r)))
		wrote = true
	}
	if !wrote {
		fmt.Print(analytics.Markdown(r))
	}
}

func loadReport(dir string) *analytics.Report {
	c, err := analytics.LoadDir(dir)
	if err != nil {
		fatal(err)
	}
	return analytics.Analyze(c)
}

func writeFile(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "campaignreport: wrote %s (%d bytes)\n", path, len(data))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "campaignreport: %v\n", err)
	os.Exit(1)
}
