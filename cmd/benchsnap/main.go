// Command benchsnap measures a benchmark suite and writes (or checks) the
// checked-in BENCH_*.json snapshot:
//
//	benchsnap -suite sched                    # measure, write BENCH_sched.json
//	benchsnap -suite sched -out /tmp/s.json   # measure, write elsewhere
//	benchsnap -suite sched -check             # measure, compare to BENCH_sched.json
//	benchsnap -suite parallel -benchtime 2s   # slower, steadier numbers
//	benchsnap -suite sched -check -perfdir a  # also export a Perfetto sample trace
//
// With -check the tool exits 1 on hard regressions (allocs/op growth beyond
// tolerance, benchmarks missing vs the baseline, schema mismatch) and prints
// wall-clock drift as warnings only — CI gates on what the machine can't
// excuse. The sched suite also exports one profiled trial as a Chrome
// trace-event JSON into -perfdir (open in https://ui.perfetto.dev), which CI
// uploads as the failure artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"racefuzzer/internal/benchsnap"
)

func main() {
	var (
		suite     = flag.String("suite", "sched", "suite to run: sched or parallel")
		out       = flag.String("out", "", "snapshot output path (default BENCH_<suite>.json; \"-\" = stdout only)")
		check     = flag.Bool("check", false, "compare against -baseline instead of overwriting it; exit 1 on hard regressions")
		baseline  = flag.String("baseline", "", "baseline snapshot for -check (default BENCH_<suite>.json)")
		benchtime = flag.Duration("benchtime", 200*time.Millisecond, "minimum timed span per measurement")
		seed      = flag.Int64("seed", 12345, "base seed for measured executions")
		nsTol     = flag.Float64("tolerance", 0.5, "fractional ns/op growth that warns")
		allocTol  = flag.Float64("alloc-tolerance", 0.1, "fractional allocs/op growth that hard-fails")
		allocSlk  = flag.Float64("alloc-slack", 64, "absolute allocs/op grace on top of -alloc-tolerance")
		perfdir   = flag.String("perfdir", "", "export a sample profiled trial as Perfetto JSON into this directory (sched suite)")
		note      = flag.String("note", "", "free-form note recorded in the snapshot")
	)
	flag.Parse()

	snap, tl, err := benchsnap.RunSuite(*suite, benchsnap.SuiteOptions{
		Seed: *seed, Benchtime: *benchtime, Note: *note,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(2)
	}
	snap.Stamp(time.Now())

	if *perfdir != "" && tl != nil {
		if err := os.MkdirAll(*perfdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: -perfdir: %v\n", err)
			os.Exit(2)
		}
		path := filepath.Join(*perfdir, fmt.Sprintf("benchsnap-%s.perf.json", *suite))
		if err := tl.SaveFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: perf export: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("perf trace: %s\n", path)
	}

	for _, r := range snap.Results {
		fmt.Printf("%-36s %12.0f ns/op %10.0f allocs/op  (x%d)\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.Iters)
	}

	defaultArtifact := fmt.Sprintf("BENCH_%s.json", *suite)
	if *check {
		basePath := *baseline
		if basePath == "" {
			basePath = defaultArtifact
		}
		base, err := benchsnap.Load(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: -check: %v\n", err)
			os.Exit(2)
		}
		warns, fails := benchsnap.Compare(snap, base, benchsnap.CheckOptions{
			NsTolerance: *nsTol, AllocTolerance: *allocTol, AllocSlack: *allocSlk,
		})
		for _, w := range warns {
			fmt.Printf("WARN  %s\n", w)
		}
		for _, f := range fails {
			fmt.Printf("FAIL  %s\n", f)
		}
		// A requested -out still gets the measurement (CI uploads it next to
		// the Perfetto trace for diagnosis).
		if *out != "" && *out != "-" {
			if err := snap.Save(*out); err != nil {
				fmt.Fprintf(os.Stderr, "benchsnap: -out: %v\n", err)
				os.Exit(2)
			}
		}
		if len(fails) > 0 {
			fmt.Printf("benchsnap: %d hard regression(s) vs %s\n", len(fails), basePath)
			os.Exit(1)
		}
		fmt.Printf("benchsnap: ok vs %s (%d warning(s))\n", basePath, len(warns))
		return
	}

	dest := *out
	if dest == "" {
		dest = defaultArtifact
	}
	if dest != "-" {
		if err := snap.Save(dest); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", dest)
	}
}
