package fleetspan

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// TrailFile is the span trail's file name, written next to findings.jsonl
// and coverage.jsonl in the corpus directory. It is a side channel: the
// determinism contract covers findings/coverage/witness bytes, not this.
const TrailFile = "fleetspans.jsonl"

// WriteTrails writes the trail as JSONL, one UnitTrail per line, in the
// stable (round, targetIndex, attempt) order Trails returns.
func WriteTrails(path string, trails []UnitTrail) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range trails {
		if err := enc.Encode(&trails[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrails reads a fleetspans.jsonl trail, validating every record. The
// torn final line a crashed coordinator can leave is tolerated (dropped),
// matching the run-log loader's behavior; any other malformed or
// schema-violating line is an error.
func LoadTrails(path string) ([]UnitTrail, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var trails []UnitTrail
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var t UnitTrail
		if err := json.Unmarshal(line, &t); err != nil {
			if i == len(lines)-1 {
				break // torn final line: writer died mid-record
			}
			return nil, fmt.Errorf("%s:%d: %w", filepath.Base(path), i+1, err)
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", filepath.Base(path), i+1, err)
		}
		trails = append(trails, t)
	}
	return trails, nil
}
