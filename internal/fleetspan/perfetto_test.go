package fleetspan

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrails is a fixed fake-clock campaign — two workers, a requeue, a
// skewed clock, a dropped duplicate — so the exported trace is byte-stable.
func goldenTrails(t *testing.T) []UnitTrail {
	t.Helper()
	c, clk := newTestCollector(Config{Token: "golden"})
	runUnit(c, clk, "r1-t0", 1, 0, "ping", "w1", 1, 0)
	runUnit(c, clk, "r1-t1", 1, 1, "pong", "w2", 2, int64(3e9))
	// r2-t0: leased to w1, expires, finishes on w2, then w1's late result
	// is dropped.
	c.UnitQueued("r2-t0", 2, 0, "ping")
	clk.advance(time.Millisecond)
	c.UnitLeased("r2-t0", "w1", 3)
	clk.advance(30 * time.Millisecond)
	c.UnitRequeued("r2-t0")
	clk.advance(time.Millisecond)
	c.UnitLeased("r2-t0", "w2", 4)
	clk.advance(12 * time.Millisecond)
	c.UnitResult("r2-t0", "w2", 4, true, "", nil)
	clk.advance(time.Millisecond)
	c.UnitIngested("r2-t0")
	c.UnitResult("r2-t0", "w1", 3, false, "duplicate result: unit already complete", nil)
	return c.Trails()
}

func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenTrails(t)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fleettrace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from %s (regenerate with -update)\ngot:\n%s", golden, buf.String())
	}
}

// TestPerfettoStructure checks the contract Perfetto relies on and the
// causal guarantee inside the export: valid trace JSON, one stable track
// per worker plus the coordinator lease-table track, and per-track slices
// whose windows never precede their unit's lease.
func TestPerfettoStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenTrails(t)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	threadNames := map[string]int{}
	slices := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threadNames[ev.Args["name"].(string)] = ev.Tid
			}
		case "X":
			slices++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("slice %q: negative ts/dur (%v/%v)", ev.Name, ev.Ts, ev.Dur)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if slices == 0 {
		t.Fatal("no slices")
	}
	// Stable track IDs: coordinator on 0, workers in sorted-name order.
	want := map[string]int{"coordinator lease-table": 0, "worker w1": 1, "worker w2": 2}
	for name, tid := range want {
		if threadNames[name] != tid {
			t.Errorf("track %q on tid %d, want %d (tracks: %v)", name, threadNames[name], tid, threadNames)
		}
	}
	// Exec slices sit inside their lease slice on the same track.
	type window struct{ ts, end float64 }
	leases := map[string]window{} // "tid/unit#attempt"
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && len(ev.Name) > 6 && ev.Name[:6] == "lease:" {
			leases[ev.Name[6:]] = window{ev.Ts, ev.Ts + ev.Dur}
		}
	}
	if len(leases) == 0 {
		t.Fatal("no lease slices")
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || len(ev.Name) < 5 || ev.Name[:5] != "exec:" {
			continue
		}
		contained := false
		for _, w := range leases {
			if ev.Ts >= w.ts && ev.Ts+ev.Dur <= w.end+0.001 {
				contained = true
				break
			}
		}
		if !contained {
			t.Errorf("exec slice %q [%v, %v] outside every lease window", ev.Name, ev.Ts, ev.Ts+ev.Dur)
		}
	}
}

// TestPerfettoCausalOrderUnderSkew exports a backwards-clock campaign and
// asserts no slice escapes its causal window even then.
func TestPerfettoCausalOrderUnderSkew(t *testing.T) {
	c, clk := newTestCollector(Config{Token: "skew"})
	c.UnitQueued("r1-t0", 1, 0, "ping")
	clk.advance(time.Millisecond)
	c.UnitLeased("r1-t0", "w1", 1)
	leasedUnix := clk.ns
	spans := &WorkerSpans{
		LeaseRecvNs: leasedUnix - int64(time.Hour), // wildly backwards
		ExecStartNs: leasedUnix - int64(2*time.Hour),
		ExecEndNs:   leasedUnix - int64(3*time.Hour),
		PostedNs:    leasedUnix - int64(4*time.Hour),
	}
	clk.advance(8 * time.Millisecond)
	c.UnitResult("r1-t0", "w1", 1, true, "", spans)
	c.UnitIngested("r1-t0")
	tr := c.Trails()[0]
	for _, ev := range Events(c.Trails()) {
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur < 0 {
			t.Errorf("slice %q has negative duration %v", ev.Name, ev.Dur)
		}
		if ev.Tid != coordTid && ev.Ts < float64(tr.LeasedNs)*1e-3-0.001 {
			t.Errorf("slice %q starts %v, before lease %v", ev.Name, ev.Ts, float64(tr.LeasedNs)*1e-3)
		}
	}
}
