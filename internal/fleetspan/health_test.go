package fleetspan

import (
	"fmt"
	"testing"
	"time"
)

// completeUnit drives one unit start-to-ingest with a fixed exec duration
// (no worker spans: exec falls back to the leased→end window).
func completeUnit(c *Collector, clk *fakeClock, unitID string, round, ti int, target, worker string, epoch int64, exec time.Duration) {
	c.UnitQueued(unitID, round, ti, target)
	c.UnitLeased(unitID, worker, epoch)
	clk.advance(exec)
	c.UnitResult(unitID, worker, epoch, true, "", nil)
	c.UnitIngested(unitID)
}

// healthConfig shrinks the detector windows so the scripted scenario stays
// readable: storms need 3 requeues in 10s, stragglers 2× the target p95.
func healthConfig() Config {
	return Config{
		Token:               "health",
		StragglerFactor:     2,
		StragglerMinSamples: 3,
		StormWindow:         10 * time.Second,
		StormThreshold:      3,
		TrendFactor:         2,
		TrendMinSamples:     4,
	}
}

// TestHealthDegradesAndRecovers is the flight-deck acceptance scenario: a
// healthy fleet, then a killed worker producing a synthetic straggler and a
// requeue storm (score degrades), then completion and window expiry (score
// recovers to 100).
func TestHealthDegradesAndRecovers(t *testing.T) {
	c, clk := newTestCollector(healthConfig())

	// Healthy baseline: four units on target "ping" at ~10ms each.
	for i := 0; i < 4; i++ {
		completeUnit(c, clk, unitID(1, i), 1, i, "ping", "w1", int64(i+1), 10*time.Millisecond)
		clk.advance(time.Millisecond)
	}
	if h := c.Health(); h.Score != 100 || len(h.Anomalies) != 0 {
		t.Fatalf("healthy fleet scored %d with anomalies %+v", h.Score, h.Anomalies)
	}

	// w2 takes a lease and goes silent: the lease is out far past 2× the
	// target's p95 (10ms), so the straggler detector must fire while the
	// unit is still in flight.
	c.UnitQueued("r2-t0", 2, 0, "ping")
	c.UnitLeased("r2-t0", "w2", 100)
	clk.advance(2 * time.Second)
	h := c.Health()
	if h.Score >= 100 {
		t.Fatalf("straggler did not degrade score: %+v", h)
	}
	if n := countKind(h, AnomalyStraggler); n != 1 {
		t.Fatalf("got %d straggler anomalies, want 1: %+v", n, h.Anomalies)
	}
	if h.Anomalies[0].Unit != "r2-t0" || h.Anomalies[0].Worker != "w2" {
		t.Errorf("straggler attribution: %+v", h.Anomalies[0])
	}
	stragglerScore := h.Score

	// The dead worker's lease expires three times in quick succession — a
	// requeue storm on top of the straggler.
	for epoch := int64(101); epoch <= 103; epoch++ {
		c.UnitRequeued("r2-t0")
		c.UnitLeased("r2-t0", "w2", epoch)
		clk.advance(100 * time.Millisecond)
	}
	h = c.Health()
	if countKind(h, AnomalyRequeueStorm) != 1 {
		t.Fatalf("no requeue-storm anomaly: %+v", h.Anomalies)
	}
	if h.Score >= stragglerScore {
		t.Fatalf("storm did not degrade score further: %d vs %d", h.Score, stragglerScore)
	}
	if h.RecentRequeues != 3 {
		t.Errorf("recent requeues %d, want 3", h.RecentRequeues)
	}

	// Recovery: a live worker finishes the unit and the storm window slides
	// past the requeues. Everything must return to a perfect score — the
	// detectors are windowed, not latched.
	c.UnitRequeued("r2-t0")
	c.UnitLeased("r2-t0", "w1", 200)
	clk.advance(10 * time.Millisecond)
	c.UnitResult("r2-t0", "w1", 200, true, "", nil)
	c.UnitIngested("r2-t0")
	clk.advance(c.cfg.StormWindow + time.Second)
	h = c.Health()
	if h.Score != 100 || len(h.Anomalies) != 0 {
		t.Fatalf("fleet did not recover: score %d, anomalies %+v", h.Score, h.Anomalies)
	}
	if h.UnitsInFlight != 0 || h.UnitsDone != 5 {
		t.Errorf("units in flight %d done %d, want 0/5", h.UnitsInFlight, h.UnitsDone)
	}
}

// TestHealthLeaseLatencyTrend flags a worker whose grant→receipt latency
// doubles between the earlier and recent halves of its sample ring.
func TestHealthLeaseLatencyTrend(t *testing.T) {
	c, clk := newTestCollector(healthConfig())
	lat := []time.Duration{
		time.Millisecond, time.Millisecond, // earlier half: 1ms
		8 * time.Millisecond, 8 * time.Millisecond, // recent half: 8ms
	}
	for i, d := range lat {
		id := unitID(1, i)
		c.UnitQueued(id, 1, i, "ping")
		c.UnitLeased(id, "w3", int64(i+1))
		leasedUnix := clk.ns
		// Heartbeat with zero skew teaches an exact offset, so the stitched
		// lease latency is the worker-reported one, not the POST fallback.
		c.Heartbeat("w3", id, clk.ns)
		spans := &WorkerSpans{
			LeaseRecvNs: leasedUnix + d.Nanoseconds(),
			ExecStartNs: leasedUnix + d.Nanoseconds() + 1000,
			ExecEndNs:   leasedUnix + d.Nanoseconds() + 2000,
			PostedNs:    leasedUnix + d.Nanoseconds() + 3000,
		}
		clk.advance(d + 20*time.Millisecond)
		c.UnitResult(id, "w3", int64(i+1), true, "", spans)
		c.UnitIngested(id)
	}
	h := c.Health()
	if countKind(h, AnomalyLeaseTrend) != 1 {
		t.Fatalf("no lease-latency-trend anomaly: %+v", h.Anomalies)
	}
	if len(h.Workers) != 1 || h.Workers[0].LeaseTrend < 2 {
		t.Errorf("worker vitals: %+v", h.Workers)
	}
	if h.Workers[0].LeaseP50Ms <= 0 {
		t.Errorf("lease p50 not recorded: %+v", h.Workers[0])
	}
	if len(h.Workers[0].SparklineMs) == 0 {
		t.Errorf("sparkline empty: %+v", h.Workers[0])
	}
}

func countKind(h Health, kind string) int {
	n := 0
	for _, a := range h.Anomalies {
		if a.Kind == kind {
			n++
		}
	}
	return n
}

func unitID(round, ti int) string {
	return fmt.Sprintf("r%d-t%d", round, ti)
}
