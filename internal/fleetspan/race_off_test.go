//go:build !race

package fleetspan

const raceDetectorEnabled = false
