package fleetspan

import (
	"fmt"
	"io"
	"sort"

	"racefuzzer/internal/traceevent"
)

// Track layout of the campaign trace: one process, tid 0 is the coordinator
// lease-table track, and each worker gets its own track in sorted-name order
// (stable IDs: the same trail always renders the same tids).
const (
	tracePid = 1
	coordTid = 0
)

// Events renders a span trail as Chrome trace events. Per attempt the
// coordinator track carries the unit's whole queued→end envelope, and the
// owning worker's track carries the lease slice with the stitched exec and
// post sub-spans nested inside. All slices come from the stitched trail, so
// the causal-order guarantee carries into the export.
func Events(trails []UnitTrail) []traceevent.Event {
	workers := map[string]int{}
	for _, t := range trails {
		if t.Worker != "" {
			workers[t.Worker] = 0
		}
	}
	names := make([]string, 0, len(workers))
	for name := range workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		workers[name] = i + 1
	}

	evs := make([]traceevent.Event, 0, 4*len(trails)+2*len(names)+4)
	evs = append(evs, traceevent.Meta("process_name", tracePid, coordTid,
		map[string]any{"name": "racefuzzer fleet campaign"}))
	evs = append(evs, traceevent.Meta("thread_name", tracePid, coordTid,
		map[string]any{"name": "coordinator lease-table"}))
	evs = append(evs, traceevent.Meta("thread_sort_index", tracePid, coordTid,
		map[string]any{"sort_index": 0}))
	for _, name := range names {
		tid := workers[name]
		evs = append(evs, traceevent.Meta("thread_name", tracePid, tid,
			map[string]any{"name": "worker " + name}))
		evs = append(evs, traceevent.Meta("thread_sort_index", tracePid, tid,
			map[string]any{"sort_index": tid}))
	}

	ordered := append([]UnitTrail(nil), trails...)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.QueuedNs != b.QueuedNs {
			return a.QueuedNs < b.QueuedNs
		}
		if a.SpanID != b.SpanID {
			return a.SpanID < b.SpanID
		}
		return a.Attempt < b.Attempt
	})
	for _, t := range ordered {
		args := map[string]any{
			"spanID": t.SpanID, "round": t.Round, "target": t.Target,
			"attempt": t.Attempt, "outcome": t.Outcome,
		}
		if t.DropReason != "" {
			args["dropReason"] = t.DropReason
		}
		name := fmt.Sprintf("%s#%d", t.UnitID, t.Attempt)
		start := t.QueuedNs
		if start == 0 {
			start = t.EndNs // drop records have no queue entry of their own
		}
		evs = append(evs, traceevent.Slice(name, t.Outcome,
			tracePid, coordTid, start, t.EndNs-start, args))
		tid, ok := workers[t.Worker]
		if !ok || t.LeasedNs == 0 {
			continue
		}
		evs = append(evs, traceevent.Slice("lease:"+name, "lease",
			tracePid, tid, t.LeasedNs, t.EndNs-t.LeasedNs,
			map[string]any{"spanID": t.SpanID, "heartbeats": t.Heartbeats, "clamped": t.Clamped}))
		if t.Stitched() {
			evs = append(evs, traceevent.Slice("exec:"+t.Target, "exec",
				tracePid, tid, t.ExecStartNs, t.ExecEndNs-t.ExecStartNs,
				map[string]any{"spanID": t.SpanID, "offsetNs": t.OffsetNs}))
			if t.PostedNs >= t.ExecEndNs && t.ResultNs >= t.PostedNs {
				evs = append(evs, traceevent.Slice("post", "post",
					tracePid, tid, t.PostedNs, t.ResultNs-t.PostedNs,
					map[string]any{"spanID": t.SpanID}))
			}
		}
	}
	return evs
}

// WriteTrace writes the trail as Chrome trace-event JSON for Perfetto.
func WriteTrace(w io.Writer, trails []UnitTrail) error {
	return traceevent.Write(w, Events(trails))
}

// SaveTrace writes the Perfetto export to path, creating parent directories.
func SaveTrace(path string, trails []UnitTrail) error {
	return traceevent.SaveFile(path, Events(trails))
}
