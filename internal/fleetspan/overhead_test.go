package fleetspan

import "testing"

// hookSink defeats dead-code elimination in the probe benchmarks.
var hookSink int64

// hookHarness mirrors the fleet layer's layout: every hook site loads a
// possibly-nil collector from a struct field, exactly like the coordinator's
// cfg.Spans and the lease table's spans field.
type hookHarness struct{ spans *Collector }

var disabledHarness hookHarness

// probeUnit executes one work unit's worth of disabled hook sites: queue,
// lease, heartbeat, result, ingest — the full lifecycle the coordinator
// walks per unit.
func (h *hookHarness) probeUnit(i int) {
	h.spans.UnitQueued("r1-t0", 1, 0, "t")
	h.spans.UnitLeased("r1-t0", "w1", int64(i))
	h.spans.Heartbeat("w1", "r1-t0", int64(i))
	h.spans.UnitResult("r1-t0", "w1", int64(i), true, "", nil)
	h.spans.UnitIngested("r1-t0")
}

// TestCollectorDisabledOverhead asserts the PR-6 invariant carried forward:
// with no collector attached, the fleetspan hook sites are free. The five
// nil-guarded calls above cover a whole unit lifecycle — orders of magnitude
// rarer than a scheduler step — so the flat few-ns budget obs's
// TestNoopOverhead uses is conservative here.
func TestCollectorDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceDetectorEnabled {
		t.Skip("race detector instruments calls; ns-level timing is meaningless")
	}
	baseline := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hookSink++
		}
	})
	nilPath := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			disabledHarness.probeUnit(i)
			hookSink++
		}
	})
	delta := float64(nilPath.NsPerOp()) - float64(baseline.NsPerOp())
	// Five nil checks should cost well under 2ns each even on slow CI
	// hardware; 10ns total is the same noise-tolerant budget obs uses.
	if delta > 10 {
		t.Fatalf("disabled fleetspan hooks add %.1f ns/unit (baseline %d ns, nil-path %d ns)",
			delta, baseline.NsPerOp(), nilPath.NsPerOp())
	}
	t.Logf("disabled hooks %.2f ns/unit lifecycle", delta)
}

// BenchmarkUnitLifecycleTraced is the cost of the hooks when tracing is on:
// one full queued→ingested lifecycle per op against a live collector.
func BenchmarkUnitLifecycleTraced(b *testing.B) {
	clk := &fakeClock{ns: baseNs}
	c := NewCollector(Config{Token: "bench", Clock: clk})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := unitID(1, i)
		c.UnitQueued(id, 1, i, "t")
		c.UnitLeased(id, "w1", int64(i))
		c.Heartbeat("w1", id, clk.ns)
		c.UnitResult(id, "w1", int64(i), true, "", nil)
		c.UnitIngested(id)
	}
}

// BenchmarkUnitLifecycleDisabled is the same lifecycle through a nil
// collector — the number benchsnap's fleetspan suite tracks against the
// disabled-overhead budget.
func BenchmarkUnitLifecycleDisabled(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := "r1-t0"
		c.UnitQueued(id, 1, i, "t")
		c.UnitLeased(id, "w1", int64(i))
		c.Heartbeat("w1", id, int64(i))
		c.UnitResult(id, "w1", int64(i), true, "", nil)
		c.UnitIngested(id)
	}
}
