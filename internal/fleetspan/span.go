// Package fleetspan is the fleet campaign's flight recorder: a wide-event,
// allocation-conscious distributed tracing plane for coordinator + worker
// campaigns. Every work unit carries a deterministic span ID (campaign
// provenance + round + unit index — no timestamps in identity, so replay
// determinism survives); the coordinator records queued→leased→heartbeat→
// result→ingested transitions on its own clock, workers ship their local
// lease-received→exec→posted sub-spans back piggybacked on the result POST,
// and the collector stitches the two sides together with per-worker clock
// offset estimation that never reorders causal edges.
//
// The package follows the repo's nil-safe observability contract: every
// Collector method is a no-op on a nil receiver, so an untraced campaign
// pays nothing (asserted by TestCollectorDisabledOverhead) and produces
// byte-identical findings/coverage/witness artifacts (asserted by the fleet
// e2e test). The span trail is a side channel only.
package fleetspan

import (
	"fmt"
	"time"
)

// SchemaVersion stamps every trail record; loaders reject other versions.
const SchemaVersion = 1

// Outcome values for one lease attempt.
const (
	// OutcomeIngested: the attempt's result was accepted and folded into the
	// authoritative corpus — the terminal success state.
	OutcomeIngested = "ingested"
	// OutcomeRequeued: the lease expired and the unit went back to the queue;
	// a later attempt (higher Attempt) finishes the unit.
	OutcomeRequeued = "requeued"
	// OutcomeDropped: a result submission was rejected (duplicate, stale
	// epoch, unknown unit) — recorded so operators can see wasted work.
	OutcomeDropped = "dropped"
)

// Clock abstracts time so stitching and health detection are testable with
// fake clocks and no sleeps (mirrors fleet.Clock without importing fleet).
type Clock interface {
	Now() time.Time
}

// systemClock is the real clock.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// WorkerSpans is the worker-local sub-span report for one executed unit,
// absolute UnixNano on the worker's clock. It rides back piggybacked on the
// result POST — no extra RPC — and the coordinator maps it onto its own
// clock via the per-worker offset estimate.
type WorkerSpans struct {
	// LeaseRecvNs is when the worker received the lease grant.
	LeaseRecvNs int64 `json:"leaseRecvNs"`
	// ExecStartNs/ExecEndNs bracket harness.RunUnit.
	ExecStartNs int64 `json:"execStartNs"`
	ExecEndNs   int64 `json:"execEndNs"`
	// PostedNs is when the worker began the result POST.
	PostedNs int64 `json:"postedNs"`
}

// UnitTrail is one wide event: everything known about one lease attempt of
// one work unit, all timestamps in nanoseconds on the coordinator's clock
// relative to collector start. Worker-side fields are present only when the
// attempt shipped WorkerSpans; they have been offset-mapped and clamped so
// the causal chain
//
//	queued ≤ leased ≤ leaseRecv ≤ execStart ≤ execEnd ≤ posted ≤ result ≤ ingested
//
// holds by construction regardless of worker clock skew.
type UnitTrail struct {
	Schema int `json:"schema"`
	// SpanID is the unit's deterministic identity: campaign token + round +
	// target index. No timestamps — replaying the campaign reproduces the
	// same IDs.
	SpanID string `json:"spanID"`
	UnitID string `json:"unitID"`
	// Attempt is the 1-based lease attempt for this unit.
	Attempt     int    `json:"attempt"`
	Round       int    `json:"round"`
	TargetIndex int    `json:"targetIndex"`
	Target      string `json:"target"`
	Worker      string `json:"worker,omitempty"`
	Epoch       int64  `json:"epoch,omitempty"`
	Outcome     string `json:"outcome"`
	// DropReason explains an OutcomeDropped record.
	DropReason string `json:"dropReason,omitempty"`
	Heartbeats int    `json:"heartbeats,omitempty"`

	// Coordinator-side transitions (coordinator clock, ns since collector
	// start). Zero means "did not happen for this attempt".
	QueuedNs   int64 `json:"queuedNs"`
	LeasedNs   int64 `json:"leasedNs,omitempty"`
	ResultNs   int64 `json:"resultNs,omitempty"`
	IngestedNs int64 `json:"ingestedNs,omitempty"`
	// EndNs closes the attempt: IngestedNs for ingested attempts, the
	// requeue sweep time for requeued ones, the submission time for drops.
	EndNs int64 `json:"endNs"`

	// Stitched worker-side sub-spans (mapped onto the coordinator clock).
	LeaseRecvNs int64 `json:"leaseRecvNs,omitempty"`
	ExecStartNs int64 `json:"execStartNs,omitempty"`
	ExecEndNs   int64 `json:"execEndNs,omitempty"`
	PostedNs    int64 `json:"postedNs,omitempty"`
	// OffsetNs is the worker→coordinator clock offset estimate applied.
	OffsetNs int64 `json:"offsetNs,omitempty"`
	// Clamped reports that stitching had to clamp at least one worker
	// timestamp into its causal window (heavy skew or too few heartbeats).
	Clamped bool `json:"clamped,omitempty"`
}

// Stitched reports whether the attempt carries worker-side sub-spans.
func (t *UnitTrail) Stitched() bool { return t.ExecStartNs != 0 || t.ExecEndNs != 0 }

// ExecNs is the attempt's execution duration: the stitched exec span when
// present, otherwise the leased→end window (which bounds it from above).
func (t *UnitTrail) ExecNs() int64 {
	if t.Stitched() {
		return t.ExecEndNs - t.ExecStartNs
	}
	if t.LeasedNs > 0 && t.EndNs >= t.LeasedNs {
		return t.EndNs - t.LeasedNs
	}
	return 0
}

// Validate checks one trail record against the schema: version, identity,
// outcome vocabulary, and the causal ordering contract. The CI fleet-smoke
// job runs this over every line of fleetspans.jsonl.
func (t *UnitTrail) Validate() error {
	if t.Schema != SchemaVersion {
		return fmt.Errorf("span %q: schema %d, want %d", t.SpanID, t.Schema, SchemaVersion)
	}
	if t.SpanID == "" || t.UnitID == "" || t.Target == "" {
		return fmt.Errorf("span %q unit %q: missing identity (spanID/unitID/target)", t.SpanID, t.UnitID)
	}
	if t.Round < 1 || t.TargetIndex < 0 || t.Attempt < 1 {
		return fmt.Errorf("span %q: bad coordinates round=%d targetIndex=%d attempt=%d", t.SpanID, t.Round, t.TargetIndex, t.Attempt)
	}
	switch t.Outcome {
	case OutcomeIngested, OutcomeRequeued, OutcomeDropped:
	default:
		return fmt.Errorf("span %q: unknown outcome %q", t.SpanID, t.Outcome)
	}
	// The causal chain: every recorded transition must be ordered. Zero
	// fields mean "not recorded" and are skipped.
	prev, prevName := int64(0), "start"
	for _, step := range []struct {
		name string
		ns   int64
	}{
		{"queued", t.QueuedNs},
		{"leased", t.LeasedNs},
		{"leaseRecv", t.LeaseRecvNs},
		{"execStart", t.ExecStartNs},
		{"execEnd", t.ExecEndNs},
		{"posted", t.PostedNs},
		{"result", t.ResultNs},
		{"ingested", t.IngestedNs},
	} {
		if step.ns == 0 {
			continue
		}
		if step.ns < prev {
			return fmt.Errorf("span %q attempt %d: causal order violated: %s (%d) < %s (%d)",
				t.SpanID, t.Attempt, step.name, step.ns, prevName, prev)
		}
		prev, prevName = step.ns, step.name
	}
	if t.EndNs < prev {
		return fmt.Errorf("span %q attempt %d: end (%d) < %s (%d)", t.SpanID, t.Attempt, t.EndNs, prevName, prev)
	}
	return nil
}
