//go:build race

package fleetspan

// raceDetectorEnabled reports whether the test binary was built with -race,
// which instruments every call and invalidates ns-level timing assertions.
const raceDetectorEnabled = true
