package fleetspan

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func trailFixture(t *testing.T) []UnitTrail {
	t.Helper()
	c, clk := newTestCollector(Config{Token: "fix"})
	runUnit(c, clk, "r1-t0", 1, 0, "ping", "w1", 1, 0)
	runUnit(c, clk, "r1-t1", 1, 1, "pong", "w2", 2, int64(2e9))
	return c.Trails()
}

func TestTrailRoundTrip(t *testing.T) {
	trails := trailFixture(t)
	path := filepath.Join(t.TempDir(), TrailFile)
	if err := WriteTrails(path, trails); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrails(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, trails) {
		t.Errorf("round trip drifted:\ngot  %+v\nwant %+v", got, trails)
	}
}

func TestLoadTrailsToleratesTornFinalLine(t *testing.T) {
	trails := trailFixture(t)
	path := filepath.Join(t.TempDir(), TrailFile)
	if err := WriteTrails(path, trails); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(data, []byte(`{"schema":1,"spanID":"fix/r9`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrails(path)
	if err != nil {
		t.Fatalf("torn final line should be tolerated: %v", err)
	}
	if len(got) != len(trails) {
		t.Errorf("got %d trails, want %d", len(got), len(trails))
	}
}

func TestLoadTrailsRejectsSchemaViolations(t *testing.T) {
	cases := map[string]string{
		"wrong schema":   `{"schema":2,"spanID":"x/r1/u0","unitID":"r1-t0","attempt":1,"round":1,"targetIndex":0,"target":"t","outcome":"ingested","queuedNs":1,"endNs":2}` + "\n{}\n",
		"bad outcome":    `{"schema":1,"spanID":"x/r1/u0","unitID":"r1-t0","attempt":1,"round":1,"targetIndex":0,"target":"t","outcome":"exploded","queuedNs":1,"endNs":2}` + "\n{}\n",
		"causal reorder": `{"schema":1,"spanID":"x/r1/u0","unitID":"r1-t0","attempt":1,"round":1,"targetIndex":0,"target":"t","outcome":"ingested","queuedNs":5,"leasedNs":4,"endNs":9}` + "\n{}\n",
		"missing target": `{"schema":1,"spanID":"x/r1/u0","unitID":"r1-t0","attempt":1,"round":1,"targetIndex":0,"outcome":"ingested","queuedNs":1,"endNs":2}` + "\n{}\n",
	}
	for name, content := range cases {
		path := filepath.Join(t.TempDir(), TrailFile)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadTrails(path); err == nil {
			t.Errorf("%s: want error, got none", name)
		} else if !strings.Contains(err.Error(), TrailFile) {
			t.Errorf("%s: error lacks file context: %v", name, err)
		}
	}
}
