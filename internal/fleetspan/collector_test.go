package fleetspan

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock; tests drive every transition.
type fakeClock struct{ ns int64 }

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.ns) }
func (c *fakeClock) advance(d time.Duration) { c.ns += d.Nanoseconds() }

const baseNs = int64(1_000_000_000_000)

func newTestCollector(cfg Config) (*Collector, *fakeClock) {
	clk := &fakeClock{ns: baseNs}
	cfg.Clock = clk
	if cfg.Token == "" {
		cfg.Token = "test"
	}
	return NewCollector(cfg), clk
}

// runUnit drives one unit through the full happy path with a skewed worker
// clock: lease at leaseAt, heartbeat teaching the offset, worker spans at
// fixed coordinator instants shifted by skewNs, result, ingest.
func runUnit(c *Collector, clk *fakeClock, unitID string, round, ti int, target, worker string, epoch int64, skewNs int64) {
	c.UnitQueued(unitID, round, ti, target)
	clk.advance(10 * time.Millisecond)
	c.UnitLeased(unitID, worker, epoch)
	leasedUnix := clk.ns
	clk.advance(5 * time.Millisecond)
	c.Heartbeat(worker, unitID, clk.ns+skewNs)
	spans := &WorkerSpans{
		LeaseRecvNs: leasedUnix + int64(1*time.Millisecond) + skewNs,
		ExecStartNs: leasedUnix + int64(2*time.Millisecond) + skewNs,
		ExecEndNs:   leasedUnix + int64(10*time.Millisecond) + skewNs,
		PostedNs:    leasedUnix + int64(11*time.Millisecond) + skewNs,
	}
	clk.advance(7 * time.Millisecond) // result arrives 12ms after lease
	c.UnitResult(unitID, worker, epoch, true, "", spans)
	clk.advance(1 * time.Millisecond)
	c.UnitIngested(unitID)
}

func soleTrail(t *testing.T, c *Collector) UnitTrail {
	t.Helper()
	trails := c.Trails()
	if len(trails) != 1 {
		t.Fatalf("got %d trails, want 1: %+v", len(trails), trails)
	}
	if err := trails[0].Validate(); err != nil {
		t.Fatalf("trail invalid: %v", err)
	}
	return trails[0]
}

func TestStitchingExactWithFastWorkerClock(t *testing.T) {
	c, clk := newTestCollector(Config{})
	const skew = int64(3 * time.Second) // worker clock 3s ahead
	runUnit(c, clk, "r1-t0", 1, 0, "ping", "w1", 7, skew)
	tr := soleTrail(t, c)

	if tr.SpanID != "test/r1/u0" {
		t.Errorf("spanID %q, want test/r1/u0", tr.SpanID)
	}
	leased := tr.LeasedNs
	// The heartbeat's one-way delta was pure skew (no simulated network
	// delay), so stitching recovers the worker instants exactly.
	wantRel := func(d time.Duration) int64 { return leased + d.Nanoseconds() }
	if tr.LeaseRecvNs != wantRel(1*time.Millisecond) ||
		tr.ExecStartNs != wantRel(2*time.Millisecond) ||
		tr.ExecEndNs != wantRel(10*time.Millisecond) ||
		tr.PostedNs != wantRel(11*time.Millisecond) {
		t.Errorf("stitched spans off: %+v (leased %d)", tr, leased)
	}
	if tr.Clamped {
		t.Error("exact stitch should not clamp")
	}
	if tr.OffsetNs != -skew {
		t.Errorf("offset %d, want %d", tr.OffsetNs, -skew)
	}
	if tr.Heartbeats != 1 {
		t.Errorf("heartbeats %d, want 1", tr.Heartbeats)
	}
	if tr.Outcome != OutcomeIngested {
		t.Errorf("outcome %q", tr.Outcome)
	}
}

func TestStitchingExactWithSlowWorkerClock(t *testing.T) {
	c, clk := newTestCollector(Config{})
	const skew = int64(-2 * time.Second) // worker clock 2s behind
	runUnit(c, clk, "r1-t0", 1, 0, "ping", "w1", 7, skew)
	tr := soleTrail(t, c)
	if tr.ExecEndNs-tr.ExecStartNs != int64(8*time.Millisecond) {
		t.Errorf("exec span %dns, want 8ms", tr.ExecEndNs-tr.ExecStartNs)
	}
	if tr.Clamped {
		t.Error("exact stitch should not clamp")
	}
	if tr.OffsetNs != -skew {
		t.Errorf("offset %d, want %d", tr.OffsetNs, -skew)
	}
}

// TestStitchingBackwardsWorkerClock feeds sub-spans whose worker timestamps
// run backwards (a clock step mid-batch). Stitching must clamp rather than
// emit a trail that reorders causal edges.
func TestStitchingBackwardsWorkerClock(t *testing.T) {
	c, clk := newTestCollector(Config{})
	c.UnitQueued("r1-t0", 1, 0, "ping")
	clk.advance(10 * time.Millisecond)
	c.UnitLeased("r1-t0", "w1", 1)
	leasedUnix := clk.ns
	clk.advance(2 * time.Millisecond)
	c.Heartbeat("w1", "r1-t0", clk.ns)
	spans := &WorkerSpans{
		LeaseRecvNs: leasedUnix + int64(time.Millisecond),
		ExecStartNs: leasedUnix - int64(5*time.Second),  // clock stepped back
		ExecEndNs:   leasedUnix - int64(10*time.Second), // and keeps regressing
		PostedNs:    leasedUnix - int64(20*time.Second),
	}
	clk.advance(10 * time.Millisecond)
	c.UnitResult("r1-t0", "w1", 1, true, "", spans)
	clk.advance(time.Millisecond)
	c.UnitIngested("r1-t0")

	tr := soleTrail(t, c)
	if !tr.Clamped {
		t.Error("backwards clock must clamp")
	}
	// Causal chain intact (Validate already checked); every stitched field
	// inside the [leased, result] window.
	for name, ns := range map[string]int64{
		"leaseRecv": tr.LeaseRecvNs, "execStart": tr.ExecStartNs,
		"execEnd": tr.ExecEndNs, "posted": tr.PostedNs,
	} {
		if ns < tr.LeasedNs || ns > tr.ResultNs {
			t.Errorf("%s=%d outside [%d, %d]", name, ns, tr.LeasedNs, tr.ResultNs)
		}
	}
}

// TestStitchingWithoutHeartbeats uses only the result POST's implicit bound.
func TestStitchingWithoutHeartbeats(t *testing.T) {
	c, clk := newTestCollector(Config{})
	c.UnitQueued("r2-t1", 2, 1, "pong")
	clk.advance(time.Millisecond)
	c.UnitLeased("r2-t1", "w9", 3)
	leasedUnix := clk.ns
	spans := &WorkerSpans{
		LeaseRecvNs: leasedUnix + int64(time.Millisecond),
		ExecStartNs: leasedUnix + int64(2*time.Millisecond),
		ExecEndNs:   leasedUnix + int64(3*time.Millisecond),
		PostedNs:    leasedUnix + int64(4*time.Millisecond),
	}
	clk.advance(5 * time.Millisecond)
	c.UnitResult("r2-t1", "w9", 3, true, "", spans)
	c.UnitIngested("r2-t1")
	tr := soleTrail(t, c)
	if !tr.Stitched() {
		t.Fatal("spans not stitched")
	}
	// With only the posted→recv bound, posted maps exactly onto result.
	if tr.PostedNs != tr.ResultNs {
		t.Errorf("posted %d, want result %d", tr.PostedNs, tr.ResultNs)
	}
}

func TestRequeueAndDropLifecycle(t *testing.T) {
	c, clk := newTestCollector(Config{})
	c.UnitQueued("r1-t0", 1, 0, "ping")
	clk.advance(time.Millisecond)
	c.UnitLeased("r1-t0", "w1", 1)
	clk.advance(20 * time.Millisecond)
	c.UnitRequeued("r1-t0") // w1 went silent; lease expired
	clk.advance(time.Millisecond)
	c.UnitLeased("r1-t0", "w2", 2)
	clk.advance(2 * time.Millisecond)
	// w1 comes back with the stale-epoch result: dropped.
	c.UnitResult("r1-t0", "w1", 1, false, "stale lease epoch", nil)
	clk.advance(3 * time.Millisecond)
	c.UnitResult("r1-t0", "w2", 2, true, "", nil)
	c.UnitIngested("r1-t0")

	trails := c.Trails()
	if len(trails) != 3 {
		t.Fatalf("got %d trails, want 3 (requeued, dropped, ingested): %+v", len(trails), trails)
	}
	for i := range trails {
		if err := trails[i].Validate(); err != nil {
			t.Errorf("trail %d invalid: %v", i, err)
		}
	}
	if trails[0].Outcome != OutcomeRequeued || trails[0].Attempt != 1 || trails[0].Worker != "w1" {
		t.Errorf("trail 0: %+v", trails[0])
	}
	byOutcome := map[string]UnitTrail{}
	for _, tr := range trails {
		byOutcome[tr.Outcome] = tr
	}
	if d := byOutcome[OutcomeDropped]; d.DropReason != "stale lease epoch" || d.Worker != "w1" {
		t.Errorf("dropped trail: %+v", d)
	}
	if g := byOutcome[OutcomeIngested]; g.Attempt != 2 || g.Worker != "w2" {
		t.Errorf("ingested trail: %+v", g)
	}
	h := c.Health()
	if h.TimeLostToRequeuesMs < 19 {
		t.Errorf("time lost to requeues %.1fms, want ≥ ~20ms", h.TimeLostToRequeuesMs)
	}
}

// TestNilCollectorIsSafe: every hook must be callable through a nil
// collector — the untraced fast path.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.UnitQueued("u", 1, 0, "t")
	c.UnitLeased("u", "w", 1)
	c.Heartbeat("w", "u", 123)
	c.UnitRequeued("u")
	c.UnitResult("u", "w", 1, true, "", &WorkerSpans{})
	c.UnitIngested("u")
	if c.Enabled() {
		t.Error("nil collector reports enabled")
	}
	if got := c.Trails(); got != nil {
		t.Errorf("nil collector trails: %v", got)
	}
	if h := c.Health(); h.Score != 100 {
		t.Errorf("nil collector health score %d", h.Score)
	}
}

func TestSpanIDDeterminism(t *testing.T) {
	build := func() []UnitTrail {
		c, clk := newTestCollector(Config{Token: "abc123"})
		runUnit(c, clk, "r1-t0", 1, 0, "ping", "w1", 1, 0)
		runUnit(c, clk, "r1-t1", 1, 1, "pong", "w2", 2, 0)
		return c.Trails()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("trail counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SpanID != b[i].SpanID {
			t.Errorf("span %d: %q vs %q", i, a[i].SpanID, b[i].SpanID)
		}
	}
	if a[0].SpanID != "abc123/r1/u0" || a[1].SpanID != "abc123/r1/u1" {
		t.Errorf("span IDs: %q, %q", a[0].SpanID, a[1].SpanID)
	}
}
