package fleetspan

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Caps keep the collector's memory bounded on long campaigns: these are
// diagnostic rings, not archives — the full trail lives in fleetspans.jsonl.
const (
	maxExecSamplesPerTarget = 256
	maxLeaseLatPerWorker    = 64
	maxSparklinePerWorker   = 32
	maxRequeueEvents        = 1024
)

// Config parameterizes NewCollector. The zero value works; health-detector
// knobs default to the documented values.
type Config struct {
	// Token is the campaign's deterministic identity prefix for span IDs
	// (build commit / tool+label — never a timestamp). "campaign" if empty.
	Token string
	// Clock overrides the system clock (tests).
	Clock Clock

	// StragglerFactor flags an in-flight unit whose lease has been out
	// longer than Factor × the target's p95 completed exec time (default 4;
	// needs StragglerMinSamples completed samples for the target, default 3).
	StragglerFactor     float64
	StragglerMinSamples int
	// StormWindow/StormThreshold flag a requeue storm: at least Threshold
	// requeues (default 3) within the trailing Window (default 60s).
	StormWindow    time.Duration
	StormThreshold int
	// TrendFactor flags a worker whose recent lease-latency mean is at least
	// Factor × its earlier mean (default 2; needs TrendMinSamples stitched
	// samples, default 6).
	TrendFactor     float64
	TrendMinSamples int
}

func (c *Config) applyDefaults() {
	if c.Token == "" {
		c.Token = "campaign"
	}
	if c.Clock == nil {
		c.Clock = systemClock{}
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 4
	}
	if c.StragglerMinSamples <= 0 {
		c.StragglerMinSamples = 3
	}
	if c.StormWindow <= 0 {
		c.StormWindow = time.Minute
	}
	if c.StormThreshold <= 0 {
		c.StormThreshold = 3
	}
	if c.TrendFactor <= 0 {
		c.TrendFactor = 2
	}
	if c.TrendMinSamples <= 0 {
		c.TrendMinSamples = 6
	}
}

// unitMeta is a unit's immutable identity, registered at first queue time so
// late/dropped results can still be attributed.
type unitMeta struct {
	round       int
	targetIndex int
	target      string
}

// attempt is one in-flight lease: the trail under construction.
type attempt struct {
	trail UnitTrail
}

// workerState is the collector's per-worker book: the clock-offset estimate
// and the latency rings the health detectors read.
type workerState struct {
	// offsetNs maps worker UnixNano onto coordinator UnixNano
	// (coord ≈ worker + offset). Minimum over observed one-way deltas —
	// every sample is true skew plus nonnegative network delay, so the
	// minimum is the tightest upper bound available without a reverse path.
	offsetNs int64
	offsetOK bool
	// leaseLatNs rings stitched lease latencies (grant → worker receipt).
	leaseLatNs []int64
	// execRecentNs rings recent exec durations for the dashboard sparkline.
	execRecentNs []int64
	units        int
}

// requeueEvent is one lease expiry, for storm detection.
type requeueEvent struct {
	atNs   int64
	worker string
}

// Collector is the coordinator-side flight recorder. All methods are no-ops
// on a nil receiver — the untraced fast path — and safe for concurrent use
// otherwise. It never calls back into the fleet layer, so hooks may be
// invoked while the caller holds its own locks.
type Collector struct {
	mu      sync.Mutex
	cfg     Config
	clock   Clock
	startNs int64 // coordinator UnixNano at collector creation

	units    map[string]unitMeta
	queuedAt map[string]int64 // latest queue-entry time per unit (rel ns)
	attemptN map[string]int
	active   map[string]*attempt
	workers  map[string]*workerState
	requeues []requeueEvent
	trails   []UnitTrail

	execByTarget    map[string][]int64
	unitsDone       int
	requeueTotal    int64
	lostToRequeueNs int64
}

// NewCollector builds a collector; its creation instant is time zero for
// every trail timestamp.
func NewCollector(cfg Config) *Collector {
	cfg.applyDefaults()
	return &Collector{
		cfg:          cfg,
		clock:        cfg.Clock,
		startNs:      cfg.Clock.Now().UnixNano(),
		units:        make(map[string]unitMeta),
		queuedAt:     make(map[string]int64),
		attemptN:     make(map[string]int),
		active:       make(map[string]*attempt),
		workers:      make(map[string]*workerState),
		execByTarget: make(map[string][]int64),
	}
}

// Enabled reports whether spans are being recorded (false on nil).
func (c *Collector) Enabled() bool { return c != nil }

// nowRel is the current coordinator time relative to collector start. Floors
// at 1 so "recorded" is always distinguishable from the zero "absent".
func (c *Collector) nowRel() int64 {
	ns := c.clock.Now().UnixNano() - c.startNs
	if ns < 1 {
		ns = 1
	}
	return ns
}

// spanID builds the unit's deterministic identity: token + round + unit
// index. No timestamps — a replayed campaign reproduces the same IDs.
func (c *Collector) spanID(round, targetIndex int) string {
	return fmt.Sprintf("%s/r%d/u%d", c.cfg.Token, round, targetIndex)
}

// UnitQueued records a unit entering the pending queue (first enqueue or a
// campaign-driver re-add; requeues are recorded by UnitRequeued).
func (c *Collector) UnitQueued(unitID string, round, targetIndex int, target string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.units[unitID]; ok {
		return
	}
	c.units[unitID] = unitMeta{round: round, targetIndex: targetIndex, target: target}
	c.queuedAt[unitID] = c.nowRel()
}

// UnitLeased opens a new lease attempt for the unit.
func (c *Collector) UnitLeased(unitID, worker string, epoch int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, ok := c.units[unitID]
	if !ok {
		return
	}
	c.attemptN[unitID]++
	now := c.nowRel()
	c.active[unitID] = &attempt{trail: UnitTrail{
		Schema:      SchemaVersion,
		SpanID:      c.spanID(meta.round, meta.targetIndex),
		UnitID:      unitID,
		Attempt:     c.attemptN[unitID],
		Round:       meta.round,
		TargetIndex: meta.targetIndex,
		Target:      meta.target,
		Worker:      worker,
		Epoch:       epoch,
		QueuedNs:    c.queuedAt[unitID],
		LeasedNs:    now,
	}}
	ws := c.worker(worker)
	ws.units++
}

// Heartbeat folds one worker heartbeat in: it refreshes the worker's clock
// offset estimate from the round-trip's one-way delta and counts against the
// unit's active attempt. sentUnixNs is the worker's local send time; zero
// (an untraced worker) still counts the heartbeat but teaches no offset.
func (c *Collector) Heartbeat(worker, unitID string, sentUnixNs int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sentUnixNs != 0 {
		recvUnixNs := c.startNs + c.nowRel()
		c.worker(worker).observeOffset(recvUnixNs - sentUnixNs)
	}
	if at, ok := c.active[unitID]; ok && at.trail.Worker == worker {
		at.trail.Heartbeats++
	}
}

// UnitRequeued closes the unit's active attempt as requeued (lease expiry)
// and re-stamps its queue-entry time.
func (c *Collector) UnitRequeued(unitID string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.nowRel()
	if at, ok := c.active[unitID]; ok {
		at.trail.Outcome = OutcomeRequeued
		at.trail.EndNs = now
		if at.trail.LeasedNs > 0 {
			c.lostToRequeueNs += now - at.trail.LeasedNs
		}
		c.trails = append(c.trails, at.trail)
		delete(c.active, unitID)
		c.requeueTotal++
		c.requeues = append(c.requeues, requeueEvent{atNs: now, worker: at.trail.Worker})
		if len(c.requeues) > maxRequeueEvents {
			c.requeues = c.requeues[len(c.requeues)-maxRequeueEvents:]
		}
	}
	c.queuedAt[unitID] = now
}

// UnitResult records a result submission. An accepted result stamps the
// active attempt and stitches the worker's sub-spans onto the coordinator
// clock; a rejected one is recorded as a dropped attempt so wasted work is
// visible in the trail.
func (c *Collector) UnitResult(unitID, worker string, epoch int64, accepted bool, reason string, spans *WorkerSpans) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.nowRel()
	if !accepted {
		meta := c.units[unitID]
		n := c.attemptN[unitID]
		if n < 1 {
			n = 1
		}
		c.trails = append(c.trails, UnitTrail{
			Schema:      SchemaVersion,
			SpanID:      c.spanID(max(meta.round, 1), meta.targetIndex),
			UnitID:      unitID,
			Attempt:     n,
			Round:       max(meta.round, 1),
			TargetIndex: meta.targetIndex,
			Target:      orUnknown(meta.target),
			Worker:      worker,
			Epoch:       epoch,
			Outcome:     OutcomeDropped,
			DropReason:  reason,
			ResultNs:    now,
			EndNs:       now,
		})
		return
	}
	at, ok := c.active[unitID]
	if !ok || at.trail.Worker != worker || at.trail.Epoch != epoch {
		return
	}
	at.trail.ResultNs = now
	if spans != nil {
		c.stitchLocked(&at.trail, worker, spans)
	}
}

// UnitIngested closes the unit's attempt as ingested — the merge into the
// authoritative corpus happened. Exec-duration books for straggler detection
// and the worker sparkline are fed here.
func (c *Collector) UnitIngested(unitID string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	at, ok := c.active[unitID]
	if !ok {
		return
	}
	now := c.nowRel()
	at.trail.Outcome = OutcomeIngested
	at.trail.IngestedNs = now
	at.trail.EndNs = now
	if at.trail.ResultNs == 0 {
		at.trail.ResultNs = now
	}
	c.trails = append(c.trails, at.trail)
	delete(c.active, unitID)
	c.unitsDone++

	exec := at.trail.ExecNs()
	if exec > 0 {
		tgt := at.trail.Target
		c.execByTarget[tgt] = appendCapped(c.execByTarget[tgt], exec, maxExecSamplesPerTarget)
		if ws, ok := c.workers[at.trail.Worker]; ok {
			ws.execRecentNs = appendCapped(ws.execRecentNs, exec, maxSparklinePerWorker)
		}
	}
}

// stitchLocked maps the worker's absolute sub-span timestamps onto the
// coordinator clock and clamps each into its causal window, so
// leased ≤ leaseRecv ≤ execStart ≤ execEnd ≤ posted ≤ result holds no
// matter how fast, slow, or backwards the worker's clock ran.
func (c *Collector) stitchLocked(t *UnitTrail, worker string, spans *WorkerSpans) {
	if spans.ExecStartNs == 0 && spans.ExecEndNs == 0 {
		return
	}
	// Offset estimate: the heartbeat-taught minimum when available, tightened
	// by the result POST itself (recv − posted is skew + upload delay, another
	// upper bound on skew).
	recvUnixNs := c.startNs + t.ResultNs
	off := recvUnixNs - spans.PostedNs
	if ws, ok := c.workers[worker]; ok && ws.offsetOK && ws.offsetNs < off {
		off = ws.offsetNs
	}
	t.OffsetNs = off
	mapTs := func(workerNs int64) int64 { return workerNs + off - c.startNs }

	lo, hi := t.LeasedNs, t.ResultNs
	clamp := func(ns int64) int64 {
		was := ns
		if ns < lo {
			ns = lo
		}
		if ns > hi {
			ns = hi
		}
		if ns != was {
			t.Clamped = true
		}
		lo = ns // each step floors the next: causal chain by construction
		return ns
	}
	t.LeaseRecvNs = clamp(mapTs(spans.LeaseRecvNs))
	t.ExecStartNs = clamp(mapTs(spans.ExecStartNs))
	t.ExecEndNs = clamp(mapTs(spans.ExecEndNs))
	t.PostedNs = clamp(mapTs(spans.PostedNs))

	if ws := c.worker(worker); true {
		ws.leaseLatNs = appendCapped(ws.leaseLatNs, t.LeaseRecvNs-t.LeasedNs, maxLeaseLatPerWorker)
	}
}

// Trails snapshots every closed attempt, sorted by unit coordinates then
// attempt — the stable order fleetspans.jsonl is written in.
func (c *Collector) Trails() []UnitTrail {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]UnitTrail(nil), c.trails...)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.TargetIndex != b.TargetIndex {
			return a.TargetIndex < b.TargetIndex
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		return a.EndNs < b.EndNs
	})
	return out
}

// worker returns (creating) the per-worker book.
func (c *Collector) worker(name string) *workerState {
	ws, ok := c.workers[name]
	if !ok {
		ws = &workerState{}
		c.workers[name] = ws
	}
	return ws
}

// observeOffset folds one one-way delta (recv − sent = skew + delay ≥ skew)
// into the minimum-tracking estimate.
func (w *workerState) observeOffset(deltaNs int64) {
	if !w.offsetOK || deltaNs < w.offsetNs {
		w.offsetNs = deltaNs
		w.offsetOK = true
	}
}

// appendCapped appends keeping at most cap trailing samples.
func appendCapped(s []int64, v int64, capN int) []int64 {
	s = append(s, v)
	if len(s) > capN {
		s = s[len(s)-capN:]
	}
	return s
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
