package fleetspan

import (
	"fmt"
	"sort"
)

// Anomaly kinds surfaced on /fleet/health.
const (
	AnomalyStraggler    = "straggler"
	AnomalyRequeueStorm = "requeue_storm"
	AnomalyLeaseTrend   = "lease_latency_trend"
)

// Health-score penalties per anomaly, subtracted from 100 and floored at 0.
// Requeue storms weigh heaviest — they waste whole batches; a straggler
// delays one unit; a latency trend is an early warning.
const (
	penaltyStraggler = 15
	penaltyStorm     = 25
	penaltyTrend     = 10
)

// Anomaly is one live finding of the health detectors.
type Anomaly struct {
	Kind   string `json:"kind"`
	Unit   string `json:"unit,omitempty"`
	Worker string `json:"worker,omitempty"`
	Target string `json:"target,omitempty"`
	// Detail is the human explanation ("exec 12.0s > 4×p95 2.1s").
	Detail string `json:"detail"`
}

// WorkerHealth is one worker's row in the flight deck: volume, lease-latency
// stats, and the recent exec durations the dashboard renders as a sparkline.
type WorkerHealth struct {
	Worker string `json:"worker"`
	Units  int    `json:"units"`
	// LeaseP50Ms is the median stitched grant→receipt latency.
	LeaseP50Ms float64 `json:"leaseP50Ms"`
	// LeaseTrend is recent-half mean over earlier-half mean (1 ≈ steady,
	// ≥ TrendFactor flags the worker); 0 when too few samples.
	LeaseTrend float64 `json:"leaseTrend"`
	// SparklineMs is the worker's recent exec durations, oldest first.
	SparklineMs []float64 `json:"sparklineMs,omitempty"`
}

// Health is the /fleet/health snapshot: a 0–100 campaign score, the live
// anomaly list, and per-worker vitals.
type Health struct {
	Schema        int   `json:"schema"`
	Score         int   `json:"score"`
	UnitsInFlight int   `json:"unitsInFlight"`
	UnitsDone     int   `json:"unitsDone"`
	Requeues      int64 `json:"requeues"`
	// RecentRequeues counts requeues inside the storm window.
	RecentRequeues       int            `json:"recentRequeues"`
	TimeLostToRequeuesMs float64        `json:"timeLostToRequeuesMs"`
	Anomalies            []Anomaly      `json:"anomalies,omitempty"`
	Workers              []WorkerHealth `json:"workers,omitempty"`
}

// Health runs the anomaly detectors against current state and scores the
// campaign. Detectors are windowed, so anomalies age out and the score
// recovers on their own — no reset call. Nil collector: a perfect empty
// report (the endpoint is only mounted when tracing is on, but callers
// stay nil-safe).
func (c *Collector) Health() Health {
	if c == nil {
		return Health{Schema: SchemaVersion, Score: 100}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.nowRel()
	h := Health{
		Schema:               SchemaVersion,
		UnitsInFlight:        len(c.active),
		UnitsDone:            c.unitsDone,
		Requeues:             c.requeueTotal,
		TimeLostToRequeuesMs: float64(c.lostToRequeueNs) / 1e6,
	}

	// Straggler: an in-flight lease out longer than Factor × the target's
	// p95 completed exec time. Robust (quantile, not mean) and per-target,
	// so one slow benchmark doesn't flag every other target's units.
	var inflight []string
	for id := range c.active {
		inflight = append(inflight, id)
	}
	sort.Strings(inflight)
	for _, id := range inflight {
		at := c.active[id]
		samples := c.execByTarget[at.trail.Target]
		if len(samples) < c.cfg.StragglerMinSamples || at.trail.LeasedNs == 0 {
			continue
		}
		p95 := quantile(samples, 0.95)
		out := now - at.trail.LeasedNs
		if float64(out) > c.cfg.StragglerFactor*float64(p95) {
			h.Anomalies = append(h.Anomalies, Anomaly{
				Kind: AnomalyStraggler, Unit: id, Worker: at.trail.Worker, Target: at.trail.Target,
				Detail: fmt.Sprintf("lease out %.1fs > %.0f×p95 %.1fs", float64(out)/1e9, c.cfg.StragglerFactor, float64(p95)/1e9),
			})
		}
	}

	// Requeue storm: too many lease expiries inside the trailing window.
	windowNs := c.cfg.StormWindow.Nanoseconds()
	recent, byWorker := 0, map[string]int{}
	for _, ev := range c.requeues {
		if now-ev.atNs <= windowNs {
			recent++
			byWorker[ev.worker]++
		}
	}
	h.RecentRequeues = recent
	if recent >= c.cfg.StormThreshold {
		worst, worstN := "", 0
		for w, n := range byWorker {
			if n > worstN || (n == worstN && w < worst) {
				worst, worstN = w, n
			}
		}
		h.Anomalies = append(h.Anomalies, Anomaly{
			Kind: AnomalyRequeueStorm, Worker: worst,
			Detail: fmt.Sprintf("%d requeues in %s (worst offender %s: %d)", recent, c.cfg.StormWindow, worst, worstN),
		})
	}

	// Per-worker vitals + lease-latency trend (recent half vs earlier half).
	var names []string
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := c.workers[name]
		wh := WorkerHealth{Worker: name, Units: ws.units}
		if len(ws.leaseLatNs) > 0 {
			wh.LeaseP50Ms = float64(quantile(ws.leaseLatNs, 0.5)) / 1e6
		}
		if len(ws.leaseLatNs) >= c.cfg.TrendMinSamples {
			half := len(ws.leaseLatNs) / 2
			earlier, recent := mean(ws.leaseLatNs[:half]), mean(ws.leaseLatNs[half:])
			if earlier > 0 {
				wh.LeaseTrend = recent / earlier
				if wh.LeaseTrend >= c.cfg.TrendFactor {
					h.Anomalies = append(h.Anomalies, Anomaly{
						Kind: AnomalyLeaseTrend, Worker: name,
						Detail: fmt.Sprintf("lease latency trending up %.1f× (%.2fms → %.2fms)", wh.LeaseTrend, earlier/1e6, recent/1e6),
					})
				}
			}
		}
		for _, ns := range ws.execRecentNs {
			wh.SparklineMs = append(wh.SparklineMs, float64(ns)/1e6)
		}
		h.Workers = append(h.Workers, wh)
	}

	score := 100
	for _, a := range h.Anomalies {
		switch a.Kind {
		case AnomalyStraggler:
			score -= penaltyStraggler
		case AnomalyRequeueStorm:
			score -= penaltyStorm
		case AnomalyLeaseTrend:
			score -= penaltyTrend
		}
	}
	if score < 0 {
		score = 0
	}
	h.Score = score
	return h
}

// quantile is the nearest-rank q-quantile of samples (copied and sorted).
func quantile(samples []int64, q float64) int64 {
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

func mean(s []int64) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum int64
	for _, v := range s {
		sum += v
	}
	return float64(sum) / float64(len(s))
}
