package lockset

import (
	"testing"
	"testing/quick"

	"racefuzzer/internal/event"
)

func fromInts(xs []uint8) Set {
	s := Empty()
	for _, x := range xs {
		s = s.Add(event.LockID(x % 16))
	}
	return s
}

func TestBasicOps(t *testing.T) {
	s := Empty()
	if s.Len() != 0 || s.Contains(1) {
		t.Fatal("empty set wrong")
	}
	s = s.Add(3).Add(1).Add(2).Add(1)
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	for _, id := range []event.LockID{1, 2, 3} {
		if !s.Contains(id) {
			t.Fatalf("missing %v", id)
		}
	}
	if s.Contains(0) || s.Contains(4) {
		t.Fatal("spurious membership")
	}
	got := s.Slice()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("slice not sorted: %v", got)
	}
	s2 := s.Remove(2)
	if s2.Contains(2) || s2.Len() != 2 {
		t.Fatal("remove failed")
	}
	if !s.Contains(2) {
		t.Fatal("Remove mutated the receiver")
	}
	if s.Remove(99).Len() != 3 {
		t.Fatal("removing absent element changed the set")
	}
}

func TestDisjointAndIntersect(t *testing.T) {
	a := Of(1, 3, 5)
	b := Of(2, 4, 6)
	c := Of(5, 6)
	if !a.Disjoint(b) || !b.Disjoint(a) {
		t.Fatal("disjoint sets reported overlapping")
	}
	if a.Disjoint(c) || b.Disjoint(c) {
		t.Fatal("overlapping sets reported disjoint")
	}
	if !Empty().Disjoint(a) || !a.Disjoint(Empty()) {
		t.Fatal("empty set must be disjoint from everything")
	}
	i := a.Intersect(c)
	if i.Len() != 1 || !i.Contains(5) {
		t.Fatalf("intersect = %v", i)
	}
	if !a.Intersect(b).Equal(Empty()) {
		t.Fatal("intersect of disjoint sets nonempty")
	}
}

func TestSignatureAndString(t *testing.T) {
	if Empty().Signature() != "" {
		t.Fatal("empty signature")
	}
	if Of(2, 1).Signature() != "1,2" {
		t.Fatalf("signature = %q", Of(2, 1).Signature())
	}
	if Of(2, 1).String() != "{L1 L2}" {
		t.Fatalf("string = %q", Of(2, 1).String())
	}
	if Empty().String() != "{}" {
		t.Fatal("empty string form")
	}
}

// Property: Disjoint(a,b) ⇔ Intersect(a,b) is empty.
func TestQuickDisjointIffEmptyIntersection(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := fromInts(xs), fromInts(ys)
		return a.Disjoint(b) == (a.Intersect(b).Len() == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add is idempotent and order-independent; result stays sorted.
func TestQuickAddSetSemantics(t *testing.T) {
	f := func(xs []uint8) bool {
		a := fromInts(xs)
		// Re-adding everything changes nothing.
		b := a
		for _, x := range xs {
			b = b.Add(event.LockID(x % 16))
		}
		if !a.Equal(b) {
			return false
		}
		s := a.Slice()
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: membership after Add, non-membership after Remove.
func TestQuickAddRemoveMembership(t *testing.T) {
	f := func(xs []uint8, y uint8) bool {
		id := event.LockID(y % 16)
		a := fromInts(xs)
		if !a.Add(id).Contains(id) {
			return false
		}
		return !a.Remove(id).Contains(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signature equality ⇔ set equality.
func TestQuickSignatureFaithful(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := fromInts(xs), fromInts(ys)
		return (a.Signature() == b.Signature()) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
