// Package lockset implements locksets: the set of locks a thread holds when
// it performs a memory access. The hybrid race condition (§2.2) requires the
// locksets of two accesses to be disjoint (L_i ∩ L_j = ∅): if the accesses
// share a lock they are serialized and cannot race.
//
// Sets are kept as sorted slices; they are tiny in practice (programs rarely
// hold more than a handful of locks), so sorted-slice operations beat maps.
package lockset

import (
	"fmt"
	"strings"

	"racefuzzer/internal/event"
)

// Set is an immutable-by-convention sorted set of lock IDs. The zero value
// is the empty set.
type Set struct {
	ids []event.LockID
}

// Empty returns the empty lockset.
func Empty() Set { return Set{} }

// Of builds a set from the given (possibly unsorted, possibly duplicated)
// lock IDs.
func Of(ids ...event.LockID) Set {
	s := Set{}
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// Len returns the number of locks in the set.
func (s Set) Len() int { return len(s.ids) }

// Contains reports membership.
func (s Set) Contains(id event.LockID) bool {
	for _, x := range s.ids {
		if x == id {
			return true
		}
		if x > id {
			return false
		}
	}
	return false
}

// Add returns s ∪ {id}. The receiver is not modified.
func (s Set) Add(id event.LockID) Set {
	i := 0
	for i < len(s.ids) && s.ids[i] < id {
		i++
	}
	if i < len(s.ids) && s.ids[i] == id {
		return s
	}
	out := make([]event.LockID, 0, len(s.ids)+1)
	out = append(out, s.ids[:i]...)
	out = append(out, id)
	out = append(out, s.ids[i:]...)
	return Set{ids: out}
}

// Remove returns s \ {id}. The receiver is not modified.
func (s Set) Remove(id event.LockID) Set {
	for i, x := range s.ids {
		if x == id {
			out := make([]event.LockID, 0, len(s.ids)-1)
			out = append(out, s.ids[:i]...)
			out = append(out, s.ids[i+1:]...)
			return Set{ids: out}
		}
	}
	return s
}

// Disjoint reports whether s ∩ o = ∅ — the lockset conjunct of the hybrid
// race condition. Runs in O(len(s)+len(o)) over the sorted slices.
func (s Set) Disjoint(o Set) bool {
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] == o.ids[j]:
			return false
		case s.ids[i] < o.ids[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	var out []event.LockID
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] == o.ids[j]:
			out = append(out, s.ids[i])
			i++
			j++
		case s.ids[i] < o.ids[j]:
			i++
		default:
			j++
		}
	}
	return Set{ids: out}
}

// Slice returns the sorted members as a fresh slice.
func (s Set) Slice() []event.LockID {
	out := make([]event.LockID, len(s.ids))
	copy(out, s.ids)
	return out
}

// Members returns the set's ids in ascending order WITHOUT copying. The
// returned slice is the set's internal storage: callers must treat it as
// read-only. It is safe to retain — Add and Remove build fresh slices, so a
// handed-out slice is never mutated. This is the allocation-free accessor
// the scheduler's event emission uses (one per MEM/LOCK event otherwise).
func (s Set) Members() []event.LockID { return s.ids }

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	if len(s.ids) != len(o.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != o.ids[i] {
			return false
		}
	}
	return true
}

// Signature returns a compact string that identifies the set's contents,
// used by the hybrid detector to deduplicate per-location access history.
func (s Set) Signature() string {
	if len(s.ids) == 0 {
		return ""
	}
	var b strings.Builder
	for i, id := range s.ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(id))
	}
	return b.String()
}

func (s Set) String() string {
	if len(s.ids) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.ids))
	for i, id := range s.ids {
		parts[i] = id.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
