package collections

import (
	"fmt"

	"racefuzzer/internal/conc"
)

// hmNode is one chained HashMap entry; value and next are instrumented.
type hmNode struct {
	key  int
	val  *conc.Var[int]
	next *conc.Var[*hmNode]
}

// HashMap models java.util.HashMap (JDK 1.4): an unsynchronized chained
// hash table with size, modCount and fail-fast iteration over entries.
type HashMap struct {
	name     string
	buckets  *conc.Array[*hmNode]
	size     *conc.IntVar
	modCount *conc.IntVar
	nodeSeq  int
}

// NewHashMap allocates an empty HashMap.
func NewHashMap(t *conc.Thread, name string) *HashMap {
	return &HashMap{
		name:     name,
		buckets:  conc.NewArray[*hmNode](t, name+".table", hsBuckets),
		size:     conc.NewIntVar(t, name+".size", 0),
		modCount: conc.NewIntVar(t, name+".modCount", 0),
	}
}

// Put maps key to val, returning the previous value and whether one existed.
func (m *HashMap) Put(t *conc.Thread, key, val int) (int, bool) {
	b := hashOf(key)
	for e := m.buckets.Get(t, b); e != nil; e = e.next.Get(t) {
		if e.key == key {
			old := e.val.Get(t)
			e.val.Set(t, val)
			return old, true
		}
	}
	m.nodeSeq++
	base := fmt.Sprintf("%s.entry%d", m.name, m.nodeSeq)
	n := &hmNode{
		key:  key,
		val:  conc.NewVar(t, base+".value", val),
		next: conc.NewVar[*hmNode](t, base+".next", nil),
	}
	n.next.Set(t, m.buckets.Get(t, b))
	m.buckets.Set(t, b, n)
	m.size.Add(t, 1)
	m.modCount.Add(t, 1)
	return 0, false
}

// Get returns the value mapped to key and whether it exists.
func (m *HashMap) Get(t *conc.Thread, key int) (int, bool) {
	for e := m.buckets.Get(t, hashOf(key)); e != nil; e = e.next.Get(t) {
		if e.key == key {
			return e.val.Get(t), true
		}
	}
	return 0, false
}

// ContainsKey reports whether key is mapped.
func (m *HashMap) ContainsKey(t *conc.Thread, key int) bool {
	_, ok := m.Get(t, key)
	return ok
}

// Remove unmaps key, returning the removed value and whether it existed.
func (m *HashMap) Remove(t *conc.Thread, key int) (int, bool) {
	b := hashOf(key)
	var prev *hmNode
	for e := m.buckets.Get(t, b); e != nil; e = e.next.Get(t) {
		if e.key == key {
			v := e.val.Get(t)
			if prev == nil {
				m.buckets.Set(t, b, e.next.Get(t))
			} else {
				prev.next.Set(t, e.next.Get(t))
			}
			m.size.Add(t, -1)
			m.modCount.Add(t, 1)
			return v, true
		}
		prev = e
	}
	return 0, false
}

// Size returns the number of mappings.
func (m *HashMap) Size(t *conc.Thread) int { return m.size.Get(t) }

// Clear removes every mapping.
func (m *HashMap) Clear(t *conc.Thread) {
	for b := 0; b < hsBuckets; b++ {
		m.buckets.Set(t, b, nil)
	}
	m.size.Set(t, 0)
	m.modCount.Add(t, 1)
}

// Entry is one key/value snapshot produced by iteration.
type Entry struct{ Key, Val int }

// Entries iterates the map fail-fast, returning entry snapshots; it throws
// ConcurrentModificationException when the map changes underneath it.
func (m *HashMap) Entries(t *conc.Thread) []Entry {
	expected := m.modCount.Get(t)
	var out []Entry
	for b := 0; b < hsBuckets; b++ {
		for e := m.buckets.Get(t, b); e != nil; e = e.next.Get(t) {
			if m.modCount.Get(t) != expected {
				throwCME(t, m.name)
			}
			out = append(out, Entry{Key: e.key, Val: e.val.Get(t)})
		}
	}
	return out
}

// Hashtable models java.util.Hashtable (JDK 1.0): every method synchronized
// on the table's own monitor — the map analogue of Vector.
type Hashtable struct {
	mon   *conc.Mutex
	inner *HashMap
}

// NewHashtable allocates an empty Hashtable.
func NewHashtable(t *conc.Thread, name string) *Hashtable {
	return &Hashtable{
		mon:   conc.NewMutex(t, name+".monitor"),
		inner: NewHashMap(t, name),
	}
}

// Put maps key to val (synchronized).
func (h *Hashtable) Put(t *conc.Thread, key, val int) (int, bool) {
	h.mon.Lock(t)
	old, ok := h.inner.Put(t, key, val)
	h.mon.Unlock(t)
	return old, ok
}

// Get returns key's value (synchronized).
func (h *Hashtable) Get(t *conc.Thread, key int) (int, bool) {
	h.mon.Lock(t)
	v, ok := h.inner.Get(t, key)
	h.mon.Unlock(t)
	return v, ok
}

// Remove unmaps key (synchronized).
func (h *Hashtable) Remove(t *conc.Thread, key int) (int, bool) {
	h.mon.Lock(t)
	v, ok := h.inner.Remove(t, key)
	h.mon.Unlock(t)
	return v, ok
}

// Size returns the mapping count (synchronized).
func (h *Hashtable) Size(t *conc.Thread) int {
	h.mon.Lock(t)
	n := h.inner.Size(t)
	h.mon.Unlock(t)
	return n
}

// Entries snapshots the table (synchronized — unlike Vector's Enumeration,
// Hashtable's synchronized methods cover whole-table iteration here).
func (h *Hashtable) Entries(t *conc.Thread) []Entry {
	h.mon.Lock(t)
	out := h.inner.Entries(t)
	h.mon.Unlock(t)
	return out
}
