// Package collections is a miniature reimplementation of the Java
// collections library — just enough of JDK 1.1's Vector and JDK 1.4.2's
// ArrayList, LinkedList, HashSet and TreeSet, their fail-fast iterators, and
// the Collections.synchronizedList/synchronizedSet decorators — to reproduce
// the concurrency bugs the paper reports in §5.3 for the same structural
// reason they exist in Java:
//
//   - every structure maintains a modCount; iterators snapshot it and throw
//     ConcurrentModificationException when it changes underneath them;
//   - bulk operations (containsAll, equals, addAll, removeAll) are inherited
//     from AbstractCollection-style helpers that iterate their *argument*
//     collection directly;
//   - the synchronized decorators lock only their own mutex, so a bulk
//     operation iterates the argument without the argument's lock — the
//     thread-unsafe iterator use the paper describes.
//
// All state lives in instrumented conc.Vars/Arrays, so the races are visible
// to the detectors and schedulable by RaceFuzzer. Elements are ints.
package collections

import (
	"errors"
	"fmt"

	"racefuzzer/internal/conc"
)

// Model exceptions, matching the Java exception classes the paper observes.
var (
	// ErrConcurrentModification is thrown by fail-fast iterators.
	ErrConcurrentModification = errors.New("ConcurrentModificationException")
	// ErrNoSuchElement is thrown by Next past the end.
	ErrNoSuchElement = errors.New("NoSuchElementException")
	// ErrIndexOutOfBounds is thrown by positional access outside [0, size).
	ErrIndexOutOfBounds = errors.New("IndexOutOfBoundsException")
	// ErrIllegalState is thrown by Iterator.Remove before Next.
	ErrIllegalState = errors.New("IllegalStateException")
	// ErrCapacityExceeded is a model artifact: backing arrays are fixed-size
	// (drivers never legitimately exceed them).
	ErrCapacityExceeded = errors.New("CapacityExceededException")
)

// Iterator is java.util.Iterator over int elements.
type Iterator interface {
	// HasNext reports whether Next would return an element.
	HasNext(t *conc.Thread) bool
	// Next returns the next element; it throws NoSuchElementException past
	// the end and ConcurrentModificationException if the backing structure
	// changed since the iterator was created (fail-fast).
	Next(t *conc.Thread) int
	// Remove removes the element last returned by Next; it throws
	// IllegalStateException if Next has not been called.
	Remove(t *conc.Thread)
}

// Collection is the java.util.Collection slice this model needs.
type Collection interface {
	// Add inserts v; for sets it returns false if v was present.
	Add(t *conc.Thread, v int) bool
	// Remove deletes one occurrence of v, reporting whether it was present.
	Remove(t *conc.Thread, v int) bool
	// Contains reports membership.
	Contains(t *conc.Thread, v int) bool
	// Size returns the element count.
	Size(t *conc.Thread) int
	// Clear removes all elements.
	Clear(t *conc.Thread)
	// Iterator returns a fail-fast iterator.
	Iterator(t *conc.Thread) Iterator
}

// List adds positional access (java.util.List).
type List interface {
	Collection
	// Get returns the element at index i (IndexOutOfBoundsException
	// otherwise).
	Get(t *conc.Thread, i int) int
	// ContainsAll / AddAll / RemoveAll / Equals are declared on the
	// interface so synchronized decorators can interpose their lock around
	// the AbstractCollection default implementations below.
	ContainsAll(t *conc.Thread, c Collection) bool
	AddAll(t *conc.Thread, c Collection) bool
	RemoveAll(t *conc.Thread, c Collection) bool
	Equals(t *conc.Thread, c List) bool
}

// Set adds the bulk operations used by the set drivers.
type Set interface {
	Collection
	ContainsAll(t *conc.Thread, c Collection) bool
	AddAll(t *conc.Thread, c Collection) bool
	RemoveAll(t *conc.Thread, c Collection) bool
}

// The AbstractCollection / AbstractList default implementations. They
// iterate the argument (or receiver) with its fail-fast iterator and no
// additional locking — precisely the inherited code paths the paper blames
// for the ConcurrentModificationException / NoSuchElementException bugs in
// the synchronized wrappers ("the developers did not override the
// containsAll method to make it thread-safe", §5.3).

// AbstractContainsAll implements AbstractCollection.containsAll: iterate c,
// probing this.Contains for each element.
func AbstractContainsAll(t *conc.Thread, this Collection, c Collection) bool {
	it := c.Iterator(t)
	for it.HasNext(t) {
		if !this.Contains(t, it.Next(t)) {
			return false
		}
	}
	return true
}

// AbstractAddAll implements AbstractCollection.addAll: iterate c, adding
// each element to this.
func AbstractAddAll(t *conc.Thread, this Collection, c Collection) bool {
	changed := false
	it := c.Iterator(t)
	for it.HasNext(t) {
		if this.Add(t, it.Next(t)) {
			changed = true
		}
	}
	return changed
}

// AbstractRemoveAll implements AbstractCollection.removeAll: iterate this,
// removing (via the iterator) every element contained in c.
func AbstractRemoveAll(t *conc.Thread, this Collection, c Collection) bool {
	changed := false
	it := this.Iterator(t)
	for it.HasNext(t) {
		if c.Contains(t, it.Next(t)) {
			it.Remove(t)
			changed = true
		}
	}
	return changed
}

// AbstractListEquals implements AbstractList.equals: pairwise iteration of
// both lists.
func AbstractListEquals(t *conc.Thread, a List, b List) bool {
	ia, ib := a.Iterator(t), b.Iterator(t)
	for ia.HasNext(t) && ib.HasNext(t) {
		if ia.Next(t) != ib.Next(t) {
			return false
		}
	}
	return !ia.HasNext(t) && !ib.HasNext(t)
}

// ToSlice drains an iterator into a Go slice (test helper; still fully
// instrumented).
func ToSlice(t *conc.Thread, c Collection) []int {
	var out []int
	it := c.Iterator(t)
	for it.HasNext(t) {
		out = append(out, it.Next(t))
	}
	return out
}

// throwCME throws ConcurrentModificationException with context.
func throwCME(t *conc.Thread, what string) {
	t.Throw(fmt.Errorf("%w: %s modified during iteration", ErrConcurrentModification, what))
}

// throwNSE throws NoSuchElementException with context.
func throwNSE(t *conc.Thread, what string) {
	t.Throw(fmt.Errorf("%w: %s iterator exhausted", ErrNoSuchElement, what))
}
