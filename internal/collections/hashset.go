package collections

import (
	"fmt"

	"racefuzzer/internal/conc"
)

// hsBuckets is the fixed bucket count (power of two).
const hsBuckets = 16

// hsNode is one chained hash entry; next is instrumented.
type hsNode struct {
	key  int
	next *conc.Var[*hsNode]
}

// HashSet models java.util.HashSet (backed by a chained HashMap) with a
// modCount-driven fail-fast iterator.
type HashSet struct {
	name     string
	buckets  *conc.Array[*hsNode]
	size     *conc.IntVar
	modCount *conc.IntVar
	nodeSeq  int
}

// NewHashSet allocates an empty HashSet.
func NewHashSet(t *conc.Thread, name string) *HashSet {
	return &HashSet{
		name:     name,
		buckets:  conc.NewArray[*hsNode](t, name+".table", hsBuckets),
		size:     conc.NewIntVar(t, name+".size", 0),
		modCount: conc.NewIntVar(t, name+".modCount", 0),
	}
}

func hashOf(v int) int {
	h := v * 0x9e3779b1
	if h < 0 {
		h = -h
	}
	return h & (hsBuckets - 1)
}

// Add inserts v, returning false if already present.
func (s *HashSet) Add(t *conc.Thread, v int) bool {
	b := hashOf(v)
	for e := s.buckets.Get(t, b); e != nil; e = e.next.Get(t) {
		if e.key == v {
			return false
		}
	}
	s.nodeSeq++
	n := &hsNode{key: v, next: conc.NewVar[*hsNode](t, fmt.Sprintf("%s.entry%d.next", s.name, s.nodeSeq), nil)}
	n.next.Set(t, s.buckets.Get(t, b))
	s.buckets.Set(t, b, n)
	s.size.Add(t, 1)
	s.modCount.Add(t, 1)
	return true
}

// Contains reports membership.
func (s *HashSet) Contains(t *conc.Thread, v int) bool {
	for e := s.buckets.Get(t, hashOf(v)); e != nil; e = e.next.Get(t) {
		if e.key == v {
			return true
		}
	}
	return false
}

// Remove deletes v if present.
func (s *HashSet) Remove(t *conc.Thread, v int) bool {
	b := hashOf(v)
	var prev *hsNode
	for e := s.buckets.Get(t, b); e != nil; e = e.next.Get(t) {
		if e.key == v {
			if prev == nil {
				s.buckets.Set(t, b, e.next.Get(t))
			} else {
				prev.next.Set(t, e.next.Get(t))
			}
			s.size.Add(t, -1)
			s.modCount.Add(t, 1)
			return true
		}
		prev = e
	}
	return false
}

// Size returns the element count.
func (s *HashSet) Size(t *conc.Thread) int { return s.size.Get(t) }

// Clear empties the set.
func (s *HashSet) Clear(t *conc.Thread) {
	for b := 0; b < hsBuckets; b++ {
		s.buckets.Set(t, b, nil)
	}
	s.size.Set(t, 0)
	s.modCount.Add(t, 1)
}

// Iterator returns a fail-fast iterator (java.util.HashMap.HashIterator).
func (s *HashSet) Iterator(t *conc.Thread) Iterator {
	it := &hashSetIter{set: s, bucket: -1, expected: s.modCount.Get(t)}
	it.advance(t)
	return it
}

// ContainsAll reports whether every element of c is in s (AbstractCollection).
func (s *HashSet) ContainsAll(t *conc.Thread, c Collection) bool {
	return AbstractContainsAll(t, s, c)
}

// AddAll inserts every element of c.
func (s *HashSet) AddAll(t *conc.Thread, c Collection) bool { return AbstractAddAll(t, s, c) }

// RemoveAll removes every element of c from s.
func (s *HashSet) RemoveAll(t *conc.Thread, c Collection) bool { return AbstractRemoveAll(t, s, c) }

// hashSetIter walks buckets then chains, fail-fast on modCount.
type hashSetIter struct {
	set      *HashSet
	bucket   int
	node     *hsNode
	lastRet  *hsNode
	expected int
}

// advance moves to the next non-empty position starting after the current.
func (it *hashSetIter) advance(t *conc.Thread) {
	if it.node != nil {
		it.node = it.node.next.Get(t)
	}
	for it.node == nil && it.bucket < hsBuckets-1 {
		it.bucket++
		it.node = it.set.buckets.Get(t, it.bucket)
	}
}

func (it *hashSetIter) checkComod(t *conc.Thread) {
	if it.set.modCount.Get(t) != it.expected {
		throwCME(t, it.set.name)
	}
}

// HasNext implements Iterator.
func (it *hashSetIter) HasNext(t *conc.Thread) bool { return it.node != nil }

// Next implements Iterator.
func (it *hashSetIter) Next(t *conc.Thread) int {
	it.checkComod(t)
	if it.node == nil {
		throwNSE(t, it.set.name)
	}
	it.lastRet = it.node
	v := it.node.key
	it.advance(t)
	return v
}

// Remove implements Iterator.
func (it *hashSetIter) Remove(t *conc.Thread) {
	if it.lastRet == nil {
		t.Throw(ErrIllegalState)
	}
	it.checkComod(t)
	it.set.Remove(t, it.lastRet.key)
	it.lastRet = nil
	it.expected = it.set.modCount.Get(t)
}
