package collections

import (
	"errors"
	"sort"
	"testing"

	"racefuzzer/internal/conc"
	"racefuzzer/internal/sched"
)

// single runs body as a single-threaded model program and fails the test on
// deadlock or unexpected exceptions.
func single(t *testing.T, body func(mt *conc.Thread)) *sched.Result {
	t.Helper()
	res := sched.Run(body, sched.Config{Seed: 1})
	if res.Deadlock != nil {
		t.Fatalf("deadlock: %v", res.Deadlock)
	}
	return res
}

// noExc asserts the run threw nothing.
func noExc(t *testing.T, res *sched.Result) {
	t.Helper()
	if len(res.Exceptions) != 0 {
		t.Fatalf("unexpected exceptions: %v", res.Exceptions)
	}
}

// mkList constructors for list-generic tests.
var listMakers = map[string]func(*conc.Thread, string) List{
	"arraylist":  func(t *conc.Thread, n string) List { return NewArrayList(t, n) },
	"linkedlist": func(t *conc.Thread, n string) List { return NewLinkedList(t, n) },
}

var setMakers = map[string]func(*conc.Thread, string) Set{
	"hashset": func(t *conc.Thread, n string) Set { return NewHashSet(t, n) },
	"treeset": func(t *conc.Thread, n string) Set { return NewTreeSet(t, n) },
}

func TestListBasics(t *testing.T) {
	for name, mk := range listMakers {
		t.Run(name, func(t *testing.T) {
			res := single(t, func(mt *conc.Thread) {
				l := mk(mt, "l")
				for i := 0; i < 10; i++ {
					l.Add(mt, i*i)
				}
				if got := l.Size(mt); got != 10 {
					mt.Throwf("size = %d, want 10", got)
				}
				for i := 0; i < 10; i++ {
					if got := l.Get(mt, i); got != i*i {
						mt.Throwf("get(%d) = %d, want %d", i, got, i*i)
					}
					if !l.Contains(mt, i*i) {
						mt.Throwf("contains(%d) = false", i*i)
					}
				}
				if l.Contains(mt, 999) {
					mt.Throwf("contains(999) = true")
				}
				if !l.Remove(mt, 16) {
					mt.Throwf("remove(16) = false")
				}
				if l.Contains(mt, 16) || l.Size(mt) != 9 {
					mt.Throwf("remove did not take effect")
				}
				if l.Remove(mt, 16) {
					mt.Throwf("second remove(16) = true")
				}
				l.Clear(mt)
				if l.Size(mt) != 0 {
					mt.Throwf("clear left %d elements", l.Size(mt))
				}
			})
			noExc(t, res)
		})
	}
}

func TestListIteration(t *testing.T) {
	for name, mk := range listMakers {
		t.Run(name, func(t *testing.T) {
			res := single(t, func(mt *conc.Thread) {
				l := mk(mt, "l")
				want := []int{3, 1, 4, 1, 5, 9, 2, 6}
				for _, v := range want {
					l.Add(mt, v)
				}
				got := ToSlice(mt, l)
				if len(got) != len(want) {
					mt.Throwf("iterated %d elements, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						mt.Throwf("order mismatch at %d: %v vs %v", i, got, want)
					}
				}
			})
			noExc(t, res)
		})
	}
}

func TestIteratorRemove(t *testing.T) {
	for name, mk := range listMakers {
		t.Run(name, func(t *testing.T) {
			res := single(t, func(mt *conc.Thread) {
				l := mk(mt, "l")
				for i := 0; i < 8; i++ {
					l.Add(mt, i)
				}
				it := l.Iterator(mt)
				for it.HasNext(mt) {
					if it.Next(mt)%2 == 0 {
						it.Remove(mt)
					}
				}
				if l.Size(mt) != 4 {
					mt.Throwf("size after removal = %d, want 4", l.Size(mt))
				}
				for _, v := range ToSlice(mt, l) {
					if v%2 == 0 {
						mt.Throwf("even element %d survived", v)
					}
				}
			})
			noExc(t, res)
		})
	}
}

func TestIteratorFailFastCME(t *testing.T) {
	for name, mk := range listMakers {
		t.Run(name, func(t *testing.T) {
			res := single(t, func(mt *conc.Thread) {
				l := mk(mt, "l")
				l.Add(mt, 1)
				l.Add(mt, 2)
				it := l.Iterator(mt)
				_ = it.Next(mt)
				l.Add(mt, 3) // structural modification invalidates it
				_ = it.Next(mt)
			})
			if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrConcurrentModification) {
				t.Fatalf("exceptions = %v, want CME", res.Exceptions)
			}
		})
	}
}

func TestIteratorPastEndNSE(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		l := NewArrayList(mt, "l")
		it := l.Iterator(mt)
		_ = it.Next(mt)
	})
	if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrNoSuchElement) {
		t.Fatalf("exceptions = %v, want NoSuchElement", res.Exceptions)
	}
}

func TestIteratorRemoveBeforeNextIllegal(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		l := NewLinkedList(mt, "l")
		l.Add(mt, 1)
		l.Iterator(mt).Remove(mt)
	})
	if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrIllegalState) {
		t.Fatalf("exceptions = %v, want IllegalState", res.Exceptions)
	}
}

func TestIndexOutOfBounds(t *testing.T) {
	for name, mk := range listMakers {
		t.Run(name, func(t *testing.T) {
			res := single(t, func(mt *conc.Thread) {
				l := mk(mt, "l")
				l.Add(mt, 7)
				_ = l.Get(mt, 3)
			})
			if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrIndexOutOfBounds) {
				t.Fatalf("exceptions = %v, want IndexOutOfBounds", res.Exceptions)
			}
		})
	}
}

func TestSetBasics(t *testing.T) {
	for name, mk := range setMakers {
		t.Run(name, func(t *testing.T) {
			res := single(t, func(mt *conc.Thread) {
				s := mk(mt, "s")
				for _, v := range []int{5, 3, 8, 3, 5, 13, 1} {
					s.Add(mt, v)
				}
				if got := s.Size(mt); got != 5 {
					mt.Throwf("size = %d, want 5 (duplicates rejected)", got)
				}
				for _, v := range []int{1, 3, 5, 8, 13} {
					if !s.Contains(mt, v) {
						mt.Throwf("contains(%d) = false", v)
					}
				}
				if s.Add(mt, 8) {
					mt.Throwf("re-add(8) returned true")
				}
				if !s.Remove(mt, 8) || s.Contains(mt, 8) {
					mt.Throwf("remove(8) failed")
				}
				if s.Remove(mt, 100) {
					mt.Throwf("remove(100) returned true")
				}
				got := ToSlice(mt, s)
				sort.Ints(got)
				want := []int{1, 3, 5, 13}
				if len(got) != len(want) {
					mt.Throwf("iterated %v, want %v", got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						mt.Throwf("iterated %v, want %v", got, want)
					}
				}
			})
			noExc(t, res)
		})
	}
}

func TestTreeSetInOrderIteration(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		s := NewTreeSet(mt, "s")
		for _, v := range []int{50, 20, 80, 10, 30, 70, 90, 25, 35} {
			s.Add(mt, v)
		}
		got := ToSlice(mt, s)
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				mt.Throwf("not in order: %v", got)
			}
		}
	})
	noExc(t, res)
}

func TestTreeSetRemoveShapes(t *testing.T) {
	// Exercise all three BST deletion cases: leaf, one child, two children
	// (including root).
	res := single(t, func(mt *conc.Thread) {
		s := NewTreeSet(mt, "s")
		for _, v := range []int{50, 20, 80, 10, 30, 70, 90, 25} {
			s.Add(mt, v)
		}
		for _, v := range []int{10 /*leaf*/, 20 /*one child after 10 gone? two: 25,30*/, 50 /*root two children*/, 90 /*leaf*/} {
			if !s.Remove(mt, v) {
				mt.Throwf("remove(%d) = false", v)
			}
			if s.Contains(mt, v) {
				mt.Throwf("contains(%d) after remove", v)
			}
		}
		got := ToSlice(mt, s)
		want := []int{25, 30, 70, 80}
		if len(got) != len(want) {
			mt.Throwf("got %v want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				mt.Throwf("got %v want %v", got, want)
			}
		}
	})
	noExc(t, res)
}

func TestHashSetManyBucketsAndCollisions(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		s := NewHashSet(mt, "s")
		for i := 0; i < 60; i++ {
			s.Add(mt, i)
		}
		if s.Size(mt) != 60 {
			mt.Throwf("size = %d", s.Size(mt))
		}
		for i := 0; i < 60; i++ {
			if !s.Contains(mt, i) {
				mt.Throwf("missing %d", i)
			}
		}
		for i := 0; i < 60; i += 2 {
			s.Remove(mt, i)
		}
		if s.Size(mt) != 30 {
			mt.Throwf("size after removes = %d", s.Size(mt))
		}
		got := ToSlice(mt, s)
		if len(got) != 30 {
			mt.Throwf("iterated %d elements", len(got))
		}
	})
	noExc(t, res)
}

func TestVectorSynchronizedOps(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		v := NewVector(mt, "v")
		for i := 0; i < 10; i++ {
			v.AddElement(mt, i*3)
		}
		if v.Size(mt) != 10 || !v.Contains(mt, 27) || v.Contains(mt, 28) {
			mt.Throwf("vector state wrong")
		}
		if v.ElementAt(mt, 4) != 12 {
			mt.Throwf("elementAt(4) = %d", v.ElementAt(mt, 4))
		}
		v.RemoveElement(mt, 12)
		if v.Size(mt) != 9 || v.Contains(mt, 12) {
			mt.Throwf("removeElement failed")
		}
		e := v.Elements(mt)
		n := 0
		for e.HasNext(mt) {
			e.Next(mt)
			n++
		}
		if n != 9 {
			mt.Throwf("enumeration saw %d elements", n)
		}
	})
	noExc(t, res)
}

func TestAbstractBulkOps(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		l1 := NewArrayList(mt, "l1")
		l2 := NewLinkedList(mt, "l2")
		for _, v := range []int{1, 2, 3, 4, 5} {
			l1.Add(mt, v)
		}
		for _, v := range []int{2, 4} {
			l2.Add(mt, v)
		}
		if !l1.ContainsAll(mt, l2) {
			mt.Throwf("containsAll = false")
		}
		l2.Add(mt, 99)
		if l1.ContainsAll(mt, l2) {
			mt.Throwf("containsAll = true with 99")
		}
		l1.RemoveAll(mt, l2)
		got := ToSlice(mt, l1)
		want := []int{1, 3, 5}
		if len(got) != len(want) {
			mt.Throwf("removeAll left %v", got)
		}
		l1.AddAll(mt, l2)
		if l1.Size(mt) != 6 {
			mt.Throwf("addAll size = %d", l1.Size(mt))
		}

		a := NewArrayList(mt, "a")
		b := NewLinkedList(mt, "b")
		for _, v := range []int{7, 8, 9} {
			a.Add(mt, v)
			b.Add(mt, v)
		}
		if !a.Equals(mt, b) {
			mt.Throwf("equals = false on equal lists")
		}
		b.Add(mt, 10)
		if a.Equals(mt, b) {
			mt.Throwf("equals = true on different lengths")
		}
	})
	noExc(t, res)
}

func TestSynchronizedWrappersSequential(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		l := NewSynchronizedList(mt, "sl", NewArrayList(mt, "l"))
		s := NewSynchronizedSet(mt, "ss", NewHashSet(mt, "s"))
		for i := 0; i < 5; i++ {
			l.Add(mt, i)
			s.Add(mt, i)
		}
		if l.Size(mt) != 5 || s.Size(mt) != 5 {
			mt.Throwf("sizes wrong")
		}
		if !l.ContainsAll(mt, s) || !s.ContainsAll(mt, l) {
			mt.Throwf("containsAll wrong")
		}
		l.Remove(mt, 3)
		if l.Contains(mt, 3) || l.Size(mt) != 4 {
			mt.Throwf("remove wrong")
		}
		if l.Get(mt, 3) != 4 {
			mt.Throwf("get(3) = %d", l.Get(mt, 3))
		}
	})
	noExc(t, res)
}

// TestContainsAllRemoveAllBugReproduces is the paper's §5.3 scenario:
// l1.containsAll(l2) in one thread and l2.removeAll(...) in another, both on
// synchronized wrappers, can throw ConcurrentModificationException or
// NoSuchElementException under some interleaving.
func TestContainsAllRemoveAllBugReproduces(t *testing.T) {
	for name, mk := range listMakers {
		t.Run(name, func(t *testing.T) {
			sawBug := false
			for seed := int64(0); seed < 400 && !sawBug; seed++ {
				prog := func(mt *conc.Thread) {
					l1 := NewSynchronizedList(mt, "l1", mk(mt, "raw1"))
					l2 := NewSynchronizedList(mt, "l2", mk(mt, "raw2"))
					rm := NewArrayList(mt, "rm")
					for i := 0; i < 4; i++ {
						l1.Add(mt, i)
						l2.Add(mt, i)
						rm.Add(mt, i)
					}
					t1 := mt.Fork("containsAll", func(c *conc.Thread) {
						l1.ContainsAll(c, l2)
					})
					t2 := mt.Fork("removeAll", func(c *conc.Thread) {
						l2.RemoveAll(c, rm)
					})
					mt.Join(t1)
					mt.Join(t2)
				}
				res := sched.Run(prog, sched.Config{Seed: seed})
				for _, ex := range res.Exceptions {
					if errors.Is(ex.Err, ErrConcurrentModification) || errors.Is(ex.Err, ErrNoSuchElement) {
						sawBug = true
					}
				}
			}
			if !sawBug {
				t.Fatal("the §5.3 containsAll/removeAll bug never reproduced under random scheduling")
			}
		})
	}
}
