package collections

import (
	"fmt"

	"racefuzzer/internal/conc"
)

// llNode is a doubly-linked node. The value is immutable after creation;
// next/prev are instrumented because pointer splices are where the races
// happen.
type llNode struct {
	val  int
	next *conc.Var[*llNode]
	prev *conc.Var[*llNode]
}

func newLLNode(t *conc.Thread, name string, v int) *llNode {
	return &llNode{
		val:  v,
		next: conc.NewVar[*llNode](t, name+".next", nil),
		prev: conc.NewVar[*llNode](t, name+".prev", nil),
	}
}

// LinkedList models java.util.LinkedList (JDK 1.4.2): a doubly-linked list
// with a header sentinel, size and modCount fields, and a fail-fast
// iterator.
type LinkedList struct {
	name     string
	header   *llNode
	size     *conc.IntVar
	modCount *conc.IntVar
	nodeSeq  int
}

// NewLinkedList allocates an empty LinkedList.
func NewLinkedList(t *conc.Thread, name string) *LinkedList {
	l := &LinkedList{
		name:     name,
		header:   newLLNode(t, name+".header", 0),
		size:     conc.NewIntVar(t, name+".size", 0),
		modCount: conc.NewIntVar(t, name+".modCount", 0),
	}
	l.header.next.Set(t, l.header)
	l.header.prev.Set(t, l.header)
	return l
}

func (l *LinkedList) newNode(t *conc.Thread, v int) *llNode {
	l.nodeSeq++
	return newLLNode(t, fmt.Sprintf("%s.node%d", l.name, l.nodeSeq), v)
}

// Add appends v before the header (at the tail).
func (l *LinkedList) Add(t *conc.Thread, v int) bool {
	n := l.newNode(t, v)
	tail := l.header.prev.Get(t)
	n.prev.Set(t, tail)
	n.next.Set(t, l.header)
	tail.next.Set(t, n)
	l.header.prev.Set(t, n)
	l.size.Add(t, 1)
	l.modCount.Add(t, 1)
	return true
}

// Get returns the element at index i by walking from the header.
func (l *LinkedList) Get(t *conc.Thread, i int) int {
	n := l.size.Get(t)
	if i < 0 || i >= n {
		t.Throw(fmt.Errorf("%w: index %d, size %d", ErrIndexOutOfBounds, i, n))
	}
	e := l.header.next.Get(t)
	for j := 0; j < i; j++ {
		e = e.next.Get(t)
	}
	return e.val
}

// Contains walks the list looking for v.
func (l *LinkedList) Contains(t *conc.Thread, v int) bool {
	for e := l.header.next.Get(t); e != l.header; e = e.next.Get(t) {
		if e.val == v {
			return true
		}
	}
	return false
}

// unlink removes node e from the chain.
func (l *LinkedList) unlink(t *conc.Thread, e *llNode) {
	p := e.prev.Get(t)
	n := e.next.Get(t)
	p.next.Set(t, n)
	n.prev.Set(t, p)
	l.size.Add(t, -1)
	l.modCount.Add(t, 1)
}

// Remove deletes one occurrence of v.
func (l *LinkedList) Remove(t *conc.Thread, v int) bool {
	for e := l.header.next.Get(t); e != l.header; e = e.next.Get(t) {
		if e.val == v {
			l.unlink(t, e)
			return true
		}
	}
	return false
}

// Size returns the element count.
func (l *LinkedList) Size(t *conc.Thread) int { return l.size.Get(t) }

// Clear empties the list.
func (l *LinkedList) Clear(t *conc.Thread) {
	l.header.next.Set(t, l.header)
	l.header.prev.Set(t, l.header)
	l.size.Set(t, 0)
	l.modCount.Add(t, 1)
}

// Iterator returns a fail-fast iterator (java.util.LinkedList.ListItr).
func (l *LinkedList) Iterator(t *conc.Thread) Iterator {
	return &linkedListIter{
		list: l, next: l.header.next.Get(t), expected: l.modCount.Get(t),
	}
}

// ContainsAll reports whether every element of c is in l (AbstractCollection).
func (l *LinkedList) ContainsAll(t *conc.Thread, c Collection) bool {
	return AbstractContainsAll(t, l, c)
}

// AddAll appends every element of c.
func (l *LinkedList) AddAll(t *conc.Thread, c Collection) bool { return AbstractAddAll(t, l, c) }

// RemoveAll removes every element of c from l.
func (l *LinkedList) RemoveAll(t *conc.Thread, c Collection) bool { return AbstractRemoveAll(t, l, c) }

// Equals is AbstractList.equals.
func (l *LinkedList) Equals(t *conc.Thread, c List) bool { return AbstractListEquals(t, l, c) }

// linkedListIter is the fail-fast iterator.
type linkedListIter struct {
	list     *LinkedList
	next     *llNode
	lastRet  *llNode
	expected int
}

func (it *linkedListIter) checkComod(t *conc.Thread) {
	if it.list.modCount.Get(t) != it.expected {
		throwCME(t, it.list.name)
	}
}

// HasNext implements Iterator.
func (it *linkedListIter) HasNext(t *conc.Thread) bool {
	return it.next != it.list.header
}

// Next implements Iterator.
func (it *linkedListIter) Next(t *conc.Thread) int {
	it.checkComod(t)
	if it.next == it.list.header {
		throwNSE(t, it.list.name)
	}
	it.lastRet = it.next
	it.next = it.next.next.Get(t)
	return it.lastRet.val
}

// Remove implements Iterator.
func (it *linkedListIter) Remove(t *conc.Thread) {
	if it.lastRet == nil {
		t.Throw(ErrIllegalState)
	}
	it.checkComod(t)
	it.list.unlink(t, it.lastRet)
	it.lastRet = nil
	it.expected = it.list.modCount.Get(t)
}

// IndexOf returns the first index of v, or -1.
func (l *LinkedList) IndexOf(t *conc.Thread, v int) int {
	i := 0
	for e := l.header.next.Get(t); e != l.header; e = e.next.Get(t) {
		if e.val == v {
			return i
		}
		i++
	}
	return -1
}

// AddFirst prepends v (java.util.LinkedList.addFirst).
func (l *LinkedList) AddFirst(t *conc.Thread, v int) {
	n := l.newNode(t, v)
	first := l.header.next.Get(t)
	n.prev.Set(t, l.header)
	n.next.Set(t, first)
	l.header.next.Set(t, n)
	first.prev.Set(t, n)
	l.size.Add(t, 1)
	l.modCount.Add(t, 1)
}

// RemoveFirst removes and returns the head (NoSuchElementException when
// empty).
func (l *LinkedList) RemoveFirst(t *conc.Thread) int {
	first := l.header.next.Get(t)
	if first == l.header {
		throwNSE(t, l.name)
	}
	l.unlink(t, first)
	return first.val
}

// RemoveLast removes and returns the tail (NoSuchElementException when
// empty).
func (l *LinkedList) RemoveLast(t *conc.Thread) int {
	last := l.header.prev.Get(t)
	if last == l.header {
		throwNSE(t, l.name)
	}
	l.unlink(t, last)
	return last.val
}
