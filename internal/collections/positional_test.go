package collections

import (
	"errors"
	"testing"

	"racefuzzer/internal/conc"
)

func TestArrayListPositionalOps(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		l := NewArrayList(mt, "l")
		for _, v := range []int{1, 2, 3, 2, 1} {
			l.Add(mt, v)
		}
		if l.IndexOf(mt, 2) != 1 || l.LastIndexOf(mt, 2) != 3 {
			mt.Throwf("indexOf/lastIndexOf wrong")
		}
		if l.IndexOf(mt, 9) != -1 || l.LastIndexOf(mt, 9) != -1 {
			mt.Throwf("absent element found")
		}
		if old := l.Set(mt, 2, 30); old != 3 {
			mt.Throwf("set returned %d", old)
		}
		if l.Get(mt, 2) != 30 {
			mt.Throwf("set did not stick")
		}
		l.AddAt(mt, 0, 99)
		if l.Get(mt, 0) != 99 || l.Get(mt, 1) != 1 || l.Size(mt) != 6 {
			mt.Throwf("addAt head wrong: %v", ToSlice(mt, l))
		}
		l.AddAt(mt, 6, 77) // append position
		if l.Get(mt, 6) != 77 {
			mt.Throwf("addAt tail wrong")
		}
		l.AddAt(mt, 3, 55)
		want := []int{99, 1, 2, 55, 30, 2, 1, 77}
		got := ToSlice(mt, l)
		for i := range want {
			if got[i] != want[i] {
				mt.Throwf("after middle insert: %v, want %v", got, want)
			}
		}
	})
	noExc(t, res)
}

func TestArrayListAddAtOutOfRange(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		l := NewArrayList(mt, "l")
		l.AddAt(mt, 1, 5)
	})
	if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrIndexOutOfBounds) {
		t.Fatalf("exceptions = %v", res.Exceptions)
	}
}

func TestLinkedListDequeOps(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		l := NewLinkedList(mt, "l")
		l.Add(mt, 2)
		l.AddFirst(mt, 1)
		l.Add(mt, 3)
		if l.IndexOf(mt, 1) != 0 || l.IndexOf(mt, 3) != 2 || l.IndexOf(mt, 9) != -1 {
			mt.Throwf("indexOf wrong: %v", ToSlice(mt, l))
		}
		if v := l.RemoveFirst(mt); v != 1 {
			mt.Throwf("removeFirst = %d", v)
		}
		if v := l.RemoveLast(mt); v != 3 {
			mt.Throwf("removeLast = %d", v)
		}
		if l.Size(mt) != 1 || l.Get(mt, 0) != 2 {
			mt.Throwf("remaining list wrong")
		}
	})
	noExc(t, res)
}

func TestLinkedListRemoveFirstEmpty(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		l := NewLinkedList(mt, "l")
		l.RemoveFirst(mt)
	})
	if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrNoSuchElement) {
		t.Fatalf("exceptions = %v", res.Exceptions)
	}
}

func TestVectorPositionalOps(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		v := NewVector(mt, "v")
		for i := 1; i <= 3; i++ {
			v.AddElement(mt, i*10)
		}
		if v.FirstElement(mt) != 10 || v.LastElement(mt) != 30 {
			mt.Throwf("first/last wrong")
		}
		v.SetElementAt(mt, 99, 1)
		if v.ElementAt(mt, 1) != 99 {
			mt.Throwf("setElementAt failed")
		}
		v.InsertElementAt(mt, 5, 0)
		if v.FirstElement(mt) != 5 || v.Size(mt) != 4 || v.ElementAt(mt, 1) != 10 {
			mt.Throwf("insertElementAt failed")
		}
	})
	noExc(t, res)
}

func TestVectorFirstElementEmpty(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		v := NewVector(mt, "v")
		v.FirstElement(mt)
	})
	if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrNoSuchElement) {
		t.Fatalf("exceptions = %v", res.Exceptions)
	}
}
