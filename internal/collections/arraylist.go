package collections

import (
	"fmt"

	"racefuzzer/internal/conc"
)

// defaultCap is the fixed backing-array capacity of the array-based models.
const defaultCap = 96

// ArrayList models java.util.ArrayList (JDK 1.4.2): an unsynchronized,
// array-backed list with a fail-fast iterator driven by modCount.
type ArrayList struct {
	name     string
	data     *conc.Array[int]
	size     *conc.IntVar
	modCount *conc.IntVar
}

// NewArrayList allocates an empty ArrayList.
func NewArrayList(t *conc.Thread, name string) *ArrayList {
	return &ArrayList{
		name:     name,
		data:     conc.NewArray[int](t, name+".elementData", defaultCap),
		size:     conc.NewIntVar(t, name+".size", 0),
		modCount: conc.NewIntVar(t, name+".modCount", 0),
	}
}

// Add appends v (always returns true, like java.util.List).
func (l *ArrayList) Add(t *conc.Thread, v int) bool {
	l.modCount.Add(t, 1) // ensureCapacity bumps modCount first in the JDK
	n := l.size.Get(t)
	if n >= l.data.Len() {
		t.Throw(fmt.Errorf("%w: %s", ErrCapacityExceeded, l.name))
	}
	l.data.Set(t, n, v)
	l.size.Set(t, n+1)
	return true
}

// Get returns the element at index i.
func (l *ArrayList) Get(t *conc.Thread, i int) int {
	n := l.size.Get(t)
	if i < 0 || i >= n {
		t.Throw(fmt.Errorf("%w: index %d, size %d", ErrIndexOutOfBounds, i, n))
	}
	return l.data.Get(t, i)
}

// indexOf scans for v, returning -1 when absent.
func (l *ArrayList) indexOf(t *conc.Thread, v int) int {
	n := l.size.Get(t)
	for i := 0; i < n; i++ {
		if l.data.Get(t, i) == v {
			return i
		}
	}
	return -1
}

// Contains reports membership.
func (l *ArrayList) Contains(t *conc.Thread, v int) bool { return l.indexOf(t, v) >= 0 }

// RemoveAt deletes the element at index i, shifting the tail left.
func (l *ArrayList) RemoveAt(t *conc.Thread, i int) int {
	n := l.size.Get(t)
	if i < 0 || i >= n {
		t.Throw(fmt.Errorf("%w: index %d, size %d", ErrIndexOutOfBounds, i, n))
	}
	l.modCount.Add(t, 1)
	old := l.data.Get(t, i)
	for j := i; j < n-1; j++ {
		l.data.Set(t, j, l.data.Get(t, j+1))
	}
	l.size.Set(t, n-1)
	return old
}

// Remove deletes one occurrence of v.
func (l *ArrayList) Remove(t *conc.Thread, v int) bool {
	i := l.indexOf(t, v)
	if i < 0 {
		return false
	}
	l.RemoveAt(t, i)
	return true
}

// Size returns the element count.
func (l *ArrayList) Size(t *conc.Thread) int { return l.size.Get(t) }

// Clear removes every element.
func (l *ArrayList) Clear(t *conc.Thread) {
	l.modCount.Add(t, 1)
	l.size.Set(t, 0)
}

// Iterator returns a fail-fast iterator (java.util.AbstractList.Itr).
func (l *ArrayList) Iterator(t *conc.Thread) Iterator {
	return &arrayListIter{list: l, expected: l.modCount.Get(t), lastRet: -1}
}

// ContainsAll, AddAll, RemoveAll, Equals inherit the AbstractCollection /
// AbstractList implementations — thread-unsafe iterator use included.

// ContainsAll reports whether every element of c is in l.
func (l *ArrayList) ContainsAll(t *conc.Thread, c Collection) bool {
	return AbstractContainsAll(t, l, c)
}

// AddAll appends every element of c.
func (l *ArrayList) AddAll(t *conc.Thread, c Collection) bool { return AbstractAddAll(t, l, c) }

// RemoveAll removes every element of c from l.
func (l *ArrayList) RemoveAll(t *conc.Thread, c Collection) bool { return AbstractRemoveAll(t, l, c) }

// Equals is AbstractList.equals: pairwise comparison.
func (l *ArrayList) Equals(t *conc.Thread, c List) bool { return AbstractListEquals(t, l, c) }

// arrayListIter is the fail-fast iterator.
type arrayListIter struct {
	list     *ArrayList
	cursor   int
	lastRet  int
	expected int
}

func (it *arrayListIter) checkComod(t *conc.Thread) {
	if it.list.modCount.Get(t) != it.expected {
		throwCME(t, it.list.name)
	}
}

// HasNext implements Iterator.
func (it *arrayListIter) HasNext(t *conc.Thread) bool {
	return it.cursor < it.list.size.Get(t)
}

// Next implements Iterator.
func (it *arrayListIter) Next(t *conc.Thread) int {
	it.checkComod(t)
	n := it.list.size.Get(t)
	if it.cursor >= n {
		throwNSE(t, it.list.name)
	}
	v := it.list.data.Get(t, it.cursor)
	it.lastRet = it.cursor
	it.cursor++
	return v
}

// Remove implements Iterator.
func (it *arrayListIter) Remove(t *conc.Thread) {
	if it.lastRet < 0 {
		t.Throw(ErrIllegalState)
	}
	it.checkComod(t)
	it.list.RemoveAt(t, it.lastRet)
	it.cursor = it.lastRet
	it.lastRet = -1
	it.expected = it.list.modCount.Get(t)
}

// IndexOf returns the first index of v, or -1 (java.util.List.indexOf).
func (l *ArrayList) IndexOf(t *conc.Thread, v int) int { return l.indexOf(t, v) }

// LastIndexOf returns the last index of v, or -1.
func (l *ArrayList) LastIndexOf(t *conc.Thread, v int) int {
	n := l.size.Get(t)
	for i := n - 1; i >= 0; i-- {
		if l.data.Get(t, i) == v {
			return i
		}
	}
	return -1
}

// Set replaces the element at index i, returning the old value.
func (l *ArrayList) Set(t *conc.Thread, i, v int) int {
	n := l.size.Get(t)
	if i < 0 || i >= n {
		t.Throw(fmt.Errorf("%w: index %d, size %d", ErrIndexOutOfBounds, i, n))
	}
	old := l.data.Get(t, i)
	l.data.Set(t, i, v)
	return old
}

// AddAt inserts v at index i, shifting the tail right.
func (l *ArrayList) AddAt(t *conc.Thread, i, v int) {
	n := l.size.Get(t)
	if i < 0 || i > n {
		t.Throw(fmt.Errorf("%w: index %d, size %d", ErrIndexOutOfBounds, i, n))
	}
	if n >= l.data.Len() {
		t.Throw(fmt.Errorf("%w: %s", ErrCapacityExceeded, l.name))
	}
	l.modCount.Add(t, 1)
	for j := n; j > i; j-- {
		l.data.Set(t, j, l.data.Get(t, j-1))
	}
	l.data.Set(t, i, v)
	l.size.Set(t, n+1)
}
