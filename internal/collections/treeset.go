package collections

import (
	"fmt"

	"racefuzzer/internal/conc"
)

// tsNode is a binary-search-tree node; child pointers are instrumented.
type tsNode struct {
	key   int
	left  *conc.Var[*tsNode]
	right *conc.Var[*tsNode]
}

// TreeSet models java.util.TreeSet: an ordered set backed by a binary search
// tree (unbalanced here — balancing is irrelevant to the races) with size,
// modCount, and a fail-fast in-order iterator.
type TreeSet struct {
	name     string
	root     *conc.Var[*tsNode]
	size     *conc.IntVar
	modCount *conc.IntVar
	nodeSeq  int
}

// NewTreeSet allocates an empty TreeSet.
func NewTreeSet(t *conc.Thread, name string) *TreeSet {
	return &TreeSet{
		name:     name,
		root:     conc.NewVar[*tsNode](t, name+".root", nil),
		size:     conc.NewIntVar(t, name+".size", 0),
		modCount: conc.NewIntVar(t, name+".modCount", 0),
	}
}

func (s *TreeSet) newNode(t *conc.Thread, v int) *tsNode {
	s.nodeSeq++
	base := fmt.Sprintf("%s.node%d", s.name, s.nodeSeq)
	return &tsNode{
		key:   v,
		left:  conc.NewVar[*tsNode](t, base+".left", nil),
		right: conc.NewVar[*tsNode](t, base+".right", nil),
	}
}

// Add inserts v, returning false if already present.
func (s *TreeSet) Add(t *conc.Thread, v int) bool {
	cur := s.root.Get(t)
	if cur == nil {
		s.root.Set(t, s.newNode(t, v))
		s.size.Add(t, 1)
		s.modCount.Add(t, 1)
		return true
	}
	for {
		switch {
		case v == cur.key:
			return false
		case v < cur.key:
			l := cur.left.Get(t)
			if l == nil {
				cur.left.Set(t, s.newNode(t, v))
				s.size.Add(t, 1)
				s.modCount.Add(t, 1)
				return true
			}
			cur = l
		default:
			r := cur.right.Get(t)
			if r == nil {
				cur.right.Set(t, s.newNode(t, v))
				s.size.Add(t, 1)
				s.modCount.Add(t, 1)
				return true
			}
			cur = r
		}
	}
}

// Contains reports membership.
func (s *TreeSet) Contains(t *conc.Thread, v int) bool {
	cur := s.root.Get(t)
	for cur != nil {
		switch {
		case v == cur.key:
			return true
		case v < cur.key:
			cur = cur.left.Get(t)
		default:
			cur = cur.right.Get(t)
		}
	}
	return false
}

// Remove deletes v if present (standard BST deletion).
func (s *TreeSet) Remove(t *conc.Thread, v int) bool {
	type slot struct {
		get func(*conc.Thread) *tsNode
		set func(*conc.Thread, *tsNode)
	}
	rootSlot := slot{
		get: func(tt *conc.Thread) *tsNode { return s.root.Get(tt) },
		set: func(tt *conc.Thread, n *tsNode) { s.root.Set(tt, n) },
	}
	cur := rootSlot.get(t)
	curSlot := rootSlot
	for cur != nil && cur.key != v {
		if v < cur.key {
			curSlot = slot{get: cur.left.Get, set: cur.left.Set}
			cur = cur.left.Get(t)
		} else {
			curSlot = slot{get: cur.right.Get, set: cur.right.Set}
			cur = cur.right.Get(t)
		}
	}
	if cur == nil {
		return false
	}
	l, r := cur.left.Get(t), cur.right.Get(t)
	switch {
	case l == nil:
		curSlot.set(t, r)
	case r == nil:
		curSlot.set(t, l)
	default:
		// Replace with in-order successor (min of right subtree).
		succSlot := slot{get: cur.right.Get, set: cur.right.Set}
		succ := r
		for {
			sl := succ.left.Get(t)
			if sl == nil {
				break
			}
			succSlot = slot{get: succ.left.Get, set: succ.left.Set}
			succ = sl
		}
		succSlot.set(t, succ.right.Get(t))
		succ.left.Set(t, cur.left.Get(t))
		succ.right.Set(t, cur.right.Get(t))
		curSlot.set(t, succ)
	}
	s.size.Add(t, -1)
	s.modCount.Add(t, 1)
	return true
}

// Size returns the element count.
func (s *TreeSet) Size(t *conc.Thread) int { return s.size.Get(t) }

// Clear empties the set.
func (s *TreeSet) Clear(t *conc.Thread) {
	s.root.Set(t, nil)
	s.size.Set(t, 0)
	s.modCount.Add(t, 1)
}

// Iterator returns a fail-fast in-order iterator.
func (s *TreeSet) Iterator(t *conc.Thread) Iterator {
	it := &treeSetIter{set: s, expected: s.modCount.Get(t)}
	it.pushLefts(t, s.root.Get(t))
	return it
}

// ContainsAll reports whether every element of c is in s (AbstractCollection).
func (s *TreeSet) ContainsAll(t *conc.Thread, c Collection) bool {
	return AbstractContainsAll(t, s, c)
}

// AddAll inserts every element of c.
func (s *TreeSet) AddAll(t *conc.Thread, c Collection) bool { return AbstractAddAll(t, s, c) }

// RemoveAll removes every element of c from s.
func (s *TreeSet) RemoveAll(t *conc.Thread, c Collection) bool { return AbstractRemoveAll(t, s, c) }

// treeSetIter does an explicit-stack in-order walk, fail-fast on modCount.
type treeSetIter struct {
	set      *TreeSet
	stack    []*tsNode
	lastRet  *tsNode
	expected int
}

func (it *treeSetIter) pushLefts(t *conc.Thread, n *tsNode) {
	for n != nil {
		it.stack = append(it.stack, n)
		n = n.left.Get(t)
	}
}

func (it *treeSetIter) checkComod(t *conc.Thread) {
	if it.set.modCount.Get(t) != it.expected {
		throwCME(t, it.set.name)
	}
}

// HasNext implements Iterator.
func (it *treeSetIter) HasNext(t *conc.Thread) bool { return len(it.stack) > 0 }

// Next implements Iterator.
func (it *treeSetIter) Next(t *conc.Thread) int {
	it.checkComod(t)
	if len(it.stack) == 0 {
		throwNSE(t, it.set.name)
	}
	n := it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	it.pushLefts(t, n.right.Get(t))
	it.lastRet = n
	return n.key
}

// Remove implements Iterator.
func (it *treeSetIter) Remove(t *conc.Thread) {
	if it.lastRet == nil {
		t.Throw(ErrIllegalState)
	}
	it.checkComod(t)
	it.set.Remove(t, it.lastRet.key)
	it.lastRet = nil
	it.expected = it.set.modCount.Get(t)
}
