package collections

import (
	"fmt"

	"racefuzzer/internal/conc"
)

// Vector models java.util.Vector as of JDK 1.1: every public method is
// synchronized on the vector's own monitor, but the Enumeration returned by
// Elements reads elementCount and elementData with no synchronization at
// all — the JDK 1.1 idiom the paper's vector benchmark exercises, giving
// real races that are benign (the enumeration bounds every index by the
// count it just observed, so no exception is ever thrown; it may simply
// observe a stale snapshot).
type Vector struct {
	name         string
	mon          *conc.Mutex
	elementData  *conc.Array[int]
	elementCount *conc.IntVar
}

// NewVector allocates an empty Vector.
func NewVector(t *conc.Thread, name string) *Vector {
	return &Vector{
		name:         name,
		mon:          conc.NewMutex(t, name+".monitor"),
		elementData:  conc.NewArray[int](t, name+".elementData", defaultCap),
		elementCount: conc.NewIntVar(t, name+".elementCount", 0),
	}
}

// AddElement appends v (synchronized).
func (v *Vector) AddElement(t *conc.Thread, e int) {
	v.mon.Lock(t)
	n := v.elementCount.Get(t)
	if n >= v.elementData.Len() {
		v.mon.Unlock(t)
		t.Throw(fmt.Errorf("%w: %s", ErrCapacityExceeded, v.name))
	}
	v.elementData.Set(t, n, e)
	v.elementCount.Set(t, n+1)
	v.mon.Unlock(t)
}

// Add implements Collection.
func (v *Vector) Add(t *conc.Thread, e int) bool {
	v.AddElement(t, e)
	return true
}

// RemoveElement deletes one occurrence of e (synchronized).
func (v *Vector) RemoveElement(t *conc.Thread, e int) bool {
	v.mon.Lock(t)
	n := v.elementCount.Get(t)
	for i := 0; i < n; i++ {
		if v.elementData.Get(t, i) == e {
			for j := i; j < n-1; j++ {
				v.elementData.Set(t, j, v.elementData.Get(t, j+1))
			}
			v.elementCount.Set(t, n-1)
			v.mon.Unlock(t)
			return true
		}
	}
	v.mon.Unlock(t)
	return false
}

// Remove implements Collection.
func (v *Vector) Remove(t *conc.Thread, e int) bool { return v.RemoveElement(t, e) }

// Contains reports membership (synchronized).
func (v *Vector) Contains(t *conc.Thread, e int) bool {
	v.mon.Lock(t)
	n := v.elementCount.Get(t)
	found := false
	for i := 0; i < n && !found; i++ {
		if v.elementData.Get(t, i) == e {
			found = true
		}
	}
	v.mon.Unlock(t)
	return found
}

// ElementAt returns the element at index i (synchronized).
func (v *Vector) ElementAt(t *conc.Thread, i int) int {
	v.mon.Lock(t)
	n := v.elementCount.Get(t)
	if i < 0 || i >= n {
		v.mon.Unlock(t)
		t.Throw(fmt.Errorf("%w: index %d, count %d", ErrIndexOutOfBounds, i, n))
	}
	e := v.elementData.Get(t, i)
	v.mon.Unlock(t)
	return e
}

// Size returns the element count (synchronized).
func (v *Vector) Size(t *conc.Thread) int {
	v.mon.Lock(t)
	n := v.elementCount.Get(t)
	v.mon.Unlock(t)
	return n
}

// Clear empties the vector (synchronized).
func (v *Vector) Clear(t *conc.Thread) {
	v.mon.Lock(t)
	v.elementCount.Set(t, 0)
	v.mon.Unlock(t)
}

// Iterator implements Collection by returning the unsynchronized
// Enumeration — matching how pre-1.2 code iterated Vectors.
func (v *Vector) Iterator(t *conc.Thread) Iterator { return v.Elements(t) }

// Elements returns a JDK 1.1-style Enumeration: it reads elementCount and
// elementData WITHOUT the vector's monitor. Every such read races with the
// synchronized mutators (real races), but each index is bounded by the count
// observed in the same call, so the enumeration never throws — the benign
// real races of the paper's vector row.
func (v *Vector) Elements(t *conc.Thread) *VectorEnumeration {
	return &VectorEnumeration{vec: v}
}

// VectorEnumeration is the unsynchronized enumeration.
type VectorEnumeration struct {
	vec    *Vector
	cursor int
}

// HasNext (hasMoreElements) reads elementCount unsynchronized.
func (e *VectorEnumeration) HasNext(t *conc.Thread) bool {
	return e.cursor < e.vec.elementCount.Get(t)
}

// Next (nextElement) reads elementCount and elementData unsynchronized.
func (e *VectorEnumeration) Next(t *conc.Thread) int {
	n := e.vec.elementCount.Get(t)
	if e.cursor >= n {
		throwNSE(t, e.vec.name)
	}
	v := e.vec.elementData.Get(t, e.cursor)
	e.cursor++
	return v
}

// Remove is unsupported on Enumerations.
func (e *VectorEnumeration) Remove(t *conc.Thread) {
	t.Throw(fmt.Errorf("%w: Enumeration does not support remove", ErrIllegalState))
}

// FirstElement returns element 0 (NoSuchElementException when empty).
func (v *Vector) FirstElement(t *conc.Thread) int {
	v.mon.Lock(t)
	if v.elementCount.Get(t) == 0 {
		v.mon.Unlock(t)
		throwNSE(t, v.name)
	}
	e := v.elementData.Get(t, 0)
	v.mon.Unlock(t)
	return e
}

// LastElement returns the last element (NoSuchElementException when empty).
func (v *Vector) LastElement(t *conc.Thread) int {
	v.mon.Lock(t)
	n := v.elementCount.Get(t)
	if n == 0 {
		v.mon.Unlock(t)
		throwNSE(t, v.name)
	}
	e := v.elementData.Get(t, n-1)
	v.mon.Unlock(t)
	return e
}

// SetElementAt replaces element i (synchronized).
func (v *Vector) SetElementAt(t *conc.Thread, e, i int) {
	v.mon.Lock(t)
	n := v.elementCount.Get(t)
	if i < 0 || i >= n {
		v.mon.Unlock(t)
		t.Throw(fmt.Errorf("%w: setElementAt(%d), count %d", ErrIndexOutOfBounds, i, n))
	}
	v.elementData.Set(t, i, e)
	v.mon.Unlock(t)
}

// InsertElementAt inserts e at index i, shifting the tail (synchronized).
func (v *Vector) InsertElementAt(t *conc.Thread, e, i int) {
	v.mon.Lock(t)
	n := v.elementCount.Get(t)
	if i < 0 || i > n {
		v.mon.Unlock(t)
		t.Throw(fmt.Errorf("%w: insertElementAt(%d), count %d", ErrIndexOutOfBounds, i, n))
	}
	if n >= v.elementData.Len() {
		v.mon.Unlock(t)
		t.Throw(fmt.Errorf("%w: %s", ErrCapacityExceeded, v.name))
	}
	for j := n; j > i; j-- {
		v.elementData.Set(t, j, v.elementData.Get(t, j-1))
	}
	v.elementData.Set(t, i, e)
	v.elementCount.Set(t, n+1)
	v.mon.Unlock(t)
}
