package collections

import (
	"errors"
	"testing"

	"racefuzzer/internal/conc"
	"racefuzzer/internal/sched"
)

func TestHashMapBasics(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		m := NewHashMap(mt, "m")
		for i := 0; i < 20; i++ {
			if _, existed := m.Put(mt, i, i*i); existed {
				mt.Throwf("fresh key %d 'existed'", i)
			}
		}
		if m.Size(mt) != 20 {
			mt.Throwf("size = %d", m.Size(mt))
		}
		for i := 0; i < 20; i++ {
			v, ok := m.Get(mt, i)
			if !ok || v != i*i {
				mt.Throwf("get(%d) = %d,%v", i, v, ok)
			}
		}
		if old, existed := m.Put(mt, 7, 1000); !existed || old != 49 {
			mt.Throwf("overwrite returned %d,%v", old, existed)
		}
		if v, _ := m.Get(mt, 7); v != 1000 {
			mt.Throwf("overwritten value = %d", v)
		}
		if _, ok := m.Get(mt, 99); ok {
			mt.Throwf("phantom key")
		}
		if v, ok := m.Remove(mt, 3); !ok || v != 9 {
			mt.Throwf("remove(3) = %d,%v", v, ok)
		}
		if m.ContainsKey(mt, 3) || m.Size(mt) != 19 {
			mt.Throwf("remove did not take effect")
		}
		if _, ok := m.Remove(mt, 3); ok {
			mt.Throwf("double remove succeeded")
		}
		entries := m.Entries(mt)
		if len(entries) != 19 {
			mt.Throwf("entries = %d", len(entries))
		}
		m.Clear(mt)
		if m.Size(mt) != 0 || len(m.Entries(mt)) != 0 {
			mt.Throwf("clear failed")
		}
	})
	noExc(t, res)
}

func TestHashMapFailFastEntries(t *testing.T) {
	// A mutation between two entry visits must raise CME. Drive it with two
	// threads and random scheduling.
	sawCME := false
	for seed := int64(0); seed < 300 && !sawCME; seed++ {
		prog := func(mt *conc.Thread) {
			m := NewHashMap(mt, "m")
			for i := 0; i < 6; i++ {
				m.Put(mt, i, i)
			}
			a := mt.Fork("iter", func(c *conc.Thread) { m.Entries(c) })
			b := mt.Fork("mut", func(c *conc.Thread) { m.Put(c, 100, 1) })
			mt.Join(a)
			mt.Join(b)
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		for _, ex := range res.Exceptions {
			if errors.Is(ex.Err, ErrConcurrentModification) {
				sawCME = true
			}
		}
	}
	if !sawCME {
		t.Fatal("HashMap iteration never failed fast under concurrent mutation")
	}
}

func TestHashtableSynchronized(t *testing.T) {
	// Concurrent Put/Get/Entries on a Hashtable never throws and never
	// loses an entry: the monitor serializes everything.
	for seed := int64(0); seed < 30; seed++ {
		var finalSize int
		prog := func(mt *conc.Thread) {
			h := NewHashtable(mt, "h")
			workers := conc.ForkN(mt, "w", 3, func(c *conc.Thread, id int) {
				for k := 0; k < 4; k++ {
					h.Put(c, id*10+k, k)
					h.Get(c, (id+1)*10%30)
					_ = h.Entries(c)
				}
			})
			conc.JoinAll(mt, workers)
			finalSize = h.Size(mt)
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		if res.Deadlock != nil || len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		if finalSize != 12 {
			t.Fatalf("seed %d: size = %d, want 12", seed, finalSize)
		}
	}
}

func TestHashtableRemove(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		h := NewHashtable(mt, "h")
		h.Put(mt, 1, 10)
		h.Put(mt, 2, 20)
		if v, ok := h.Remove(mt, 1); !ok || v != 10 {
			mt.Throwf("remove = %d,%v", v, ok)
		}
		if _, ok := h.Get(mt, 1); ok {
			mt.Throwf("key survived removal")
		}
		if h.Size(mt) != 1 {
			mt.Throwf("size = %d", h.Size(mt))
		}
	})
	noExc(t, res)
}
