package collections

import (
	"errors"
	"testing"

	"racefuzzer/internal/conc"
	"racefuzzer/internal/event"
	"racefuzzer/internal/hybrid"
	"racefuzzer/internal/sched"
)

func TestStringBufferSequential(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		sb := NewStringBuffer(mt, "sb")
		for _, ch := range []int{7, 4, 11, 11, 14} { // "hello"
			sb.AppendChar(mt, ch)
		}
		if got := sb.String(mt); got != "hello" {
			mt.Throwf("string = %q", got)
		}
		if sb.Length(mt) != 5 || sb.CharAt(mt, 1) != 4 {
			mt.Throwf("length/charAt wrong")
		}
		other := NewStringBuffer(mt, "other")
		other.AppendChar(mt, 22) // 'w'
		other.AppendChar(mt, 14) // 'o'
		sb.Append(mt, other)
		if got := sb.String(mt); got != "hellowo" {
			mt.Throwf("after append = %q", got)
		}
		sb.SetLength(mt, 5)
		if got := sb.String(mt); got != "hello" {
			mt.Throwf("after setLength = %q", got)
		}
	})
	noExc(t, res)
}

func TestStringBufferBoundsErrors(t *testing.T) {
	res := single(t, func(mt *conc.Thread) {
		sb := NewStringBuffer(mt, "sb")
		sb.AppendChar(mt, 1)
		_ = sb.CharAt(mt, 5)
	})
	if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrIndexOutOfBounds) {
		t.Fatalf("exceptions = %v", res.Exceptions)
	}
}

// appendShrinkProgram is the famous java.lang.StringBuffer bug: one thread
// appends buffer b into a, another truncates b. The append reads b's count,
// then b's characters, without b's monitor — a torn composite read.
func appendShrinkProgram() func(*conc.Thread) {
	return func(mt *conc.Thread) {
		a := NewStringBuffer(mt, "a")
		b := NewStringBuffer(mt, "b")
		for i := 0; i < 6; i++ {
			b.AppendChar(mt, i)
		}
		t1 := mt.Fork("appender", func(c *conc.Thread) {
			a.Append(c, b)
		})
		t2 := mt.Fork("truncator", func(c *conc.Thread) {
			b.SetLength(c, 1)
		})
		mt.Join(t1)
		mt.Join(t2)
	}
}

func TestStringBufferAppendRaceIsRealAndHarmful(t *testing.T) {
	// Phase 1 must flag the cross-object accesses; RaceFuzzer must confirm
	// them and expose the IndexOutOfBounds in some resolution.
	hybridPairs := func() []event.StmtPair {
		det := hybrid.New()
		union := map[event.StmtPair]bool{}
		for i := int64(0); i < 6; i++ {
			d := hybrid.New()
			sched.Run(appendShrinkProgram(), sched.Config{Seed: i, Observers: []sched.Observer{d}})
			for _, p := range d.Pairs() {
				union[p] = true
			}
		}
		_ = det
		out := make([]event.StmtPair, 0, len(union))
		for p := range union {
			out = append(out, p)
		}
		event.SortStmtPairs(out)
		return out
	}()
	if len(hybridPairs) == 0 {
		t.Fatal("hybrid found nothing in the append/truncate program")
	}

	sawOOB := false
	for seed := int64(0); seed < 400 && !sawOOB; seed++ {
		res := sched.Run(appendShrinkProgram(), sched.Config{Seed: seed})
		for _, ex := range res.Exceptions {
			if errors.Is(ex.Err, ErrIndexOutOfBounds) {
				sawOOB = true
			}
		}
	}
	if !sawOOB {
		t.Fatal("the append/truncate torn read never threw under random scheduling")
	}
}

func TestStringBufferAppendAtomicWhenArgumentQuiescent(t *testing.T) {
	// Without a concurrent truncation the append is well-behaved under any
	// schedule.
	for seed := int64(0); seed < 20; seed++ {
		var got string
		prog := func(mt *conc.Thread) {
			a := NewStringBuffer(mt, "a")
			b := NewStringBuffer(mt, "b")
			for i := 0; i < 3; i++ {
				b.AppendChar(mt, i)
			}
			t1 := mt.Fork("appender", func(c *conc.Thread) { a.Append(c, b) })
			t2 := mt.Fork("reader", func(c *conc.Thread) { _ = b.Length(c) })
			mt.Join(t1)
			mt.Join(t2)
			got = a.String(mt)
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		if len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: %v", seed, res.Exceptions)
		}
		if got != "abc" {
			t.Fatalf("seed %d: appended %q", seed, got)
		}
	}
}
