package collections

import (
	"fmt"

	"racefuzzer/internal/conc"
)

// StringBuffer models java.lang.StringBuffer: every method is synchronized
// on the buffer's own monitor — and yet the classic cross-object bug is
// here, faithfully: Append(other) locks THIS buffer and then reads the
// OTHER buffer's length and characters without holding the other's monitor
// (in real Java, sb.append(other) calls other.length() and other.getChars()
// — individually synchronized, but the composite read is not atomic). A
// concurrent mutation of the argument between the length read and the
// character copy makes Append read a torn snapshot, or throw
// IndexOutOfBounds when the argument shrank — the StringBuffer analogue of
// §5.3's containsAll bug.
type StringBuffer struct {
	name string
	mon  *conc.Mutex
	data *conc.Array[int] // character cells
	len  *conc.IntVar
}

// NewStringBuffer allocates an empty buffer.
func NewStringBuffer(t *conc.Thread, name string) *StringBuffer {
	return &StringBuffer{
		name: name,
		mon:  conc.NewMutex(t, name+".monitor"),
		data: conc.NewArray[int](t, name+".value", defaultCap),
		len:  conc.NewIntVar(t, name+".count", 0),
	}
}

// Length returns the character count (synchronized).
func (s *StringBuffer) Length(t *conc.Thread) int {
	s.mon.Lock(t)
	n := s.len.Get(t)
	s.mon.Unlock(t)
	return n
}

// AppendChar appends one character (synchronized).
func (s *StringBuffer) AppendChar(t *conc.Thread, ch int) {
	s.mon.Lock(t)
	n := s.len.Get(t)
	if n >= s.data.Len() {
		s.mon.Unlock(t)
		t.Throw(fmt.Errorf("%w: %s", ErrCapacityExceeded, s.name))
	}
	s.data.Set(t, n, ch)
	s.len.Set(t, n+1)
	s.mon.Unlock(t)
}

// SetLength truncates or zero-extends the buffer (synchronized).
func (s *StringBuffer) SetLength(t *conc.Thread, n int) {
	s.mon.Lock(t)
	if n < 0 || n > s.data.Len() {
		s.mon.Unlock(t)
		t.Throw(fmt.Errorf("%w: setLength(%d)", ErrIndexOutOfBounds, n))
	}
	cur := s.len.Get(t)
	for i := cur; i < n; i++ {
		s.data.Set(t, i, 0)
	}
	s.len.Set(t, n)
	s.mon.Unlock(t)
}

// CharAt returns the character at index i (synchronized).
func (s *StringBuffer) CharAt(t *conc.Thread, i int) int {
	s.mon.Lock(t)
	n := s.len.Get(t)
	if i < 0 || i >= n {
		s.mon.Unlock(t)
		t.Throw(fmt.Errorf("%w: charAt(%d), length %d", ErrIndexOutOfBounds, i, n))
	}
	ch := s.data.Get(t, i)
	s.mon.Unlock(t)
	return ch
}

// Append appends the contents of other. JDK-faithful bug: the receiver's
// monitor is held, but the argument's length and characters are read with
// NO lock on the argument — the composite is not atomic, so a concurrent
// SetLength/AppendChar on other can make the copy read stale cells or
// throw IndexOutOfBounds.
func (s *StringBuffer) Append(t *conc.Thread, other *StringBuffer) {
	s.mon.Lock(t)
	n := other.len.Get(t) // ← unsynchronized read of the argument's count
	dst := s.len.Get(t)
	if dst+n > s.data.Len() {
		s.mon.Unlock(t)
		t.Throw(fmt.Errorf("%w: %s", ErrCapacityExceeded, s.name))
	}
	for i := 0; i < n; i++ {
		// ← unsynchronized reads of the argument's characters; the argument
		// may have been truncated since the length read.
		cur := other.len.Get(t)
		if i >= cur {
			s.mon.Unlock(t)
			t.Throw(fmt.Errorf("%w: append saw %s shrink from %d to %d",
				ErrIndexOutOfBounds, other.name, n, cur))
		}
		s.data.Set(t, dst+i, other.data.Get(t, i))
	}
	s.len.Set(t, dst+n)
	s.mon.Unlock(t)
}

// String snapshots the contents (synchronized; characters rendered as
// letters for readable assertions).
func (s *StringBuffer) String(t *conc.Thread) string {
	s.mon.Lock(t)
	n := s.len.Get(t)
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		buf[i] = byte('a' + s.data.Get(t, i)%26)
	}
	s.mon.Unlock(t)
	return string(buf)
}
