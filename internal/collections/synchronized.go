package collections

import "racefuzzer/internal/conc"

// SynchronizedList models Collections.synchronizedList: every method locks
// the wrapper's mutex around the backing list's method. Two deliberate
// JDK-faithful properties carry the paper's §5.3 bug class:
//
//  1. Iterator returns the BACKING list's iterator and performs NO locking —
//     the JDK documents "Must be manually synchronized by the user".
//  2. Bulk operations (ContainsAll, AddAll, RemoveAll, Equals) lock only
//     THIS wrapper's mutex and then run the inherited AbstractCollection
//     implementation, which iterates the argument collection c via c's
//     (unsynchronized, fail-fast) iterator. When c is another synchronized
//     wrapper, its modCount is read while mutating threads hold only c's
//     mutex — disjoint locksets, a real race, and randomly resolving it
//     yields ConcurrentModificationException / NoSuchElementException.
type SynchronizedList struct {
	mu    *conc.Mutex
	inner List
}

// NewSynchronizedList wraps inner the way Collections.synchronizedList does.
func NewSynchronizedList(t *conc.Thread, name string, inner List) *SynchronizedList {
	return &SynchronizedList{mu: conc.NewMutex(t, name+".mutex"), inner: inner}
}

// Mutex exposes the wrapper lock (for drivers that iterate correctly by
// manually synchronizing, mirroring the JDK-documented usage).
func (s *SynchronizedList) Mutex() *conc.Mutex { return s.mu }

// Add appends v under the wrapper lock.
func (s *SynchronizedList) Add(t *conc.Thread, v int) bool {
	s.mu.Lock(t)
	r := s.inner.Add(t, v)
	s.mu.Unlock(t)
	return r
}

// Remove deletes one occurrence of v under the wrapper lock.
func (s *SynchronizedList) Remove(t *conc.Thread, v int) bool {
	s.mu.Lock(t)
	r := s.inner.Remove(t, v)
	s.mu.Unlock(t)
	return r
}

// Contains probes membership under the wrapper lock.
func (s *SynchronizedList) Contains(t *conc.Thread, v int) bool {
	s.mu.Lock(t)
	r := s.inner.Contains(t, v)
	s.mu.Unlock(t)
	return r
}

// Size returns the element count under the wrapper lock.
func (s *SynchronizedList) Size(t *conc.Thread) int {
	s.mu.Lock(t)
	r := s.inner.Size(t)
	s.mu.Unlock(t)
	return r
}

// Get returns the i-th element under the wrapper lock.
func (s *SynchronizedList) Get(t *conc.Thread, i int) int {
	s.mu.Lock(t)
	r := s.inner.Get(t, i)
	s.mu.Unlock(t)
	return r
}

// Clear empties the list under the wrapper lock.
func (s *SynchronizedList) Clear(t *conc.Thread) {
	s.mu.Lock(t)
	s.inner.Clear(t)
	s.mu.Unlock(t)
}

// Iterator returns the backing iterator with NO locking (JDK-faithful).
func (s *SynchronizedList) Iterator(t *conc.Thread) Iterator {
	return s.inner.Iterator(t)
}

// ContainsAll locks this wrapper only, then iterates c unsynchronized —
// the exact bug of §5.3.
func (s *SynchronizedList) ContainsAll(t *conc.Thread, c Collection) bool {
	s.mu.Lock(t)
	r := AbstractContainsAll(t, s.inner, c)
	s.mu.Unlock(t)
	return r
}

// AddAll locks this wrapper only, then iterates c unsynchronized.
func (s *SynchronizedList) AddAll(t *conc.Thread, c Collection) bool {
	s.mu.Lock(t)
	r := AbstractAddAll(t, s.inner, c)
	s.mu.Unlock(t)
	return r
}

// RemoveAll locks this wrapper only; it iterates THIS list (safely, under
// the wrapper lock) but probes c.Contains, which for a wrapped argument
// takes c's own lock briefly — no race on c, but the paper's removeAll role
// is the mutator whose writes race with a concurrent containsAll iteration.
func (s *SynchronizedList) RemoveAll(t *conc.Thread, c Collection) bool {
	s.mu.Lock(t)
	r := AbstractRemoveAll(t, s.inner, c)
	s.mu.Unlock(t)
	return r
}

// Equals locks this wrapper only, then pairwise-iterates both lists — the
// argument's iterator again runs without the argument's lock.
func (s *SynchronizedList) Equals(t *conc.Thread, c List) bool {
	s.mu.Lock(t)
	r := AbstractListEquals(t, s.inner, c)
	s.mu.Unlock(t)
	return r
}

// SynchronizedSet is Collections.synchronizedSet with the same structure
// (and the same bulk-operation bug) as SynchronizedList.
type SynchronizedSet struct {
	mu    *conc.Mutex
	inner Set
}

// NewSynchronizedSet wraps inner the way Collections.synchronizedSet does.
func NewSynchronizedSet(t *conc.Thread, name string, inner Set) *SynchronizedSet {
	return &SynchronizedSet{mu: conc.NewMutex(t, name+".mutex"), inner: inner}
}

// Mutex exposes the wrapper lock.
func (s *SynchronizedSet) Mutex() *conc.Mutex { return s.mu }

// Add inserts v under the wrapper lock.
func (s *SynchronizedSet) Add(t *conc.Thread, v int) bool {
	s.mu.Lock(t)
	r := s.inner.Add(t, v)
	s.mu.Unlock(t)
	return r
}

// Remove deletes v under the wrapper lock.
func (s *SynchronizedSet) Remove(t *conc.Thread, v int) bool {
	s.mu.Lock(t)
	r := s.inner.Remove(t, v)
	s.mu.Unlock(t)
	return r
}

// Contains probes membership under the wrapper lock.
func (s *SynchronizedSet) Contains(t *conc.Thread, v int) bool {
	s.mu.Lock(t)
	r := s.inner.Contains(t, v)
	s.mu.Unlock(t)
	return r
}

// Size returns the element count under the wrapper lock.
func (s *SynchronizedSet) Size(t *conc.Thread) int {
	s.mu.Lock(t)
	r := s.inner.Size(t)
	s.mu.Unlock(t)
	return r
}

// Clear empties the set under the wrapper lock.
func (s *SynchronizedSet) Clear(t *conc.Thread) {
	s.mu.Lock(t)
	s.inner.Clear(t)
	s.mu.Unlock(t)
}

// Iterator returns the backing iterator with NO locking (JDK-faithful).
func (s *SynchronizedSet) Iterator(t *conc.Thread) Iterator {
	return s.inner.Iterator(t)
}

// ContainsAll locks this wrapper only, then iterates c unsynchronized.
func (s *SynchronizedSet) ContainsAll(t *conc.Thread, c Collection) bool {
	s.mu.Lock(t)
	r := AbstractContainsAll(t, s.inner, c)
	s.mu.Unlock(t)
	return r
}

// AddAll locks this wrapper only, then iterates c unsynchronized — the
// paper's HashSet/TreeSet addAll bug.
func (s *SynchronizedSet) AddAll(t *conc.Thread, c Collection) bool {
	s.mu.Lock(t)
	r := AbstractAddAll(t, s.inner, c)
	s.mu.Unlock(t)
	return r
}

// RemoveAll locks this wrapper only.
func (s *SynchronizedSet) RemoveAll(t *conc.Thread, c Collection) bool {
	s.mu.Lock(t)
	r := AbstractRemoveAll(t, s.inner, c)
	s.mu.Unlock(t)
	return r
}

// Interface conformance checks.
var (
	_ List       = (*ArrayList)(nil)
	_ List       = (*LinkedList)(nil)
	_ List       = (*SynchronizedList)(nil)
	_ Set        = (*HashSet)(nil)
	_ Set        = (*TreeSet)(nil)
	_ Set        = (*SynchronizedSet)(nil)
	_ Collection = (*Vector)(nil)
	_ Iterator   = (*VectorEnumeration)(nil)
)
