// Package report renders experiment results as aligned text tables — the
// medium in which this reproduction re-emits the paper's Table 1 and the
// Figure-2 sweep. It is deliberately dependency-free: harness code builds
// rows, this package formats them.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render returns the aligned table as a string. Ragged rows are fine:
// rows shorter than the header leave trailing cells empty, and rows longer
// than the header get extra (unheaded) columns.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, row := range t.rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Num formats a float compactly ("-" for negative sentinel values).
func Num(f float64) string {
	if f < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", f)
}

// Secs formats a duration in seconds with enough precision for sub-ms runs.
func Secs(f float64) string {
	if f < 0 {
		return "-"
	}
	return fmt.Sprintf("%.4f", f)
}

// IntOrDash formats an int, with "-" for the -1 sentinel.
func IntOrDash(n int) string {
	if n < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}
