package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value", "note")
	tab.AddRow("alpha", 1, "short")
	tab.AddRow("a-much-longer-name", 23456, "x")
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("separator = %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "1") && !strings.Contains(lines[3], "alpha") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
	if !strings.Contains(out, "23456") {
		t.Fatal("missing cell")
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow(1)
	if strings.HasPrefix(tab.Render(), "\n") {
		t.Fatal("leading blank line with empty title")
	}
}

func TestFormatters(t *testing.T) {
	if Num(-1) != "-" || Num(0.5) != "0.50" {
		t.Fatal("Num wrong")
	}
	if Secs(-1) != "-" || Secs(0.12345) != "0.1234" && Secs(0.12345) != "0.1235" {
		t.Fatalf("Secs = %q", Secs(0.12345))
	}
	if IntOrDash(-1) != "-" || IntOrDash(7) != "7" {
		t.Fatal("IntOrDash wrong")
	}
}
