package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value", "note")
	tab.AddRow("alpha", 1, "short")
	tab.AddRow("a-much-longer-name", 23456, "x")
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("separator = %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "1") && !strings.Contains(lines[3], "alpha") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
	if !strings.Contains(out, "23456") {
		t.Fatal("missing cell")
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow(1)
	if strings.HasPrefix(tab.Render(), "\n") {
		t.Fatal("leading blank line with empty title")
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Rows with fewer cells than headers render with trailing cells empty.
	tab := NewTable("ragged", "a", "b", "c")
	tab.AddRow("x")
	tab.AddRow("y", 2)
	tab.AddRow("z", 3, "full")
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "x") || strings.TrimSpace(lines[3]) != "x" {
		t.Fatalf("short row rendered as %q", lines[3])
	}
	if !strings.Contains(lines[5], "full") {
		t.Fatalf("full row rendered as %q", lines[5])
	}
}

func TestTableRowsWiderThanHeader(t *testing.T) {
	// Rows with more cells than headers must not panic; extra columns render.
	tab := NewTable("wide", "only")
	tab.AddRow("a", "b", "c")
	out := tab.Render()
	if !strings.Contains(out, "a") || !strings.Contains(out, "c") {
		t.Fatalf("extra cells missing:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	tab := NewTable("empty", "h1", "h2")
	if tab.Len() != 0 {
		t.Fatalf("len = %d", tab.Len())
	}
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // title, header, separator — no data rows
		t.Fatalf("empty table rendered %d lines:\n%s", len(lines), out)
	}
	// Entirely empty table (no headers either) still renders without panic.
	none := NewTable("")
	if got := none.Render(); !strings.Contains(got, "\n") {
		t.Fatalf("headerless render = %q", got)
	}
}

func TestFormatterSentinels(t *testing.T) {
	// The negative-sentinel convention: -1 (or any negative) means "not
	// reported" and renders as a dash in every formatter.
	if Num(-0.001) != "-" {
		t.Fatalf("Num(-0.001) = %q", Num(-0.001))
	}
	if Secs(-1) != "-" {
		t.Fatalf("Secs(-1) = %q", Secs(-1))
	}
	if IntOrDash(-1) != "-" || IntOrDash(0) != "0" {
		t.Fatalf("IntOrDash sentinel wrong: %q %q", IntOrDash(-1), IntOrDash(0))
	}
	// Zero is a value, not a sentinel.
	if Num(0) != "0.00" || Secs(0) != "0.0000" {
		t.Fatalf("zero mis-rendered: %q %q", Num(0), Secs(0))
	}
}

func TestFormatters(t *testing.T) {
	if Num(-1) != "-" || Num(0.5) != "0.50" {
		t.Fatal("Num wrong")
	}
	if Secs(-1) != "-" || Secs(0.12345) != "0.1234" && Secs(0.12345) != "0.1235" {
		t.Fatalf("Secs = %q", Secs(0.12345))
	}
	if IntOrDash(-1) != "-" || IntOrDash(7) != "7" {
		t.Fatal("IntOrDash wrong")
	}
}
