package flightrec

import (
	"fmt"
	"strings"

	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/trace"
)

// Race explanation: a confirmed race is only actionable with its causal
// narrative — why the scheduler held a thread back, where the second access
// arrived, and what each side was holding when they met. Explain renders
// that narrative from a recording: header lines describing the race and the
// postpone decisions that staged it, then a per-thread timeline
// (trace.Explain) of the window around the meeting point, with the policy's
// actions pinned in as annotations.

// DefaultExplainRadius is the number of scheduler steps shown on each side
// of the focus point.
const DefaultExplainRadius = 15

// explainReach bounds how far before the focus the window stretches to keep
// a participant's postpone point visible.
const explainReach = 60

// Explain renders the recording's causal story around its confirmed race
// (or atomicity violation, or deadlock) with the default window radius.
// The output is a pure function of the recording: a reloaded trace
// re-explains bit-identically.
func (rec *Recording) Explain() string { return rec.ExplainWindow(DefaultExplainRadius) }

// ExplainWindow is Explain with an explicit window radius.
func (rec *Recording) ExplainWindow(radius int) string {
	if radius <= 0 {
		radius = DefaultExplainRadius
	}
	var b strings.Builder
	h := rec.Header
	fmt.Fprintf(&b, "flight recording: %s seed=%d", describe(h), h.Seed)
	if h.Pair != "" {
		fmt.Fprintf(&b, " target=%s", h.Pair)
	}
	b.WriteByte('\n')

	actions := rec.Actions()
	end := rec.Summary()
	hit := lastHit(actions)
	focus := -1
	switch {
	case hit != nil:
		focus = hit.Step
		b.WriteString(narrateHit(*hit))
	case end.Deadlock:
		focus = end.DeadlockStep
		fmt.Fprintf(&b, "real deadlock at step %d (no race hit recorded)\n", end.DeadlockStep)
	default:
		fmt.Fprintf(&b, "no race, violation or deadlock in this recording (%d steps", end.Steps)
		if end.Aborted {
			b.WriteString(", aborted at step bound")
		}
		b.WriteString(")\n")
		return b.String()
	}

	// Narrate the postpone decisions that staged the hit: for each
	// participant, its last postpone before the focus step.
	lo := focus - radius
	if hit != nil {
		for _, t := range participants(*hit) {
			if p := lastPostponeOf(actions, t, focus); p != nil {
				fmt.Fprintf(&b, "  %s\n", postponeLine(*p))
				if p.Step < lo && p.Step >= focus-explainReach {
					lo = p.Step
				}
			}
		}
	}
	if lo < 0 {
		lo = 0
	}
	hi := focus + radius

	// Pin the policy's actions into the timeline as per-thread marks.
	var marks []trace.Mark
	for _, a := range actions {
		if a.Step < lo || a.Step > hi {
			continue
		}
		marks = append(marks, trace.Mark{Step: a.Step, Thread: event.ThreadID(a.Thread), Text: markText(a)})
	}

	b.WriteByte('\n')
	b.WriteString(trace.Explain(rec.Events(), lo, hi, marks))

	if len(end.Exceptions) > 0 {
		b.WriteString("\nexceptions:\n")
		for _, ex := range end.Exceptions {
			fmt.Fprintf(&b, "  %s\n", ex)
		}
	}
	return b.String()
}

func describe(h Header) string {
	parts := []string{}
	if h.Label != "" {
		parts = append(parts, h.Label)
	}
	if h.Kind != "" {
		parts = append(parts, h.Kind)
	}
	if h.Policy != "" {
		parts = append(parts, "policy="+h.Policy)
	}
	if len(parts) == 0 {
		return "(unlabeled)"
	}
	return strings.Join(parts, " ")
}

// lastHit returns the final race/violation action — the confirmed hit the
// explanation centers on (policies may confirm several; the last is the one
// the run's outcome followed from most closely, and earlier ones remain
// visible as marks when in-window).
func lastHit(actions []Action) *Action {
	for i := len(actions) - 1; i >= 0; i-- {
		k := actions[i].Kind
		if k == sched.ActRace.String() || k == sched.ActViolation.String() {
			a := actions[i]
			return &a
		}
	}
	return nil
}

func participants(hit Action) []int {
	out := []int{hit.Thread}
	out = append(out, hit.Others...)
	return out
}

func lastPostponeOf(actions []Action, thread, before int) *Action {
	var found *Action
	for i := range actions {
		a := actions[i]
		if a.Kind == sched.ActPostpone.String() && a.Thread == thread && a.Step <= before {
			found = &actions[i]
		}
	}
	return found
}

func locLabel(loc int, name string) string {
	if name != "" {
		return fmt.Sprintf("m%d(%s)", loc, name)
	}
	return fmt.Sprintf("m%d", loc)
}

func narrateHit(a Action) string {
	var b strings.Builder
	if a.Kind == sched.ActViolation.String() {
		fmt.Fprintf(&b, "ATOMICITY VIOLATION at step %d on %s: %s interleaved @%s inside %s's block before @%s\n",
			a.Step, locLabel(a.Loc, a.LocName), threadNames(a.Others), a.OtherStmt,
			threadName(a.Thread), a.Stmt)
		return b.String()
	}
	order := "postponed side ran first"
	if a.CandidateFirst {
		order = "candidate ran first"
	}
	fmt.Fprintf(&b, "REAL RACE at step %d on %s: %s arrived at @%s while %s sat postponed at @%s — resolved by coin flip (%s)\n",
		a.Step, locLabel(a.Loc, a.LocName), threadName(a.Thread), a.Stmt,
		threadNames(a.Others), a.OtherStmt, order)
	return b.String()
}

func postponeLine(a Action) string {
	at := ""
	switch {
	case a.Stmt != "":
		at = fmt.Sprintf(" before access @%s on %s", a.Stmt, locLabel(a.Loc, a.LocName))
	case a.Lock >= 0:
		at = fmt.Sprintf(" before acquiring L%d", a.Lock)
	}
	return fmt.Sprintf("%s postponed at step %d%s (waiting for the other side of the pair)",
		threadName(a.Thread), a.Step, at)
}

func markText(a Action) string {
	switch a.Kind {
	case sched.ActPostpone.String():
		return "◀ postponed"
	case sched.ActResume.String():
		return "▶ resumed (postponed ⊇ enabled)"
	case sched.ActLivelockBreak.String():
		return "▶ resumed (livelock monitor)"
	case sched.ActRace.String():
		order := "postponed-first"
		if a.CandidateFirst {
			order = "candidate-first"
		}
		return fmt.Sprintf("*** RACE with %s on %s (%s)", threadNames(a.Others), locLabel(a.Loc, a.LocName), order)
	case sched.ActViolation.String():
		return fmt.Sprintf("*** VIOLATION by %s on %s", threadNames(a.Others), locLabel(a.Loc, a.LocName))
	}
	return a.Kind
}

func threadNames(ts []int) string {
	if len(ts) == 0 {
		return "[]"
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = threadName(t)
	}
	return strings.Join(parts, "+")
}
