package flightrec

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"racefuzzer/internal/trace"
)

// Serialization: one JSON object per line. The first line is the header
// (distinguished by its "v" version field); every later line carries a
// "rec" discriminator: "dec" (scheduling decision), "act" (policy action),
// "ev" (event, internal/trace's wire encoding), "end" (run summary).
// Loading a recording written by a newer format version fails with the same
// graceful "unsupported trace version" error as plain traces.

type decLine struct {
	Rec string `json:"rec"`
	*Decision
}

type actLine struct {
	Rec string `json:"rec"`
	*Action
}

type evLine struct {
	Rec string `json:"rec"`
	*trace.WireEvent
}

type endLine struct {
	Rec string `json:"rec"`
	*Summary
}

// marshalRecord renders one record as its JSONL line (no trailing newline).
func marshalRecord(r Record) ([]byte, error) {
	switch {
	case r.Dec != nil:
		return json.Marshal(decLine{Rec: "dec", Decision: r.Dec})
	case r.Act != nil:
		return json.Marshal(actLine{Rec: "act", Action: r.Act})
	case r.Ev != nil:
		return json.Marshal(evLine{Rec: "ev", WireEvent: r.Ev})
	case r.End != nil:
		return json.Marshal(endLine{Rec: "end", Summary: r.End})
	}
	return nil, fmt.Errorf("flightrec: empty record")
}

// String renders the record for divergence reports and debugging: the JSONL
// line itself, which is exact and compact.
func (r Record) String() string {
	b, err := marshalRecord(r)
	if err != nil {
		return "(empty record)"
	}
	return string(b)
}

// Save writes the recording as versioned JSONL.
func (rec *Recording) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := rec.Header
	if h.V == 0 {
		h.V = trace.FormatVersion
	}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("flightrec: save: %w", err)
	}
	for _, r := range rec.Records {
		b, err := marshalRecord(r)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := bw.Write(b); err != nil {
			return fmt.Errorf("flightrec: save: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flightrec: save: %w", err)
	}
	return nil
}

// SaveFile writes the recording to path, creating parent directories.
func (rec *Recording) SaveFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("flightrec: save: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flightrec: save: %w", err)
	}
	if err := rec.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a recording written by Save. An unsupported format version is
// reported gracefully; unknown record kinds within a supported version are
// an error (they would silently corrupt divergence checking). A partial
// FINAL line — the footprint of a crash mid-write — is skipped and flagged
// via Recording.Truncated rather than failing the whole load: every record
// before it was written and synced whole, so the prefix is trustworthy.
func Load(r io.Reader) (*Recording, error) {
	dec := json.NewDecoder(r)
	var h Header
	if err := dec.Decode(&h); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("flightrec: load: empty recording")
		}
		return nil, fmt.Errorf("flightrec: load: header: %w", err)
	}
	if err := trace.CheckVersion(h.V); err != nil {
		return nil, err
	}
	rec := &Recording{Header: h}
	for i := 1; ; i++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return rec, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				// The stream ended inside a JSON value: a torn final line.
				rec.Truncated = true
				return rec, nil
			}
			return nil, fmt.Errorf("flightrec: load: line %d: %w", i+1, err)
		}
		var tag struct {
			Rec string `json:"rec"`
		}
		if err := json.Unmarshal(raw, &tag); err != nil {
			return nil, fmt.Errorf("flightrec: load: line %d: %w", i+1, err)
		}
		var out Record
		var err error
		switch tag.Rec {
		case "dec":
			out.Dec = &Decision{}
			err = json.Unmarshal(raw, out.Dec)
		case "act":
			out.Act = &Action{}
			err = json.Unmarshal(raw, out.Act)
		case "ev":
			out.Ev = &trace.WireEvent{}
			err = json.Unmarshal(raw, out.Ev)
		case "end":
			out.End = &Summary{}
			err = json.Unmarshal(raw, out.End)
		default:
			return nil, fmt.Errorf("flightrec: load: line %d: unknown record kind %q", i+1, tag.Rec)
		}
		if err != nil {
			return nil, fmt.Errorf("flightrec: load: line %d: %w", i+1, err)
		}
		rec.Records = append(rec.Records, out)
	}
}

// LoadFile reads a recording from path.
func LoadFile(path string) (*Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flightrec: load: %w", err)
	}
	defer f.Close()
	return Load(f)
}
