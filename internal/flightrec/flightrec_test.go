package flightrec

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/trace"
)

// record runs a benchmark program under the random policy with a Recorder
// attached and returns the finished recording.
func record(t *testing.T, seed int64) *Recording {
	t.Helper()
	r := NewRecorder(Header{Label: "figure1", Policy: "random", Seed: seed})
	res := sched.Run(bench.Figure1(), sched.Config{
		Seed: seed, Policy: sched.NewRandomPolicy(), Flight: r,
	})
	r.Finish(res)
	return r.Recording()
}

func TestRecorderCapturesDecisionsAndEvents(t *testing.T) {
	rec := record(t, 3)
	decs := rec.Decisions()
	evs := rec.Events()
	if len(decs) == 0 || len(evs) == 0 {
		t.Fatalf("decisions=%d events=%d", len(decs), len(evs))
	}
	// Decision rounds count up from 0; RNG draw counts never decrease.
	var draws uint64
	for i, d := range decs {
		if d.Round != i {
			t.Fatalf("decision %d has round %d", i, d.Round)
		}
		if d.Draws < draws {
			t.Fatalf("decision %d: draw count went backwards (%d -> %d)", i, draws, d.Draws)
		}
		draws = d.Draws
		if len(d.Enabled) == 0 {
			t.Fatalf("decision %d has empty enabled set", i)
		}
	}
	end := rec.Summary()
	if end.Steps == 0 || end.Steps != evs[len(evs)-1].Step {
		t.Fatalf("summary steps %d, last event step %d", end.Steps, evs[len(evs)-1].Step)
	}
}

func TestSaveLoadRoundTripIsExact(t *testing.T) {
	rec := record(t, 9)
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()
	if !strings.HasPrefix(saved, `{"v":1`) {
		t.Fatalf("recording does not start with a version header: %q", saved[:40])
	}
	loaded, err := Load(strings.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if d := Diverge(loaded, rec); d != nil {
		t.Fatalf("round trip diverged: %v", d)
	}
	// Saving the loaded recording reproduces the bytes exactly.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != saved {
		t.Fatal("save/load/save is not byte-identical")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	rec := record(t, 4)
	path := filepath.Join(t.TempDir(), "nested", "dir", "run.trace.jsonl")
	if err := rec.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diverge(loaded, rec); d != nil {
		t.Fatalf("file round trip diverged: %v", d)
	}
}

func TestLoadRejectsUnsupportedVersion(t *testing.T) {
	in := `{"v":99,"seed":1}` + "\n"
	if _, err := Load(strings.NewReader(in)); err == nil ||
		!strings.Contains(err.Error(), "unsupported trace version 99") {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadRejectsUnknownRecordKind(t *testing.T) {
	in := `{"v":1,"seed":1}` + "\n" + `{"rec":"mystery"}` + "\n"
	if _, err := Load(strings.NewReader(in)); err == nil ||
		!strings.Contains(err.Error(), `unknown record kind "mystery"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadRejectsEmptyInput(t *testing.T) {
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestExplainWithoutHitSaysSo(t *testing.T) {
	rec := record(t, 3) // random policy: no directed actions recorded
	out := rec.Explain()
	if !strings.Contains(out, "no race, violation or deadlock") {
		t.Fatalf("explanation:\n%s", out)
	}
	if !strings.Contains(out, "figure1") || !strings.Contains(out, "policy=random") {
		t.Fatalf("header not rendered:\n%s", out)
	}
}

func TestActionKindStringsAreStable(t *testing.T) {
	// The wire format persists these strings; renaming one silently breaks
	// old recordings, so pin them.
	want := map[sched.ActionKind]string{
		sched.ActPostpone:      "postpone",
		sched.ActResume:        "resume",
		sched.ActLivelockBreak: "livelock-break",
		sched.ActRace:          "race",
		sched.ActViolation:     "violation",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%v renders %q, want %q", int(k), k.String(), s)
		}
		if got, ok := sched.ActionKindFor(s); !ok || got != k {
			t.Fatalf("ActionKindFor(%q) = %v, %v", s, got, ok)
		}
	}
}

func TestFlightRecordingSharesTraceVersion(t *testing.T) {
	rec := record(t, 1)
	if rec.Header.V != trace.FormatVersion {
		t.Fatalf("recording version %d, trace version %d", rec.Header.V, trace.FormatVersion)
	}
}

func TestLoadSkipsTruncatedFinalLine(t *testing.T) {
	rec := record(t, 11)
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()

	// Cut the serialized recording mid-way through its final line — the
	// footprint of a crash during the last write.
	cut := strings.LastIndex(strings.TrimRight(full, "\n"), "\n") + 1
	torn := full[:cut+10]

	loaded, err := Load(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn final line should load: %v", err)
	}
	if !loaded.Truncated {
		t.Fatal("Truncated flag not set on torn recording")
	}
	if want := len(rec.Records) - 1; len(loaded.Records) != want {
		t.Fatalf("loaded %d records, want the %d intact ones", len(loaded.Records), want)
	}
	for i, r := range loaded.Records {
		if r.String() != rec.Records[i].String() {
			t.Fatalf("record %d differs after truncated load", i)
		}
	}

	// An intact recording must not be flagged.
	whole, err := Load(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if whole.Truncated {
		t.Fatal("intact recording flagged as truncated")
	}

	// Corruption that is not a torn tail (garbage mid-stream) still fails.
	lines := strings.Split(strings.TrimRight(full, "\n"), "\n")
	lines[1] = "{not json"
	if _, err := Load(strings.NewReader(strings.Join(lines, "\n") + "\n")); err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
}

// TestLoadToleratesCRLF: a recording whose line endings became \r\n in
// transit (git autocrlf, a Windows fleet worker) must load identically to
// the LF original — \r is JSON whitespace, so the decoder's tolerance is
// pinned here against a rewrite to a line-oriented loader.
func TestLoadToleratesCRLF(t *testing.T) {
	rec := record(t, 9)
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	crlf := strings.ReplaceAll(buf.String(), "\n", "\r\n")
	loaded, err := Load(strings.NewReader(crlf))
	if err != nil {
		t.Fatalf("CRLF recording rejected: %v", err)
	}
	if loaded.Truncated {
		t.Fatal("CRLF recording flagged truncated")
	}
	if d := Diverge(loaded, rec); d != nil {
		t.Fatalf("CRLF recording diverged from the LF original: %v", d)
	}
}
