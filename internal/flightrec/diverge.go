package flightrec

import (
	"encoding/json"
	"fmt"
)

// Replay-divergence detection: the paper's replay story is that a seed
// fully determines the schedule (§2.2), so a re-run of a recorded
// (seed, target) must reproduce the recording exactly. Diverge checks that
// claim record by record — decisions (including RNG draw positions),
// policy actions, events, and the end summary — and reports the first
// mismatch instead of a vague "results differ". A divergence means
// nondeterminism leaked into the controller (map iteration, wall-clock
// coupling, shared mutable state across runs), which is precisely the class
// of bug that silently invalidates every probability the pipelines report.

// Divergence describes the first point at which two recordings disagree.
type Divergence struct {
	// Index is the 0-based record index of the first mismatch; -1 means the
	// headers themselves disagree.
	Index int
	// Step is the scheduler step of the mismatching record (-1 when not
	// applicable, e.g. header mismatch or a missing record).
	Step int
	// Got and Want render the divergent records (the literal trace lines);
	// "<end of recording>" marks a recording that ran out first.
	Got, Want string
}

func (d *Divergence) String() string {
	if d == nil {
		return "recordings identical"
	}
	if d.Index < 0 {
		return fmt.Sprintf("replay divergence: headers differ:\n  got:  %s\n  want: %s", d.Got, d.Want)
	}
	return fmt.Sprintf("replay divergence at record %d (step %d):\n  got:  %s\n  want: %s",
		d.Index, d.Step, d.Got, d.Want)
}

const endOfRecording = "<end of recording>"

// Diverge compares a fresh recording (got) against a reference (want) and
// returns the first divergence, or nil when the recordings are identical.
// Comparison is on the serialized form, so anything the trace persists —
// enabled sets, grant order, RNG draw counts, action operands, event
// payloads — participates.
func Diverge(got, want *Recording) *Divergence {
	gh, _ := json.Marshal(got.Header)
	wh, _ := json.Marshal(want.Header)
	if string(gh) != string(wh) {
		return &Divergence{Index: -1, Step: -1, Got: string(gh), Want: string(wh)}
	}
	n := len(got.Records)
	if len(want.Records) > n {
		n = len(want.Records)
	}
	for i := 0; i < n; i++ {
		var g, w string
		step := -1
		if i < len(got.Records) {
			g = got.Records[i].String()
			step = got.Records[i].Step()
		} else {
			g = endOfRecording
		}
		if i < len(want.Records) {
			w = want.Records[i].String()
			if step < 0 {
				step = want.Records[i].Step()
			}
		} else {
			w = endOfRecording
		}
		if g != w {
			return &Divergence{Index: i, Step: step, Got: g, Want: w}
		}
	}
	return nil
}
