// Package flightrec is the schedule flight recorder: it captures, per run,
// the full causal record of an execution — every scheduling decision (chosen
// thread, enabled set, RNG draw position), every policy action
// (postpone/resume/livelock-break, race-check outcome), and the event
// stream — into a compact, versioned JSONL trace that extends
// internal/trace's serialization.
//
// Three consumers sit on top of the recording:
//
//   - The replay-divergence detector (Diverge): re-run a recorded
//     (seed, target) and diff the fresh recording against the stored one
//     record by record. The paper's determinism claim — a single RNG seed
//     replays the whole schedule (§2.2) — becomes a checked invariant that
//     fails loudly with the first divergent step.
//   - The race-explanation renderer (Recording.Explain): a per-thread ASCII
//     timeline of the window around the confirmed race — the postpone
//     point, the second access's arrival, the racing statements with their
//     source labels and lock sets.
//   - Campaign auto-capture (core.Options.TraceDir): pipelines archive a
//     replayable witness trace for the first confirmed hit of each target.
//
// Decisions are recorded controller-side (see internal/sched's flight hook)
// so every policy is covered and force-grants are visible. Recording is
// strictly passive: the recorder observes deterministic points only, so a
// run records identically with or without it.
package flightrec

import (
	"fmt"

	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/trace"
)

// Header identifies a recording: what ran, under which policy and seed.
// The V field carries the trace format version (trace.FormatVersion).
type Header struct {
	V int `json:"v"`
	// Label names the campaign/benchmark; Policy the scheduling policy.
	Label  string `json:"label,omitempty"`
	Policy string `json:"policy,omitempty"`
	// Kind names the directed pipeline ("race", "deadlock", "atomicity").
	Kind string `json:"kind,omitempty"`
	// Seed replays the execution.
	Seed int64 `json:"seed"`
	// Pair renders the directed target (statement pair, lock pair, block).
	Pair     string `json:"pair,omitempty"`
	MaxSteps int    `json:"maxSteps,omitempty"`
}

// Decision is the wire form of one sched.DecisionRecord.
type Decision struct {
	Round   int    `json:"i"`
	Step    int    `json:"n"`
	Enabled []int  `json:"en"`
	Grants  []int  `json:"g,omitempty"`
	Draws   uint64 `json:"d"`
	Forced  bool   `json:"f,omitempty"`
}

// Action is the wire form of one sched.ActionRecord.
type Action struct {
	Kind           string `json:"act"`
	Step           int    `json:"n"`
	Thread         int    `json:"t"`
	Others         []int  `json:"o,omitempty"`
	Stmt           string `json:"s,omitempty"`
	OtherStmt      string `json:"s2,omitempty"`
	Loc            int    `json:"m"`
	LocName        string `json:"mn,omitempty"`
	Lock           int    `json:"l"`
	CandidateFirst bool   `json:"cf,omitempty"`
}

// Summary closes a recording with the run's outcome.
type Summary struct {
	Steps        int      `json:"steps"`
	Races        int      `json:"races,omitempty"`
	Deadlock     bool     `json:"deadlock,omitempty"`
	DeadlockStep int      `json:"deadlockStep,omitempty"`
	Aborted      bool     `json:"aborted,omitempty"`
	PolicyStalls int      `json:"stalls,omitempty"`
	Exceptions   []string `json:"exceptions,omitempty"`
}

// Record is one line of a recording: exactly one of the four fields is set.
// Events reuse internal/trace's wire encoding, so a flight recording is a
// strict superset of a plain event trace.
type Record struct {
	Dec *Decision
	Act *Action
	Ev  *trace.WireEvent
	End *Summary
}

// Step returns the scheduler step the record is anchored to (-1 for end
// records, which carry a total instead).
func (r Record) Step() int {
	switch {
	case r.Dec != nil:
		return r.Dec.Step
	case r.Act != nil:
		return r.Act.Step
	case r.Ev != nil:
		return r.Ev.Step
	}
	return -1
}

// Recording is a complete flight record: header plus records in causal
// order (decision → its grants' events, actions interleaved where the
// policy took them, one end summary).
type Recording struct {
	Header  Header
	Records []Record
	// Truncated reports that Load hit a partial final line — the footprint
	// of a crash mid-write — and skipped it. The records before it are
	// intact and usable; Save never sets this.
	Truncated bool
}

// Summary returns the recording's end summary (zero value when the
// recording was not finished).
func (rec *Recording) Summary() Summary {
	for i := len(rec.Records) - 1; i >= 0; i-- {
		if rec.Records[i].End != nil {
			return *rec.Records[i].End
		}
	}
	return Summary{}
}

// Events extracts the plain event stream, re-interning statement labels —
// the recording is usable anywhere a trace.Recorder's events are (offline
// detectors, trace.Explain).
func (rec *Recording) Events() []event.Event {
	var out []event.Event
	for _, r := range rec.Records {
		if r.Ev != nil {
			out = append(out, trace.FromWire(*r.Ev))
		}
	}
	return out
}

// Decisions extracts the decision records in order.
func (rec *Recording) Decisions() []Decision {
	var out []Decision
	for _, r := range rec.Records {
		if r.Dec != nil {
			out = append(out, *r.Dec)
		}
	}
	return out
}

// Actions extracts the policy action records in order.
func (rec *Recording) Actions() []Action {
	var out []Action
	for _, r := range rec.Records {
		if r.Act != nil {
			out = append(out, *r.Act)
		}
	}
	return out
}

// Recorder captures one execution. Attach it as sched.Config.Flight — it
// implements both sched.FlightObserver and sched.Observer, and the
// scheduler auto-subscribes it to the event stream — then call Finish with
// the run's Result and take the Recording. A Recorder is single-use.
type Recorder struct {
	h    Header
	recs []Record
}

// NewRecorder starts a recording described by h (h.V is stamped with the
// current format version).
func NewRecorder(h Header) *Recorder {
	h.V = trace.FormatVersion
	return &Recorder{h: h}
}

// OnEvent implements sched.Observer.
func (r *Recorder) OnEvent(e event.Event) {
	w := trace.ToWire(e)
	r.recs = append(r.recs, Record{Ev: &w})
}

// OnDecision implements sched.FlightObserver.
func (r *Recorder) OnDecision(d sched.DecisionRecord) {
	r.recs = append(r.recs, Record{Dec: &Decision{
		Round:   d.Round,
		Step:    d.Step,
		Enabled: threadsToInts(d.Enabled),
		Grants:  threadsToInts(d.Grants),
		Draws:   d.Draws,
		Forced:  d.Forced,
	}})
}

// OnAction implements sched.FlightObserver.
func (r *Recorder) OnAction(a sched.ActionRecord) {
	r.recs = append(r.recs, Record{Act: &Action{
		Kind:           a.Kind.String(),
		Step:           a.Step,
		Thread:         int(a.Thread),
		Others:         threadsToInts(a.Others),
		Stmt:           a.Stmt.Name(),
		OtherStmt:      a.OtherStmt.Name(),
		Loc:            int(a.Loc),
		LocName:        a.LocName,
		Lock:           int(a.Lock),
		CandidateFirst: a.CandidateFirst,
	}})
}

// Finish appends the end summary derived from the run's result.
func (r *Recorder) Finish(res *sched.Result) {
	end := Summary{
		Steps:        res.Steps,
		Aborted:      res.Aborted,
		PolicyStalls: res.PolicyStalls,
	}
	if res.Deadlock != nil {
		end.Deadlock = true
		end.DeadlockStep = res.Deadlock.Step
	}
	for _, ex := range res.Exceptions {
		end.Exceptions = append(end.Exceptions, ex.String())
	}
	for _, rec := range r.recs {
		if rec.Act != nil && (rec.Act.Kind == sched.ActRace.String() || rec.Act.Kind == sched.ActViolation.String()) {
			end.Races++
		}
	}
	r.recs = append(r.recs, Record{End: &end})
}

// Recording returns the captured recording.
func (r *Recorder) Recording() *Recording {
	return &Recording{Header: r.h, Records: r.recs}
}

func threadsToInts(ts []event.ThreadID) []int {
	if len(ts) == 0 {
		return nil
	}
	out := make([]int, len(ts))
	for i, t := range ts {
		out[i] = int(t)
	}
	return out
}

var _ sched.FlightObserver = (*Recorder)(nil)
var _ sched.Observer = (*Recorder)(nil)

// threadName renders a wire thread id.
func threadName(t int) string { return fmt.Sprintf("T%d", t) }
