// Package rng provides the deterministic pseudo-random number generator that
// is the single source of nondeterminism in an execution. RaceFuzzer's
// lightweight replay (§2.2 of the paper) depends on this: re-running with the
// same seed reproduces every scheduling decision, so no event recording is
// needed to replay a race-revealing execution.
//
// The generator is a SplitMix64 stream. It is implemented here rather than
// taken from math/rand so the sequence is fully specified by this repository
// and cannot drift across Go releases.
package rng

import "math/bits"

// Rand is a deterministic PRNG. The zero value is NOT usable; construct one
// with New.
type Rand struct {
	state uint64
	draws uint64
}

// New returns a generator seeded with seed. Distinct seeds give independent-
// looking streams; equal seeds give identical streams.
func New(seed int64) *Rand {
	r := &Rand{state: uint64(seed)}
	// Scramble once so nearby seeds (0,1,2,…) diverge immediately.
	r.Uint64()
	return r
}

// Reset reinitializes r to the exact state New(seed) constructs — same
// stream, same draw count — reusing the allocation. It exists for pooled
// schedulers (internal/sched) that run millions of trials without per-trial
// garbage.
func (r *Rand) Reset(seed int64) {
	r.state = uint64(seed)
	r.draws = 0
	r.Uint64()
}

// Uint64 returns the next 64 uniformly distributed bits (SplitMix64).
func (r *Rand) Uint64() uint64 {
	r.draws++
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bool returns a fair coin flip. This implements the paper's "if random
// boolean" race resolution (Algorithm 1, line 11).
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice; schedulers only call it with non-empty enabled sets.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Shuffle permutes xs in place.
func Shuffle[T any](r *Rand, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Split returns a new generator whose stream is a deterministic function of
// the parent's state but statistically independent of the parent's
// subsequent output. Used to give subsystems (e.g. workload generators)
// their own streams without coupling them to scheduling decisions.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() ^ 0xa5a5a5a5deadbeef}
}

// SplitInto is Split writing the child stream into dst (allocation-free).
// It consumes the same single parent draw as Split and leaves dst with a
// zero draw count, so the two are interchangeable for replay accounting.
func (r *Rand) SplitInto(dst *Rand) {
	dst.state = r.Uint64() ^ 0xa5a5a5a5deadbeef
	dst.draws = 0
}

// Draws returns the number of raw 64-bit draws consumed so far (including
// draws spent on rejection sampling inside Intn and on Split). Equal seeds
// driven through equal decision sequences show equal draw counts, which is
// what the flight recorder records to pinpoint replay divergence.
func (r *Rand) Draws() uint64 { return r.draws }
