package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestIntnRangeAndCoverage(t *testing.T) {
	r := New(7)
	seen := make(map[int]int)
	const n = 10
	for i := 0; i < 10000; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v := 0; v < n; v++ {
		if seen[v] < 700 || seen[v] > 1300 {
			t.Fatalf("value %d drawn %d times out of 10000 — badly skewed", v, seen[v])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestBoolIsRoughlyFair(t *testing.T) {
	r := New(11)
	heads := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			heads++
		}
	}
	if heads < 4700 || heads > 5300 {
		t.Fatalf("heads = %d / 10000", heads)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		size := int(n%50) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(3)
	xs := []int{1, 2, 2, 3, 5, 8}
	ys := append([]int(nil), xs...)
	Shuffle(r, ys)
	counts := map[int]int{}
	for _, x := range xs {
		counts[x]++
	}
	for _, y := range ys {
		counts[y]--
	}
	for _, c := range counts {
		if c != 0 {
			t.Fatalf("shuffle changed elements: %v -> %v", xs, ys)
		}
	}
}

func TestPickInBounds(t *testing.T) {
	r := New(9)
	xs := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[Pick(r, xs)]++
	}
	for _, s := range xs {
		if counts[s] < 700 {
			t.Fatalf("element %q drawn only %d times", s, counts[s])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(100)
	child := a.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream mirrors parent (%d/100 equal)", same)
	}
	// Splitting deterministically: same parent state → same child stream.
	p1, p2 := New(55), New(55)
	c1, c2 := p1.Split(), p2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("split is not deterministic")
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(77)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}
