package traceevent

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSliceConvertsNsToUs: slices are authored in ns and serialized in the
// trace format's µs with fractional precision preserved.
func TestSliceConvertsNsToUs(t *testing.T) {
	ev := Slice("work", "cat", 1, 2, 1_500, 2_500, nil)
	if ev.Ph != "X" || ev.Ts != 1.5 || ev.Dur != 2.5 {
		t.Fatalf("slice = %+v, want X slice at 1.5µs for 2.5µs", ev)
	}
	if ev.Pid != 1 || ev.Tid != 2 || ev.Name != "work" || ev.Cat != "cat" {
		t.Fatalf("slice identity = %+v", ev)
	}
}

// TestWriteShape: the emitted JSON is a Chrome trace-event file — traceEvents
// array, displayTimeUnit ms, metadata events without ts noise.
func TestWriteShape(t *testing.T) {
	events := []Event{
		Meta("process_name", 1, 0, map[string]any{"name": "test"}),
		Slice("op", "", 1, 0, 0, 1_000, nil),
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" || len(f.TraceEvents) != 2 {
		t.Fatalf("file = %+v", f)
	}
	if f.TraceEvents[0].Ph != "M" {
		t.Fatalf("metadata event ph = %q, want M", f.TraceEvents[0].Ph)
	}
	if strings.Contains(buf.String(), `"dur"`) && f.TraceEvents[0].Dur != 0 {
		t.Error("metadata event serialized a dur")
	}
}

// TestSaveFileCreatesParents: SaveFile makes missing parent directories.
func TestSaveFileCreatesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "trace.json")
	if err := SaveFile(path, []Event{Slice("op", "", 1, 0, 0, 1, nil)}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
}
