// Package traceevent holds the Chrome trace-event JSON primitives shared by
// every Perfetto exporter in the repo (schedprof's per-trial timelines,
// fleetspan's campaign flight recorder). The format is the JSON-object form
// of the Chrome trace-event spec, which Perfetto and chrome://tracing load
// directly: a traceEvents array of "X" complete slices and "M" metadata
// records, timestamps and durations in microseconds.
//
// The package is deliberately tiny and deterministic: callers build []Event
// in a stable order and Write emits them with a fixed encoder configuration,
// so exporters can pin their output byte-for-byte in golden tests.
package traceevent

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// Event is one Chrome trace-event object ("X" complete slices and "M"
// metadata). Timestamps and durations are microseconds, per the format.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// File is the JSON-object form of the Chrome trace-event format, the shape
// Perfetto and chrome://tracing load directly.
type File struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// UsPerNs converts nanosecond fields into the format's microsecond floats.
const UsPerNs = 1e-3

// Meta builds an "M" metadata record (process_name, thread_name,
// thread_sort_index, ...) for the given pid/tid.
func Meta(name string, pid, tid int, args map[string]any) Event {
	return Event{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args}
}

// Slice builds an "X" complete slice from nanosecond start/duration.
func Slice(name, cat string, pid, tid int, startNs, durNs int64, args map[string]any) Event {
	return Event{
		Name: name, Cat: cat, Ph: "X",
		Ts: float64(startNs) * UsPerNs, Dur: float64(durNs) * UsPerNs,
		Pid: pid, Tid: tid, Args: args,
	}
}

// Write emits the events as one trace file. The encoder configuration is
// fixed (single-space indent, "ms" display unit) so output is byte-stable
// for identical input.
func Write(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(File{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// SaveFile writes the events to path, creating parent directories (so an
// export directory that does not exist yet just works).
func SaveFile(path string, events []Event) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
