package analytics

import (
	"bytes"
	"fmt"
	"html/template"

	_ "embed"
)

//go:embed report.html
var reportTemplate string

// htmlView is the fully pre-rendered data the HTML template interpolates —
// charts arrive as ready-made SVG markup, numbers as ready-made strings, so
// the template stays purely structural and the bytes deterministic.
type htmlView struct {
	Title      string
	Sources    []string
	Provenance []string

	Totals      []kv
	DedupRate   string
	Wall        string
	SigCurve    template.HTML
	DedupChart  template.HTML
	Targets     []TargetStats
	TTFC        TTFCStats
	TTFCMedian  string
	Rounds      []roundView
	Frontier    FrontierStats
	Chao1       string
	Complete    string
	Audit       []auditView
	Checks      []checkView
	Witnesses   []KindCount
	HasAnalysis bool
}

type kv struct{ K, V string }

type roundView struct {
	RoundTrend
	Name, Rate string
}

type auditView struct {
	AuditRow
	Name, FlagText string
}

type checkView struct {
	ReconcileCheck
	MatchText string
}

// HTML renders the self-contained report page (inline CSS + inline SVG, no
// external assets).
func HTML(r *Report) ([]byte, error) {
	t, err := template.New("report").Parse(reportTemplate)
	if err != nil {
		return nil, fmt.Errorf("analytics: %w", err)
	}
	v := buildView(r)
	var buf bytes.Buffer
	if err := t.Execute(&buf, v); err != nil {
		return nil, fmt.Errorf("analytics: %w", err)
	}
	return buf.Bytes(), nil
}

func buildView(r *Report) htmlView {
	v := htmlView{Title: "Campaign report", HasAnalysis: len(r.Global.Points) > 0}
	if r.Sources.LogName != "" {
		s := "run log: " + r.Sources.LogName
		if r.Sources.LogTruncated {
			s += " (truncated final line skipped)"
		}
		v.Sources = append(v.Sources, s)
	}
	if r.Sources.CorpusName != "" {
		s := "corpus: " + r.Sources.CorpusName
		if r.Sources.CorpusTruncated {
			s += " (truncated final line skipped)"
		}
		v.Sources = append(v.Sources, s)
	}
	if r.Provenance != nil {
		v.Provenance = append(v.Provenance, "log: "+r.Provenance.String())
	}
	if r.CorpusProvenance != nil {
		v.Provenance = append(v.Provenance, "corpus: "+r.CorpusProvenance.String())
	}
	t := r.Totals
	v.Totals = []kv{
		{"Runs", fmt.Sprint(t.Runs)},
		{"Phase 1", fmt.Sprint(t.Phase1)},
		{"Phase 2", fmt.Sprint(t.Phase2)},
		{"Confirming", fmt.Sprint(t.Confirming)},
		{"New signatures", fmt.Sprint(t.NewSigs)},
		{"Known (dedup)", fmt.Sprint(t.KnownSigs)},
		{"New cells", fmt.Sprint(t.NewCells)},
		{"Exceptions", fmt.Sprint(t.Exceptions)},
		{"Deadlocks", fmt.Sprint(t.Deadlocks)},
		{"Aborted", fmt.Sprint(t.Aborted)},
	}
	v.DedupRate = pct(t.DedupRate())
	if t.Timed {
		v.Wall = fmt.Sprintf("%.3fs", float64(t.WallNs)/1e9)
	}
	v.SigCurve = template.HTML(discoveryChart(r.Global))
	v.DedupChart = template.HTML(dedupChart(r.Rounds))
	v.Targets = r.Targets
	v.TTFC = r.TTFC
	v.TTFCMedian = num(r.TTFC.Median())
	for _, rt := range r.Rounds {
		v.Rounds = append(v.Rounds, roundView{RoundTrend: rt, Name: roundName(rt.Round), Rate: pct(rt.DedupRate())})
	}
	v.Frontier = r.Frontier
	v.Chao1 = num(r.Frontier.Chao1)
	v.Complete = num(r.Frontier.Completeness())
	for _, a := range r.Audit {
		v.Audit = append(v.Audit, auditView{AuditRow: a, Name: roundName(a.Round), FlagText: dash(a.Flag)})
	}
	for _, c := range r.Checks {
		v.Checks = append(v.Checks, checkView{ReconcileCheck: c, MatchText: yesNo(c.Match())})
	}
	v.Witnesses = r.Witnesses
	return v
}
