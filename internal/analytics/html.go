package analytics

import (
	"bytes"
	"fmt"
	"html/template"

	_ "embed"
)

//go:embed report.html
var reportTemplate string

// htmlView is the fully pre-rendered data the HTML template interpolates —
// charts arrive as ready-made SVG markup, numbers as ready-made strings, so
// the template stays purely structural and the bytes deterministic.
type htmlView struct {
	Title      string
	Sources    []string
	Provenance []string

	Totals      []kv
	DedupRate   string
	Wall        string
	SigCurve    template.HTML
	DedupChart  template.HTML
	Targets     []TargetStats
	TTFC        TTFCStats
	TTFCMedian  string
	Rounds      []roundView
	Frontier    FrontierStats
	Chao1       string
	Complete    string
	Audit       []auditView
	Checks      []checkView
	Witnesses   []KindCount
	HasAnalysis bool

	Fleet        *FleetStats
	FleetLost    string
	FleetWorkers []fleetWorkerView
	FleetPhases  []fleetPhaseView
}

type fleetWorkerView struct {
	Worker             string
	Ingested, Dropped  int
	LeaseP50, LeaseP95 string
	ExecP50, ExecP95   string
}

type fleetPhaseView struct {
	Phase       string
	Count       int
	Mean, Total string
	BarPct      string
}

type kv struct{ K, V string }

type roundView struct {
	RoundTrend
	Name, Rate string
}

type auditView struct {
	AuditRow
	Name, FlagText string
}

type checkView struct {
	ReconcileCheck
	MatchText string
}

// HTML renders the self-contained report page (inline CSS + inline SVG, no
// external assets).
func HTML(r *Report) ([]byte, error) {
	t, err := template.New("report").Parse(reportTemplate)
	if err != nil {
		return nil, fmt.Errorf("analytics: %w", err)
	}
	v := buildView(r)
	var buf bytes.Buffer
	if err := t.Execute(&buf, v); err != nil {
		return nil, fmt.Errorf("analytics: %w", err)
	}
	return buf.Bytes(), nil
}

func buildView(r *Report) htmlView {
	v := htmlView{Title: "Campaign report", HasAnalysis: len(r.Global.Points) > 0}
	if r.Sources.LogName != "" {
		s := "run log: " + r.Sources.LogName
		if r.Sources.LogTruncated {
			s += " (truncated final line skipped)"
		}
		v.Sources = append(v.Sources, s)
	}
	if r.Sources.CorpusName != "" {
		s := "corpus: " + r.Sources.CorpusName
		if r.Sources.CorpusTruncated {
			s += " (truncated final line skipped)"
		}
		v.Sources = append(v.Sources, s)
	}
	if r.Sources.SpansName != "" {
		v.Sources = append(v.Sources, "fleet span trail: "+r.Sources.SpansName)
	}
	if r.Provenance != nil {
		v.Provenance = append(v.Provenance, "log: "+r.Provenance.String())
	}
	if r.CorpusProvenance != nil {
		v.Provenance = append(v.Provenance, "corpus: "+r.CorpusProvenance.String())
	}
	t := r.Totals
	v.Totals = []kv{
		{"Runs", fmt.Sprint(t.Runs)},
		{"Phase 1", fmt.Sprint(t.Phase1)},
		{"Phase 2", fmt.Sprint(t.Phase2)},
		{"Confirming", fmt.Sprint(t.Confirming)},
		{"New signatures", fmt.Sprint(t.NewSigs)},
		{"Known (dedup)", fmt.Sprint(t.KnownSigs)},
		{"New cells", fmt.Sprint(t.NewCells)},
		{"Exceptions", fmt.Sprint(t.Exceptions)},
		{"Deadlocks", fmt.Sprint(t.Deadlocks)},
		{"Aborted", fmt.Sprint(t.Aborted)},
	}
	v.DedupRate = pct(t.DedupRate())
	if t.Timed {
		v.Wall = fmt.Sprintf("%.3fs", float64(t.WallNs)/1e9)
	}
	v.SigCurve = template.HTML(discoveryChart(r.Global))
	v.DedupChart = template.HTML(dedupChart(r.Rounds))
	v.Targets = r.Targets
	v.TTFC = r.TTFC
	v.TTFCMedian = num(r.TTFC.Median())
	for _, rt := range r.Rounds {
		v.Rounds = append(v.Rounds, roundView{RoundTrend: rt, Name: roundName(rt.Round), Rate: pct(rt.DedupRate())})
	}
	v.Frontier = r.Frontier
	v.Chao1 = num(r.Frontier.Chao1)
	v.Complete = num(r.Frontier.Completeness())
	for _, a := range r.Audit {
		v.Audit = append(v.Audit, auditView{AuditRow: a, Name: roundName(a.Round), FlagText: dash(a.Flag)})
	}
	for _, c := range r.Checks {
		v.Checks = append(v.Checks, checkView{ReconcileCheck: c, MatchText: yesNo(c.Match())})
	}
	v.Witnesses = r.Witnesses
	if f := r.Fleet; f != nil {
		v.Fleet = f
		v.FleetLost = durNs(f.TimeLostToRequeuesNs)
		for _, w := range f.Workers {
			v.FleetWorkers = append(v.FleetWorkers, fleetWorkerView{
				Worker: w.Worker, Ingested: w.Ingested, Dropped: w.Dropped,
				LeaseP50: durNs(w.LeaseLatP50Ns), LeaseP95: durNs(w.LeaseLatP95Ns),
				ExecP50: durNs(w.ExecP50Ns), ExecP95: durNs(w.ExecP95Ns),
			})
		}
		var maxTotal int64
		for _, p := range f.Waterfall {
			if p.TotalNs > maxTotal {
				maxTotal = p.TotalNs
			}
		}
		for _, p := range f.Waterfall {
			pct := 0.0
			if maxTotal > 0 {
				pct = 100 * float64(p.TotalNs) / float64(maxTotal)
			}
			v.FleetPhases = append(v.FleetPhases, fleetPhaseView{
				Phase: p.Phase, Count: p.Count,
				Mean: durNs(p.MeanNs), Total: durNs(p.TotalNs),
				BarPct: num(pct),
			})
		}
	}
	return v
}
