package analytics

import (
	"sort"

	"racefuzzer/internal/fleetspan"
)

// FleetStats is the fleet section of the report, computed from the campaign's
// fleetspan trail (fleetspans.jsonl). Nil when the campaign ran untraced or
// single-process.
type FleetStats struct {
	// Attempts counts every trail record; Ingested, Requeued and Dropped
	// split them by outcome.
	Attempts int
	Ingested int
	Requeued int
	Dropped  int
	// Stitched counts ingested attempts whose worker sub-spans were
	// clock-stitched; Clamped counts those where skew forced a clamp.
	Stitched int
	Clamped  int
	// TimeLostToRequeuesNs is coordinator-clock time spent on leases that
	// expired and had to be re-executed.
	TimeLostToRequeuesNs int64
	// Workers is the per-worker breakdown, sorted by worker name.
	Workers []FleetWorkerStats
	// Waterfall is the span-phase breakdown of the mean ingested attempt,
	// in causal order.
	Waterfall []PhaseStat
}

// FleetWorkerStats is one worker's slice of the fleet campaign.
type FleetWorkerStats struct {
	Worker   string
	Ingested int
	Dropped  int
	// LeaseLatP50Ns/P95Ns summarize leased→lease-received latency (stitched;
	// 0 when no attempt stitched).
	LeaseLatP50Ns int64
	LeaseLatP95Ns int64
	// ExecP50Ns/P95Ns summarize the trial-execution span.
	ExecP50Ns int64
	ExecP95Ns int64
}

// PhaseStat is one phase of the unit-lifecycle waterfall: total and mean
// time spent in that phase across ingested attempts that recorded it.
type PhaseStat struct {
	Phase   string
	Count   int
	TotalNs int64
	MeanNs  int64
}

// fleetStats folds the span trail into the report section. Only ingested
// attempts feed latency distributions — a requeued attempt has no meaningful
// end-to-end story, but its lost time is tallied separately.
func fleetStats(trails []fleetspan.UnitTrail) *FleetStats {
	if len(trails) == 0 {
		return nil
	}
	f := &FleetStats{Attempts: len(trails)}
	type wacc struct {
		ingested, dropped int
		leaseLat, exec    []int64
	}
	workers := map[string]*wacc{}
	phases := map[string]*PhaseStat{}
	phase := func(name string, from, to int64) {
		if from == 0 || to == 0 || to < from {
			return
		}
		p := phases[name]
		if p == nil {
			p = &PhaseStat{Phase: name}
			phases[name] = p
		}
		p.Count++
		p.TotalNs += to - from
	}
	for _, tr := range trails {
		w := workers[tr.Worker]
		if w == nil && tr.Worker != "" {
			w = &wacc{}
			workers[tr.Worker] = w
		}
		switch tr.Outcome {
		case fleetspan.OutcomeRequeued:
			f.Requeued++
			f.TimeLostToRequeuesNs += tr.EndNs - tr.LeasedNs
			continue
		case fleetspan.OutcomeDropped:
			f.Dropped++
			if w != nil {
				w.dropped++
			}
			continue
		}
		f.Ingested++
		if w != nil {
			w.ingested++
		}
		if tr.Stitched() {
			f.Stitched++
			if tr.Clamped {
				f.Clamped++
			}
			if w != nil {
				if lat := tr.LeaseRecvNs - tr.LeasedNs; lat >= 0 && tr.LeaseRecvNs != 0 {
					w.leaseLat = append(w.leaseLat, lat)
				}
				w.exec = append(w.exec, tr.ExecNs())
			}
		} else if w != nil {
			w.exec = append(w.exec, tr.ExecNs())
		}
		phase("queue wait", tr.QueuedNs, tr.LeasedNs)
		phase("lease delivery", tr.LeasedNs, tr.LeaseRecvNs)
		phase("exec setup", tr.LeaseRecvNs, tr.ExecStartNs)
		phase("trial execution", tr.ExecStartNs, tr.ExecEndNs)
		phase("result packaging", tr.ExecEndNs, tr.PostedNs)
		phase("result upload", tr.PostedNs, tr.ResultNs)
		phase("merge + barrier", tr.ResultNs, tr.IngestedNs)
	}
	names := make([]string, 0, len(workers))
	for name := range workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := workers[name]
		f.Workers = append(f.Workers, FleetWorkerStats{
			Worker:        name,
			Ingested:      w.ingested,
			Dropped:       w.dropped,
			LeaseLatP50Ns: rankNs(w.leaseLat, 0.50),
			LeaseLatP95Ns: rankNs(w.leaseLat, 0.95),
			ExecP50Ns:     rankNs(w.exec, 0.50),
			ExecP95Ns:     rankNs(w.exec, 0.95),
		})
	}
	for _, name := range []string{
		"queue wait", "lease delivery", "exec setup", "trial execution",
		"result packaging", "result upload", "merge + barrier",
	} {
		p := phases[name]
		if p == nil || p.Count == 0 {
			continue
		}
		p.MeanNs = p.TotalNs / int64(p.Count)
		f.Waterfall = append(f.Waterfall, *p)
	}
	return f
}

// rankNs is the nearest-rank quantile of an unsorted ns sample (0 if empty).
func rankNs(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s)+1)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
