package analytics

import (
	"fmt"
	"strings"
)

// Inline-SVG chart rendering for the self-contained HTML report. Everything
// is formatted with fixed precision so chart bytes are deterministic.

// svgSeries is one polyline on a line chart.
type svgSeries struct {
	Name   string
	Color  string
	Points []CurvePoint
	// Cells selects the Cells ordinate instead of Sigs.
	Cells bool
}

const (
	chartW, chartH             = 640, 240
	padLeft, padRight          = 44, 12
	padTop, padBottom          = 14, 30
	plotW                      = chartW - padLeft - padRight
	plotH                      = chartH - padTop - padBottom
	axisColor, gridColor       = "#8a93a6", "#e3e7ee"
	sigColor, cellColor        = "#2563eb", "#d97706"
	barColorNew, barColorKnown = "#16a34a", "#94a3b8"
)

// svgNum renders a chart coordinate with one decimal, trailing-zero
// trimmed — compact and byte-stable.
func svgNum(f float64) string {
	s := fmt.Sprintf("%.1f", f)
	return strings.TrimSuffix(s, ".0")
}

// discoveryChart renders the cumulative discovery curve (signatures and
// cells vs trials) as an inline SVG. An empty curve renders a placeholder.
func discoveryChart(c DiscoveryCurve) string {
	if len(c.Points) == 0 {
		return `<p class="empty">No phase-2 trials in the log.</p>`
	}
	final := c.Final()
	maxX := final.Trials
	maxY := final.Sigs
	if final.Cells > maxY {
		maxY = final.Cells
	}
	if maxX == 0 {
		maxX = 1
	}
	if maxY == 0 {
		maxY = 1
	}
	series := []svgSeries{
		{Name: "new signatures", Color: sigColor, Points: c.Points},
		{Name: "new cells", Color: cellColor, Points: c.Points, Cells: true},
	}
	var b strings.Builder
	openChart(&b, maxX, maxY, "trials", "cumulative")
	for _, s := range series {
		b.WriteString(`<polyline fill="none" stroke="` + s.Color + `" stroke-width="2" points="`)
		// Step curve from the origin: discovery is cumulative, so the line
		// holds level between points.
		prevY := plotY(0, maxY)
		b.WriteString(svgNum(plotX(0, maxX)) + "," + svgNum(prevY))
		for _, p := range s.Points {
			y := p.Sigs
			if s.Cells {
				y = p.Cells
			}
			px, py := plotX(p.Trials, maxX), plotY(y, maxY)
			b.WriteString(" " + svgNum(px) + "," + svgNum(prevY))
			b.WriteString(" " + svgNum(px) + "," + svgNum(py))
			prevY = py
		}
		b.WriteString(`"/>`)
	}
	legend(&b, []svgSeries{series[0], series[1]})
	b.WriteString(`</svg>`)
	return b.String()
}

// dedupChart renders the per-round new/known stacked bars.
func dedupChart(rounds []RoundTrend) string {
	if len(rounds) == 0 {
		return `<p class="empty">No phase-2 trials in the log.</p>`
	}
	maxY := 1
	for _, r := range rounds {
		if n := r.NewSigs + r.Known; n > maxY {
			maxY = n
		}
	}
	var b strings.Builder
	openChart(&b, len(rounds), maxY, "round", "confirmed sightings")
	bw := float64(plotW) / float64(len(rounds)) * 0.6
	for i, r := range rounds {
		cx := plotX(i, len(rounds)) + float64(plotW)/float64(len(rounds))/2
		x := cx - bw/2
		yNew := plotY(r.NewSigs, maxY)
		hNew := float64(padTop+plotH) - yNew
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"/>`,
			svgNum(x), svgNum(yNew), svgNum(bw), svgNum(hNew), barColorNew)
		yTop := plotY(r.NewSigs+r.Known, maxY)
		hKnown := yNew - yTop
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"/>`,
			svgNum(x), svgNum(yTop), svgNum(bw), svgNum(hKnown), barColorKnown)
		fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle" class="tick">%s</text>`,
			svgNum(cx), chartH-10, roundName(r.Round))
	}
	legend(&b, []svgSeries{{Name: "new", Color: barColorNew}, {Name: "known (dedup)", Color: barColorKnown}})
	b.WriteString(`</svg>`)
	return b.String()
}

// openChart emits the SVG opening, frame, gridlines and axis labels.
func openChart(b *strings.Builder, maxX, maxY int, xLabel, yLabel string) {
	fmt.Fprintf(b, `<svg viewBox="0 0 %d %d" class="chart" role="img">`, chartW, chartH)
	// Horizontal gridlines at quarter intervals with y-axis tick labels.
	for i := 0; i <= 4; i++ {
		v := maxY * i / 4
		y := plotY(v, maxY)
		fmt.Fprintf(b, `<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="%s"/>`,
			padLeft, svgNum(y), chartW-padRight, svgNum(y), gridColor)
		fmt.Fprintf(b, `<text x="%d" y="%s" text-anchor="end" class="tick">%d</text>`,
			padLeft-6, svgNum(y+4), v)
	}
	// Frame + axis labels.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"/>`,
		padLeft, padTop+plotH, chartW-padRight, padTop+plotH, axisColor)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"/>`,
		padLeft, padTop, padLeft, padTop+plotH, axisColor)
	fmt.Fprintf(b, `<text x="%d" y="%d" text-anchor="middle" class="axis">%s (max %d)</text>`,
		padLeft+plotW/2, chartH-4, xLabel, maxX)
	fmt.Fprintf(b, `<text x="12" y="%d" class="axis" transform="rotate(-90 12 %d)" text-anchor="middle">%s</text>`,
		padTop+plotH/2, padTop+plotH/2, yLabel)
}

// legend draws color swatches at the chart's top edge.
func legend(b *strings.Builder, series []svgSeries) {
	x := padLeft + 8
	for _, s := range series {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, x, padTop, s.Color)
		fmt.Fprintf(b, `<text x="%d" y="%d" class="tick">%s</text>`, x+14, padTop+9, s.Name)
		x += 14 + 7*len(s.Name) + 18
	}
}

// plotX/plotY map data coordinates into the plot rectangle.
func plotX(v, max int) float64 {
	return float64(padLeft) + float64(v)/float64(max)*float64(plotW)
}

func plotY(v, max int) float64 {
	return float64(padTop+plotH) - float64(v)/float64(max)*float64(plotH)
}
