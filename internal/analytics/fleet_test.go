package analytics

import (
	"strings"
	"testing"

	"racefuzzer/internal/fleetspan"
)

// fleetTrailFixture builds a small but complete span trail: two workers, one
// requeue, one drop, stitched sub-spans on every ingested attempt.
func fleetTrailFixture() []fleetspan.UnitTrail {
	const ms = int64(1e6)
	ingested := func(round, ti int, worker string, leased, execNs int64) fleetspan.UnitTrail {
		return fleetspan.UnitTrail{
			Schema: fleetspan.SchemaVersion, SpanID: "t/r1/u0",
			UnitID: "r1-t0", Attempt: 1, Round: round, TargetIndex: ti,
			Target: "figure1", Worker: worker, Epoch: 1,
			Outcome:  fleetspan.OutcomeIngested,
			QueuedNs: leased - 2*ms, LeasedNs: leased,
			LeaseRecvNs: leased + ms, ExecStartNs: leased + 2*ms,
			ExecEndNs: leased + 2*ms + execNs, PostedNs: leased + 3*ms + execNs,
			ResultNs: leased + 4*ms + execNs, IngestedNs: leased + 5*ms + execNs,
			EndNs: leased + 5*ms + execNs,
		}
	}
	return []fleetspan.UnitTrail{
		ingested(1, 0, "w1", 10*ms, 50*ms),
		ingested(1, 1, "w2", 10*ms, 70*ms),
		{
			Schema: fleetspan.SchemaVersion, SpanID: "t/r2/u0",
			UnitID: "r2-t0", Attempt: 1, Round: 2, TargetIndex: 0,
			Target: "figure1", Worker: "w1", Epoch: 3,
			Outcome:  fleetspan.OutcomeRequeued,
			QueuedNs: 200 * ms, LeasedNs: 210 * ms, EndNs: 300 * ms,
		},
		{
			Schema: fleetspan.SchemaVersion, SpanID: "t/r2/u0",
			UnitID: "r2-t0", Attempt: 2, Round: 2, TargetIndex: 0,
			Target: "figure1", Worker: "w1", Epoch: 3,
			Outcome: fleetspan.OutcomeDropped, DropReason: "stale lease epoch",
			EndNs: 310 * ms,
		},
	}
}

// TestFleetSectionFromTrail: a campaign directory carrying fleetspans.jsonl
// gains a fleet section in every output format; one without stays fleet-free.
func TestFleetSectionFromTrail(t *testing.T) {
	dir := t.TempDir()
	writeCampaign(t, dir, 7)
	trailPath := dir + "/corpus/" + fleetspan.TrailFile
	if err := fleetspan.WriteTrails(trailPath, fleetTrailFixture()); err != nil {
		t.Fatal(err)
	}

	c, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.SpansName != fleetspan.TrailFile || len(c.Trails) != 4 {
		t.Fatalf("trail not ingested: name=%q trails=%d", c.SpansName, len(c.Trails))
	}
	r := Analyze(c)
	f := r.Fleet
	if f == nil {
		t.Fatal("Analyze produced no fleet section")
	}
	if f.Attempts != 4 || f.Ingested != 2 || f.Requeued != 1 || f.Dropped != 1 {
		t.Fatalf("outcome split = %+v", f)
	}
	if f.Stitched != 2 {
		t.Fatalf("stitched = %d, want 2", f.Stitched)
	}
	if f.TimeLostToRequeuesNs != 90e6 {
		t.Fatalf("time lost to requeues = %d ns, want 90ms", f.TimeLostToRequeuesNs)
	}
	if len(f.Workers) != 2 || f.Workers[0].Worker != "w1" || f.Workers[1].Worker != "w2" {
		t.Fatalf("workers = %+v", f.Workers)
	}
	if f.Workers[0].Ingested != 1 || f.Workers[0].Dropped != 1 {
		t.Fatalf("w1 stats = %+v", f.Workers[0])
	}
	if f.Workers[0].ExecP50Ns != 50e6 || f.Workers[1].ExecP50Ns != 70e6 {
		t.Fatalf("exec p50s = %d / %d", f.Workers[0].ExecP50Ns, f.Workers[1].ExecP50Ns)
	}
	if f.Workers[0].LeaseLatP50Ns != 1e6 {
		t.Fatalf("w1 lease p50 = %d, want 1ms", f.Workers[0].LeaseLatP50Ns)
	}
	// The waterfall covers the full causal chain, exec dominating.
	var exec *PhaseStat
	for i := range f.Waterfall {
		if f.Waterfall[i].Phase == "trial execution" {
			exec = &f.Waterfall[i]
		}
	}
	if len(f.Waterfall) != 7 || exec == nil {
		t.Fatalf("waterfall = %+v", f.Waterfall)
	}
	if exec.Count != 2 || exec.MeanNs != 60e6 {
		t.Fatalf("exec phase = %+v", exec)
	}

	md := Markdown(r)
	for _, want := range []string{"## Fleet tracing", "Span-phase waterfall", "| w1 |", "| w2 |", "90ms"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown lacks %q", want)
		}
	}
	csv := CSV(r)
	for _, want := range []string{"# fleet\n", "# fleet_workers\n", "# fleet_waterfall\n", "trial execution,2,60000000,120000000"} {
		if !strings.Contains(csv, want) {
			t.Errorf("csv lacks %q", want)
		}
	}
	html, err := HTML(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fleet tracing", "Span-phase waterfall", "fleetspans.jsonl"} {
		if !strings.Contains(string(html), want) {
			t.Errorf("html lacks %q", want)
		}
	}

	// Untraced campaigns are untouched.
	plain := t.TempDir()
	writeCampaign(t, plain, 7)
	c2, err := LoadDir(plain)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := Analyze(c2); r2.Fleet != nil {
		t.Fatal("untraced campaign grew a fleet section")
	}
	if strings.Contains(Markdown(Analyze(c2)), "Fleet tracing") {
		t.Error("untraced markdown mentions fleet tracing")
	}
}
