package analytics

import (
	"fmt"
	"strings"
)

// DiffReport compares two analyzed campaigns metric by metric — "did the
// new allocator actually discover more per trial than the old one?".
type DiffReport struct {
	NameA, NameB string
	Metrics      []MetricDelta
	// Targets lists per-target new-signature deltas for targets present in
	// either campaign, name-sorted.
	Targets []TargetDelta
}

// MetricDelta is one compared metric.
type MetricDelta struct {
	Name string
	A, B float64
	// Integer marks counts (rendered without decimals).
	Integer bool
}

// Delta is B−A.
func (m MetricDelta) Delta() float64 { return m.B - m.A }

// TargetDelta compares one target's discovery across the two campaigns.
type TargetDelta struct {
	Target           string
	SigsA, SigsB     int
	CellsA, CellsB   int
	TrialsA, TrialsB int
}

// Diff compares two reports. nameA/nameB label the columns (usually the
// artifact paths the caller loaded).
func Diff(a, b *Report, nameA, nameB string) *DiffReport {
	d := &DiffReport{NameA: nameA, NameB: nameB}
	ta, tb := a.Totals, b.Totals
	ints := []struct {
		name string
		a, b int
	}{
		{"runs", ta.Runs, tb.Runs},
		{"phase-2 trials", ta.Phase2, tb.Phase2},
		{"confirming runs", ta.Confirming, tb.Confirming},
		{"new signatures", ta.NewSigs, tb.NewSigs},
		{"known (dedup)", ta.KnownSigs, tb.KnownSigs},
		{"new cells", ta.NewCells, tb.NewCells},
		{"exceptions", ta.Exceptions, tb.Exceptions},
		{"coverage cells", a.Frontier.Cells, b.Frontier.Cells},
		{"signatures observed", a.Frontier.Observed, b.Frontier.Observed},
		{"ttfc targets confirmed", len(a.TTFC.Samples), len(b.TTFC.Samples)},
		{"ttfc unconfirmed", a.TTFC.Unconfirmed, b.TTFC.Unconfirmed},
	}
	for _, m := range ints {
		d.Metrics = append(d.Metrics, MetricDelta{Name: m.name, A: float64(m.a), B: float64(m.b), Integer: true})
	}
	d.Metrics = append(d.Metrics,
		MetricDelta{Name: "dedup rate", A: ta.DedupRate(), B: tb.DedupRate()},
		MetricDelta{Name: "ttfc median", A: a.TTFC.Median(), B: b.TTFC.Median()},
		MetricDelta{Name: "chao1 est. richness", A: a.Frontier.Chao1, B: b.Frontier.Chao1},
		MetricDelta{Name: "completeness %", A: a.Frontier.Completeness(), B: b.Frontier.Completeness()},
		MetricDelta{Name: "sigs per 100 trials", A: per100(ta.NewSigs, ta.Phase2), B: per100(tb.NewSigs, tb.Phase2)},
	)
	d.Targets = diffTargets(a.Targets, b.Targets)
	return d
}

func per100(n, trials int) float64 {
	if trials == 0 {
		return 0
	}
	return 100 * float64(n) / float64(trials)
}

func diffTargets(as, bs []TargetStats) []TargetDelta {
	byName := map[string]*TargetDelta{}
	var order []string
	get := func(name string) *TargetDelta {
		td := byName[name]
		if td == nil {
			td = &TargetDelta{Target: name}
			byName[name] = td
			order = append(order, name)
		}
		return td
	}
	for _, t := range as {
		td := get(t.Label)
		td.SigsA, td.CellsA, td.TrialsA = t.NewSigs, t.NewCells, t.Phase2
	}
	for _, t := range bs {
		td := get(t.Label)
		td.SigsB, td.CellsB, td.TrialsB = t.NewSigs, t.NewCells, t.Phase2
	}
	// Union order follows campaign A's target order, then B's extras — both
	// deterministic — so the table is stable without a sort that would
	// scramble the campaign's own ordering.
	out := make([]TargetDelta, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}

// DiffMarkdown renders the comparison as markdown tables.
func DiffMarkdown(d *DiffReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Campaign diff\n\nA = `%s`\nB = `%s`\n\n", d.NameA, d.NameB)
	b.WriteString("| Metric | A | B | Δ (B−A) |\n|---|---:|---:|---:|\n")
	for _, m := range d.Metrics {
		if m.Integer {
			fmt.Fprintf(&b, "| %s | %d | %d | %+d |\n", m.Name, int64(m.A), int64(m.B), int64(m.Delta()))
		} else {
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", m.Name, num(m.A), num(m.B), signedNum(m.Delta()))
		}
	}
	b.WriteString("\n")
	if len(d.Targets) > 0 {
		b.WriteString("## Per-target\n\n| Target | Trials A | Trials B | Sigs A | Sigs B | Δ sigs | Cells A | Cells B | Δ cells |\n|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, t := range d.Targets {
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %+d | %d | %d | %+d |\n",
				t.Target, t.TrialsA, t.TrialsB, t.SigsA, t.SigsB, t.SigsB-t.SigsA,
				t.CellsA, t.CellsB, t.CellsB-t.CellsA)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// signedNum renders a delta with an explicit sign.
func signedNum(f float64) string {
	s := num(f)
	if f > 0 && !strings.HasPrefix(s, "+") {
		return "+" + s
	}
	return s
}
