// Package analytics is the offline campaign analytics engine: it ingests a
// campaign's artifacts — the JSONL run log written by obs.JSONLSink, the
// persistent corpus directory written by corpus.Store, and optionally the
// flight-recording witnesses archived inside it — into one unified campaign
// model, and computes the questions a long-running campaign owner asks:
//
//   - discovery curves: cumulative new signatures and new coverage cells
//     against trials spent, globally and per target;
//   - trials-to-first-confirm distributions across targets;
//   - dedup-rate trends per adaptive-allocation round;
//   - a coverage-frontier summary with a Chao1-style species-richness
//     estimate of the signatures still undiscovered;
//   - a bandit audit: per round, the budget each target was allocated
//     against the discovery yield it returned, flagging starved-but-yielding
//     and fed-but-dry targets;
//   - a reconciliation table cross-checking the log's totals against the
//     corpus manifest, so a disagreement between the two artifact trails is
//     surfaced instead of silently absorbed.
//
// The whole analysis is deterministic: byte-identical inputs produce a
// byte-identical HTML/markdown/CSV report (no timestamps, no map-order
// dependence, paths reduced to basenames), which is what lets CI golden-test
// report bytes across repeat runs.
package analytics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"racefuzzer/internal/corpus"
	"racefuzzer/internal/fleetspan"
	"racefuzzer/internal/flightrec"
	"racefuzzer/internal/obs"
)

// Campaign is the unified model of one campaign's artifacts.
type Campaign struct {
	// LogName and CorpusName are display basenames of the ingested artifacts
	// ("" when the source was not provided). Basenames, not full paths: two
	// loads of byte-identical artifacts from different directories must
	// analyze to byte-identical reports.
	LogName    string
	CorpusName string

	// Provenance is the run log's header record (nil for logs written before
	// the header existed); CorpusProvenance is MANIFEST.json's.
	Provenance       *obs.Provenance
	CorpusProvenance *obs.Provenance

	// Records is the run log in Seq order.
	Records []obs.RunRecord
	// LogTruncated reports a partial trailing log line that was skipped.
	LogTruncated bool

	// Findings and Cells are the corpus working set; ManifestFindings and
	// ManifestCoverage are the counts MANIFEST.json claims (the
	// reconciliation table cross-checks both against the log).
	Findings         []corpus.Finding
	Cells            []corpus.CoverageCell
	ManifestFindings int
	ManifestCoverage int
	CorpusTruncated  bool

	// Witnesses summarizes the flight recordings archived under the corpus
	// witnesses directory, keyed by pipeline kind.
	Witnesses []KindCount

	// Trails is the fleet span trail (fleetspans.jsonl) when the campaign ran
	// as a traced fleet; SpansName is its display basename.
	Trails    []fleetspan.UnitTrail
	SpansName string
}

// KindCount is a (name, count) pair used for per-kind breakdowns.
type KindCount struct {
	Name  string
	Count int
}

// Source names a campaign's artifacts for Load.
type Source struct {
	// Log is the JSONL run log path ("" = no log).
	Log string
	// CorpusDir is the corpus directory ("" = no corpus).
	CorpusDir string
	// Spans is the fleet span trail path ("" = untraced / single-process).
	Spans string
}

// Load ingests the named artifacts. At least one of Log and CorpusDir must
// be set.
func Load(src Source) (*Campaign, error) {
	if src.Log == "" && src.CorpusDir == "" {
		return nil, fmt.Errorf("analytics: no artifacts to load (need a run log or a corpus directory)")
	}
	c := &Campaign{}
	if src.Log != "" {
		recs, prov, trunc, err := LoadLog(src.Log)
		if err != nil {
			return nil, err
		}
		c.LogName = filepath.Base(src.Log)
		c.Records, c.Provenance, c.LogTruncated = recs, prov, trunc
	}
	if src.CorpusDir != "" {
		if err := c.loadCorpus(src.CorpusDir); err != nil {
			return nil, err
		}
	}
	if src.Spans != "" {
		trails, err := fleetspan.LoadTrails(src.Spans)
		if err != nil {
			return nil, fmt.Errorf("analytics: %w", err)
		}
		c.Trails = trails
		c.SpansName = filepath.Base(src.Spans)
	}
	return c, nil
}

// LoadDir ingests a campaign directory: the run log is <dir>/run.jsonl or,
// failing that, the lexically first *.jsonl file in dir; the corpus is dir
// itself when it holds a MANIFEST.json, else <dir>/corpus if that does.
// Either artifact may be absent, but not both.
func LoadDir(dir string) (*Campaign, error) {
	src := Source{}
	if _, err := os.Stat(filepath.Join(dir, "run.jsonl")); err == nil {
		src.Log = filepath.Join(dir, "run.jsonl")
	} else if names, _ := filepath.Glob(filepath.Join(dir, "*.jsonl")); len(names) > 0 {
		sort.Strings(names)
		src.Log = names[0]
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err == nil {
		src.CorpusDir = dir
	} else if _, err := os.Stat(filepath.Join(dir, "corpus", "MANIFEST.json")); err == nil {
		src.CorpusDir = filepath.Join(dir, "corpus")
	}
	// The fleet span trail sits next to the corpus artifacts.
	for _, d := range []string{dir, filepath.Join(dir, "corpus")} {
		if _, err := os.Stat(filepath.Join(d, fleetspan.TrailFile)); err == nil {
			src.Spans = filepath.Join(d, fleetspan.TrailFile)
			break
		}
	}
	if src.Log == "" && src.CorpusDir == "" {
		return nil, fmt.Errorf("analytics: %s: no run log (*.jsonl) or corpus (MANIFEST.json) found", dir)
	}
	return Load(src)
}

// LoadLog reads a JSONL run log: an optional provenance header on line one,
// then one RunRecord per line, returned in Seq order. A partial trailing
// line — the footprint of a crash mid-write — is skipped and flagged, the
// same tolerance corpus loading applies.
func LoadLog(path string) ([]obs.RunRecord, *obs.Provenance, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, fmt.Errorf("analytics: %w", err)
	}
	defer f.Close()
	var (
		recs  []obs.RunRecord
		prov  *obs.Provenance
		first = true
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	var pendingErr error
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, nil, false, pendingErr
		}
		if first {
			first = false
			if p, ok := obs.ParseProvenanceLine(line); ok {
				prov = p
				continue
			}
		}
		var rec obs.RunRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("analytics: %s: line %d: %w", filepath.Base(path), lineno, err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, false, fmt.Errorf("analytics: %s: %w", filepath.Base(path), err)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs, prov, pendingErr != nil, nil
}

// loadCorpus folds a corpus directory into the model.
func (c *Campaign) loadCorpus(dir string) error {
	st, err := corpus.Open(dir)
	if err != nil {
		return fmt.Errorf("analytics: %w", err)
	}
	c.CorpusName = filepath.Base(dir)
	c.Findings = st.Findings()
	c.Cells = st.Coverage()
	c.CorpusProvenance = st.Provenance()
	c.CorpusTruncated = st.Truncated()
	// The manifest's own counts, read directly: Open would have failed on a
	// malformed manifest, so a decode error here only means the directory is
	// corpus-less (fresh) and the counts stay zero.
	var m struct {
		Findings int `json:"findings"`
		Coverage int `json:"coverage"`
	}
	if b, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json")); err == nil {
		if json.Unmarshal(b, &m) == nil {
			c.ManifestFindings, c.ManifestCoverage = m.Findings, m.Coverage
		}
	}
	c.Witnesses = scanWitnesses(filepath.Join(dir, corpus.WitnessSubdir))
	return nil
}

// scanWitnesses summarizes the flight recordings under dir by pipeline kind
// (sorted by kind name for determinism). Unreadable recordings are skipped:
// witness metadata is auxiliary, never load-bearing.
func scanWitnesses(dir string) []KindCount {
	names, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	byKind := map[string]int{}
	for _, n := range names {
		rec, err := flightrec.LoadFile(n)
		if err != nil {
			continue
		}
		kind := rec.Header.Kind
		if kind == "" {
			kind = "unknown"
		}
		byKind[kind]++
	}
	return sortedKindCounts(byKind)
}

// sortedKindCounts renders a count map as a name-sorted slice.
func sortedKindCounts(m map[string]int) []KindCount {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]KindCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, KindCount{Name: k, Count: m[k]})
	}
	return out
}
