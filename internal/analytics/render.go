package analytics

import (
	"fmt"
	"strings"
)

// Markdown renders the report as GitHub-flavored markdown tables. The output
// is deterministic: byte-identical reports render byte-identically.
func Markdown(r *Report) string {
	var b strings.Builder
	b.WriteString("# Campaign report\n\n")
	writeSourcesMD(&b, r)
	writeTotalsMD(&b, r)
	writeCurveMD(&b, r)
	writeTargetsMD(&b, r)
	writeTTFCMD(&b, r)
	writeRoundsMD(&b, r)
	writeFrontierMD(&b, r)
	writeAuditMD(&b, r)
	writeFleetMD(&b, r)
	writeChecksMD(&b, r)
	return b.String()
}

func writeSourcesMD(b *strings.Builder, r *Report) {
	fmt.Fprintf(b, "## Sources\n\n")
	if r.Sources.LogName != "" {
		note := ""
		if r.Sources.LogTruncated {
			note = " (truncated final line skipped)"
		}
		fmt.Fprintf(b, "- run log: `%s`%s\n", r.Sources.LogName, note)
	}
	if r.Sources.CorpusName != "" {
		note := ""
		if r.Sources.CorpusTruncated {
			note = " (truncated final line skipped)"
		}
		fmt.Fprintf(b, "- corpus: `%s`%s\n", r.Sources.CorpusName, note)
	}
	if r.Sources.SpansName != "" {
		fmt.Fprintf(b, "- fleet span trail: `%s`\n", r.Sources.SpansName)
	}
	if p := r.Provenance; p != nil {
		fmt.Fprintf(b, "- log provenance: %s\n", p.String())
	}
	if p := r.CorpusProvenance; p != nil {
		fmt.Fprintf(b, "- corpus provenance: %s\n", p.String())
	}
	if len(r.Witnesses) > 0 {
		parts := make([]string, 0, len(r.Witnesses))
		for _, w := range r.Witnesses {
			parts = append(parts, fmt.Sprintf("%s ×%d", w.Name, w.Count))
		}
		fmt.Fprintf(b, "- witnesses: %s\n", strings.Join(parts, ", "))
	}
	b.WriteString("\n")
}

func writeTotalsMD(b *strings.Builder, r *Report) {
	t := r.Totals
	b.WriteString("## Totals\n\n")
	b.WriteString("| Runs | Phase1 | Phase2 | Confirming | New sigs | Known | New cells | Dedup rate | Exceptions | Deadlocks | Aborted |\n")
	b.WriteString("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	fmt.Fprintf(b, "| %d | %d | %d | %d | %d | %d | %d | %s | %d | %d | %d |\n\n",
		t.Runs, t.Phase1, t.Phase2, t.Confirming, t.NewSigs, t.KnownSigs, t.NewCells,
		pct(t.DedupRate()), t.Exceptions, t.Deadlocks, t.Aborted)
	if t.Timed {
		fmt.Fprintf(b, "Wall clock (timed runs): %.3fs across %d runs.\n\n",
			float64(t.WallNs)/1e9, t.Runs)
	}
}

func writeCurveMD(b *strings.Builder, r *Report) {
	b.WriteString("## Discovery curve (global)\n\n")
	if len(r.Global.Points) == 0 {
		b.WriteString("No phase-2 trials in the log.\n\n")
		return
	}
	b.WriteString("| Trials | New signatures (cum.) | New cells (cum.) |\n|---:|---:|---:|\n")
	for _, p := range r.Global.Points {
		fmt.Fprintf(b, "| %d | %d | %d |\n", p.Trials, p.Sigs, p.Cells)
	}
	b.WriteString("\n")
}

func writeTargetsMD(b *strings.Builder, r *Report) {
	if len(r.Targets) == 0 {
		return
	}
	b.WriteString("## Per-target discovery\n\n")
	b.WriteString("| Target | Runs | Phase2 | Confirming | New sigs | Known | New cells |\n|---|---:|---:|---:|---:|---:|---:|\n")
	for _, t := range r.Targets {
		fmt.Fprintf(b, "| %s | %d | %d | %d | %d | %d | %d |\n",
			t.Label, t.Runs, t.Phase2, t.Confirming, t.NewSigs, t.KnownSigs, t.NewCells)
	}
	b.WriteString("\n")
}

func writeTTFCMD(b *strings.Builder, r *Report) {
	b.WriteString("## Trials to first confirm\n\n")
	t := r.TTFC
	if len(t.Samples) == 0 {
		fmt.Fprintf(b, "No target confirmed (%d unconfirmed).\n\n", t.Unconfirmed)
		return
	}
	fmt.Fprintf(b, "| Targets confirmed | Unconfirmed | Min | Median | Max |\n|---:|---:|---:|---:|---:|\n| %d | %d | %d | %s | %d |\n\n",
		len(t.Samples), t.Unconfirmed, t.Min(), num(t.Median()), t.Max())
}

func writeRoundsMD(b *strings.Builder, r *Report) {
	if len(r.Rounds) == 0 {
		return
	}
	b.WriteString("## Dedup trend per round\n\n")
	b.WriteString("| Round | Runs | New sigs | Known | New cells | Dedup rate |\n|---|---:|---:|---:|---:|---:|\n")
	for _, rt := range r.Rounds {
		fmt.Fprintf(b, "| %s | %d | %d | %d | %d | %s |\n",
			roundName(rt.Round), rt.Runs, rt.NewSigs, rt.Known, rt.NewCells, pct(rt.DedupRate()))
	}
	b.WriteString("\n")
}

func writeFrontierMD(b *strings.Builder, r *Report) {
	f := r.Frontier
	b.WriteString("## Coverage frontier\n\n")
	fmt.Fprintf(b, "| Cells | Signatures observed | Singletons (f1) | Doubletons (f2) | Chao1 est. richness | Completeness |\n|---:|---:|---:|---:|---:|---:|\n| %d | %d | %d | %d | %s | %s%% |\n\n",
		f.Cells, f.Observed, f.F1, f.F2, num(f.Chao1), num(f.Completeness()))
	fmt.Fprintf(b, "Abundance source: %s.\n\n", f.AbundanceSource)
	if len(f.ByKind) > 0 {
		b.WriteString("| Kind | Cells |\n|---|---:|\n")
		for _, k := range f.ByKind {
			fmt.Fprintf(b, "| %s | %d |\n", k.Name, k.Count)
		}
		b.WriteString("\n")
	}
	if len(f.ByBranch) > 0 {
		b.WriteString("| Branch | Cells |\n|---|---:|\n")
		for _, k := range f.ByBranch {
			fmt.Fprintf(b, "| %s | %d |\n", k.Name, k.Count)
		}
		b.WriteString("\n")
	}
}

func writeAuditMD(b *strings.Builder, r *Report) {
	if len(r.Audit) == 0 {
		return
	}
	b.WriteString("## Bandit audit (allocated vs realized yield)\n\n")
	b.WriteString("| Round | Target | Trials | New sigs | New cells | Flag |\n|---|---|---:|---:|---:|---|\n")
	for _, a := range r.Audit {
		fmt.Fprintf(b, "| %s | %s | %d | %d | %d | %s |\n",
			roundName(a.Round), a.Target, a.Trials, a.NewSigs, a.NewCells, dash(a.Flag))
	}
	b.WriteString("\n")
}

func writeFleetMD(b *strings.Builder, r *Report) {
	f := r.Fleet
	if f == nil {
		return
	}
	b.WriteString("## Fleet tracing\n\n")
	fmt.Fprintf(b, "| Attempts | Ingested | Requeued | Dropped | Stitched | Clamped | Time lost to requeues |\n|---:|---:|---:|---:|---:|---:|---:|\n| %d | %d | %d | %d | %d | %d | %s |\n\n",
		f.Attempts, f.Ingested, f.Requeued, f.Dropped, f.Stitched, f.Clamped, durNs(f.TimeLostToRequeuesNs))
	if len(f.Workers) > 0 {
		b.WriteString("| Worker | Ingested | Dropped | Lease p50 | Lease p95 | Exec p50 | Exec p95 |\n|---|---:|---:|---:|---:|---:|---:|\n")
		for _, w := range f.Workers {
			fmt.Fprintf(b, "| %s | %d | %d | %s | %s | %s | %s |\n",
				w.Worker, w.Ingested, w.Dropped,
				durNs(w.LeaseLatP50Ns), durNs(w.LeaseLatP95Ns), durNs(w.ExecP50Ns), durNs(w.ExecP95Ns))
		}
		b.WriteString("\n")
	}
	if len(f.Waterfall) > 0 {
		b.WriteString("### Span-phase waterfall (mean ingested attempt)\n\n")
		b.WriteString("| Phase | Attempts | Mean | Total |\n|---|---:|---:|---:|\n")
		for _, p := range f.Waterfall {
			fmt.Fprintf(b, "| %s | %d | %s | %s |\n", p.Phase, p.Count, durNs(p.MeanNs), durNs(p.TotalNs))
		}
		b.WriteString("\n")
	}
}

func writeChecksMD(b *strings.Builder, r *Report) {
	if len(r.Checks) == 0 {
		return
	}
	b.WriteString("## Reconciliation (log vs corpus)\n\n")
	b.WriteString("| Check | Log | Corpus | Match |\n|---|---:|---:|---|\n")
	for _, c := range r.Checks {
		fmt.Fprintf(b, "| %s | %d | %d | %s |\n", c.Name, c.Log, c.Corpus, yesNo(c.Match()))
	}
	b.WriteString("\n")
}

// CSV renders the report as a multi-section CSV: each section opens with a
// `# name` comment line, then a header row and data rows, separated by blank
// lines — grep-able whole, or split on the comment lines.
func CSV(r *Report) string {
	var b strings.Builder
	b.WriteString("# totals\nruns,phase1,phase2,confirming,new_sigs,known_sigs,new_cells,dedup_rate,exceptions,deadlocks,aborted,wall_ns\n")
	t := r.Totals
	fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%d\n\n",
		t.Runs, t.Phase1, t.Phase2, t.Confirming, t.NewSigs, t.KnownSigs, t.NewCells,
		num(t.DedupRate()), t.Exceptions, t.Deadlocks, t.Aborted, t.WallNs)

	b.WriteString("# discovery_curve\ntrials,cum_new_sigs,cum_new_cells\n")
	for _, p := range r.Global.Points {
		fmt.Fprintf(&b, "%d,%d,%d\n", p.Trials, p.Sigs, p.Cells)
	}
	b.WriteString("\n# targets\ntarget,runs,phase2,confirming,new_sigs,known_sigs,new_cells\n")
	for _, ts := range r.Targets {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d\n",
			csvField(ts.Label), ts.Runs, ts.Phase2, ts.Confirming, ts.NewSigs, ts.KnownSigs, ts.NewCells)
	}
	b.WriteString("\n# ttfc\nconfirmed,unconfirmed,min,median,max\n")
	fmt.Fprintf(&b, "%d,%d,%d,%s,%d\n", len(r.TTFC.Samples), r.TTFC.Unconfirmed,
		r.TTFC.Min(), num(r.TTFC.Median()), r.TTFC.Max())

	b.WriteString("\n# rounds\nround,runs,new_sigs,known_sigs,new_cells,dedup_rate\n")
	for _, rt := range r.Rounds {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%s\n", rt.Round, rt.Runs, rt.NewSigs, rt.Known, rt.NewCells, num(rt.DedupRate()))
	}
	b.WriteString("\n# frontier\ncells,observed,f1,f2,chao1,completeness_pct,abundance_source\n")
	f := r.Frontier
	fmt.Fprintf(&b, "%d,%d,%d,%d,%s,%s,%s\n", f.Cells, f.Observed, f.F1, f.F2,
		num(f.Chao1), num(f.Completeness()), f.AbundanceSource)

	b.WriteString("\n# audit\nround,target,trials,new_sigs,new_cells,flag\n")
	for _, a := range r.Audit {
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%s\n", a.Round, csvField(a.Target), a.Trials, a.NewSigs, a.NewCells, a.Flag)
	}
	if f := r.Fleet; f != nil {
		b.WriteString("\n# fleet\nattempts,ingested,requeued,dropped,stitched,clamped,time_lost_requeues_ns\n")
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d\n", f.Attempts, f.Ingested, f.Requeued, f.Dropped, f.Stitched, f.Clamped, f.TimeLostToRequeuesNs)
		b.WriteString("\n# fleet_workers\nworker,ingested,dropped,lease_p50_ns,lease_p95_ns,exec_p50_ns,exec_p95_ns\n")
		for _, w := range f.Workers {
			fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d\n", csvField(w.Worker), w.Ingested, w.Dropped,
				w.LeaseLatP50Ns, w.LeaseLatP95Ns, w.ExecP50Ns, w.ExecP95Ns)
		}
		b.WriteString("\n# fleet_waterfall\nphase,count,mean_ns,total_ns\n")
		for _, p := range f.Waterfall {
			fmt.Fprintf(&b, "%s,%d,%d,%d\n", csvField(p.Phase), p.Count, p.MeanNs, p.TotalNs)
		}
	}

	b.WriteString("\n# reconcile\ncheck,log,corpus,match\n")
	for _, c := range r.Checks {
		fmt.Fprintf(&b, "%s,%d,%d,%s\n", csvField(c.Name), c.Log, c.Corpus, yesNo(c.Match()))
	}
	return b.String()
}

// durNs renders a nanosecond duration human-readably and deterministically.
func durNs(ns int64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns >= 1e9:
		return num(float64(ns)/1e9) + "s"
	case ns >= 1e6:
		return num(float64(ns)/1e6) + "ms"
	case ns >= 1e3:
		return num(float64(ns)/1e3) + "µs"
	}
	return fmt.Sprintf("%dns", ns)
}

// num renders a float deterministically with trailing zeros trimmed (so
// whole numbers read as integers).
func num(f float64) string {
	s := fmt.Sprintf("%.3f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// pct renders a fraction as a percentage.
func pct(f float64) string { return num(100*f) + "%" }

// roundName renders the Round column: 0 means the log came from a
// non-adaptive campaign, i.e. the whole campaign is one unrounded pool.
func roundName(r int) string {
	if r == 0 {
		return "whole campaign"
	}
	return fmt.Sprintf("%d", r)
}

func dash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// csvField escapes a value for the CSV output (commas and quotes).
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
