package analytics

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"racefuzzer/internal/corpus"
	"racefuzzer/internal/harness"
	"racefuzzer/internal/obs"
)

// writeCampaign runs a small real adaptive campaign into dir: run.jsonl with
// a provenance header, plus a corpus subdirectory with witnesses. Every test
// ingests artifacts the actual pipelines wrote, not hand-built fixtures.
func writeCampaign(t *testing.T, dir string, seed int64) {
	t.Helper()
	corpusDir := filepath.Join(dir, "corpus")
	store, err := corpus.Open(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	logFile, err := os.Create(filepath.Join(dir, "run.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	prov := obs.CollectProvenance("racefuzzer", "campaign", map[string]string{
		"seed": "7", "budget": "40", "rounds": "2",
	})
	sink := obs.NewJSONLSink(logFile).Header(prov)
	store.SetProvenance(prov)
	harness.RunAdaptiveCampaign([]string{"figure2", "figure1"}, harness.CampaignOptions{
		Seed: seed, Budget: 40, Rounds: 2, Corpus: store,
		TraceDir: store.WitnessDir(), Sink: sink,
	})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndReconciliation(t *testing.T) {
	dir := t.TempDir()
	writeCampaign(t, dir, 7)
	c, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Provenance == nil || c.Provenance.Tool != "racefuzzer" {
		t.Fatalf("log provenance = %+v", c.Provenance)
	}
	if c.CorpusProvenance == nil || c.CorpusProvenance.Config != "budget=40 rounds=2 seed=7" {
		t.Fatalf("corpus provenance = %+v", c.CorpusProvenance)
	}
	r := Analyze(c)
	if r.Totals.Phase2 == 0 || r.Totals.NewSigs == 0 {
		t.Fatalf("campaign discovered nothing: %+v", r.Totals)
	}
	// The acceptance criterion: discovery totals from the log reconcile
	// exactly with the corpus written by the same (fresh-corpus) run.
	if len(r.Checks) == 0 {
		t.Fatal("no reconciliation checks")
	}
	for _, ck := range r.Checks {
		if !ck.Match() {
			t.Errorf("reconciliation failed: %s: log=%d corpus=%d", ck.Name, ck.Log, ck.Corpus)
		}
	}
	// The discovery curve's final point carries the same totals.
	if f := r.Global.Final(); f.Sigs != r.Totals.NewSigs || f.Cells != r.Totals.NewCells {
		t.Fatalf("curve final %+v != totals new sigs %d cells %d", f, r.Totals.NewSigs, r.Totals.NewCells)
	}
	// Adaptive campaigns stamp rounds 1..Rounds.
	if len(r.Rounds) != 2 || r.Rounds[0].Round != 1 || r.Rounds[1].Round != 2 {
		t.Fatalf("rounds = %+v", r.Rounds)
	}
	// Round 2 re-confirms round 1's signatures: dedup rate must rise.
	if !(r.Rounds[1].DedupRate() > r.Rounds[0].DedupRate()) {
		t.Fatalf("dedup trend not rising: %v then %v", r.Rounds[0].DedupRate(), r.Rounds[1].DedupRate())
	}
	// Audit covers every (round, target) that ran trials.
	if len(r.Audit) == 0 {
		t.Fatal("empty bandit audit")
	}
	// The untimed campaign carries no wall clock.
	if r.Totals.Timed {
		t.Fatal("untimed campaign reported Timed")
	}
	// TraceDir pointed into the corpus: witnesses must be visible.
	if len(r.Witnesses) == 0 {
		t.Fatal("no witnesses surfaced")
	}
	if r.Frontier.Observed == 0 || r.Frontier.Chao1 < float64(r.Frontier.Observed) {
		t.Fatalf("frontier = %+v", r.Frontier)
	}
	if r.Frontier.AbundanceSource != "corpus" {
		t.Fatalf("abundance source = %q", r.Frontier.AbundanceSource)
	}
}

// TestReportBytesDeterministic is the contract CI's report-smoke job builds
// on: two identical campaigns, written into different directories, loaded
// separately, must render byte-identical HTML, markdown and CSV.
func TestReportBytesDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeCampaign(t, dirA, 7)
	writeCampaign(t, dirB, 7)
	render := func(dir string) ([]byte, string, string) {
		c, err := LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		r := Analyze(c)
		html, err := HTML(r)
		if err != nil {
			t.Fatal(err)
		}
		return html, Markdown(r), CSV(r)
	}
	htmlA, mdA, csvA := render(dirA)
	htmlB, mdB, csvB := render(dirB)
	if !bytes.Equal(htmlA, htmlB) {
		t.Error("HTML bytes differ across identical campaigns")
	}
	if mdA != mdB {
		t.Error("markdown bytes differ across identical campaigns")
	}
	if csvA != csvB {
		t.Error("CSV bytes differ across identical campaigns")
	}
	// And rendering the same load twice is trivially stable.
	htmlA2, _, _ := render(dirA)
	if !bytes.Equal(htmlA, htmlA2) {
		t.Error("HTML bytes differ across repeat renders")
	}
	for _, want := range []string{"Discovery curve", "Bandit audit", "Coverage frontier", "Reconciliation"} {
		if !bytes.Contains(htmlA, []byte(want)) {
			t.Errorf("HTML report missing %q section", want)
		}
	}
	if !strings.Contains(csvA, "# discovery_curve") || !strings.Contains(csvA, "# audit") {
		t.Error("CSV missing sections")
	}
}

func TestChao1(t *testing.T) {
	cases := []struct {
		observed, f1, f2 int
		want             float64
	}{
		{0, 0, 0, 0},
		{10, 0, 0, 10},   // no singletons: frontier exhausted
		{10, 4, 2, 14},   // 10 + 16/4
		{10, 3, 0, 13},   // bias-corrected: 10 + 3·2/2
		{5, 5, 0, 15},    // everything a singleton: rich frontier
		{8, 2, 1, 8 + 2}, // 8 + 4/2
		{100, 10, 5, 100 + 10},
	}
	for _, c := range cases {
		if got := Chao1(c.observed, c.f1, c.f2); got != c.want {
			t.Errorf("Chao1(%d,%d,%d) = %v, want %v", c.observed, c.f1, c.f2, got, c.want)
		}
	}
}

func TestLoadLogTolerance(t *testing.T) {
	dir := t.TempDir()
	// A legacy log: no provenance header, plus a torn final line.
	path := filepath.Join(dir, "legacy.jsonl")
	content := `{"seq":0,"phase":1,"pairIndex":-1,"trial":0,"seed":1,"raceCreated":false,"stepsToRace":-1,"steps":5}
{"seq":1,"phase":2,"kind":"race","pairIndex":0,"trial":0,"seed":2,"raceCreated":true,"stepsToRace":3,"steps":9,"finding":"new","newCells":1}
{"seq":2,"phase":2,"kind":"ra`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, prov, trunc, err := LoadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if prov != nil {
		t.Fatal("headerless log produced provenance")
	}
	if !trunc || len(recs) != 2 {
		t.Fatalf("recs=%d trunc=%v, want 2 records with truncation flagged", len(recs), trunc)
	}
	c := &Campaign{LogName: "legacy.jsonl", Records: recs, LogTruncated: trunc}
	r := Analyze(c)
	if r.Totals.NewSigs != 1 || r.Totals.NewCells != 1 || r.Totals.Phase1 != 1 {
		t.Fatalf("totals = %+v", r.Totals)
	}
	// Log-only analysis: no reconciliation, log-based abundance.
	if len(r.Checks) != 0 {
		t.Fatal("log-only analysis produced reconciliation checks")
	}
	if r.Frontier.AbundanceSource != "log" || r.Frontier.Observed != 1 {
		t.Fatalf("frontier = %+v", r.Frontier)
	}
	// A corrupt line mid-file still fails.
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{corrupt\n{\"seq\":0,\"phase\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadLog(bad); err == nil {
		t.Fatal("mid-file corruption loaded without error")
	}
}

func TestDiff(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeCampaign(t, dirA, 7)
	writeCampaign(t, dirB, 7)
	load := func(dir string) *Report {
		c, err := LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		return Analyze(c)
	}
	a, b := load(dirA), load(dirB)
	d := Diff(a, b, "a", "b")
	for _, m := range d.Metrics {
		if m.Delta() != 0 {
			t.Errorf("identical campaigns differ on %s: %v vs %v", m.Name, m.A, m.B)
		}
	}
	md1 := DiffMarkdown(d)
	md2 := DiffMarkdown(Diff(load(dirA), load(dirB), "a", "b"))
	if md1 != md2 {
		t.Error("diff markdown not deterministic")
	}
	if !strings.Contains(md1, "new signatures") || !strings.Contains(md1, "Per-target") {
		t.Fatalf("diff markdown missing rows:\n%s", md1)
	}
}

func TestTTFCAndAuditFlags(t *testing.T) {
	// Hand-built records exercising the flag thresholds: in one round,
	// target "hog" gets 10 trials and yields nothing (dry), target "gem"
	// gets 2 trials and yields a signature (starved).
	var recs []obs.RunRecord
	for i := 0; i < 10; i++ {
		recs = append(recs, obs.RunRecord{Seq: int64(i), Label: "hog", Phase: 2,
			Kind: "race", PairIndex: 0, Trial: i, Round: 1, StepsToRace: -1})
	}
	recs = append(recs,
		obs.RunRecord{Seq: 10, Label: "gem", Phase: 2, Kind: "race", PairIndex: 0,
			Trial: 0, Round: 1, StepsToRace: -1},
		obs.RunRecord{Seq: 11, Label: "gem", Phase: 2, Kind: "race", PairIndex: 0,
			Trial: 1, Round: 1, RaceCreated: true, Finding: "new", NewCells: 1, StepsToRace: 4},
	)
	r := Analyze(&Campaign{LogName: "x.jsonl", Records: recs})
	flags := map[string]string{}
	for _, a := range r.Audit {
		flags[a.Target] = a.Flag
	}
	if flags["hog"] != "dry" || flags["gem"] != "starved" {
		t.Fatalf("audit flags = %v", flags)
	}
	// TTFC: gem confirmed on trial index 1 → 2 trials; hog never confirmed.
	if len(r.TTFC.Samples) != 1 || r.TTFC.Samples[0] != 2 || r.TTFC.Unconfirmed != 1 {
		t.Fatalf("ttfc = %+v", r.TTFC)
	}
	if r.TTFC.Median() != 2 {
		t.Fatalf("median = %v", r.TTFC.Median())
	}
}

// TestLoadLogToleratesCRLF: a run log with Windows line endings (git
// autocrlf, a log copied off a Windows machine) must parse exactly like its
// LF twin — header recognized, every record loaded, nothing flagged torn.
func TestLoadLogToleratesCRLF(t *testing.T) {
	dir := t.TempDir()
	content := `{"provenance":{"tool":"racefuzzer","go":"go1.22"}}
{"seq":0,"phase":1,"pairIndex":-1,"trial":0,"seed":1,"raceCreated":false,"stepsToRace":-1,"steps":5}
{"seq":1,"phase":2,"kind":"race","pairIndex":0,"trial":0,"seed":2,"raceCreated":true,"stepsToRace":3,"steps":9,"finding":"new","newCells":1}
`
	lf := filepath.Join(dir, "lf.jsonl")
	crlf := filepath.Join(dir, "crlf.jsonl")
	if err := os.WriteFile(lf, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(crlf, []byte(strings.ReplaceAll(content, "\n", "\r\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	wantRecs, wantProv, _, err := LoadLog(lf)
	if err != nil {
		t.Fatal(err)
	}
	recs, prov, trunc, err := LoadLog(crlf)
	if err != nil {
		t.Fatalf("CRLF log rejected: %v", err)
	}
	if trunc {
		t.Fatal("CRLF log flagged truncated")
	}
	if prov == nil || wantProv == nil || prov.Tool != wantProv.Tool {
		t.Fatalf("provenance header lost under CRLF: %+v vs %+v", prov, wantProv)
	}
	if !reflect.DeepEqual(recs, wantRecs) {
		t.Fatalf("CRLF records diverge:\n got %+v\nwant %+v", recs, wantRecs)
	}
}
