package analytics

import (
	"fmt"
	"sort"

	"racefuzzer/internal/obs"
)

// Report is the computed analysis of one campaign — everything the HTML,
// markdown and CSV renderers draw from. All slices are in deterministic
// (sorted or first-appearance) order.
type Report struct {
	Sources          SourceInfo
	Provenance       *obs.Provenance
	CorpusProvenance *obs.Provenance

	Totals   Totals
	Targets  []TargetStats
	Global   DiscoveryCurve
	TTFC     TTFCStats
	Rounds   []RoundTrend
	Frontier FrontierStats
	Audit    []AuditRow
	Checks   []ReconcileCheck
	// Fleet is the fleet-tracing section (nil for untraced campaigns).
	Fleet *FleetStats

	Witnesses []KindCount
}

// SourceInfo names the ingested artifacts.
type SourceInfo struct {
	LogName         string
	CorpusName      string
	SpansName       string
	LogTruncated    bool
	CorpusTruncated bool
}

// Totals are the campaign-wide tallies.
type Totals struct {
	Runs       int
	Phase1     int
	Phase2     int
	Confirming int // phase-2 runs that created the directed goal
	NewSigs    int // runs classified "new" against the corpus
	KnownSigs  int // runs classified "known"
	NewCells   int // coverage cells added (sum of newCells)
	Exceptions int
	Deadlocks  int
	Aborted    int
	Steps      int64
	// WallNs sums per-run durations; zero (Timed=false) when the campaign
	// ran without -timing.
	WallNs int64
	Timed  bool
}

// DedupRate is known/(new+known) sightings, 0 when none confirmed.
func (t Totals) DedupRate() float64 {
	if t.NewSigs+t.KnownSigs == 0 {
		return 0
	}
	return float64(t.KnownSigs) / float64(t.NewSigs+t.KnownSigs)
}

// TargetStats is one campaign label's (benchmark's) slice of the totals,
// plus its own discovery curve.
type TargetStats struct {
	Label      string
	Runs       int
	Phase2     int
	Confirming int
	NewSigs    int
	KnownSigs  int
	NewCells   int
	Curve      DiscoveryCurve
}

// DiscoveryCurve is cumulative discovery against phase-2 trials spent. A
// point is recorded at every trial where either cumulative count moved, plus
// the final trial, so the curve is exact yet compact.
type DiscoveryCurve struct {
	Points []CurvePoint
}

// CurvePoint is one sample: after Trials phase-2 trials, Sigs cumulative new
// signatures and Cells cumulative new coverage cells had been discovered.
type CurvePoint struct {
	Trials int
	Sigs   int
	Cells  int
}

// Final returns the curve's last point (zero when the curve is empty).
func (c DiscoveryCurve) Final() CurvePoint {
	if len(c.Points) == 0 {
		return CurvePoint{}
	}
	return c.Points[len(c.Points)-1]
}

// TTFCStats is the trials-to-first-confirm distribution: for every phase-2
// target that confirmed, how many directed trials it took (1-based).
type TTFCStats struct {
	// Samples is sorted ascending.
	Samples []int
	// Unconfirmed counts targets that never confirmed.
	Unconfirmed int
}

// Min, Median and Max summarize the distribution (0 when empty).
func (t TTFCStats) Min() int {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[0]
}
func (t TTFCStats) Max() int {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[len(t.Samples)-1]
}
func (t TTFCStats) Median() float64 {
	n := len(t.Samples)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return float64(t.Samples[n/2])
	}
	return float64(t.Samples[n/2-1]+t.Samples[n/2]) / 2
}

// RoundTrend is one adaptive-allocation round's dedup trend.
type RoundTrend struct {
	Round    int
	Runs     int
	NewSigs  int
	Known    int
	NewCells int
}

// DedupRate is the round's known/(new+known) fraction.
func (r RoundTrend) DedupRate() float64 {
	if r.NewSigs+r.Known == 0 {
		return 0
	}
	return float64(r.Known) / float64(r.NewSigs+r.Known)
}

// FrontierStats summarizes the interleaving-coverage frontier and estimates
// how much of the signature space is still undiscovered.
type FrontierStats struct {
	// Cells is the number of distinct (signature, branch) coverage cells;
	// ByKind and ByBranch break them down.
	Cells    int
	ByKind   []KindCount
	ByBranch []KindCount

	// Observed is the number of distinct signatures ("species") with at
	// least one sighting; F1 and F2 count those seen exactly once and twice.
	Observed int
	F1       int
	F2       int
	// Chao1 is the estimated total signature richness (observed +
	// undiscovered); see chao1. AbundanceSource records where sighting
	// counts came from: "corpus" (Finding.Hits) or "log" (confirming-run
	// counts per target).
	Chao1           float64
	AbundanceSource string
}

// Completeness is Observed/Chao1 as a percentage (100 when nothing is
// estimated to remain).
func (f FrontierStats) Completeness() float64 {
	if f.Chao1 <= 0 {
		return 100
	}
	return 100 * float64(f.Observed) / f.Chao1
}

// AuditRow is one (round, target) cell of the bandit audit: the trials the
// allocator granted against the discovery yield they returned.
type AuditRow struct {
	Round    int
	Target   string
	Trials   int
	NewSigs  int
	NewCells int
	// Flag is "starved" (well under the round's average allocation yet still
	// yielding — the allocator under-fed a productive target), "dry" (over
	// the average yet yielding nothing — budget burned on a plateaued
	// target), or "".
	Flag string
}

// Yield is the row's combined discovery output.
func (a AuditRow) Yield() int { return a.NewSigs + a.NewCells }

// ReconcileCheck cross-checks one total between the two artifact trails.
type ReconcileCheck struct {
	Name   string
	Log    int64
	Corpus int64
}

// Match reports agreement. A mismatch is not necessarily corruption — a
// corpus seeded by earlier campaigns legitimately exceeds one log's totals —
// but it must be visible, not absorbed.
func (r ReconcileCheck) Match() bool { return r.Log == r.Corpus }

// Analyze computes the full report from a loaded campaign.
func Analyze(c *Campaign) *Report {
	r := &Report{
		Sources: SourceInfo{
			LogName: c.LogName, CorpusName: c.CorpusName, SpansName: c.SpansName,
			LogTruncated: c.LogTruncated, CorpusTruncated: c.CorpusTruncated,
		},
		Provenance:       c.Provenance,
		CorpusProvenance: c.CorpusProvenance,
		Witnesses:        c.Witnesses,
	}
	r.Totals, r.Targets, r.Global = tallyRuns(c.Records)
	r.TTFC = ttfc(c.Records)
	r.Rounds = roundTrends(c.Records)
	r.Frontier = frontier(c)
	r.Audit = banditAudit(c.Records)
	r.Checks = reconcile(c, r.Totals)
	r.Fleet = fleetStats(c.Trails)
	return r
}

// tallyRuns folds the run log into totals, per-target stats and the global
// discovery curve. Targets are ordered by first appearance in the log (the
// log's own deterministic order).
func tallyRuns(recs []obs.RunRecord) (Totals, []TargetStats, DiscoveryCurve) {
	var t Totals
	byLabel := map[string]*TargetStats{}
	var order []string
	var global curveBuilder
	perTarget := map[string]*curveBuilder{}
	for _, rec := range recs {
		t.Runs++
		ts := byLabel[rec.Label]
		if ts == nil {
			ts = &TargetStats{Label: rec.Label}
			byLabel[rec.Label] = ts
			order = append(order, rec.Label)
			perTarget[rec.Label] = &curveBuilder{}
		}
		ts.Runs++
		t.Steps += int64(rec.Steps)
		t.WallNs += rec.DurationNs
		if len(rec.Exceptions) > 0 {
			t.Exceptions++
		}
		if rec.Deadlock {
			t.Deadlocks++
		}
		if rec.Aborted {
			t.Aborted++
		}
		if rec.Phase == 1 {
			t.Phase1++
			continue
		}
		t.Phase2++
		ts.Phase2++
		newSig := 0
		switch rec.Finding {
		case "new":
			t.NewSigs++
			ts.NewSigs++
			newSig = 1
		case "known":
			t.KnownSigs++
			ts.KnownSigs++
		}
		if rec.RaceCreated {
			t.Confirming++
			ts.Confirming++
		}
		t.NewCells += rec.NewCells
		ts.NewCells += rec.NewCells
		global.add(newSig, rec.NewCells)
		perTarget[rec.Label].add(newSig, rec.NewCells)
	}
	t.Timed = t.WallNs > 0
	out := make([]TargetStats, 0, len(order))
	for _, label := range order {
		ts := byLabel[label]
		ts.Curve = perTarget[label].curve()
		out = append(out, *ts)
	}
	return t, out, global.curve()
}

// curveBuilder accumulates a discovery curve, keeping only trials where a
// cumulative count moved (plus the final trial).
type curveBuilder struct {
	trials, sigs, cells int
	points              []CurvePoint
}

func (b *curveBuilder) add(dSigs, dCells int) {
	b.trials++
	if dSigs == 0 && dCells == 0 {
		return
	}
	b.sigs += dSigs
	b.cells += dCells
	b.points = append(b.points, CurvePoint{Trials: b.trials, Sigs: b.sigs, Cells: b.cells})
}

func (b *curveBuilder) curve() DiscoveryCurve {
	pts := b.points
	if b.trials > 0 {
		last := CurvePoint{Trials: b.trials, Sigs: b.sigs, Cells: b.cells}
		if len(pts) == 0 || pts[len(pts)-1] != last {
			pts = append(pts, last)
		}
	}
	return DiscoveryCurve{Points: pts}
}

// ttfc extracts the trials-to-first-confirm distribution: for every distinct
// phase-2 target — (label, kind, pairIndex) — the 1-based trial index of its
// first confirming run, or an Unconfirmed tick.
func ttfc(recs []obs.RunRecord) TTFCStats {
	type key struct {
		label, kind string
		pair        int
	}
	first := map[key]int{}
	var order []key
	for _, rec := range recs {
		if rec.Phase != 2 {
			continue
		}
		k := key{rec.Label, rec.Kind, rec.PairIndex}
		if _, ok := first[k]; !ok {
			first[k] = -1
			order = append(order, k)
		}
		if rec.RaceCreated && first[k] < 0 {
			first[k] = rec.Trial + 1
		}
	}
	var out TTFCStats
	for _, k := range order {
		if first[k] < 0 {
			out.Unconfirmed++
		} else {
			out.Samples = append(out.Samples, first[k])
		}
	}
	sort.Ints(out.Samples)
	return out
}

// roundTrends groups phase-2 runs by adaptive-allocation round. Logs from
// non-adaptive campaigns have Round 0 everywhere and produce a single
// "round 0" row, which the renderers present as "whole campaign".
func roundTrends(recs []obs.RunRecord) []RoundTrend {
	byRound := map[int]*RoundTrend{}
	for _, rec := range recs {
		if rec.Phase != 2 {
			continue
		}
		rt := byRound[rec.Round]
		if rt == nil {
			rt = &RoundTrend{Round: rec.Round}
			byRound[rec.Round] = rt
		}
		rt.Runs++
		switch rec.Finding {
		case "new":
			rt.NewSigs++
		case "known":
			rt.Known++
		}
		rt.NewCells += rec.NewCells
	}
	rounds := make([]int, 0, len(byRound))
	for r := range byRound {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	out := make([]RoundTrend, 0, len(rounds))
	for _, r := range rounds {
		out = append(out, *byRound[r])
	}
	return out
}

// frontier computes the coverage-frontier summary. Abundance — how many
// times each signature has been sighted — prefers the corpus (Finding.Hits
// spans all campaigns); a log-only analysis falls back to confirming-run
// counts per target, which undercounts cross-campaign sightings but keeps
// the estimator available.
func frontier(c *Campaign) FrontierStats {
	var f FrontierStats
	byKind := map[string]int{}
	byBranch := map[string]int{}
	for _, cell := range c.Cells {
		byKind[cell.Sig.Kind]++
		byBranch[cell.Branch]++
	}
	f.Cells = len(c.Cells)
	f.ByKind = sortedKindCounts(byKind)
	f.ByBranch = sortedKindCounts(byBranch)

	var abundance []int64
	if len(c.Findings) > 0 {
		f.AbundanceSource = "corpus"
		for _, fd := range c.Findings {
			abundance = append(abundance, fd.Hits)
		}
	} else {
		f.AbundanceSource = "log"
		counts := map[string]int64{}
		for _, rec := range c.Records {
			if rec.Phase == 2 && rec.RaceCreated {
				counts[fmt.Sprintf("%s|%s|%d", rec.Label, rec.Kind, rec.PairIndex)]++
			}
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			abundance = append(abundance, counts[k])
		}
	}
	f.Observed = len(abundance)
	for _, n := range abundance {
		switch n {
		case 1:
			f.F1++
		case 2:
			f.F2++
		}
	}
	f.Chao1 = Chao1(f.Observed, f.F1, f.F2)
	return f
}

// Chao1 is the classic nonparametric species-richness estimator: observed
// richness plus f1²/(2·f2) estimated undiscovered species, where f1 and f2
// are the singleton and doubleton counts. When no doubletons exist the
// bias-corrected form f1(f1−1)/2 applies. Intuition: many signatures seen
// exactly once means the campaign is still skimming a rich frontier; none
// seen once means the frontier is exhausted and Chao1 ≈ observed.
func Chao1(observed, f1, f2 int) float64 {
	if observed == 0 {
		return 0
	}
	if f2 > 0 {
		return float64(observed) + float64(f1*f1)/(2*float64(f2))
	}
	return float64(observed) + float64(f1*(f1-1))/2
}

// banditAudit builds the per-round budget audit from the log: each (round,
// target) row's realized trials and discovery yield, flagged against the
// round's average allocation. "starved" = under half the round's average
// trials yet still yielding (the allocator under-fed a productive target);
// "dry" = over the average yet yielding nothing (budget burned on a
// plateaued target). Rows keep the log's target order within ascending
// rounds.
func banditAudit(recs []obs.RunRecord) []AuditRow {
	type key struct {
		round  int
		target string
	}
	cells := map[key]*AuditRow{}
	var order []key
	for _, rec := range recs {
		if rec.Phase != 2 {
			continue
		}
		k := key{rec.Round, rec.Label}
		row := cells[k]
		if row == nil {
			row = &AuditRow{Round: rec.Round, Target: rec.Label}
			cells[k] = row
			order = append(order, k)
		}
		row.Trials++
		if rec.Finding == "new" {
			row.NewSigs++
		}
		row.NewCells += rec.NewCells
	}
	// Stable: ascending round, then first-appearance target order.
	sort.SliceStable(order, func(i, j int) bool { return order[i].round < order[j].round })
	// Per-round average trials, for the flag thresholds.
	roundTrials := map[int]int{}
	roundTargets := map[int]int{}
	for _, k := range order {
		roundTrials[k.round] += cells[k].Trials
		roundTargets[k.round]++
	}
	out := make([]AuditRow, 0, len(order))
	for _, k := range order {
		row := *cells[k]
		avg := float64(roundTrials[k.round]) / float64(roundTargets[k.round])
		switch {
		case float64(row.Trials) < avg/2 && row.Yield() > 0:
			row.Flag = "starved"
		case float64(row.Trials) > avg && row.Yield() == 0:
			row.Flag = "dry"
		}
		out = append(out, row)
	}
	return out
}

// reconcile cross-checks the log's discovery totals against the corpus
// artifacts. On a campaign that began with a fresh corpus every row matches
// exactly; a pre-seeded corpus legitimately exceeds the log. No checks are
// produced when either artifact is absent.
func reconcile(c *Campaign, t Totals) []ReconcileCheck {
	if len(c.Records) == 0 || c.CorpusName == "" {
		return nil
	}
	return []ReconcileCheck{
		{Name: "new signatures (log) vs corpus findings", Log: int64(t.NewSigs), Corpus: int64(len(c.Findings))},
		{Name: "new signatures (log) vs manifest findings count", Log: int64(t.NewSigs), Corpus: int64(c.ManifestFindings)},
		{Name: "new coverage cells (log) vs corpus cells", Log: int64(t.NewCells), Corpus: int64(len(c.Cells))},
		{Name: "new coverage cells (log) vs manifest coverage count", Log: int64(t.NewCells), Corpus: int64(c.ManifestCoverage)},
	}
}
