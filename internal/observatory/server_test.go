package observatory

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/corpus"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/schedprof"
)

// startServer boots an observatory on an ephemeral port and tears it down
// with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // second Shutdown in some tests
	})
	return s
}

func httpGet(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body), resp
}

// sseEvent is one parsed frame of the /events stream.
type sseEvent struct {
	name string
	data string
}

// readSSE parses SSE frames off r until the stream closes, forwarding each
// frame to out.
func readSSE(r io.Reader, out chan<- sseEvent) {
	defer close(out)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.name != "" || ev.data != "" {
				out <- ev
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// TestObservatoryServesLiveCampaign is the end-to-end path: a real
// two-phase figure2 campaign with a parallel executor feeds the server,
// while an SSE client watches and /metrics, /debug/sched, / and /healthz
// are scraped over real HTTP.
func TestObservatoryServesLiveCampaign(t *testing.T) {
	s := startServer(t, Config{Label: "figure2", EventBuffer: 4096})
	base := "http://" + s.Addr()

	// Subscribe over HTTP before the campaign so the stream sees it live.
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events Content-Type = %q", ct)
	}
	frames := make(chan sseEvent, 4096)
	var collected []sseEvent
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range frames {
			collected = append(collected, ev)
		}
	}()
	go readSSE(resp.Body, frames)

	// The opening frame must be a metrics snapshot.
	select {
	case ev := <-frames:
		if ev.name != "snapshot" {
			t.Fatalf("first SSE frame = %q, want snapshot", ev.name)
		}
		var parsed obs.StreamEvent
		if err := json.Unmarshal([]byte(ev.data), &parsed); err != nil {
			t.Fatalf("snapshot frame not JSON: %v", err)
		}
		if parsed.Metrics == nil {
			t.Fatal("snapshot frame carries no metrics")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no opening snapshot frame")
	}

	// Run the campaign against the server's wiring accessors, exactly as the
	// binaries do — parallel executor, corpus dedup, live introspection.
	b := bench.MustByName("figure2")
	opts := core.Options{
		Seed:         1,
		Phase1Trials: 3,
		Phase2Trials: 20,
		Workers:      4,
		Label:        b.Name,
		Metrics:      s.Campaign(),
		Sink:         s.Sink(),
		Corpus:       corpus.NewStore(),
		Introspect:   s.Introspector(),
		Prof:         s.Prof(),
	}
	rep := core.Analyze(b.New(), opts)
	if len(rep.Potential) == 0 {
		t.Fatal("phase 1 found no potential races in figure2")
	}
	if rep.RealCount() == 0 {
		t.Fatal("campaign confirmed no races in figure2")
	}

	// /metrics: the acceptance families, with real values, correct type.
	body, mresp := httpGet(t, base+"/metrics")
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, family := range []string{
		"racefuzzer_trials_total",
		"racefuzzer_findings_new_total",
		"racefuzzer_findings_dedup_rate",
		"racefuzzer_runs_total",
		"racefuzzer_steps_to_race_bucket",
		"racefuzzer_target_runs_total{bench=\"figure2\"",
		"racefuzzer_observatory_subscribers",
		"go_goroutines",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	var trials float64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "racefuzzer_trials_total ") {
			fmt.Sscanf(line, "racefuzzer_trials_total %g", &trials) //nolint:errcheck
		}
	}
	if want := float64(len(rep.Potential) * opts.Phase2Trials); trials != want {
		t.Errorf("racefuzzer_trials_total = %g, want %g", trials, want)
	}

	// /debug/sched: completed-run snapshot over HTTP.
	sbody, sresp := httpGet(t, base+"/debug/sched?timeout=100ms")
	if ct := sresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/sched Content-Type = %q", ct)
	}
	var snap sched.SchedSnapshot
	if err := json.Unmarshal([]byte(sbody), &snap); err != nil {
		t.Fatalf("/debug/sched not JSON: %v\n%s", err, sbody)
	}
	if snap.LastCompleted == nil {
		t.Fatal("/debug/sched has no completed run after a whole campaign")
	}
	if !snap.LastCompleted.Done || snap.LastCompleted.Policy == "" {
		t.Errorf("completed snapshot malformed: %+v", snap.LastCompleted)
	}

	// /debug/perf: live schedprof aggregates with per-op-kind latency
	// quantiles, covering every execution of the campaign.
	pbody, presp := httpGet(t, base+"/debug/perf")
	if ct := presp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/perf Content-Type = %q", ct)
	}
	var perf schedprof.Summary
	if err := json.Unmarshal([]byte(pbody), &perf); err != nil {
		t.Fatalf("/debug/perf not JSON: %v\n%s", err, pbody)
	}
	if want := int64(opts.Phase1Trials + len(rep.Potential)*opts.Phase2Trials); perf.Trials != want {
		t.Errorf("/debug/perf trials = %d, want %d", perf.Trials, want)
	}
	if perf.Grants == 0 || len(perf.Ops) == 0 {
		t.Fatalf("/debug/perf has no latency data: %s", pbody)
	}
	sampled := false
	for _, op := range perf.Ops {
		if op.Count > 0 && op.Service.P99 > 0 {
			sampled = true
		}
	}
	if !sampled {
		t.Errorf("/debug/perf quantiles all zero: %s", pbody)
	}

	// /debug/coverage: the live coverage frontier mirrors the campaign —
	// same trial count, a non-empty discovery curve whose final point equals
	// the totals, and a Chao1 estimate at or above observed richness.
	cbody, cresp := httpGet(t, base+"/debug/coverage")
	if ct := cresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/coverage Content-Type = %q", ct)
	}
	var cov CoverageSnapshot
	if err := json.Unmarshal([]byte(cbody), &cov); err != nil {
		t.Fatalf("/debug/coverage not JSON: %v\n%s", err, cbody)
	}
	if want := int64(len(rep.Potential) * opts.Phase2Trials); cov.Trials != want {
		t.Errorf("/debug/coverage trials = %d, want %d", cov.Trials, want)
	}
	if cov.NewSigs == 0 || cov.NewCells == 0 || len(cov.Curve) == 0 {
		t.Fatalf("/debug/coverage shows no discovery: %s", cbody)
	}
	if f := cov.Curve[len(cov.Curve)-1]; f.Sigs != cov.NewSigs || f.Cells != cov.NewCells {
		t.Errorf("coverage curve final %+v != totals (sigs %d, cells %d)", f, cov.NewSigs, cov.NewCells)
	}
	if cov.Observed == 0 || cov.Chao1 < float64(cov.Observed) {
		t.Errorf("coverage frontier malformed: observed=%d chao1=%v", cov.Observed, cov.Chao1)
	}

	// Dashboard and liveness.
	dash, dresp := httpGet(t, base+"/")
	if ct := dresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("dashboard Content-Type = %q", ct)
	}
	if !strings.Contains(dash, "EventSource") {
		t.Error("dashboard does not wire up the SSE stream")
	}
	if !strings.Contains(dash, "/debug/coverage") {
		t.Error("dashboard does not wire up the coverage panel")
	}
	if !strings.Contains(dash, "/fleet/health") {
		t.Error("dashboard does not wire up the flight-deck panel")
	}
	if !strings.Contains(dash, "probeFleet") {
		t.Error("dashboard does not gate fleet polling behind a probe")
	}
	if _, nf := httpGet(t, base+"/nosuch"); nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", nf.StatusCode)
	}
	if hb, _ := httpGet(t, base+"/healthz"); strings.TrimSpace(hb) != "ok" {
		t.Errorf("/healthz = %q", hb)
	}

	// Graceful shutdown: the client must receive a final "shutdown" frame
	// and then a clean stream close.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	var runs, findings int
	last := sseEvent{}
	for _, ev := range collected {
		switch ev.name {
		case "run":
			runs++
		case "finding":
			findings++
		}
		last = ev
	}
	if runs == 0 {
		t.Error("SSE client saw no run events")
	}
	if findings == 0 {
		t.Error("SSE client saw no finding events")
	}
	if last.name != "shutdown" {
		t.Errorf("last SSE frame = %q, want shutdown", last.name)
	}
	var final obs.StreamEvent
	if err := json.Unmarshal([]byte(last.data), &final); err != nil || final.Metrics == nil {
		t.Errorf("shutdown frame carries no final metrics: %v %s", err, last.data)
	}
}

// TestObservatorySchedEndpointShowsDeadlock drives a deterministic
// deadlock through the introspector and reads its wait-for graph back over
// HTTP — the payload /debug/sched exists for.
func TestObservatorySchedEndpointShowsDeadlock(t *testing.T) {
	s := startServer(t, Config{Label: "deadlock"})

	res := sched.Run(func(t *sched.Thread) {
		lk := t.Scheduler().NewLock("L")
		t.LockAcquire(lk, 0)
		w := t.Fork("w", func(c *sched.Thread) {
			c.LockAcquire(lk, 0)
			c.LockRelease(lk, 0)
		})
		t.Join(w)
	}, sched.Config{Seed: 2, Introspect: s.Introspector()})
	if res.Deadlock == nil {
		t.Fatal("program did not deadlock")
	}

	body, _ := httpGet(t, "http://"+s.Addr()+"/debug/sched")
	var snap sched.SchedSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/sched not JSON: %v", err)
	}
	last := snap.LastCompleted
	if last == nil {
		t.Fatal("no completed snapshot")
	}
	if len(last.WaitFor) != 2 {
		t.Fatalf("wait-for graph over HTTP has %d edges, want 2: %s", len(last.WaitFor), body)
	}
	if len(last.Cycles) != 1 {
		t.Fatalf("cycles over HTTP = %v, want one", last.Cycles)
	}
	if len(last.Locks) != 1 || last.Locks[0].Name != "L" {
		t.Fatalf("held-locks table over HTTP = %+v", last.Locks)
	}
}

// TestObservatoryNilServerIsInert pins the zero-overhead contract: every
// accessor and lifecycle method of a nil *Server is a usable no-op, so call
// sites wire the observatory unconditionally.
func TestObservatoryNilServerIsInert(t *testing.T) {
	var s *Server
	if s.Campaign() != nil || s.Registry() != nil || s.Introspector() != nil || s.Prof() != nil {
		t.Error("nil server handed out live wiring")
	}
	if s.Sink() != nil {
		t.Error("nil server Sink is not interface-nil")
	}
	if err := s.Start(); err != nil {
		t.Errorf("nil Start: %v", err)
	}
	if s.Addr() != "" {
		t.Errorf("nil Addr = %q", s.Addr())
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("nil Shutdown: %v", err)
	}
	// The nil wiring must compose with a real run.
	prog := bench.MustByName("figure2")
	core.DetectPotentialRaces(prog.New(), core.Options{
		Seed: 1, Phase1Trials: 1,
		Metrics: s.Campaign(), Sink: s.Sink(), Introspect: s.Introspector(),
	})
}

// TestCoverageTrackerCurveAndEstimate pins the live tracker's bookkeeping:
// dedup rate, abundance-based Chao1 inputs, and the curve decimation that
// bounds memory while preserving the envelope (final point == totals).
func TestCoverageTrackerCurveAndEstimate(t *testing.T) {
	c := newCoverageTracker()
	// Every trial confirms a distinct target once: all singletons.
	for i := 0; i < 3*maxCurvePoints; i++ {
		c.observe(obs.RunRecord{Phase: 2, Label: "x", Kind: "race", PairIndex: i,
			RaceCreated: true, Finding: "new", NewCells: 1})
	}
	// Plus some re-sightings of target 0 that move no counts.
	for i := 0; i < 4; i++ {
		c.observe(obs.RunRecord{Phase: 2, Label: "x", Kind: "race", PairIndex: 0,
			RaceCreated: true, Finding: "known"})
	}
	snap := c.snapshot()
	total := int64(3 * maxCurvePoints)
	if snap.Trials != total+4 || snap.NewSigs != total || snap.KnownSigs != 4 || snap.NewCells != total {
		t.Fatalf("totals = %+v", snap)
	}
	if want := 4 / float64(total+4); snap.DedupRate != want {
		t.Errorf("dedup rate = %v, want %v", snap.DedupRate, want)
	}
	if snap.Observed != 3*maxCurvePoints {
		t.Errorf("observed = %d", snap.Observed)
	}
	// Target 0 was sighted 5 times; everything else exactly once.
	if snap.F1 != snap.Observed-1 || snap.F2 != 0 {
		t.Errorf("f1=%d f2=%d, want %d and 0", snap.F1, snap.F2, snap.Observed-1)
	}
	if snap.Chao1 < float64(snap.Observed) || snap.CompletenessPct <= 0 || snap.CompletenessPct > 100 {
		t.Errorf("estimate malformed: chao1=%v completeness=%v", snap.Chao1, snap.CompletenessPct)
	}
	if len(snap.Curve) >= maxCurvePoints {
		t.Errorf("curve not decimated: %d points", len(snap.Curve))
	}
	f := snap.Curve[len(snap.Curve)-1]
	if f.Sigs != snap.NewSigs || f.Cells != snap.NewCells {
		t.Errorf("curve final %+v != totals after decimation", f)
	}
}

// TestObservatoryTargetSeriesCap pins the label-cardinality guard: targets
// beyond the cap are counted in the skipped series, not exposed.
func TestObservatoryTargetSeriesCap(t *testing.T) {
	s := startServer(t, Config{Label: "cap"})
	sink := s.Sink()
	for i := 0; i < maxTargetSeries+25; i++ {
		sink.Emit(obs.RunRecord{
			Phase: 2, Label: "cap", Kind: "race",
			Pair: fmt.Sprintf("(stmt%d, stmt%d)", i, i+1),
		})
	}
	body, _ := httpGet(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, "racefuzzer_target_series_skipped_total 25") {
		t.Error("/metrics does not report the 25 skipped series")
	}
	if got := strings.Count(body, "racefuzzer_target_runs_total{"); got != maxTargetSeries {
		t.Errorf("exposed %d target series, want %d", got, maxTargetSeries)
	}
}

// TestObservatoryMountsExtraHandlers covers the Handle hook the fleet
// coordinator uses: a handler mounted before Start is served from the
// observatory mux, and gauges published into the registry (as the
// coordinator's fleet gauges are) surface on /metrics.
func TestObservatoryMountsExtraHandlers(t *testing.T) {
	cfg := Config{Label: "fleet"}
	s := New(cfg)
	s.Handle("/fleet/status", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"generation":"g-test","workersLive":2}`)
	}))
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	body, resp := httpGet(t, "http://"+s.Addr()+"/fleet/status")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"g-test"`) {
		t.Fatalf("/fleet/status = %d %q, want mounted handler's payload", resp.StatusCode, body)
	}

	s.Registry().Gauge("fleet.workers_live").Set(2)
	s.Registry().Gauge("fleet.leases_inflight").Set(3)
	metrics, _ := httpGet(t, "http://"+s.Addr()+"/metrics")
	for _, want := range []string{"racefuzzer_fleet_workers_live 2", "racefuzzer_fleet_leases_inflight 3"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Handle is nil-safe like every other accessor.
	var nilServer *Server
	nilServer.Handle("/x", http.NotFoundHandler())
}
