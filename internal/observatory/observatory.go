// Package observatory is the live window into a running campaign: an
// embedded net/http server (the -http flag on cmd/racefuzzer and
// cmd/benchtable) exposing
//
//	/            an embedded HTML dashboard rendering the SSE stream
//	/metrics     Prometheus text-format exposition of the obs metric state
//	/events      a Server-Sent-Events stream of run records and findings
//	/debug/sched JSON snapshots of live scheduler state (wait-for graph)
//	/debug/perf  JSON schedprof aggregates (per-op-kind latency quantiles)
//	/debug/coverage JSON coverage frontier (discovery curve, Chao1 estimate)
//	/healthz     liveness probe
//
// Design constraints, in order:
//
//   - Zero overhead when off. A nil *Server returns nil from every wiring
//     accessor (Sink, Introspector, Registry), and nil sinks/introspectors
//     are no-ops all the way down — with -http unset the campaign runs the
//     byte-for-byte PR-4 code path.
//   - Never perturb the campaign. The server only consumes immutable
//     snapshots and broadcast events; a slow or stuck HTTP client is
//     dropped (bounded per-subscriber buffers), never waited on.
//   - Race-free under -race at any Workers width: all shared state is the
//     obs/sched packages' locked or atomic structures.
package observatory

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"racefuzzer/internal/obs"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/schedprof"
)

//go:embed dashboard.html
var dashboardHTML []byte

// maxTargetSeries bounds the per-target label cardinality exposed on
// /metrics; targets beyond the cap are counted, not silently lost.
const maxTargetSeries = 512

// Config parameterizes New.
type Config struct {
	// Addr is the listen address (e.g. ":8080", "127.0.0.1:0").
	Addr string
	// Label names the campaign on the dashboard.
	Label string
	// Campaign is the aggregator /metrics renders; New creates one when nil.
	Campaign *obs.CampaignMetrics
	// EventBuffer is the per-subscriber event buffer (default 256).
	EventBuffer int
}

// Server is the embedded campaign monitor. All methods are safe on a nil
// receiver, so call sites wire it unconditionally.
type Server struct {
	cfg   Config
	camp  *obs.CampaignMetrics
	reg   *obs.Registry
	bc    *obs.Broadcast
	insp  *sched.Introspector
	prof  *schedprof.Collector
	cov   *coverageTracker
	start time.Time

	mu      sync.Mutex
	targets map[targetKey]*targetCount
	skipped int64 // targets beyond maxTargetSeries

	scrapes atomic.Int64

	extra map[string]http.Handler

	srv *http.Server
	ln  net.Listener
}

// targetKey identifies one labeled series: the pipeline kind and the
// rendered target (statement pair / lock pair / atomic block).
type targetKey struct {
	label, kind, pair string
}

// targetCount is the per-target live tally.
type targetCount struct {
	runs, confirming int64
}

// New assembles a server (not yet listening).
func New(cfg Config) *Server {
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	camp := cfg.Campaign
	if camp == nil {
		camp = obs.NewCampaignMetrics()
	}
	return &Server{
		cfg:     cfg,
		camp:    camp,
		reg:     obs.NewRegistry(),
		bc:      obs.NewBroadcast(),
		insp:    sched.NewIntrospector(),
		prof:    schedprof.NewCollector(),
		cov:     newCoverageTracker(),
		targets: make(map[targetKey]*targetCount),
		extra:   make(map[string]http.Handler),
		start:   time.Now(),
	}
}

// Handle mounts an extra handler on the observatory's mux (e.g. the fleet
// coordinator's /fleet/status). Call before Start; nil-safe no-op, so call
// sites wire it unconditionally like every other accessor.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil || pattern == "" || h == nil {
		return
	}
	s.extra[pattern] = h
}

// Campaign returns the aggregator /metrics renders (nil when off).
func (s *Server) Campaign() *obs.CampaignMetrics {
	if s == nil {
		return nil
	}
	return s.camp
}

// Registry returns the live gauge registry (campaign round/budget gauges);
// nil when off.
func (s *Server) Registry() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Introspector returns the scheduler introspection hook (nil when off).
func (s *Server) Introspector() *sched.Introspector {
	if s == nil {
		return nil
	}
	return s.insp
}

// Prof returns the scheduler performance collector that feeds /debug/perf
// (nil when off, and nil collectors hand out nil trials all the way down).
func (s *Server) Prof() *schedprof.Collector {
	if s == nil {
		return nil
	}
	return s.prof
}

// Sink returns the sink that feeds the event stream and the per-target
// tallies; nil when off, so it composes with obs.MultiSink unconditionally.
func (s *Server) Sink() obs.Sink {
	if s == nil {
		return nil
	}
	return serverSink{s}
}

// serverSink adapts the server to obs.Sink without exposing Emit on a
// possibly-nil *Server through a non-nil interface.
type serverSink struct{ s *Server }

// Emit tallies the record's target series and fans it out to subscribers.
func (w serverSink) Emit(rec obs.RunRecord) {
	s := w.s
	if rec.Phase == 2 {
		key := targetKey{label: rec.Label, kind: rec.Kind, pair: rec.Pair}
		s.mu.Lock()
		tc := s.targets[key]
		if tc == nil {
			if len(s.targets) >= maxTargetSeries {
				s.skipped++
			} else {
				tc = &targetCount{}
				s.targets[key] = tc
			}
		}
		if tc != nil {
			tc.runs++
			if rec.RaceCreated || rec.Deadlock {
				tc.confirming++
			}
		}
		s.mu.Unlock()
	}
	s.cov.observe(rec)
	s.bc.Emit(rec)
}

// Start begins listening and serving in the background. Nil-safe no-op.
func (s *Server) Start() error {
	if s == nil {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleDashboard)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/sched", s.handleSched)
	mux.HandleFunc("/debug/perf", s.handlePerf)
	mux.HandleFunc("/debug/coverage", s.handleCoverage)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	for pattern, h := range s.extra {
		mux.Handle(pattern, h)
	}
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return nil
}

// Addr returns the bound listen address ("" before Start or when off) —
// with ":0" configs this is where the ephemeral port surfaces.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server: it publishes one final "shutdown"
// event carrying the closing campaign snapshot, closes every subscriber
// (unblocking their SSE handlers), and drains the HTTP server.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	final := s.camp.Snapshot()
	s.bc.Publish(obs.StreamEvent{Type: "shutdown", Metrics: &final})
	s.bc.Close()
	return s.srv.Shutdown(ctx)
}

// handleDashboard serves the embedded single-file dashboard.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}

// handleMetrics renders the full Prometheus exposition: campaign
// aggregates, live registry gauges, per-target series, the observatory's
// own health, and Go runtime stats.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.scrapes.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, "racefuzzer", s.camp.Snapshot())
	obs.WriteProm(w, "racefuzzer", s.reg.Snapshot())
	s.writeTargetFamilies(w)
	s.writeSelfFamilies(w)
	obs.WriteRuntimeProm(w)
}

// writeTargetFamilies renders the per-pipeline/per-target labeled counters.
func (s *Server) writeTargetFamilies(w http.ResponseWriter) {
	s.mu.Lock()
	runs := make([]obs.PromSample, 0, len(s.targets))
	confirming := make([]obs.PromSample, 0, len(s.targets))
	for key, tc := range s.targets {
		labels := []obs.PromLabel{
			{Name: "bench", Value: key.label},
			{Name: "kind", Value: key.kind},
			{Name: "target", Value: key.pair},
		}
		runs = append(runs, obs.PromSample{Labels: labels, Value: float64(tc.runs)})
		confirming = append(confirming, obs.PromSample{Labels: labels, Value: float64(tc.confirming)})
	}
	skipped := s.skipped
	s.mu.Unlock()
	obs.SortPromSamples(runs)
	obs.SortPromSamples(confirming)
	obs.WritePromFamily(w, "racefuzzer_target_runs_total",
		"Phase-2 trials per directed target.", "counter", runs...)
	obs.WritePromFamily(w, "racefuzzer_target_confirming_runs_total",
		"Trials that reached the directed goal, per target.", "counter", confirming...)
	obs.WritePromFamily(w, "racefuzzer_target_series_skipped_total",
		"Targets not exposed because the label-cardinality cap was reached.", "counter",
		obs.PromSample{Value: float64(skipped)})
}

// writeSelfFamilies renders the observatory's own meters.
func (s *Server) writeSelfFamilies(w http.ResponseWriter) {
	obs.WritePromFamily(w, "racefuzzer_observatory_subscribers",
		"Live SSE subscribers.", "gauge",
		obs.PromSample{Value: float64(s.bc.Subscribers())})
	obs.WritePromFamily(w, "racefuzzer_observatory_events_total",
		"Events published to the broadcast stream.", "counter",
		obs.PromSample{Value: float64(s.bc.Events())})
	obs.WritePromFamily(w, "racefuzzer_observatory_dropped_subscribers_total",
		"Subscribers evicted for falling behind.", "counter",
		obs.PromSample{Value: float64(s.bc.Dropped())})
	obs.WritePromFamily(w, "racefuzzer_observatory_scrapes_total",
		"Scrapes of this endpoint.", "counter",
		obs.PromSample{Value: float64(s.scrapes.Load())})
	obs.WritePromFamily(w, "racefuzzer_observatory_uptime_seconds",
		"Seconds since the observatory started.", "gauge",
		obs.PromSample{Value: time.Since(s.start).Seconds()})
}

// handleEvents serves the SSE stream: an opening "snapshot" event with the
// current campaign state, then every broadcast event until the client
// disconnects, falls behind, or the server shuts down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.bc.Subscribe(s.cfg.EventBuffer)
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	snap := s.camp.Snapshot()
	writeSSE(w, obs.StreamEvent{Type: "snapshot", Seq: -1, Metrics: &snap})
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-sub.Events():
			if !open {
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE renders one event in SSE wire format.
func writeSSE(w http.ResponseWriter, ev obs.StreamEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// handleSched serves live scheduler-state snapshots.
func (s *Server) handleSched(w http.ResponseWriter, r *http.Request) {
	timeout := 150 * time.Millisecond
	if t := r.URL.Query().Get("timeout"); t != "" {
		if d, err := time.ParseDuration(t); err == nil && d > 0 && d <= 5*time.Second {
			timeout = d
		}
	}
	snap := s.insp.Snapshot(timeout)
	// Present active runs in a stable order for scripted consumers.
	sort.Slice(snap.Active, func(i, j int) bool { return snap.Active[i].RunID < snap.Active[j].RunID })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck // best-effort write to client
}

// handlePerf serves the schedprof campaign aggregates: per-op-kind
// wait/service latency quantiles, enabled-set sizes, round counts and phase
// timings.
func (s *Server) handlePerf(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.prof.Summary()) //nolint:errcheck // best-effort write to client
}
