package observatory

import (
	"encoding/json"
	"net/http"
	"sync"

	"racefuzzer/internal/analytics"
	"racefuzzer/internal/obs"
)

// maxCurvePoints bounds the in-memory discovery curve; when the cap is hit
// the older half is decimated (every second point dropped), so the curve
// keeps its shape at half resolution instead of growing without bound.
const maxCurvePoints = 2048

// coverageTracker is the live counterpart of the offline analytics engine's
// coverage frontier: it folds every emitted run record into cumulative
// discovery counts, a discovery curve, and per-target sighting abundances
// feeding the same Chao1 richness estimate campaignreport computes offline.
type coverageTracker struct {
	mu        sync.Mutex
	trials    int64 // phase-2 trials seen
	newSigs   int64
	knownSigs int64
	newCells  int64
	sightings map[coverageKey]int64 // confirming runs per directed target
	curve     []CoveragePoint
}

// coverageKey identifies one directed target for abundance counting, the
// same (label, kind, pairIndex) key the offline engine's log-based
// abundance uses.
type coverageKey struct {
	label, kind string
	pair        int
}

// CoveragePoint is one step of the live discovery curve: cumulative new
// signatures and new coverage cells after a given phase-2 trial count.
type CoveragePoint struct {
	Trial int64 `json:"trial"`
	Sigs  int64 `json:"sigs"`
	Cells int64 `json:"cells"`
}

// CoverageSnapshot is the /debug/coverage payload.
type CoverageSnapshot struct {
	// Trials counts phase-2 trials observed so far.
	Trials int64 `json:"trials"`
	// NewSigs and KnownSigs split corpus verdicts; NewCells counts coverage
	// cells first touched.
	NewSigs   int64 `json:"newSigs"`
	KnownSigs int64 `json:"knownSigs"`
	NewCells  int64 `json:"newCells"`
	// DedupRate is KnownSigs over all verdicts (0 before the first verdict).
	DedupRate float64 `json:"dedupRate"`
	// Observed, F1 and F2 are the abundance inputs: distinct confirmed
	// targets, and how many were confirmed exactly once / exactly twice.
	Observed int `json:"observed"`
	F1       int `json:"f1"`
	F2       int `json:"f2"`
	// Chao1 estimates total signature richness; CompletenessPct is
	// Observed/Chao1 (100 when the frontier looks exhausted).
	Chao1           float64 `json:"chao1"`
	CompletenessPct float64 `json:"completenessPct"`
	// Curve is the discovery step curve (points only where a count moved).
	Curve []CoveragePoint `json:"curve"`
}

func newCoverageTracker() *coverageTracker {
	return &coverageTracker{sightings: make(map[coverageKey]int64)}
}

// observe folds one run record into the tracker.
func (c *coverageTracker) observe(rec obs.RunRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec.Phase == 2 {
		c.trials++
		if rec.RaceCreated || rec.Deadlock {
			c.sightings[coverageKey{rec.Label, rec.Kind, rec.PairIndex}]++
		}
	}
	moved := false
	switch rec.Finding {
	case "new":
		c.newSigs++
		moved = true
	case "known":
		c.knownSigs++
	}
	if rec.NewCells > 0 {
		c.newCells += int64(rec.NewCells)
		moved = true
	}
	if moved {
		c.curve = append(c.curve, CoveragePoint{Trial: c.trials, Sigs: c.newSigs, Cells: c.newCells})
		if len(c.curve) >= maxCurvePoints {
			half := len(c.curve) / 2
			kept := c.curve[:0]
			for i, p := range c.curve {
				if i >= half || i%2 == 0 {
					kept = append(kept, p)
				}
			}
			c.curve = kept
		}
	}
}

// snapshot renders the current state, recomputing the Chao1 estimate from
// the live abundances.
func (c *coverageTracker) snapshot() CoverageSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CoverageSnapshot{
		Trials: c.trials, NewSigs: c.newSigs, KnownSigs: c.knownSigs, NewCells: c.newCells,
		Observed: len(c.sightings),
		Curve:    append([]CoveragePoint(nil), c.curve...),
	}
	if verdicts := c.newSigs + c.knownSigs; verdicts > 0 {
		snap.DedupRate = float64(c.knownSigs) / float64(verdicts)
	}
	for _, n := range c.sightings {
		switch n {
		case 1:
			snap.F1++
		case 2:
			snap.F2++
		}
	}
	snap.Chao1 = analytics.Chao1(snap.Observed, snap.F1, snap.F2)
	if snap.Chao1 > 0 {
		snap.CompletenessPct = 100 * float64(snap.Observed) / snap.Chao1
	}
	return snap
}

// handleCoverage serves the live coverage-frontier snapshot: the same
// discovery curve and Chao1 estimate cmd/campaignreport computes offline,
// but recomputed from the records streamed through the sink so far.
func (s *Server) handleCoverage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.cov.snapshot()) //nolint:errcheck // best-effort write to client
}
