package atomizer

import (
	"testing"

	"racefuzzer/internal/event"
)

func mem(t event.ThreadID, stmt string, loc event.MemLoc, w bool, locks ...event.LockID) event.Event {
	a := event.Read
	if w {
		a = event.Write
	}
	return event.Event{Kind: event.KindMem, Thread: t, Stmt: event.StmtFor(stmt), Loc: loc, Access: a, Locks: locks}
}

func unlock(t event.ThreadID, l event.LockID) event.Event {
	return event.Event{Kind: event.KindUnlock, Thread: t, Lock: l}
}

func run(events ...event.Event) *Detector {
	d := New()
	for _, e := range events {
		d.OnEvent(e)
	}
	return d
}

func TestUnprotectedRMWIsACandidate(t *testing.T) {
	d := run(
		mem(0, "at:read", 1, false),
		mem(0, "at:write", 1, true),
		mem(1, "at:other-write", 1, true),
	)
	cs := d.Candidates()
	if len(cs) != 1 {
		t.Fatalf("candidates = %v", cs)
	}
	c := cs[0]
	if c.First != event.StmtFor("at:read") || c.Second != event.StmtFor("at:write") {
		t.Fatalf("block = %v", c)
	}
	if len(c.Interferers) == 0 {
		t.Fatalf("no interferers: %v", c)
	}
}

func TestLockProtectedRMWNotACandidate(t *testing.T) {
	// Both the block and the other writer hold lock 5: serialized, no
	// violation possible.
	d := run(
		mem(0, "at:lread", 1, false, 5),
		mem(0, "at:lwrite", 1, true, 5),
		mem(1, "at:lother", 1, true, 5),
	)
	if cs := d.Candidates(); len(cs) != 0 {
		t.Fatalf("lock-protected block reported: %v", cs)
	}
}

func TestDisjointlyLockedWriterInterferes(t *testing.T) {
	// Block under lock 5, writer under lock 6: disjoint — candidate.
	d := run(
		mem(0, "at:dread", 1, false, 5),
		mem(0, "at:dwrite", 1, true, 5),
		mem(1, "at:dother", 1, true, 6),
	)
	if cs := d.Candidates(); len(cs) != 1 {
		t.Fatalf("candidates = %v", cs)
	}
}

func TestUnlockEndsTheBlock(t *testing.T) {
	// read, unlock, write: the RMW spans a release — not treated as one
	// intended-atomic block.
	d := run(
		mem(0, "at:uread", 1, false, 5),
		unlock(0, 5),
		mem(0, "at:uwrite", 1, true),
		mem(1, "at:uother", 1, true),
	)
	for _, c := range d.Candidates() {
		if c.First == event.StmtFor("at:uread") {
			t.Fatalf("block survived an unlock: %v", c)
		}
	}
}

func TestSameStmtTwoThreadsSelfInterference(t *testing.T) {
	// The classic counter++ executed by two threads: the block's own write
	// statement is an interferer because another thread executes it too.
	d := run(
		mem(0, "at:cr", 1, false),
		mem(0, "at:cw", 1, true),
		mem(1, "at:cr", 1, false),
		mem(1, "at:cw", 1, true),
	)
	cs := d.Candidates()
	if len(cs) != 1 {
		t.Fatalf("candidates = %v", cs)
	}
	found := false
	for _, s := range cs[0].Interferers {
		if s == event.StmtFor("at:cw") {
			found = true
		}
	}
	if !found {
		t.Fatalf("self-interference missed: %v", cs[0])
	}
}

func TestSingleThreadNoInterferers(t *testing.T) {
	d := run(
		mem(0, "at:sr", 1, false),
		mem(0, "at:sw", 1, true),
	)
	if cs := d.Candidates(); len(cs) != 0 {
		t.Fatalf("single-thread block reported: %v", cs)
	}
}

func TestDifferentLocationsIndependent(t *testing.T) {
	d := run(
		mem(0, "at:xr", 1, false),
		mem(0, "at:xw", 1, true),
		mem(1, "at:yw", 2, true), // different location: no interference
	)
	if cs := d.Candidates(); len(cs) != 0 {
		t.Fatalf("cross-location interference: %v", cs)
	}
}
