// Package atomizer infers atomicity-violation candidates from an execution
// trace — the analysis role that Atomizer and the atomic-set-serializability
// tools play in §1's generalization of active testing ("potential atomicity
// violations … could be provided by a static or dynamic analysis
// technique").
//
// The inference targets the lost-update pattern: a thread reads a location
// and later writes it with the same locks held (an intended-atomic
// read-modify-write block); any write to the same location by another
// thread under a disjoint lockset can interleave between the two halves.
// Each such (First, Second, Interferers) triple becomes a
// core.AtomicityTarget for phase 2 to confirm or refute.
package atomizer

import (
	"fmt"
	"sort"

	"racefuzzer/internal/event"
	"racefuzzer/internal/lockset"
)

// block is an observed read→write same-location block by one thread.
type block struct {
	first, second event.Stmt
	locks         lockset.Set
}

// writer is an observed write with its lockset.
type writer struct {
	stmt  event.Stmt
	locks lockset.Set
}

// Candidate is an inferred atomicity-violation target.
type Candidate struct {
	// Loc is the location the block reads and writes.
	Loc event.MemLoc
	// First and Second are the block's two accesses.
	First, Second event.Stmt
	// Interferers are other-thread write statements that can land between
	// them (disjoint locksets).
	Interferers []event.Stmt
}

func (c Candidate) String() string {
	return fmt.Sprintf("atomic block %s..%s on %s, interferers %v", c.First, c.Second, c.Loc, c.Interferers)
}

// Detector is a sched.Observer performing the inference.
type Detector struct {
	// lastRead[t][m] is thread t's most recent read of m (cleared by an
	// intervening write or unlock, which ends the candidate block).
	lastRead map[event.ThreadID]map[event.MemLoc]struct {
		stmt  event.Stmt
		locks lockset.Set
	}
	// blocks[m] collects read→write blocks per location, deduplicated.
	blocks map[event.MemLoc]map[[2]event.Stmt]block
	// writes[m] collects writer statements per location and thread.
	writes map[event.MemLoc]map[event.Stmt]writerInfo
}

type writerInfo struct {
	locks   lockset.Set
	threads map[event.ThreadID]bool
}

// New returns an empty detector.
func New() *Detector {
	return &Detector{
		lastRead: make(map[event.ThreadID]map[event.MemLoc]struct {
			stmt  event.Stmt
			locks lockset.Set
		}),
		blocks: make(map[event.MemLoc]map[[2]event.Stmt]block),
		writes: make(map[event.MemLoc]map[event.Stmt]writerInfo),
	}
}

// OnEvent implements sched.Observer.
func (d *Detector) OnEvent(e event.Event) {
	switch e.Kind {
	case event.KindMem:
		ls := lockset.Of(e.Locks...)
		tr := d.lastRead[e.Thread]
		if tr == nil {
			tr = make(map[event.MemLoc]struct {
				stmt  event.Stmt
				locks lockset.Set
			})
			d.lastRead[e.Thread] = tr
		}
		if e.Access == event.Read {
			tr[e.Loc] = struct {
				stmt  event.Stmt
				locks lockset.Set
			}{e.Stmt, ls}
			return
		}
		// A write: record it, and close any open read block on this location.
		wm := d.writes[e.Loc]
		if wm == nil {
			wm = make(map[event.Stmt]writerInfo)
			d.writes[e.Loc] = wm
		}
		wi, ok := wm[e.Stmt]
		if !ok {
			wi = writerInfo{locks: ls, threads: make(map[event.ThreadID]bool)}
		} else {
			wi.locks = wi.locks.Intersect(ls) // keep only locks held at every occurrence
		}
		wi.threads[e.Thread] = true
		wm[e.Stmt] = wi

		if r, ok := tr[e.Loc]; ok {
			// Read→write block with the locks common to both halves.
			common := r.locks.Intersect(ls)
			bm := d.blocks[e.Loc]
			if bm == nil {
				bm = make(map[[2]event.Stmt]block)
				d.blocks[e.Loc] = bm
			}
			k := [2]event.Stmt{r.stmt, e.Stmt}
			if prev, ok := bm[k]; ok {
				common = common.Intersect(prev.locks)
			}
			bm[k] = block{first: r.stmt, second: e.Stmt, locks: common}
			delete(tr, e.Loc)
		}

	case event.KindUnlock:
		// Releasing a lock ends open blocks whose protection depended on it —
		// conservatively, end every open read on this thread.
		delete(d.lastRead, e.Thread)
	}
}

// Candidates returns the inferred targets, deterministically ordered. A
// block is a candidate only if some other-thread writer statement has a
// lockset disjoint from the block's.
func (d *Detector) Candidates() []Candidate {
	var out []Candidate
	locs := make([]event.MemLoc, 0, len(d.blocks))
	for m := range d.blocks {
		locs = append(locs, m)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	for _, m := range locs {
		keys := make([][2]event.Stmt, 0, len(d.blocks[m]))
		for k := range d.blocks[m] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			b := d.blocks[m][k]
			var inter []event.Stmt
			stmts := make([]event.Stmt, 0, len(d.writes[m]))
			for s := range d.writes[m] {
				stmts = append(stmts, s)
			}
			sort.Slice(stmts, func(i, j int) bool { return stmts[i] < stmts[j] })
			for _, s := range stmts {
				wi := d.writes[m][s]
				if s == b.second && len(wi.threads) < 2 {
					continue // the block's own write by the block's own thread
				}
				if wi.locks.Disjoint(b.locks) {
					inter = append(inter, s)
				}
			}
			if len(inter) > 0 {
				out = append(out, Candidate{Loc: m, First: b.first, Second: b.second, Interferers: inter})
			}
		}
	}
	return out
}
