package sched

import (
	"testing"

	"racefuzzer/internal/event"
)

// quantumProbe records the order in which threads were granted.
type grantRecorder struct {
	grants []event.ThreadID
}

func (g *grantRecorder) OnEvent(e event.Event) {
	if e.Kind == event.KindMem {
		g.grants = append(g.grants, e.Thread)
	}
}

// nopsProgram forks n workers that each perform k instrumented writes to
// private locations (always enabled, no blocking).
func nopsProgram(n, k int) func(*Thread) {
	return func(mt *Thread) {
		s := mt.Scheduler()
		kids := make([]*Thread, n)
		for i := 0; i < n; i++ {
			loc := s.NewLoc("w")
			kids[i] = mt.Fork("w", func(c *Thread) {
				for j := 0; j < k; j++ {
					c.MemWrite(loc, event.StmtFor("qp:w"))
				}
			})
		}
		for _, kid := range kids {
			mt.Join(kid)
		}
	}
}

func TestQuantumPolicyRunsInSlices(t *testing.T) {
	rec := &grantRecorder{}
	res := Run(nopsProgram(3, 12), Config{
		Seed: 4, Policy: NewQuantumPolicy(4), Observers: []Observer{rec},
	})
	if res.Deadlock != nil || res.Aborted {
		t.Fatalf("bad run: %+v", res)
	}
	// Count maximal consecutive runs of the same thread: with quantum 4
	// (plus jitter < 4) the average run length must be well above 1
	// (random scheduling averages ≈1.x) and no run may exceed 2×quantum.
	runs, cur := 0, 0
	longest := 0
	for i, g := range rec.grants {
		if i == 0 || g != rec.grants[i-1] {
			runs++
			cur = 1
		} else {
			cur++
		}
		if cur > longest {
			longest = cur
		}
	}
	avg := float64(len(rec.grants)) / float64(runs)
	if avg < 2.5 {
		t.Fatalf("average slice length %.2f — not time-sliced", avg)
	}
	if longest > 8 {
		t.Fatalf("slice of length %d exceeds quantum+jitter bound", longest)
	}
}

func TestQuantumPolicyRoundRobinCoverage(t *testing.T) {
	rec := &grantRecorder{}
	Run(nopsProgram(4, 10), Config{
		Seed: 9, Policy: NewQuantumPolicy(3), Observers: []Observer{rec},
	})
	// Every worker must appear throughout the run, not be starved to the end.
	firstSeen := map[event.ThreadID]int{}
	for i, g := range rec.grants {
		if _, ok := firstSeen[g]; !ok {
			firstSeen[g] = i
		}
	}
	if len(firstSeen) != 4 {
		t.Fatalf("only %d workers ever ran", len(firstSeen))
	}
	for tid, idx := range firstSeen {
		if idx > len(rec.grants)/2 {
			t.Fatalf("thread %v first ran at position %d/%d — starved", tid, idx, len(rec.grants))
		}
	}
}

func TestQuantumPolicyDeterministic(t *testing.T) {
	run := func() []event.ThreadID {
		rec := &grantRecorder{}
		Run(nopsProgram(3, 8), Config{Seed: 11, Policy: NewQuantumPolicy(4), Observers: []Observer{rec}})
		return rec.grants
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant order diverged at %d", i)
		}
	}
}

func TestRunToBlockSticksUntilBlocked(t *testing.T) {
	rec := &grantRecorder{}
	Run(nopsProgram(3, 10), Config{
		Seed: 3, Policy: NewRunToBlockPolicy(0), Observers: []Observer{rec},
	})
	// With zero preemption and no blocking, each worker's writes must be one
	// contiguous run.
	switches := 0
	for i := 1; i < len(rec.grants); i++ {
		if rec.grants[i] != rec.grants[i-1] {
			switches++
		}
	}
	if switches != 2 {
		t.Fatalf("switches = %d, want exactly 2 for 3 run-to-completion workers", switches)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{
		NewRandomPolicy(), NewRunToBlockPolicy(0.1), NewQuantumPolicy(4), SequentialPolicy{},
	} {
		if p.Name() == "" {
			t.Fatalf("%T has empty name", p)
		}
	}
}
