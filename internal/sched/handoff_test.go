package sched

// Tests for the channel-free grant engine: handoff storms that hammer the
// mutex/condvar protocol (meant to run under -race), a fuzz-style
// determinism check over generated programs, and regressions for the
// force-release order of a dying thread's locks and for round counting
// without a flight recorder.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"racefuzzer/internal/event"
	"racefuzzer/internal/rng"
)

// flightLog is a test FlightObserver that renders every decision and action
// to strings, giving a comparable full causal trace without importing
// flightrec (which depends on this package).
type flightLog struct {
	lines []string
}

func (f *flightLog) OnDecision(d DecisionRecord) { f.lines = append(f.lines, d.String()) }
func (f *flightLog) OnAction(a ActionRecord)     { f.lines = append(f.lines, a.String()) }

// stormProgram builds a width-w program that stresses every handoff path at
// once: workers contend on a shared monitor with wait/notify, the main
// thread interrupts both waiting and running workers, and every thread
// performs interleaved memory ops and nops so the enabled set keeps
// changing shape.
func stormProgram(w int) func(*Thread) {
	sW := stmt("storm:w")
	sAcq := stmt("storm:acq")
	sRel := stmt("storm:rel")
	sWait := stmt("storm:wait")
	sSig := stmt("storm:sig")
	return func(mt *Thread) {
		s := mt.Scheduler()
		mon := s.NewLock("mon")
		loc := s.NewLoc("cell")
		pending := 0
		workers := make([]*Thread, w)
		for i := range workers {
			workers[i] = mt.Fork(fmt.Sprintf("w%d", i), func(c *Thread) {
				for r := 0; r < 4; r++ {
					c.Nop(sW)
					c.LockAcquire(mon, sAcq)
					c.MemWrite(loc, sW)
					pending++
					c.MonitorNotify(mon, sSig)
					c.LockRelease(mon, sRel)
					if c.IsInterrupted() {
						c.ClearInterrupt()
					}
				}
			})
		}
		waiter := mt.Fork("waiter", func(c *Thread) {
			c.LockAcquire(mon, sAcq)
			for pending < w {
				c.MemRead(loc, sW)
				func() {
					defer func() {
						// An interrupt may end the wait; swallow it and keep
						// waiting — the storm interrupts indiscriminately. The
						// monitor is held again when the wait throws, so the
						// loop can simply re-check the predicate.
						if r := recover(); r != nil {
							mp, ok := r.(modelPanic)
							if !ok || !errors.Is(mp.err, ErrInterruptedWait) {
								panic(r)
							}
						}
					}()
					c.MonitorWait(mon, sWait)
				}()
			}
			c.LockRelease(mon, sRel)
		})
		for i := 0; i < 2*w; i++ {
			mt.Nop(sW)
			mt.Interrupt(workers[i%w])
		}
		mt.Interrupt(waiter)
		for _, wk := range workers {
			mt.Join(wk)
		}
		mt.LockAcquire(mon, sAcq)
		mt.MonitorNotifyAll(mon, sSig)
		mt.LockRelease(mon, sRel)
		mt.Join(waiter)
	}
}

// TestHandoffStorm runs the storm at widths 1, 4 and 8 across seeds. Under
// -race this exercises the spin fast path, the condvar slow path, the inline
// trampoline and controller handoff adoption concurrently.
func TestHandoffStorm(t *testing.T) {
	for _, w := range []int{1, 4, 8} {
		w := w
		t.Run(fmt.Sprintf("width=%d", w), func(t *testing.T) {
			for seed := int64(1); seed <= 25; seed++ {
				res := Run(stormProgram(w), Config{Seed: seed, Name: "storm"})
				if res.Deadlock != nil {
					t.Fatalf("width %d seed %d: unexpected %v", w, seed, res.Deadlock)
				}
				if res.Aborted {
					t.Fatalf("width %d seed %d: aborted after %d steps", w, seed, res.Steps)
				}
				for _, ex := range res.Exceptions {
					t.Fatalf("width %d seed %d: unexpected exception %v", w, seed, ex)
				}
			}
		})
	}
}

// TestShutdownStorm aborts executions by step limit while threads sit in
// every blocked state (lock-blocked, waiting, join-blocked): the shutdown
// unwind must terminate every goroutine without leaks or races.
func TestShutdownStorm(t *testing.T) {
	for _, w := range []int{1, 4, 8} {
		for seed := int64(1); seed <= 25; seed++ {
			res := Run(stormProgram(w), Config{Seed: seed, MaxSteps: 20 + int(seed)})
			if !res.Aborted && res.Steps > 20+int(seed) {
				t.Fatalf("width %d seed %d: ran %d steps past limit", w, seed, res.Steps)
			}
		}
	}
}

// genProgram deterministically generates a random model program from g:
// a random number of workers executing random op sequences over shared
// locks and locations, with occasional nested forks, throws and interrupts.
// Equal generator seeds build behaviorally identical programs.
func genProgram(genSeed int64) func(*Thread) {
	sOp := stmt("gen:op")
	return func(mt *Thread) {
		g := rng.New(genSeed)
		s := mt.Scheduler()
		nLocks := 1 + g.Intn(3)
		nLocs := 1 + g.Intn(3)
		locks := make([]event.LockID, nLocks)
		for i := range locks {
			locks[i] = s.NewLock(fmt.Sprintf("L%d", i))
		}
		locs := make([]event.MemLoc, nLocs)
		for i := range locs {
			locs[i] = s.NewLoc(fmt.Sprintf("x%d", i))
		}
		var body func(depth int) func(*Thread)
		body = func(depth int) func(*Thread) {
			// Pre-draw the op script so every fork body is a pure function
			// of the generator stream, independent of schedule order.
			n := 3 + g.Intn(8)
			script := make([][2]int, n)
			for i := range script {
				script[i] = [2]int{g.Intn(10), g.Intn(nLocks * nLocs)}
			}
			forkChild := depth < 2 && g.Bool()
			var childBody func(*Thread)
			if forkChild {
				childBody = body(depth + 1)
			}
			throwAtEnd := g.Intn(4) == 0
			return func(c *Thread) {
				var kid *Thread
				if forkChild {
					kid = c.Fork("kid", childBody)
				}
				held := -1
				for _, op := range script {
					lk := locks[op[1]%nLocks]
					lc := locs[op[1]%nLocs]
					switch op[0] {
					case 0, 1:
						c.MemRead(lc, sOp)
					case 2, 3:
						c.MemWrite(lc, sOp)
					case 4:
						if held < 0 {
							c.LockAcquire(lk, sOp)
							held = int(lk)
						}
					case 5:
						if held >= 0 {
							c.LockRelease(event.LockID(held), sOp)
							held = -1
						}
					case 6:
						if kid != nil {
							c.Interrupt(kid)
						}
					case 7:
						if c.IsInterrupted() {
							c.ClearInterrupt()
						}
					default:
						c.Nop(sOp)
					}
				}
				if held >= 0 && !throwAtEnd {
					c.LockRelease(event.LockID(held), sOp)
				}
				if kid != nil {
					c.Join(kid)
				}
				if throwAtEnd {
					c.Throw(errors.New("gen: die"))
				}
			}
		}
		nWorkers := 1 + g.Intn(4)
		kids := make([]*Thread, nWorkers)
		bodies := make([]func(*Thread), nWorkers)
		for i := range kids {
			bodies[i] = body(0)
		}
		for i := range kids {
			kids[i] = mt.Fork("worker", bodies[i])
		}
		for _, k := range kids {
			mt.Join(k)
		}
	}
}

// traceRun executes one generated program and returns its full causal
// record: every event, every decision (with RNG draw counts), and the
// Result rendered to text.
func traceRun(genSeed, schedSeed int64) string {
	rec := &recorder{}
	fl := &flightLog{}
	res := Run(genProgram(genSeed), Config{
		Seed: schedSeed, Observers: []Observer{rec}, Flight: fl, Name: "gen",
	})
	var b strings.Builder
	for _, l := range rec.lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, l := range fl.lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "steps=%d threads=%d rounds=%d stalls=%d aborted=%v exceptions=%d deadlock=%v\n",
		res.Steps, res.Threads, res.Rounds, res.PolicyStalls, res.Aborted, len(res.Exceptions),
		res.Deadlock != nil)
	return b.String()
}

// TestGeneratedProgramDeterminism is the fuzz-style replay check: random
// programs, each run twice with the same seed, must produce byte-identical
// causal records — events, decisions, draw counts, and Result. This is the
// paper's lightweight-replay guarantee exercised across the fast path,
// handoff, thread death with held locks, and interrupts.
func TestGeneratedProgramDeterminism(t *testing.T) {
	for genSeed := int64(1); genSeed <= 30; genSeed++ {
		for _, schedSeed := range []int64{3, 77} {
			a := traceRun(genSeed, schedSeed)
			b := traceRun(genSeed, schedSeed)
			if a != b {
				t.Fatalf("gen %d seed %d: two runs diverged\n--- first:\n%s\n--- second:\n%s",
					genSeed, schedSeed, a, b)
			}
		}
	}
}

// TestThreadDeathReleasesLocksInOrder pins the force-release order of a
// thread that dies holding multiple locks: the unlock events must appear in
// ascending lock-ID order on every run. (The pre-fix implementation iterated
// a Go map, so the order — and therefore replayed traces — varied between
// runs of the same seed.)
func TestThreadDeathReleasesLocksInOrder(t *testing.T) {
	sAcq := stmt("rel:acq")
	prog := func(mt *Thread) {
		s := mt.Scheduler()
		l0 := s.NewLock("A")
		l1 := s.NewLock("B")
		child := mt.Fork("dying", func(c *Thread) {
			// Acquire in descending ID order so ascending release order can't
			// come from acquisition order by accident.
			c.LockAcquire(l1, sAcq)
			c.LockAcquire(l0, sAcq)
			c.Throw(errors.New("boom"))
		})
		mt.Join(child)
	}
	for seed := int64(1); seed <= 50; seed++ {
		rec := &recorder{}
		res := Run(prog, Config{Seed: seed, Observers: []Observer{rec}})
		if len(res.Exceptions) != 1 {
			t.Fatalf("seed %d: exceptions = %v", seed, res.Exceptions)
		}
		var rels []string
		for _, l := range rec.lines {
			if strings.Contains(l, "UNLOCK") {
				rels = append(rels, l)
			}
		}
		if len(rels) != 2 {
			t.Fatalf("seed %d: want 2 forced releases, got %v", seed, rels)
		}
		if !strings.Contains(rels[0], "UNLOCK(L0") || !strings.Contains(rels[1], "UNLOCK(L1") {
			t.Fatalf("seed %d: forced releases out of ascending lock order: %v", seed, rels)
		}
	}
}

// TestRoundsCountedWithoutRecorder pins the decision-round counter fix: the
// counter must advance identically whether or not a flight observer is
// attached (it used to advance only inside the recorder delivery path).
func TestRoundsCountedWithoutRecorder(t *testing.T) {
	var final int
	plain := Run(counterProgram(3, 10, &final), Config{Seed: 9})
	fl := &flightLog{}
	recorded := Run(counterProgram(3, 10, &final), Config{Seed: 9, Flight: fl})
	if plain.Rounds == 0 {
		t.Fatal("Rounds not counted without a recorder")
	}
	if plain.Rounds != recorded.Rounds {
		t.Fatalf("Rounds depends on observer wiring: %d without recorder, %d with",
			plain.Rounds, recorded.Rounds)
	}
	if got := len(fl.lines); got != recorded.Rounds {
		t.Fatalf("recorder saw %d decisions, Result.Rounds = %d", got, recorded.Rounds)
	}
	if plain.Steps != recorded.Steps {
		t.Fatalf("recorder perturbed the schedule: steps %d vs %d", plain.Steps, recorded.Steps)
	}
}
