package sched

import (
	"fmt"
	"testing"

	"racefuzzer/internal/schedprof"
)

// TestProfKindNamesAligned pins the contract between sched and schedprof:
// schedprof cannot import sched (sched imports schedprof), so it carries
// its own op-kind name table, which must stay in lockstep with OpKind.
func TestProfKindNamesAligned(t *testing.T) {
	if schedprof.NumOpKinds != int(OpInterrupt)+1 {
		t.Fatalf("schedprof.NumOpKinds = %d, want %d (OpInterrupt+1)",
			schedprof.NumOpKinds, int(OpInterrupt)+1)
	}
	for k := OpBegin; k <= OpInterrupt; k++ {
		if got, want := schedprof.KindName(int(k)), k.String(); got != want {
			t.Errorf("kind %d: schedprof name %q != sched name %q", int(k), got, want)
		}
	}
}

// TestProfCapturesEveryGrant runs a real workload with a trial attached and
// checks the profile matches the execution: one span per scheduler step,
// correct thread names, monotonic phases.
func TestProfCapturesEveryGrant(t *testing.T) {
	var final int
	tr := schedprof.NewTrial("counter", 11, 0)
	res := Run(counterProgram(3, 10, &final), Config{Seed: 11, Prof: tr})
	if final != 30 {
		t.Fatalf("counter = %d, want 30", final)
	}
	if got := tr.Spans(); got != int64(res.Steps) {
		t.Fatalf("profiled %d spans, scheduler ran %d steps", got, res.Steps)
	}
	tl := tr.Timeline()
	if len(tl.Threads) != res.Threads {
		t.Fatalf("timeline has %d threads, run created %d", len(tl.Threads), res.Threads)
	}
	if tl.Threads[0] != "main" || tl.Threads[1] != "w0" {
		t.Fatalf("thread names = %v", tl.Threads)
	}
	if !(tl.Phase[schedprof.PhaseLoopEnter] <= tl.Phase[schedprof.PhaseLoopExit] &&
		tl.Phase[schedprof.PhaseLoopExit] <= tl.Phase[schedprof.PhaseDone] &&
		tl.Phase[schedprof.PhaseDone] > 0) {
		t.Fatalf("phase marks not monotonic: %v", tl.Phase)
	}
	// Per-kind counts must reflect the program: 3 forks, 3 joins, and a
	// lock/read/write/unlock quartet per increment.
	counts := map[string]int64{}
	for _, sp := range tl.Spans {
		counts[schedprof.KindName(int(sp.Kind))]++
	}
	for kind, want := range map[string]int64{
		"fork": 3, "join": 3, "lock": 30, "unlock": 30, "write": 30, "begin": 4,
	} {
		if counts[kind] != want {
			t.Errorf("%s grants = %d, want %d (all: %v)", kind, counts[kind], want, counts)
		}
	}
	for i, sp := range tl.Spans {
		if sp.Step != int32(i+1) {
			t.Fatalf("span %d carries step %d, want %d", i, sp.Step, i+1)
		}
		if sp.DurNs < 0 || sp.WaitNs < 0 || sp.StartNs < 0 {
			t.Fatalf("span %d has negative time: %+v", i, sp)
		}
	}
}

// TestProfWaitLatencyIsLive pins the park→grant wait measurement: every
// thread parks before its op is granted, so waits must be positive on real
// clocks. Regression test for reading t.parkedNs after the granted thread
// had already re-parked (which made every wait negative, clamped to zero).
func TestProfWaitLatencyIsLive(t *testing.T) {
	var final int
	tr := schedprof.NewTrial("wait", 7, 0)
	Run(counterProgram(3, 10, &final), Config{Seed: 7, Prof: tr})
	tl := tr.Timeline()
	if len(tl.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	var zero int
	for _, sp := range tl.Spans {
		if sp.WaitNs == 0 {
			zero++
		}
	}
	// Every grant follows a park, so a dead probe shows as all-zero waits.
	// Individual spans may legitimately round to 0 on a coarse clock, but
	// the whole trial cannot.
	if zero == len(tl.Spans) {
		t.Fatalf("all %d spans have WaitNs == 0: wait probe is dead", len(tl.Spans))
	}
}

// TestProfDoesNotPerturbSchedule replays the same seed with and without a
// trial attached; the event streams must be identical (profiling draws no
// randomness and takes no scheduling decisions).
func TestProfDoesNotPerturbSchedule(t *testing.T) {
	run := func(prof *schedprof.Trial) []string {
		var final int
		rec := &recorder{}
		Run(counterProgram(3, 10, &final), Config{Seed: 99, Observers: []Observer{rec}, Prof: prof})
		return rec.lines
	}
	plain := run(nil)
	profiled := run(schedprof.NewTrial("p", 99, 0))
	if len(plain) != len(profiled) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(profiled))
	}
	for i := range plain {
		if plain[i] != profiled[i] {
			t.Fatalf("event %d differs:\n  plain:    %s\n  profiled: %s", i, plain[i], profiled[i])
		}
	}
}

// TestProfCollectorOnRealRuns drives pooled collector trials through real
// executions and sanity-checks the aggregate.
func TestProfCollectorOnRealRuns(t *testing.T) {
	c := schedprof.NewCollector()
	for seed := int64(0); seed < 5; seed++ {
		var final int
		tr := c.StartTrial(fmt.Sprintf("run%d", seed), seed)
		Run(counterProgram(2, 5, &final), Config{Seed: seed, Prof: tr})
		c.FinishTrial(tr)
	}
	s := c.Summary()
	if s.Trials != 5 {
		t.Fatalf("Trials = %d, want 5", s.Trials)
	}
	if s.Grants == 0 || s.Rounds == 0 || len(s.Ops) == 0 {
		t.Fatalf("empty summary from real runs: %+v", s)
	}
	if s.EnabledMax < 1 {
		t.Fatalf("EnabledMax = %d", s.EnabledMax)
	}
	if len(s.Phases) != 3 {
		t.Fatalf("Phases = %+v, want startup/loop/teardown", s.Phases)
	}
}
