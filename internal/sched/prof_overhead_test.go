package sched

import (
	"testing"

	"racefuzzer/internal/schedprof"
)

// profSink defeats dead-code elimination in the probe benchmarks.
var profSink int64

// profHarness mirrors the scheduler's layout: probes load a possibly-nil
// trial pointer from a struct field, exactly like s.prof.
type profHarness struct{ prof *schedprof.Trial }

var disabledHarness profHarness

// probeRound executes one scheduler step's worth of disabled probe sites:
// the park stamp, the round record, and the grant's two clock reads plus
// span write — each behind the same `!= nil` guard the scheduler uses.
func (h *profHarness) probeRound(i int) {
	if h.prof != nil {
		profSink += h.prof.Clock() // handlePark stamp
	}
	if h.prof != nil {
		h.prof.Round(2, 1)
	}
	if h.prof != nil {
		start := h.prof.Clock()
		h.prof.Grant(int(OpWrite), 0, i, start, 0, h.prof.Clock()-start)
	}
}

// TestProfDisabledOverhead asserts the tentpole invariant: with no trial
// attached, the schedprof probe sites add at most 1% to the measured cost
// of a real scheduler step. The step cost is measured from an actual
// workload run (two channel handoffs per grant dominate it); the probe cost
// is the nil-guarded sites in isolation, mirroring obs's TestNoopOverhead.
func TestProfDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceDetectorEnabled {
		t.Skip("race detector instruments calls; ns-level timing is meaningless")
	}
	var steps int
	run := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var final int
			res := Run(counterProgram(2, 10, &final), Config{Seed: 42})
			steps = res.Steps
		}
	})
	if steps == 0 {
		t.Fatal("workload ran zero steps")
	}
	perStep := float64(run.NsPerOp()) / float64(steps)

	baseline := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			profSink++
		}
	})
	nilPath := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			disabledHarness.probeRound(i)
			profSink++
		}
	})
	delta := float64(nilPath.NsPerOp()) - float64(baseline.NsPerOp())
	budget := 0.01 * perStep
	if budget < 2 {
		budget = 2 // benchmark timer noise floor
	}
	if delta > budget {
		t.Fatalf("disabled probes add %.2f ns/step, budget %.2f ns (1%% of %.0f ns/step; baseline %d ns, nil-path %d ns)",
			delta, budget, perStep, baseline.NsPerOp(), nilPath.NsPerOp())
	}
	t.Logf("step %.0f ns; disabled probes %.2f ns/step (%.3f%%)", perStep, delta, 100*delta/perStep)
}

// BenchmarkGrantLoopUnprofiled is the raw grant-loop cost: ns/op divided by
// the step count gives the per-grant round-trip the ROADMAP's hot-path
// optimization targets.
func BenchmarkGrantLoopUnprofiled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var final int
		Run(counterProgram(2, 10, &final), Config{Seed: 42})
	}
}

// BenchmarkGrantLoopProfiled is the same workload with a pooled collector
// trial attached: the cost of profiling when on.
func BenchmarkGrantLoopProfiled(b *testing.B) {
	c := schedprof.NewCollector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var final int
		tr := c.StartTrial("bench", 42)
		Run(counterProgram(2, 10, &final), Config{Seed: 42, Prof: tr})
		c.FinishTrial(tr)
	}
}
