// Package sched implements the deterministic cooperative scheduler that is
// this reproduction's substitute for the paper's JVM-level thread control
// (see DESIGN.md, "Substitutions"). Model threads run as goroutines, but
// every instrumented operation parks the thread until the controller grants
// it; exactly one model thread executes at a time, so a run is a function of
// the program and one RNG seed. That seed-determinism is what makes the
// paper's lightweight replay (§2.2) work: re-running with the same seed
// reproduces the schedule with no event recording.
//
// The scheduler exposes two extension points:
//
//   - Policy decides, at each quiescent point, which enabled thread(s)
//     execute next. The paper's RaceFuzzer algorithm is a Policy
//     (internal/core); uniform random scheduling is the baseline.
//   - Observer receives the event stream (MEM/SND/RCV/LOCK/UNLOCK) used by
//     the hybrid and happens-before race detectors (phase 1).
//
// The grant engine is allocation-free in steady state: the controller hands
// steps to threads over a mutex/condvar protocol with a spin fast path
// (thread.go), a single-runnable thread runs consecutive rounds inline
// without any goroutine switch (fastpath.go), per-round scratch (enabled
// set, View, grant buffer) lives on the Scheduler, and whole Scheduler/
// Thread trees are recycled through a sync.Pool across runs (pool.go).
package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"racefuzzer/internal/event"
	"racefuzzer/internal/lockset"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/rng"
	"racefuzzer/internal/schedprof"
)

// ErrIllegalMonitorState is thrown (as a model exception) when a thread
// unlocks, waits on, or notifies a monitor it does not hold.
var ErrIllegalMonitorState = errors.New("IllegalMonitorStateException")

// ErrInterruptedWait is thrown (as a model exception) by a monitor wait that
// was interrupted — java.lang.InterruptedException out of Object.wait.
var ErrInterruptedWait = errors.New("InterruptedException")

// DefaultMaxSteps bounds an execution; runs that exceed it are marked
// Aborted. Generous enough for every model in this repository.
const DefaultMaxSteps = 2_000_000

// lockState is the controller-side state of one monitor lock.
type lockState struct {
	name   string
	holder event.ThreadID
	depth  int
}

// Config parameterizes one execution.
type Config struct {
	// Seed fully determines the schedule (together with the program and the
	// policy). Equal seeds replay equal executions.
	Seed int64
	// Policy picks who runs next; nil means uniform random (RandomPolicy).
	Policy Policy
	// Observers receive the event stream.
	Observers []Observer
	// MaxSteps bounds the execution; 0 means DefaultMaxSteps.
	MaxSteps int
	// Name labels the execution in reports.
	Name string
	// Metrics, when non-nil, collects per-run telemetry: steps, context
	// switches, events by kind (it joins the observer stream), the
	// enabled-thread histogram and wall time. The resulting snapshot is
	// surfaced as Result.Stats. Nil disables all recording at no cost.
	Metrics *obs.RunMetrics
	// Flight, when non-nil, receives every scheduling decision and policy
	// action — the flight-recorder hook (internal/flightrec). If it also
	// implements Observer it is subscribed to the event stream automatically,
	// so the recording interleaves decisions, actions and events in causal
	// order. Nil disables decision recording at the cost of one nil check
	// per round.
	Flight FlightObserver
	// Introspect, when non-nil, registers the execution for live read-only
	// state snapshots (the observatory's /debug/sched): the controller
	// checks one atomic flag per round and publishes an immutable
	// RunSnapshot only when a reader requested one. Nil costs a single nil
	// check per round and never perturbs the schedule.
	Introspect *Introspector
	// Prof, when non-nil, records the run's performance timeline: per-grant
	// wait and service latency, enabled-set sizes, decision rounds and
	// phase marks (internal/schedprof). Recording is clock reads plus
	// writes into the trial's preallocated rings on the granting
	// goroutine, so it never perturbs the schedule; nil costs one nil check
	// per probe site, mirroring Metrics/Flight/Introspect.
	Prof *schedprof.Trial
}

// Exception records a model-level exception that killed a thread (the
// analogue of an uncaught Java exception in the paper's experiments).
type Exception struct {
	Thread event.ThreadID
	Name   string     // thread debug name
	Err    error      // the thrown error (modelPanic) or a wrapped Go panic
	Stmt   event.Stmt // statement of the thread's most recent granted op
	Step   int        // scheduler step at which the thread died
	Stack  string     // Go stack, for accidental (non-model) panics
}

func (e Exception) String() string {
	return fmt.Sprintf("%s(%s) at %s (step %d): %v", e.Thread, e.Name, e.Stmt, e.Step, e.Err)
}

// DeadlockInfo describes a real deadlock: every live thread is disabled.
type DeadlockInfo struct {
	Step    int
	Blocked []BlockedThread
}

// BlockedThread is one participant in a deadlock.
type BlockedThread struct {
	Thread  event.ThreadID
	Name    string
	Pending string // rendered pending op
	// Lock is the lock the thread is blocked on (NoLock when the thread is
	// blocked on a join or an unsignaled wait).
	Lock event.LockID
}

func (d *DeadlockInfo) String() string {
	s := fmt.Sprintf("deadlock at step %d:", d.Step)
	for _, b := range d.Blocked {
		s += fmt.Sprintf(" [%s(%s) blocked on %s]", b.Thread, b.Name, b.Pending)
	}
	return s
}

// Result summarizes one execution.
type Result struct {
	Name         string
	Seed         int64
	Steps        int
	Threads      int // threads created
	Locks        int
	Locations    int
	Exceptions   []Exception
	Deadlock     *DeadlockInfo
	Aborted      bool // hit MaxSteps (or external stop)
	PolicyStalls int  // times the scheduler force-granted past an empty policy decision
	// Rounds counts scheduling rounds (policy consultations, including
	// forced re-decisions). Unlike Steps it advances on empty decisions too,
	// and it is counted whether or not a flight recorder is attached.
	Rounds int
	// Stats carries the run's telemetry snapshot; nil unless Config.Metrics
	// was attached.
	Stats *obs.RunStats
}

// Scheduler drives one execution. Create with Run; a Scheduler must not be
// used across executions by callers (Run recycles them internally through a
// pool once a run has fully terminated).
type Scheduler struct {
	cfg       Config
	rngv      rng.Rand // scheduling stream storage (rng points here)
	workv     rng.Rand // workload stream storage (workRand points here)
	rng       *rng.Rand
	workRand  *rng.Rand
	policy    Policy
	observers []Observer
	maxSteps  int

	// mu serializes all scheduler state. The controller goroutine and model
	// threads hand execution to one another under it: ctrlCond is where the
	// controller awaits quiescence (inFlight == 0); each Thread carries its
	// own grant condvar sharing mu (see Thread.awaitGrant for the spin fast
	// path that usually skips the condvar entirely).
	mu       sync.Mutex
	ctrlCond sync.Cond

	threads  []*Thread
	locks    []lockState
	locNames []string
	// locOwner parallels locNames: -1 for ordinary locations, else the
	// owning thread index of a lazily named interrupt-status location (the
	// name is formatted in LocName on demand instead of per-thread per-run).
	locOwner []int32

	flight    FlightObserver
	prof      *schedprof.Trial
	rounds    int
	inspSlot  *runSlot
	finalSnap *RunSnapshot // captured at loop exit, before teardown

	steps       int
	inFlight    int
	aborted     atomic.Bool
	metrics     *obs.RunMetrics
	lastGranted event.ThreadID
	switches    int

	nextMsg    event.MsgID
	exceptions []Exception
	stalls     int
	deadlock   *DeadlockInfo
	abortedRun bool

	// Per-round scratch, reused so steady-state rounds allocate nothing.
	enabledBuf []event.ThreadID // enabledThreads result
	grantBuf   [1]event.ThreadID
	waitBuf    []*Thread // waitSet result
	aliveBuf   []*Thread // aliveThreads result
	view       View

	// Inline fast-path state (fastpath.go). emptyRounds is the consecutive
	// empty-decision counter (shared by the controller loop and the inline
	// trampoline so the forced-progress grace period is path-independent).
	// batchLeft is how many grants of the controller's current decision
	// remain after the grant in progress: the trampoline only runs when it
	// is zero, i.e. the controller is between decisions. handoffGrants is a
	// decision made inline that the inline thread could not apply itself;
	// the controller adopts it verbatim (no re-decide, no re-record).
	emptyRounds   int
	batchLeft     int
	handoffGrants []event.ThreadID
	handoffBuf    []event.ThreadID
}

// Run executes main as the body of thread T0 under cfg and returns the
// execution's Result. It always returns with every model goroutine
// terminated (no leaks), including on deadlock and step-limit abort.
func Run(main func(*Thread), cfg Config) *Result {
	s := getScheduler()
	defer putScheduler(s)
	s.reset(cfg)
	var start time.Time
	if s.metrics != nil {
		start = time.Now()
	}
	if cfg.Introspect != nil {
		s.inspSlot = cfg.Introspect.register()
		defer func() {
			// Prefer the snapshot captured at loop exit: shutdown has since
			// unwound any blocked threads.
			final := s.finalSnap
			if final == nil {
				final = s.buildSnapshot(true)
			}
			cfg.Introspect.unregister(s.inspSlot, final)
		}()
	}
	s.mu.Lock()
	s.startThread("main", main)
	if s.prof != nil {
		s.prof.Mark(schedprof.PhaseLoopEnter)
	}
	s.loop()
	s.mu.Unlock()
	if s.prof != nil {
		s.prof.Mark(schedprof.PhaseLoopExit)
	}
	if s.metrics != nil {
		s.metrics.SetWall(time.Since(start))
		s.metrics.SetSteps(s.steps)
		s.metrics.SetSwitches(s.switches)
	}
	res := s.result()
	if s.prof != nil {
		s.prof.Mark(schedprof.PhaseDone)
	}
	return res
}

// NewLoc allocates a fresh shared-memory location. Called by the conc
// package from model-thread context; execution is serialized, so a plain
// counter is deterministic.
func (s *Scheduler) NewLoc(name string) event.MemLoc {
	loc := event.MemLoc(len(s.locNames))
	s.locNames = append(s.locNames, name)
	s.locOwner = append(s.locOwner, -1)
	return loc
}

// newIntrLoc reserves thread tidx's interrupt-status location without
// formatting its debug name; LocName renders it on demand.
func (s *Scheduler) newIntrLoc(tidx int) event.MemLoc {
	loc := event.MemLoc(len(s.locNames))
	s.locNames = append(s.locNames, "")
	s.locOwner = append(s.locOwner, int32(tidx))
	return loc
}

// LocName returns the debug name of loc.
func (s *Scheduler) LocName(loc event.MemLoc) string {
	if int(loc) < 0 || int(loc) >= len(s.locNames) {
		return loc.String()
	}
	if ti := s.locOwner[loc]; ti >= 0 {
		return fmt.Sprintf("%s(T%d).interrupt", s.threads[ti].name, ti)
	}
	return s.locNames[loc]
}

// NewLock allocates a fresh monitor lock.
func (s *Scheduler) NewLock(name string) event.LockID {
	id := event.LockID(len(s.locks))
	s.locks = append(s.locks, lockState{name: name, holder: event.NoThread})
	return id
}

// Seed returns the execution's seed (for findings/replay).
func (s *Scheduler) Seed() int64 { return s.cfg.Seed }

// Step returns the current step count.
func (s *Scheduler) Step() int { return s.steps }

// startThread creates (or recycles) the thread with the next index and
// launches its goroutine. Called with mu held (fork grants) or before the
// controller loop starts (T0).
func (s *Scheduler) startThread(name string, body func(*Thread)) *Thread {
	idx := len(s.threads)
	var t *Thread
	if idx < cap(s.threads) {
		// Pool reuse: the backing array keeps Thread structs from earlier
		// runs; slots past a grown append can still be nil.
		s.threads = s.threads[:idx+1]
		t = s.threads[idx]
	}
	if t == nil {
		t = &Thread{}
		if idx < len(s.threads) {
			s.threads[idx] = t
		} else {
			s.threads = append(s.threads, t)
		}
	}
	t.id = event.ThreadID(idx)
	t.name = name
	t.s = s
	t.pending = Op{}
	t.status = tsRunning
	t.held = lockset.Empty()
	t.savedDepth = 0
	t.notified = false
	t.poison = nil
	t.forkResult = nil
	t.exitedFlag = false
	t.panicVal = nil
	t.panicStack = ""
	t.lastStmt = event.NoStmt
	t.parkedNs = 0
	t.openGrant = false
	t.interruptedFlag = false
	t.wokenByIntr = false
	t.exitMsg = 0
	if t.grantCond.L == nil {
		t.grantCond.L = &s.mu
	}
	atomic.StoreUint32(&t.grantFlag, 0)
	t.intrLoc = s.newIntrLoc(idx)
	if s.prof != nil {
		s.prof.ThreadName(idx, name)
	}
	s.inFlight++
	go t.run(body)
	return t
}

// loop is the controller: wait for quiescence, ask the policy, grant,
// repeat. Runs with mu held; waiting releases it. When the single-runnable
// trampoline (fastpath.go) has been driving rounds inline, the controller
// either keeps sleeping (nothing to do) or wakes to adopt a handed-off
// decision it applies without re-deciding.
func (s *Scheduler) loop() {
	s.awaitQuiescence()
	for {
		if g := s.handoffGrants; g != nil {
			// A decision made by the inline trampoline that the parking
			// thread could not apply itself. Already recorded; apply as-is.
			s.handoffGrants = nil
			s.applyGrants(g)
			continue
		}
		s.pollIntrospect()
		enabled := s.enabledThreads()
		if len(enabled) == 0 {
			// Capture the final introspection snapshot before shutdown: the
			// teardown unwinds blocked threads, which would erase the very
			// wait-for graph a deadlock snapshot exists to show.
			s.finalizeIntrospect()
			if alive := s.aliveThreads(); len(alive) > 0 {
				s.recordDeadlock(alive)
				s.shutdown()
			}
			return
		}
		if s.steps >= s.maxSteps {
			s.finalizeIntrospect()
			s.shutdown()
			return
		}
		if s.metrics != nil {
			s.metrics.ObserveEnabled(len(enabled))
		}
		s.view.Step = s.steps
		s.view.Enabled = enabled
		dec := s.policy.Step(&s.view, s.rng)
		s.recordDecision(enabled, dec.Grants, false)
		if s.prof != nil {
			s.prof.Round(len(enabled), len(dec.Grants))
		}
		if len(dec.Grants) == 0 {
			s.emptyRounds++
			// A policy may legitimately return no grants for a round while it
			// adjusts internal state (e.g. RaceFuzzer postponing a thread),
			// but never indefinitely: force progress after a grace period.
			if s.emptyRounds > 2*len(s.threads)+16 {
				s.stalls++
				s.grantBuf[0] = enabled[s.rng.Intn(len(enabled))]
				forced := s.grantBuf[:1]
				s.recordDecision(enabled, forced, true)
				if s.prof != nil {
					s.prof.ForcedGrant()
				}
				s.applyGrants(forced)
				s.emptyRounds = 0
			}
			continue
		}
		s.emptyRounds = 0
		s.applyGrants(dec.Grants)
	}
}

// applyGrants grants each enabled thread of one decision in order. During
// the final grant's quiescence wait batchLeft is zero, so the trampoline
// may take over (and may overwrite decision scratch buffers — safe, because
// the remaining iterations only test enabledness of already-read IDs).
func (s *Scheduler) applyGrants(g []event.ThreadID) {
	for i, tid := range g {
		if s.isEnabled(tid) {
			s.batchLeft = len(g) - i - 1
			s.grant(tid)
		}
	}
	s.batchLeft = 0
}

// recordDecision counts one scheduling round and delivers its
// DecisionRecord to the flight observer, if any. The round counter advances
// unconditionally — round numbering must not depend on which observers are
// wired. The enabled set is copied: the caller's slice is scheduler scratch,
// but a recorder keeps records beyond the round.
func (s *Scheduler) recordDecision(enabled, grants []event.ThreadID, forced bool) {
	round := s.rounds
	s.rounds++
	if s.flight == nil {
		return
	}
	s.flight.OnDecision(DecisionRecord{
		Round:   round,
		Step:    s.steps,
		Enabled: append([]event.ThreadID(nil), enabled...),
		Grants:  append([]event.ThreadID(nil), grants...),
		Draws:   s.rng.Draws(),
		Forced:  forced,
	})
}

// grant lets thread tid perform its pending op from the controller: apply
// the op's effect, wake the goroutine, and wait until every unblocked
// goroutine has parked again.
func (s *Scheduler) grant(tid event.ThreadID) {
	t := s.threads[tid]
	s.applyGrant(t)
	s.wake(t)
	s.awaitQuiescence()
}

// wake hands the step to a granted (or shutdown-unwound) thread: the atomic
// store is the release the spin fast path synchronizes on, the Signal
// covers the condvar slow path. Callers hold mu.
func (s *Scheduler) wake(t *Thread) {
	atomic.StoreUint32(&t.grantFlag, 1)
	t.grantCond.Signal()
}

// awaitQuiescence blocks the controller until no model goroutine is
// unblocked. Parking threads signal ctrlCond when inFlight hits zero.
func (s *Scheduler) awaitQuiescence() {
	for s.inFlight > 0 {
		s.ctrlCond.Wait()
	}
}

// applyGrant applies thread t's pending op to the synchronization state,
// emits its events, and marks t running. It does not wake t: the controller
// path follows with wake, the inline fast path simply returns into the
// thread's own call stack. Callers hold mu.
func (s *Scheduler) applyGrant(t *Thread) {
	tid := t.id
	op := t.pending
	s.steps++
	if tid != s.lastGranted {
		if s.lastGranted != event.NoThread {
			s.switches++
		}
		s.lastGranted = tid
	}
	t.lastStmt = op.Stmt

	switch op.Kind {
	case OpBegin, OpNop:
		// No synchronization effect.

	case OpRead, OpWrite:
		s.emit(event.Event{Kind: event.KindMem, Thread: tid, Stmt: op.Stmt,
			Loc: op.Loc, Access: op.Access, Locks: t.held.Members()})

	case OpLock:
		l := &s.locks[op.Lock]
		if l.holder == tid {
			l.depth++
		} else {
			l.holder = tid
			l.depth = 1
			t.held = t.held.Add(op.Lock)
		}
		s.emit(event.Event{Kind: event.KindLock, Thread: tid, Stmt: op.Stmt, Lock: op.Lock,
			Locks: t.held.Members()})

	case OpUnlock:
		l := &s.locks[op.Lock]
		if l.holder != tid {
			t.poison = fmt.Errorf("%w: unlock of %s(%s) not held by %s",
				ErrIllegalMonitorState, op.Lock, l.name, tid)
			break
		}
		l.depth--
		if l.depth == 0 {
			l.holder = event.NoThread
			t.held = t.held.Remove(op.Lock)
		}
		s.emit(event.Event{Kind: event.KindUnlock, Thread: tid, Stmt: op.Stmt, Lock: op.Lock})

	case OpWaitEnter:
		l := &s.locks[op.Lock]
		if l.holder != tid {
			t.poison = fmt.Errorf("%w: wait on %s(%s) not held by %s",
				ErrIllegalMonitorState, op.Lock, l.name, tid)
			break
		}
		if t.interruptedFlag {
			// Java: wait() throws immediately when entered with the
			// interrupt status set, clearing the status; the monitor stays
			// held while the exception propagates.
			t.interruptedFlag = false
			t.poison = fmt.Errorf("%w: wait entered with interrupt status set", ErrInterruptedWait)
			break
		}
		t.savedDepth = l.depth
		l.holder = event.NoThread
		l.depth = 0
		t.held = t.held.Remove(op.Lock)
		t.notified = false
		s.emit(event.Event{Kind: event.KindUnlock, Thread: tid, Stmt: op.Stmt, Lock: op.Lock})

	case OpWaitResume:
		l := &s.locks[op.Lock]
		l.holder = tid
		l.depth = t.savedDepth
		t.held = t.held.Add(op.Lock)
		t.notified = false
		s.emit(event.Event{Kind: event.KindLock, Thread: tid, Stmt: op.Stmt, Lock: op.Lock,
			Locks: t.held.Members()})
		if t.wokenByIntr {
			// The wait was ended by an interrupt: after reacquiring the
			// monitor, the wait throws and the interrupt status is cleared.
			t.wokenByIntr = false
			t.interruptedFlag = false
			t.poison = fmt.Errorf("%w: wait interrupted", ErrInterruptedWait)
		}

	case OpNotify, OpNotifyAll:
		l := &s.locks[op.Lock]
		if l.holder != tid {
			t.poison = fmt.Errorf("%w: notify on %s(%s) not held by %s",
				ErrIllegalMonitorState, op.Lock, l.name, tid)
			break
		}
		waiters := s.waitSet(op.Lock)
		if len(waiters) > 0 {
			var woken []*Thread
			if op.Kind == OpNotify {
				woken = waiters[:1]
				woken[0] = waiters[s.rng.Intn(len(waiters))]
			} else {
				woken = waiters
			}
			for _, w := range woken {
				w.status = tsNotified
				w.notified = true
				g := s.nextMsgID()
				s.emit(event.Event{Kind: event.KindSnd, Thread: tid, Msg: g})
				s.emit(event.Event{Kind: event.KindRcv, Thread: w.id, Msg: g})
			}
		}

	case OpFork:
		child := s.startThread(op.forkName, op.forkBody)
		t.forkResult = child
		g := s.nextMsgID()
		s.emit(event.Event{Kind: event.KindSnd, Thread: tid, Msg: g})
		s.emit(event.Event{Kind: event.KindRcv, Thread: child.id, Msg: g})

	case OpInterrupt:
		target := s.threads[op.Target]
		// The interrupt is a write to the target's interrupt status.
		s.emit(event.Event{Kind: event.KindMem, Thread: tid, Stmt: op.Stmt,
			Loc: target.intrLoc, Access: event.Write, Locks: t.held.Members()})
		if target.status != tsDead {
			target.interruptedFlag = true
			if target.status == tsWaiting {
				target.status = tsNotified
				target.notified = true
				target.wokenByIntr = true
				g := s.nextMsgID()
				s.emit(event.Event{Kind: event.KindSnd, Thread: tid, Msg: g})
				s.emit(event.Event{Kind: event.KindRcv, Thread: target.id, Msg: g})
			}
		}

	case OpJoin:
		g := s.threads[op.Target].exitMsg
		if g == 0 {
			// Joining a live thread is a scheduling bug: join is only enabled
			// once the target died and registered its exit message.
			panic(fmt.Sprintf("sched: join of live thread %s granted", op.Target))
		}
		s.emit(event.Event{Kind: event.KindRcv, Thread: tid, Msg: g})
	}

	t.status = tsRunning
	s.inFlight++
	if s.prof != nil {
		// Open the grant's latency record; the thread's next park closes it
		// (handlePark). Wait is park->grant; service is grant->next park
		// (the op's effect plus the thread's uninstrumented run to its next
		// yield).
		now := s.prof.Clock()
		t.openGrant = true
		t.gKind = int(op.Kind)
		t.gStep = s.steps
		t.gStartNs = now
		t.gWaitNs = now - t.parkedNs
	}
}

// handlePark processes one park (or exit) notification. Runs on the parking
// thread's goroutine with mu held.
func (s *Scheduler) handlePark(t *Thread) {
	s.inFlight--
	if s.prof != nil {
		now := s.prof.Clock()
		t.parkedNs = now
		if t.openGrant {
			t.openGrant = false
			s.prof.Grant(t.gKind, int(t.id), t.gStep, t.gStartNs, t.gWaitNs, now-t.gStartNs)
		}
	}
	if t.exitedFlag {
		s.threadDied(t)
		return
	}
	if t.pending.Kind == OpWaitResume && !t.notified {
		t.status = tsWaiting
	} else if t.pending.Kind == OpWaitResume && t.notified {
		t.status = tsNotified
	} else {
		t.status = tsParked
	}
}

// threadDied finalizes a dead thread: force-release its monitors (HotSpot
// unwinds synchronized blocks on uncaught exceptions; our models pair every
// acquire with a release, so on clean exit this is a no-op), record any
// model exception, and register the exit message joiners will receive. The
// held set is released in ascending lock-ID order — the set is sorted — so
// the unlock event sequence is identical on every replay of the same seed.
func (s *Scheduler) threadDied(t *Thread) {
	t.status = tsDead
	for _, lid := range t.held.Members() {
		l := &s.locks[lid]
		if l.holder == t.id {
			l.holder = event.NoThread
			l.depth = 0
			s.emit(event.Event{Kind: event.KindUnlock, Thread: t.id, Stmt: t.lastStmt, Lock: lid})
		}
	}
	t.held = lockset.Empty()
	if t.panicVal != nil {
		err, _ := asModelError(t.panicVal)
		exc := Exception{
			Thread: t.id, Name: t.name, Err: err, Stmt: t.lastStmt, Step: s.steps,
			Stack: t.panicStack,
		}
		s.exceptions = append(s.exceptions, exc)
		t.panicVal = nil
	}
	g := s.nextMsgID()
	t.exitMsg = g
	s.emit(event.Event{Kind: event.KindSnd, Thread: t.id, Msg: g})
}

func asModelError(v any) (err error, isModel bool) {
	if mp, ok := v.(modelPanic); ok {
		return mp.err, true
	}
	if e, ok := v.(error); ok {
		return fmt.Errorf("model thread panicked: %w", e), false
	}
	return fmt.Errorf("model thread panicked: %v", v), false
}

// waitSet returns the threads waiting on lock l's monitor, in thread order.
// The returned slice is scheduler scratch, valid until the next call.
func (s *Scheduler) waitSet(l event.LockID) []*Thread {
	out := s.waitBuf[:0]
	for _, t := range s.threads {
		if t.status == tsWaiting && t.pending.Kind == OpWaitResume && t.pending.Lock == l {
			out = append(out, t)
		}
	}
	s.waitBuf = out
	return out
}

// isEnabled implements the paper's Enabled(s) membership test for one
// thread: parked and not blocked by a lock, a live join target, or an
// unsignaled wait.
func (s *Scheduler) isEnabled(tid event.ThreadID) bool {
	t := s.threads[tid]
	switch t.status {
	case tsParked:
	case tsNotified:
		l := s.locks[t.pending.Lock]
		return l.holder == event.NoThread
	default:
		return false
	}
	switch t.pending.Kind {
	case OpLock:
		l := s.locks[t.pending.Lock]
		return l.holder == event.NoThread || l.holder == tid
	case OpJoin:
		return s.threads[t.pending.Target].status == tsDead
	default:
		return true
	}
}

// enabledThreads returns Enabled(s) in ascending thread order. The returned
// slice is scheduler scratch, valid until the next scheduling round.
func (s *Scheduler) enabledThreads() []event.ThreadID {
	out := s.enabledBuf[:0]
	for _, t := range s.threads {
		if s.isEnabled(t.id) {
			out = append(out, t.id)
		}
	}
	s.enabledBuf = out
	return out
}

// aliveThreads returns Alive(s). The returned slice is scheduler scratch,
// valid until the next call.
func (s *Scheduler) aliveThreads() []*Thread {
	out := s.aliveBuf[:0]
	for _, t := range s.threads {
		if t.status != tsDead {
			out = append(out, t)
		}
	}
	s.aliveBuf = out
	return out
}

// aliveCount returns |Alive(s)| without touching scratch storage.
func (s *Scheduler) aliveCount() int {
	n := 0
	for _, t := range s.threads {
		if t.status != tsDead {
			n++
		}
	}
	return n
}

func (s *Scheduler) recordDeadlock(alive []*Thread) {
	info := &DeadlockInfo{Step: s.steps}
	for _, t := range alive {
		b := BlockedThread{Thread: t.id, Name: t.name, Pending: t.pending.String(), Lock: event.NoLock}
		switch t.pending.Kind {
		case OpLock, OpWaitResume:
			b.Lock = t.pending.Lock
		}
		info.Blocked = append(info.Blocked, b)
	}
	sort.Slice(info.Blocked, func(i, j int) bool { return info.Blocked[i].Thread < info.Blocked[j].Thread })
	s.deadlock = info
}

// shutdown aborts every live model goroutine so Run never leaks. Threads
// blocked in yield observe the abort flag when woken and unwind via the
// abort sentinel. Runs with mu held.
func (s *Scheduler) shutdown() {
	s.aborted.Store(true)
	s.abortedRun = true
	for {
		s.awaitQuiescence()
		var next *Thread
		for _, t := range s.threads {
			if t.status != tsDead && t.status != tsRunning {
				next = t
				break
			}
		}
		if next == nil {
			return
		}
		next.status = tsRunning
		s.inFlight++
		s.wake(next)
	}
}

func (s *Scheduler) nextMsgID() event.MsgID {
	s.nextMsg++
	return s.nextMsg
}

func (s *Scheduler) emit(e event.Event) {
	e.Step = s.steps
	for _, o := range s.observers {
		o.OnEvent(e)
	}
}

func (s *Scheduler) result() *Result {
	return &Result{
		Name:         s.cfg.Name,
		Seed:         s.cfg.Seed,
		Steps:        s.steps,
		Threads:      len(s.threads),
		Locks:        len(s.locks),
		Locations:    len(s.locNames),
		Exceptions:   s.exceptions,
		Deadlock:     s.deadlock,
		Aborted:      s.abortedRun,
		PolicyStalls: s.stalls,
		Rounds:       s.rounds,
		Stats:        s.metrics.Stats(),
	}
}
