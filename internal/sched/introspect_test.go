package sched

import (
	"strings"
	"testing"
	"time"

	"racefuzzer/internal/event"
)

// joinCycleProgram deadlocks deterministically under any schedule: main
// joins its child while the child joins main.
func joinCycleProgram() func(*Thread) {
	return func(t *Thread) {
		a := t.Fork("a", func(c *Thread) { c.Join(t) })
		t.Join(a)
	}
}

// lockJoinProgram deadlocks deterministically with one lock edge and one
// join edge: main holds L and joins a child that is blocked acquiring L.
func lockJoinProgram() func(*Thread) {
	return func(t *Thread) {
		lk := t.Scheduler().NewLock("L")
		t.LockAcquire(lk, stmt("main-acq"))
		w := t.Fork("w", func(c *Thread) {
			c.LockAcquire(lk, stmt("w-acq"))
			c.LockRelease(lk, stmt("w-rel"))
		})
		t.Join(w)
	}
}

func TestIntrospectorFinalSnapshotShowsJoinCycle(t *testing.T) {
	in := NewIntrospector()
	res := Run(joinCycleProgram(), Config{Seed: 1, Introspect: in})
	if res.Deadlock == nil {
		t.Fatal("join cycle did not deadlock")
	}
	snap := in.Snapshot(time.Second)
	if len(snap.Active) != 0 {
		t.Fatalf("%d active runs after completion", len(snap.Active))
	}
	last := snap.LastCompleted
	if last == nil {
		t.Fatal("no final snapshot retained")
	}
	if !last.Done {
		t.Error("final snapshot not marked done")
	}
	if last.RunID == 0 {
		t.Error("final snapshot has no run id")
	}
	if len(last.WaitFor) != 2 {
		t.Fatalf("wait-for graph has %d edges, want 2: %+v", len(last.WaitFor), last.WaitFor)
	}
	for _, e := range last.WaitFor {
		if e.Lock != event.NoLock {
			t.Errorf("join edge %+v carries a lock", e)
		}
	}
	if len(last.Cycles) != 1 || len(last.Cycles[0]) != 2 {
		t.Fatalf("cycles = %v, want one 2-cycle", last.Cycles)
	}
	for _, ts := range last.Threads {
		if ts.Status == "dead" {
			continue
		}
		if !strings.HasPrefix(ts.BlockedOn, "join ") {
			t.Errorf("thread %s blockedOn = %q, want join edge", ts.Name, ts.BlockedOn)
		}
	}
}

func TestIntrospectorFinalSnapshotShowsLockEdgeAndHolders(t *testing.T) {
	in := NewIntrospector()
	res := Run(lockJoinProgram(), Config{Seed: 7, Introspect: in})
	if res.Deadlock == nil {
		t.Fatal("lock/join program did not deadlock")
	}
	last := in.Snapshot(time.Second).LastCompleted
	if last == nil {
		t.Fatal("no final snapshot retained")
	}
	var lockEdges, joinEdges int
	for _, e := range last.WaitFor {
		if e.Lock == event.NoLock {
			joinEdges++
		} else {
			lockEdges++
			if e.LockName != "L" {
				t.Errorf("lock edge names %q, want L", e.LockName)
			}
		}
	}
	if lockEdges != 1 || joinEdges != 1 {
		t.Fatalf("edges = %d lock + %d join, want 1 + 1: %+v", lockEdges, joinEdges, last.WaitFor)
	}
	if len(last.Cycles) != 1 || len(last.Cycles[0]) != 2 {
		t.Fatalf("cycles = %v, want one 2-cycle", last.Cycles)
	}
	// The held-locks table must show main holding L, and the blocked child
	// must say so.
	if len(last.Locks) != 1 || last.Locks[0].Name != "L" {
		t.Fatalf("locks = %+v, want held lock L", last.Locks)
	}
	var sawHolder, sawBlocked bool
	for _, ts := range last.Threads {
		if len(ts.Held) == 1 && ts.Held[0] == "L" {
			sawHolder = true
			if ts.ID != last.Locks[0].Holder {
				t.Errorf("held-locks view disagrees with lock table: %v vs %v", ts.ID, last.Locks[0].Holder)
			}
		}
		if ts.BlockedOn == "lock L" {
			sawBlocked = true
		}
	}
	if !sawHolder || !sawBlocked {
		t.Fatalf("holder/blocked views missing (holder %v, blocked %v): %+v", sawHolder, sawBlocked, last.Threads)
	}
}

func TestIntrospectorLiveSnapshotOfRunningExecution(t *testing.T) {
	in := NewIntrospector()
	done := make(chan *Result, 1)
	var final int
	go func() {
		done <- Run(counterProgram(8, 5000, &final), Config{Seed: 3, Introspect: in})
	}()

	var live *RunSnapshot
	for i := 0; i < 400 && live == nil; i++ {
		s := in.Snapshot(50 * time.Millisecond)
		if len(s.Active) > 0 {
			live = &s.Active[0]
		} else {
			// Give the background run a beat to register its slot.
			time.Sleep(time.Millisecond)
		}
		select {
		case res := <-done:
			if res.Deadlock != nil || res.Aborted {
				t.Fatalf("background run failed: %+v", res)
			}
			done <- res // keep for the drain below
			i = 400     // run ended; stop polling
		default:
		}
	}
	if live == nil {
		t.Skip("run completed before a live snapshot could be requested")
	}
	if live.Done {
		t.Error("live snapshot marked done")
	}
	if live.Policy == "" || live.Threads == nil {
		t.Errorf("live snapshot incomplete: %+v", live)
	}
	if live.Step <= 0 {
		t.Errorf("live snapshot at step %d, want > 0", live.Step)
	}
	<-done
	if final != 8*5000 {
		t.Fatalf("counter = %d, want %d", final, 8*5000)
	}
}

// postponeStub wraps a policy with a fixed postponed-set report.
type postponeStub struct {
	Policy
	postponed []event.ThreadID
}

func (p postponeStub) PostponedThreads() []event.ThreadID { return p.postponed }

func TestIntrospectorReportsPostponedThreads(t *testing.T) {
	in := NewIntrospector()
	var final int
	pol := postponeStub{Policy: NewRandomPolicy(), postponed: []event.ThreadID{1}}
	Run(counterProgram(2, 3, &final), Config{Seed: 5, Policy: pol, Introspect: in})
	last := in.Snapshot(time.Second).LastCompleted
	if last == nil {
		t.Fatal("no final snapshot")
	}
	var sawPostponed bool
	for _, ts := range last.Threads {
		if ts.ID == 1 && ts.Postponed {
			sawPostponed = true
		}
		if ts.ID != 1 && ts.Postponed {
			t.Errorf("thread %v postponed, reporter only named 1", ts.ID)
		}
	}
	if !sawPostponed {
		t.Fatal("postponed thread not reflected in snapshot")
	}
}

func TestIntrospectorNilSafety(t *testing.T) {
	var in *Introspector
	if s := in.Snapshot(time.Millisecond); len(s.Active) != 0 || s.LastCompleted != nil {
		t.Fatalf("nil introspector returned state: %+v", s)
	}
	in.unregister(nil, nil)
	if slot := in.register(); slot != nil {
		t.Fatal("nil introspector handed out a slot")
	}
	// A run with no introspector costs only the nil check — and works.
	var final int
	res := Run(counterProgram(2, 2, &final), Config{Seed: 9})
	if res.Deadlock != nil || final != 4 {
		t.Fatalf("plain run broken: %+v, final %d", res, final)
	}
}
