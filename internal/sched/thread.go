package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"racefuzzer/internal/event"
	"racefuzzer/internal/lockset"
	"racefuzzer/internal/rng"
)

// threadStatus is the controller-side lifecycle state of a model thread.
type threadStatus int

const (
	// tsRunning: the thread's goroutine is unblocked (it was just granted an
	// op, or just forked and has not parked yet).
	tsRunning threadStatus = iota
	// tsParked: blocked in yield with a pending op, available for scheduling
	// subject to enabledness.
	tsParked
	// tsWaiting: parked with a pending OpWaitResume and not yet notified —
	// disabled (Java wait-set membership).
	tsWaiting
	// tsNotified: parked with OpWaitResume and notified — enabled once the
	// monitor lock is free.
	tsNotified
	// tsDead: the thread's goroutine has terminated (normally or via an
	// uncaught model exception).
	tsDead
)

func (s threadStatus) String() string {
	switch s {
	case tsRunning:
		return "running"
	case tsParked:
		return "parked"
	case tsWaiting:
		return "waiting"
	case tsNotified:
		return "notified"
	case tsDead:
		return "dead"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// abortSentinel is panicked inside model threads when the scheduler shuts an
// execution down (step limit, external abort); the thread runner recognizes
// it and does not record it as a model exception.
type abortSentinel struct{}

// modelPanic wraps an error thrown by Throw so the thread runner can
// distinguish deliberate model exceptions from accidental Go panics (both
// are recorded, but with different descriptions).
type modelPanic struct{ err error }

func (m modelPanic) String() string { return m.err.Error() }

// spinEnabled gates the grant fast path's busy-wait: spinning for a flag
// only helps when the granting goroutine can make progress on another CPU.
var spinEnabled = runtime.NumCPU() > 1

// grantSpins bounds the busy-wait before falling back to the condvar.
const grantSpins = 128

// Thread is a model thread: the unit the scheduler grants steps to and the
// handle model programs use to perform instrumented operations. All methods
// must be called from the thread's own body function.
type Thread struct {
	id   event.ThreadID
	name string
	s    *Scheduler

	// grantFlag is the handoff token: the granter sets it (atomically, under
	// the scheduler mutex) and the parked thread consumes it, either by
	// spinning on the atomic or by waiting on grantCond. grantCond shares the
	// scheduler's mutex; it is initialized once per Thread lifetime.
	grantFlag uint32
	grantCond sync.Cond

	// pending is the op the thread will perform next. Written by the thread
	// before parking, read under the scheduler mutex afterwards.
	pending Op

	// Controller-owned scheduling state (everything below is accessed under
	// the scheduler mutex, or by the thread itself while it owns the step).
	status     threadStatus
	held       lockset.Set
	savedDepth int  // recursion depth saved across a monitor wait
	notified   bool // woken from the wait set, racing for the lock

	// poison, set during the grant, makes yield panic with the given error:
	// used for model-level illegal states such as unlocking a lock the
	// thread does not hold.
	poison error

	// forkResult is set during an OpFork grant so Fork can return the child
	// handle.
	forkResult *Thread

	// Exit bookkeeping, written by the thread's goroutine before its final
	// park and read under the mutex afterwards.
	exitedFlag bool
	panicVal   any
	panicStack string

	// exitMsg is the SND message registered when the thread died; joiners
	// receive it. Zero means the thread has not exited (IDs start at 1).
	exitMsg event.MsgID

	// lastStmt is the statement of the thread's most recently granted op,
	// used to attribute exceptions to program points.
	lastStmt event.Stmt

	// Profiling state (only touched when a schedprof trial is attached).
	// parkedNs is the profiler clock at the thread's most recent park; an
	// open grant carries the granted op's latency record from applyGrant to
	// the closing handlePark.
	parkedNs  int64
	openGrant bool
	gKind     int
	gStep     int
	gStartNs  int64
	gWaitNs   int64

	// Interrupt machinery (Java Thread.interrupt semantics). intrLoc is the
	// thread's interrupt-status memory location (accesses to it are
	// instrumented, so interrupt races are detectable); the booleans are
	// controller-owned.
	intrLoc         event.MemLoc
	interruptedFlag bool
	wokenByIntr     bool
}

// ID returns the thread's identity (0 for the main thread, then fork order).
func (t *Thread) ID() event.ThreadID { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Scheduler returns the owning scheduler, used by the conc package to
// allocate memory locations and locks.
func (t *Thread) Scheduler() *Scheduler { return t.s }

// Rand returns the execution's workload RNG: a deterministic stream split
// from the seed, for model programs that need randomized inputs without
// perturbing scheduling decisions.
func (t *Thread) Rand() *rng.Rand { return t.s.workRand }

// yield publishes op as the thread's next operation and blocks until the
// scheduler grants it. On return the thread owns the step: it performs the
// op's data effect and runs uninstrumented code until the next yield.
func (t *Thread) yield(op Op) {
	if t.s.aborted.Load() {
		panic(abortSentinel{})
	}
	t.pending = op
	t.park()
	if t.s.aborted.Load() {
		panic(abortSentinel{})
	}
	if t.poison != nil {
		err := t.poison
		t.poison = nil
		panic(modelPanic{err})
	}
}

// park hands the step back to the scheduler and blocks until granted again.
// When this park makes the system quiescent the thread first tries to drive
// the next scheduling round itself (the single-runnable fast path): if the
// policy grants this same thread, park returns without any goroutine switch
// or controller involvement.
func (t *Thread) park() {
	s := t.s
	s.mu.Lock()
	s.handlePark(t)
	if s.inFlight == 0 {
		if s.tryInline(t) {
			s.mu.Unlock()
			return
		}
		s.ctrlCond.Signal()
	}
	s.mu.Unlock()
	t.awaitGrant()
}

// exitPark is the dying goroutine's final park: no grant will follow, so it
// only delivers the exit to the scheduler. After the unlock the goroutine
// touches nothing — required for pool reuse of the Thread struct.
func (t *Thread) exitPark() {
	s := t.s
	s.mu.Lock()
	s.handlePark(t)
	if s.inFlight == 0 {
		s.ctrlCond.Signal()
	}
	s.mu.Unlock()
}

// awaitGrant blocks until the thread's grant flag is set, then consumes it.
// The fast path spins briefly on the atomic (the granter stores it before
// signaling, so an in-progress handoff is usually visible within a few
// iterations); the slow path takes the mutex and sleeps on the condvar.
func (t *Thread) awaitGrant() {
	if spinEnabled {
		for i := 0; i < grantSpins; i++ {
			if atomic.LoadUint32(&t.grantFlag) != 0 {
				atomic.StoreUint32(&t.grantFlag, 0)
				return
			}
			runtime.Gosched()
		}
	}
	s := t.s
	s.mu.Lock()
	for atomic.LoadUint32(&t.grantFlag) == 0 {
		t.grantCond.Wait()
	}
	atomic.StoreUint32(&t.grantFlag, 0)
	s.mu.Unlock()
}

// MemRead performs an instrumented read of loc at statement stmt. The caller
// reads the actual Go value only after MemRead returns (the scheduler
// serializes execution, so the read is safe).
func (t *Thread) MemRead(loc event.MemLoc, stmt event.Stmt) {
	t.yield(Op{Kind: OpRead, Stmt: stmt, Loc: loc, Access: event.Read})
}

// MemWrite performs an instrumented write of loc at statement stmt.
func (t *Thread) MemWrite(loc event.MemLoc, stmt event.Stmt) {
	t.yield(Op{Kind: OpWrite, Stmt: stmt, Loc: loc, Access: event.Write})
}

// LockAcquire acquires monitor lock l (reentrant), blocking while another
// thread holds it.
func (t *Thread) LockAcquire(l event.LockID, stmt event.Stmt) {
	t.yield(Op{Kind: OpLock, Stmt: stmt, Lock: l})
}

// LockRelease releases one level of monitor lock l. Releasing a lock the
// thread does not hold throws a model IllegalMonitorState exception.
func (t *Thread) LockRelease(l event.LockID, stmt event.Stmt) {
	t.yield(Op{Kind: OpUnlock, Stmt: stmt, Lock: l})
}

// MonitorWait performs a Java-style wait on l's monitor: releases the lock
// in full, joins the wait set, and — once notified — reacquires the lock at
// the saved depth before returning. Waiting without holding l throws a model
// IllegalMonitorState exception.
func (t *Thread) MonitorWait(l event.LockID, stmt event.Stmt) {
	t.yield(Op{Kind: OpWaitEnter, Stmt: stmt, Lock: l})
	t.yield(Op{Kind: OpWaitResume, Stmt: stmt, Lock: l})
}

// MonitorNotify wakes one thread (chosen by the scheduler's RNG — a recorded
// scheduling decision) from l's wait set, or does nothing if none wait.
func (t *Thread) MonitorNotify(l event.LockID, stmt event.Stmt) {
	t.yield(Op{Kind: OpNotify, Stmt: stmt, Lock: l})
}

// MonitorNotifyAll wakes every thread in l's wait set.
func (t *Thread) MonitorNotifyAll(l event.LockID, stmt event.Stmt) {
	t.yield(Op{Kind: OpNotifyAll, Stmt: stmt, Lock: l})
}

// Fork creates and starts a child thread running body and returns its
// handle. The child parks before running any user code, so the scheduler
// fully controls the interleaving.
func (t *Thread) Fork(name string, body func(*Thread)) *Thread {
	t.forkResult = nil
	t.yield(Op{Kind: OpFork, Stmt: event.CallerStmt(1), forkBody: body, forkName: name})
	child := t.forkResult
	t.forkResult = nil
	return child
}

// Join blocks until child has terminated.
func (t *Thread) Join(child *Thread) {
	t.yield(Op{Kind: OpJoin, Stmt: event.CallerStmt(1), Target: child.id})
}

// Nop is an explicit scheduling point with no effect, representing an
// untracked model statement.
func (t *Thread) Nop(stmt event.Stmt) {
	t.yield(Op{Kind: OpNop, Stmt: stmt})
}

// Interrupt sets other's interrupt status (Java Thread.interrupt): if other
// is blocked in a monitor wait it is woken and its wait throws
// InterruptedException after reacquiring the monitor; otherwise the flag is
// simply set and observable via IsInterrupted.
func (t *Thread) Interrupt(other *Thread) {
	t.yield(Op{Kind: OpInterrupt, Stmt: event.CallerStmt(1), Target: other.id})
}

// IsInterrupted reads the thread's own interrupt status (an instrumented
// read: interrupt-status races are first-class memory races).
func (t *Thread) IsInterrupted() bool {
	t.MemRead(t.intrLoc, event.CallerStmt(1))
	return t.interruptedFlag
}

// ClearInterrupt clears the thread's own interrupt status (the flag-clearing
// half of Java's Thread.interrupted()).
func (t *Thread) ClearInterrupt() {
	t.MemWrite(t.intrLoc, event.CallerStmt(1))
	t.interruptedFlag = false
}

// Throw raises a model exception: the thread dies (its locks are force-
// released, Java-style the monitor would actually stay broken, but force-
// release keeps sibling threads schedulable the way HotSpot unwinds
// synchronized blocks) and the exception is recorded on the Result.
func (t *Thread) Throw(err error) {
	panic(modelPanic{err})
}

// Throwf is Throw with fmt.Errorf formatting.
func (t *Thread) Throwf(format string, args ...any) {
	t.Throw(fmt.Errorf(format, args...))
}

// run is the goroutine body hosting a model thread.
func (t *Thread) run(body func(*Thread)) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortSentinel); !isAbort {
				t.panicVal = r
				if _, isModel := r.(modelPanic); !isModel {
					// Accidental Go panic: capture this goroutine's stack
					// for the exception report.
					t.panicStack = string(debug.Stack())
				}
			}
		}
		t.exitedFlag = true
		t.exitPark()
	}()
	t.yield(Op{Kind: OpBegin})
	if body != nil {
		body(t)
	}
}
