package sched

import (
	"sync"

	"racefuzzer/internal/event"
	"racefuzzer/internal/lockset"
)

// Trial-state pooling. Fuzzing campaigns run millions of short executions;
// building a Scheduler, its Thread structs, lock tables and scratch buffers
// fresh each time dominates the allocation profile. Run instead draws whole
// Scheduler trees from a sync.Pool: reset re-arms one for a new execution
// reusing every capacity it accumulated, release scrubs the references that
// must not leak between runs (closures, panic values, per-run config) before
// the tree goes back in the pool.
//
// Reuse is safe because a Scheduler leaves Run fully quiescent: every model
// goroutine has terminated, and a dying goroutine touches no Thread or
// Scheduler state after its final unlock in exitPark.

// defaultPolicy is the shared stateless fallback for Config.Policy == nil.
var defaultPolicy = &RandomPolicy{}

var schedulerPool = sync.Pool{
	New: func() any {
		s := &Scheduler{}
		s.ctrlCond.L = &s.mu
		return s
	},
}

func getScheduler() *Scheduler { return schedulerPool.Get().(*Scheduler) }

func putScheduler(s *Scheduler) {
	s.release()
	schedulerPool.Put(s)
}

// reset re-arms a pooled (or fresh) Scheduler for one execution under cfg.
// Everything that escapes into the Result (exceptions, deadlock info) is set
// to nil rather than truncated: those slices are owned by the caller of the
// previous run.
func (s *Scheduler) reset(cfg Config) {
	s.cfg = cfg
	s.rngv.Reset(cfg.Seed)
	s.rng = &s.rngv
	s.rng.SplitInto(&s.workv)
	s.workRand = &s.workv
	s.policy = cfg.Policy
	if s.policy == nil {
		s.policy = defaultPolicy
	}
	s.maxSteps = cfg.MaxSteps
	if s.maxSteps <= 0 {
		s.maxSteps = DefaultMaxSteps
	}
	s.observers = append(s.observers[:0], cfg.Observers...)
	s.flight = cfg.Flight
	s.prof = cfg.Prof
	s.metrics = cfg.Metrics
	if o, ok := cfg.Flight.(Observer); ok {
		s.observers = append(s.observers, o)
	}
	if s.metrics != nil {
		// Telemetry rides the observer stream for events-by-kind; the
		// remaining probes are explicit calls on the controller path.
		s.observers = append(s.observers, s.metrics)
	}

	s.threads = s.threads[:0]
	s.locks = s.locks[:0]
	s.locNames = s.locNames[:0]
	s.locOwner = s.locOwner[:0]

	s.rounds = 0
	s.inspSlot = nil
	s.finalSnap = nil
	s.steps = 0
	s.inFlight = 0
	s.aborted.Store(false)
	s.lastGranted = event.NoThread
	s.switches = 0
	s.nextMsg = 0
	s.exceptions = nil
	s.stalls = 0
	s.deadlock = nil
	s.abortedRun = false

	s.view = View{sched: s}
	s.emptyRounds = 0
	s.batchLeft = 0
	s.handoffGrants = nil
}

// release scrubs references a pooled Scheduler must not carry between runs.
// Capacities (thread structs, lock tables, scratch buffers) are kept — they
// are the point of pooling.
func (s *Scheduler) release() {
	s.cfg = Config{}
	s.policy = nil
	s.observers = s.observers[:0]
	s.flight = nil
	s.prof = nil
	s.metrics = nil
	s.inspSlot = nil
	s.finalSnap = nil
	s.exceptions = nil
	s.deadlock = nil
	s.handoffGrants = nil
	s.view = View{}
	// Scrub the whole backing array, not just the last run's prefix: threads
	// beyond len carry state from an even earlier, longer run.
	all := s.threads[:cap(s.threads)]
	for _, t := range all {
		if t == nil {
			continue
		}
		t.pending = Op{} // drops fork-body closures
		t.poison = nil
		t.forkResult = nil
		t.panicVal = nil
		t.panicStack = ""
		t.held = lockset.Empty()
	}
}
