package sched

import (
	"errors"
	"testing"

	"racefuzzer/internal/rng"
)

func TestInterruptSetsFlagOnRunningThread(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		observed := false
		cleared := false
		prog := func(mt *Thread) {
			worker := mt.Fork("worker", func(c *Thread) {
				for i := 0; i < 20; i++ {
					c.Nop(stmt("intr:spin"))
					if c.IsInterrupted() {
						observed = true
						c.ClearInterrupt()
						cleared = !c.IsInterrupted()
						return
					}
				}
			})
			mt.Interrupt(worker)
			mt.Join(worker)
		}
		res := Run(prog, Config{Seed: seed})
		if res.Deadlock != nil || len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		if !observed {
			t.Fatalf("seed %d: interrupt never observed", seed)
		}
		if !cleared {
			t.Fatalf("seed %d: ClearInterrupt did not clear", seed)
		}
	}
}

func TestInterruptWakesWaitingThreadWithException(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		prog := func(mt *Thread) {
			lk := mt.Scheduler().NewLock("mon")
			waiter := mt.Fork("waiter", func(c *Thread) {
				c.LockAcquire(lk, stmt("iw:acq"))
				c.MonitorWait(lk, stmt("iw:wait")) // nobody ever notifies
				c.LockRelease(lk, stmt("iw:rel"))
			})
			// Let the waiter get into the wait set, then interrupt it.
			for i := 0; i < 6; i++ {
				mt.Nop(stmt("iw:delay"))
			}
			mt.Interrupt(waiter)
			mt.Join(waiter)
		}
		res := Run(prog, Config{Seed: seed})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: deadlock %v", seed, res.Deadlock)
		}
		if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrInterruptedWait) {
			t.Fatalf("seed %d: exceptions = %v, want InterruptedException from wait", seed, res.Exceptions)
		}
	}
}

func TestWaitEntersWithInterruptStatusThrowsImmediately(t *testing.T) {
	prog := func(mt *Thread) {
		lk := mt.Scheduler().NewLock("mon")
		waiter := mt.Fork("waiter", func(c *Thread) {
			// Busy-wait until interrupted status is set, then wait():
			// Java throws immediately, clearing the flag.
			for !c.IsInterrupted() {
				c.Nop(stmt("wi:spin"))
			}
			c.LockAcquire(lk, stmt("wi:acq"))
			c.MonitorWait(lk, stmt("wi:wait"))
			c.LockRelease(lk, stmt("wi:rel")) // unreachable
		})
		mt.Interrupt(waiter)
		mt.Join(waiter)
	}
	res := Run(prog, Config{Seed: 3})
	if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrInterruptedWait) {
		t.Fatalf("exceptions = %v", res.Exceptions)
	}
	if res.Deadlock != nil {
		t.Fatalf("deadlock: %v (monitor not force-released after throw?)", res.Deadlock)
	}
}

func TestInterruptDeadThreadIsNoop(t *testing.T) {
	prog := func(mt *Thread) {
		w := mt.Fork("w", func(c *Thread) {})
		mt.Join(w)
		mt.Interrupt(w) // already dead: must not blow up
	}
	res := Run(prog, Config{Seed: 1})
	if res.Deadlock != nil || len(res.Exceptions) != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestInterruptRacesAreDetectable(t *testing.T) {
	// The interrupt write and an IsInterrupted read race like any other pair
	// of conflicting accesses: the witness policy must be able to see them
	// co-pending. (Interrupt status is a first-class memory location.)
	seen := false
	probe := policyFunc(func(v *View, r *rng.Rand) Decision {
		var ops []Op
		for _, tid := range v.Enabled {
			op := v.Op(tid)
			if op.IsMem() || op.Kind == OpInterrupt {
				ops = append(ops, op)
			}
		}
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				a, b := ops[i], ops[j]
				// An OpInterrupt's write target is the other thread's flag;
				// the co-pending IsInterrupted read appears as a MemRead.
				if a.Kind == OpInterrupt && b.IsMem() || b.Kind == OpInterrupt && a.IsMem() {
					seen = true
				}
			}
		}
		return Grant(v.Enabled[r.Intn(len(v.Enabled))])
	})
	prog := func(mt *Thread) {
		w := mt.Fork("w", func(c *Thread) {
			for i := 0; i < 10; i++ {
				if c.IsInterrupted() {
					return
				}
			}
		})
		mt.Interrupt(w)
		mt.Join(w)
	}
	for seed := int64(0); seed < 20 && !seen; seed++ {
		Run(prog, Config{Seed: seed, Policy: probe})
	}
	if !seen {
		t.Fatal("interrupt ops never co-pending with flag reads")
	}
}

func TestInterruptedWaiterStillNeedsTheLock(t *testing.T) {
	// An interrupted waiter must reacquire the monitor before its wait
	// throws: while the interrupter still holds the lock, the waiter stays
	// blocked.
	order := []string{}
	prog := func(mt *Thread) {
		lk := mt.Scheduler().NewLock("mon")
		waiter := mt.Fork("waiter", func(c *Thread) {
			c.LockAcquire(lk, stmt("rl:acq"))
			c.MonitorWait(lk, stmt("rl:wait"))
		})
		for i := 0; i < 6; i++ {
			mt.Nop(stmt("rl:delay"))
		}
		mt.LockAcquire(lk, stmt("rl:m-acq"))
		mt.Interrupt(waiter)
		order = append(order, "interrupted-under-lock")
		mt.LockRelease(lk, stmt("rl:m-rel"))
		mt.Join(waiter)
		order = append(order, "joined")
	}
	res := Run(prog, Config{Seed: 2})
	if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrInterruptedWait) {
		t.Fatalf("exceptions = %v", res.Exceptions)
	}
	if len(order) != 2 || order[0] != "interrupted-under-lock" {
		t.Fatalf("order = %v", order)
	}
}
