package sched

import (
	"fmt"

	"racefuzzer/internal/event"
)

// OpKind enumerates the instrumented operations at which the scheduler
// context-switches. Following §4 of the paper (and Musuvathi–Qadeer), thread
// switches happen only before synchronization operations and tracked memory
// accesses; everything a thread does between two ops runs atomically.
type OpKind int

const (
	// OpBegin is the first (pseudo-)operation of every thread: the thread
	// parks with OpBegin before running any user code, so the scheduler
	// controls when the thread's body starts.
	OpBegin OpKind = iota
	// OpRead is a shared-memory read of Op.Loc.
	OpRead
	// OpWrite is a shared-memory write of Op.Loc.
	OpWrite
	// OpLock acquires the monitor lock Op.Lock (reentrant). The thread is
	// disabled while another thread holds the lock.
	OpLock
	// OpUnlock releases one level of Op.Lock.
	OpUnlock
	// OpWaitEnter begins a monitor wait on Op.Lock: the lock is released in
	// full (saving the recursion depth) and the thread moves to the monitor's
	// wait set.
	OpWaitEnter
	// OpWaitResume completes a monitor wait: enabled only once the thread has
	// been notified and the lock is free; on grant the lock is reacquired at
	// the saved depth.
	OpWaitResume
	// OpNotify wakes one random thread from Op.Lock's wait set (no-op if the
	// wait set is empty), emitting SND/RCV events when a thread is woken.
	OpNotify
	// OpNotifyAll wakes every thread in Op.Lock's wait set.
	OpNotifyAll
	// OpFork creates and starts a new thread running Op's fork body,
	// emitting SND(parent)/RCV(child) events.
	OpFork
	// OpJoin blocks until thread Op.Target has terminated, emitting an RCV
	// of the target's exit message.
	OpJoin
	// OpNop is an explicit scheduling point with no semantic effect. Model
	// programs use it to represent untracked statements (e.g. the f1()…f5()
	// calls of the paper's Figure 2) so that naive schedulers see a
	// realistically long program.
	OpNop
	// OpInterrupt sets thread Op.Target's interrupt status (Java
	// Thread.interrupt): a thread blocked in a monitor wait is woken and its
	// wait throws InterruptedException after reacquiring the monitor; a
	// running thread just gets its flag set, observed via IsInterrupted.
	OpInterrupt
)

func (k OpKind) String() string {
	switch k {
	case OpBegin:
		return "begin"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	case OpWaitEnter:
		return "wait-enter"
	case OpWaitResume:
		return "wait-resume"
	case OpNotify:
		return "notify"
	case OpNotifyAll:
		return "notifyAll"
	case OpFork:
		return "fork"
	case OpJoin:
		return "join"
	case OpNop:
		return "nop"
	case OpInterrupt:
		return "interrupt"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one pending operation: what a parked thread will do next if granted.
// This is the scheduler's realization of the paper's NextStmt(s, t) — the
// RaceFuzzer policy inspects pending Ops to decide postponement, and the
// Racing() check compares the Loc/Access fields of two pending memory ops.
type Op struct {
	Kind   OpKind
	Stmt   event.Stmt
	Loc    event.MemLoc     // OpRead/OpWrite
	Access event.AccessKind // OpRead/OpWrite (redundant with Kind; kept for symmetry)
	Lock   event.LockID     // lock/unlock/wait/notify
	Target event.ThreadID   // OpJoin

	forkBody func(*Thread) // OpFork
	forkName string        // OpFork
}

// IsMem reports whether the op is a tracked shared-memory access.
func (o Op) IsMem() bool { return o.Kind == OpRead || o.Kind == OpWrite }

// IsWrite reports whether the op writes shared memory.
func (o Op) IsWrite() bool { return o.Kind == OpWrite }

// ConflictsWith reports whether two pending memory operations would race if
// executed temporally next to each other: same dynamic location and at least
// one write. This is the body of the paper's Racing() function (Algorithm 2)
// applied to a single candidate pair.
func (o Op) ConflictsWith(p Op) bool {
	return o.IsMem() && p.IsMem() && o.Loc == p.Loc && (o.IsWrite() || p.IsWrite())
}

func (o Op) String() string {
	switch o.Kind {
	case OpRead, OpWrite:
		return fmt.Sprintf("%s %s @%s", o.Kind, o.Loc, o.Stmt)
	case OpLock, OpUnlock, OpNotify, OpNotifyAll, OpWaitEnter, OpWaitResume:
		return fmt.Sprintf("%s %s @%s", o.Kind, o.Lock, o.Stmt)
	case OpJoin:
		return fmt.Sprintf("join %s @%s", o.Target, o.Stmt)
	case OpInterrupt:
		return fmt.Sprintf("interrupt %s @%s", o.Target, o.Stmt)
	case OpFork:
		return fmt.Sprintf("fork %q @%s", o.forkName, o.Stmt)
	default:
		return o.Kind.String()
	}
}
