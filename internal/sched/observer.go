package sched

import "racefuzzer/internal/event"

// Observer receives the execution's event stream: MEM accesses with their
// held-lock snapshots, SND/RCV messages for fork/join/notify edges, and
// LOCK/UNLOCK for detectors that model release→acquire edges. Observers run
// synchronously on the controller goroutine; they must not block.
type Observer interface {
	OnEvent(e event.Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(e event.Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e event.Event) { f(e) }

// MultiObserver fans one event stream out to several observers.
type MultiObserver []Observer

// OnEvent implements Observer.
func (m MultiObserver) OnEvent(e event.Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

// CountingObserver tallies events by kind; used in tests and overhead
// benchmarks.
type CountingObserver struct {
	Mem, Snd, Rcv, Lock, Unlock int
}

// OnEvent implements Observer.
func (c *CountingObserver) OnEvent(e event.Event) {
	switch e.Kind {
	case event.KindMem:
		c.Mem++
	case event.KindSnd:
		c.Snd++
	case event.KindRcv:
		c.Rcv++
	case event.KindLock:
		c.Lock++
	case event.KindUnlock:
		c.Unlock++
	}
}

// Total returns the total number of observed events.
func (c *CountingObserver) Total() int { return c.Mem + c.Snd + c.Rcv + c.Lock + c.Unlock }
