package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"racefuzzer/internal/event"
)

// Live-state introspection: a read-only window into running executions for
// the observatory's /debug/sched endpoint.
//
// The scheduler's state (thread statuses, lock tables, the policy's
// postponed set) is owned by the controller goroutine and is never safe to
// read concurrently. Instead of locking the hot path, introspection is
// request-driven: an Introspector slot carries one atomic "wanted" flag per
// live run, the controller checks it once per scheduling round (a single
// atomic load — and with no Introspector attached, a single nil check, the
// same no-op probe guarantee obs metrics give), and when set it builds an
// immutable RunSnapshot and publishes it through an atomic pointer. Readers
// never see partial state, the controller never blocks, and schedules are
// unperturbed: snapshot construction draws no randomness and happens at an
// already-deterministic point.

// PostponedReporter is implemented by policies that maintain a postponed
// set (the RaceFuzzer family); the introspector includes their view in
// snapshots. Called on the controller goroutine only.
type PostponedReporter interface {
	PostponedThreads() []event.ThreadID
}

// ThreadState is one model thread in a RunSnapshot.
type ThreadState struct {
	ID     event.ThreadID `json:"id"`
	Name   string         `json:"name"`
	Status string         `json:"status"` // running, parked, waiting, notified, dead
	// Pending is the rendered operation the thread will perform next
	// ("" once dead).
	Pending string `json:"pending,omitempty"`
	// Stmt is the statement of the pending operation (the location the
	// thread is parked at).
	Stmt      string `json:"stmt,omitempty"`
	Enabled   bool   `json:"enabled"`
	Postponed bool   `json:"postponed,omitempty"`
	// Held lists the monitor locks the thread currently holds, by name.
	Held []string `json:"held,omitempty"`
	// BlockedOn names the resource a disabled thread is blocked on: a lock,
	// a join target, or a monitor wait ("" when not blocked).
	BlockedOn string `json:"blockedOn,omitempty"`
}

// LockState is one monitor lock in a RunSnapshot.
type LockState struct {
	ID     event.LockID   `json:"id"`
	Name   string         `json:"name"`
	Holder event.ThreadID `json:"holder"` // event.NoThread when free
	Depth  int            `json:"depth"`
}

// WaitEdge is one edge of the wait-for graph: From is blocked until To acts
// (releases a lock or terminates).
type WaitEdge struct {
	From event.ThreadID `json:"from"`
	To   event.ThreadID `json:"to"`
	// Lock is the contended lock (event.NoLock for join edges).
	Lock     event.LockID `json:"lock"`
	LockName string       `json:"lockName,omitempty"`
}

// RunSnapshot is an immutable point-in-time view of one execution's
// scheduler state.
type RunSnapshot struct {
	// RunID is the introspector's handle for the execution (monotonic per
	// Introspector, not meaningful across processes).
	RunID  int64  `json:"runId"`
	Name   string `json:"name,omitempty"`
	Policy string `json:"policy"`
	Seed   int64  `json:"seed"`
	Step   int    `json:"step"`
	// Done marks the final snapshot published when the run ended.
	Done    bool          `json:"done,omitempty"`
	Threads []ThreadState `json:"threads"`
	Locks   []LockState   `json:"locks,omitempty"`
	// WaitFor is the current wait-for graph; a cycle here that also includes
	// every enabled thread is a deadlock, and a growing chain is one brewing.
	WaitFor []WaitEdge `json:"waitFor,omitempty"`
	// Cycles lists the thread cycles present in WaitFor (each in discovery
	// order) — non-empty means some threads can only be freed by a livelock
	// monitor or never.
	Cycles [][]event.ThreadID `json:"cycles,omitempty"`
}

// runSlot is the introspector's per-live-run mailbox.
type runSlot struct {
	id   int64
	want atomic.Bool
	snap atomic.Pointer[RunSnapshot]
}

// Introspector hands out read-only scheduler snapshots. One Introspector
// may be attached to any number of concurrent executions (a parallel
// campaign registers every in-flight run); Snapshot gathers all of them.
// All methods are safe for concurrent use and on a nil receiver.
type Introspector struct {
	mu     sync.Mutex
	nextID int64
	slots  map[int64]*runSlot
	last   *RunSnapshot // final snapshot of the most recently completed run
	served int64
}

// NewIntrospector returns an empty introspector.
func NewIntrospector() *Introspector {
	return &Introspector{slots: make(map[int64]*runSlot)}
}

// register adds a slot for a starting run (nil-safe; returns nil when off).
func (in *Introspector) register() *runSlot {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.nextID++
	s := &runSlot{id: in.nextID}
	in.slots[s.id] = s
	return s
}

// unregister retires a run's slot, retaining its final snapshot as the
// introspector's "last completed run" view. The final snapshot also lands
// in the slot (and the want flag clears) so a Snapshot call racing the
// run's end resolves immediately instead of timing out.
func (in *Introspector) unregister(s *runSlot, final *RunSnapshot) {
	if in == nil || s == nil {
		return
	}
	if final != nil {
		s.snap.Store(final)
	}
	s.want.Store(false)
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.slots, s.id)
	if final != nil {
		in.last = final
	}
}

// SchedSnapshot is the introspector's full answer: every live execution
// plus the most recently completed one.
type SchedSnapshot struct {
	// Active holds one snapshot per in-flight execution, ordered by RunID.
	// A snapshot may lag the live state by a round when its run was mid-grant
	// at request time.
	Active []RunSnapshot `json:"active"`
	// LastCompleted is the final snapshot of the most recently finished run
	// (useful between runs of a campaign, and after it).
	LastCompleted *RunSnapshot `json:"lastCompleted,omitempty"`
	// Requests counts Snapshot calls served by this introspector.
	Requests int64 `json:"requests"`
}

// Snapshot requests a fresh snapshot from every live run and collects the
// results, waiting up to timeout (default 100ms) for controllers to publish.
// Runs that do not publish in time contribute their previous snapshot if
// one exists. Safe on a nil receiver (returns an empty snapshot).
func (in *Introspector) Snapshot(timeout time.Duration) SchedSnapshot {
	var out SchedSnapshot
	if in == nil {
		return out
	}
	if timeout <= 0 {
		timeout = 100 * time.Millisecond
	}
	in.mu.Lock()
	in.served++
	out.Requests = in.served
	slots := make([]*runSlot, 0, len(in.slots))
	for _, s := range in.slots {
		slots = append(slots, s)
	}
	if in.last != nil {
		last := *in.last
		out.LastCompleted = &last
	}
	in.mu.Unlock()

	for _, s := range slots {
		s.want.Store(true)
	}
	deadline := time.Now().Add(timeout)
	for {
		pending := false
		for _, s := range slots {
			if s.want.Load() {
				pending = true
			}
		}
		if !pending || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, s := range slots {
		if snap := s.snap.Load(); snap != nil {
			out.Active = append(out.Active, *snap)
		}
	}
	// slots came out of a map; present runs in start order.
	for i := 1; i < len(out.Active); i++ {
		for j := i; j > 0 && out.Active[j-1].RunID > out.Active[j].RunID; j-- {
			out.Active[j-1], out.Active[j] = out.Active[j], out.Active[j-1]
		}
	}
	return out
}

// pollIntrospect is the controller-side probe: one nil check when
// introspection is off, one atomic load per round when on, a snapshot build
// only when a reader asked for one.
func (s *Scheduler) pollIntrospect() {
	if s.inspSlot == nil || !s.inspSlot.want.Load() {
		return
	}
	s.inspSlot.snap.Store(s.buildSnapshot(false))
	s.inspSlot.want.Store(false)
}

// finalizeIntrospect captures the run's final snapshot at loop exit, while
// the thread and lock tables still reflect the execution's end state —
// shutdown unwinds blocked threads, which would erase the wait-for graph a
// deadlock snapshot exists to show.
func (s *Scheduler) finalizeIntrospect() {
	if s.inspSlot == nil {
		return
	}
	s.finalSnap = s.buildSnapshot(true)
}

// buildSnapshot assembles an immutable view of the scheduler's state. Runs
// on the controller goroutine only.
func (s *Scheduler) buildSnapshot(done bool) *RunSnapshot {
	snap := &RunSnapshot{
		Name:   s.cfg.Name,
		Policy: s.policy.Name(),
		Seed:   s.cfg.Seed,
		Step:   s.steps,
		Done:   done,
	}
	if s.inspSlot != nil {
		snap.RunID = s.inspSlot.id
	}
	postponed := make(map[event.ThreadID]bool)
	if pr, ok := s.policy.(PostponedReporter); ok {
		for _, tid := range pr.PostponedThreads() {
			postponed[tid] = true
		}
	}
	for _, t := range s.threads {
		ts := ThreadState{
			ID:        t.id,
			Name:      t.name,
			Status:    t.status.String(),
			Enabled:   s.isEnabled(t.id),
			Postponed: postponed[t.id],
		}
		if t.status != tsDead {
			ts.Pending = t.pending.String()
			ts.Stmt = t.pending.Stmt.String()
			for _, l := range t.held.Slice() {
				ts.Held = append(ts.Held, s.locks[l].name)
			}
			if !ts.Enabled && t.status != tsRunning {
				switch {
				case t.status == tsWaiting:
					ts.BlockedOn = "wait " + s.locks[t.pending.Lock].name
				case t.pending.Kind == OpLock || t.pending.Kind == OpWaitResume:
					ts.BlockedOn = "lock " + s.locks[t.pending.Lock].name
				case t.pending.Kind == OpJoin:
					ts.BlockedOn = "join " + s.threads[t.pending.Target].name
				}
			}
		}
		snap.Threads = append(snap.Threads, ts)
	}
	for i, l := range s.locks {
		if l.holder == event.NoThread {
			continue
		}
		snap.Locks = append(snap.Locks, LockState{
			ID: event.LockID(i), Name: l.name, Holder: l.holder, Depth: l.depth,
		})
	}
	snap.WaitFor = s.waitForEdges()
	snap.Cycles = waitCycles(snap.WaitFor)
	return snap
}

// waitForEdges computes the current wait-for graph: parked-and-disabled
// threads edge to the thread that must act to free them.
func (s *Scheduler) waitForEdges() []WaitEdge {
	var edges []WaitEdge
	for _, t := range s.threads {
		if t.status == tsDead || t.status == tsRunning || s.isEnabled(t.id) {
			continue
		}
		switch t.pending.Kind {
		case OpLock, OpWaitResume:
			// tsWaiting threads are waiting for a notify, not a holder; only
			// notified (or plain lock-blocked) threads contend for the lock.
			if t.status == tsWaiting {
				continue
			}
			l := s.locks[t.pending.Lock]
			if l.holder != event.NoThread && l.holder != t.id {
				edges = append(edges, WaitEdge{
					From: t.id, To: l.holder, Lock: t.pending.Lock, LockName: l.name,
				})
			}
		case OpJoin:
			if s.threads[t.pending.Target].status != tsDead {
				edges = append(edges, WaitEdge{From: t.id, To: t.pending.Target, Lock: event.NoLock})
			}
		}
	}
	return edges
}

// waitCycles finds the cycles of a wait-for graph. Every thread has at most
// one outgoing edge (it blocks on one resource), so a simple pointer walk
// with visit coloring finds all cycles in linear time.
func waitCycles(edges []WaitEdge) [][]event.ThreadID {
	next := make(map[event.ThreadID]event.ThreadID, len(edges))
	for _, e := range edges {
		next[e.From] = e.To
	}
	const (
		unvisited = 0
		inProg    = 1
		doneV     = 2
	)
	color := make(map[event.ThreadID]int, len(next))
	var cycles [][]event.ThreadID
	for _, e := range edges {
		start := e.From
		if color[start] != unvisited {
			continue
		}
		// Walk the chain, marking the path; revisiting an in-progress node
		// closes a cycle.
		path := []event.ThreadID{}
		cur := start
		for {
			color[cur] = inProg
			path = append(path, cur)
			n, ok := next[cur]
			if !ok || color[n] == doneV {
				break
			}
			if color[n] == inProg {
				// Extract the cycle portion of the path.
				for i, tid := range path {
					if tid == n {
						cycles = append(cycles, append([]event.ThreadID(nil), path[i:]...))
						break
					}
				}
				break
			}
			cur = n
		}
		for _, tid := range path {
			color[tid] = doneV
		}
	}
	return cycles
}
