package sched

import (
	"testing"

	"racefuzzer/internal/event"
	"racefuzzer/internal/obs"
)

func TestRunStatsPopulated(t *testing.T) {
	m := obs.NewRunMetrics()
	var final int
	res := Run(counterProgram(3, 10, &final), Config{Seed: 7, Metrics: m})
	s := res.Stats
	if s == nil {
		t.Fatal("Stats nil with Metrics attached")
	}
	if s.Steps != res.Steps {
		t.Fatalf("stats steps = %d, result steps = %d", s.Steps, res.Steps)
	}
	// Three workers interleaving under one lock must context-switch at least
	// twice (one entry per worker) but never more than once per step.
	if s.Switches < 2 || s.Switches >= s.Steps {
		t.Fatalf("switches = %d (steps %d)", s.Switches, s.Steps)
	}
	// 3 workers x 10 iterations x (acquire, read, write, release).
	if s.EventCount(event.KindLock) != 30 || s.EventCount(event.KindUnlock) != 30 {
		t.Fatalf("lock/unlock events = %d/%d",
			s.EventCount(event.KindLock), s.EventCount(event.KindUnlock))
	}
	if s.EventCount(event.KindMem) != 60 {
		t.Fatalf("mem events = %d", s.EventCount(event.KindMem))
	}
	// Every scheduling round observes the enabled-thread count.
	if s.Enabled.Count == 0 || s.Enabled.Max < 2 {
		t.Fatalf("enabled histogram = %+v", s.Enabled)
	}
	if s.Wall <= 0 {
		t.Fatalf("wall = %v", s.Wall)
	}
}

func TestRunStatsNilWhenMetricsAbsent(t *testing.T) {
	var final int
	res := Run(counterProgram(2, 5, &final), Config{Seed: 7})
	if res.Stats != nil {
		t.Fatalf("Stats = %+v without Metrics", res.Stats)
	}
}

func TestMetricsDoNotPerturbSchedule(t *testing.T) {
	trace := func(m *obs.RunMetrics) []string {
		rec := &recorder{}
		var final int
		Run(counterProgram(3, 10, &final),
			Config{Seed: 42, Observers: []Observer{rec}, Metrics: m})
		return rec.lines
	}
	bare := trace(nil)
	instrumented := trace(obs.NewRunMetrics())
	if len(bare) != len(instrumented) {
		t.Fatalf("event counts differ: %d vs %d", len(bare), len(instrumented))
	}
	for i := range bare {
		if bare[i] != instrumented[i] {
			t.Fatalf("schedules diverge at event %d: %q vs %q", i, bare[i], instrumented[i])
		}
	}
}
