package sched

import (
	"racefuzzer/internal/event"
	"racefuzzer/internal/rng"
)

// View is the read-only scheduler state a Policy decides from: the enabled
// set and each enabled thread's pending operation. It corresponds to what
// Algorithm 1 consults — Enabled(s) and NextStmt(s, t), enriched with the
// dynamic memory location the statement will touch (needed by Racing()).
type View struct {
	// Step is the current scheduler step index.
	Step int
	// Enabled is Enabled(s) in ascending thread order.
	Enabled []event.ThreadID
	sched   *Scheduler
}

// Op returns thread t's pending operation. Valid for any live thread, not
// just enabled ones (RaceFuzzer inspects postponed threads too).
func (v *View) Op(t event.ThreadID) Op { return v.sched.threads[t].pending }

// IsEnabled reports whether t is in Enabled(s).
func (v *View) IsEnabled(t event.ThreadID) bool { return v.sched.isEnabled(t) }

// IsAlive reports whether t has not terminated.
func (v *View) IsAlive(t event.ThreadID) bool { return v.sched.threads[t].status != tsDead }

// AliveCount returns |Alive(s)|.
func (v *View) AliveCount() int { return v.sched.aliveCount() }

// Threads returns the number of threads created so far.
func (v *View) Threads() int { return len(v.sched.threads) }

// LockHolder returns the thread holding l, or event.NoThread. Used by the
// deadlock-directed guidance extension.
func (v *View) LockHolder(l event.LockID) event.ThreadID { return v.sched.locks[l].holder }

// HeldLocks returns the locks thread t currently holds.
func (v *View) HeldLocks(t event.ThreadID) []event.LockID { return v.sched.threads[t].held.Slice() }

// LocName returns the debug name of a memory location (for findings).
func (v *View) LocName(loc event.MemLoc) string { return v.sched.LocName(loc) }

// Act reports one policy action (postpone/resume/livelock-break, race or
// violation hit) to the execution's flight recorder, if one is attached.
// Policies call it unconditionally alongside their Metrics probes; without a
// recorder it is a nil check. Actions must be emitted at deterministic
// points only — they become part of the replay-compared record.
func (v *View) Act(a ActionRecord) {
	if v.sched.flight != nil {
		v.sched.flight.OnAction(a)
	}
}

// Decision is a policy's answer for one round: the threads to grant, in
// order. An empty decision is allowed (the policy only adjusted internal
// state, e.g. postponed a thread) but the scheduler force-grants after a
// bounded number of consecutive empty rounds to guarantee progress.
type Decision struct {
	Grants []event.ThreadID
}

// Grant is shorthand for a single-thread decision. It allocates the
// one-element grant slice; policies on the hot path should prefer the
// allocation-free View.Grant.
func Grant(t event.ThreadID) Decision { return Decision{Grants: []event.ThreadID{t}} }

// Grant builds a single-thread decision in the scheduler's reusable grant
// buffer — the allocation-free equivalent of the package-level Grant. The
// returned decision is valid for the current round only: the buffer is
// overwritten at the next scheduling round (the scheduler finishes reading
// it before any policy runs again). Policies that return multi-thread
// batches, or retain decisions, must allocate their own slices.
func (v *View) Grant(t event.ThreadID) Decision {
	v.sched.grantBuf[0] = t
	return Decision{Grants: v.sched.grantBuf[:1]}
}

// Policy chooses which enabled thread(s) execute at each quiescent point.
// Implementations draw randomness exclusively from the provided generator so
// executions stay seed-deterministic.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Step is called once per scheduling round.
	Step(v *View, r *rng.Rand) Decision
}

// RandomPolicy is the paper's "simple random scheduler" baseline: at each
// state, pick a uniformly random enabled thread and execute its next
// statement. Example 2 (§3.2) shows why this misses races whose two sides
// are separated by many statements.
type RandomPolicy struct{}

// NewRandomPolicy returns the uniform random policy.
func NewRandomPolicy() *RandomPolicy { return &RandomPolicy{} }

// Name implements Policy.
func (*RandomPolicy) Name() string { return "random" }

// Step implements Policy.
func (*RandomPolicy) Step(v *View, r *rng.Rand) Decision {
	return v.Grant(v.Enabled[r.Intn(len(v.Enabled))])
}

// RunToBlockPolicy emulates a conventional (JVM/OS-default-like) scheduler:
// it keeps running the current thread until it blocks or dies, switching —
// apart from that — only with a small preemption probability. It is the
// stand-in for the paper's "default scheduler" column (Table 1, column 10):
// long undisturbed runs make racing statements meet almost never.
type RunToBlockPolicy struct {
	// Preempt is the per-step probability of an involuntary switch
	// (0 disables preemption entirely).
	Preempt float64
	current event.ThreadID
	started bool
}

// NewRunToBlockPolicy returns a run-to-block policy with the given
// preemption probability.
func NewRunToBlockPolicy(preempt float64) *RunToBlockPolicy {
	return &RunToBlockPolicy{Preempt: preempt}
}

// Name implements Policy.
func (*RunToBlockPolicy) Name() string { return "run-to-block" }

// Step implements Policy.
func (p *RunToBlockPolicy) Step(v *View, r *rng.Rand) Decision {
	if p.started && p.Preempt > 0 && r.Float64() < p.Preempt {
		p.started = false
	}
	if p.started {
		for _, t := range v.Enabled {
			if t == p.current {
				return v.Grant(t)
			}
		}
	}
	p.current = v.Enabled[r.Intn(len(v.Enabled))]
	p.started = true
	return v.Grant(p.current)
}

// QuantumPolicy emulates a time-sliced OS/JVM scheduler: threads run
// round-robin, each receiving Quantum consecutive operations before the next
// thread's turn. This is the most faithful model-scale stand-in for "just
// run the program normally": every thread makes steady progress and
// interleaving happens only at coarse quantum boundaries, which is why
// ordinary testing misses races whose window is narrower than a quantum
// (Table 1, column 10).
type QuantumPolicy struct {
	// Quantum is the base number of consecutive ops per turn (default 4).
	// Each turn actually lasts Quantum + jitter ops, with a small random
	// jitter, the way real time slices vary — without it, a fixed quantum
	// phase-locks tiny programs into one of a handful of schedules.
	Quantum int
	current event.ThreadID
	used    int
	limit   int
	started bool
}

// NewQuantumPolicy returns a round-robin policy with the given quantum.
func NewQuantumPolicy(quantum int) *QuantumPolicy {
	return &QuantumPolicy{Quantum: quantum}
}

// Name implements Policy.
func (*QuantumPolicy) Name() string { return "quantum" }

// Step implements Policy.
func (p *QuantumPolicy) Step(v *View, r *rng.Rand) Decision {
	if p.started && p.used < p.limit {
		for _, t := range v.Enabled {
			if t == p.current {
				p.used++
				return v.Grant(t)
			}
		}
	}
	// Turn over: next enabled thread after current, round-robin.
	next := v.Enabled[0]
	if p.started {
		for _, t := range v.Enabled {
			if t > p.current {
				next = t
				break
			}
		}
	} else {
		// First turn: start anywhere (seed-dependent, like a real scheduler's
		// arbitrary initial dispatch).
		next = v.Enabled[r.Intn(len(v.Enabled))]
	}
	q := p.Quantum
	if q <= 0 {
		q = 4
	}
	p.current = next
	p.used = 1
	p.limit = q + r.Intn(q) // jittered slice length
	p.started = true
	return v.Grant(next)
}

// SequentialPolicy always runs the lowest-numbered enabled thread: a fully
// deterministic baseline useful in tests (it executes thread bodies in
// program order whenever possible).
type SequentialPolicy struct{}

// Name implements Policy.
func (SequentialPolicy) Name() string { return "sequential" }

// Step implements Policy.
func (SequentialPolicy) Step(v *View, r *rng.Rand) Decision {
	return v.Grant(v.Enabled[0])
}
