package sched

import (
	"strings"
	"testing"

	"racefuzzer/internal/event"
	"racefuzzer/internal/rng"
)

// alwaysEmptyPolicy never grants: the scheduler's stall-breaker must force
// progress and count it.
type alwaysEmptyPolicy struct{}

func (alwaysEmptyPolicy) Name() string                   { return "always-empty" }
func (alwaysEmptyPolicy) Step(*View, *rng.Rand) Decision { return Decision{} }

func TestStallBreakerForcesProgress(t *testing.T) {
	var final int
	res := Run(counterProgram(2, 3, &final), Config{Seed: 1, Policy: alwaysEmptyPolicy{}})
	if res.Deadlock != nil || res.Aborted {
		t.Fatalf("run wedged: %+v", res)
	}
	if final != 6 {
		t.Fatalf("final = %d", final)
	}
	if res.PolicyStalls == 0 {
		t.Fatal("stall-breaker never fired for an always-empty policy")
	}
}

func TestAccidentalGoPanicRecordedWithStack(t *testing.T) {
	prog := func(mt *Thread) {
		w := mt.Fork("panicker", func(c *Thread) {
			c.Nop(stmt("edge:pre"))
			var s []int
			_ = s[3] // real Go panic: index out of range
		})
		mt.Join(w)
	}
	res := Run(prog, Config{Seed: 2})
	if len(res.Exceptions) != 1 {
		t.Fatalf("exceptions = %v", res.Exceptions)
	}
	ex := res.Exceptions[0]
	if !strings.Contains(ex.Err.Error(), "model thread panicked") {
		t.Fatalf("err = %v", ex.Err)
	}
	if !strings.Contains(ex.Stack, "goroutine") {
		t.Fatal("no stack captured for accidental panic")
	}
	// Model Throw()s must NOT carry stacks (they are expected exceptions).
	prog2 := func(mt *Thread) {
		w := mt.Fork("thrower", func(c *Thread) { c.Throwf("edge: deliberate") })
		mt.Join(w)
	}
	res2 := Run(prog2, Config{Seed: 2})
	if len(res2.Exceptions) != 1 || res2.Exceptions[0].Stack != "" {
		t.Fatalf("deliberate throw carried a stack: %+v", res2.Exceptions)
	}
}

func TestDeadlockWithWaitingThreadsUnwinds(t *testing.T) {
	// A waiter nobody notifies: deadlock must be reported and every
	// goroutine (including the one parked in the wait set) unwound.
	prog := func(mt *Thread) {
		lk := mt.Scheduler().NewLock("mon")
		w := mt.Fork("waiter", func(c *Thread) {
			c.LockAcquire(lk, stmt("dwu:acq"))
			c.MonitorWait(lk, stmt("dwu:wait"))
		})
		mt.Join(w)
	}
	res := Run(prog, Config{Seed: 5})
	if res.Deadlock == nil {
		t.Fatal("lost-wakeup deadlock not reported")
	}
	found := false
	for _, b := range res.Deadlock.Blocked {
		if b.Name == "waiter" && b.Lock != event.NoLock {
			found = true
		}
	}
	if !found {
		t.Fatalf("deadlock info missing the waiter's lock: %v", res.Deadlock)
	}
}

func TestResultCounters(t *testing.T) {
	var final int
	res := Run(counterProgram(3, 2, &final), Config{Seed: 8, Name: "counters"})
	if res.Name != "counters" || res.Seed != 8 {
		t.Fatalf("metadata wrong: %+v", res)
	}
	if res.Threads != 4 { // main + 3 workers
		t.Fatalf("threads = %d", res.Threads)
	}
	if res.Locks != 1 {
		t.Fatalf("locks = %d", res.Locks)
	}
	// counter loc + 4 per-thread interrupt locs.
	if res.Locations != 5 {
		t.Fatalf("locations = %d", res.Locations)
	}
	if res.Steps == 0 {
		t.Fatal("no steps counted")
	}
}

func TestViewAccessors(t *testing.T) {
	checked := false
	probe := policyFunc(func(v *View, r *rng.Rand) Decision {
		if len(v.Enabled) > 0 {
			tid := v.Enabled[0]
			if !v.IsEnabled(tid) || !v.IsAlive(tid) {
				t.Error("enabled thread reported disabled/dead")
			}
			if v.AliveCount() <= 0 || v.Threads() <= 0 {
				t.Error("counts wrong")
			}
			if v.LocName(event.MemLoc(999)) == "" {
				t.Error("LocName empty for unknown loc")
			}
			checked = true
		}
		return Grant(v.Enabled[r.Intn(len(v.Enabled))])
	})
	var final int
	Run(counterProgram(2, 2, &final), Config{Seed: 3, Policy: probe})
	if !checked {
		t.Fatal("probe never ran")
	}
}

func TestHeldLocksView(t *testing.T) {
	sawHeld := false
	probe := policyFunc(func(v *View, r *rng.Rand) Decision {
		for _, tid := range v.Enabled {
			if len(v.HeldLocks(tid)) > 0 {
				sawHeld = true
				if v.LockHolder(v.HeldLocks(tid)[0]) != tid {
					t.Error("LockHolder inconsistent with HeldLocks")
				}
			}
		}
		return Grant(v.Enabled[r.Intn(len(v.Enabled))])
	})
	var final int
	Run(counterProgram(2, 3, &final), Config{Seed: 4, Policy: probe})
	if !sawHeld {
		t.Fatal("never observed a thread holding a lock")
	}
}

func TestWorkloadRandIsSeedDeterministic(t *testing.T) {
	draw := func(seed int64) []int {
		var out []int
		Run(func(mt *Thread) {
			for i := 0; i < 5; i++ {
				out = append(out, mt.Rand().Intn(1000))
			}
		}, Config{Seed: seed})
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("workload RNG not seed-deterministic")
		}
	}
	c := draw(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds gave identical workload streams")
	}
}
