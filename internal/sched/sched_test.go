package sched

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"racefuzzer/internal/event"
	"racefuzzer/internal/rng"
)

// recorder captures the event stream as strings for determinism comparisons.
type recorder struct{ lines []string }

func (r *recorder) OnEvent(e event.Event) { r.lines = append(r.lines, e.String()) }

func stmt(name string) event.Stmt { return event.StmtFor(name) }

// counterProgram forks n children that each increment a shared counter k
// times under a lock; returns a pointer to observe the final value.
func counterProgram(n, k int, final *int) func(*Thread) {
	return func(t *Thread) {
		s := t.Scheduler()
		loc := s.NewLoc("counter")
		lk := s.NewLock("L")
		val := 0
		kids := make([]*Thread, n)
		for i := 0; i < n; i++ {
			kids[i] = t.Fork(fmt.Sprintf("w%d", i), func(c *Thread) {
				for j := 0; j < k; j++ {
					c.LockAcquire(lk, stmt("acq"))
					c.MemRead(loc, stmt("read"))
					v := val
					c.MemWrite(loc, stmt("write"))
					val = v + 1
					c.LockRelease(lk, stmt("rel"))
				}
			})
		}
		for _, kid := range kids {
			t.Join(kid)
		}
		*final = val
	}
}

func TestCounterUnderLockIsExact(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		var final int
		res := Run(counterProgram(4, 25, &final), Config{Seed: seed})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: unexpected deadlock: %v", seed, res.Deadlock)
		}
		if len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: unexpected exceptions: %v", seed, res.Exceptions)
		}
		if final != 100 {
			t.Fatalf("seed %d: counter = %d, want 100", seed, final)
		}
		if res.Threads != 5 {
			t.Fatalf("seed %d: threads = %d, want 5", seed, res.Threads)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []string {
		rec := &recorder{}
		var final int
		Run(counterProgram(3, 10, &final), Config{Seed: seed, Observers: []Observer{rec}})
		return rec.lines
	}
	a := run(42)
	b := run(42)
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsUsuallyDiffer(t *testing.T) {
	run := func(seed int64) string {
		rec := &recorder{}
		var final int
		Run(counterProgram(3, 10, &final), Config{Seed: seed, Observers: []Observer{rec}})
		out := ""
		for _, l := range rec.lines {
			out += l + "\n"
		}
		return out
	}
	base := run(1)
	differ := 0
	for seed := int64(2); seed < 12; seed++ {
		if run(seed) != base {
			differ++
		}
	}
	if differ < 5 {
		t.Fatalf("only %d/10 seeds produced a different schedule", differ)
	}
}

func TestMutualExclusion(t *testing.T) {
	// With the lock, the critical section never observes a torn invariant.
	for seed := int64(0); seed < 30; seed++ {
		violated := false
		prog := func(t *Thread) {
			s := t.Scheduler()
			lk := s.NewLock("L")
			la := s.NewLoc("a")
			lb := s.NewLoc("b")
			a, b := 0, 0
			body := func(c *Thread) {
				for i := 0; i < 5; i++ {
					c.LockAcquire(lk, stmt("acq"))
					c.MemWrite(la, stmt("wa"))
					a++
					c.Nop(stmt("between"))
					c.MemWrite(lb, stmt("wb"))
					b++
					if a != b {
						violated = true
					}
					c.LockRelease(lk, stmt("rel"))
				}
			}
			k1 := t.Fork("w1", body)
			k2 := t.Fork("w2", body)
			t.Join(k1)
			t.Join(k2)
		}
		Run(prog, Config{Seed: seed})
		if violated {
			t.Fatalf("seed %d: mutual exclusion violated", seed)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Classic ABBA deadlock must be reported for some seed; under seeds where
	// one thread wins both locks first the program completes.
	sawDeadlock := false
	for seed := int64(0); seed < 50 && !sawDeadlock; seed++ {
		prog := func(t *Thread) {
			s := t.Scheduler()
			l1 := s.NewLock("L1")
			l2 := s.NewLock("L2")
			a := t.Fork("a", func(c *Thread) {
				c.LockAcquire(l1, stmt("a1"))
				c.Nop(stmt("a-mid"))
				c.LockAcquire(l2, stmt("a2"))
				c.LockRelease(l2, stmt("a3"))
				c.LockRelease(l1, stmt("a4"))
			})
			b := t.Fork("b", func(c *Thread) {
				c.LockAcquire(l2, stmt("b1"))
				c.Nop(stmt("b-mid"))
				c.LockAcquire(l1, stmt("b2"))
				c.LockRelease(l1, stmt("b3"))
				c.LockRelease(l2, stmt("b4"))
			})
			t.Join(a)
			t.Join(b)
		}
		res := Run(prog, Config{Seed: seed})
		if res.Deadlock != nil {
			sawDeadlock = true
			if len(res.Deadlock.Blocked) != 3 { // a, b, and main (blocked in join)
				t.Fatalf("blocked set = %v", res.Deadlock.Blocked)
			}
		}
	}
	if !sawDeadlock {
		t.Fatal("no seed exposed the ABBA deadlock")
	}
}

func TestWaitNotifyHandshake(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		got := -1
		prog := func(t *Thread) {
			s := t.Scheduler()
			lk := s.NewLock("mon")
			locReady := s.NewLoc("ready")
			locData := s.NewLoc("data")
			ready, data := false, 0
			consumer := t.Fork("consumer", func(c *Thread) {
				c.LockAcquire(lk, stmt("c-acq"))
				for {
					c.MemRead(locReady, stmt("c-check"))
					if ready {
						break
					}
					c.MonitorWait(lk, stmt("c-wait"))
				}
				c.MemRead(locData, stmt("c-read"))
				got = data
				c.LockRelease(lk, stmt("c-rel"))
			})
			t.LockAcquire(lk, stmt("p-acq"))
			t.MemWrite(locData, stmt("p-data"))
			data = 99
			t.MemWrite(locReady, stmt("p-ready"))
			ready = true
			t.MonitorNotify(lk, stmt("p-notify"))
			t.LockRelease(lk, stmt("p-rel"))
			t.Join(consumer)
		}
		res := Run(prog, Config{Seed: seed})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: deadlock: %v", seed, res.Deadlock)
		}
		if got != 99 {
			t.Fatalf("seed %d: consumer read %d, want 99", seed, got)
		}
	}
}

func TestNotifyWithoutWaitersIsNoop(t *testing.T) {
	prog := func(t *Thread) {
		lk := t.Scheduler().NewLock("mon")
		t.LockAcquire(lk, stmt("acq"))
		t.MonitorNotify(lk, stmt("notify"))
		t.MonitorNotifyAll(lk, stmt("notifyAll"))
		t.LockRelease(lk, stmt("rel"))
	}
	res := Run(prog, Config{Seed: 1})
	if res.Deadlock != nil || len(res.Exceptions) != 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestReentrantLockAndWaitDepthRestore(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ok := false
		prog := func(t *Thread) {
			s := t.Scheduler()
			lk := s.NewLock("mon")
			loc := s.NewLoc("flag")
			flag := false
			waiter := t.Fork("waiter", func(c *Thread) {
				c.LockAcquire(lk, stmt("w-acq1"))
				c.LockAcquire(lk, stmt("w-acq2")) // depth 2
				for {
					c.MemRead(loc, stmt("w-check"))
					if flag {
						break
					}
					c.MonitorWait(lk, stmt("w-wait")) // releases both levels
				}
				// Depth must be restored to 2: two releases needed.
				c.LockRelease(lk, stmt("w-rel1"))
				c.LockRelease(lk, stmt("w-rel2"))
				ok = true
			})
			t.LockAcquire(lk, stmt("m-acq")) // possible only if wait released fully
			t.MemWrite(loc, stmt("m-set"))
			flag = true
			t.MonitorNotifyAll(lk, stmt("m-notify"))
			t.LockRelease(lk, stmt("m-rel"))
			t.Join(waiter)
		}
		res := Run(prog, Config{Seed: seed})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: deadlock: %v", seed, res.Deadlock)
		}
		if len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: exceptions: %v", seed, res.Exceptions)
		}
		if !ok {
			t.Fatalf("seed %d: waiter did not complete", seed)
		}
	}
}

func TestIllegalMonitorStateOnUnlock(t *testing.T) {
	prog := func(t *Thread) {
		lk := t.Scheduler().NewLock("mon")
		t.LockRelease(lk, stmt("bad-unlock"))
	}
	res := Run(prog, Config{Seed: 3})
	if len(res.Exceptions) != 1 {
		t.Fatalf("exceptions = %v, want 1", res.Exceptions)
	}
	if !errors.Is(res.Exceptions[0].Err, ErrIllegalMonitorState) {
		t.Fatalf("err = %v, want IllegalMonitorState", res.Exceptions[0].Err)
	}
}

func TestIllegalMonitorStateOnWaitAndNotify(t *testing.T) {
	for _, mode := range []string{"wait", "notify"} {
		prog := func(t *Thread) {
			lk := t.Scheduler().NewLock("mon")
			if mode == "wait" {
				t.MonitorWait(lk, stmt("bad-wait"))
			} else {
				t.MonitorNotify(lk, stmt("bad-notify"))
			}
		}
		res := Run(prog, Config{Seed: 3})
		if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, ErrIllegalMonitorState) {
			t.Fatalf("%s: exceptions = %v", mode, res.Exceptions)
		}
	}
}

func TestThrowKillsThreadButNotRun(t *testing.T) {
	errBoom := errors.New("boom")
	for seed := int64(0); seed < 10; seed++ {
		completed := false
		prog := func(t *Thread) {
			s := t.Scheduler()
			lk := s.NewLock("L")
			bad := t.Fork("bad", func(c *Thread) {
				c.LockAcquire(lk, stmt("bad-acq"))
				c.Throw(errBoom) // dies holding L; scheduler must force-release
			})
			good := t.Fork("good", func(c *Thread) {
				c.LockAcquire(lk, stmt("good-acq"))
				c.LockRelease(lk, stmt("good-rel"))
				completed = true
			})
			t.Join(bad)
			t.Join(good)
		}
		res := Run(prog, Config{Seed: seed})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: deadlock: %v", seed, res.Deadlock)
		}
		if len(res.Exceptions) != 1 || !errors.Is(res.Exceptions[0].Err, errBoom) {
			t.Fatalf("seed %d: exceptions = %v", seed, res.Exceptions)
		}
		if !completed {
			t.Fatalf("seed %d: sibling thread did not complete", seed)
		}
	}
}

func TestStepLimitAbortsWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	prog := func(t *Thread) {
		spin := t.Fork("spinner", func(c *Thread) {
			for {
				c.Nop(stmt("spin"))
			}
		})
		t.Join(spin)
	}
	res := Run(prog, Config{Seed: 7, MaxSteps: 500})
	if !res.Aborted {
		t.Fatal("expected aborted result")
	}
	// Let the unwound goroutines finish their final park handoff.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, g)
	}
}

func TestForkReturnsChildAndJoinOrders(t *testing.T) {
	order := []string{}
	var forkedID event.ThreadID = -99
	prog := func(mt *Thread) {
		child := mt.Fork("child", func(c *Thread) {
			c.Nop(stmt("child-work"))
			order = append(order, "child")
		})
		forkedID = child.ID()
		mt.Join(child)
		order = append(order, "after-join")
	}
	Run(prog, Config{Seed: 9})
	if forkedID != 1 {
		t.Fatalf("forked thread ID = %v, want 1", forkedID)
	}
	if len(order) != 2 || order[0] != "child" || order[1] != "after-join" {
		t.Fatalf("order = %v", order)
	}
}

func TestSequentialPolicyIsStable(t *testing.T) {
	run := func() []string {
		rec := &recorder{}
		var final int
		Run(counterProgram(3, 5, &final), Config{Seed: 123, Policy: SequentialPolicy{}, Observers: []Observer{rec}})
		return rec.lines
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequential policy diverged at %d", i)
		}
	}
}

func TestRunToBlockPolicyCompletes(t *testing.T) {
	for _, preempt := range []float64{0, 0.05} {
		var final int
		res := Run(counterProgram(3, 10, &final), Config{
			Seed: 5, Policy: NewRunToBlockPolicy(preempt),
		})
		if res.Deadlock != nil || final != 30 {
			t.Fatalf("preempt=%v: final=%d res=%+v", preempt, final, res)
		}
	}
}

func TestCountingObserver(t *testing.T) {
	c := &CountingObserver{}
	var final int
	Run(counterProgram(2, 3, &final), Config{Seed: 11, Observers: []Observer{c}})
	if c.Mem != 2*3*2 {
		t.Fatalf("mem events = %d, want 12", c.Mem)
	}
	if c.Lock != 6 || c.Unlock != 6 {
		t.Fatalf("lock/unlock = %d/%d, want 6/6", c.Lock, c.Unlock)
	}
	// fork SND/RCV ×2 + exit SND ×3 (2 children + main at end? main's exit
	// SND is emitted too) + join RCV ×2.
	if c.Snd < 4 || c.Rcv < 4 {
		t.Fatalf("snd/rcv = %d/%d", c.Snd, c.Rcv)
	}
	if c.Total() != c.Mem+c.Snd+c.Rcv+c.Lock+c.Unlock {
		t.Fatal("total mismatch")
	}
}

func TestNotifyAllWakesEveryWaiter(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		woken := 0
		prog := func(t *Thread) {
			s := t.Scheduler()
			lk := s.NewLock("mon")
			locGo := s.NewLoc("go")
			goFlag := false
			kids := make([]*Thread, 3)
			for i := range kids {
				kids[i] = t.Fork(fmt.Sprintf("w%d", i), func(c *Thread) {
					c.LockAcquire(lk, stmt("w-acq"))
					for {
						c.MemRead(locGo, stmt("w-check"))
						if goFlag {
							break
						}
						c.MonitorWait(lk, stmt("w-wait"))
					}
					woken++
					c.LockRelease(lk, stmt("w-rel"))
				})
			}
			// Give the waiters a chance to park in the wait set first: they
			// must acquire the monitor before we do; scheduling order varies
			// by seed, and the flag protocol makes every order correct.
			t.LockAcquire(lk, stmt("m-acq"))
			t.MemWrite(locGo, stmt("m-set"))
			goFlag = true
			t.MonitorNotifyAll(lk, stmt("m-notify"))
			t.LockRelease(lk, stmt("m-rel"))
			for _, k := range kids {
				t.Join(k)
			}
		}
		res := Run(prog, Config{Seed: seed})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: deadlock: %v", seed, res.Deadlock)
		}
		if woken != 3 {
			t.Fatalf("seed %d: woken = %d, want 3", seed, woken)
		}
	}
}

func TestViewExposesPendingOps(t *testing.T) {
	sawRace := false
	probe := policyFunc(func(v *View, r *rng.Rand) Decision {
		// When both children are parked at their writes, the view must show
		// conflicting pending mem ops at the same location.
		var ops []Op
		for _, tid := range v.Enabled {
			op := v.Op(tid)
			if op.IsMem() {
				ops = append(ops, op)
			}
		}
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				if ops[i].ConflictsWith(ops[j]) {
					sawRace = true
				}
			}
		}
		return Grant(v.Enabled[r.Intn(len(v.Enabled))])
	})
	prog := func(t *Thread) {
		loc := t.Scheduler().NewLoc("x")
		k1 := t.Fork("a", func(c *Thread) { c.MemWrite(loc, stmt("wa")) })
		k2 := t.Fork("b", func(c *Thread) { c.MemWrite(loc, stmt("wb")) })
		t.Join(k1)
		t.Join(k2)
	}
	found := false
	for seed := int64(0); seed < 20; seed++ {
		sawRace = false
		Run(prog, Config{Seed: seed, Policy: probe})
		if sawRace {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed showed both conflicting ops pending simultaneously")
	}
}

// policyFunc adapts a function to Policy for tests.
type policyFunc func(v *View, r *rng.Rand) Decision

func (policyFunc) Name() string { return "test-policy" }
func (f policyFunc) Step(v *View, r *rng.Rand) Decision {
	return f(v, r)
}
