//go:build race

package sched

// raceDetectorEnabled reports whether the test binary was built with -race,
// which instruments every call and invalidates ns-level timing assertions.
const raceDetectorEnabled = true
