package sched

import "racefuzzer/internal/event"

// Single-runnable fast path ("trampoline"). When a parking thread makes the
// system quiescent, it runs the controller's scheduling round itself, on its
// own goroutine, under the scheduler mutex. If the policy grants that same
// thread — the overwhelmingly common case in phase-2 directed runs, where
// one thread executes long stretches alone — the park returns immediately:
// no wakeup, no controller round trip, no goroutine switch at all.
// Consecutive grants to a lone runnable thread thus fuse into plain function
// calls on the thread's own stack.
//
// Determinism is preserved because the trampoline IS the controller round:
// it calls the same pollIntrospect / enabledThreads / policy.Step /
// recordDecision / prof probes in the same order, consuming the same RNG
// draws. When the decision is anything it cannot apply itself (another
// thread, a multi-grant batch, a fork, or termination), it hands the
// already-recorded decision to the controller verbatim — the controller
// adopts it without re-deciding, so each round is decided exactly once no
// matter which goroutine ran it.

// tryInline attempts to drive scheduling rounds on t's own goroutine after
// t's park made the system quiescent. It returns true if t itself was
// granted (t's park returns without blocking); false if the controller must
// take over — either a handed-off decision is pending or the round reached a
// state (termination, step limit) only the controller handles. Called with
// s.mu held and s.inFlight == 0.
func (s *Scheduler) tryInline(t *Thread) bool {
	if s.batchLeft != 0 || s.abortedRun || s.handoffGrants != nil {
		// Mid-batch quiescence or shutdown: the controller owns the round.
		return false
	}
	for {
		s.pollIntrospect()
		enabled := s.enabledThreads()
		if len(enabled) == 0 || s.steps >= s.maxSteps {
			// Termination (deadlock, normal exit, step limit): bail before
			// consuming any randomness — the controller re-derives the same
			// condition from the same state and finalizes.
			return false
		}
		if s.metrics != nil {
			s.metrics.ObserveEnabled(len(enabled))
		}
		s.view.Step = s.steps
		s.view.Enabled = enabled
		dec := s.policy.Step(&s.view, s.rng)
		s.recordDecision(enabled, dec.Grants, false)
		if s.prof != nil {
			s.prof.Round(len(enabled), len(dec.Grants))
		}
		if len(dec.Grants) == 0 {
			s.emptyRounds++
			if s.emptyRounds > 2*len(s.threads)+16 {
				s.stalls++
				s.grantBuf[0] = enabled[s.rng.Intn(len(enabled))]
				forced := s.grantBuf[:1]
				s.recordDecision(enabled, forced, true)
				if s.prof != nil {
					s.prof.ForcedGrant()
				}
				s.emptyRounds = 0
				if forced[0] == t.id && t.pending.Kind != OpFork {
					s.applyGrant(t)
					return true
				}
				s.handoff(forced)
				return false
			}
			continue
		}
		s.emptyRounds = 0
		if len(dec.Grants) == 1 && dec.Grants[0] == t.id &&
			t.pending.Kind != OpFork && s.isEnabled(t.id) {
			// The policy granted the parking thread itself: apply the op and
			// let park return into the thread's own stack. Forks are
			// excluded — starting the child mid-park would put two
			// goroutines in flight from inside one; the controller path
			// handles that case identically, just slower.
			s.applyGrant(t)
			return true
		}
		s.handoff(dec.Grants)
		return false
	}
}

// handoff publishes an inline-decided grant batch for the controller to
// apply verbatim. The batch is copied into a scheduler-owned buffer: the
// source slice may be policy scratch (or s.grantBuf) that later rounds
// overwrite.
func (s *Scheduler) handoff(g []event.ThreadID) {
	s.handoffBuf = append(s.handoffBuf[:0], g...)
	s.handoffGrants = s.handoffBuf
}
