//go:build !race

package sched

const raceDetectorEnabled = false
