package sched

import (
	"fmt"
	"strings"

	"racefuzzer/internal/event"
)

// Flight-recorder hook: in addition to the event stream (Observer), the
// scheduler can surface its *decisions* — which thread was chosen out of
// which enabled set, and how much randomness had been consumed at that
// point — and the policy's *actions* (postpone/resume/livelock-break and
// race-check outcomes). Together with the events these form the full causal
// record of one execution; internal/flightrec persists them as a versioned
// JSONL trace and diffs two recordings to check the paper's seed-replay
// guarantee step by step.
//
// Decisions are recorded controller-side, not policy-side, for two reasons:
// every policy (including the baselines) is covered without instrumentation,
// and the record captures what the scheduler actually did — including
// force-grants past a stalled policy — rather than what the policy asked for.

// DecisionRecord describes one scheduling round from the controller's view.
type DecisionRecord struct {
	// Round is the 0-based index of the policy round within the execution.
	Round int
	// Step is the scheduler step count when the decision was taken (steps
	// advance only on grants, so consecutive empty rounds share a Step).
	Step int
	// Enabled is Enabled(s) at decision time, ascending.
	Enabled []event.ThreadID
	// Grants is the policy's answer (possibly empty), in grant order.
	Grants []event.ThreadID
	// Draws is the total number of raw RNG draws consumed by the execution
	// after the decision — the position in the random stream. Two replays of
	// the same seed must agree on every Draws value; a mismatch pinpoints
	// the first round at which randomness was consumed differently.
	Draws uint64
	// Forced marks a grant the scheduler imposed after the policy returned
	// empty decisions past the stall bound (Result.PolicyStalls counts them).
	Forced bool
}

func (d DecisionRecord) String() string {
	forced := ""
	if d.Forced {
		forced = " FORCED"
	}
	return fmt.Sprintf("round %d step %d: enabled=%s grants=%s draws=%d%s",
		d.Round, d.Step, threadList(d.Enabled), threadList(d.Grants), d.Draws, forced)
}

// ActionKind enumerates the policy actions a flight recorder captures.
type ActionKind int

const (
	// ActPostpone is a thread entering the policy's postponed set (Algorithm
	// 1 lines 14 and 21, and the analogous moves of the deadlock- and
	// atomicity-directed policies).
	ActPostpone ActionKind = iota
	// ActResume is a postponed thread released because postponed ⊇ enabled
	// (Algorithm 1 line 26).
	ActResume
	// ActLivelockBreak is a postponed thread released by the livelock
	// monitor's age bound (§4).
	ActLivelockBreak
	// ActRace is a successful race check: the candidate thread arrived at
	// the target pair conflicting with postponed thread(s) — a real race,
	// resolved by coin flip (CandidateFirst records the outcome).
	ActRace
	// ActViolation is a confirmed atomicity violation: an interferer was
	// deliberately interleaved inside the victim's atomic block.
	ActViolation
)

func (k ActionKind) String() string {
	switch k {
	case ActPostpone:
		return "postpone"
	case ActResume:
		return "resume"
	case ActLivelockBreak:
		return "livelock-break"
	case ActRace:
		return "race"
	case ActViolation:
		return "violation"
	}
	return fmt.Sprintf("action(%d)", int(k))
}

// ActionKindFor is the inverse of ActionKind.String, for trace loading.
func ActionKindFor(s string) (ActionKind, bool) {
	for k := ActPostpone; k <= ActViolation; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// ActionRecord describes one policy action. Which fields are meaningful
// depends on Kind:
//
//   - ActPostpone:      Thread (the postponed thread), Stmt/Loc or Lock (its
//     pending operation's target).
//   - ActResume:        Thread (the released thread).
//   - ActLivelockBreak: Thread (the aged-out thread).
//   - ActRace:          Thread (the arriving candidate), Others (the
//     postponed threads it races with), Stmt (candidate's statement),
//     OtherStmt (postponed side's statement), Loc, CandidateFirst.
//   - ActViolation:     Thread (the victim inside its atomic block), Others
//     (the interferer), Stmt (the block's second access), OtherStmt (the
//     interferer's statement), Loc.
type ActionRecord struct {
	Kind   ActionKind
	Step   int
	Thread event.ThreadID
	Others []event.ThreadID
	// Stmt and OtherStmt are the statements involved (NoStmt when the action
	// has no statement, e.g. a lock-acquisition postpone).
	Stmt      event.Stmt
	OtherStmt event.Stmt
	Loc       event.MemLoc
	// LocName is Loc's debug name (View.LocName), carried so a recording
	// explains itself across processes.
	LocName string
	Lock    event.LockID
	// CandidateFirst records the race resolution (ActRace only).
	CandidateFirst bool
}

func (a ActionRecord) String() string {
	switch a.Kind {
	case ActRace:
		order := "postponed-first"
		if a.CandidateFirst {
			order = "candidate-first"
		}
		return fmt.Sprintf("race at step %d: %s@%s vs %s@%s on %s, resolved %s",
			a.Step, a.Thread, a.Stmt, threadList(a.Others), a.OtherStmt, a.Loc, order)
	case ActViolation:
		return fmt.Sprintf("violation at step %d: %s@%s interleaved inside %s's block before %s@%s on %s",
			a.Step, threadList(a.Others), a.OtherStmt, a.Thread, a.Thread, a.Stmt, a.Loc)
	case ActPostpone:
		at := ""
		if a.Stmt != event.NoStmt {
			at = fmt.Sprintf(" before %s on %s", a.Stmt, a.Loc)
		} else if a.Lock != event.NoLock {
			at = fmt.Sprintf(" before acquiring %s", a.Lock)
		}
		return fmt.Sprintf("postpone %s at step %d%s", a.Thread, a.Step, at)
	}
	return fmt.Sprintf("%s %s at step %d", a.Kind, a.Thread, a.Step)
}

// FlightObserver receives the scheduling decisions and policy actions of one
// execution, interleaved with the event stream in causal order. Like
// Observers, flight observers run synchronously on the controller goroutine
// and must not block or perturb anything. A FlightObserver that also
// implements Observer is automatically subscribed to the event stream by
// Run; do not list it in Config.Observers as well.
type FlightObserver interface {
	OnDecision(d DecisionRecord)
	OnAction(a ActionRecord)
}

func threadList(ts []event.ThreadID) string {
	if len(ts) == 0 {
		return "[]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, t := range ts {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.String())
	}
	b.WriteByte(']')
	return b.String()
}
