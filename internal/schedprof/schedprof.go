// Package schedprof is the scheduler's performance profiler: an
// allocation-free, ring-buffer timeline of the grant loop's hot path,
// aggregated post-trial into obs histograms and exportable as a Chrome
// trace-event file (Perfetto, chrome://tracing).
//
// It follows the same two design rules as the obs package and the
// Introspector (see DESIGN.md, "Observability"):
//
//   - Zero-overhead off switch. internal/sched carries one nil check per
//     probe site (`if s.prof != nil`); with no Trial attached the hot path
//     is byte-for-byte the unprofiled one. Every Trial method is also
//     nil-safe, so call sites outside the scheduler need no guards.
//   - Probes never perturb the schedule. Recording reads the monotonic
//     clock and writes into preallocated fixed-size arrays on the
//     controller goroutine; nothing draws randomness, blocks, allocates,
//     or communicates. A trial profiled and unprofiled replays the
//     identical schedule.
//
// The package deliberately does not import internal/sched (sched imports
// schedprof); op kinds arrive as plain ints and are named by a table that a
// sched-side test cross-checks against OpKind.String.
package schedprof

import (
	"sync"
	"time"

	"racefuzzer/internal/obs"
)

// NumOpKinds is the number of scheduler op kinds (sched.OpBegin through
// sched.OpInterrupt). Kept in lockstep with internal/sched by a cross-check
// test there; Grant calls with out-of-range kinds are dropped.
const NumOpKinds = 13

// kindNames mirrors sched.OpKind.String for kinds 0..NumOpKinds-1.
var kindNames = [NumOpKinds]string{
	"begin", "read", "write", "lock", "unlock", "wait-enter", "wait-resume",
	"notify", "notifyAll", "fork", "join", "nop", "interrupt",
}

// KindName returns the display name of op kind k ("begin", "read", ...).
func KindName(k int) string {
	if k < 0 || k >= NumOpKinds {
		return "op(?)"
	}
	return kindNames[k]
}

// Phase indexes the per-trial phase marks the scheduler records.
type Phase int

const (
	// PhaseLoopEnter marks the end of startup: threads spawned and parked,
	// the decision loop about to take its first round.
	PhaseLoopEnter Phase = iota
	// PhaseLoopExit marks the decision loop returning (normal termination,
	// deadlock, or step-limit abort), teardown about to begin.
	PhaseLoopExit
	// PhaseDone marks the run complete (result built, all goroutines dead).
	PhaseDone
	numPhases
)

// phaseNames names the derived phase durations, in report order.
var phaseNames = [numPhases]string{"startup", "loop", "teardown"}

// DefaultRingSize is the per-trial span-ring capacity used by Collector
// trials: large enough to hold every span of the repository's model
// programs, small enough to pool freely. Older spans are overwritten (and
// counted as dropped) when a trial outgrows it.
const DefaultRingSize = 4096

// enabledCap caps the exact enabled-set-size distribution; rounds with more
// enabled threads than this are counted in the top bucket.
const enabledCap = 64

// Span is one granted op on the timeline. Times are nanoseconds relative to
// the trial's start.
type Span struct {
	// StartNs is the grant time (controller decided to run the op).
	StartNs int64 `json:"startNs"`
	// WaitNs is how long the thread was parked before this grant
	// (park -> grant; for blocked ops this includes the blocked time).
	WaitNs int64 `json:"waitNs"`
	// DurNs is the service time: grant -> quiescence, covering the op's
	// synchronization effect plus the thread's uninstrumented run to its
	// next yield.
	DurNs int64 `json:"durNs"`
	// Thread is the granted thread's id (T0 = main).
	Thread int32 `json:"thread"`
	// Kind is the op kind (see KindName).
	Kind int32 `json:"kind"`
	// Step is the scheduler step the grant executed as.
	Step int32 `json:"step"`
}

// Trial is the per-execution profile: a fixed-size span ring plus exact
// per-kind totals, written only by the controller goroutine of the run it
// is attached to (sched.Config.Prof). Obtain one from Collector.StartTrial
// (pooled, aggregated on FinishTrial) or NewTrial (standalone, for timeline
// export). All methods are nil-safe.
type Trial struct {
	name  string
	seed  int64
	begin time.Time

	ring []Span
	n    int64 // spans ever recorded; ring slot = n % len(ring)

	count   [NumOpKinds]int64
	waitSum [NumOpKinds]int64
	svcSum  [NumOpKinds]int64

	enabled [enabledCap + 1]int64
	rounds  int64
	empty   int64
	forced  int64

	phase   [numPhases]int64
	threads []string
}

// NewTrial creates a standalone trial (no collector) with the given span
// ring capacity; ringSize <= 0 means DefaultRingSize. The clock starts now.
func NewTrial(name string, seed int64, ringSize int) *Trial {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Trial{name: name, seed: seed, begin: time.Now(), ring: make([]Span, ringSize)}
}

// reset clears the trial for reuse; ring contents are left stale (n == 0
// marks them dead).
func (t *Trial) reset(name string, seed int64) {
	t.name, t.seed, t.begin = name, seed, time.Now()
	t.n = 0
	t.count = [NumOpKinds]int64{}
	t.waitSum = [NumOpKinds]int64{}
	t.svcSum = [NumOpKinds]int64{}
	t.enabled = [enabledCap + 1]int64{}
	t.rounds, t.empty, t.forced = 0, 0, 0
	t.phase = [numPhases]int64{}
	t.threads = t.threads[:0]
}

// Clock returns nanoseconds since the trial started (0 for nil). The
// scheduler stamps park times with it so Grant can compute wait latency.
func (t *Trial) Clock() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.begin))
}

// ThreadName records thread id's debug name (called at fork, not on the
// hot path). Ids arrive in creation order, so the table grows append-only.
func (t *Trial) ThreadName(id int, name string) {
	if t == nil {
		return
	}
	for len(t.threads) <= id {
		t.threads = append(t.threads, "")
	}
	t.threads[id] = name
}

// Round records one decision-loop round: the enabled-set size the policy
// saw and how many grants it returned (0 = an empty round).
func (t *Trial) Round(enabled, grants int) {
	if t == nil {
		return
	}
	if enabled > enabledCap {
		enabled = enabledCap
	}
	t.enabled[enabled]++
	t.rounds++
	if grants == 0 {
		t.empty++
	}
}

// ForcedGrant counts one stall-breaking forced grant (the scheduler pushing
// past a policy that returned empty rounds for too long).
func (t *Trial) ForcedGrant() {
	if t != nil {
		t.forced++
	}
}

// Grant records one granted op: kind/thread/step identify it, startNs is
// the grant time, waitNs the park->grant latency, durNs the
// grant->quiescence service time. Out-of-range kinds are dropped.
func (t *Trial) Grant(kind, thread, step int, startNs, waitNs, durNs int64) {
	if t == nil || uint(kind) >= NumOpKinds {
		return
	}
	if waitNs < 0 {
		waitNs = 0
	}
	t.ring[t.n%int64(len(t.ring))] = Span{
		StartNs: startNs, WaitNs: waitNs, DurNs: durNs,
		Thread: int32(thread), Kind: int32(kind), Step: int32(step),
	}
	t.n++
	t.count[kind]++
	t.waitSum[kind] += waitNs
	t.svcSum[kind] += durNs
}

// Mark stamps phase boundary p at the current clock.
func (t *Trial) Mark(p Phase) {
	if t == nil || p < 0 || p >= numPhases {
		return
	}
	t.phase[p] = t.Clock()
}

// Spans returns how many spans were recorded (including any that wrapped
// out of the ring).
func (t *Trial) Spans() int64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many spans were overwritten by ring wraparound.
func (t *Trial) Dropped() int64 {
	if t == nil {
		return 0
	}
	if d := t.n - int64(len(t.ring)); d > 0 {
		return d
	}
	return 0
}

// latencyBounds are the wait/service histogram bucket bounds in
// nanoseconds (100ns .. 100ms, then overflow).
var latencyBounds = []float64{
	100, 250, 500, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4,
	1e5, 2.5e5, 5e5, 1e6, 5e6, 2.5e7, 1e8,
}

// phaseBounds are the per-trial phase duration bucket bounds in
// nanoseconds (10µs .. 5s, then overflow).
var phaseBounds = []float64{1e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8, 5e8, 1e9, 5e9}

// Collector aggregates trials campaign-wide: per-op-kind wait/service
// histograms (ring-sampled), exact totals, enabled-set distribution and
// phase timings. Trials are pooled, so a steady-state campaign profiles
// without allocating. Safe for concurrent StartTrial/FinishTrial from
// parallel campaign workers; a nil *Collector hands out nil trials and
// reports an empty summary, so the whole chain is inert when profiling is
// off.
type Collector struct {
	ringSize int
	pool     sync.Pool

	mu      sync.Mutex
	trials  int64
	spans   int64
	sampled int64
	dropped int64
	rounds  int64
	empty   int64
	forced  int64

	count   [NumOpKinds]int64
	waitSum [NumOpKinds]int64
	svcSum  [NumOpKinds]int64
	wait    [NumOpKinds]*obs.Histogram
	svc     [NumOpKinds]*obs.Histogram

	enabled [enabledCap + 1]int64
	phases  [numPhases]*obs.Histogram
}

// NewCollector creates a collector with DefaultRingSize trial rings.
func NewCollector() *Collector {
	c := &Collector{ringSize: DefaultRingSize}
	for k := 0; k < NumOpKinds; k++ {
		c.wait[k] = obs.NewHistogram(latencyBounds...)
		c.svc[k] = obs.NewHistogram(latencyBounds...)
	}
	for p := range c.phases {
		c.phases[p] = obs.NewHistogram(phaseBounds...)
	}
	return c
}

// StartTrial hands out a pooled trial for one execution (nil collector:
// nil trial). Attach it as sched.Config.Prof and return it via FinishTrial.
func (c *Collector) StartTrial(name string, seed int64) *Trial {
	if c == nil {
		return nil
	}
	if v := c.pool.Get(); v != nil {
		t := v.(*Trial)
		t.reset(name, seed)
		return t
	}
	return NewTrial(name, seed, c.ringSize)
}

// FinishTrial folds a completed trial into the campaign aggregates and
// returns it to the pool. The trial must not be used afterwards. Nil
// collector or trial: no-op.
func (c *Collector) FinishTrial(t *Trial) {
	if c == nil || t == nil {
		return
	}
	m := t.n
	if r := int64(len(t.ring)); m > r {
		m = r
	}
	c.mu.Lock()
	c.trials++
	c.spans += t.n
	c.sampled += m
	c.dropped += t.n - m
	c.rounds += t.rounds
	c.empty += t.empty
	c.forced += t.forced
	for i := int64(0); i < m; i++ {
		sp := &t.ring[i]
		c.wait[sp.Kind].Observe(float64(sp.WaitNs))
		c.svc[sp.Kind].Observe(float64(sp.DurNs))
	}
	for k := 0; k < NumOpKinds; k++ {
		c.count[k] += t.count[k]
		c.waitSum[k] += t.waitSum[k]
		c.svcSum[k] += t.svcSum[k]
	}
	for i, n := range t.enabled {
		c.enabled[i] += n
	}
	if t.phase[PhaseDone] > 0 {
		c.phases[0].Observe(float64(t.phase[PhaseLoopEnter]))
		c.phases[1].Observe(float64(t.phase[PhaseLoopExit] - t.phase[PhaseLoopEnter]))
		c.phases[2].Observe(float64(t.phase[PhaseDone] - t.phase[PhaseLoopExit]))
	}
	c.mu.Unlock()
	c.pool.Put(t)
}

// LatencySummary is one latency distribution: the mean is exact (from
// running totals); the quantiles and max are estimated from the ring-sampled
// histogram, i.e. over the most recent DefaultRingSize spans of each trial.
type LatencySummary struct {
	MeanNs float64 `json:"meanNs"`
	P50    float64 `json:"p50Ns"`
	P90    float64 `json:"p90Ns"`
	P99    float64 `json:"p99Ns"`
	MaxNs  float64 `json:"maxNs"`
}

func latencySummary(count, sum int64, h *obs.Histogram) LatencySummary {
	s := h.Snapshot()
	out := LatencySummary{
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		MaxNs: s.Max,
	}
	if count > 0 {
		out.MeanNs = float64(sum) / float64(count)
	}
	return out
}

// OpSummary is one op kind's aggregate latency profile.
type OpSummary struct {
	Kind    string         `json:"kind"`
	Count   int64          `json:"count"`
	Wait    LatencySummary `json:"wait"`
	Service LatencySummary `json:"service"`
}

// PhaseSummary is one trial phase's duration distribution.
type PhaseSummary struct {
	Phase  string  `json:"phase"`
	Count  int64   `json:"count"`
	MeanNs float64 `json:"meanNs"`
	P50    float64 `json:"p50Ns"`
	P99    float64 `json:"p99Ns"`
	MaxNs  float64 `json:"maxNs"`
}

// Summary is the collector's JSON-ready aggregate view: the payload of the
// observatory's /debug/perf and of benchsnap's latency_ns block.
type Summary struct {
	Trials       int64          `json:"trials"`
	Grants       int64          `json:"grants"`
	Rounds       int64          `json:"rounds"`
	EmptyRounds  int64          `json:"emptyRounds"`
	ForcedGrants int64          `json:"forcedGrants"`
	SampledSpans int64          `json:"sampledSpans"`
	DroppedSpans int64          `json:"droppedSpans"`
	EnabledMean  float64        `json:"enabledMean"`
	EnabledMax   int            `json:"enabledMax"`
	Ops          []OpSummary    `json:"ops"`
	Phases       []PhaseSummary `json:"phases,omitempty"`
}

// Summary builds the aggregate view; ops with no samples are omitted. Nil
// collector: zero summary.
func (c *Collector) Summary() Summary {
	if c == nil {
		return Summary{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Summary{
		Trials:       c.trials,
		Rounds:       c.rounds,
		EmptyRounds:  c.empty,
		ForcedGrants: c.forced,
		SampledSpans: c.sampled,
		DroppedSpans: c.dropped,
	}
	for k := 0; k < NumOpKinds; k++ {
		n := c.count[k]
		out.Grants += n
		if n == 0 {
			continue
		}
		out.Ops = append(out.Ops, OpSummary{
			Kind:    kindNames[k],
			Count:   n,
			Wait:    latencySummary(n, c.waitSum[k], c.wait[k]),
			Service: latencySummary(n, c.svcSum[k], c.svc[k]),
		})
	}
	var sizeSum, sizeN int64
	for size, n := range c.enabled {
		if n == 0 {
			continue
		}
		sizeSum += int64(size) * n
		sizeN += n
		out.EnabledMax = size
	}
	if sizeN > 0 {
		out.EnabledMean = float64(sizeSum) / float64(sizeN)
	}
	for p, h := range c.phases {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		out.Phases = append(out.Phases, PhaseSummary{
			Phase:  phaseNames[p],
			Count:  s.Count,
			MeanNs: s.Mean(),
			P50:    s.Quantile(0.50),
			P99:    s.Quantile(0.99),
			MaxNs:  s.Max,
		})
	}
	return out
}

// Trials returns how many trials have been folded in (0 for nil).
func (c *Collector) Trials() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trials
}
