package schedprof

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Timeline is an immutable copy of one trial's span ring, unwrapped into
// chronological order, plus the metadata a trace viewer needs. Build it
// with Trial.Timeline before handing the trial back to a collector.
type Timeline struct {
	Name    string
	Seed    int64
	Threads []string
	Spans   []Span
	Phase   [int(numPhases)]int64
	Dropped int64
}

// Timeline snapshots the trial (nil trial: nil timeline). When the ring
// wrapped, the timeline holds the most recent len(ring) spans and Dropped
// counts the overwritten prefix.
func (t *Trial) Timeline() *Timeline {
	if t == nil {
		return nil
	}
	cap64 := int64(len(t.ring))
	m := t.n
	if m > cap64 {
		m = cap64
	}
	tl := &Timeline{
		Name:    t.name,
		Seed:    t.seed,
		Threads: append([]string(nil), t.threads...),
		Spans:   make([]Span, m),
		Dropped: t.n - m,
	}
	copy(tl.Phase[:], t.phase[:])
	first := t.n - m // index of the oldest surviving span
	for i := int64(0); i < m; i++ {
		tl.Spans[i] = t.ring[(first+i)%cap64]
	}
	return tl
}

// traceEvent is one Chrome trace-event object ("X" complete slices and "M"
// metadata). Timestamps and durations are microseconds, per the format.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object form of the Chrome trace-event format, the
// shape Perfetto and chrome://tracing load directly.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const (
	tracePid = 1
	// schedTid is the synthetic scheduler track; model thread T(i) renders
	// as tid i+1.
	schedTid = 0
)

func metaEvent(name string, tid int, args map[string]any) traceEvent {
	return traceEvent{Name: name, Ph: "M", Pid: tracePid, Tid: tid, Args: args}
}

const usPerNs = 1e-3

// WriteTrace writes the timeline as Chrome trace-event JSON: one track per
// model thread (a wait slice while parked, then the op's service slice)
// plus a scheduler track carrying the trial's startup/loop/teardown phases.
func (tl *Timeline) WriteTrace(w io.Writer) error {
	if tl == nil {
		return fmt.Errorf("schedprof: nil timeline")
	}
	evs := make([]traceEvent, 0, 2*len(tl.Spans)+2*len(tl.Threads)+8)
	evs = append(evs, metaEvent("process_name", schedTid,
		map[string]any{"name": fmt.Sprintf("racefuzzer trial %q seed=%d", tl.Name, tl.Seed)}))
	evs = append(evs, metaEvent("thread_name", schedTid, map[string]any{"name": "scheduler"}))
	evs = append(evs, metaEvent("thread_sort_index", schedTid, map[string]any{"sort_index": 0}))
	for id, name := range tl.Threads {
		tid := id + 1
		evs = append(evs, metaEvent("thread_name", tid,
			map[string]any{"name": fmt.Sprintf("T%d %s", id, name)}))
		evs = append(evs, metaEvent("thread_sort_index", tid, map[string]any{"sort_index": tid}))
	}
	if tl.Phase[PhaseDone] > 0 {
		bounds := [][2]int64{
			{0, tl.Phase[PhaseLoopEnter]},
			{tl.Phase[PhaseLoopEnter], tl.Phase[PhaseLoopExit]},
			{tl.Phase[PhaseLoopExit], tl.Phase[PhaseDone]},
		}
		for p, b := range bounds {
			evs = append(evs, traceEvent{
				Name: phaseNames[p], Cat: "phase", Ph: "X",
				Ts: float64(b[0]) * usPerNs, Dur: float64(b[1]-b[0]) * usPerNs,
				Pid: tracePid, Tid: schedTid,
			})
		}
	}
	for _, sp := range tl.Spans {
		tid := int(sp.Thread) + 1
		kind := KindName(int(sp.Kind))
		if sp.WaitNs > 0 {
			evs = append(evs, traceEvent{
				Name: "wait:" + kind, Cat: "wait", Ph: "X",
				Ts: float64(sp.StartNs-sp.WaitNs) * usPerNs, Dur: float64(sp.WaitNs) * usPerNs,
				Pid: tracePid, Tid: tid,
				Args: map[string]any{"step": sp.Step},
			})
		}
		evs = append(evs, traceEvent{
			Name: kind, Cat: "op", Ph: "X",
			Ts: float64(sp.StartNs) * usPerNs, Dur: float64(sp.DurNs) * usPerNs,
			Pid: tracePid, Tid: tid,
			Args: map[string]any{"step": sp.Step, "waitNs": sp.WaitNs, "serviceNs": sp.DurNs},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// SaveFile writes the timeline's trace to path, creating parent
// directories (so a -perfdir that does not exist yet just works).
func (tl *Timeline) SaveFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
