package schedprof

import (
	"fmt"
	"io"

	"racefuzzer/internal/traceevent"
)

// Timeline is an immutable copy of one trial's span ring, unwrapped into
// chronological order, plus the metadata a trace viewer needs. Build it
// with Trial.Timeline before handing the trial back to a collector.
type Timeline struct {
	Name    string
	Seed    int64
	Threads []string
	Spans   []Span
	Phase   [int(numPhases)]int64
	Dropped int64
}

// Timeline snapshots the trial (nil trial: nil timeline). When the ring
// wrapped, the timeline holds the most recent len(ring) spans and Dropped
// counts the overwritten prefix.
func (t *Trial) Timeline() *Timeline {
	if t == nil {
		return nil
	}
	cap64 := int64(len(t.ring))
	m := t.n
	if m > cap64 {
		m = cap64
	}
	tl := &Timeline{
		Name:    t.name,
		Seed:    t.seed,
		Threads: append([]string(nil), t.threads...),
		Spans:   make([]Span, m),
		Dropped: t.n - m,
	}
	copy(tl.Phase[:], t.phase[:])
	first := t.n - m // index of the oldest surviving span
	for i := int64(0); i < m; i++ {
		tl.Spans[i] = t.ring[(first+i)%cap64]
	}
	return tl
}

const (
	tracePid = 1
	// schedTid is the synthetic scheduler track; model thread T(i) renders
	// as tid i+1.
	schedTid = 0
)

const usPerNs = traceevent.UsPerNs

// Events renders the timeline as Chrome trace events: one track per model
// thread (a wait slice while parked, then the op's service slice) plus a
// scheduler track carrying the trial's startup/loop/teardown phases.
func (tl *Timeline) Events() []traceevent.Event {
	evs := make([]traceevent.Event, 0, 2*len(tl.Spans)+2*len(tl.Threads)+8)
	evs = append(evs, traceevent.Meta("process_name", tracePid, schedTid,
		map[string]any{"name": fmt.Sprintf("racefuzzer trial %q seed=%d", tl.Name, tl.Seed)}))
	evs = append(evs, traceevent.Meta("thread_name", tracePid, schedTid, map[string]any{"name": "scheduler"}))
	evs = append(evs, traceevent.Meta("thread_sort_index", tracePid, schedTid, map[string]any{"sort_index": 0}))
	for id, name := range tl.Threads {
		tid := id + 1
		evs = append(evs, traceevent.Meta("thread_name", tracePid, tid,
			map[string]any{"name": fmt.Sprintf("T%d %s", id, name)}))
		evs = append(evs, traceevent.Meta("thread_sort_index", tracePid, tid, map[string]any{"sort_index": tid}))
	}
	if tl.Phase[PhaseDone] > 0 {
		bounds := [][2]int64{
			{0, tl.Phase[PhaseLoopEnter]},
			{tl.Phase[PhaseLoopEnter], tl.Phase[PhaseLoopExit]},
			{tl.Phase[PhaseLoopExit], tl.Phase[PhaseDone]},
		}
		for p, b := range bounds {
			evs = append(evs, traceevent.Slice(phaseNames[p], "phase",
				tracePid, schedTid, b[0], b[1]-b[0], nil))
		}
	}
	for _, sp := range tl.Spans {
		tid := int(sp.Thread) + 1
		kind := KindName(int(sp.Kind))
		if sp.WaitNs > 0 {
			evs = append(evs, traceevent.Slice("wait:"+kind, "wait",
				tracePid, tid, sp.StartNs-sp.WaitNs, sp.WaitNs,
				map[string]any{"step": sp.Step}))
		}
		evs = append(evs, traceevent.Slice(kind, "op",
			tracePid, tid, sp.StartNs, sp.DurNs,
			map[string]any{"step": sp.Step, "waitNs": sp.WaitNs, "serviceNs": sp.DurNs}))
	}
	return evs
}

// WriteTrace writes the timeline as Chrome trace-event JSON.
func (tl *Timeline) WriteTrace(w io.Writer) error {
	if tl == nil {
		return fmt.Errorf("schedprof: nil timeline")
	}
	return traceevent.Write(w, tl.Events())
}

// SaveFile writes the timeline's trace to path, creating parent
// directories (so a -perfdir that does not exist yet just works).
func (tl *Timeline) SaveFile(path string) error {
	if tl == nil {
		return fmt.Errorf("schedprof: nil timeline")
	}
	return traceevent.SaveFile(path, tl.Events())
}
