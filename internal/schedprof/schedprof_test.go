package schedprof_test

import (
	"sync"
	"testing"

	"racefuzzer/internal/schedprof"
)

func TestKindNameRange(t *testing.T) {
	if got := schedprof.KindName(-1); got != "op(?)" {
		t.Errorf("KindName(-1) = %q", got)
	}
	if got := schedprof.KindName(schedprof.NumOpKinds); got != "op(?)" {
		t.Errorf("KindName(NumOpKinds) = %q", got)
	}
	seen := map[string]bool{}
	for k := 0; k < schedprof.NumOpKinds; k++ {
		name := schedprof.KindName(k)
		if name == "" || name == "op(?)" || seen[name] {
			t.Errorf("KindName(%d) = %q (empty or duplicate)", k, name)
		}
		seen[name] = true
	}
}

func TestRingWraparound(t *testing.T) {
	tr := schedprof.NewTrial("wrap", 7, 8)
	for i := 0; i < 20; i++ {
		tr.Grant(1 /* read */, 0, i+1, int64(i*1000), 100, 200)
	}
	if got := tr.Spans(); got != 20 {
		t.Fatalf("Spans() = %d, want 20", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped() = %d, want 12", got)
	}
	tl := tr.Timeline()
	if len(tl.Spans) != 8 {
		t.Fatalf("timeline holds %d spans, want 8 (ring capacity)", len(tl.Spans))
	}
	if tl.Dropped != 12 {
		t.Fatalf("timeline Dropped = %d, want 12", tl.Dropped)
	}
	// The survivors are the 8 most recent grants, in chronological order.
	for i, sp := range tl.Spans {
		wantStep := int32(13 + i)
		if sp.Step != wantStep {
			t.Errorf("span %d: step %d, want %d", i, sp.Step, wantStep)
		}
	}
}

func TestTimelineBeforeWraparound(t *testing.T) {
	tr := schedprof.NewTrial("small", 1, 16)
	tr.ThreadName(0, "main")
	tr.ThreadName(1, "child")
	for i := 0; i < 5; i++ {
		tr.Grant(i%schedprof.NumOpKinds, i%2, i+1, int64(i*10), int64(i), int64(i*2))
	}
	tl := tr.Timeline()
	if len(tl.Spans) != 5 || tl.Dropped != 0 {
		t.Fatalf("got %d spans, dropped %d; want 5, 0", len(tl.Spans), tl.Dropped)
	}
	if len(tl.Threads) != 2 || tl.Threads[1] != "child" {
		t.Fatalf("threads = %v", tl.Threads)
	}
	for i := 1; i < len(tl.Spans); i++ {
		if tl.Spans[i].StartNs < tl.Spans[i-1].StartNs {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
}

func TestOutOfRangeKindDropped(t *testing.T) {
	tr := schedprof.NewTrial("bad", 1, 8)
	tr.Grant(schedprof.NumOpKinds, 0, 1, 0, 0, 0)
	tr.Grant(-3, 0, 2, 0, 0, 0)
	if got := tr.Spans(); got != 0 {
		t.Fatalf("out-of-range kinds recorded %d spans", got)
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := schedprof.NewCollector()
	for trial := 0; trial < 3; trial++ {
		tr := c.StartTrial("agg", int64(trial))
		tr.Mark(schedprof.PhaseLoopEnter)
		for i := 0; i < 10; i++ {
			tr.Grant(2 /* write */, 0, i+1, int64(i*100), 50, 150)
			tr.Round(2, 1)
		}
		tr.Round(3, 0) // one empty round
		tr.ForcedGrant()
		tr.Mark(schedprof.PhaseLoopExit)
		tr.Mark(schedprof.PhaseDone)
		c.FinishTrial(tr)
	}
	s := c.Summary()
	if s.Trials != 3 {
		t.Fatalf("Trials = %d, want 3", s.Trials)
	}
	if s.Grants != 30 || s.SampledSpans != 30 || s.DroppedSpans != 0 {
		t.Fatalf("Grants/Sampled/Dropped = %d/%d/%d, want 30/30/0", s.Grants, s.SampledSpans, s.DroppedSpans)
	}
	if s.Rounds != 33 || s.EmptyRounds != 3 || s.ForcedGrants != 3 {
		t.Fatalf("Rounds/Empty/Forced = %d/%d/%d, want 33/3/3", s.Rounds, s.EmptyRounds, s.ForcedGrants)
	}
	if len(s.Ops) != 1 || s.Ops[0].Kind != "write" || s.Ops[0].Count != 30 {
		t.Fatalf("Ops = %+v", s.Ops)
	}
	op := s.Ops[0]
	if op.Wait.MeanNs != 50 || op.Service.MeanNs != 150 {
		t.Fatalf("means = %v / %v, want 50 / 150 (exact from totals)", op.Wait.MeanNs, op.Service.MeanNs)
	}
	if s.EnabledMax != 3 || s.EnabledMean <= 2 || s.EnabledMean >= 3 {
		t.Fatalf("enabled mean/max = %v/%d", s.EnabledMean, s.EnabledMax)
	}
	if len(s.Phases) != 3 || s.Phases[0].Phase != "startup" || s.Phases[1].Count != 3 {
		t.Fatalf("Phases = %+v", s.Phases)
	}
}

func TestSummaryQuantileOrdering(t *testing.T) {
	c := schedprof.NewCollector()
	tr := c.StartTrial("q", 1)
	for i := 1; i <= 1000; i++ {
		tr.Grant(3 /* lock */, 0, i, int64(i), int64(i*10), int64(i*100))
	}
	c.FinishTrial(tr)
	op := c.Summary().Ops[0]
	for _, l := range []schedprof.LatencySummary{op.Wait, op.Service} {
		if !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.MaxNs) {
			t.Fatalf("quantiles out of order: %+v", l)
		}
		if l.P50 <= 0 {
			t.Fatalf("zero p50: %+v", l)
		}
	}
	if op.Service.MaxNs != 100_000 {
		t.Fatalf("service max = %v, want 100000", op.Service.MaxNs)
	}
}

func TestCollectorConcurrentTrials(t *testing.T) {
	c := schedprof.NewCollector()
	const workers, trialsPer, grantsPer = 8, 25, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < trialsPer; i++ {
				tr := c.StartTrial("conc", int64(w*1000+i))
				tr.ThreadName(0, "main")
				tr.Mark(schedprof.PhaseLoopEnter)
				for g := 0; g < grantsPer; g++ {
					tr.Grant(g%schedprof.NumOpKinds, 0, g+1, int64(g), 10, 20)
					tr.Round(1, 1)
				}
				tr.Mark(schedprof.PhaseLoopExit)
				tr.Mark(schedprof.PhaseDone)
				c.FinishTrial(tr)
			}
		}(w)
	}
	wg.Wait()
	s := c.Summary()
	if want := int64(workers * trialsPer); s.Trials != want {
		t.Fatalf("Trials = %d, want %d", s.Trials, want)
	}
	if want := int64(workers * trialsPer * grantsPer); s.Grants != want || s.SampledSpans != want {
		t.Fatalf("Grants = %d, Sampled = %d, want %d", s.Grants, s.SampledSpans, want)
	}
}

func TestNilSafety(t *testing.T) {
	var c *schedprof.Collector
	tr := c.StartTrial("nil", 1)
	if tr != nil {
		t.Fatalf("nil collector handed out a trial")
	}
	// Every probe must no-op on a nil trial: these are the scheduler's
	// guard-free call sites.
	if tr.Clock() != 0 {
		t.Fatal("nil Clock != 0")
	}
	tr.ThreadName(0, "x")
	tr.Round(1, 1)
	tr.ForcedGrant()
	tr.Grant(1, 0, 1, 0, 0, 0)
	tr.Mark(schedprof.PhaseDone)
	if tr.Spans() != 0 || tr.Dropped() != 0 || tr.Timeline() != nil {
		t.Fatal("nil trial not inert")
	}
	c.FinishTrial(tr)
	s := c.Summary()
	if s.Trials != 0 || len(s.Ops) != 0 {
		t.Fatalf("nil collector summary = %+v", s)
	}
	if c.Trials() != 0 {
		t.Fatal("nil Trials() != 0")
	}
}

func TestTrialPoolReuse(t *testing.T) {
	c := schedprof.NewCollector()
	t1 := c.StartTrial("a", 1)
	t1.ThreadName(0, "main")
	t1.Grant(1, 0, 1, 0, 5, 5)
	c.FinishTrial(t1)
	t2 := c.StartTrial("b", 2)
	if t2.Spans() != 0 {
		t.Fatalf("reused trial carries %d stale spans", t2.Spans())
	}
	if tl := t2.Timeline(); len(tl.Threads) != 0 || len(tl.Spans) != 0 {
		t.Fatalf("reused trial timeline not empty: %+v", tl)
	}
	c.FinishTrial(t2)
}
