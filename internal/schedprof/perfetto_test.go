package schedprof_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"racefuzzer/internal/schedprof"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTimeline builds a fixed, clock-free timeline so the exported trace
// is byte-stable across runs.
func goldenTimeline() *schedprof.Timeline {
	tr := schedprof.NewTrial("figure1", 42, 16)
	tr.ThreadName(0, "main")
	tr.ThreadName(1, "worker")
	// kind ints follow sched's OpKind order: 0 begin, 3 lock, 2 write, 4 unlock.
	tr.Grant(0, 0, 1, 1_000, 500, 2_000)
	tr.Grant(9, 0, 2, 4_000, 1_000, 3_000) // fork
	tr.Grant(0, 1, 3, 8_000, 1_000, 1_500)
	tr.Grant(3, 1, 4, 10_000, 500, 2_500)
	tr.Grant(2, 1, 5, 13_000, 0, 1_000)
	tr.Grant(4, 1, 6, 15_000, 1_000, 1_000)
	tr.Grant(10, 0, 7, 17_000, 13_000, 2_000) // join
	tl := tr.Timeline()
	tl.Phase[schedprof.PhaseLoopEnter] = 800
	tl.Phase[schedprof.PhaseLoopExit] = 19_500
	tl.Phase[schedprof.PhaseDone] = 20_000
	return tl
}

func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTimeline().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from %s (regenerate with -update)\ngot:\n%s", golden, buf.String())
	}
}

// TestTraceIsValidChromeTraceJSON checks the structural contract Perfetto
// and chrome://tracing rely on: a traceEvents array of objects that each
// carry name/ph/pid/tid, with complete ("X") events adding ts and dur.
func TestTraceIsValidChromeTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTimeline().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("traceEvents is empty")
	}
	sawSlice, sawMeta, threadNames := 0, 0, map[string]bool{}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			sawSlice++
			ts, tsOK := ev["ts"].(float64)
			if !tsOK || ts < 0 {
				t.Fatalf("event %d: bad ts %v", i, ev["ts"])
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("event %d: X event without numeric dur: %v", i, ev)
			}
		case "M":
			sawMeta++
			if ev["name"] == "thread_name" {
				args := ev["args"].(map[string]any)
				threadNames[args["name"].(string)] = true
			}
		default:
			t.Fatalf("event %d: unexpected phase %v", i, ev["ph"])
		}
	}
	if sawSlice == 0 || sawMeta == 0 {
		t.Fatalf("trace lacks slices (%d) or metadata (%d)", sawSlice, sawMeta)
	}
	// One track per thread plus the scheduler track.
	for _, want := range []string{"scheduler", "T0 main", "T1 worker"} {
		if !threadNames[want] {
			t.Errorf("missing thread_name %q (have %v)", want, threadNames)
		}
	}
}

func TestSaveFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.perf.json")
	if err := goldenTimeline().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("saved trace is not valid JSON")
	}
}

// SaveFile must create missing parent directories: -perfdir points at a
// directory that typically does not exist yet when the first confirming
// trial exports.
func TestSaveFileCreatesParentDirs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perf", "nested", "trial.perf.json")
	if err := goldenTimeline().SaveFile(path); err != nil {
		t.Fatalf("SaveFile into missing directory: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("saved trace is not valid JSON")
	}
}
