package fleet

import (
	"context"
	"sort"
	"sync"
	"time"

	"racefuzzer/internal/fleetspan"
)

// Clock abstracts time for the lease table so expiry semantics are testable
// with a fake clock and no sleeps.
type Clock interface {
	Now() time.Time
}

// systemClock is the real clock.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// unitPhase is a unit's position in the lease state machine:
//
//	pending --lease--> leased --result(epoch match)--> done
//	   ^                  |
//	   +---expiry/requeue-+
//
// Every grant increments the table-wide monotonic epoch, so a result or
// heartbeat from a pre-requeue holder is recognizably stale and dropped —
// the idempotence rule that stops a retried batch double-counting.
type unitPhase int

const (
	unitPending unitPhase = iota
	unitLeased
	unitDone
)

// unitState is one unit's lease-table entry.
type unitState struct {
	unit     WorkUnit
	phase    unitPhase
	worker   string
	epoch    int64
	deadline time.Time
	result   *UnitResult
}

// leaseTable is the coordinator's work queue: pending units are granted
// FIFO, leased units expire back to pending when their holder stops
// heartbeating, done units hold their accepted result until the round
// driver collects it. All methods are safe for concurrent use; completion
// is broadcast so round barriers can wait without polling.
type leaseTable struct {
	mu    sync.Mutex
	cond  *sync.Cond
	clock Clock
	ttl   time.Duration
	// spans is the campaign flight recorder; nil (the untraced default)
	// makes every hook below a no-op. The collector has its own lock and
	// never calls back into the table, so hooks are safe under t.mu.
	spans *fleetspan.Collector

	epoch   int64
	units   map[string]*unitState
	queue   []string // pending unit IDs, FIFO
	doneN   int
	leasedN int

	requeues int64
	dropped  int64
}

func newLeaseTable(clock Clock, ttl time.Duration, spans *fleetspan.Collector) *leaseTable {
	t := &leaseTable{clock: clock, ttl: ttl, spans: spans, units: make(map[string]*unitState)}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// add enqueues a round's units.
func (t *leaseTable) add(units []WorkUnit) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, u := range units {
		if _, ok := t.units[u.ID]; ok {
			continue // a unit ID is enqueued once
		}
		t.units[u.ID] = &unitState{unit: u, phase: unitPending}
		t.queue = append(t.queue, u.ID)
		t.spans.UnitQueued(u.ID, u.Round, u.TargetIndex, u.Target)
	}
	t.cond.Broadcast()
}

// lease grants the next pending unit to worker, under a fresh epoch and a
// TTL deadline. ok is false when nothing is pending (expired leases are
// requeued first, so a lost worker's unit is re-grantable here).
func (t *leaseTable) lease(worker string) (WorkUnit, int64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(t.clock.Now())
	if len(t.queue) == 0 {
		return WorkUnit{}, 0, false
	}
	id := t.queue[0]
	t.queue = t.queue[1:]
	st := t.units[id]
	t.epoch++
	st.phase = unitLeased
	st.worker = worker
	st.epoch = t.epoch
	st.deadline = t.clock.Now().Add(t.ttl)
	t.leasedN++
	t.spans.UnitLeased(id, worker, st.epoch)
	return st.unit, st.epoch, true
}

// heartbeat extends a held lease; false means the lease is no longer held
// (expired and requeued, re-granted under a newer epoch, or completed).
func (t *leaseTable) heartbeat(worker, unitID string, epoch int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(t.clock.Now())
	st, ok := t.units[unitID]
	if !ok || st.phase != unitLeased || st.worker != worker || st.epoch != epoch {
		return false
	}
	st.deadline = t.clock.Now().Add(t.ttl)
	return true
}

// complete submits a result. It is accepted only when the unit is still
// leased under exactly this epoch; a duplicate (unit already done) or a
// stale epoch (lease expired, possibly re-granted) is dropped, so a retried
// batch can never double-count. Acceptance is broadcast to round waiters.
func (t *leaseTable) complete(worker, unitID string, epoch int64, res *UnitResult) (accepted bool, reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(t.clock.Now())
	st, ok := t.units[unitID]
	switch {
	case !ok:
		reason = "unknown unit"
	case st.phase == unitDone:
		reason = "duplicate result: unit already complete"
	case st.phase != unitLeased || st.epoch != epoch:
		reason = "stale lease epoch: lease expired and unit was requeued"
	default:
		st.phase = unitDone
		st.result = res
		t.leasedN--
		t.doneN++
		t.spans.UnitResult(unitID, worker, epoch, true, "", res.Spans)
		t.cond.Broadcast()
		return true, ""
	}
	t.dropped++
	t.spans.UnitResult(unitID, worker, epoch, false, reason, nil)
	return false, reason
}

// expireLocked moves overdue leases back to the pending queue. Called under
// t.mu from every entry point, so expiry needs no background timer of its
// own (the coordinator still runs a coarse sweeper so round barriers notice
// a silent fleet).
func (t *leaseTable) expireLocked(now time.Time) {
	for _, id := range t.sortedLeasedLocked() {
		st := t.units[id]
		if now.Before(st.deadline) {
			continue
		}
		st.phase = unitPending
		st.worker = ""
		t.queue = append(t.queue, id)
		t.leasedN--
		t.requeues++
		t.spans.UnitRequeued(id)
		t.cond.Broadcast() // waiters in lease() poll via awaitDone callers
	}
}

// sortedLeasedLocked snapshots leased unit IDs in deterministic (queue
// insertion can't be recovered, so lexical) order, for stable requeueing.
func (t *leaseTable) sortedLeasedLocked() []string {
	var ids []string
	for id, st := range t.units {
		if st.phase == unitLeased {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// sweep runs expiry outside any request, waking round waiters that would
// otherwise block on a fleet that silently died.
func (t *leaseTable) sweep() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(t.clock.Now())
}

// awaitDone blocks until every listed unit is done or ctx is cancelled.
func (t *leaseTable) awaitDone(ctx context.Context, ids []string) error {
	stop := context.AfterFunc(ctx, func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer stop()
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		all := true
		for _, id := range ids {
			if st, ok := t.units[id]; !ok || st.phase != unitDone {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		t.cond.Wait()
	}
}

// takeResult returns (and releases) a done unit's result.
func (t *leaseTable) takeResult(unitID string) *UnitResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.units[unitID]
	if !ok || st.phase != unitDone {
		return nil
	}
	res := st.result
	st.result = nil
	return res
}

// counts snapshots the table's phase tallies.
func (t *leaseTable) counts() (pending, leased, done int, requeues, dropped int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(t.clock.Now())
	return len(t.queue), t.leasedN, t.doneN, t.requeues, t.dropped
}
