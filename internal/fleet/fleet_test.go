package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"racefuzzer/internal/corpus"
	"racefuzzer/internal/fleetspan"
	"racefuzzer/internal/harness"
	"racefuzzer/internal/obs"
)

// startCoordinator boots a coordinator on a loopback port and tears it down
// with the test.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	c := NewCoordinator(cfg)
	if err := c.Start(); err != nil {
		t.Fatalf("coordinator start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c
}

// TestFleetCampaignMatchesSingleProcess is the determinism contract: a
// coordinator plus two workers must produce the same campaign rows, the same
// corpus findings and coverage, and byte-identical witness recordings as
// the in-process RunAdaptiveCampaign at the same budget.
func TestFleetCampaignMatchesSingleProcess(t *testing.T) {
	testFleetMatchesSingleProcess(t, false)
}

// TestFleetCampaignMatchesSingleProcessTraced re-runs the determinism
// contract with fleetspan tracing on: span capture must not perturb any
// campaign artifact, and the trail itself must validate, stitch worker
// sub-spans, and export to Perfetto.
func TestFleetCampaignMatchesSingleProcessTraced(t *testing.T) {
	testFleetMatchesSingleProcess(t, true)
}

func testFleetMatchesSingleProcess(t *testing.T, traced bool) {
	names := []string{"figure1", "vector"}
	opt := func(store *corpus.Store) harness.CampaignOptions {
		return harness.CampaignOptions{Seed: 7, Budget: 40, Rounds: 2, Corpus: store}
	}

	// The single-process reference, witnesses archived in its corpus.
	refDir := t.TempDir()
	ref, err := corpus.Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	refOpt := opt(ref)
	refOpt.TraceDir = ref.WitnessDir()
	refRows := harness.RunAdaptiveCampaign(names, refOpt)

	// The fleet run: same campaign options, but every unit executes on one
	// of two worker loops and reaches the corpus through the merge protocol.
	fleetDir := t.TempDir()
	store, err := corpus.Open(fleetDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CoordinatorConfig{Store: store, LeaseTTL: 5 * time.Second}
	if traced {
		cfg.Spans = fleetspan.NewCollector(fleetspan.Config{Token: "e2e"})
	}
	coord := startCoordinator(t, cfg)
	coord.SetTargets(names)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerErrs[w] = RunWorker(ctx, WorkerOptions{
				Coordinator: "http://" + coord.Addr(),
				Name:        fmt.Sprintf("test-worker-%d", w),
			})
		}(w)
	}

	fleetOpt := opt(store)
	fleetOpt.Executor = coord
	rows, err := harness.RunCampaign(names, fleetOpt)
	if err != nil {
		t.Fatalf("fleet campaign: %v", err)
	}
	coord.Finish()
	wg.Wait()
	for w, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", w, werr)
		}
	}

	if !reflect.DeepEqual(rows, refRows) {
		t.Fatalf("fleet campaign rows diverge from single-process:\n got: %+v\nwant: %+v", rows, refRows)
	}
	if !reflect.DeepEqual(store.Findings(), ref.Findings()) {
		t.Fatalf("fleet corpus findings diverge:\n got: %+v\nwant: %+v", store.Findings(), ref.Findings())
	}
	if !reflect.DeepEqual(store.Coverage(), ref.Coverage()) {
		t.Fatal("fleet coverage map diverges from single-process")
	}

	// Witness recordings: same file set, same bytes, despite having been
	// captured on workers and archived by the coordinator.
	refWitness := listDir(t, ref.WitnessDir())
	fleetWitness := listDir(t, store.WitnessDir())
	if !reflect.DeepEqual(refWitness, fleetWitness) {
		t.Fatalf("witness file sets differ:\n got: %v\nwant: %v", fleetWitness, refWitness)
	}
	if len(refWitness) == 0 {
		t.Fatal("reference campaign archived no witnesses; test proves nothing")
	}
	for _, name := range refWitness {
		want, _ := os.ReadFile(filepath.Join(ref.WitnessDir(), name))
		got, _ := os.ReadFile(filepath.Join(store.WitnessDir(), name))
		if string(want) != string(got) {
			t.Fatalf("witness %s differs between fleet and single-process", name)
		}
	}

	st := coord.status()
	if st.UnitsDone == 0 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("fleet status after campaign: %+v", st)
	}

	if traced {
		// The span trail must cover every unit, validate against the schema
		// after a disk round trip, carry stitched worker sub-spans, and
		// export to a loadable Perfetto trace.
		trailPath := filepath.Join(fleetDir, fleetspan.TrailFile)
		if err := fleetspan.WriteTrails(trailPath, cfg.Spans.Trails()); err != nil {
			t.Fatalf("write trail: %v", err)
		}
		trails, err := fleetspan.LoadTrails(trailPath)
		if err != nil {
			t.Fatalf("trail does not validate: %v", err)
		}
		ingested, stitched := 0, 0
		for _, tr := range trails {
			if tr.Outcome == fleetspan.OutcomeIngested {
				ingested++
				if tr.Stitched() {
					stitched++
				}
			}
		}
		if ingested != st.UnitsDone {
			t.Errorf("trail has %d ingested attempts, status says %d units done", ingested, st.UnitsDone)
		}
		if stitched != ingested {
			t.Errorf("only %d/%d ingested attempts carry stitched worker spans", stitched, ingested)
		}
		if evs := fleetspan.Events(trails); len(evs) == 0 {
			t.Error("Perfetto export is empty")
		}
	}
}

// listDir returns the sorted file names in dir ("" or missing = empty).
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) || dir == "" {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// TestFleetRequeueConvergesAfterWorkerDeath kills a worker mid-lease: the
// unit must requeue to the surviving worker, the campaign must converge to
// the exact single-process corpus, and the dead worker's late result must be
// dropped, not double-merged.
func TestFleetRequeueConvergesAfterWorkerDeath(t *testing.T) {
	names := []string{"figure1"}
	ref := corpus.NewStore()
	refRows := harness.RunAdaptiveCampaign(names, harness.CampaignOptions{
		Seed: 7, Budget: 20, Rounds: 2, Corpus: ref,
	})

	store := corpus.NewStore()
	const ttl = 100 * time.Millisecond
	coord := startCoordinator(t, CoordinatorConfig{Store: store, LeaseTTL: ttl})
	coord.SetTargets(names)
	base := "http://" + coord.Addr()
	client := &http.Client{Timeout: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// The campaign driver runs in the background; round 1's single unit
	// appears in the lease table once it starts.
	rowsCh := make(chan []harness.CampaignRow, 1)
	errCh := make(chan error, 1)
	go func() {
		o := harness.CampaignOptions{Seed: 7, Budget: 20, Rounds: 2, Corpus: store}
		o.Executor = coord
		rows, err := harness.RunCampaign(names, o)
		rowsCh <- rows
		errCh <- err
	}()

	// The doomed worker: registers, grabs the first unit, then goes silent
	// (no heartbeats), simulating a crash that keeps the process alive.
	var reg RegisterResponse
	if err := postJSON(ctx, client, base+"/fleet/register", RegisterRequest{Name: "doomed"}, &reg); err != nil {
		t.Fatalf("register: %v", err)
	}
	var lease LeaseResponse
	for lease.Unit == nil {
		if err := postJSON(ctx, client, base+"/fleet/lease",
			LeaseRequest{WorkerID: reg.WorkerID, Generation: reg.Generation}, &lease); err != nil {
			t.Fatalf("lease: %v", err)
		}
		if lease.Unit == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	doomedUnit := *lease.Unit
	doomedEpoch := lease.Epoch

	// The survivor joins and inherits everything, including the expired
	// lease.
	var wg sync.WaitGroup
	wg.Add(1)
	var survivorErr error
	go func() {
		defer wg.Done()
		survivorErr = RunWorker(ctx, WorkerOptions{Coordinator: base, Name: "survivor"})
	}()

	rows := <-rowsCh
	if err := <-errCh; err != nil {
		t.Fatalf("fleet campaign: %v", err)
	}

	// The doomed worker wakes up long after its lease expired and submits
	// the batch it computed; determinism makes the batch identical, but the
	// protocol must still drop it — permanently, as a 410 the worker-side
	// retry loop knows never to resubmit.
	res, err := ExecuteUnit(doomedUnit, reg.Campaign)
	if err != nil {
		t.Fatalf("doomed execute: %v", err)
	}
	var rr ResultResponse
	err = postJSON(ctx, client, base+"/fleet/result", ResultRequest{
		WorkerID: reg.WorkerID, Generation: reg.Generation,
		UnitID: doomedUnit.ID, Epoch: doomedEpoch, Result: res,
	}, &rr)
	if err == nil {
		t.Fatal("expired lease's late result was accepted")
	}
	if !isPermanentReject(err) {
		t.Fatalf("late result rejected non-permanently: %v", err)
	}

	coord.Finish()
	wg.Wait()
	if survivorErr != nil {
		t.Fatalf("survivor: %v", survivorErr)
	}

	if !reflect.DeepEqual(rows, refRows) {
		t.Fatalf("requeued campaign rows diverge:\n got: %+v\nwant: %+v", rows, refRows)
	}
	if !reflect.DeepEqual(store.Findings(), ref.Findings()) {
		t.Fatalf("requeued campaign corpus diverges:\n got: %+v\nwant: %+v", store.Findings(), ref.Findings())
	}
	st := coord.status()
	if st.Requeues == 0 {
		t.Fatal("no lease was requeued despite a dead worker")
	}
	if st.ResultsDropped == 0 {
		t.Fatal("late duplicate result was not counted as dropped")
	}
}

// TestWorkerReregistersAfterCoordinatorRestart drives RunWorker against a
// scripted control plane: generation g1 is invalidated (as a restart
// would), and the worker must re-register, pick up the unit under g2, and
// exit cleanly at Done.
func TestWorkerReregistersAfterCoordinatorRestart(t *testing.T) {
	var mu sync.Mutex
	registers, leases, results := 0, 0, 0

	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		registers++
		n := registers
		mu.Unlock()
		writeJSON(w, RegisterResponse{
			WorkerID:       fmt.Sprintf("w%d", n),
			Generation:     fmt.Sprintf("g%d", n),
			LeaseTTLMillis: 60_000,
		})
	})
	mux.HandleFunc("/fleet/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		json.NewDecoder(r.Body).Decode(&req)
		if req.Generation == "g1" {
			writeJSONStatus(w, http.StatusConflict, errorBody{Error: "coordinator restarted", Code: codeReregister})
			return
		}
		mu.Lock()
		leases++
		n := leases
		mu.Unlock()
		if n == 1 {
			writeJSON(w, LeaseResponse{
				Unit:  &WorkUnit{ID: "r1-t0", Target: "figure1", Trials: 1, Seed: 7},
				Epoch: 1,
			})
			return
		}
		writeJSON(w, LeaseResponse{Done: true})
	})
	mux.HandleFunc("/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, HeartbeatResponse{OK: true})
	})
	mux.HandleFunc("/fleet/result", func(w http.ResponseWriter, r *http.Request) {
		var req ResultRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		results++
		mu.Unlock()
		if req.Generation != "g2" || req.UnitID != "r1-t0" {
			t.Errorf("result under %q for %q, want g2 / r1-t0", req.Generation, req.UnitID)
		}
		writeJSON(w, ResultResponse{Accepted: true})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	err := RunWorker(context.Background(), WorkerOptions{
		Coordinator: srv.URL,
		Name:        "test",
		Execute: func(u WorkUnit, info CampaignInfo) (UnitResult, error) {
			return UnitResult{Trials: u.Trials}, nil
		},
		Sleep: func(context.Context, time.Duration) {},
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if registers != 2 {
		t.Fatalf("registers = %d, want 2 (initial + after restart)", registers)
	}
	if results != 1 {
		t.Fatalf("results = %d, want 1", results)
	}
}

// TestCoordinatorRejectsStaleGeneration covers the server side of restart
// recovery: a request under a generation the coordinator never issued is
// answered 409 with the reregister code.
func TestCoordinatorRejectsStaleGeneration(t *testing.T) {
	coord := startCoordinator(t, CoordinatorConfig{Store: corpus.NewStore()})
	base := "http://" + coord.Addr()
	client := &http.Client{Timeout: 5 * time.Second}
	ctx := context.Background()

	var reg RegisterResponse
	if err := postJSON(ctx, client, base+"/fleet/register", RegisterRequest{Name: "t"}, &reg); err != nil {
		t.Fatalf("register: %v", err)
	}
	var lease LeaseResponse
	err := postJSON(ctx, client, base+"/fleet/lease",
		LeaseRequest{WorkerID: reg.WorkerID, Generation: "from-before-the-restart"}, &lease)
	if !isReregister(err) {
		t.Fatalf("stale generation answered %v, want reregister error", err)
	}
}

// TestWorkerResultRetryTransientThenSuccess: 5xx answers on /fleet/result
// are transient — the worker must retry with backoff and deliver the batch.
func TestWorkerResultRetryTransientThenSuccess(t *testing.T) {
	var mu sync.Mutex
	resultPosts := 0
	mux := scriptedControlPlane(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		resultPosts++
		n := resultPosts
		mu.Unlock()
		if n < 3 {
			writeJSONStatus(w, http.StatusInternalServerError, errorBody{Error: "merge hiccup"})
			return
		}
		writeJSON(w, ResultResponse{Accepted: true})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	metrics := obs.NewRegistry()
	err := RunWorker(context.Background(), WorkerOptions{
		Coordinator: srv.URL,
		Name:        "retry",
		Metrics:     metrics,
		Execute: func(u WorkUnit, info CampaignInfo) (UnitResult, error) {
			return UnitResult{Trials: u.Trials}, nil
		},
		Sleep: func(context.Context, time.Duration) {},
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if resultPosts != 3 {
		t.Errorf("result posts = %d, want 3 (two 500s then success)", resultPosts)
	}
	if v := metrics.Counter("results.permanent_reject").Value(); v != 0 {
		t.Errorf("permanent_reject = %d, want 0 for transient failures", v)
	}
}

// TestWorkerResultPermanentRejectNotRetried: a 410 drop is final — one POST,
// no retries, one counted results.permanent_reject.
func TestWorkerResultPermanentRejectNotRetried(t *testing.T) {
	var mu sync.Mutex
	resultPosts := 0
	mux := scriptedControlPlane(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		resultPosts++
		mu.Unlock()
		writeJSONStatus(w, http.StatusGone, errorBody{Error: "stale lease epoch", Code: codeRejected})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	metrics := obs.NewRegistry()
	err := RunWorker(context.Background(), WorkerOptions{
		Coordinator: srv.URL,
		Name:        "rejected",
		Metrics:     metrics,
		Execute: func(u WorkUnit, info CampaignInfo) (UnitResult, error) {
			return UnitResult{Trials: u.Trials}, nil
		},
		Sleep: func(context.Context, time.Duration) {},
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if resultPosts != 1 {
		t.Errorf("result posts = %d, want 1 (permanent drops are not retried)", resultPosts)
	}
	if v := metrics.Counter("results.permanent_reject").Value(); v != 1 {
		t.Errorf("permanent_reject = %d, want 1", v)
	}
}

// scriptedControlPlane builds a one-unit control plane whose /fleet/result
// behavior the test supplies: register, grant r1-t0 once, then Done.
func scriptedControlPlane(t *testing.T, result http.HandlerFunc) *http.ServeMux {
	t.Helper()
	var mu sync.Mutex
	leases := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, RegisterResponse{WorkerID: "w1", Generation: "g1", LeaseTTLMillis: 60_000})
	})
	mux.HandleFunc("/fleet/lease", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		leases++
		n := leases
		mu.Unlock()
		if n == 1 {
			writeJSON(w, LeaseResponse{Unit: &WorkUnit{ID: "r1-t0", Target: "figure1", Trials: 1, Seed: 7}, Epoch: 1})
			return
		}
		writeJSON(w, LeaseResponse{Done: true})
	})
	mux.HandleFunc("/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, HeartbeatResponse{OK: true})
	})
	mux.HandleFunc("/fleet/result", result)
	return mux
}

// fakeFleetClock is a manually-advanced Clock shared by the coordinator and
// its span collector in the flight-deck test.
type fakeFleetClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeFleetClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Unix(0, c.ns)
}

func (c *fakeFleetClock) advance(d time.Duration) {
	c.mu.Lock()
	c.ns += d.Nanoseconds()
	c.mu.Unlock()
}

// TestFleetHealthFlightDeck scripts the acceptance scenario over the real
// control plane with a fake clock: a healthy round, then a killed worker
// producing a straggler and a requeue storm visible on /fleet/health (score
// degrades), then completion and window expiry (score recovers).
func TestFleetHealthFlightDeck(t *testing.T) {
	clk := &fakeFleetClock{ns: 1_000_000_000_000}
	spans := fleetspan.NewCollector(fleetspan.Config{
		Token:               "deck",
		Clock:               clk,
		StragglerFactor:     2,
		StragglerMinSamples: 3,
		StormWindow:         30 * time.Second,
		StormThreshold:      3,
	})
	coord := startCoordinator(t, CoordinatorConfig{
		Store:    corpus.NewStore(),
		LeaseTTL: time.Second,
		Clock:    clk,
		Spans:    spans,
	})
	base := "http://" + coord.Addr()
	client := &http.Client{Timeout: 10 * time.Second}
	ctx := context.Background()

	var reg RegisterResponse
	if err := postJSON(ctx, client, base+"/fleet/register", RegisterRequest{Name: "deck-worker"}, &reg); err != nil {
		t.Fatalf("register: %v", err)
	}
	if !reg.Campaign.Trace {
		t.Fatal("campaign info does not ask workers to trace")
	}

	getHealth := func() fleetspan.Health {
		t.Helper()
		resp, err := client.Get(base + "/fleet/health")
		if err != nil {
			t.Fatalf("GET /fleet/health: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/fleet/health: HTTP %d", resp.StatusCode)
		}
		var h fleetspan.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("decode health: %v", err)
		}
		return h
	}

	leaseUnit := func(wantID string) LeaseResponse {
		t.Helper()
		var lease LeaseResponse
		if err := postJSON(ctx, client, base+"/fleet/lease",
			LeaseRequest{WorkerID: reg.WorkerID, Generation: reg.Generation}, &lease); err != nil {
			t.Fatalf("lease: %v", err)
		}
		if lease.Unit == nil || lease.Unit.ID != wantID {
			t.Fatalf("leased %+v, want unit %s", lease.Unit, wantID)
		}
		return lease
	}
	postResultOK := func(id string, epoch int64) {
		t.Helper()
		var rr ResultResponse
		if err := postJSON(ctx, client, base+"/fleet/result", ResultRequest{
			WorkerID: reg.WorkerID, Generation: reg.Generation,
			UnitID: id, Epoch: epoch, Result: UnitResult{Trials: 1},
		}, &rr); err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
	}

	// Round 1: three healthy ~100ms units teach the target's exec profile.
	round1 := []harness.RoundUnit{
		{Round: 1, TargetIndex: 0, Target: "figure1", Trials: 1, Seed: 7},
		{Round: 1, TargetIndex: 1, Target: "figure1", Trials: 1, Seed: 7},
		{Round: 1, TargetIndex: 2, Target: "figure1", Trials: 1, Seed: 7},
	}
	roundDone := make(chan error, 1)
	go func() { roundDone <- coord.ExecuteRound(round1, func(int) {}, func(int, harness.UnitOutcome) {}) }()
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("r1-t%d", i)
		lease := leaseUnit(id)
		clk.advance(100 * time.Millisecond)
		postResultOK(id, lease.Epoch)
	}
	if err := <-roundDone; err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if h := getHealth(); h.Score != 100 || h.UnitsDone != 3 {
		t.Fatalf("healthy fleet: score %d, done %d: %+v", h.Score, h.UnitsDone, h)
	}

	// Round 2: the worker takes the unit and dies. The lease runs far past
	// 2× the target's p95 — a straggler — and then expires repeatedly under
	// the sweeper — a requeue storm.
	round2 := []harness.RoundUnit{{Round: 2, TargetIndex: 0, Target: "figure1", Trials: 1, Seed: 9}}
	go func() { roundDone <- coord.ExecuteRound(round2, func(int) {}, func(int, harness.UnitOutcome) {}) }()
	lease := leaseUnit("r2-t0")
	clk.advance(900 * time.Millisecond) // straggling, lease still live
	h := getHealth()
	if n := countAnomalies(h, fleetspan.AnomalyStraggler); n != 1 {
		t.Fatalf("want 1 straggler anomaly, got %d: %+v", n, h.Anomalies)
	}
	if h.Score >= 100 {
		t.Fatalf("straggler did not degrade score: %+v", h)
	}
	degraded := h.Score

	for i := 0; i < 3; i++ {
		clk.advance(2 * time.Second) // expire the lease
		coord.table.sweep()
		lease = leaseUnit("r2-t0")
	}
	h = getHealth()
	if countAnomalies(h, fleetspan.AnomalyRequeueStorm) != 1 {
		t.Fatalf("want a requeue-storm anomaly: %+v", h.Anomalies)
	}
	if h.Score >= degraded {
		t.Fatalf("storm did not degrade score further: %d vs %d", h.Score, degraded)
	}

	// Recovery: the final lease completes, the round barrier ingests it, and
	// the storm window slides past.
	clk.advance(100 * time.Millisecond)
	postResultOK("r2-t0", lease.Epoch)
	if err := <-roundDone; err != nil {
		t.Fatalf("round 2: %v", err)
	}
	clk.advance(time.Minute)
	h = getHealth()
	if h.Score != 100 || len(h.Anomalies) != 0 {
		t.Fatalf("fleet did not recover: score %d, anomalies %+v", h.Score, h.Anomalies)
	}
	if h.UnitsDone != 4 || h.UnitsInFlight != 0 {
		t.Errorf("units done %d in flight %d, want 4/0", h.UnitsDone, h.UnitsInFlight)
	}
}

func countAnomalies(h fleetspan.Health, kind string) int {
	n := 0
	for _, a := range h.Anomalies {
		if a.Kind == kind {
			n++
		}
	}
	return n
}
