package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"racefuzzer/internal/corpus"
	"racefuzzer/internal/harness"
)

// startCoordinator boots a coordinator on a loopback port and tears it down
// with the test.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	c := NewCoordinator(cfg)
	if err := c.Start(); err != nil {
		t.Fatalf("coordinator start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c
}

// TestFleetCampaignMatchesSingleProcess is the determinism contract: a
// coordinator plus two workers must produce the same campaign rows, the same
// corpus findings and coverage, and byte-identical witness recordings as
// the in-process RunAdaptiveCampaign at the same budget.
func TestFleetCampaignMatchesSingleProcess(t *testing.T) {
	names := []string{"figure1", "vector"}
	opt := func(store *corpus.Store) harness.CampaignOptions {
		return harness.CampaignOptions{Seed: 7, Budget: 40, Rounds: 2, Corpus: store}
	}

	// The single-process reference, witnesses archived in its corpus.
	refDir := t.TempDir()
	ref, err := corpus.Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	refOpt := opt(ref)
	refOpt.TraceDir = ref.WitnessDir()
	refRows := harness.RunAdaptiveCampaign(names, refOpt)

	// The fleet run: same campaign options, but every unit executes on one
	// of two worker loops and reaches the corpus through the merge protocol.
	fleetDir := t.TempDir()
	store, err := corpus.Open(fleetDir)
	if err != nil {
		t.Fatal(err)
	}
	coord := startCoordinator(t, CoordinatorConfig{Store: store, LeaseTTL: 5 * time.Second})
	coord.SetTargets(names)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerErrs[w] = RunWorker(ctx, WorkerOptions{
				Coordinator: "http://" + coord.Addr(),
				Name:        fmt.Sprintf("test-worker-%d", w),
			})
		}(w)
	}

	fleetOpt := opt(store)
	fleetOpt.Executor = coord
	rows, err := harness.RunCampaign(names, fleetOpt)
	if err != nil {
		t.Fatalf("fleet campaign: %v", err)
	}
	coord.Finish()
	wg.Wait()
	for w, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", w, werr)
		}
	}

	if !reflect.DeepEqual(rows, refRows) {
		t.Fatalf("fleet campaign rows diverge from single-process:\n got: %+v\nwant: %+v", rows, refRows)
	}
	if !reflect.DeepEqual(store.Findings(), ref.Findings()) {
		t.Fatalf("fleet corpus findings diverge:\n got: %+v\nwant: %+v", store.Findings(), ref.Findings())
	}
	if !reflect.DeepEqual(store.Coverage(), ref.Coverage()) {
		t.Fatal("fleet coverage map diverges from single-process")
	}

	// Witness recordings: same file set, same bytes, despite having been
	// captured on workers and archived by the coordinator.
	refWitness := listDir(t, ref.WitnessDir())
	fleetWitness := listDir(t, store.WitnessDir())
	if !reflect.DeepEqual(refWitness, fleetWitness) {
		t.Fatalf("witness file sets differ:\n got: %v\nwant: %v", fleetWitness, refWitness)
	}
	if len(refWitness) == 0 {
		t.Fatal("reference campaign archived no witnesses; test proves nothing")
	}
	for _, name := range refWitness {
		want, _ := os.ReadFile(filepath.Join(ref.WitnessDir(), name))
		got, _ := os.ReadFile(filepath.Join(store.WitnessDir(), name))
		if string(want) != string(got) {
			t.Fatalf("witness %s differs between fleet and single-process", name)
		}
	}

	st := coord.status()
	if st.UnitsDone == 0 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("fleet status after campaign: %+v", st)
	}
}

// listDir returns the sorted file names in dir ("" or missing = empty).
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) || dir == "" {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// TestFleetRequeueConvergesAfterWorkerDeath kills a worker mid-lease: the
// unit must requeue to the surviving worker, the campaign must converge to
// the exact single-process corpus, and the dead worker's late result must be
// dropped, not double-merged.
func TestFleetRequeueConvergesAfterWorkerDeath(t *testing.T) {
	names := []string{"figure1"}
	ref := corpus.NewStore()
	refRows := harness.RunAdaptiveCampaign(names, harness.CampaignOptions{
		Seed: 7, Budget: 20, Rounds: 2, Corpus: ref,
	})

	store := corpus.NewStore()
	const ttl = 100 * time.Millisecond
	coord := startCoordinator(t, CoordinatorConfig{Store: store, LeaseTTL: ttl})
	coord.SetTargets(names)
	base := "http://" + coord.Addr()
	client := &http.Client{Timeout: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// The campaign driver runs in the background; round 1's single unit
	// appears in the lease table once it starts.
	rowsCh := make(chan []harness.CampaignRow, 1)
	errCh := make(chan error, 1)
	go func() {
		o := harness.CampaignOptions{Seed: 7, Budget: 20, Rounds: 2, Corpus: store}
		o.Executor = coord
		rows, err := harness.RunCampaign(names, o)
		rowsCh <- rows
		errCh <- err
	}()

	// The doomed worker: registers, grabs the first unit, then goes silent
	// (no heartbeats), simulating a crash that keeps the process alive.
	var reg RegisterResponse
	if err := postJSON(ctx, client, base+"/fleet/register", RegisterRequest{Name: "doomed"}, &reg); err != nil {
		t.Fatalf("register: %v", err)
	}
	var lease LeaseResponse
	for lease.Unit == nil {
		if err := postJSON(ctx, client, base+"/fleet/lease",
			LeaseRequest{WorkerID: reg.WorkerID, Generation: reg.Generation}, &lease); err != nil {
			t.Fatalf("lease: %v", err)
		}
		if lease.Unit == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	doomedUnit := *lease.Unit
	doomedEpoch := lease.Epoch

	// The survivor joins and inherits everything, including the expired
	// lease.
	var wg sync.WaitGroup
	wg.Add(1)
	var survivorErr error
	go func() {
		defer wg.Done()
		survivorErr = RunWorker(ctx, WorkerOptions{Coordinator: base, Name: "survivor"})
	}()

	rows := <-rowsCh
	if err := <-errCh; err != nil {
		t.Fatalf("fleet campaign: %v", err)
	}

	// The doomed worker wakes up long after its lease expired and submits
	// the batch it computed; determinism makes the batch identical, but the
	// protocol must still drop it.
	res, err := ExecuteUnit(doomedUnit, reg.Campaign)
	if err != nil {
		t.Fatalf("doomed execute: %v", err)
	}
	var rr ResultResponse
	if err := postJSON(ctx, client, base+"/fleet/result", ResultRequest{
		WorkerID: reg.WorkerID, Generation: reg.Generation,
		UnitID: doomedUnit.ID, Epoch: doomedEpoch, Result: res,
	}, &rr); err != nil {
		t.Fatalf("late result: %v", err)
	}
	if rr.Accepted {
		t.Fatal("expired lease's late result was accepted")
	}

	coord.Finish()
	wg.Wait()
	if survivorErr != nil {
		t.Fatalf("survivor: %v", survivorErr)
	}

	if !reflect.DeepEqual(rows, refRows) {
		t.Fatalf("requeued campaign rows diverge:\n got: %+v\nwant: %+v", rows, refRows)
	}
	if !reflect.DeepEqual(store.Findings(), ref.Findings()) {
		t.Fatalf("requeued campaign corpus diverges:\n got: %+v\nwant: %+v", store.Findings(), ref.Findings())
	}
	st := coord.status()
	if st.Requeues == 0 {
		t.Fatal("no lease was requeued despite a dead worker")
	}
	if st.ResultsDropped == 0 {
		t.Fatal("late duplicate result was not counted as dropped")
	}
}

// TestWorkerReregistersAfterCoordinatorRestart drives RunWorker against a
// scripted control plane: generation g1 is invalidated (as a restart
// would), and the worker must re-register, pick up the unit under g2, and
// exit cleanly at Done.
func TestWorkerReregistersAfterCoordinatorRestart(t *testing.T) {
	var mu sync.Mutex
	registers, leases, results := 0, 0, 0

	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		registers++
		n := registers
		mu.Unlock()
		writeJSON(w, RegisterResponse{
			WorkerID:       fmt.Sprintf("w%d", n),
			Generation:     fmt.Sprintf("g%d", n),
			LeaseTTLMillis: 60_000,
		})
	})
	mux.HandleFunc("/fleet/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		json.NewDecoder(r.Body).Decode(&req)
		if req.Generation == "g1" {
			writeJSONStatus(w, http.StatusConflict, errorBody{Error: "coordinator restarted", Code: codeReregister})
			return
		}
		mu.Lock()
		leases++
		n := leases
		mu.Unlock()
		if n == 1 {
			writeJSON(w, LeaseResponse{
				Unit:  &WorkUnit{ID: "r1-t0", Target: "figure1", Trials: 1, Seed: 7},
				Epoch: 1,
			})
			return
		}
		writeJSON(w, LeaseResponse{Done: true})
	})
	mux.HandleFunc("/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, HeartbeatResponse{OK: true})
	})
	mux.HandleFunc("/fleet/result", func(w http.ResponseWriter, r *http.Request) {
		var req ResultRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		results++
		mu.Unlock()
		if req.Generation != "g2" || req.UnitID != "r1-t0" {
			t.Errorf("result under %q for %q, want g2 / r1-t0", req.Generation, req.UnitID)
		}
		writeJSON(w, ResultResponse{Accepted: true})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	err := RunWorker(context.Background(), WorkerOptions{
		Coordinator: srv.URL,
		Name:        "test",
		Execute: func(u WorkUnit, info CampaignInfo) (UnitResult, error) {
			return UnitResult{Trials: u.Trials}, nil
		},
		Sleep: func(context.Context, time.Duration) {},
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if registers != 2 {
		t.Fatalf("registers = %d, want 2 (initial + after restart)", registers)
	}
	if results != 1 {
		t.Fatalf("results = %d, want 1", results)
	}
}

// TestCoordinatorRejectsStaleGeneration covers the server side of restart
// recovery: a request under a generation the coordinator never issued is
// answered 409 with the reregister code.
func TestCoordinatorRejectsStaleGeneration(t *testing.T) {
	coord := startCoordinator(t, CoordinatorConfig{Store: corpus.NewStore()})
	base := "http://" + coord.Addr()
	client := &http.Client{Timeout: 5 * time.Second}
	ctx := context.Background()

	var reg RegisterResponse
	if err := postJSON(ctx, client, base+"/fleet/register", RegisterRequest{Name: "t"}, &reg); err != nil {
		t.Fatalf("register: %v", err)
	}
	var lease LeaseResponse
	err := postJSON(ctx, client, base+"/fleet/lease",
		LeaseRequest{WorkerID: reg.WorkerID, Generation: "from-before-the-restart"}, &lease)
	if !isReregister(err) {
		t.Fatalf("stale generation answered %v, want reregister error", err)
	}
}
