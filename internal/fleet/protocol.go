package fleet

import (
	"racefuzzer/internal/corpus"
	"racefuzzer/internal/fleetspan"
	"racefuzzer/internal/obs"
)

// The HTTP/JSON control plane. Every endpoint is a POST of a JSON request
// body answered with a JSON response (GET /fleet/status is the one
// read-only exception); errors come back as an errorBody with an HTTP
// status, and the one error workers must react to — a generation mismatch
// after a coordinator restart — carries code "reregister".
//
//	POST /fleet/register   RegisterRequest  -> RegisterResponse
//	POST /fleet/lease      LeaseRequest     -> LeaseResponse
//	POST /fleet/heartbeat  HeartbeatRequest -> HeartbeatResponse
//	POST /fleet/result     ResultRequest    -> ResultResponse
//	GET  /fleet/status                      -> Status

// WorkUnit is one leased batch: the deterministic (target, seed-range,
// config) tuple of the ROADMAP. Round and Seed pin the allocation round's
// derived seed stream, Trials is the phase-2 budget; any worker running the
// same build re-executes the batch bit-identically, which is what makes
// lease retries and duplicate results safe to reconcile.
type WorkUnit struct {
	// ID is the unit's stable identity ("r<round>-t<targetIndex>");
	// idempotent result ingestion is keyed by it.
	ID string `json:"id"`
	// Round is the campaign's 1-based allocation round.
	Round int `json:"round"`
	// TargetIndex is the target's index in the campaign's name list.
	TargetIndex int `json:"targetIndex"`
	// Target is the registry benchmark name.
	Target string `json:"target"`
	// Trials is the phase-2 trial budget the unit spends.
	Trials int `json:"trials"`
	// Seed is the round's base seed.
	Seed int64 `json:"seed"`
}

// CampaignInfo is the coordinator's standing configuration, sent once at
// registration: how workers should execute batches and what they should
// stream back.
type CampaignInfo struct {
	// Workers is the per-batch trial executor width each fleet worker should
	// run with (core.Options.Workers).
	Workers int `json:"workers"`
	// Witnesses asks workers to capture witness recordings of first
	// confirming runs and stream the payload bytes back (set when the
	// coordinator's corpus is on disk and can archive them).
	Witnesses bool `json:"witnesses"`
	// Records asks workers to stream per-execution obs.RunRecords back so
	// the coordinator's observatory/run-log sees the whole fleet.
	Records bool `json:"records"`
	// Trace asks workers to record lease-received→exec→posted sub-spans and
	// stamp heartbeats with their local clock, feeding the coordinator's
	// fleetspan collector. Off, the worker's payloads are byte-identical to
	// an untraced campaign's.
	Trace bool `json:"trace,omitempty"`
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is a human label for the worker (host:pid by default).
	Name string `json:"name"`
	// Provenance is the worker's build identity, checked against the
	// coordinator's for build parity (same commit + toolchain ⇒ identical
	// trial execution).
	Provenance obs.Provenance `json:"provenance"`
}

// RegisterResponse assigns the worker its identity and the campaign config.
type RegisterResponse struct {
	// WorkerID is the coordinator-assigned identity for all later calls.
	WorkerID string `json:"workerID"`
	// Generation identifies this coordinator process; a mismatch on a later
	// call means the coordinator restarted and the worker must re-register.
	Generation string `json:"generation"`
	// LeaseTTLMillis is the lease expiry the worker must heartbeat within.
	LeaseTTLMillis int64 `json:"leaseTTLMillis"`
	// Campaign is the standing execution config.
	Campaign CampaignInfo `json:"campaign"`
	// Provenance is the coordinator's build identity, for parity checks.
	Provenance obs.Provenance `json:"provenance"`
}

// LeaseRequest asks for the next work unit.
type LeaseRequest struct {
	WorkerID   string `json:"workerID"`
	Generation string `json:"generation"`
}

// LeaseResponse grants a unit, asks the worker to wait, or ends it.
type LeaseResponse struct {
	// Unit is the granted batch (nil when Wait or Done).
	Unit *WorkUnit `json:"unit,omitempty"`
	// Epoch is the lease's monotonic epoch; heartbeats and the result must
	// echo it, and a stale epoch (the lease expired and was re-granted) is
	// rejected.
	Epoch int64 `json:"epoch,omitempty"`
	// Wait reports that no unit is available right now; retry after
	// RetryMillis.
	Wait        bool  `json:"wait,omitempty"`
	RetryMillis int64 `json:"retryMillis,omitempty"`
	// Done reports that the campaign is finished and the worker may exit.
	Done bool `json:"done,omitempty"`
}

// HeartbeatRequest extends a held lease.
type HeartbeatRequest struct {
	WorkerID   string `json:"workerID"`
	Generation string `json:"generation"`
	UnitID     string `json:"unitID"`
	Epoch      int64  `json:"epoch"`
	// SentUnixNs is the worker's local send time (only when CampaignInfo.Trace
	// asked for it); the coordinator uses the one-way delta to estimate the
	// worker's clock offset for span stitching.
	SentUnixNs int64 `json:"sentUnixNs,omitempty"`
}

// HeartbeatResponse acknowledges or revokes the lease.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
	// Lost reports that the lease is no longer held (it expired and was
	// requeued, or the unit completed elsewhere); the worker should abandon
	// the batch — its result would be dropped anyway.
	Lost bool `json:"lost,omitempty"`
}

// WitnessPayload carries one captured witness recording back to the
// coordinator, which archives it for signatures that are new fleet-wide.
type WitnessPayload struct {
	// Sig is the finding the recording witnesses.
	Sig corpus.Signature `json:"sig"`
	// Name is the recording's file name (the deterministic
	// <label>-<kind>-p<target>-t<trial>.trace.jsonl the in-process campaign
	// would have used, so fleet and single-process corpora match byte for
	// byte).
	Name string `json:"name"`
	// Data is the recording's bytes (base64 over the wire).
	Data []byte `json:"data"`
}

// UnitResult is one executed batch's report: the worker-local corpus state
// the coordinator merges, plus optional telemetry and witness payloads.
type UnitResult struct {
	// Trials and Potential mirror harness.UnitOutcome.
	Trials    int `json:"trials"`
	Potential int `json:"potential"`
	// Findings and Cells are the batch-local corpus in first-report order
	// (hit counts aggregated batch-side); the coordinator folds them with
	// corpus.Store.Ingest/IngestCell under the merge protocol.
	Findings []corpus.Finding      `json:"findings,omitempty"`
	Cells    []corpus.CoverageCell `json:"cells,omitempty"`
	// Records are the batch's per-execution run records (only when
	// CampaignInfo.Records asked for them).
	Records []obs.RunRecord `json:"records,omitempty"`
	// Witnesses are captured recordings for batch-locally-new signatures
	// (only when CampaignInfo.Witnesses asked for them).
	Witnesses []WitnessPayload `json:"witnesses,omitempty"`
	// Spans are the worker-local sub-span timestamps (only when
	// CampaignInfo.Trace asked for them), piggybacked here so tracing adds
	// no RPC.
	Spans *fleetspan.WorkerSpans `json:"spans,omitempty"`
}

// ResultRequest submits a completed batch.
type ResultRequest struct {
	WorkerID   string     `json:"workerID"`
	Generation string     `json:"generation"`
	UnitID     string     `json:"unitID"`
	Epoch      int64      `json:"epoch"`
	Result     UnitResult `json:"result"`
}

// ResultResponse acknowledges an accepted batch. A rejected batch (duplicate,
// stale epoch, unknown unit) is answered 410 Gone with code "rejected"
// instead — a permanent drop the worker must not retry; the unit was requeued
// or already completed, and determinism guarantees whoever does complete it
// produces the same batch.
type ResultResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// TargetStatus is one target's fleet-wide discovery state on /fleet/status.
type TargetStatus struct {
	Name       string `json:"name"`
	Signatures int    `json:"signatures"`
}

// Status is the /fleet/status snapshot the observatory dashboard polls.
type Status struct {
	Generation     string         `json:"generation"`
	Done           bool           `json:"done"`
	WorkersLive    int            `json:"workersLive"`
	WorkersTotal   int            `json:"workersTotal"`
	Pending        int            `json:"pending"`
	Leased         int            `json:"leased"`
	UnitsDone      int            `json:"unitsDone"`
	Requeues       int64          `json:"requeues"`
	ResultsDropped int64          `json:"resultsDropped"`
	LeaseTTLMillis int64          `json:"leaseTTLMillis"`
	Targets        []TargetStatus `json:"targets,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// Code "reregister" tells the worker its registration is stale (the
	// coordinator restarted); "rejected" marks a permanently-dropped result.
	Code string `json:"code,omitempty"`
}

// codeReregister is the error code that sends a worker back to /register.
const codeReregister = "reregister"

// codeRejected marks a result the coordinator permanently dropped (410):
// retrying the identical submission can never succeed.
const codeRejected = "rejected"
