package fleet

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced Clock so lease expiry is tested without
// sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mkUnits(ids ...string) []WorkUnit {
	units := make([]WorkUnit, len(ids))
	for i, id := range ids {
		units[i] = WorkUnit{ID: id, Target: "figure1", Trials: 1, Seed: 7}
	}
	return units
}

// TestLeaseHeartbeatAndTimeout: a heartbeating worker keeps its lease
// arbitrarily long; a silent worker loses it one TTL after the last
// heartbeat and the unit requeues for the next caller.
func TestLeaseHeartbeatAndTimeout(t *testing.T) {
	clock := newFakeClock()
	const ttl = 10 * time.Second
	tbl := newLeaseTable(clock, ttl, nil)
	tbl.add(mkUnits("r1-t0"))

	u, epoch, ok := tbl.lease("w1")
	if !ok || u.ID != "r1-t0" {
		t.Fatalf("lease: got (%v,%d,%v)", u, epoch, ok)
	}
	// Heartbeats just before each deadline keep the lease alive across many
	// TTLs.
	for i := 0; i < 5; i++ {
		clock.Advance(ttl - time.Second)
		if !tbl.heartbeat("w1", "r1-t0", epoch) {
			t.Fatalf("heartbeat %d rejected while lease held", i)
		}
	}
	if _, _, ok := tbl.lease("w2"); ok {
		t.Fatal("unit leased twice while held")
	}

	// Silence: one TTL later the lease expires and the unit requeues.
	clock.Advance(ttl)
	u2, epoch2, ok := tbl.lease("w2")
	if !ok || u2.ID != "r1-t0" {
		t.Fatalf("requeued unit not re-granted: (%v,%v)", u2, ok)
	}
	if epoch2 <= epoch {
		t.Fatalf("re-grant epoch %d not newer than %d", epoch2, epoch)
	}
	if tbl.heartbeat("w1", "r1-t0", epoch) {
		t.Fatal("original holder's heartbeat accepted after requeue")
	}
	_, _, _, requeues, _ := tbl.counts()
	if requeues != 1 {
		t.Fatalf("requeues = %d, want 1", requeues)
	}
}

// TestResultAcceptance is the idempotence matrix: exactly one submission per
// unit is merged, everything else is dropped with a reason.
func TestResultAcceptance(t *testing.T) {
	const ttl = 10 * time.Second
	cases := []struct {
		name       string
		setup      func(t *testing.T, tbl *leaseTable, clock *fakeClock) (unitID string, epoch int64)
		accept     bool
		wantReason string
	}{
		{
			name: "held lease accepted",
			setup: func(t *testing.T, tbl *leaseTable, clock *fakeClock) (string, int64) {
				u, e, _ := tbl.lease("w1")
				return u.ID, e
			},
			accept: true,
		},
		{
			name: "duplicate of a completed unit dropped",
			setup: func(t *testing.T, tbl *leaseTable, clock *fakeClock) (string, int64) {
				u, e, _ := tbl.lease("w1")
				if ok, _ := tbl.complete("w1", u.ID, e, &UnitResult{}); !ok {
					t.Fatal("first completion rejected")
				}
				return u.ID, e
			},
			wantReason: "duplicate result: unit already complete",
		},
		{
			name: "expired lease's late result dropped",
			setup: func(t *testing.T, tbl *leaseTable, clock *fakeClock) (string, int64) {
				u, e, _ := tbl.lease("w1")
				clock.Advance(ttl + time.Second) // w1 dies; lease expires
				return u.ID, e
			},
			wantReason: "stale lease epoch: lease expired and unit was requeued",
		},
		{
			name: "pre-requeue epoch dropped after re-grant",
			setup: func(t *testing.T, tbl *leaseTable, clock *fakeClock) (string, int64) {
				u, e1, _ := tbl.lease("w1")
				clock.Advance(ttl + time.Second)
				if _, e2, ok := tbl.lease("w2"); !ok || e2 == e1 {
					t.Fatal("expired unit not re-granted under a fresh epoch")
				}
				return u.ID, e1
			},
			wantReason: "stale lease epoch: lease expired and unit was requeued",
		},
		{
			name: "unknown unit dropped",
			setup: func(t *testing.T, tbl *leaseTable, clock *fakeClock) (string, int64) {
				return "r9-t9", 1
			},
			wantReason: "unknown unit",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			tbl := newLeaseTable(clock, ttl, nil)
			tbl.add(mkUnits("r1-t0"))
			unitID, epoch := tc.setup(t, tbl, clock)
			accepted, reason := tbl.complete("w1", unitID, epoch, &UnitResult{Trials: 1})
			if accepted != tc.accept {
				t.Fatalf("accepted = %v (%s), want %v", accepted, reason, tc.accept)
			}
			if reason != tc.wantReason {
				t.Fatalf("reason = %q, want %q", reason, tc.wantReason)
			}
			if !tc.accept {
				if _, _, _, _, dropped := tbl.counts(); dropped == 0 {
					t.Fatal("dropped counter not incremented")
				}
			}
		})
	}
}

// TestExpiredThenReexecutedUnitCountsOnce: the full lost-worker story at the
// table level — the requeued unit completes exactly once even though two
// workers executed it, so a retried batch can never double-merge.
func TestExpiredThenReexecutedUnitCountsOnce(t *testing.T) {
	clock := newFakeClock()
	const ttl = 10 * time.Second
	tbl := newLeaseTable(clock, ttl, nil)
	tbl.add(mkUnits("r1-t0", "r1-t1"))

	u1, e1, _ := tbl.lease("w1") // w1 takes r1-t0 and dies
	clock.Advance(ttl + time.Second)

	// w2 drains the still-pending unit first (requeues go to the queue
	// tail), then inherits r1-t0.
	ub, eb, _ := tbl.lease("w2")
	tbl.complete("w2", ub.ID, eb, &UnitResult{})
	u2, e2, _ := tbl.lease("w2")
	if u2.ID != u1.ID {
		t.Fatalf("w2 leased %s, want requeued %s", u2.ID, u1.ID)
	}
	if ok, _ := tbl.complete("w2", u2.ID, e2, &UnitResult{Trials: 5}); !ok {
		t.Fatal("w2's result rejected")
	}
	// w1 comes back from the dead with the same (deterministic) batch.
	if ok, reason := tbl.complete("w1", u1.ID, e1, &UnitResult{Trials: 5}); ok {
		t.Fatal("zombie worker's duplicate result accepted")
	} else if reason == "" {
		t.Fatal("drop must carry a reason")
	}

	_, _, done, requeues, dropped := tbl.counts()
	if done != 2 || requeues != 1 || dropped != 1 {
		t.Fatalf("done/requeues/dropped = %d/%d/%d, want 2/1/1", done, requeues, dropped)
	}
	if res := tbl.takeResult(u1.ID); res == nil || res.Trials != 5 {
		t.Fatalf("takeResult = %+v, want the single accepted batch", res)
	}
}

// TestAwaitDone: the round barrier wakes on the last completion and honors
// cancellation.
func TestAwaitDone(t *testing.T) {
	clock := newFakeClock()
	tbl := newLeaseTable(clock, time.Minute, nil)
	tbl.add(mkUnits("a", "b"))

	donec := make(chan error, 1)
	go func() {
		donec <- tbl.awaitDone(context.Background(), []string{"a", "b"})
	}()
	ua, ea, _ := tbl.lease("w1")
	ub, eb, _ := tbl.lease("w1")
	tbl.complete("w1", ua.ID, ea, &UnitResult{})
	select {
	case err := <-donec:
		t.Fatalf("barrier released with one unit outstanding: %v", err)
	default:
	}
	tbl.complete("w1", ub.ID, eb, &UnitResult{})
	if err := <-donec; err != nil {
		t.Fatalf("awaitDone: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		donec <- tbl.awaitDone(ctx, []string{"never-added"})
	}()
	cancel()
	if err := <-donec; err == nil {
		t.Fatal("cancelled barrier returned nil")
	}
}
