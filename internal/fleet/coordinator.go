// Package fleet turns racefuzzer from a tool into a service: a long-lived
// coordinator that schedules adaptive campaigns across many target programs
// and many worker processes, and the worker pull loop that executes leased
// trial batches.
//
// The division of labor follows the determinism contract the rest of the
// repository already enforces. A work unit is a (target, seed, trial-budget)
// tuple, so execution is location-independent: any worker running the same
// build produces bit-identical trials. The coordinator therefore owns only
// the things that must be globally ordered — budget allocation (the
// corpus.Allocate bandit), lease bookkeeping, and all corpus writes, which
// happen exclusively on the coordinator through the corpus merge protocol
// (Store.Ingest/IngestCell), folding worker batches in unit order. The
// result: a fleet campaign's corpus and findings match the single-process
// campaign at the same budget, and a lost worker costs only a requeued
// lease, never a double-counted finding.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"racefuzzer/internal/corpus"
	"racefuzzer/internal/fleetspan"
	"racefuzzer/internal/harness"
	"racefuzzer/internal/obs"
)

// DefaultLeaseTTL is the lease expiry workers must heartbeat within.
const DefaultLeaseTTL = 10 * time.Second

// defaultRetryMillis is the wait the coordinator suggests when no unit is
// pending.
const defaultRetryMillis = 200

// CoordinatorConfig parameterizes NewCoordinator.
type CoordinatorConfig struct {
	// Addr is the control-plane listen address (e.g. ":7070").
	Addr string
	// Store is the authoritative campaign corpus; every merge lands here.
	// It must be the same store the campaign driver (harness.RunCampaign)
	// was given.
	Store *corpus.Store
	// Workers is the trial-executor width each fleet worker runs batches
	// with (core.Options.Workers).
	Workers int
	// Metrics and Sink, when non-nil, receive the run records workers
	// stream back, re-emitted in deterministic unit order.
	Metrics *obs.CampaignMetrics
	Sink    obs.Sink
	// Gauges, when non-nil, receives the fleet-wide gauges (workers live,
	// leases in flight, requeues, per-target discovery) the observatory
	// renders on /metrics.
	Gauges *obs.Registry
	// Spans, when non-nil, turns on distributed unit-lifecycle tracing: the
	// collector records every queued→leased→result→ingested transition,
	// stitches worker sub-spans, and feeds /fleet/health. Nil is the
	// zero-overhead untraced default.
	Spans *fleetspan.Collector
	// LeaseTTL overrides DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Clock overrides the system clock (tests).
	Clock Clock
	// Provenance is the coordinator's build identity, handed to workers for
	// build-parity checks.
	Provenance obs.Provenance
	// Logf, when non-nil, receives coordinator lifecycle logging.
	Logf func(format string, args ...any)
}

// Coordinator is the fleet control plane plus the campaign-side
// harness.RoundExecutor: harness.RunCampaign drives rounds, the coordinator
// leases each round's units to the pool and merges results back in order.
type Coordinator struct {
	cfg   CoordinatorConfig
	clock Clock
	table *leaseTable
	gen   string

	mu       sync.Mutex
	workers  map[string]*workerInfo
	nextID   int
	done     bool
	notified map[string]bool // workers that have been told the campaign is done
	targets  []string        // campaign name list, for per-target gauges

	ctx    context.Context
	cancel context.CancelFunc

	srv *http.Server
	ln  net.Listener
}

// workerInfo is the registry's view of one worker.
type workerInfo struct {
	name     string
	lastSeen time.Time
	leased   int64
	results  int64
}

// NewCoordinator assembles a coordinator (not yet listening).
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	clock := cfg.Clock
	if clock == nil {
		clock = systemClock{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Coordinator{
		cfg:      cfg,
		clock:    clock,
		table:    newLeaseTable(clock, cfg.LeaseTTL, cfg.Spans),
		gen:      fmt.Sprintf("g-%d-%d", os.Getpid(), time.Now().UnixNano()),
		workers:  make(map[string]*workerInfo),
		notified: make(map[string]bool),
		ctx:      ctx,
		cancel:   cancel,
	}
}

// Generation identifies this coordinator process; workers that present a
// different generation are told to re-register.
func (c *Coordinator) Generation() string { return c.gen }

// logf logs through the configured logger.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Mux returns the control-plane handler, for mounting on an existing server
// (the observatory mounts StatusHandler only; tests mount the whole mux).
func (c *Coordinator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", c.handleRegister)
	mux.HandleFunc("/fleet/lease", c.handleLease)
	mux.HandleFunc("/fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/fleet/result", c.handleResult)
	mux.Handle("/fleet/status", c.StatusHandler())
	mux.Handle("/fleet/health", c.HealthHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Start begins serving the control plane and the background lease sweeper.
func (c *Coordinator) Start() error {
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return err
	}
	c.ln = ln
	c.srv = &http.Server{Handler: c.Mux()}
	go c.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	go c.sweepLoop()
	return nil
}

// Addr returns the bound control-plane address ("" before Start).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// sweepLoop expires overdue leases even when no worker traffic arrives, so
// a round barrier eventually requeues a silently-dead fleet's units.
func (c *Coordinator) sweepLoop() {
	tick := time.NewTicker(c.cfg.LeaseTTL / 2)
	defer tick.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-tick.C:
			c.table.sweep()
			c.publishGauges()
		}
	}
}

// Shutdown stops the control plane and cancels any in-flight round barrier.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.cancel()
	if c.srv == nil {
		return nil
	}
	return c.srv.Shutdown(ctx)
}

// Finish marks the campaign complete: from now on every lease request is
// answered Done, sending workers to a clean exit.
func (c *Coordinator) Finish() {
	c.mu.Lock()
	c.done = true
	c.mu.Unlock()
	c.publishGauges()
}

// Drained reports whether every live worker has been told the campaign is
// done (the CLI lingers on this before shutting the control plane down).
func (c *Coordinator) Drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done {
		return false
	}
	cutoff := c.clock.Now().Add(-3 * c.cfg.LeaseTTL)
	for id, w := range c.workers {
		if w.lastSeen.After(cutoff) && !c.notified[id] {
			return false
		}
	}
	return true
}

// SetTargets records the campaign's name list for per-target discovery
// gauges and /fleet/status.
func (c *Coordinator) SetTargets(names []string) {
	c.mu.Lock()
	c.targets = append([]string(nil), names...)
	c.mu.Unlock()
}

// ExecuteRound implements harness.RoundExecutor: enqueue the round's units,
// wait for the pool to complete them all, then fold each unit's batch into
// the corpus in unit order inside the driver's begin/done accounting window.
func (c *Coordinator) ExecuteRound(units []harness.RoundUnit, begin func(i int), done func(i int, out harness.UnitOutcome)) error {
	wus := make([]WorkUnit, len(units))
	ids := make([]string, len(units))
	for i, u := range units {
		wus[i] = WorkUnit{
			ID:          fmt.Sprintf("r%d-t%d", u.Round, u.TargetIndex),
			Round:       u.Round,
			TargetIndex: u.TargetIndex,
			Target:      u.Target,
			Trials:      u.Trials,
			Seed:        u.Seed,
		}
		ids[i] = wus[i].ID
	}
	c.table.add(wus)
	c.publishGauges()
	if err := c.table.awaitDone(c.ctx, ids); err != nil {
		return fmt.Errorf("fleet: round barrier: %w", err)
	}
	for i := range units {
		res := c.table.takeResult(ids[i])
		if res == nil {
			return fmt.Errorf("fleet: unit %s completed without a result", ids[i])
		}
		begin(i)
		c.mergeResult(res)
		c.cfg.Spans.UnitIngested(ids[i])
		done(i, harness.UnitOutcome{Trials: res.Trials, Potential: res.Potential})
	}
	c.publishGauges()
	return nil
}

// mergeResult folds one batch into the authoritative corpus: findings and
// coverage cells through the merge protocol, witness payloads archived for
// signatures that are new fleet-wide, run records re-emitted to the
// coordinator's metrics/sink. This is the only place corpus writes happen
// in a fleet campaign.
func (c *Coordinator) mergeResult(res *UnitResult) {
	store := c.cfg.Store
	witnessByCanon := make(map[string]*WitnessPayload, len(res.Witnesses))
	for i := range res.Witnesses {
		witnessByCanon[res.Witnesses[i].Sig.Canon()] = &res.Witnesses[i]
	}
	for _, f := range res.Findings {
		f.WitnessTrace = "" // worker-local path; re-archived below when new
		isNew := store.Ingest(f)
		if !isNew {
			continue
		}
		wp := witnessByCanon[f.Sig.Canon()]
		if wp == nil || store.WitnessDir() == "" {
			continue
		}
		path := filepath.Join(store.WitnessDir(), filepath.Base(wp.Name))
		if err := os.MkdirAll(store.WitnessDir(), 0o755); err != nil {
			c.logf("fleet: witness archive: %v", err)
			continue
		}
		if err := os.WriteFile(path, wp.Data, 0o644); err != nil {
			c.logf("fleet: witness archive: %v", err)
			continue
		}
		store.AttachWitness(f.Sig, path)
	}
	for _, cell := range res.Cells {
		store.IngestCell(cell)
	}
	for _, rec := range res.Records {
		c.cfg.Metrics.Emit(rec)
		obs.Emit(c.cfg.Sink, rec)
	}
}

// campaignInfo is the standing config handed to workers at registration.
func (c *Coordinator) campaignInfo() CampaignInfo {
	return CampaignInfo{
		Workers:   c.cfg.Workers,
		Witnesses: c.cfg.Store.WitnessDir() != "",
		Records:   c.cfg.Metrics != nil || c.cfg.Sink != nil,
		Trace:     c.cfg.Spans.Enabled(),
	}
}

// touchWorker validates a (workerID, generation) pair and stamps liveness.
// It returns false after writing the re-register error when the pair is
// stale — the one error workers must react to.
func (c *Coordinator) touchWorker(w http.ResponseWriter, workerID, generation string) bool {
	c.mu.Lock()
	info, ok := c.workers[workerID]
	if ok && generation == c.gen {
		info.lastSeen = c.clock.Now()
		c.mu.Unlock()
		return true
	}
	c.mu.Unlock()
	writeJSONStatus(w, http.StatusConflict, errorBody{
		Error: "unknown worker or stale generation (coordinator restarted?)",
		Code:  codeReregister,
	})
	return false
}

// handleRegister admits a worker into the pool.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	c.nextID++
	id := fmt.Sprintf("w%d", c.nextID)
	c.workers[id] = &workerInfo{name: req.Name, lastSeen: c.clock.Now()}
	c.mu.Unlock()
	c.logf("fleet: worker %s registered (%s, %s)", id, req.Name, req.Provenance.String())
	if req.Provenance.Commit != c.cfg.Provenance.Commit || req.Provenance.Go != c.cfg.Provenance.Go {
		c.logf("fleet: warning: worker %s build differs from coordinator (worker %s/%s, coordinator %s/%s) — trial determinism is only guaranteed across identical builds",
			id, req.Provenance.Commit, req.Provenance.Go, c.cfg.Provenance.Commit, c.cfg.Provenance.Go)
	}
	c.publishGauges()
	writeJSON(w, RegisterResponse{
		WorkerID:       id,
		Generation:     c.gen,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
		Campaign:       c.campaignInfo(),
		Provenance:     c.cfg.Provenance,
	})
}

// handleLease grants the next pending unit, asks the worker to wait, or —
// once the campaign is finished — releases it.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !c.touchWorker(w, req.WorkerID, req.Generation) {
		return
	}
	c.mu.Lock()
	finished := c.done
	if finished {
		c.notified[req.WorkerID] = true
	}
	c.mu.Unlock()
	if finished {
		writeJSON(w, LeaseResponse{Done: true})
		return
	}
	unit, epoch, ok := c.table.lease(req.WorkerID)
	if !ok {
		writeJSON(w, LeaseResponse{Wait: true, RetryMillis: defaultRetryMillis})
		return
	}
	c.mu.Lock()
	if info := c.workers[req.WorkerID]; info != nil {
		info.leased++
	}
	c.mu.Unlock()
	c.publishGauges()
	writeJSON(w, LeaseResponse{Unit: &unit, Epoch: epoch})
}

// handleHeartbeat extends a held lease.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !c.touchWorker(w, req.WorkerID, req.Generation) {
		return
	}
	// Even a lost lease's heartbeat teaches the worker's clock offset.
	c.cfg.Spans.Heartbeat(req.WorkerID, req.UnitID, req.SentUnixNs)
	ok := c.table.heartbeat(req.WorkerID, req.UnitID, req.Epoch)
	writeJSON(w, HeartbeatResponse{OK: ok, Lost: !ok})
}

// handleResult ingests a completed batch (idempotently: duplicates and
// stale-epoch submissions are dropped, not merged twice).
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !c.touchWorker(w, req.WorkerID, req.Generation) {
		return
	}
	res := req.Result
	accepted, reason := c.table.complete(req.WorkerID, req.UnitID, req.Epoch, &res)
	if !accepted {
		// A dropped result is permanent: the identical submission can never
		// be accepted, so answer 410 and let the worker count it rather than
		// retry it.
		c.logf("fleet: dropped result for %s from %s: %s", req.UnitID, req.WorkerID, reason)
		c.publishGauges()
		writeJSONStatus(w, http.StatusGone, errorBody{Error: reason, Code: codeRejected})
		return
	}
	c.mu.Lock()
	if info := c.workers[req.WorkerID]; info != nil {
		info.results++
	}
	c.mu.Unlock()
	c.publishGauges()
	writeJSON(w, ResultResponse{Accepted: true})
}

// StatusHandler serves the /fleet/status snapshot; the observatory mounts it
// so the dashboard's fleet panel and scripted operators share one endpoint.
func (c *Coordinator) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.status())
	})
}

// HealthHandler serves the /fleet/health flight-deck snapshot: campaign
// score, live anomalies, per-worker vitals. 404 when tracing is off, so the
// dashboard's probe can tell "no flight deck" from "unhealthy fleet".
func (c *Coordinator) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if !c.cfg.Spans.Enabled() {
			writeJSONStatus(w, http.StatusNotFound, errorBody{Error: "fleet tracing disabled (run the coordinator with -fleettrace)"})
			return
		}
		writeJSON(w, c.cfg.Spans.Health())
	})
}

// status assembles the live fleet snapshot.
func (c *Coordinator) status() Status {
	pending, leased, doneN, requeues, dropped := c.table.counts()
	c.mu.Lock()
	cutoff := c.clock.Now().Add(-3 * c.cfg.LeaseTTL)
	live := 0
	for _, info := range c.workers {
		if info.lastSeen.After(cutoff) {
			live++
		}
	}
	st := Status{
		Generation:     c.gen,
		Done:           c.done,
		WorkersLive:    live,
		WorkersTotal:   len(c.workers),
		Pending:        pending,
		Leased:         leased,
		UnitsDone:      doneN,
		Requeues:       requeues,
		ResultsDropped: dropped,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	}
	targets := append([]string(nil), c.targets...)
	c.mu.Unlock()
	sort.Strings(targets)
	for _, name := range targets {
		st.Targets = append(st.Targets, TargetStatus{
			Name:       name,
			Signatures: c.cfg.Store.BenchSignatures(name),
		})
	}
	return st
}

// publishGauges pushes the fleet snapshot into the observatory registry.
func (c *Coordinator) publishGauges() {
	g := c.cfg.Gauges
	if g == nil {
		return
	}
	st := c.status()
	g.Gauge("fleet.workers_live").Set(float64(st.WorkersLive))
	g.Gauge("fleet.workers_total").Set(float64(st.WorkersTotal))
	g.Gauge("fleet.leases_pending").Set(float64(st.Pending))
	g.Gauge("fleet.leases_inflight").Set(float64(st.Leased))
	g.Gauge("fleet.units_done").Set(float64(st.UnitsDone))
	g.Gauge("fleet.requeues").Set(float64(st.Requeues))
	g.Gauge("fleet.results_dropped").Set(float64(st.ResultsDropped))
	for _, t := range st.Targets {
		g.Gauge("fleet.discovery." + t.Name).Set(float64(t.Signatures))
	}
	if c.cfg.Spans.Enabled() {
		h := c.cfg.Spans.Health()
		g.Gauge("fleet.health_score").Set(float64(h.Score))
		g.Gauge("fleet.health_anomalies").Set(float64(len(h.Anomalies)))
		g.Gauge("fleet.health_recent_requeues").Set(float64(h.RecentRequeues))
		g.Gauge("fleet.health_time_lost_requeues_ms").Set(h.TimeLostToRequeuesMs)
	}
}

// readJSON decodes a request body, answering 400 on malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSONStatus(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request: %v", err)})
		return false
	}
	return true
}

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus writes a JSON response with an explicit status.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort write to client
}
