package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/corpus"
	"racefuzzer/internal/fleetspan"
	"racefuzzer/internal/harness"
	"racefuzzer/internal/obs"
)

// WorkerOptions parameterizes RunWorker.
type WorkerOptions struct {
	// Coordinator is the control-plane base URL (e.g. "http://host:7070").
	Coordinator string
	// Name is the worker's human label (host:pid when empty).
	Name string
	// Provenance is this build's identity, sent at registration.
	Provenance obs.Provenance
	// Client overrides the HTTP client.
	Client *http.Client
	// Logf, when non-nil, receives worker lifecycle logging.
	Logf func(format string, args ...any)
	// Execute overrides unit execution (tests); nil runs ExecuteUnit.
	Execute func(u WorkUnit, info CampaignInfo) (UnitResult, error)
	// Sleep overrides the backoff/wait sleeper (tests); nil sleeps for real,
	// waking early when ctx ends.
	Sleep func(ctx context.Context, d time.Duration)
	// Metrics, when non-nil, receives worker-side counters — notably
	// results.permanent_reject, counting result submissions the coordinator
	// dropped for good (stale epoch, duplicate).
	Metrics *obs.Registry
}

// resultMaxAttempts bounds the result POST retry loop for transient
// (5xx/network) failures; past it the lease simply expires and the unit
// requeues, which is deterministically equivalent.
const resultMaxAttempts = 4

// registration is a worker's session with one coordinator generation.
type registration struct {
	workerID   string
	generation string
	ttl        time.Duration
	info       CampaignInfo
}

// errReregister marks a control-plane response that invalidated our
// registration (the coordinator restarted).
type errReregister struct{ msg string }

func (e errReregister) Error() string { return e.msg }

// RunWorker joins the pool at o.Coordinator and executes leased batches
// until the coordinator declares the campaign done (returns nil) or ctx
// ends (returns ctx.Err()). A coordinator restart is survived transparently:
// any call rejected with code "reregister" sends the worker back to
// /fleet/register with backoff, and determinism makes the re-executed
// batches identical, so the only cost is the repeated work.
func RunWorker(ctx context.Context, o WorkerOptions) error {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Name == "" {
		host, _ := os.Hostname()
		o.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if o.Execute == nil {
		o.Execute = ExecuteUnit
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
			case <-t.C:
			}
		}
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		reg, err := register(ctx, o)
		if err != nil {
			return err
		}
		logf("fleet: registered as %s with %s (generation %s)", reg.workerID, o.Coordinator, reg.generation)
		err = workLoop(ctx, o, reg)
		if err == nil {
			logf("fleet: campaign done, worker %s exiting", reg.workerID)
			return nil
		}
		var rr errReregister
		if errors.As(err, &rr) {
			logf("fleet: coordinator restarted (%s), re-registering", rr.msg)
			continue
		}
		return err
	}
}

// register joins the pool, retrying with capped exponential backoff until it
// succeeds or ctx ends — this is also the reconnect path after a
// coordinator restart, so patience matters more than speed.
func register(ctx context.Context, o WorkerOptions) (registration, error) {
	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		if err := ctx.Err(); err != nil {
			return registration{}, err
		}
		var resp RegisterResponse
		err := postJSON(ctx, o.Client, o.Coordinator+"/fleet/register",
			RegisterRequest{Name: o.Name, Provenance: o.Provenance}, &resp)
		if err == nil {
			ttl := time.Duration(resp.LeaseTTLMillis) * time.Millisecond
			if ttl <= 0 {
				ttl = DefaultLeaseTTL
			}
			return registration{
				workerID:   resp.WorkerID,
				generation: resp.Generation,
				ttl:        ttl,
				info:       resp.Campaign,
			}, nil
		}
		if o.Logf != nil {
			o.Logf("fleet: register with %s failed (%v), retrying in %s", o.Coordinator, err, backoff)
		}
		o.Sleep(ctx, backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// workLoop is the lease → execute → report cycle under one registration.
// It returns nil when the campaign is done, errReregister when the
// coordinator's generation changed, or ctx.Err().
func workLoop(ctx context.Context, o WorkerOptions, reg registration) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		err := postJSON(ctx, o.Client, o.Coordinator+"/fleet/lease",
			LeaseRequest{WorkerID: reg.workerID, Generation: reg.generation}, &lease)
		if err != nil {
			if isReregister(err) {
				return errReregister{msg: err.Error()}
			}
			// Transient (coordinator briefly unreachable): wait and retry.
			o.Sleep(ctx, time.Second)
			continue
		}
		switch {
		case lease.Done:
			return nil
		case lease.Unit == nil:
			wait := time.Duration(lease.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = time.Duration(defaultRetryMillis) * time.Millisecond
			}
			o.Sleep(ctx, wait)
			continue
		}
		if err := runLease(ctx, o, reg, lease); err != nil {
			return err
		}
	}
}

// runLease executes one granted unit under a heartbeat and reports the
// result. The heartbeat runs at a third of the lease TTL; losing the lease
// (expiry, coordinator handing the unit elsewhere) does not abort the batch
// — execution is deterministic, so the work is identical wherever it lands
// and our late result is simply dropped on arrival.
func runLease(ctx context.Context, o WorkerOptions, reg registration, lease LeaseResponse) error {
	unit := *lease.Unit
	if o.Logf != nil {
		o.Logf("fleet: leased %s (%s, %d trials, seed %d)", unit.ID, unit.Target, unit.Trials, unit.Seed)
	}
	// Sub-span recording (lease-received → exec → posted) is on only when the
	// coordinator asked for tracing; untraced payloads stay byte-identical.
	var spans *fleetspan.WorkerSpans
	if reg.info.Trace {
		spans = &fleetspan.WorkerSpans{LeaseRecvNs: time.Now().UnixNano()}
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		tick := time.NewTicker(reg.ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				req := HeartbeatRequest{WorkerID: reg.workerID, Generation: reg.generation, UnitID: unit.ID, Epoch: lease.Epoch}
				if reg.info.Trace {
					req.SentUnixNs = time.Now().UnixNano()
				}
				var resp HeartbeatResponse
				err := postJSON(hbCtx, o.Client, o.Coordinator+"/fleet/heartbeat", req, &resp)
				if err == nil && resp.Lost && o.Logf != nil {
					o.Logf("fleet: lease on %s lost mid-batch; finishing anyway (result will be dropped)", unit.ID)
				}
			}
		}
	}()
	if spans != nil {
		spans.ExecStartNs = time.Now().UnixNano()
	}
	res, execErr := o.Execute(unit, reg.info)
	if spans != nil {
		spans.ExecEndNs = time.Now().UnixNano()
	}
	stopHB()
	hb.Wait()
	if execErr != nil {
		// A batch that cannot execute here (unknown target: registry drift
		// between builds) cannot execute anywhere better; surface it.
		return fmt.Errorf("fleet: execute %s: %w", unit.ID, execErr)
	}
	if spans != nil {
		spans.PostedNs = time.Now().UnixNano()
		res.Spans = spans
	}
	return postResult(ctx, o, reg, unit, lease.Epoch, res)
}

// postResult submits a completed batch, distinguishing permanent rejections
// from transient failures. A 410 (stale epoch, duplicate) can never succeed
// on retry: count it and move on. A 5xx or network error is retried with
// backoff a few times; past that the lease expires and the unit requeues.
func postResult(ctx context.Context, o WorkerOptions, reg registration, unit WorkUnit, epoch int64, res UnitResult) error {
	backoff := 250 * time.Millisecond
	for attempt := 1; ; attempt++ {
		var resp ResultResponse
		err := postJSON(ctx, o.Client, o.Coordinator+"/fleet/result",
			ResultRequest{WorkerID: reg.workerID, Generation: reg.generation, UnitID: unit.ID, Epoch: epoch, Result: res}, &resp)
		if err == nil {
			return nil
		}
		if isReregister(err) {
			return errReregister{msg: err.Error()}
		}
		if isPermanentReject(err) {
			o.Metrics.Counter("results.permanent_reject").Inc()
			if o.Logf != nil {
				o.Logf("fleet: result for %s permanently rejected: %v", unit.ID, err)
			}
			return nil
		}
		if attempt >= resultMaxAttempts || ctx.Err() != nil {
			// Transient failures exhausted; the lease will expire and the
			// unit will requeue — deterministically equivalent, so move on.
			if o.Logf != nil {
				o.Logf("fleet: result for %s not delivered after %d attempts (%v); unit will requeue", unit.ID, attempt, err)
			}
			return nil
		}
		if o.Logf != nil {
			o.Logf("fleet: result for %s failed (%v), retrying in %s", unit.ID, err, backoff)
		}
		o.Sleep(ctx, backoff)
		backoff *= 2
	}
}

// ExecuteUnit runs one leased batch in this process: the standard
// harness.RunUnit body against a fresh in-memory store, so the batch's
// findings, coverage cells, records, and witness recordings stream back as
// a self-contained UnitResult for the coordinator to merge. The unit tuple
// fully determines the trials executed; only the new/known labeling is
// batch-local (the coordinator's merge re-deduplicates fleet-wide).
func ExecuteUnit(u WorkUnit, info CampaignInfo) (UnitResult, error) {
	if _, ok := bench.ByName(u.Target); !ok {
		return UnitResult{}, fmt.Errorf("unknown target %q (build mismatch with coordinator?)", u.Target)
	}
	store := corpus.NewStore()
	o := harness.CampaignOptions{Workers: info.Workers}
	var rec *recordingSink
	if info.Records {
		rec = &recordingSink{}
		o.Sink = rec
	}
	if info.Witnesses {
		dir, err := os.MkdirTemp("", "fleet-witness-")
		if err != nil {
			return UnitResult{}, fmt.Errorf("witness scratch dir: %w", err)
		}
		defer os.RemoveAll(dir)
		o.TraceDir = dir
	}
	out := harness.RunUnit(harness.RoundUnit{
		Round: u.Round, TargetIndex: u.TargetIndex, Target: u.Target,
		Trials: u.Trials, Seed: u.Seed,
	}, store, o)
	res := UnitResult{Trials: out.Trials, Potential: out.Potential}
	for _, f := range store.Findings() {
		if p := store.WitnessPath(f); p != "" {
			if data, err := os.ReadFile(p); err == nil {
				res.Witnesses = append(res.Witnesses, WitnessPayload{
					Sig: f.Sig, Name: filepath.Base(p), Data: data,
				})
			}
		}
		f.WitnessTrace = "" // worker-local scratch path, meaningless remotely
		res.Findings = append(res.Findings, f)
	}
	res.Cells = store.Coverage()
	if rec != nil {
		res.Records = rec.take()
	}
	return res, nil
}

// recordingSink buffers run records for the result payload.
type recordingSink struct {
	mu   sync.Mutex
	recs []obs.RunRecord
}

func (s *recordingSink) Emit(rec obs.RunRecord) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

func (s *recordingSink) take() []obs.RunRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.recs
	s.recs = nil
	return recs
}

// httpError is a non-200 control-plane response.
type httpError struct {
	status int
	body   errorBody
}

func (e *httpError) Error() string {
	return fmt.Sprintf("coordinator: HTTP %d: %s", e.status, e.body.Error)
}

// isReregister reports whether err carries the coordinator's "registration
// is stale" code.
func isReregister(err error) bool {
	he, ok := err.(*httpError)
	return ok && he.body.Code == codeReregister
}

// isPermanentReject reports whether err is a result drop that can never
// succeed on retry: the explicit 410 "rejected" code, or any other 4xx (a
// malformed submission stays malformed). Reregister conflicts are handled
// separately — they do have a recovery path.
func isPermanentReject(err error) bool {
	he, ok := err.(*httpError)
	if !ok || he.body.Code == codeReregister {
		return false
	}
	return he.body.Code == codeRejected || (he.status >= 400 && he.status < 500)
}

// postJSON POSTs a JSON body and decodes the JSON response, mapping non-200
// statuses to *httpError (with the coordinator's error envelope when it
// sent one).
func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		he := &httpError{status: resp.StatusCode}
		json.Unmarshal(data, &he.body) //nolint:errcheck // best-effort envelope
		if he.body.Error == "" {
			he.body.Error = string(bytes.TrimSpace(data))
		}
		return he
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(bytes.NewReader(data)).Decode(out)
}
