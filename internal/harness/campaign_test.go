package harness

import (
	"reflect"
	"strings"
	"testing"

	"racefuzzer/internal/corpus"
)

// campaignBenches keeps campaign tests fast: two small registry programs
// with known confirmed races.
var campaignBenches = []string{"figure1", "vector"}

func TestAdaptiveCampaignConservesBudget(t *testing.T) {
	store := corpus.NewStore()
	rows := RunAdaptiveCampaign(campaignBenches, CampaignOptions{
		Seed: 7, Budget: 60, Rounds: 3, Corpus: store,
	})
	if len(rows) != len(campaignBenches) {
		t.Fatalf("rows = %d, want %d", len(rows), len(campaignBenches))
	}
	granted := 0
	for _, r := range rows {
		if len(r.AllocByRound) != 3 {
			t.Fatalf("%s: %d allocation rounds, want 3", r.Name, len(r.AllocByRound))
		}
		for _, a := range r.AllocByRound {
			granted += a
		}
		if r.Trials > 0 && r.NewSignatures == 0 && r.KnownSightings == 0 {
			t.Fatalf("%s: spent %d trials, confirmed nothing", r.Name, r.Trials)
		}
	}
	if granted != 60 {
		t.Fatalf("allocator granted %d trials, budget was 60", granted)
	}
	if store.Len() == 0 {
		t.Fatal("campaign populated no corpus findings")
	}
}

func TestAdaptiveCampaignDeterministicAcrossWorkers(t *testing.T) {
	type outcome struct {
		rows     []CampaignRow
		findings []corpus.Finding
		coverage []corpus.CoverageCell
	}
	run := func(workers int) outcome {
		store := corpus.NewStore()
		rows := RunAdaptiveCampaign(campaignBenches, CampaignOptions{
			Seed: 7, Budget: 60, Rounds: 2, Workers: workers, Corpus: store,
		})
		return outcome{rows: rows, findings: store.Findings(), coverage: store.Coverage()}
	}
	base := run(0)
	for _, workers := range []int{1, 4, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got.rows, base.rows) {
			t.Fatalf("workers=%d: campaign rows diverge\n got: %+v\nwant: %+v",
				workers, got.rows, base.rows)
		}
		if !reflect.DeepEqual(got.findings, base.findings) {
			t.Fatalf("workers=%d: corpus findings diverge", workers)
		}
		if !reflect.DeepEqual(got.coverage, base.coverage) {
			t.Fatalf("workers=%d: coverage map diverges", workers)
		}
	}
}

func TestAdaptiveCampaignStarvesPlateauedTargets(t *testing.T) {
	store := corpus.NewStore()
	rows := RunAdaptiveCampaign([]string{"figure1"}, CampaignOptions{
		Seed: 7, Budget: 120, Rounds: 6, Corpus: store,
	})
	r := rows[0]
	if !r.Plateaued {
		t.Fatalf("single tiny target not plateaued after 6 rounds: %+v", r)
	}
	// Once plateaued, later rounds should grant less than the early,
	// discovery-rich rounds did (weight drops to the floor).
	if last := r.AllocByRound[len(r.AllocByRound)-1]; last > r.AllocByRound[0] {
		t.Fatalf("plateaued target's allocation grew: %v", r.AllocByRound)
	}
}

func TestRegressCleanOnFreshCorpus(t *testing.T) {
	dir := t.TempDir()
	store, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	RunAdaptiveCampaign(campaignBenches, CampaignOptions{
		Seed: 7, Budget: 40, Rounds: 2, Corpus: store, TraceDir: store.WitnessDir(),
	})
	if store.Len() == 0 {
		t.Fatal("campaign produced no findings to regress")
	}
	if err := store.Save(); err != nil {
		t.Fatal(err)
	}

	reopened, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	results, ok := Regress(reopened)
	if !ok {
		for _, r := range results {
			if !r.OK() {
				t.Errorf("regress: %s", r)
			}
		}
		t.Fatal("regress failed on a freshly built corpus")
	}
	if len(results) != reopened.Len() {
		t.Fatalf("regressed %d findings, corpus has %d", len(results), reopened.Len())
	}
	witnessed := 0
	for _, r := range results {
		if r.Finding.WitnessTrace != "" {
			witnessed++
		}
	}
	if witnessed == 0 {
		t.Fatal("no finding carried an archived witness")
	}
}

func TestRegressDetectsMissingBench(t *testing.T) {
	store := corpus.NewStore()
	store.Report(corpus.Finding{
		Sig:   corpus.MakeSignature("race", "a:1", "b:2", "race"),
		Bench: "no-such-bench", Pair: "(a:1, b:2)",
	})
	results, ok := Regress(store)
	if ok {
		t.Fatal("regress passed with an unregistered benchmark")
	}
	if results[0].Status != RegressBenchMissing {
		t.Fatalf("status = %s, want %s", results[0].Status, RegressBenchMissing)
	}
}

func TestRenderCampaignMentionsEveryTarget(t *testing.T) {
	rows := []CampaignRow{
		{Name: "figure1", AllocByRound: []int{10, 5}, Trials: 15, NewSignatures: 1},
		{Name: "vector", AllocByRound: []int{10, 15}, Trials: 25, Plateaued: true},
	}
	out := RenderCampaign(rows)
	for _, want := range []string{"figure1", "vector", "10/5", "10/15", "yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
