package harness

import (
	"fmt"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/corpus"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/report"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/schedprof"
)

// The adaptive budget campaign: instead of giving every registry target the
// same Phase2Trials, split one global trial budget across targets over
// several allocation rounds, reweighting between rounds toward targets that
// are still producing new corpus signatures and new interleaving-coverage
// cells ("Fuzzing at Scale"-style). The allocator (corpus.Allocate) is a
// deterministic bandit — weights are a pure function of per-target
// discovery state, rounds use seeds derived from the master seed, and every
// per-target pipeline is the standard deterministic one — so the whole
// campaign is bit-identical at any Workers width.

// CampaignOptions parameterizes RunAdaptiveCampaign.
type CampaignOptions struct {
	// Seed is the master seed; round r of a target uses a derived stream,
	// so successive rounds explore fresh schedules yet stay reproducible.
	Seed int64
	// Budget is the global phase-2 trial budget spread across all targets
	// and rounds (phase-1 observations ride on top, they are not charged).
	// Default 1000.
	Budget int
	// Rounds is the number of allocation rounds. Default 3.
	Rounds int
	// Workers is the per-pipeline trial executor width (core.Options.Workers).
	Workers int
	// Corpus receives every confirmed finding and coverage cell and drives
	// the reallocation; nil runs with a fresh in-memory store (adaptive
	// within this campaign, nothing persisted).
	Corpus *corpus.Store
	// TraceDir enables witness auto-capture for new signatures.
	TraceDir string
	// Metrics and Sink observe every pipeline execution, as in Options.
	Metrics *obs.CampaignMetrics
	Sink    obs.Sink
	// Gauges, when non-nil, receives live campaign-progress gauges
	// (campaign.round, campaign.round_budget, campaign.targets) for the
	// observatory's /metrics endpoint.
	Gauges *obs.Registry
	// Introspect, when non-nil, exposes live scheduler state to the
	// observatory's /debug/sched (see core.Options.Introspect).
	Introspect *sched.Introspector
	// Prof, when non-nil, profiles every pipeline execution into the
	// observatory's /debug/perf collector (see core.Options.Prof).
	Prof *schedprof.Collector
	// PerfDir, when non-empty, exports a Perfetto timeline of each target's
	// first confirming trial there (see core.Options.PerfDir).
	PerfDir string
	// Timing stamps per-run wall clock onto emitted records (see
	// core.Options.Timing). Off by default so run logs stay byte-identical
	// across repeat campaigns.
	Timing bool
}

func (o CampaignOptions) withDefaults() CampaignOptions {
	if o.Budget <= 0 {
		o.Budget = 1000
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	return o
}

// roundSeed derives the base seed of one allocation round.
func roundSeed(master int64, round int) int64 {
	return master + int64(round)*1_000_000_007
}

// CampaignRow is the adaptive campaign's outcome for one target.
type CampaignRow struct {
	Name string
	// AllocByRound is the trial budget granted in each round.
	AllocByRound []int
	// Trials is the total phase-2 trials actually run (== sum of rounds,
	// except when a round's phase 1 found no targets to spend on).
	Trials int
	// Potential is the number of phase-1 warnings in the final round run.
	Potential int
	// NewSignatures and NewCells are the distinct corpus signatures and
	// coverage cells this campaign added for the target.
	NewSignatures int
	NewCells      int
	// KnownSightings counts confirmations deduplicated against pre-existing
	// corpus entries.
	KnownSightings int
	// Plateaued reports the allocator's final verdict: the target went
	// PlateauRounds consecutive rounds without a new signature or cell.
	Plateaued bool
}

// RunAdaptiveCampaign runs the race pipeline over the named registry
// benchmarks ("" or empty = all) under a global trial budget.
func RunAdaptiveCampaign(names []string, o CampaignOptions) []CampaignRow {
	o = o.withDefaults()
	if len(names) == 0 {
		names = bench.Names()
	}
	store := o.Corpus
	if store == nil {
		store = corpus.NewStore()
	}
	rows := make([]CampaignRow, len(names))
	states := make([]corpus.TargetState, len(names))
	benches := make([]bench.Benchmark, len(names))
	for i, n := range names {
		benches[i] = bench.MustByName(n)
		states[i] = corpus.TargetState{Name: n}
		rows[i] = CampaignRow{Name: n}
	}
	// Split the global budget over rounds as evenly as possible (earlier
	// rounds absorb the remainder), then across targets by discovery weight.
	o.Gauges.Gauge("campaign.targets").Set(float64(len(names)))
	for r := 0; r < o.Rounds; r++ {
		roundBudget := o.Budget / o.Rounds
		if r < o.Budget%o.Rounds {
			roundBudget++
		}
		o.Gauges.Gauge("campaign.round").Set(float64(r + 1))
		o.Gauges.Gauge("campaign.round_budget").Set(float64(roundBudget))
		alloc := corpus.Allocate(roundBudget, states)
		for i := range names {
			rows[i].AllocByRound = append(rows[i].AllocByRound, alloc[i])
			if alloc[i] == 0 {
				states[i] = states[i].Advance(0, 0)
				continue
			}
			sigsBefore := store.BenchSignatures(names[i])
			cellsBefore := store.CoverageLen()
			_, knownBefore := store.Counts()
			row := runBudgetedTarget(benches[i], alloc[i], roundSeed(o.Seed, r), r+1, store, o)
			rows[i].Trials += row.trials
			rows[i].Potential = row.potential
			dSigs := store.BenchSignatures(names[i]) - sigsBefore
			dCells := store.CoverageLen() - cellsBefore
			_, knownAfter := store.Counts()
			rows[i].NewSignatures += dSigs
			rows[i].NewCells += dCells
			rows[i].KnownSightings += int(knownAfter - knownBefore)
			states[i] = states[i].Advance(dSigs, dCells)
		}
	}
	for i := range rows {
		rows[i].Plateaued = states[i].Plateaued()
	}
	return rows
}

// targetRound is one target's spend inside one allocation round.
type targetRound struct {
	trials    int
	potential int
}

// runBudgetedTarget runs phase 1 and then spreads `trials` phase-2 runs
// across the reported pairs (earlier pairs absorb the remainder; pairs past
// the budget are skipped this round — a later round's fresh seed revisits
// them).
func runBudgetedTarget(b bench.Benchmark, trials int, seed int64, round int, store *corpus.Store, o CampaignOptions) targetRound {
	opts := core.Options{
		Seed:         seed,
		Phase1Trials: b.Phase1Trials,
		MaxSteps:     b.MaxSteps,
		Workers:      o.Workers,
		Label:        b.Name,
		TraceDir:     o.TraceDir,
		Metrics:      o.Metrics,
		Sink:         o.Sink,
		Corpus:       store,
		Introspect:   o.Introspect,
		Prof:         o.Prof,
		PerfDir:      o.PerfDir,
		Timing:       o.Timing,
		Round:        round,
	}
	if opts.Phase1Trials <= 0 {
		opts.Phase1Trials = 3
	}
	pairs := core.DetectPotentialRaces(b.New(), opts)
	out := targetRound{potential: len(pairs)}
	if len(pairs) == 0 {
		return out
	}
	per, extra := trials/len(pairs), trials%len(pairs)
	for j, pair := range pairs {
		t := per
		if j < extra {
			t++
		}
		if t == 0 {
			continue
		}
		po := opts
		po.Phase2Trials = t
		core.FuzzPair(b.New(), pair, j, po)
		out.trials += t
	}
	return out
}

// RenderCampaign renders the adaptive campaign outcome: the budget each
// target earned round by round and what the corpus got back for it.
func RenderCampaign(rows []CampaignRow) string {
	t := report.NewTable(
		"Adaptive budget campaign: trials earned vs new signatures discovered",
		"Program", "Alloc/round", "Trials", "Potential", "NewSigs", "NewCells", "Known", "Plateaued",
	)
	for _, r := range rows {
		alloc := ""
		for i, a := range r.AllocByRound {
			if i > 0 {
				alloc += "/"
			}
			alloc += fmt.Sprintf("%d", a)
		}
		plateau := "no"
		if r.Plateaued {
			plateau = "yes"
		}
		t.AddRow(r.Name, alloc, r.Trials, r.Potential, r.NewSignatures, r.NewCells, r.KnownSightings, plateau)
	}
	return t.Render()
}
