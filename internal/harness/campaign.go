package harness

import (
	"fmt"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/corpus"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/report"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/schedprof"
)

// The adaptive budget campaign: instead of giving every registry target the
// same Phase2Trials, split one global trial budget across targets over
// several allocation rounds, reweighting between rounds toward targets that
// are still producing new corpus signatures and new interleaving-coverage
// cells ("Fuzzing at Scale"-style). The allocator (corpus.Allocate) is a
// deterministic bandit — weights are a pure function of per-target
// discovery state, rounds use seeds derived from the master seed, and every
// per-target pipeline is the standard deterministic one — so the whole
// campaign is bit-identical at any Workers width.

// CampaignOptions parameterizes RunAdaptiveCampaign.
type CampaignOptions struct {
	// Seed is the master seed; round r of a target uses a derived stream,
	// so successive rounds explore fresh schedules yet stay reproducible.
	Seed int64
	// Budget is the global phase-2 trial budget spread across all targets
	// and rounds (phase-1 observations ride on top, they are not charged).
	// Default 1000.
	Budget int
	// Rounds is the number of allocation rounds. Default 3.
	Rounds int
	// Workers is the per-pipeline trial executor width (core.Options.Workers).
	Workers int
	// Corpus receives every confirmed finding and coverage cell and drives
	// the reallocation; nil runs with a fresh in-memory store (adaptive
	// within this campaign, nothing persisted).
	Corpus *corpus.Store
	// TraceDir enables witness auto-capture for new signatures.
	TraceDir string
	// Metrics and Sink observe every pipeline execution, as in Options.
	Metrics *obs.CampaignMetrics
	Sink    obs.Sink
	// Gauges, when non-nil, receives live campaign-progress gauges
	// (campaign.round, campaign.round_budget, campaign.targets) for the
	// observatory's /metrics endpoint.
	Gauges *obs.Registry
	// Introspect, when non-nil, exposes live scheduler state to the
	// observatory's /debug/sched (see core.Options.Introspect).
	Introspect *sched.Introspector
	// Prof, when non-nil, profiles every pipeline execution into the
	// observatory's /debug/perf collector (see core.Options.Prof).
	Prof *schedprof.Collector
	// PerfDir, when non-empty, exports a Perfetto timeline of each target's
	// first confirming trial there (see core.Options.PerfDir).
	PerfDir string
	// Timing stamps per-run wall clock onto emitted records (see
	// core.Options.Timing). Off by default so run logs stay byte-identical
	// across repeat campaigns.
	Timing bool
	// Executor, when non-nil, runs each allocation round's units somewhere
	// other than this process — the fleet coordinator implements it by
	// leasing units to a worker pool and merging their result batches back
	// in unit order. Nil runs every unit in-process (the classic adaptive
	// campaign). Whatever the executor, the driver's accounting is the
	// same, so a fleet campaign's corpus and rows match the single-process
	// campaign at the same budget.
	Executor RoundExecutor
}

// RoundUnit is one allocation round's work for one target: the
// deterministic, distributable (target, seed, trial-budget) tuple. Any
// process holding the same binary re-executes it bit-identically.
type RoundUnit struct {
	// Round is the 1-based allocation round.
	Round int `json:"round"`
	// TargetIndex is the target's index in the campaign's name list.
	TargetIndex int `json:"targetIndex"`
	// Target is the registry benchmark name.
	Target string `json:"target"`
	// Trials is the phase-2 trial budget this unit spends.
	Trials int `json:"trials"`
	// Seed is the round's base seed (roundSeed of the campaign master).
	Seed int64 `json:"seed"`
}

// UnitOutcome is what executing one RoundUnit reports back to the driver.
type UnitOutcome struct {
	// Trials is the phase-2 trials actually run (< Trials requested when a
	// round's phase 1 found fewer targets than the budget could cover).
	Trials int `json:"trials"`
	// Potential is the number of phase-1 warnings the unit's run reported.
	Potential int `json:"potential"`
}

// RoundExecutor runs one allocation round's units and folds each unit's
// discoveries into the campaign corpus. The contract the driver's
// accounting depends on: for every unit i, in increasing i, the executor
// calls begin(i), then performs (or completes) all of unit i's corpus
// writes, then calls done(i, outcome) — so the driver can measure per-unit
// discovery deltas around each fold exactly as the sequential loop does.
// Units may execute concurrently (the fleet leases them all at once); only
// the fold-and-callback sequence must be ordered.
type RoundExecutor interface {
	ExecuteRound(units []RoundUnit, begin func(i int), done func(i int, out UnitOutcome)) error
}

// localExecutor is the in-process RoundExecutor: units run sequentially on
// the caller's goroutine, writing straight through to the campaign store.
type localExecutor struct {
	store *corpus.Store
	o     CampaignOptions
}

func (e localExecutor) ExecuteRound(units []RoundUnit, begin func(i int), done func(i int, out UnitOutcome)) error {
	for i, u := range units {
		begin(i)
		done(i, RunUnit(u, e.store, e.o))
	}
	return nil
}

func (o CampaignOptions) withDefaults() CampaignOptions {
	if o.Budget <= 0 {
		o.Budget = 1000
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	return o
}

// roundSeed derives the base seed of one allocation round.
func roundSeed(master int64, round int) int64 {
	return master + int64(round)*1_000_000_007
}

// CampaignRow is the adaptive campaign's outcome for one target.
type CampaignRow struct {
	Name string
	// AllocByRound is the trial budget granted in each round.
	AllocByRound []int
	// Trials is the total phase-2 trials actually run (== sum of rounds,
	// except when a round's phase 1 found no targets to spend on).
	Trials int
	// Potential is the number of phase-1 warnings in the final round run.
	Potential int
	// NewSignatures and NewCells are the distinct corpus signatures and
	// coverage cells this campaign added for the target.
	NewSignatures int
	NewCells      int
	// KnownSightings counts confirmations deduplicated against pre-existing
	// corpus entries.
	KnownSightings int
	// Plateaued reports the allocator's final verdict: the target went
	// PlateauRounds consecutive rounds without a new signature or cell.
	Plateaued bool
}

// RunAdaptiveCampaign runs the race pipeline over the named registry
// benchmarks ("" or empty = all) under a global trial budget, in-process.
func RunAdaptiveCampaign(names []string, o CampaignOptions) []CampaignRow {
	o.Executor = nil
	rows, _ := RunCampaign(names, o) // the in-process executor cannot fail
	return rows
}

// RunCampaign is RunAdaptiveCampaign with a pluggable round executor
// (CampaignOptions.Executor): the driver allocates budget, measures per-unit
// discovery deltas and advances the bandit exactly as the in-process
// campaign does, while the executor decides where units actually run. An
// executor error (e.g. the fleet coordinator shutting down mid-round)
// aborts the campaign and returns the rows accumulated so far.
func RunCampaign(names []string, o CampaignOptions) ([]CampaignRow, error) {
	o = o.withDefaults()
	if len(names) == 0 {
		names = bench.Names()
	}
	store := o.Corpus
	if store == nil {
		store = corpus.NewStore()
	}
	exec := o.Executor
	if exec == nil {
		exec = localExecutor{store: store, o: o}
	}
	rows := make([]CampaignRow, len(names))
	states := make([]corpus.TargetState, len(names))
	for i, n := range names {
		bench.MustByName(n) // fail fast on unknown targets
		states[i] = corpus.TargetState{Name: n}
		rows[i] = CampaignRow{Name: n}
	}
	// Split the global budget over rounds as evenly as possible (earlier
	// rounds absorb the remainder), then across targets by discovery weight.
	o.Gauges.Gauge("campaign.targets").Set(float64(len(names)))
	for r := 0; r < o.Rounds; r++ {
		roundBudget := o.Budget / o.Rounds
		if r < o.Budget%o.Rounds {
			roundBudget++
		}
		o.Gauges.Gauge("campaign.round").Set(float64(r + 1))
		o.Gauges.Gauge("campaign.round_budget").Set(float64(roundBudget))
		alloc := corpus.Allocate(roundBudget, states)
		var units []RoundUnit
		for i := range names {
			rows[i].AllocByRound = append(rows[i].AllocByRound, alloc[i])
			if alloc[i] == 0 {
				states[i] = states[i].Advance(0, 0)
				continue
			}
			units = append(units, RoundUnit{
				Round: r + 1, TargetIndex: i, Target: names[i],
				Trials: alloc[i], Seed: roundSeed(o.Seed, r),
			})
		}
		// Per-unit accounting happens in the executor's ordered
		// begin/fold/done window, so deltas attribute to the right target
		// whether the unit ran here or on a worker three machines away.
		var sigsBefore, cellsBefore int
		var knownBefore int64
		err := exec.ExecuteRound(units,
			func(j int) {
				i := units[j].TargetIndex
				sigsBefore = store.BenchSignatures(names[i])
				cellsBefore = store.CoverageLen()
				_, knownBefore = store.Counts()
			},
			func(j int, out UnitOutcome) {
				i := units[j].TargetIndex
				rows[i].Trials += out.Trials
				rows[i].Potential = out.Potential
				dSigs := store.BenchSignatures(names[i]) - sigsBefore
				dCells := store.CoverageLen() - cellsBefore
				_, knownAfter := store.Counts()
				rows[i].NewSignatures += dSigs
				rows[i].NewCells += dCells
				rows[i].KnownSightings += int(knownAfter - knownBefore)
				states[i] = states[i].Advance(dSigs, dCells)
			})
		if err != nil {
			return rows, fmt.Errorf("harness: campaign round %d: %w", r+1, err)
		}
	}
	for i := range rows {
		rows[i].Plateaued = states[i].Plateaued()
	}
	return rows, nil
}

// RunUnit executes one round unit against store: phase 1, then the unit's
// trial budget spread across the reported pairs (earlier pairs absorb the
// remainder; pairs past the budget are skipped this round — a later round's
// fresh seed revisits them). It is the in-process campaign's inner loop and
// the fleet worker's batch body: the unit tuple plus the store fully
// determine the execution.
func RunUnit(u RoundUnit, store *corpus.Store, o CampaignOptions) UnitOutcome {
	b := bench.MustByName(u.Target)
	opts := core.Options{
		Seed:         u.Seed,
		Phase1Trials: b.Phase1Trials,
		MaxSteps:     b.MaxSteps,
		Workers:      o.Workers,
		Label:        b.Name,
		TraceDir:     o.TraceDir,
		Metrics:      o.Metrics,
		Sink:         o.Sink,
		Corpus:       store,
		Introspect:   o.Introspect,
		Prof:         o.Prof,
		PerfDir:      o.PerfDir,
		Timing:       o.Timing,
		Round:        u.Round,
	}
	if opts.Phase1Trials <= 0 {
		opts.Phase1Trials = 3
	}
	pairs := core.DetectPotentialRaces(b.New(), opts)
	out := UnitOutcome{Potential: len(pairs)}
	if len(pairs) == 0 {
		return out
	}
	per, extra := u.Trials/len(pairs), u.Trials%len(pairs)
	for j, pair := range pairs {
		t := per
		if j < extra {
			t++
		}
		if t == 0 {
			continue
		}
		po := opts
		po.Phase2Trials = t
		core.FuzzPair(b.New(), pair, j, po)
		out.Trials += t
	}
	return out
}

// RenderCampaign renders the adaptive campaign outcome: the budget each
// target earned round by round and what the corpus got back for it.
func RenderCampaign(rows []CampaignRow) string {
	t := report.NewTable(
		"Adaptive budget campaign: trials earned vs new signatures discovered",
		"Program", "Alloc/round", "Trials", "Potential", "NewSigs", "NewCells", "Known", "Plateaued",
	)
	for _, r := range rows {
		alloc := ""
		for i, a := range r.AllocByRound {
			if i > 0 {
				alloc += "/"
			}
			alloc += fmt.Sprintf("%d", a)
		}
		plateau := "no"
		if r.Plateaued {
			plateau = "yes"
		}
		t.AddRow(r.Name, alloc, r.Trials, r.Potential, r.NewSignatures, r.NewCells, r.KnownSightings, plateau)
	}
	return t.Render()
}
