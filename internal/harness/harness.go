// Package harness drives the paper's experiments end to end: for each
// benchmark model it measures the three runtime columns of Table 1 (normal
// execution, hybrid-race-detection execution, RaceFuzzer execution), runs
// the two-phase pipeline to obtain the race counts and probabilities, and
// measures the default-scheduler exception baseline. It also runs the
// Figure-2 sweep demonstrating §3.2's probability claim.
package harness

import (
	"fmt"
	"runtime"
	"time"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/corpus"
	"racefuzzer/internal/hybrid"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/report"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/schedprof"
)

// Options parameterizes a Table-1 regeneration run.
type Options struct {
	// Seed is the base seed for every derived stream.
	Seed int64
	// Phase2Trials is the number of RaceFuzzer runs per potential pair (the
	// paper uses 100). Default 100.
	Phase2Trials int
	// BaselineTrials is the number of default-scheduler runs used for the
	// "exceptions under the default scheduler" column. Default 100.
	BaselineTrials int
	// TimingRuns is the number of runs averaged per runtime column. Default 5.
	TimingRuns int
	// TraceDir, when non-empty, auto-captures a flight recording of each
	// target's first confirming run there (core.Options.TraceDir).
	TraceDir string
	// Workers sets the pipeline's trial executor width (core.Options.Workers):
	// 0 or 1 = sequential, N > 1 = pool of N, negative = GOMAXPROCS. Measured
	// counts and reports are identical at any setting; only the timing columns
	// reflect the parallelism.
	Workers int
	// Metrics, when non-nil, aggregates pipeline telemetry across every
	// benchmark measured by this harness invocation.
	Metrics *obs.CampaignMetrics
	// Sink, when non-nil, receives one structured record per pipeline
	// execution (JSONL run logs, progress reporting).
	Sink obs.Sink
	// Corpus, when non-nil, receives every confirmed finding for dedup
	// against prior campaigns (core.Options.Corpus).
	Corpus *corpus.Store
	// Introspect, when non-nil, exposes live scheduler state to the
	// observatory's /debug/sched (core.Options.Introspect).
	Introspect *sched.Introspector
	// Prof, when non-nil, attaches a scheduler performance trial to every
	// pipeline execution (core.Options.Prof) — the collector behind the
	// observatory's /debug/perf.
	Prof *schedprof.Collector
	// PerfDir, when non-empty, exports a Perfetto timeline of each target's
	// first confirming trial there (core.Options.PerfDir).
	PerfDir string
	// Timing stamps per-run wall clock onto emitted records
	// (core.Options.Timing). Off by default to keep run logs byte-identical
	// across repeat invocations.
	Timing bool
}

func (o Options) withDefaults() Options {
	if o.Phase2Trials <= 0 {
		o.Phase2Trials = 100
	}
	if o.BaselineTrials <= 0 {
		o.BaselineTrials = 100
	}
	if o.TimingRuns <= 0 {
		o.TimingRuns = 5
	}
	return o
}

// Row is one measured Table-1 row, alongside the paper's numbers for
// comparison.
type Row struct {
	Name  string
	Paper bench.PaperRow

	// Measured runtime columns (seconds, averaged over TimingRuns).
	NormalSec float64 // random scheduler, no observers (column 3)
	HybridSec float64 // random scheduler + hybrid detector (column 4)
	RFSec     float64 // RaceFuzzer run targeting one pair (column 5)

	// Measured counts.
	Potential        int     // column 6: pairs reported by hybrid detection
	Real             int     // column 7: pairs confirmed real by RaceFuzzer
	ExceptionPairs   int     // column 9: real pairs that threw
	SimpleExceptions int     // column 10: default-scheduler runs that threw
	Probability      float64 // column 11: mean race-hit probability

	// Tracking-work counters: what each technique must examine per run.
	// This is the machine-independent form of the paper's overhead claim —
	// hybrid tracks every shared access; RaceFuzzer tracks synchronization
	// plus the single racing pair (§4).
	HybridTracked int // MEM events processed by the hybrid detector
	RFTracked     int // target-statement encounters in one RaceFuzzer run

	// Pipeline cost columns: the full two-phase campaign's wall-clock and
	// heap-allocation cost, normalized per executed trial (phase-1
	// observations + every phase-2 run). Wall clock is machine-local;
	// allocs/run is a property of the code and is what CI's perf-smoke gates
	// on (see internal/benchsnap).
	PipelineRuns         int
	PipelineNsPerRun     float64
	PipelineAllocsPerRun float64

	// FirstRaceRun is the index, within this benchmark's pipeline campaign,
	// of the first run that confirmed a race (-1 when none did) — the "how
	// many runs did confirmation cost" column.
	FirstRaceRun int64
	// TraceCaptures counts witness recordings archived for this benchmark
	// (0 unless Options.TraceDir is set).
	TraceCaptures int64

	// Details for per-pair inspection.
	Pairs []core.PairReport
}

// timeRuns averages the wall-clock time of n executions built by mk.
func timeRuns(n int, mk func(i int) func()) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		mk(i)()
	}
	return time.Since(start).Seconds() / float64(n)
}

// RunBenchmark produces one measured row for b.
func RunBenchmark(b bench.Benchmark, o Options) Row {
	o = o.withDefaults()
	row := Row{Name: b.Name, Paper: b.Paper}

	// Column 3: normal execution (random scheduler, no instrumentation
	// consumers attached).
	row.NormalSec = timeRuns(o.TimingRuns, func(i int) func() {
		return func() {
			sched.Run(b.New(), sched.Config{
				Seed: o.Seed + int64(i), Policy: sched.NewRandomPolicy(), MaxSteps: b.MaxSteps,
			})
		}
	})
	// Column 4: hybrid race detection attached (tracks every shared access).
	row.HybridSec = timeRuns(o.TimingRuns, func(i int) func() {
		return func() {
			det := hybrid.New()
			sched.Run(b.New(), sched.Config{
				Seed: o.Seed + int64(i), Policy: sched.NewRandomPolicy(), MaxSteps: b.MaxSteps,
				Observers: []sched.Observer{det},
			})
			row.HybridTracked = det.MemEvents()
		}
	})

	// Phase 1 + phase 2. A per-benchmark aggregator always rides along so the
	// row can report campaign-level counters (first confirming run, archived
	// traces); the caller's cross-benchmark metrics and sink are fanned in
	// behind it.
	perBench := obs.NewCampaignMetrics()
	opts := core.Options{
		Seed:         o.Seed,
		Phase1Trials: b.Phase1Trials,
		Phase2Trials: o.Phase2Trials,
		MaxSteps:     b.MaxSteps,
		Label:        b.Name,
		TraceDir:     o.TraceDir,
		Metrics:      perBench,
		Workers:      o.Workers,
		Corpus:       o.Corpus,
		Introspect:   o.Introspect,
		Prof:         o.Prof,
		PerfDir:      o.PerfDir,
		Timing:       o.Timing,
	}
	var sinks obs.MultiSink
	if o.Metrics != nil {
		sinks = append(sinks, o.Metrics)
	}
	if o.Sink != nil {
		sinks = append(sinks, o.Sink)
	}
	if len(sinks) > 0 {
		opts.Sink = sinks
	}
	// The pipeline's cost columns: wall clock and heap allocations across the
	// whole campaign, divided by executed trials. Mallocs is read
	// process-wide because the campaign executor's workers allocate on the
	// pipeline's behalf.
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	pipeStart := time.Now()
	rep := core.Analyze(b.New(), opts)
	pipeNs := time.Since(pipeStart).Nanoseconds()
	runtime.ReadMemStats(&m1)
	p1 := opts.Phase1Trials
	if p1 <= 0 {
		p1 = 3 // the pipeline default (core.Options.withDefaults)
	}
	row.PipelineRuns = p1 + len(rep.Potential)*o.Phase2Trials
	if row.PipelineRuns > 0 {
		row.PipelineNsPerRun = float64(pipeNs) / float64(row.PipelineRuns)
		row.PipelineAllocsPerRun = float64(m1.Mallocs-m0.Mallocs) / float64(row.PipelineRuns)
	}
	row.Potential = len(rep.Potential)
	row.Real = rep.RealCount()
	row.ExceptionPairs = rep.ExceptionPairCount()
	row.Probability = rep.MeanProbability()
	row.Pairs = rep.Pairs
	row.FirstRaceRun = perBench.FirstRaceRun()
	row.TraceCaptures = perBench.TraceCaptures()

	// Column 5: RaceFuzzer runtime, averaged over runs targeting the first
	// pair (matching the paper: RaceFuzzer instruments only the racing pair
	// and synchronization, so this is cheaper than hybrid).
	if len(rep.Potential) > 0 {
		pair := rep.Potential[0]
		row.RFSec = timeRuns(o.TimingRuns, func(i int) func() {
			return func() {
				pol := core.NewRaceFuzzerPolicy(pair)
				sched.Run(b.New(), sched.Config{
					Seed: o.Seed + int64(i)*13 + 5, Policy: pol, MaxSteps: b.MaxSteps,
				})
				row.RFTracked = pol.Tracked()
			}
		})
	}

	// Column 10: exceptions under the default scheduler — modeled as
	// time-sliced round-robin (QuantumPolicy): every thread makes steady
	// progress, interleaving only at quantum boundaries, the way a JVM/OS
	// scheduler runs a short test. Races whose windows are narrower than a
	// quantum essentially never fire here, which is the paper's point.
	row.SimpleExceptions = core.BaselineExceptions(b.New(), func() sched.Policy {
		return sched.NewQuantumPolicy(4)
	}, o.BaselineTrials, o.Seed+99, b.MaxSteps)

	return row
}

// RunTable1 measures every named benchmark ("" selects all registered).
func RunTable1(names []string, o Options) []Row {
	if len(names) == 0 {
		names = bench.Names()
	}
	rows := make([]Row, 0, len(names))
	for _, n := range names {
		rows = append(rows, RunBenchmark(bench.MustByName(n), o))
	}
	return rows
}

// RenderTable1 renders measured rows in the paper's column layout.
func RenderTable1(rows []Row) string {
	t := report.NewTable(
		"Table 1 (reproduced): measured on this machine's models",
		"Program", "Normal(s)", "Hybrid(s)", "RF(s)", "Tracked(H)", "Tracked(RF)",
		"Hybrid#", "RF(real)", "Exceptions", "Simple", "Prob", "FirstRace", "Traces",
		"ns/run", "allocs/run",
	)
	for _, r := range rows {
		prob := report.Num(r.Probability)
		if r.Real == 0 {
			prob = "-"
		}
		first := "-"
		if r.FirstRaceRun >= 0 {
			first = fmt.Sprintf("%d", r.FirstRaceRun)
		}
		t.AddRow(r.Name,
			report.Secs(r.NormalSec), report.Secs(r.HybridSec), report.Secs(r.RFSec),
			r.HybridTracked, r.RFTracked,
			r.Potential, r.Real, r.ExceptionPairs, r.SimpleExceptions, prob,
			first, r.TraceCaptures,
			int64(r.PipelineNsPerRun), int64(r.PipelineAllocsPerRun))
	}
	return t.Render()
}

// RenderPaperTable renders the paper's original Table 1 numbers for the same
// rows, so EXPERIMENTS.md can show paper-vs-measured side by side.
func RenderPaperTable(rows []Row) string {
	t := report.NewTable(
		"Table 1 (paper's original numbers)",
		"Program", "SLOC", "Normal(s)", "Hybrid(s)", "RF(s)",
		"Hybrid#", "RF(real)", "Known", "Exceptions", "Simple", "Prob",
	)
	for _, r := range rows {
		p := r.Paper
		t.AddRow(r.Name, report.IntOrDash(p.SLOC),
			report.Num(p.NormalSec), report.Num(p.HybridSec), report.Num(p.RaceFuzzerSec),
			report.IntOrDash(p.HybridRaces), report.IntOrDash(p.RealRaces), report.IntOrDash(p.KnownRaces),
			report.IntOrDash(p.ExceptionPairs), report.IntOrDash(p.SimpleExceptions), report.Num(p.Probability))
	}
	return t.Render()
}

// SweepPoint is one prefix-length sample of the Figure-2 experiment.
type SweepPoint struct {
	PrefixLen int
	// RFProb is RaceFuzzer's race-creation probability (§3.2 claims 1.0,
	// independent of PrefixLen).
	RFProb float64
	// RFErrorFrac is the fraction of RaceFuzzer runs reaching ERROR (§3.2
	// claims 0.5).
	RFErrorFrac float64
	// SimpleProb is the simple random scheduler's race-creation probability
	// (§3.2 claims it decays with PrefixLen).
	SimpleProb float64
	// DefaultProb is the time-sliced (default-scheduler-like) policy's
	// race-creation probability.
	DefaultProb float64
}

// Figure2Sweep measures the §3.2 probability claim across prefix lengths.
func Figure2Sweep(prefixes []int, trials int, seed int64) []SweepPoint {
	if trials <= 0 {
		trials = 100
	}
	var out []SweepPoint
	for _, n := range prefixes {
		prog := bench.Figure2(n)
		opts := core.Options{Seed: seed, Phase2Trials: trials}
		pr := core.FuzzPair(prog, bench.Fig2Pair, n, opts)
		pt := SweepPoint{
			PrefixLen:   n,
			RFProb:      pr.Probability,
			RFErrorFrac: float64(pr.ExceptionRuns) / float64(pr.Trials),
		}
		pt.SimpleProb = core.BaselineProbability(prog, bench.Fig2Pair,
			func() sched.Policy { return sched.NewRandomPolicy() }, trials, seed+1, 0)
		pt.DefaultProb = core.BaselineProbability(prog, bench.Fig2Pair,
			func() sched.Policy { return sched.NewQuantumPolicy(4) }, trials, seed+2, 0)
		out = append(out, pt)
	}
	return out
}

// RenderFigure2 renders the sweep.
func RenderFigure2(points []SweepPoint) string {
	t := report.NewTable(
		"Figure 2 experiment: race-hit probability vs untracked prefix length (§3.2)",
		"PrefixLen", "RaceFuzzer", "RF ERROR frac", "SimpleRandom", "Default",
	)
	for _, p := range points {
		t.AddRow(p.PrefixLen, report.Num(p.RFProb), report.Num(p.RFErrorFrac),
			report.Num(p.SimpleProb), report.Num(p.DefaultProb))
	}
	return t.Render()
}

// NoisePoint is one sample of the robustness extension: the Figure-2 race
// with extra bystander threads.
type NoisePoint struct {
	Bystanders  int
	RFProb      float64
	RFErrorFrac float64
	SimpleProb  float64
}

// NoiseSweep measures how scheduling noise affects race-directed vs
// undirected testing: RaceFuzzer's postponement simply waits through
// bystander activity, while the random baseline's alignment chance shrinks
// with every additional runnable thread.
func NoiseSweep(bystanders []int, trials int, seed int64) []NoisePoint {
	if trials <= 0 {
		trials = 100
	}
	var out []NoisePoint
	for _, n := range bystanders {
		prog := func() core.Program { return bench.Figure2Noisy(30, n) }
		pr := core.FuzzPair(prog(), bench.Fig2Pair, n+100, core.Options{Seed: seed, Phase2Trials: trials})
		pt := NoisePoint{
			Bystanders:  n,
			RFProb:      pr.Probability,
			RFErrorFrac: float64(pr.ExceptionRuns) / float64(pr.Trials),
		}
		pt.SimpleProb = core.BaselineProbability(prog(), bench.Fig2Pair,
			func() sched.Policy { return sched.NewRandomPolicy() }, trials, seed+1, 0)
		out = append(out, pt)
	}
	return out
}

// RenderNoise renders the sweep.
func RenderNoise(points []NoisePoint) string {
	t := report.NewTable(
		"Robustness extension: Figure-2 race-hit probability vs bystander threads",
		"Bystanders", "RaceFuzzer", "RF ERROR frac", "SimpleRandom",
	)
	for _, p := range points {
		t.AddRow(p.Bystanders, report.Num(p.RFProb), report.Num(p.RFErrorFrac), report.Num(p.SimpleProb))
	}
	return t.Render()
}
