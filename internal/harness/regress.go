package harness

import (
	"fmt"
	"os"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/corpus"
	"racefuzzer/internal/event"
	"racefuzzer/internal/flightrec"
)

// Regression from the corpus: every stored finding carries the campaign
// configuration that discovered it (bench, phase-1 seed and trial count,
// step bound) and the witness seed of its first confirming run, so a later
// build can re-derive the same phase-1 target list, re-run the confirming
// execution, and check three things:
//
//  1. the target is still reported by phase 1 (no silent signature churn);
//  2. the witness seed still confirms the finding, and replaying it twice
//     produces identical recordings (the Verify*Replay determinism check);
//  3. when a witness trace was archived, the fresh recording is record-for-
//     record identical to the stored one — any change to seed derivation,
//     policy decisions or the event stream fails loudly with the first
//     divergent record.

// Regress statuses.
const (
	RegressOK            = "ok"
	RegressDiverged      = "diverged"       // replay or stored-witness divergence
	RegressNotReproduced = "not-reproduced" // witness seed no longer confirms
	RegressTargetMissing = "target-missing" // phase 1 no longer reports the target
	RegressBenchMissing  = "bench-missing"  // benchmark no longer registered
	RegressWitnessError  = "witness-error"  // stored trace unreadable
)

// RegressResult is the verdict for one stored finding.
type RegressResult struct {
	Finding corpus.Finding
	Status  string
	// Detail elaborates failures (first divergent record, missing pair...).
	Detail string
}

// OK reports a passing verdict.
func (r RegressResult) OK() bool { return r.Status == RegressOK }

func (r RegressResult) String() string {
	s := fmt.Sprintf("%-14s %s %s", r.Status, r.Finding.Bench, r.Finding.Sig.Canon())
	if r.Detail != "" {
		s += ": " + r.Detail
	}
	return s
}

// regressKey identifies one phase-1 configuration; target lists are
// re-derived once per distinct key, not once per finding.
type regressKey struct {
	bench    string
	kind     string
	seed     int64
	p1, maxS int
}

// regressCtx caches re-derived phase-1 target lists across findings.
type regressCtx struct {
	store *corpus.Store
	races map[regressKey][]event.StmtPair
	dls   map[regressKey][]dlTarget
	ats   map[regressKey][]core.AtomicityTarget
}

// dlTarget pairs a re-derived cycle's lock pair with its rendered form (the
// form findings store in Finding.Pair).
type dlTarget struct {
	locks [2]event.LockID
	str   string
}

// Regress replays every stored finding and returns the per-finding verdicts
// plus an overall pass flag.
func Regress(store *corpus.Store) ([]RegressResult, bool) {
	ctx := &regressCtx{
		store: store,
		races: make(map[regressKey][]event.StmtPair),
		dls:   make(map[regressKey][]dlTarget),
		ats:   make(map[regressKey][]core.AtomicityTarget),
	}
	findings := store.Findings()
	results := make([]RegressResult, 0, len(findings))
	ok := true
	for _, f := range findings {
		res := ctx.one(f)
		if !res.OK() {
			ok = false
		}
		results = append(results, res)
	}
	return results, ok
}

func (ctx *regressCtx) one(f corpus.Finding) RegressResult {
	out := RegressResult{Finding: f, Status: RegressOK}
	b, found := bench.ByName(f.Bench)
	if !found {
		out.Status = RegressBenchMissing
		out.Detail = fmt.Sprintf("benchmark %q not registered", f.Bench)
		return out
	}
	opts := core.Options{
		Seed:         f.FirstSeenSeed,
		Phase1Trials: f.Phase1Trials,
		MaxSteps:     f.MaxSteps,
		Label:        f.Bench,
	}
	key := regressKey{f.Bench, f.Sig.Kind, f.FirstSeenSeed, f.Phase1Trials, f.MaxSteps}

	var fresh *flightrec.Recording
	switch f.Sig.Kind {
	case "race":
		pairs, cached := ctx.races[key]
		if !cached {
			pairs = core.DetectPotentialRaces(b.New(), opts)
			ctx.races[key] = pairs
		}
		idx := -1
		for i, p := range pairs {
			if p.String() == f.Pair {
				idx = i
				break
			}
		}
		if idx < 0 {
			out.Status = RegressTargetMissing
			out.Detail = fmt.Sprintf("phase 1 no longer reports %s", f.Pair)
			return out
		}
		run, rec := core.RecordRace(b.New(), pairs[idx], f.WitnessSeed, opts)
		_, rec2 := core.RecordRace(b.New(), pairs[idx], f.WitnessSeed, opts)
		if div := flightrec.Diverge(rec2, rec); div != nil {
			out.Status = RegressDiverged
			out.Detail = "replay nondeterministic: " + div.String()
			return out
		}
		if !run.RaceCreated {
			out.Status = RegressNotReproduced
			out.Detail = fmt.Sprintf("seed %d no longer creates the race", f.WitnessSeed)
			return out
		}
		fresh = rec
	case "deadlock":
		targets, cached := ctx.dls[key]
		if !cached {
			cycles := core.DetectPotentialDeadlocks(b.New(), opts)
			targets = make([]dlTarget, len(cycles))
			for i, c := range cycles {
				targets[i] = dlTarget{
					locks: [2]event.LockID{c.Locks[0], c.Locks[1]},
					str:   fmt.Sprintf("(%s, %s)", c.Locks[0], c.Locks[1]),
				}
			}
			ctx.dls[key] = targets
		}
		idx := -1
		for i, t := range targets {
			if t.str == f.Pair {
				idx = i
				break
			}
		}
		if idx < 0 {
			out.Status = RegressTargetMissing
			out.Detail = fmt.Sprintf("phase 1 no longer reports cycle %s", f.Pair)
			return out
		}
		res, rec := core.RecordDeadlockRun(b.New(), targets[idx].locks, f.WitnessSeed, opts)
		_, rec2 := core.RecordDeadlockRun(b.New(), targets[idx].locks, f.WitnessSeed, opts)
		if div := flightrec.Diverge(rec2, rec); div != nil {
			out.Status = RegressDiverged
			out.Detail = "replay nondeterministic: " + div.String()
			return out
		}
		if res.Deadlock == nil {
			out.Status = RegressNotReproduced
			out.Detail = fmt.Sprintf("seed %d no longer deadlocks", f.WitnessSeed)
			return out
		}
		fresh = rec
	case "atomicity":
		targets, cached := ctx.ats[key]
		if !cached {
			targets = core.DetectAtomicityTargets(b.New(), opts)
			ctx.ats[key] = targets
		}
		idx := -1
		for i, tg := range targets {
			if fmt.Sprintf("(%s, %s)", tg.First, tg.Second) == f.Pair {
				idx = i
				break
			}
		}
		if idx < 0 {
			out.Status = RegressTargetMissing
			out.Detail = fmt.Sprintf("phase 1 no longer infers block %s", f.Pair)
			return out
		}
		_, violations, rec := core.RecordAtomicityRun(b.New(), targets[idx], f.WitnessSeed, opts)
		_, _, rec2 := core.RecordAtomicityRun(b.New(), targets[idx], f.WitnessSeed, opts)
		if div := flightrec.Diverge(rec2, rec); div != nil {
			out.Status = RegressDiverged
			out.Detail = "replay nondeterministic: " + div.String()
			return out
		}
		if len(violations) == 0 {
			out.Status = RegressNotReproduced
			out.Detail = fmt.Sprintf("seed %d no longer violates the block", f.WitnessSeed)
			return out
		}
		fresh = rec
	default:
		out.Status = RegressTargetMissing
		out.Detail = fmt.Sprintf("unknown finding kind %q", f.Sig.Kind)
		return out
	}

	// Strongest check: the fresh recording must match the archived witness
	// record for record. A finding without a witness passes on the replay
	// checks alone.
	if wp := ctx.store.WitnessPath(f); wp != "" {
		if _, err := os.Stat(wp); err != nil {
			out.Status = RegressWitnessError
			out.Detail = fmt.Sprintf("stored witness unreadable: %v", err)
			return out
		}
		stored, err := flightrec.LoadFile(wp)
		if err != nil {
			out.Status = RegressWitnessError
			out.Detail = fmt.Sprintf("stored witness unreadable: %v", err)
			return out
		}
		if stored.Truncated {
			// A torn final line lost the tail of the witness; verify the
			// fresh recording against the intact prefix only.
			out.Detail = "stored witness truncated (partial final record skipped)"
			if len(fresh.Records) > len(stored.Records) {
				trimmed := *fresh
				trimmed.Records = fresh.Records[:len(stored.Records)]
				fresh = &trimmed
			}
		}
		if div := flightrec.Diverge(fresh, stored); div != nil {
			out.Status = RegressDiverged
			out.Detail = div.String()
			return out
		}
	}
	return out
}
