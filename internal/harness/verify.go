package harness

import (
	"fmt"
	"strings"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/report"
)

// Verify checks a measured row against its model's designed ground truth
// (bench.Expect) and returns human-readable violations (empty = pass). It is
// the CLI-facing twin of the test suite's TestBenchmarkExpectations: the
// reproduction's "column 7 equals column 8" check.
func Verify(b bench.Benchmark, row Row) []string {
	var out []string
	e := b.Expect
	if row.Potential < e.MinPotential {
		out = append(out, fmt.Sprintf("potential %d < min %d", row.Potential, e.MinPotential))
	}
	if row.Real < e.MinReal {
		out = append(out, fmt.Sprintf("real %d < min %d", row.Real, e.MinReal))
	}
	if e.MaxReal >= 0 && row.Real > e.MaxReal {
		out = append(out, fmt.Sprintf("real %d > max %d", row.Real, e.MaxReal))
	}
	if row.Real > row.Potential {
		out = append(out, fmt.Sprintf("real %d exceeds potential %d", row.Real, row.Potential))
	}
	if row.ExceptionPairs < e.MinExceptionPairs {
		out = append(out, fmt.Sprintf("exception pairs %d < min %d", row.ExceptionPairs, e.MinExceptionPairs))
	}
	if e.MaxExceptionPairs >= 0 && row.ExceptionPairs > e.MaxExceptionPairs {
		out = append(out, fmt.Sprintf("exception pairs %d > max %d", row.ExceptionPairs, e.MaxExceptionPairs))
	}
	if row.Real > 0 && row.Probability < e.MinProbability {
		out = append(out, fmt.Sprintf("probability %.2f < min %.2f", row.Probability, e.MinProbability))
	}
	return out
}

// VerifyAll verifies every row, rendering a pass/fail report.
func VerifyAll(rows []Row) (string, bool) {
	var b strings.Builder
	ok := true
	for _, row := range rows {
		bm, found := bench.ByName(row.Name)
		if !found {
			fmt.Fprintf(&b, "%-12s ???  unknown benchmark\n", row.Name)
			ok = false
			continue
		}
		if violations := Verify(bm, row); len(violations) > 0 {
			ok = false
			fmt.Fprintf(&b, "%-12s FAIL %s\n", row.Name, strings.Join(violations, "; "))
		} else {
			fmt.Fprintf(&b, "%-12s PASS\n", row.Name)
		}
	}
	return b.String(), ok
}

// CSVTable1 renders measured rows as CSV (for plotting tools).
func CSVTable1(rows []Row) string {
	var b strings.Builder
	b.WriteString("program,normal_s,hybrid_s,rf_s,tracked_hybrid,tracked_rf,potential,real,exception_pairs,simple_exceptions,probability,first_race_run,trace_captures,ns_per_run,allocs_per_run\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%s,%d,%d,%.0f,%.0f\n",
			r.Name, report.Secs(r.NormalSec), report.Secs(r.HybridSec), report.Secs(r.RFSec),
			r.HybridTracked, r.RFTracked,
			r.Potential, r.Real, r.ExceptionPairs, r.SimpleExceptions, report.Num(r.Probability),
			r.FirstRaceRun, r.TraceCaptures, r.PipelineNsPerRun, r.PipelineAllocsPerRun)
	}
	return b.String()
}

// CSVFigure2 renders the sweep as CSV.
func CSVFigure2(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("prefix_len,racefuzzer_prob,rf_error_frac,simple_random_prob,default_prob\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.3f,%.3f\n",
			p.PrefixLen, p.RFProb, p.RFErrorFrac, p.SimpleProb, p.DefaultProb)
	}
	return b.String()
}
