package harness

import (
	"strings"
	"testing"

	"racefuzzer/internal/bench"
)

func TestRunBenchmarkFigure1Row(t *testing.T) {
	b := bench.MustByName("figure1")
	row := RunBenchmark(b, Options{Seed: 5, Phase2Trials: 40, BaselineTrials: 40, TimingRuns: 2})
	if row.Potential < 2 {
		t.Fatalf("potential = %d", row.Potential)
	}
	if row.Real != 1 {
		t.Fatalf("real = %d, want 1", row.Real)
	}
	if row.ExceptionPairs != 1 {
		t.Fatalf("exception pairs = %d, want 1", row.ExceptionPairs)
	}
	if row.Probability < 0.9 {
		t.Fatalf("probability = %.2f", row.Probability)
	}
	if row.NormalSec <= 0 || row.HybridSec <= 0 || row.RFSec <= 0 {
		t.Fatalf("timings not measured: %+v", row)
	}
	if row.SimpleExceptions < 0 || row.SimpleExceptions > 40 {
		t.Fatalf("baseline exceptions out of range: %d", row.SimpleExceptions)
	}
}

func TestFigure2BaselineAlmostNeverThrows(t *testing.T) {
	// §3.2: with a long untracked prefix, undirected testing essentially
	// never reaches ERROR, while RaceFuzzer reaches it half the time.
	b := bench.MustByName("figure2")
	row := RunBenchmark(b, Options{Seed: 31, Phase2Trials: 40, BaselineTrials: 60, TimingRuns: 1})
	if row.SimpleExceptions > 3 {
		t.Fatalf("undirected scheduler threw in %d/60 runs, want ≈0", row.SimpleExceptions)
	}
	if row.ExceptionPairs != 1 {
		t.Fatalf("RaceFuzzer exception pairs = %d, want 1", row.ExceptionPairs)
	}
}

func TestRenderTables(t *testing.T) {
	rows := RunTable1([]string{"figure1", "figure2"}, Options{
		Seed: 9, Phase2Trials: 20, BaselineTrials: 20, TimingRuns: 1,
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderTable1(rows)
	for _, want := range []string{"figure1", "figure2", "Hybrid#", "RF(real)", "Prob"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	paper := RenderPaperTable(rows)
	if !strings.Contains(paper, "SLOC") || !strings.Contains(paper, "Known") {
		t.Fatalf("paper table missing columns:\n%s", paper)
	}
}

func TestFigure2SweepShape(t *testing.T) {
	points := Figure2Sweep([]int{2, 60}, 60, 21)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.RFProb < 0.99 {
			t.Fatalf("prefix %d: RF probability %.2f, want 1.0", p.PrefixLen, p.RFProb)
		}
		if p.RFErrorFrac < 0.25 || p.RFErrorFrac > 0.75 {
			t.Fatalf("prefix %d: ERROR fraction %.2f, want ≈0.5", p.PrefixLen, p.RFErrorFrac)
		}
	}
	// The baselines must decay with prefix length; at 60 they are near zero.
	if points[1].SimpleProb > 0.15 {
		t.Fatalf("simple random probability %.2f at prefix 60, want ≈0", points[1].SimpleProb)
	}
	if points[0].SimpleProb < points[1].SimpleProb {
		t.Fatalf("simple random probability did not decay: %.2f -> %.2f",
			points[0].SimpleProb, points[1].SimpleProb)
	}
	out := RenderFigure2(points)
	if !strings.Contains(out, "PrefixLen") || !strings.Contains(out, "RaceFuzzer") {
		t.Fatalf("sweep render missing columns:\n%s", out)
	}
}

func TestVerifyPassesOnHealthyRow(t *testing.T) {
	b := bench.MustByName("figure2")
	row := RunBenchmark(b, Options{Seed: 2, Phase2Trials: 30, BaselineTrials: 20, TimingRuns: 1})
	if v := Verify(b, row); len(v) != 0 {
		t.Fatalf("violations on healthy row: %v", v)
	}
	out, ok := VerifyAll([]Row{row})
	if !ok || !strings.Contains(out, "PASS") {
		t.Fatalf("VerifyAll: ok=%v out=%q", ok, out)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	b := bench.MustByName("figure2")
	bad := Row{Name: "figure2", Potential: 0, Real: 5, ExceptionPairs: 0, Probability: 0}
	v := Verify(b, bad)
	if len(v) < 3 {
		t.Fatalf("violations = %v, want several", v)
	}
	out, ok := VerifyAll([]Row{bad})
	if ok || !strings.Contains(out, "FAIL") {
		t.Fatalf("VerifyAll accepted a bad row: %q", out)
	}
	if _, ok := VerifyAll([]Row{{Name: "not-a-benchmark"}}); ok {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestCSVRendering(t *testing.T) {
	rows := RunTable1([]string{"figure1"}, Options{Seed: 4, Phase2Trials: 15, BaselineTrials: 10, TimingRuns: 1})
	csv := CSVTable1(rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "program,") || !strings.HasPrefix(lines[1], "figure1,") {
		t.Fatalf("csv = %q", csv)
	}
	points := Figure2Sweep([]int{5}, 20, 8)
	fcsv := CSVFigure2(points)
	if !strings.HasPrefix(fcsv, "prefix_len,") || !strings.Contains(fcsv, "\n5,") {
		t.Fatalf("figure2 csv = %q", fcsv)
	}
}

func TestNoiseSweepRobustness(t *testing.T) {
	points := NoiseSweep([]int{0, 6}, 60, 33)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.RFProb < 0.99 {
			t.Fatalf("bystanders %d: RF probability %.2f — directed testing must be noise-immune", p.Bystanders, p.RFProb)
		}
		if p.RFErrorFrac < 0.25 || p.RFErrorFrac > 0.75 {
			t.Fatalf("bystanders %d: ERROR fraction %.2f, want ≈0.5", p.Bystanders, p.RFErrorFrac)
		}
	}
	if points[1].SimpleProb > points[0].SimpleProb+0.05 {
		t.Fatalf("baseline improved under noise: %.2f -> %.2f", points[0].SimpleProb, points[1].SimpleProb)
	}
	if !strings.Contains(RenderNoise(points), "Bystanders") {
		t.Fatal("render missing header")
	}
}
