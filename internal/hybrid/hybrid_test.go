package hybrid

import (
	"testing"

	"racefuzzer/internal/event"
)

// feed builds an event stream directly — the detector is a pure function of
// the stream, so these tests pin the hybrid race condition precisely.

func mem(t event.ThreadID, stmt string, loc event.MemLoc, w bool, locks ...event.LockID) event.Event {
	a := event.Read
	if w {
		a = event.Write
	}
	return event.Event{Kind: event.KindMem, Thread: t, Stmt: event.StmtFor(stmt), Loc: loc, Access: a, Locks: locks}
}

func snd(t event.ThreadID, g event.MsgID) event.Event {
	return event.Event{Kind: event.KindSnd, Thread: t, Msg: g}
}

func rcv(t event.ThreadID, g event.MsgID) event.Event {
	return event.Event{Kind: event.KindRcv, Thread: t, Msg: g}
}

func run(events ...event.Event) *Detector {
	d := New()
	for _, e := range events {
		d.OnEvent(e)
	}
	return d
}

func pairOf(a, b string) event.StmtPair {
	return event.MakeStmtPair(event.StmtFor(a), event.StmtFor(b))
}

func TestWriteWriteRaceDetected(t *testing.T) {
	d := run(
		mem(0, "h:w1", 1, true),
		mem(1, "h:w2", 1, true),
	)
	ps := d.Pairs()
	if len(ps) != 1 || ps[0] != pairOf("h:w1", "h:w2") {
		t.Fatalf("pairs = %v", ps)
	}
	if d.MemEvents() != 2 {
		t.Fatalf("mem events = %d", d.MemEvents())
	}
}

func TestReadReadIsNotARace(t *testing.T) {
	d := run(
		mem(0, "h:r1", 1, false),
		mem(1, "h:r2", 1, false),
	)
	if len(d.Pairs()) != 0 {
		t.Fatalf("read-read reported: %v", d.Pairs())
	}
}

func TestSameThreadIsNotARace(t *testing.T) {
	d := run(
		mem(0, "h:a", 1, true),
		mem(0, "h:b", 1, true),
	)
	if len(d.Pairs()) != 0 {
		t.Fatalf("same-thread accesses reported: %v", d.Pairs())
	}
}

func TestDifferentLocationsNoRace(t *testing.T) {
	d := run(
		mem(0, "h:a", 1, true),
		mem(1, "h:b", 2, true),
	)
	if len(d.Pairs()) != 0 {
		t.Fatalf("different locations reported: %v", d.Pairs())
	}
}

func TestCommonLockSuppressesRace(t *testing.T) {
	d := run(
		mem(0, "h:la", 1, true, 5),
		mem(1, "h:lb", 1, true, 5),
	)
	if len(d.Pairs()) != 0 {
		t.Fatalf("lock-protected accesses reported: %v", d.Pairs())
	}
	// Disjoint locksets still race.
	d2 := run(
		mem(0, "h:lc", 1, true, 5),
		mem(1, "h:ld", 1, true, 6),
	)
	if len(d2.Pairs()) != 1 {
		t.Fatalf("disjoint locksets not reported: %v", d2.Pairs())
	}
}

func TestHappensBeforeSuppressesRace(t *testing.T) {
	// T0 writes, then sends g1; T1 receives g1 and writes: ordered.
	d := run(
		mem(0, "h:hb-w0", 1, true),
		snd(0, 1),
		rcv(1, 1),
		mem(1, "h:hb-w1", 1, true),
	)
	if len(d.Pairs()) != 0 {
		t.Fatalf("fork-ordered accesses reported: %v", d.Pairs())
	}
	// Without the message, the same accesses race.
	d2 := run(
		mem(0, "h:hb-w0b", 1, true),
		mem(1, "h:hb-w1b", 1, true),
	)
	if len(d2.Pairs()) != 1 {
		t.Fatal("unordered accesses not reported")
	}
}

func TestTransitiveHappensBefore(t *testing.T) {
	// T0 → T1 → T2 chain: T0's write ordered before T2's write through T1.
	d := run(
		mem(0, "h:t0", 1, true),
		snd(0, 1),
		rcv(1, 1),
		snd(1, 2),
		rcv(2, 2),
		mem(2, "h:t2", 1, true),
	)
	if len(d.Pairs()) != 0 {
		t.Fatalf("transitively ordered accesses reported: %v", d.Pairs())
	}
}

func TestLockEdgesDoNotOrder(t *testing.T) {
	// The hybrid relation deliberately ignores lock edges: a release→acquire
	// chain does NOT order accesses (that's what makes it predictive).
	d := run(
		mem(0, "h:fw", 1, true), // write x with no lock held
		event.Event{Kind: event.KindLock, Thread: 0, Lock: 9},
		event.Event{Kind: event.KindUnlock, Thread: 0, Lock: 9},
		event.Event{Kind: event.KindLock, Thread: 1, Lock: 9},
		event.Event{Kind: event.KindUnlock, Thread: 1, Lock: 9},
		mem(1, "h:fr", 1, false), // read x with no lock held
	)
	if len(d.Pairs()) != 1 {
		t.Fatalf("hybrid should predict the Figure-1-style race: %v", d.Pairs())
	}
}

func TestPairsAreDeduplicated(t *testing.T) {
	var evs []event.Event
	for i := 0; i < 10; i++ {
		evs = append(evs, mem(0, "h:dw", 1, true), mem(1, "h:dr", 1, false))
	}
	d := run(evs...)
	ps := d.Pairs()
	if len(ps) != 1 {
		t.Fatalf("pairs not deduplicated: %v", ps)
	}
	infos := d.Races()
	if len(infos) != 1 || infos[0].Count < 10 {
		t.Fatalf("race info = %+v", infos)
	}
}

func TestSelfPairTwoThreadsSameStmt(t *testing.T) {
	d := run(
		mem(0, "h:same", 1, true),
		mem(1, "h:same", 1, true),
	)
	ps := d.Pairs()
	if len(ps) != 1 || ps[0] != pairOf("h:same", "h:same") {
		t.Fatalf("self-pair = %v", ps)
	}
}

func TestMaxHistoryBound(t *testing.T) {
	d := New()
	d.MaxHistoryPerLoc = 4
	// Thread 0 writes many times; thread 1's final read must still race
	// with at least one remembered write.
	for i := 0; i < 50; i++ {
		d.OnEvent(mem(0, "h:bw", 1, true))
	}
	d.OnEvent(mem(1, "h:br", 1, false))
	if len(d.Pairs()) != 1 {
		t.Fatalf("bounded history lost the race: %v", d.Pairs())
	}
}

func TestWriteReadAndReadWriteBothDetected(t *testing.T) {
	d := run(
		mem(0, "h:x-read", 1, false),
		mem(1, "h:x-write", 1, true), // read-then-write: race
		mem(0, "h:y-write", 2, true),
		mem(1, "h:y-read", 2, false), // write-then-read: race
	)
	ps := d.Pairs()
	if len(ps) != 2 {
		t.Fatalf("pairs = %v", ps)
	}
}
