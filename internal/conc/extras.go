package conc

import "racefuzzer/internal/event"

// Higher-level synchronizers built from the monitor primitives, the way
// java.util.concurrent builds on Object monitors. Everything is fully
// instrumented: their internal state lives in Vars and their blocking in
// monitor waits, so the detectors see — and RaceFuzzer can direct — every
// interleaving inside them.

// RWLock is a readers–writer lock: any number of readers or one writer.
// Writers are not prioritized (a steady reader stream can starve a writer,
// as with unfair Java read-write locks).
type RWLock struct {
	m       *Mutex
	readers *IntVar
	writer  *Var[bool]
}

// NewRWLock allocates a readers–writer lock.
func NewRWLock(t *Thread, name string) *RWLock {
	return &RWLock{
		m:       NewMutex(t, name+".monitor"),
		readers: NewIntVar(t, name+".readers", 0),
		writer:  NewVar(t, name+".writer", false),
	}
}

// RLock acquires shared (read) access.
func (l *RWLock) RLock(t *Thread) {
	l.m.Lock(t)
	for l.writer.Get(t) {
		l.m.Wait(t)
	}
	l.readers.Add(t, 1)
	l.m.Unlock(t)
}

// RUnlock releases shared access.
func (l *RWLock) RUnlock(t *Thread) {
	l.m.Lock(t)
	if l.readers.Add(t, -1) == 0 {
		l.m.NotifyAll(t)
	}
	l.m.Unlock(t)
}

// Lock acquires exclusive (write) access.
func (l *RWLock) Lock(t *Thread) {
	l.m.Lock(t)
	for l.writer.Get(t) || l.readers.Get(t) > 0 {
		l.m.Wait(t)
	}
	l.writer.Set(t, true)
	l.m.Unlock(t)
}

// Unlock releases exclusive access.
func (l *RWLock) Unlock(t *Thread) {
	l.m.Lock(t)
	l.writer.Set(t, false)
	l.m.NotifyAll(t)
	l.m.Unlock(t)
}

// Semaphore is a counting semaphore (java.util.concurrent.Semaphore).
type Semaphore struct {
	m       *Mutex
	permits *IntVar
}

// NewSemaphore allocates a semaphore with the given permits.
func NewSemaphore(t *Thread, name string, permits int) *Semaphore {
	return &Semaphore{
		m:       NewMutex(t, name+".monitor"),
		permits: NewIntVar(t, name+".permits", permits),
	}
}

// Acquire takes one permit, blocking while none are available.
func (s *Semaphore) Acquire(t *Thread) {
	s.m.Lock(t)
	for s.permits.Get(t) <= 0 {
		s.m.Wait(t)
	}
	s.permits.Add(t, -1)
	s.m.Unlock(t)
}

// TryAcquire takes a permit if one is available, without blocking.
func (s *Semaphore) TryAcquire(t *Thread) bool {
	s.m.Lock(t)
	ok := s.permits.Get(t) > 0
	if ok {
		s.permits.Add(t, -1)
	}
	s.m.Unlock(t)
	return ok
}

// Release returns one permit, waking a blocked acquirer.
func (s *Semaphore) Release(t *Thread) {
	s.m.Lock(t)
	s.permits.Add(t, 1)
	s.m.Notify(t)
	s.m.Unlock(t)
}

// Available returns the current permit count (racy by nature, like Java's
// availablePermits — for monitoring only).
func (s *Semaphore) Available(t *Thread) int {
	return s.permits.Get(t)
}

// BoundedQueue is a fixed-capacity FIFO of ints with blocking Put/Take — the
// ArrayBlockingQueue of the model world, and the producer/consumer substrate
// several benchmark models use.
type BoundedQueue struct {
	m     *Mutex
	buf   *Array[int]
	head  *IntVar
	size  *IntVar
	cap   int
	stmtP event.Stmt
	stmtT event.Stmt
}

// NewBoundedQueue allocates a queue with the given capacity.
func NewBoundedQueue(t *Thread, name string, capacity int) *BoundedQueue {
	return &BoundedQueue{
		m:     NewMutex(t, name+".monitor"),
		buf:   NewArray[int](t, name+".buf", capacity),
		head:  NewIntVar(t, name+".head", 0),
		size:  NewIntVar(t, name+".size", 0),
		cap:   capacity,
		stmtP: event.StmtFor(name + ".Put"),
		stmtT: event.StmtFor(name + ".Take"),
	}
}

// Put appends v, blocking while the queue is full.
func (q *BoundedQueue) Put(t *Thread, v int) {
	q.m.Lock(t)
	for q.size.Get(t) == q.cap {
		q.m.Wait(t)
	}
	h := q.head.Get(t)
	n := q.size.Get(t)
	q.buf.SetAt(t, q.stmtP, (h+n)%q.cap, v)
	q.size.Set(t, n+1)
	q.m.NotifyAll(t)
	q.m.Unlock(t)
}

// Take removes and returns the oldest element, blocking while empty.
func (q *BoundedQueue) Take(t *Thread) int {
	q.m.Lock(t)
	for q.size.Get(t) == 0 {
		q.m.Wait(t)
	}
	h := q.head.Get(t)
	v := q.buf.GetAt(t, q.stmtT, h)
	q.head.Set(t, (h+1)%q.cap)
	q.size.Add(t, -1)
	q.m.NotifyAll(t)
	q.m.Unlock(t)
	return v
}

// Size returns the current element count (under the queue's lock).
func (q *BoundedQueue) Size(t *Thread) int {
	q.m.Lock(t)
	n := q.size.Get(t)
	q.m.Unlock(t)
	return n
}
