package conc

import (
	"testing"

	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

func stmt(name string) event.Stmt { return event.StmtFor(name) }

func TestRWLockSharedReadersExclusiveWriter(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		violations := 0
		prog := func(mt *Thread) {
			rw := NewRWLock(mt, "rw")
			activeReaders := 0
			writerIn := false
			state := NewMutex(mt, "state") // guards the oracle counters
			maxConcurrentReaders := 0

			readers := ForkN(mt, "r", 3, func(c *Thread, i int) {
				for k := 0; k < 3; k++ {
					rw.RLock(c)
					state.Lock(c)
					activeReaders++
					if writerIn {
						violations++
					}
					if activeReaders > maxConcurrentReaders {
						maxConcurrentReaders = activeReaders
					}
					state.Unlock(c)
					c.Nop(stmt("r-work"))
					state.Lock(c)
					activeReaders--
					state.Unlock(c)
					rw.RUnlock(c)
				}
			})
			writers := ForkN(mt, "w", 2, func(c *Thread, i int) {
				for k := 0; k < 2; k++ {
					rw.Lock(c)
					state.Lock(c)
					if writerIn || activeReaders > 0 {
						violations++
					}
					writerIn = true
					state.Unlock(c)
					c.Nop(stmt("w-work"))
					state.Lock(c)
					writerIn = false
					state.Unlock(c)
					rw.Unlock(c)
				}
			})
			JoinAll(mt, readers)
			JoinAll(mt, writers)
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: deadlock %v", seed, res.Deadlock)
		}
		if len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: %v", seed, res.Exceptions)
		}
		if violations != 0 {
			t.Fatalf("seed %d: %d rwlock violations", seed, violations)
		}
	}
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		maxIn, in := 0, 0
		prog := func(mt *Thread) {
			sem := NewSemaphore(mt, "sem", 2)
			state := NewMutex(mt, "state")
			workers := ForkN(mt, "w", 5, func(c *Thread, i int) {
				sem.Acquire(c)
				state.Lock(c)
				in++
				if in > maxIn {
					maxIn = in
				}
				state.Unlock(c)
				c.Nop(stmt("critical"))
				state.Lock(c)
				in--
				state.Unlock(c)
				sem.Release(c)
			})
			JoinAll(mt, workers)
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		if res.Deadlock != nil || len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		if maxIn > 2 {
			t.Fatalf("seed %d: %d workers inside a 2-permit semaphore", seed, maxIn)
		}
		if maxIn == 0 {
			t.Fatalf("seed %d: nobody entered", seed)
		}
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	prog := func(mt *Thread) {
		sem := NewSemaphore(mt, "sem", 1)
		if !sem.TryAcquire(mt) {
			mt.Throwf("first TryAcquire failed")
		}
		if sem.TryAcquire(mt) {
			mt.Throwf("second TryAcquire succeeded with 0 permits")
		}
		if sem.Available(mt) != 0 {
			mt.Throwf("available = %d", sem.Available(mt))
		}
		sem.Release(mt)
		if !sem.TryAcquire(mt) {
			mt.Throwf("TryAcquire after release failed")
		}
	}
	res := sched.Run(prog, sched.Config{Seed: 1})
	if len(res.Exceptions) != 0 {
		t.Fatalf("%v", res.Exceptions)
	}
}

func TestBoundedQueueFIFOAndCompleteness(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		var consumed []int
		prog := func(mt *Thread) {
			q := NewBoundedQueue(mt, "q", 3)
			consumer := mt.Fork("consumer", func(c *Thread) {
				for i := 0; i < 10; i++ {
					consumed = append(consumed, q.Take(c))
				}
			})
			producer := mt.Fork("producer", func(c *Thread) {
				for i := 0; i < 10; i++ {
					q.Put(c, 100+i)
				}
			})
			mt.Join(producer)
			mt.Join(consumer)
			if q.Size(mt) != 0 {
				mt.Throwf("queue not drained: %d", q.Size(mt))
			}
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		if res.Deadlock != nil || len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		if len(consumed) != 10 {
			t.Fatalf("seed %d: consumed %d items", seed, len(consumed))
		}
		for i, v := range consumed {
			if v != 100+i {
				t.Fatalf("seed %d: FIFO violated: %v", seed, consumed)
			}
		}
	}
}

func TestBoundedQueueMultipleProducersConsumers(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		total := 0
		prog := func(mt *Thread) {
			q := NewBoundedQueue(mt, "q", 2)
			sum := NewIntVar(mt, "sum", 0)
			sumLock := NewMutex(mt, "sumLock")
			consumers := ForkN(mt, "c", 2, func(c *Thread, i int) {
				for k := 0; k < 6; k++ {
					v := q.Take(c)
					sumLock.Lock(c)
					sum.Add(c, v)
					sumLock.Unlock(c)
				}
			})
			producers := ForkN(mt, "p", 3, func(c *Thread, i int) {
				for k := 0; k < 4; k++ {
					q.Put(c, 1)
				}
			})
			JoinAll(mt, producers)
			JoinAll(mt, consumers)
			total = sum.Get(mt)
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		if res.Deadlock != nil || len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		if total != 12 {
			t.Fatalf("seed %d: sum = %d, want 12", seed, total)
		}
	}
}
