package conc

import (
	"racefuzzer/internal/event"
)

// Mutex is a reentrant monitor lock with Java semantics: the same object
// provides mutual exclusion (Lock/Unlock) and a condition wait set
// (Wait/Notify/NotifyAll), like a Java object's monitor.
type Mutex struct {
	id   event.LockID
	name string
}

// NewMutex allocates a monitor lock.
func NewMutex(t *Thread, name string) *Mutex {
	return &Mutex{id: t.Scheduler().NewLock(name), name: name}
}

// ID returns the lock's identity.
func (m *Mutex) ID() event.LockID { return m.id }

// Name returns the lock's debug name.
func (m *Mutex) Name() string { return m.name }

// Lock acquires the monitor (reentrant).
func (m *Mutex) Lock(t *Thread) { t.LockAcquire(m.id, event.CallerStmt(1)) }

// Unlock releases one level of the monitor. Releasing a monitor the thread
// does not hold throws IllegalMonitorStateException (a model exception).
func (m *Mutex) Unlock(t *Thread) { t.LockRelease(m.id, event.CallerStmt(1)) }

// Sync runs body while holding the monitor — Java's synchronized block. The
// unlock runs even if body throws? No: like Java, an uncaught exception
// unwinds the thread, and the scheduler force-releases monitors of dying
// threads; Sync does not recover model exceptions.
func (m *Mutex) Sync(t *Thread, body func()) {
	t.LockAcquire(m.id, event.CallerStmt(1))
	body()
	t.LockRelease(m.id, event.CallerStmt(1))
}

// Wait performs monitor wait: releases the monitor in full, joins the wait
// set, and reacquires after a Notify/NotifyAll. No spurious wakeups (the
// model is deterministic); no timeout variant.
func (m *Mutex) Wait(t *Thread) { t.MonitorWait(m.id, event.CallerStmt(1)) }

// Notify wakes one waiting thread (scheduler-RNG choice), if any.
func (m *Mutex) Notify(t *Thread) { t.MonitorNotify(m.id, event.CallerStmt(1)) }

// NotifyAll wakes all waiting threads.
func (m *Mutex) NotifyAll(t *Thread) { t.MonitorNotifyAll(m.id, event.CallerStmt(1)) }

// Barrier is a cyclic barrier in the style of the Java Grande kernels:
// the last arriving thread releases the others via NotifyAll. Arrival and
// generation counters are instrumented variables guarded by the barrier's
// monitor, so the barrier itself is race-free by construction.
type Barrier struct {
	m       *Mutex
	parties int
	arrived *IntVar
	gen     *IntVar
}

// NewBarrier allocates a barrier for the given number of parties.
func NewBarrier(t *Thread, name string, parties int) *Barrier {
	return &Barrier{
		m:       NewMutex(t, name+".lock"),
		parties: parties,
		arrived: NewIntVar(t, name+".arrived", 0),
		gen:     NewIntVar(t, name+".gen", 0),
	}
}

// Await blocks until all parties have arrived, then resets for reuse.
func (b *Barrier) Await(t *Thread) {
	b.m.Lock(t)
	gen := b.gen.Get(t)
	n := b.arrived.Add(t, 1)
	if n == b.parties {
		b.arrived.Set(t, 0)
		b.gen.Set(t, gen+1)
		b.m.NotifyAll(t)
	} else {
		for b.gen.Get(t) == gen {
			b.m.Wait(t)
		}
	}
	b.m.Unlock(t)
}

// Latch is a CountDownLatch: Await blocks until the count reaches zero.
type Latch struct {
	m     *Mutex
	count *IntVar
}

// NewLatch allocates a latch with the given initial count.
func NewLatch(t *Thread, name string, count int) *Latch {
	return &Latch{
		m:     NewMutex(t, name+".lock"),
		count: NewIntVar(t, name+".count", count),
	}
}

// CountDown decrements the latch, releasing waiters at zero.
func (l *Latch) CountDown(t *Thread) {
	l.m.Lock(t)
	n := l.count.Add(t, -1)
	if n <= 0 {
		l.m.NotifyAll(t)
	}
	l.m.Unlock(t)
}

// Await blocks until the latch reaches zero.
func (l *Latch) Await(t *Thread) {
	l.m.Lock(t)
	for l.count.Get(t) > 0 {
		l.m.Wait(t)
	}
	l.m.Unlock(t)
}

// ForkN forks n children named prefix-i running body(i) and returns their
// handles; JoinAll joins them. Together they express the ubiquitous
// fork-join skeleton of the benchmark programs.
func ForkN(t *Thread, prefix string, n int, body func(t *Thread, i int)) []*Thread {
	kids := make([]*Thread, n)
	for i := 0; i < n; i++ {
		i := i
		kids[i] = t.Fork(prefix+"-"+itoa(i), func(c *Thread) { body(c, i) })
	}
	return kids
}

// JoinAll joins every thread in kids.
func JoinAll(t *Thread, kids []*Thread) {
	for _, k := range kids {
		t.Join(k)
	}
}
