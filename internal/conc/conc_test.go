package conc

import (
	"fmt"
	"testing"

	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

func runProg(t *testing.T, seed int64, body func(*Thread)) *sched.Result {
	t.Helper()
	res := sched.Run(body, sched.Config{Seed: seed})
	if res.Deadlock != nil {
		t.Fatalf("deadlock: %v", res.Deadlock)
	}
	if len(res.Exceptions) != 0 {
		t.Fatalf("exceptions: %v", res.Exceptions)
	}
	return res
}

func TestVarGetSet(t *testing.T) {
	runProg(t, 1, func(mt *Thread) {
		v := NewVar(mt, "x", 10)
		if v.Get(mt) != 10 {
			mt.Throwf("init = %d", v.Get(mt))
		}
		v.Set(mt, 42)
		if v.Get(mt) != 42 || v.Peek() != 42 {
			mt.Throwf("after set = %d", v.Get(mt))
		}
		if v.Name() != "x" {
			mt.Throwf("name = %q", v.Name())
		}
		s := NewVar(mt, "s", "hello")
		s.Set(mt, s.Get(mt)+" world")
		if s.Get(mt) != "hello world" {
			mt.Throwf("string var = %q", s.Get(mt))
		}
	})
}

func TestIntVarAddIsReadThenWrite(t *testing.T) {
	counter := &sched.CountingObserver{}
	sched.Run(func(mt *Thread) {
		v := NewIntVar(mt, "n", 5)
		if got := v.Add(mt, 3); got != 8 {
			mt.Throwf("Add returned %d", got)
		}
		if v.Get(mt) != 8 {
			mt.Throwf("value = %d", v.Get(mt))
		}
	}, sched.Config{Seed: 1, Observers: []sched.Observer{counter}})
	// Add = 1 read + 1 write; Get = 1 read → 3 mem events.
	if counter.Mem != 3 {
		t.Fatalf("mem events = %d, want 3", counter.Mem)
	}
}

func TestArrayPerElementLocations(t *testing.T) {
	runProg(t, 1, func(mt *Thread) {
		a := NewArray[int](mt, "arr", 5)
		if a.Len() != 5 {
			mt.Throwf("len = %d", a.Len())
		}
		for i := 0; i < 5; i++ {
			a.Set(mt, i, i*i)
		}
		for i := 0; i < 5; i++ {
			if a.Get(mt, i) != i*i || a.Peek(i) != i*i {
				mt.Throwf("a[%d] = %d", i, a.Get(mt, i))
			}
		}
		// Locations must be distinct and consecutive.
		for i := 1; i < 5; i++ {
			if a.LocOf(i) == a.LocOf(i-1) {
				mt.Throwf("aliased locations at %d", i)
			}
		}
	})
}

func TestMutexSyncRunsBody(t *testing.T) {
	runProg(t, 1, func(mt *Thread) {
		m := NewMutex(mt, "m")
		ran := false
		m.Sync(mt, func() { ran = true })
		if !ran {
			mt.Throwf("Sync body did not run")
		}
		if m.Name() != "m" {
			mt.Throwf("name = %q", m.Name())
		}
	})
}

func TestBarrierPhases(t *testing.T) {
	// Each worker increments phase-1 counter, barrier, then checks that all
	// phase-1 increments are visible: the barrier really is a barrier.
	for seed := int64(0); seed < 15; seed++ {
		violations := 0
		prog := func(mt *Thread) {
			const n = 4
			bar := NewBarrier(mt, "b", n)
			phase1 := NewIntVar(mt, "phase1", 0)
			lock := NewMutex(mt, "l")
			workers := ForkN(mt, "w", n, func(c *Thread, i int) {
				lock.Lock(c)
				phase1.Add(c, 1)
				lock.Unlock(c)
				bar.Await(c)
				lock.Lock(c)
				if phase1.Get(c) != n {
					violations++
				}
				lock.Unlock(c)
			})
			JoinAll(mt, workers)
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: deadlock %v", seed, res.Deadlock)
		}
		if violations != 0 {
			t.Fatalf("seed %d: %d barrier violations", seed, violations)
		}
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := func(mt *Thread) {
			const n, rounds = 3, 4
			bar := NewBarrier(mt, "b", n)
			progress := NewArray[int](mt, "progress", n)
			lock := NewMutex(mt, "l")
			workers := ForkN(mt, "w", n, func(c *Thread, i int) {
				for r := 0; r < rounds; r++ {
					progress.Set(c, i, r+1)
					bar.Await(c)
					// After the barrier, every worker must have reached r+1.
					lock.Lock(c)
					for j := 0; j < n; j++ {
						if progress.Get(c, j) < r+1 {
							c.Throwf("round %d: worker %d lagging", r, j)
						}
					}
					lock.Unlock(c)
					bar.Await(c)
				}
			})
			JoinAll(mt, workers)
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		if res.Deadlock != nil || len(res.Exceptions) != 0 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestLatch(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		order := []string{}
		prog := func(mt *Thread) {
			l := NewLatch(mt, "latch", 3)
			waiter := mt.Fork("waiter", func(c *Thread) {
				l.Await(c)
				order = append(order, "released")
			})
			workers := ForkN(mt, "w", 3, func(c *Thread, i int) {
				c.Nop(event.StmtFor(fmt.Sprintf("work-%d", i)))
				order = append(order, "countdown")
				l.CountDown(c)
			})
			JoinAll(mt, workers)
			mt.Join(waiter)
		}
		res := sched.Run(prog, sched.Config{Seed: seed})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: deadlock %v", seed, res.Deadlock)
		}
		if len(order) != 4 || order[len(order)-1] != "released" {
			t.Fatalf("seed %d: order = %v", seed, order)
		}
	}
}

func TestForkNIndices(t *testing.T) {
	runProg(t, 2, func(mt *Thread) {
		seen := make([]bool, 6)
		kids := ForkN(mt, "idx", 6, func(c *Thread, i int) {
			seen[i] = true
		})
		if len(kids) != 6 {
			mt.Throwf("forked %d", len(kids))
		}
		JoinAll(mt, kids)
		for i, s := range seen {
			if !s {
				mt.Throwf("index %d not seen", i)
			}
		}
	})
}

func TestVarNamesInLocations(t *testing.T) {
	runProg(t, 1, func(mt *Thread) {
		v := NewVar(mt, "named", 0)
		if got := mt.Scheduler().LocName(v.Loc()); got != "named" {
			mt.Throwf("loc name = %q", got)
		}
		a := NewArray[int](mt, "arr", 3)
		if got := mt.Scheduler().LocName(a.LocOf(2)); got != "arr[2]" {
			mt.Throwf("array loc name = %q", got)
		}
	})
}
