// Package conc is the model-program API: the vocabulary benchmark programs
// are written in. It plays the role the instrumented Java bytecode plays in
// the paper — every shared-variable access and synchronization operation is
// routed through the deterministic scheduler (internal/sched) and labeled
// with a statement identity, so phase 1 can report potentially racing
// statement pairs and phase 2 can target them.
//
// The primitives mirror Java's concurrency vocabulary: shared variables
// (fields), arrays, reentrant monitor locks with wait/notify, fork/join,
// plus the barrier and latch idioms the Java Grande benchmarks use.
package conc

import (
	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

// Thread aliases sched.Thread: model code receives its current thread
// explicitly (Java's implicit "current thread" made visible).
type Thread = sched.Thread

// Var is an instrumented shared variable holding a value of type T. Every
// Get/Set parks at the scheduler and emits a MEM event, so two Vars accesses
// from different threads can be detected — and, by RaceFuzzer, actively
// scheduled — to race.
type Var[T any] struct {
	loc  event.MemLoc
	name string
	val  T
}

// NewVar allocates a shared variable with a debug name and initial value.
func NewVar[T any](t *Thread, name string, init T) *Var[T] {
	return &Var[T]{loc: t.Scheduler().NewLoc(name), name: name, val: init}
}

// Loc returns the variable's dynamic memory location.
func (v *Var[T]) Loc() event.MemLoc { return v.loc }

// Name returns the variable's debug name.
func (v *Var[T]) Name() string { return v.name }

// Get reads the variable; the statement label is the caller's file:line.
func (v *Var[T]) Get(t *Thread) T {
	t.MemRead(v.loc, event.CallerStmt(1))
	return v.val
}

// GetAt reads the variable at an explicit statement label.
func (v *Var[T]) GetAt(t *Thread, stmt event.Stmt) T {
	t.MemRead(v.loc, stmt)
	return v.val
}

// Set writes the variable; the statement label is the caller's file:line.
func (v *Var[T]) Set(t *Thread, val T) {
	t.MemWrite(v.loc, event.CallerStmt(1))
	v.val = val
}

// SetAt writes the variable at an explicit statement label.
func (v *Var[T]) SetAt(t *Thread, stmt event.Stmt, val T) {
	t.MemWrite(v.loc, stmt)
	v.val = val
}

// Peek returns the current value without an instrumented access. For
// assertions in test harnesses only — never in model-program logic.
func (v *Var[T]) Peek() T { return v.val }

// IntVar is a shared integer with read-modify-write helpers.
type IntVar struct{ Var[int] }

// NewIntVar allocates a shared integer.
func NewIntVar(t *Thread, name string, init int) *IntVar {
	return &IntVar{Var[int]{loc: t.Scheduler().NewLoc(name), name: name, val: init}}
}

// Add performs v += d as Java compiles it: a read event followed by a write
// event at the same statement — the classic lost-update racing pattern.
func (v *IntVar) Add(t *Thread, d int) int {
	stmt := event.CallerStmt(1)
	t.MemRead(v.loc, stmt)
	x := v.val
	t.MemWrite(v.loc, stmt)
	v.val = x + d
	return x + d
}

// AddAt is Add with an explicit statement label.
func (v *IntVar) AddAt(t *Thread, stmt event.Stmt, d int) int {
	t.MemRead(v.loc, stmt)
	x := v.val
	t.MemWrite(v.loc, stmt)
	v.val = x + d
	return x + d
}

// Array is an instrumented shared array with one dynamic memory location per
// element, so accesses to distinct indices do not conflict (exactly the
// "different dynamic shared memory locations" situation Algorithm 1 keeps
// postponing on).
type Array[T any] struct {
	base event.MemLoc
	name string
	vals []T
}

// NewArray allocates an n-element shared array.
func NewArray[T any](t *Thread, name string, n int) *Array[T] {
	s := t.Scheduler()
	a := &Array[T]{name: name, vals: make([]T, n)}
	for i := 0; i < n; i++ {
		loc := s.NewLoc(name + "[" + itoa(i) + "]")
		if i == 0 {
			a.base = loc
		}
	}
	return a
}

// Len returns the array length.
func (a *Array[T]) Len() int { return len(a.vals) }

// LocOf returns element i's memory location.
func (a *Array[T]) LocOf(i int) event.MemLoc { return a.base + event.MemLoc(i) }

// Get reads element i.
func (a *Array[T]) Get(t *Thread, i int) T {
	t.MemRead(a.LocOf(i), event.CallerStmt(1))
	return a.vals[i]
}

// GetAt reads element i at an explicit statement label.
func (a *Array[T]) GetAt(t *Thread, stmt event.Stmt, i int) T {
	t.MemRead(a.LocOf(i), stmt)
	return a.vals[i]
}

// Set writes element i.
func (a *Array[T]) Set(t *Thread, i int, val T) {
	t.MemWrite(a.LocOf(i), event.CallerStmt(1))
	a.vals[i] = val
}

// SetAt writes element i at an explicit statement label.
func (a *Array[T]) SetAt(t *Thread, stmt event.Stmt, i int, val T) {
	t.MemWrite(a.LocOf(i), stmt)
	a.vals[i] = val
}

// Peek returns element i without instrumentation (harness assertions only).
func (a *Array[T]) Peek(i int) T { return a.vals[i] }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
