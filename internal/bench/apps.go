package bench

import (
	"errors"

	"racefuzzer/internal/collections"
	"racefuzzer/internal/conc"
	"racefuzzer/internal/event"
)

// Models of the application benchmarks: cache4j, hedc, weblech, jspider and
// jigsaw. Each preserves the synchronization skeleton in which the paper's
// bug (or false alarms) live.

// Exceptions thrown by the application models, named after their Java
// counterparts (core.exceptionKind truncates at ':').
var (
	ErrInterrupted = errors.New("InterruptedException")
	ErrNullPointer = errors.New("NullPointerException")
	ErrOutOfBounds = errors.New("ArrayIndexOutOfBoundsException")
)

// Cache4j statement labels for the _sleep race (§5.3's first bug).
var (
	Cache4jSleepSetTrue  = event.StmtFor("cache4j: _sleep = true")
	Cache4jSleepSetFalse = event.StmtFor("cache4j: _sleep = false (finally)")
	Cache4jSleepRead     = event.StmtFor("cache4j: if (_sleep)")
)

// Cache4jSleepPair is the harmful racing pair: the user thread's _sleep read
// against the cleaner's finally-block reset.
var Cache4jSleepPair = event.MakeStmtPair(Cache4jSleepRead, Cache4jSleepSetFalse)

// Cache4j models the cache4j bug of §5.3: the CacheCleaner advertises that
// it is sleeping via an unsynchronized _sleep flag; the user thread, under
// the cache lock, interrupts the cleaner whenever it observes _sleep. The
// race: the user can read a stale "sleeping" after the cleaner already left
// its try/catch, so the interrupt lands in cleaning code with no handler —
// an uncaught InterruptedException. The cache's get/put paths are properly
// locked; a stats counter adds one benign real race.
func Cache4j(nUsers, opsPerUser int) Program {
	hitsStmt := event.StmtFor("cache4j: hits++ (unsynchronized stats)")
	return func(t *conc.Thread) {
		const slots = 8
		cacheLock := conc.NewMutex(t, "cacheLock")
		cache := collections.NewHashMap(t, "cache.map")
		hits := conc.NewIntVar(t, "hits", 0)
		sleepFlag := conc.NewVar(t, "_sleep", false)
		this := conc.NewMutex(t, "cleaner.this") // the synchronized(this) monitor

		cleaner := t.Fork("CacheCleaner", func(c *conc.Thread) {
			sleepFlag.SetAt(c, Cache4jSleepSetTrue, true) // _sleep = true
			// try { sleep(_cleanInterval) } catch (Throwable) {} — an
			// interrupt delivered during the sleep is caught and swallowed.
			for i := 0; i < 3; i++ {
				c.Nop(event.StmtFor("cache4j: sleeping"))
				if c.IsInterrupted() {
					c.ClearInterrupt() // the catch(Throwable) block
					break
				}
			}
			sleepFlag.SetAt(c, Cache4jSleepSetFalse, false) // finally { _sleep = false }
			// clean(): evict even-keyed entries — interruptible work with NO
			// try/catch around it.
			for s := 0; s < slots; s += 2 {
				cacheLock.Lock(c)
				cache.Remove(c, s)
				cacheLock.Unlock(c)
				if c.IsInterrupted() { // interrupt landed here: uncaught
					c.Throw(ErrInterrupted)
				}
			}
		})

		users := conc.ForkN(t, "user", nUsers, func(c *conc.Thread, id int) {
			for op := 0; op < opsPerUser; op++ {
				k := (id*opsPerUser + op) % slots
				cacheLock.Lock(c)
				if _, ok := cache.Get(c, k); !ok {
					cache.Put(c, k, k*10)
				}
				cacheLock.Unlock(c)
				hits.AddAt(c, hitsStmt, 1) // benign real race
			}
			// Shutdown path: synchronized(this) { if (_sleep) interrupt(); }
			this.Lock(c)
			if sleepFlag.GetAt(c, Cache4jSleepRead) {
				c.Interrupt(cleaner)
			}
			this.Unlock(c)
		})
		conc.JoinAll(t, users)
		t.Join(cleaner)
	}
}

// Hedc models the ETH web-crawler kernel: a pool of workers pulls search
// tasks from a locked queue; a canceller aborts a slow backend by nulling
// its connection *before* publishing the cancelled flag — the real race. A
// worker that still sees "not cancelled" dereferences the nulled connection:
// NullPointerException. Task bookkeeping is properly locked, and an
// initialized-flag idiom produces classic hybrid false alarms.
func Hedc(nWorkers, nTasks int) Program {
	connRead := event.StmtFor("hedc: conn = task.connection")
	connNull := event.StmtFor("hedc: task.connection = null")
	return func(t *conc.Thread) {
		queueLock := conc.NewMutex(t, "queueLock")
		nextTask := conc.NewIntVar(t, "nextTask", 0)
		connection := conc.NewVar(t, "connection", 1) // 0 = nulled
		cancelled := conc.NewVar(t, "cancelled", false)
		cancelLock := conc.NewMutex(t, "cancelLock")
		// initialized-flag idiom: config written once, then flag set under a
		// lock; readers check the flag under the lock, then read the config
		// unsynchronized — safe, but a hybrid false alarm (Figure-1 pattern).
		config := conc.NewVar(t, "config", 0)
		configReady := conc.NewVar(t, "configReady", false)
		initLock := conc.NewMutex(t, "initLock")

		// The loader runs concurrently with the workers (so the hybrid
		// detector sees no fork edge ordering the config write before the
		// workers' reads — the false alarm the flag idiom provokes).
		loader := t.Fork("config-loader", func(c *conc.Thread) {
			config.Set(c, 42)
			initLock.Lock(c)
			configReady.Set(c, true)
			initLock.Unlock(c)
		})

		workers := conc.ForkN(t, "worker", nWorkers, func(c *conc.Thread, id int) {
			for {
				queueLock.Lock(c)
				task := nextTask.Get(c)
				if task >= nTasks {
					queueLock.Unlock(c)
					return
				}
				nextTask.Set(c, task+1)
				queueLock.Unlock(c)

				initLock.Lock(c)
				ready := configReady.Get(c)
				initLock.Unlock(c)
				if ready {
					_ = config.Get(c) // false-alarm side of the idiom
				}

				cancelLock.Lock(c)
				isCancelled := cancelled.Get(c)
				cancelLock.Unlock(c)
				if !isCancelled {
					conn := connection.GetAt(c, connRead) // races with the canceller
					if conn == 0 {
						c.Throw(ErrNullPointer)
					}
					// Fetching and parsing the page dominates the task: the
					// cancellation window is a tiny fraction of the run, so
					// undirected testing almost never lands in it.
					for f := 0; f < 8; f++ {
						c.Nop(event.StmtFor("hedc: fetch page"))
					}
				}
			}
		})
		canceller := t.Fork("canceller", func(c *conc.Thread) {
			// The MetaSearchRequest timeout: a realistic delay before the
			// cancellation fires, so workers are usually mid-crawl.
			for i := 0; i < 10; i++ {
				c.Nop(event.StmtFor("hedc: wait for timeout"))
			}
			cancelLock.Lock(c)
			connection.SetAt(c, connNull, 0) // bug: nulled while a worker that
			// already passed its cancelled-check may still dereference it —
			// the check and the use are not atomic.
			cancelled.Set(c, true)
			cancelLock.Unlock(c)
		})
		conc.JoinAll(t, workers)
		t.Join(canceller)
		t.Join(loader)
	}
}

// Weblech models the website-mirroring tool: workers drain a download queue
// with a check-then-act bug — the queue size is read without the lock, the
// pop happens under it. Two workers can both see "one element left"; the
// second pop underflows: ArrayIndexOutOfBoundsException. A downloadsDone
// counter adds a benign real race.
func Weblech(nWorkers, nURLs int) Program {
	sizeRead := event.StmtFor("weblech: if (queueSize > 0) — unsynchronized")
	doneStmt := event.StmtFor("weblech: downloadsDone++ (unsynchronized)")
	return func(t *conc.Thread) {
		queueLock := conc.NewMutex(t, "queueLock")
		queue := conc.NewArray[int](t, "queue", nURLs)
		queueSize := conc.NewIntVar(t, "queueSize", 0)
		downloadsDone := conc.NewIntVar(t, "downloadsDone", 0)

		for i := 0; i < nURLs; i++ {
			queue.Set(t, i, 1000+i)
			queueSize.Set(t, i+1)
		}
		workers := conc.ForkN(t, "spider", nWorkers, func(c *conc.Thread, id int) {
			for {
				// Bug: size checked without the lock …
				if queueSize.GetAt(c, sizeRead) <= 0 {
					return
				}
				// … pop under the lock, trusting the stale check.
				queueLock.Lock(c)
				n := queueSize.Get(c)
				if n-1 < 0 {
					queueLock.Unlock(c)
					c.Throw(ErrOutOfBounds)
				}
				url := queue.Get(c, n-1)
				queueSize.Set(c, n-1)
				queueLock.Unlock(c)
				_ = url
				// The download itself dominates each iteration, keeping the
				// stale-size window narrow under undirected scheduling.
				for d := 0; d < 6; d++ {
					c.Nop(event.StmtFor("weblech: download url"))
				}
				downloadsDone.AddAt(c, doneStmt, 1)
			}
		})
		conc.JoinAll(t, workers)
	}
}

// Jspider models the configurable web-spider engine: heavily plugin/config
// driven, with all mutable state either lock-protected or published through
// initialized-flag idioms before the workers consume it. The hybrid
// detector reports the flag-guarded accesses as potential races (they have
// disjoint locksets and no fork/join edge), but none is real — Table 1's
// jspider row: 29 potential, 0 real.
func Jspider(nWorkers, nTasks int) Program {
	return func(t *conc.Thread) {
		queueLock := conc.NewMutex(t, "queueLock")
		nextTask := conc.NewIntVar(t, "nextTask", 0)
		visited := conc.NewIntVar(t, "visited", 0)

		// Three independent plugin configurations, each published through
		// its own flag-under-lock (three Figure-1-style false-alarm sites).
		type plugin struct {
			cfg       *conc.Var[int]
			ready     *conc.Var[bool]
			lock      *conc.Mutex
			writeStmt event.Stmt
			readStmt  event.Stmt
		}
		names := []string{"fetcher", "parser", "throttle"}
		plugins := make([]plugin, len(names))
		for i, n := range names {
			plugins[i] = plugin{
				cfg:       conc.NewVar(t, n+".cfg", 0),
				ready:     conc.NewVar(t, n+".ready", false),
				lock:      conc.NewMutex(t, n+".lock"),
				writeStmt: event.StmtFor("jspider: load " + n + ".cfg"),
				readStmt:  event.StmtFor("jspider: use " + n + ".cfg"),
			}
		}
		loader := t.Fork("config-loader", func(c *conc.Thread) {
			for i := range plugins {
				plugins[i].cfg.SetAt(c, plugins[i].writeStmt, 100+i) // unsynchronized write …
				plugins[i].lock.Lock(c)
				plugins[i].ready.Set(c, true) // … published under the lock
				plugins[i].lock.Unlock(c)
			}
		})

		workers := conc.ForkN(t, "spider", nWorkers, func(c *conc.Thread, id int) {
			for {
				queueLock.Lock(c)
				task := nextTask.Get(c)
				if task >= nTasks {
					queueLock.Unlock(c)
					return
				}
				nextTask.Set(c, task+1)
				visited.Add(c, 1) // locked: no race
				queueLock.Unlock(c)

				for i := range plugins {
					plugins[i].lock.Lock(c)
					ready := plugins[i].ready.Get(c)
					plugins[i].lock.Unlock(c)
					if ready {
						_ = plugins[i].cfg.GetAt(c, plugins[i].readStmt) // unsynchronized read: false alarm
					}
				}
				c.Nop(event.StmtFor("jspider: process task"))
			}
		})
		conc.JoinAll(t, workers)
		t.Join(loader)
	}
}

// jigsawRequest is one entry of the model server's accept queue: an HTTP
// request line as the real Jigsaw would read it off a connection.
var jigsawRequests = []string{
	"GET /index.html",
	"GET /logo.png",
	"PUT /index.html",
	"GET /docs/manual.html",
	"GET /missing.html",
	"PUT /docs/manual.html",
	"GET /index.html",
	"GET /logo.png",
	"GET /style.css",
	"PUT /style.css",
}

// jigsawRoutes maps paths to resource-store slots (the server's resource
// tree, read-only after initialization).
var jigsawRoutes = map[string]int{
	"/index.html":       0,
	"/logo.png":         1,
	"/docs/manual.html": 2,
	"/style.css":        3,
}

// jigsawMIME maps path suffixes to response sizes (a stand-in for the MIME
// table's per-type framing overhead).
var jigsawMIME = map[string]int{
	".html": 48,
	".png":  512,
	".css":  24,
}

func jigsawParse(line string) (method, path string) {
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' {
			return line[:i], line[i+1:]
		}
	}
	return line, "/"
}

func jigsawExt(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			return path[i:]
		}
		if path[i] == '/' {
			break
		}
	}
	return ""
}

// Jigsaw models W3C's Jigsaw web server: workers pull request lines from a
// locked accept queue, parse them, route them through the (read-only)
// resource tree, and serve GETs / apply PUTs against a store guarded by a
// readers–writer protocol — while several server-wide counters (hit and
// byte statistics, an access-log cursor, a connection high-water mark, a
// 404 counter) are updated with no synchronization at all. The counters are
// the many real-but-benign races of jigsaw's Table 1 row; the RW-protected
// store contributes potential races that are protocol-protected (the lock
// is not *held* during the access, so locksets cannot prove safety) and are
// correctly refuted by RaceFuzzer.
func Jigsaw(nWorkers, nRequests int) Program {
	hitsStmt := event.StmtFor("jigsaw: hits++ (unsynchronized)")
	bytesStmt := event.StmtFor("jigsaw: bytesServed += n (unsynchronized)")
	logStmt := event.StmtFor("jigsaw: logCursor++ (unsynchronized)")
	hwmRead := event.StmtFor("jigsaw: read connHWM")
	hwmWrite := event.StmtFor("jigsaw: write connHWM")
	nfStmt := event.StmtFor("jigsaw: notFound++ (unsynchronized)")
	resRead := event.StmtFor("jigsaw: read resource body (RW-protected)")
	resWrite := event.StmtFor("jigsaw: write resource body (RW-protected)")
	if nRequests > len(jigsawRequests) {
		nRequests = len(jigsawRequests)
	}
	return func(t *conc.Thread) {
		queueLock := conc.NewMutex(t, "acceptLock")
		nextReq := conc.NewIntVar(t, "nextRequest", 0)
		store := conc.NewArray[int](t, "resourceStore", len(jigsawRoutes))
		storeRW := conc.NewRWLock(t, "storeRW")
		hits := conc.NewIntVar(t, "hits", 0)
		bytesServed := conc.NewIntVar(t, "bytesServed", 0)
		notFound := conc.NewIntVar(t, "notFound", 0)
		logCursor := conc.NewIntVar(t, "logCursor", 0)
		logBuf := conc.NewArray[int](t, "logBuf", 64)
		connHWM := conc.NewVar(t, "connHWM", 0)
		// Initialized-flag publication of the server properties (false alarms).
		props := conc.NewVar(t, "props", 0)
		propsReady := conc.NewVar(t, "propsReady", false)
		propsLock := conc.NewMutex(t, "propsLock")

		props.Set(t, 8080)
		propsLock.Lock(t)
		propsReady.Set(t, true)
		propsLock.Unlock(t)
		for i := 0; i < store.Len(); i++ {
			store.Set(t, i, 1000+i*100)
		}

		workers := conc.ForkN(t, "httpd", nWorkers, func(c *conc.Thread, id int) {
			for {
				queueLock.Lock(c)
				req := nextReq.Get(c)
				if req >= nRequests {
					queueLock.Unlock(c)
					return
				}
				nextReq.Set(c, req+1)
				queueLock.Unlock(c)

				propsLock.Lock(c)
				ready := propsReady.Get(c)
				propsLock.Unlock(c)
				if ready {
					_ = props.Get(c) // false alarm: published via the flag
				}

				method, path := jigsawParse(jigsawRequests[req])
				slot, routed := jigsawRoutes[path]
				if !routed {
					notFound.AddAt(c, nfStmt, 1) // real benign race
					continue
				}
				frame := jigsawMIME[jigsawExt(path)]

				var body int
				if method == "PUT" {
					storeRW.Lock(c)
					body = req*37 + 100
					store.SetAt(c, resWrite, slot, body)
					storeRW.Unlock(c)
				} else {
					storeRW.RLock(c)
					body = store.GetAt(c, resRead, slot)
					storeRW.RUnlock(c)
				}

				// Unsynchronized server statistics: real, benign races.
				hits.AddAt(c, hitsStmt, 1)
				bytesServed.AddAt(c, bytesStmt, body%97+frame)
				cur := logCursor.GetAt(c, event.StmtFor("jigsaw: read logCursor"))
				if cur < logBuf.Len()-1 {
					logBuf.Set(c, cur, req)
					logCursor.SetAt(c, logStmt, cur+1)
				}
				h := connHWM.GetAt(c, hwmRead)
				if id+1 > h {
					connHWM.SetAt(c, hwmWrite, id+1)
				}
			}
		})
		conc.JoinAll(t, workers)
	}
}

func init() {
	register(Benchmark{
		Name:        "cache4j",
		Description: "thread-safe cache; CacheCleaner _sleep race → uncaught InterruptedException (§5.3)",
		Paper: PaperRow{SLOC: 3897, NormalSec: 2.19, HybridSec: 4.26, RaceFuzzerSec: 2.61,
			HybridRaces: 18, RealRaces: 2, KnownRaces: -1, ExceptionPairs: 1, SimpleExceptions: 0, Probability: 1.0},
		Expect:       Expect{MinReal: 2, MaxReal: -1, MinPotential: 3, MinExceptionPairs: 1, MaxExceptionPairs: -1, MinProbability: 0.4},
		New:          func() Program { return Cache4j(2, 3) },
		Phase1Trials: 6,
	})
	register(Benchmark{
		Name:        "hedc",
		Description: "ETH web-crawler kernel; cancellation orders connection=null before cancelled=true → NPE",
		Paper: PaperRow{SLOC: 29948, NormalSec: 1.10, HybridSec: 1.35, RaceFuzzerSec: 1.11,
			HybridRaces: 9, RealRaces: 1, KnownRaces: 1, ExceptionPairs: 1, SimpleExceptions: 0, Probability: 0.86},
		Expect:       Expect{MinReal: 1, MaxReal: -1, MinPotential: 2, MinExceptionPairs: 1, MaxExceptionPairs: -1, MinProbability: 0.3},
		New:          func() Program { return Hedc(3, 5) },
		Phase1Trials: 6,
	})
	register(Benchmark{
		Name:        "weblech",
		Description: "website mirroring tool; unsynchronized queue-size check-then-act → index underflow",
		Paper: PaperRow{SLOC: 35175, NormalSec: 0.91, HybridSec: 1.92, RaceFuzzerSec: 1.36,
			HybridRaces: 27, RealRaces: 2, KnownRaces: 1, ExceptionPairs: 1, SimpleExceptions: 1, Probability: 0.83},
		Expect:       Expect{MinReal: 2, MaxReal: -1, MinPotential: 2, MinExceptionPairs: 1, MaxExceptionPairs: -1, MinProbability: 0.3},
		New:          func() Program { return Weblech(2, 8) },
		Phase1Trials: 6,
	})
	register(Benchmark{
		Name:        "jspider",
		Description: "configurable web spider; flag-published plugin configs — all potential races false",
		Paper: PaperRow{SLOC: 64933, NormalSec: 4.79, HybridSec: 4.88, RaceFuzzerSec: 4.81,
			HybridRaces: 29, RealRaces: 0, KnownRaces: -1, ExceptionPairs: 0, SimpleExceptions: 0, Probability: -1},
		Expect:       Expect{MinReal: 0, MaxReal: 0, MinPotential: 2, MinExceptionPairs: 0, MaxExceptionPairs: 0, MinProbability: 0},
		New:          func() Program { return Jspider(3, 6) },
		Phase1Trials: 6,
	})
	register(Benchmark{
		Name:        "jigsaw",
		Description: "W3C Jigsaw web-server skeleton; many unsynchronized statistics counters (real, benign)",
		Paper: PaperRow{SLOC: 381348, NormalSec: -1, HybridSec: -1, RaceFuzzerSec: 0.81,
			HybridRaces: 547, RealRaces: 36, KnownRaces: -1, ExceptionPairs: 0, SimpleExceptions: 0, Probability: 0.9},
		Expect:       Expect{MinReal: 4, MaxReal: -1, MinPotential: 6, MinExceptionPairs: 0, MaxExceptionPairs: 0, MinProbability: 0.4},
		New:          func() Program { return Jigsaw(3, 8) },
		Phase1Trials: 6,
	})
}
