package bench_test

import (
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/sched"
)

// These tests pin the *computational* behaviour of the kernel models: the
// partitioned, barrier-ordered state must be identical across schedules
// (that is what makes the accumulator races benign), while the racy
// accumulators are permitted — not required — to vary.

func runMoldyn(seed int64) bench.GrandeProbe {
	var p bench.GrandeProbe
	res := sched.Run(bench.Moldyn(3, 9, 2, &p), sched.Config{Seed: seed})
	if res.Deadlock != nil || len(res.Exceptions) != 0 {
		panic("moldyn run failed")
	}
	return p
}

func TestMoldynPartitionedStateScheduleIndependent(t *testing.T) {
	base := runMoldyn(1)
	if len(base.Pos) != 9 || len(base.Vel) != 9 {
		t.Fatalf("probe sizes: %d/%d", len(base.Pos), len(base.Vel))
	}
	for seed := int64(2); seed < 12; seed++ {
		p := runMoldyn(seed)
		for i := range base.Pos {
			if p.Pos[i] != base.Pos[i] || p.Vel[i] != base.Vel[i] {
				t.Fatalf("seed %d: particle %d state differs (%d,%d) vs (%d,%d) — partitioning broken",
					seed, i, p.Pos[i], p.Vel[i], base.Pos[i], base.Vel[i])
			}
		}
	}
}

func TestMoldynParticlesStayBounded(t *testing.T) {
	p := runMoldyn(7)
	for i, x := range p.Pos {
		if x < 0 || x > 10*1024 {
			t.Fatalf("particle %d escaped: %d", i, x)
		}
	}
	if p.Epot <= 0 {
		t.Fatalf("epot = %d, expected positive potential energy", p.Epot)
	}
}

func TestRaytracerPixelsScheduleIndependentAndScene(t *testing.T) {
	run := func(seed int64) bench.GrandeProbe {
		var p bench.GrandeProbe
		sched.Run(bench.Raytracer(3, 8, 8, &p), sched.Config{Seed: seed})
		return p
	}
	base := run(1)
	if len(base.Pixels) != 64 {
		t.Fatalf("pixels = %d", len(base.Pixels))
	}
	// The scene must actually render: both background and sphere pixels.
	background, lit := 0, 0
	for _, v := range base.Pixels {
		if v == 16 {
			background++
		} else {
			lit++
		}
	}
	if background == 0 || lit == 0 {
		t.Fatalf("degenerate render: background=%d lit=%d", background, lit)
	}
	for seed := int64(2); seed < 10; seed++ {
		p := run(seed)
		for i := range base.Pixels {
			if p.Pixels[i] != base.Pixels[i] {
				t.Fatalf("seed %d: pixel %d differs — row partitioning broken", seed, i)
			}
		}
	}
}

func TestRaytracerChecksumUsuallyConsistentButRacy(t *testing.T) {
	// The checksum equals the pixel sum when no lost update happened; under
	// scheduling that interleaves the read-modify-write it may be lower.
	// Across seeds it must never EXCEED the true sum.
	var base bench.GrandeProbe
	sched.Run(bench.Raytracer(3, 8, 8, &base), sched.Config{Seed: 1})
	trueSum := 0
	for _, v := range base.Pixels {
		trueSum += v
	}
	matches := 0
	for seed := int64(0); seed < 30; seed++ {
		var p bench.GrandeProbe
		sched.Run(bench.Raytracer(3, 8, 8, &p), sched.Config{Seed: seed})
		if p.Checksum > trueSum {
			t.Fatalf("seed %d: checksum %d exceeds true sum %d", seed, p.Checksum, trueSum)
		}
		if p.Checksum == trueSum {
			matches++
		}
	}
	if matches == 0 {
		t.Fatal("checksum never correct across 30 seeds — more than a benign race")
	}
}

func TestMontecarloResultsAndSumScheduleIndependent(t *testing.T) {
	run := func(seed int64) bench.GrandeProbe {
		var p bench.GrandeProbe
		sched.Run(bench.Montecarlo(3, 9, &p), sched.Config{Seed: seed})
		return p
	}
	base := run(1)
	if len(base.Results) != 9 || base.Sum == 0 {
		t.Fatalf("probe: %d results, sum %d", len(base.Results), base.Sum)
	}
	check := 0
	for _, r := range base.Results {
		if r < 1024 { // prices are floored at 1.0 in fixed point
			t.Fatalf("price underflow: %d", r)
		}
		check += r
	}
	if check != base.Sum {
		t.Fatalf("locked reduction %d != recomputed %d", base.Sum, check)
	}
	for seed := int64(2); seed < 10; seed++ {
		p := run(seed)
		if p.Sum != base.Sum {
			t.Fatalf("seed %d: sum %d differs from %d — per-task determinism broken", seed, p.Sum, base.Sum)
		}
	}
}

func TestSorGridScheduleIndependent(t *testing.T) {
	run := func(seed int64, pol sched.Policy) bench.GrandeProbe {
		var p bench.GrandeProbe
		res := sched.Run(bench.Sor(3, 8, 2, &p), sched.Config{Seed: seed, Policy: pol})
		if res.Deadlock != nil {
			t.Fatalf("sor deadlocked")
		}
		return p
	}
	base := run(1, nil)
	if len(base.Grid) != 64 {
		t.Fatalf("grid = %d", len(base.Grid))
	}
	// Same result under random, quantum and sequential scheduling: the
	// red-black barrier discipline makes the computation deterministic —
	// which is exactly why its hybrid warnings are all false positives.
	policies := []sched.Policy{nil, sched.NewQuantumPolicy(4), sched.SequentialPolicy{}}
	for seed := int64(2); seed < 8; seed++ {
		for pi, pol := range policies {
			p := run(seed, pol)
			for i := range base.Grid {
				if p.Grid[i] != base.Grid[i] {
					t.Fatalf("seed %d policy %d: grid[%d] differs — SOR not race-free", seed, pi, i)
				}
			}
		}
	}
}
