package bench_test

import (
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/sched"
)

// BenchmarkSteadyPooled measures the campaign inner loop in steady state:
// the program and policy are constructed once and every iteration recycles
// one scheduler tree through the trial pool. After warmup the grant engine
// allocates nothing per round — remaining allocs/op are the Result, the
// model's own fork-body closures, and goroutine start. Compare against the
// benchsnap sched suite's grant_serial_steady entry.
func BenchmarkSteadyPooled(b *testing.B) {
	prog := bench.GrantSerial(256)
	pol := sched.NewRandomPolicy()
	for i := 0; i < 16; i++ { // warm the pool and the stmt caches
		sched.Run(prog, sched.Config{Seed: int64(i), Policy: pol})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Run(prog, sched.Config{Seed: int64(i), Policy: pol})
	}
}
