package bench

import (
	"racefuzzer/internal/conc"
	"racefuzzer/internal/event"
)

// Scheduler micro-workloads for the performance harness (internal/benchsnap
// and the grant-loop benchmarks in internal/sched). Unlike the registered
// Table-1 models these are not race benchmarks — they are deliberately
// race-free programs shaped to stress specific scheduler paths:
//
//	GrantSerial  one runnable thread; pure grant-turnaround latency
//	GrantPing    two threads alternating over a mutex; 2-wide decision loop
//	GrantFanout  N always-runnable workers; wide enabled-set decisions
//
// They are intentionally NOT in the registry: cmd/benchtable measures race
// pipelines, these measure the substrate under them.

var (
	microStmtWork = event.StmtFor("micro:work")
	microStmtHit  = event.StmtFor("micro:hit")
)

// GrantSerial is the minimal grant loop: the main thread forks one worker
// that executes ops untracked statements. At any instant at most one thread
// is runnable, so every scheduler decision round sees a singleton enabled
// set — the measured cost is park/grant channel turnaround itself.
func GrantSerial(ops int) Program {
	return func(t *conc.Thread) {
		w := t.Fork("serial", func(c *conc.Thread) {
			for i := 0; i < ops; i++ {
				c.Nop(microStmtWork)
			}
		})
		t.Join(w)
	}
}

// GrantPing makes two workers alternate rounds of lock/touch/unlock on one
// mutex and one shared counter: the classic ping-pong. Both threads stay
// alive for the whole run, so the decision loop continually picks between
// two enabled threads and the lock hand-off exercises blocked→enabled
// transitions.
func GrantPing(rounds int) Program {
	return func(t *conc.Thread) {
		n := conc.NewIntVar(t, "n", 0)
		l := conc.NewMutex(t, "ping")
		body := func(c *conc.Thread) {
			for i := 0; i < rounds; i++ {
				l.Lock(c)
				n.AddAt(c, microStmtHit, 1)
				l.Unlock(c)
			}
		}
		a := t.Fork("ping0", body)
		b := t.Fork("ping1", body)
		t.Join(a)
		t.Join(b)
	}
}

// GrantFanout forks `threads` workers that each perform `ops` rounds of
// private work plus a brief critical section on a shared lock. With every
// worker runnable almost all the time, the decision loop's enabled set
// stays ~threads wide — the workload for measuring how grant latency
// scales with enabled-set size.
func GrantFanout(threads, ops int) Program {
	return func(t *conc.Thread) {
		sum := conc.NewIntVar(t, "sum", 0)
		l := conc.NewMutex(t, "fan")
		kids := conc.ForkN(t, "fan", threads, func(c *conc.Thread, i int) {
			for j := 0; j < ops; j++ {
				c.Nop(microStmtWork)
				l.Lock(c)
				sum.AddAt(c, microStmtHit, 1)
				l.Unlock(c)
			}
		})
		conc.JoinAll(t, kids)
	}
}
