package bench_test

import (
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/sched"
)

// TestRegistryComplete pins the Table 1 roster: every benchmark program of
// the paper's evaluation (plus the two figure examples) has a model.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"figure1", "figure2",
		"moldyn", "raytracer", "montecarlo", "sor",
		"cache4j", "hedc", "weblech", "jspider", "jigsaw",
		"vector", "arraylist", "linkedlist", "hashset", "treeset",
	}
	for _, name := range want {
		if _, ok := bench.ByName(name); !ok {
			t.Errorf("missing benchmark %q", name)
		}
	}
	if len(bench.All()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(bench.All()), len(want), bench.Names())
	}
	if _, ok := bench.ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent benchmark")
	}
}

// TestBenchmarksTerminate runs every model under several policies/seeds and
// checks termination without deadlock or abort (exceptions are allowed —
// some models throw by design).
func TestBenchmarksTerminate(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			policies := []func() sched.Policy{
				func() sched.Policy { return sched.NewRandomPolicy() },
				func() sched.Policy { return sched.NewRunToBlockPolicy(0.02) },
				func() sched.Policy { return sched.SequentialPolicy{} },
			}
			for pi, mk := range policies {
				for seed := int64(0); seed < 5; seed++ {
					res := sched.Run(b.New(), sched.Config{Seed: seed, Policy: mk(), MaxSteps: b.MaxSteps})
					if res.Deadlock != nil {
						t.Fatalf("policy %d seed %d: deadlock: %v", pi, seed, res.Deadlock)
					}
					if res.Aborted {
						t.Fatalf("policy %d seed %d: aborted after %d steps", pi, seed, res.Steps)
					}
				}
			}
		})
	}
}

// TestBenchmarkExpectations is the heart of the reproduction: the full
// two-phase pipeline on every model must land inside the Expect bounds —
// hybrid over-reports (potential ≥ real), RaceFuzzer confirms exactly the
// designed real races, and harmful pairs throw.
func TestBenchmarkExpectations(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 25
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			opts := core.Options{
				Seed:         12345,
				Phase1Trials: b.Phase1Trials,
				Phase2Trials: trials,
				MaxSteps:     b.MaxSteps,
			}
			rep := core.Analyze(b.New(), opts)
			e := b.Expect

			if got := len(rep.Potential); got < e.MinPotential {
				t.Errorf("potential pairs = %d, want ≥ %d (%v)", got, e.MinPotential, rep.Potential)
			}
			real := rep.RealCount()
			if real < e.MinReal {
				t.Errorf("real pairs = %d, want ≥ %d; reports:\n%s", real, e.MinReal, dumpPairs(rep))
			}
			if e.MaxReal >= 0 && real > e.MaxReal {
				t.Errorf("real pairs = %d, want ≤ %d; reports:\n%s", real, e.MaxReal, dumpPairs(rep))
			}
			if real > len(rep.Potential) {
				t.Errorf("real (%d) exceeds potential (%d) — impossible", real, len(rep.Potential))
			}
			exc := rep.ExceptionPairCount()
			if exc < e.MinExceptionPairs {
				t.Errorf("exception pairs = %d, want ≥ %d; reports:\n%s", exc, e.MinExceptionPairs, dumpPairs(rep))
			}
			if e.MaxExceptionPairs >= 0 && exc > e.MaxExceptionPairs {
				t.Errorf("exception pairs = %d, want ≤ %d; reports:\n%s", exc, e.MaxExceptionPairs, dumpPairs(rep))
			}
			if real > 0 {
				if p := rep.MeanProbability(); p < e.MinProbability {
					t.Errorf("mean hit probability = %.2f, want ≥ %.2f", p, e.MinProbability)
				}
			}
		})
	}
}

func dumpPairs(rep *core.Report) string {
	s := ""
	for _, p := range rep.Pairs {
		s += "  " + p.String() + "\n"
	}
	return s
}

// TestReplayAcrossBenchmarks: for every benchmark with a confirmed race,
// replaying the recorded FirstRaceSeed must recreate the race.
func TestReplayAcrossBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		if b.Expect.MinReal == 0 {
			continue
		}
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			opts := core.Options{Seed: 777, Phase1Trials: b.Phase1Trials, Phase2Trials: 40, MaxSteps: b.MaxSteps}
			pairs := core.DetectPotentialRaces(b.New(), opts)
			for i, pair := range pairs {
				pr := core.FuzzPair(b.New(), pair, i, opts)
				if !pr.IsReal {
					continue
				}
				run := core.Replay(b.New(), pair, pr.FirstRaceSeed, opts)
				if !run.RaceCreated {
					t.Fatalf("replay of %v seed %d did not recreate the race", pair, pr.FirstRaceSeed)
				}
				return // one replayed race per benchmark suffices
			}
			t.Fatalf("no real pair found to replay (potential: %v)", pairs)
		})
	}
}
