package bench

import (
	"racefuzzer/internal/collections"
	"racefuzzer/internal/conc"
	"racefuzzer/internal/event"
)

// workStmt labels the drivers' application "think time" between collection
// operations.
var workStmt = event.StmtFor("driver: application work")

// Drivers for the open programs of Table 1: the JDK collection classes,
// closed with the paper's multi-threaded test-driver recipe — "a test driver
// starts by creating two empty objects of the class … and a set of threads,
// where each thread executes different methods of either of the two objects
// concurrently" (§5.1). The drivers are deterministic scripts; all
// nondeterminism is scheduling.

// listDriver closes over a List constructor and exercises the §5.3 bug
// surface: containsAll/equals iterate one synchronized wrapper while other
// threads mutate it through its own lock.
func listDriver(mk func(t *conc.Thread, name string) collections.List) Program {
	return func(t *conc.Thread) {
		l1 := collections.NewSynchronizedList(t, "l1", mk(t, "raw1"))
		l2 := collections.NewSynchronizedList(t, "l2", mk(t, "raw2"))
		seed := collections.NewArrayList(t, "seedvals")
		for i := 0; i < 4; i++ {
			l1.Add(t, i)
			l2.Add(t, i)
			seed.Add(t, i)
		}
		workers := []*conc.Thread{
			t.Fork("containsAll", func(c *conc.Thread) {
				l1.ContainsAll(c, l2) // iterates l2 under l1's lock only
			}),
			t.Fork("removeAll", func(c *conc.Thread) {
				// Application work precedes the bulk mutation, so undirected
				// schedules rarely overlap it with a live iteration.
				for i := 0; i < 140; i++ {
					c.Nop(workStmt)
				}
				l2.RemoveAll(c, seed) // mutates l2 under l2's lock
			}),
			t.Fork("adder", func(c *conc.Thread) {
				for i := 0; i < 100; i++ {
					c.Nop(workStmt)
				}
				l2.Add(c, 10)
				l2.Add(c, 11)
			}),
			t.Fork("equals", func(c *conc.Thread) {
				l1.Equals(c, l2) // iterates both; l2 unsynchronized again
			}),
		}
		conc.JoinAll(t, workers)
	}
}

// setDriver exercises the containsAll and addAll paths the paper reports for
// HashSet and TreeSet.
func setDriver(mk func(t *conc.Thread, name string) collections.Set) Program {
	return func(t *conc.Thread) {
		s1 := collections.NewSynchronizedSet(t, "s1", mk(t, "raw1"))
		s2 := collections.NewSynchronizedSet(t, "s2", mk(t, "raw2"))
		extra := collections.NewArrayList(t, "extravals")
		for i := 0; i < 4; i++ {
			s1.Add(t, i)
			s2.Add(t, i)
			extra.Add(t, i+20)
		}
		workers := []*conc.Thread{
			t.Fork("containsAll", func(c *conc.Thread) {
				s1.ContainsAll(c, s2) // iterates s2 under s1's lock only
			}),
			t.Fork("addAll", func(c *conc.Thread) {
				s1.AddAll(c, s2) // same unsynchronized iteration of s2
			}),
			t.Fork("mutator", func(c *conc.Thread) {
				for i := 0; i < 140; i++ {
					c.Nop(workStmt)
				}
				s2.Add(c, 30)
				s2.Remove(c, 1)
				s2.Add(c, 31)
			}),
			t.Fork("grower", func(c *conc.Thread) {
				for i := 0; i < 100; i++ {
					c.Nop(workStmt)
				}
				s2.AddAll(c, extra)
			}),
		}
		conc.JoinAll(t, workers)
	}
}

// vectorDriver exercises JDK 1.1 Vector: synchronized mutators racing with
// the unsynchronized Enumeration. Only additions run concurrently with the
// enumeration, so every race is benign (no exceptions) — matching the
// paper's vector row (9 real races, 0 exceptions).
func vectorDriver() Program {
	return func(t *conc.Thread) {
		v1 := collections.NewVector(t, "v1")
		v2 := collections.NewVector(t, "v2")
		for i := 0; i < 4; i++ {
			v1.AddElement(t, i)
			v2.AddElement(t, i*2)
		}
		workers := []*conc.Thread{
			t.Fork("enumerator", func(c *conc.Thread) {
				e := v1.Elements(c)
				sum := 0
				for e.HasNext(c) {
					sum += e.Next(c)
				}
				_ = sum
			}),
			t.Fork("adder", func(c *conc.Thread) {
				v1.AddElement(c, 100)
				v1.AddElement(c, 101)
				v1.AddElement(c, 102)
			}),
			t.Fork("reader", func(c *conc.Thread) {
				v1.Contains(c, 2)
				_ = v1.Size(c)
				v1.ElementAt(c, 0)
			}),
			t.Fork("other", func(c *conc.Thread) {
				v2.RemoveElement(c, 2)
				e := v2.Elements(c)
				for e.HasNext(c) {
					e.Next(c)
				}
			}),
		}
		conc.JoinAll(t, workers)
	}
}

func init() {
	register(Benchmark{
		Name:        "vector",
		Description: "JDK 1.1 Vector: synchronized methods vs unsynchronized Enumeration (real, benign)",
		Paper: PaperRow{SLOC: 709, NormalSec: 0.11, HybridSec: 0.25, RaceFuzzerSec: 0.2,
			HybridRaces: 9, RealRaces: 9, KnownRaces: 9, ExceptionPairs: 0, SimpleExceptions: 0, Probability: 0.94},
		Expect:       Expect{MinReal: 2, MaxReal: -1, MinPotential: 2, MinExceptionPairs: 0, MaxExceptionPairs: 0, MinProbability: 0.5},
		New:          func() Program { return vectorDriver() },
		Phase1Trials: 6,
	})
	register(Benchmark{
		Name:        "arraylist",
		Description: "JDK 1.4.2 ArrayList via Collections.synchronizedList: containsAll/equals iterate without the argument's lock",
		Paper: PaperRow{SLOC: 5866, NormalSec: 0.16, HybridSec: 0.26, RaceFuzzerSec: 0.24,
			HybridRaces: 14, RealRaces: 7, KnownRaces: -1, ExceptionPairs: 7, SimpleExceptions: 0, Probability: 0.55},
		Expect: Expect{MinReal: 2, MaxReal: -1, MinPotential: 3, MinExceptionPairs: 1, MaxExceptionPairs: -1, MinProbability: 0.2},
		New: func() Program {
			return listDriver(func(t *conc.Thread, n string) collections.List { return collections.NewArrayList(t, n) })
		},
		Phase1Trials: 6,
	})
	register(Benchmark{
		Name:        "linkedlist",
		Description: "JDK 1.4.2 LinkedList via Collections.synchronizedList: same inherited containsAll/equals bug",
		Paper: PaperRow{SLOC: 5979, NormalSec: 0.16, HybridSec: 0.26, RaceFuzzerSec: 0.22,
			HybridRaces: 12, RealRaces: 12, KnownRaces: -1, ExceptionPairs: 5, SimpleExceptions: 0, Probability: 0.85},
		Expect: Expect{MinReal: 2, MaxReal: -1, MinPotential: 3, MinExceptionPairs: 1, MaxExceptionPairs: -1, MinProbability: 0.2},
		New: func() Program {
			return listDriver(func(t *conc.Thread, n string) collections.List { return collections.NewLinkedList(t, n) })
		},
		Phase1Trials: 6,
	})
	register(Benchmark{
		Name:        "hashset",
		Description: "JDK 1.4.2 HashSet via Collections.synchronizedSet: containsAll/addAll iterate without the argument's lock",
		Paper: PaperRow{SLOC: 7086, NormalSec: 0.16, HybridSec: 0.26, RaceFuzzerSec: 0.25,
			HybridRaces: 11, RealRaces: 11, KnownRaces: -1, ExceptionPairs: 8, SimpleExceptions: 1, Probability: 0.54},
		Expect: Expect{MinReal: 2, MaxReal: -1, MinPotential: 3, MinExceptionPairs: 1, MaxExceptionPairs: -1, MinProbability: 0.2},
		New: func() Program {
			return setDriver(func(t *conc.Thread, n string) collections.Set { return collections.NewHashSet(t, n) })
		},
		Phase1Trials: 6,
	})
	register(Benchmark{
		Name:        "treeset",
		Description: "JDK 1.4.2 TreeSet via Collections.synchronizedSet: same containsAll/addAll bug over a BST",
		Paper: PaperRow{SLOC: 7532, NormalSec: 0.17, HybridSec: 0.26, RaceFuzzerSec: 0.24,
			HybridRaces: 13, RealRaces: 8, KnownRaces: -1, ExceptionPairs: 8, SimpleExceptions: 1, Probability: 0.41},
		Expect: Expect{MinReal: 2, MaxReal: -1, MinPotential: 3, MinExceptionPairs: 1, MaxExceptionPairs: -1, MinProbability: 0.2},
		New: func() Program {
			return setDriver(func(t *conc.Thread, n string) collections.Set { return collections.NewTreeSet(t, n) })
		},
		Phase1Trials: 6,
	})
}
