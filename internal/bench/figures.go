package bench

import (
	"errors"

	"racefuzzer/internal/conc"
	"racefuzzer/internal/event"
)

// The example programs of the paper's Figures 1 and 2, with statement labels
// matching the paper's line numbers so reports read like the paper.

// Errors thrown by the figure programs.
var (
	ErrError1 = errors.New("ERROR1: figure1 thread1 observed z==1")
	ErrError2 = errors.New("ERROR2: figure1 thread2 observed x!=1")
	ErrFig2   = errors.New("ERROR: figure2 thread1 observed x==0")
)

// Figure-1 statement labels (the paper's line numbers).
var (
	Fig1Stmt1  = event.StmtFor("figure1:1 x=1")
	Fig1Stmt3  = event.StmtFor("figure1:3 y=1")
	Fig1Stmt5  = event.StmtFor("figure1:5 if(z==1)")
	Fig1Stmt7  = event.StmtFor("figure1:7 z=1")
	Fig1Stmt9  = event.StmtFor("figure1:9 if(y==1)")
	Fig1Stmt10 = event.StmtFor("figure1:10 if(x!=1)")
)

// Fig1PairZ is the real race of Figure 1 (statements 5 and 7, variable z).
var Fig1PairZ = event.MakeStmtPair(Fig1Stmt5, Fig1Stmt7)

// Fig1PairX is the false alarm of Figure 1 (statements 1 and 10, variable x;
// implicitly synchronized by y under lock L).
var Fig1PairX = event.MakeStmtPair(Fig1Stmt1, Fig1Stmt10)

// Figure1 is the paper's Figure 1: a two-threaded program with one real race
// (on z) and one apparent-but-false race (on x). Hybrid detection reports
// both pairs; RaceFuzzer confirms only (5,7) and reaches ERROR1 with
// probability ½ when it resolves the race z-write-first.
func Figure1() Program {
	return func(t *conc.Thread) {
		x := conc.NewVar(t, "x", 0)
		y := conc.NewVar(t, "y", 0)
		z := conc.NewVar(t, "z", 0)
		l := conc.NewMutex(t, "L")

		t1 := t.Fork("thread1", func(c *conc.Thread) {
			x.SetAt(c, Fig1Stmt1, 1)        // 1: x = 1
			l.Lock(c)                       // 2: lock(L)
			y.SetAt(c, Fig1Stmt3, 1)        // 3: y = 1
			l.Unlock(c)                     // 4: unlock(L)
			if z.GetAt(c, Fig1Stmt5) == 1 { // 5: if (z == 1)
				c.Throw(ErrError1) // 6: ERROR1
			}
		})
		t2 := t.Fork("thread2", func(c *conc.Thread) {
			z.SetAt(c, Fig1Stmt7, 1)        // 7: z = 1
			l.Lock(c)                       // 8: lock(L)
			if y.GetAt(c, Fig1Stmt9) == 1 { // 9: if (y == 1)
				if x.GetAt(c, Fig1Stmt10) != 1 { // 10: if (x != 1)
					c.Throw(ErrError2) // 11: ERROR2
				}
			}
			l.Unlock(c) // 14: unlock(L)
		})
		t.Join(t1)
		t.Join(t2)
	}
}

// Figure-2 statement labels.
var (
	Fig2Stmt8  = event.StmtFor("figure2:8 if(x==0)")
	Fig2Stmt10 = event.StmtFor("figure2:10 x=1")
	fig2StmtF  = event.StmtFor("figure2:f_i()")
)

// Fig2Pair is the real race of Figure 2 (statements 8 and 10, variable x).
var Fig2Pair = event.MakeStmtPair(Fig2Stmt8, Fig2Stmt10)

// Figure2 is the paper's Figure 2, parameterized by prefixLen — the number
// of untracked statements (the f1()…f5() calls) thread1 executes inside the
// lock before reading x. The argument of §3.2: a simple random scheduler's
// chance of bringing statements 8 and 10 temporally next to each other
// decays with prefixLen, while RaceFuzzer creates the race with probability
// 1 and reaches ERROR with probability ½ independent of prefixLen.
func Figure2(prefixLen int) Program {
	return func(t *conc.Thread) {
		x := conc.NewVar(t, "x", 0)
		l := conc.NewMutex(t, "L")

		t1 := t.Fork("thread1", func(c *conc.Thread) {
			l.Lock(c) // 1: lock(L)
			for i := 0; i < prefixLen; i++ {
				c.Nop(fig2StmtF) // 2..6: f1()…f5()
			}
			l.Unlock(c)                     // 7: unlock(L)
			if x.GetAt(c, Fig2Stmt8) == 0 { // 8: if (x == 0)
				c.Throw(ErrFig2) // 9: ERROR
			}
		})
		t2 := t.Fork("thread2", func(c *conc.Thread) {
			x.SetAt(c, Fig2Stmt10, 1) // 10: x = 1
			l.Lock(c)                 // 11: lock(L)
			c.Nop(fig2StmtF)          // 12: f6()
			l.Unlock(c)               // 13: unlock(L)
		})
		t.Join(t1)
		t.Join(t2)
	}
}

func init() {
	register(Benchmark{
		Name:        "figure1",
		Description: "paper Figure 1: real race on z, false alarm on x, ERROR1 reachable",
		Paper:       PaperRow{SLOC: 14, HybridRaces: 2, RealRaces: 1, KnownRaces: 1, ExceptionPairs: 1, SimpleExceptions: 0, Probability: 1.0, NormalSec: -1, HybridSec: -1, RaceFuzzerSec: -1},
		Expect:      Expect{MinReal: 1, MaxReal: 1, MinPotential: 2, MinExceptionPairs: 1, MaxExceptionPairs: 1, MinProbability: 0.95},
		New:         func() Program { return Figure1() },
		// Statement 10 only executes in schedules where thread1's locked
		// region runs first; a few extra phase-1 observations make the x
		// false alarm reliably appear.
		Phase1Trials: 8,
	})
	register(Benchmark{
		Name:        "figure2",
		Description: "paper Figure 2: hard-to-hit race on x; RaceFuzzer hits with p=1, ERROR with p=0.5",
		Paper:       PaperRow{SLOC: 13, HybridRaces: 1, RealRaces: 1, KnownRaces: 1, ExceptionPairs: 1, SimpleExceptions: 0, Probability: 1.0, NormalSec: -1, HybridSec: -1, RaceFuzzerSec: -1},
		Expect:      Expect{MinReal: 1, MaxReal: 1, MinPotential: 1, MinExceptionPairs: 1, MaxExceptionPairs: 1, MinProbability: 0.95},
		New:         func() Program { return Figure2(40) },
	})
}

// Figure2Noisy is Figure 2 with `noise` additional bystander threads that
// compute and synchronize but never touch x. Bystanders dilute every
// undirected scheduler's chance of aligning statements 8 and 10, while
// RaceFuzzer's postponement is immune to them — the robustness extension
// experiment in EXPERIMENTS.md.
func Figure2Noisy(prefixLen, noise int) Program {
	base := Figure2(prefixLen)
	noiseStmt := event.StmtFor("figure2noisy: bystander work")
	return func(t *conc.Thread) {
		noiseLock := conc.NewMutex(t, "noiseLock")
		scratch := conc.NewIntVar(t, "scratch", 0)
		bystanders := conc.ForkN(t, "bystander", noise, func(c *conc.Thread, i int) {
			for k := 0; k < 12; k++ {
				c.Nop(noiseStmt)
				noiseLock.Lock(c)
				scratch.Add(c, 1)
				noiseLock.Unlock(c)
			}
		})
		base(t)
		conc.JoinAll(t, bystanders)
	}
}
