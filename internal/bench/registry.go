// Package bench contains Go models of every benchmark program in the
// paper's evaluation (Table 1) plus the example programs of Figures 1 and 2.
// Each model is a faithful skeleton of the original Java program's
// concurrency structure — the thread/lock/shared-variable topology in which
// the paper's races live — written against the conc API so every shared
// access and synchronization operation is visible to the schedulers and
// detectors. See DESIGN.md ("Substitutions") for why skeletons preserve the
// behaviour under study.
package bench

import (
	"fmt"

	"racefuzzer/internal/sched"
)

// Program is a model program (main-thread body).
type Program = func(*sched.Thread)

// PaperRow carries the original Table 1 numbers for one benchmark, used by
// EXPERIMENTS.md comparisons. -1 encodes "-" (not reported).
type PaperRow struct {
	SLOC             int
	NormalSec        float64 // average normal runtime (s); -1 if not reported
	HybridSec        float64 // >3600 encoded as 3600
	RaceFuzzerSec    float64
	HybridRaces      int     // column 6: potential races from hybrid detection
	RealRaces        int     // column 7: real races confirmed by RaceFuzzer
	KnownRaces       int     // column 8: previously known real races; -1 = "-"
	ExceptionPairs   int     // column 9: racing pairs that threw an exception
	SimpleExceptions int     // column 10: exceptions under the default scheduler
	Probability      float64 // column 11: probability of hitting a race; -1 = "-"
}

// Expect records what this repository's model is built to exhibit; tests
// assert these (they are model ground truth, independent of the paper's
// absolute counts).
type Expect struct {
	// MinReal and MaxReal bound the number of distinct real racing statement
	// pairs RaceFuzzer must confirm in the model (MaxReal = -1: no upper
	// bound asserted). For models built around designed races the two
	// coincide; for library drivers the exact count is emergent.
	MinReal int
	MaxReal int
	// MinPotential is a lower bound on hybrid-reported pairs (the model
	// contains at least this many potential pairs including false alarms).
	MinPotential int
	// MinExceptionPairs is a lower bound on real pairs whose random
	// resolution throws a model exception.
	MinExceptionPairs int
	// MaxExceptionPairs is an upper bound (-1 = not asserted); 0 asserts the
	// model's races are all benign.
	MaxExceptionPairs int
	// MinProbability is a lower bound on the mean race-hit probability over
	// real pairs; 0 when MinReal == 0.
	MinProbability float64
}

// Benchmark is one registry entry.
type Benchmark struct {
	Name        string
	Description string
	Paper       PaperRow
	Expect      Expect
	// New returns a fresh program instance. Models close over no state, so
	// the same Benchmark can run any number of executions.
	New func() Program
	// Phase1Trials overrides the default number of phase-1 observations for
	// models whose rarer interleavings need a few more samples (0 = default).
	Phase1Trials int
	// MaxSteps overrides the per-run step bound (0 = default).
	MaxSteps int
}

var registry []Benchmark

func register(b Benchmark) {
	registry = append(registry, b)
}

// All returns every registered benchmark in registration (Table 1) order.
func All() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	return out
}

// ByName looks a benchmark up by name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns the registered benchmark names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name
	}
	return out
}

// MustByName is ByName that panics on unknown names (CLI convenience).
func MustByName(name string) Benchmark {
	b, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("bench: unknown benchmark %q (have %v)", name, Names()))
	}
	return b
}
