package bench

import (
	"racefuzzer/internal/conc"
	"racefuzzer/internal/event"
)

// Models of the Java Grande Forum kernels (moldyn, montecarlo, raytracer)
// and ETH's sor. Each preserves the original's concurrency skeleton —
// barrier-phased data parallelism over partitioned arrays with the known
// races in unsynchronized shared accumulators — and carries a faithful
// (integer fixed-point) rendition of the original's computation, so the
// instrumented access patterns resemble the real kernels' rather than
// placeholder loops.

// fx is the fixed-point scale used by the kernels (values are ints scaled
// by fx, keeping the models deterministic across platforms).
const fx = 1024

// GrandeProbe captures a kernel's final state for behavioural tests: the
// partitioned, barrier-ordered state (positions, grids, pixels, results) is
// schedule-independent, while the racy accumulators (epot, vir, checksum)
// need not be — the observable meaning of "benign race".
type GrandeProbe struct {
	Pos, Vel, Grid, Pixels, Results []int
	Epot, Vir, Checksum, Sum        int
}

// Moldyn statement labels for the designed (benign) races.
var (
	MoldynEpotStmt = event.StmtFor("moldyn: epot += e (unsynchronized)")
	MoldynVirStmt  = event.StmtFor("moldyn: vir += v (unsynchronized)")
)

// Moldyn models the molecular-dynamics kernel: particles with positions and
// velocities, a Lennard-Jones-flavoured pairwise force phase, and a Verlet
// update phase, separated by cyclic barriers. Partitioned arrays make the
// compute race-free; the two real (benign) races are the unsynchronized
// accumulations into the global epot and vir sums — the two races the paper
// reports discovering in moldyn, missed by previous dynamic tools.
func Moldyn(nw, particles, steps int, probe ...*GrandeProbe) Program {
	return func(t *conc.Thread) {
		pos := conc.NewArray[int](t, "pos", particles)
		vel := conc.NewArray[int](t, "vel", particles)
		force := conc.NewArray[int](t, "force", particles)
		epot := conc.NewIntVar(t, "epot", 0)
		vir := conc.NewIntVar(t, "vir", 0)
		ekin := conc.NewIntVar(t, "ekin", 0)
		ekinLock := conc.NewMutex(t, "ekinLock")
		bar := conc.NewBarrier(t, "barrier", nw)

		// Initial lattice: evenly spaced positions, alternating velocities.
		for i := 0; i < particles; i++ {
			pos.Set(t, i, (i+1)*fx)
			if i%2 == 0 {
				vel.Set(t, i, fx/8)
			} else {
				vel.Set(t, i, -fx/8)
			}
		}

		workers := conc.ForkN(t, "worker", nw, func(c *conc.Thread, id int) {
			lo := id * particles / nw
			hi := (id + 1) * particles / nw
			for step := 0; step < steps; step++ {
				// Force phase: Lennard-Jones-flavoured pairwise interaction.
				// Reads cross partitions; writes stay in the own partition.
				localE, localV := 0, 0
				for p := lo; p < hi; p++ {
					xp := pos.Get(c, p)
					f := 0
					for q := 0; q < particles; q++ {
						if q == p {
							continue
						}
						d := xp - pos.Get(c, q)
						if d < 0 {
							d = -d
						}
						if d == 0 {
							d = 1
						}
						// Repulsive ~1/d² and attractive ~1/d terms, fixed point.
						rep := (fx * fx) / (d * d / fx)
						att := (fx * fx) / d
						f += rep - att/2
						localE += rep/2 + att/4
						localV += rep / 4
					}
					force.Set(c, p, f)
				}
				// The two known races: global reductions without a lock
				// (read-modify-write on a shared accumulator).
				epot.AddAt(c, MoldynEpotStmt, localE)
				vir.AddAt(c, MoldynVirStmt, localV)

				bar.Await(c)

				// Update phase: velocity-Verlet-style integration on the own
				// partition, plus a properly locked kinetic-energy reduction.
				localK := 0
				for p := lo; p < hi; p++ {
					v := vel.Get(c, p) + force.Get(c, p)/(fx*4)
					// Reflective walls keep the system bounded.
					x := pos.Get(c, p) + v/4
					if x < 0 {
						x, v = -x, -v
					}
					if x > (particles+1)*fx {
						x, v = 2*(particles+1)*fx-x, -v
					}
					vel.Set(c, p, v)
					pos.Set(c, p, x)
					localK += v * v / fx
				}
				ekinLock.Lock(c)
				ekin.Add(c, localK)
				ekinLock.Unlock(c)

				bar.Await(c)
			}
		})
		conc.JoinAll(t, workers)
		if len(probe) > 0 {
			pr := probe[0]
			for i := 0; i < particles; i++ {
				pr.Pos = append(pr.Pos, pos.Peek(i))
				pr.Vel = append(pr.Vel, vel.Peek(i))
			}
			pr.Epot = epot.Peek()
			pr.Vir = vir.Peek()
		}
	}
}

// RaytracerChecksumRead/Write label the kernel's known checksum race.
var (
	RaytracerChecksumRead  = event.StmtFor("raytracer: read checksum")
	RaytracerChecksumWrite = event.StmtFor("raytracer: write checksum")
)

// sphere is one scene object of the raytracer model (fixed-point units).
type sphere struct {
	cx, cy, cz int
	r2         int // radius²
	shade      int
}

// Raytracer models the ray-tracing kernel: an actual (integer fixed-point)
// ray–sphere intersection per pixel over a small scene, rows distributed
// cyclically over the workers (the JGF distribution), pixels written to
// disjoint slots — and the kernel's famous real race: the global checksum
// accumulated without synchronization, giving two racing statement pairs
// (read–write and write–write).
func Raytracer(nw, rows, cols int, probe ...*GrandeProbe) Program {
	scene := []sphere{
		{cx: 0, cy: 0, cz: 6 * fx, r2: fx * fx / 3, shade: 200},
		{cx: fx / 2, cy: fx / 2, cz: 9 * fx, r2: fx * fx / 8, shade: 120},
		{cx: -fx / 2, cy: -fx / 4, cz: 12 * fx, r2: fx * fx / 2, shade: 80},
	}
	return func(t *conc.Thread) {
		pixels := conc.NewArray[int](t, "pixels", rows*cols)
		checksum := conc.NewVar(t, "checksum", 0)

		workers := conc.ForkN(t, "renderer", nw, func(c *conc.Thread, id int) {
			for r := id; r < rows; r += nw { // interleaved row ownership
				rowSum := 0
				for col := 0; col < cols; col++ {
					// Primary ray through the pixel (orthographic-ish).
					ox := (2*col - cols) * fx / cols
					oy := (2*r - rows) * fx / rows
					v := 16 // background
					// Nearest-hit search over the scene.
					best := 1 << 30
					for _, s := range scene {
						// Project ray origin offset against sphere center;
						// hit if the squared lateral distance is inside r².
						dx := ox - s.cx
						dy := oy - s.cy
						lat := dx*dx + dy*dy
						if lat < s.r2 && s.cz < best {
							best = s.cz
							// Cheap Lambert-ish shading by depth of hit.
							depth := s.r2 - lat
							v = s.shade + depth/(s.r2/64+1)
						}
					}
					v %= 256
					pixels.Set(c, r*cols+col, v)
					rowSum += v
				}
				// JGF raytracer: checksum += rowSum, unsynchronized.
				cur := checksum.GetAt(c, RaytracerChecksumRead)
				checksum.SetAt(c, RaytracerChecksumWrite, cur+rowSum)
			}
		})
		conc.JoinAll(t, workers)
		if len(probe) > 0 {
			pr := probe[0]
			for i := 0; i < rows*cols; i++ {
				pr.Pixels = append(pr.Pixels, pixels.Peek(i))
			}
			pr.Checksum = checksum.Peek()
		}
	}
}

// mcNoise is a tiny deterministic hash so every Monte-Carlo task computes
// the same path regardless of scheduling (no shared RNG stream).
func mcNoise(task, step int) int {
	x := uint64(task)*0x9e3779b97f4a7c15 + uint64(step)*0xbf58476d1ce4e5b9
	x ^= x >> 29
	x *= 0x94d049bb133111eb
	x ^= x >> 32
	return int(x % 21)
}

// Montecarlo models the Monte-Carlo kernel: each task simulates a
// random-walk price path (deterministic per task), publishes the result in
// its own slot, and bumps a tasks-done counter without synchronization —
// the single real, benign race. The final reduction is properly locked.
func Montecarlo(nw, runs int, probe ...*GrandeProbe) Program {
	doneStmt := event.StmtFor("montecarlo: tasksDone++ (unsynchronized)")
	pathStmt := event.StmtFor("montecarlo: path step")
	return func(t *conc.Thread) {
		results := conc.NewArray[int](t, "results", runs)
		tasksDone := conc.NewIntVar(t, "tasksDone", 0)
		sum := conc.NewIntVar(t, "sum", 0)
		sumLock := conc.NewMutex(t, "sumLock")

		workers := conc.ForkN(t, "sim", nw, func(c *conc.Thread, id int) {
			for r := id; r < runs; r += nw {
				// Geometric-random-walk flavoured path in fixed point.
				price := 100 * fx
				for s := 0; s < 6; s++ {
					drift := price / 256
					shock := (mcNoise(r, s) - 10) * fx / 16
					price += drift + shock
					if price < fx {
						price = fx
					}
					c.Nop(pathStmt)
				}
				results.Set(c, r, price)        // per-task slot: no race
				tasksDone.AddAt(c, doneStmt, 1) // the known benign race
			}
			// Properly synchronized reduction of the own tasks.
			local := 0
			for r := id; r < runs; r += nw {
				local += results.Get(c, r)
			}
			sumLock.Lock(c)
			sum.Add(c, local)
			sumLock.Unlock(c)
		})
		conc.JoinAll(t, workers)
		if len(probe) > 0 {
			pr := probe[0]
			for i := 0; i < runs; i++ {
				pr.Results = append(pr.Results, results.Peek(i))
			}
			pr.Sum = sum.Peek()
		}
	}
}

// Sor models the successive over-relaxation benchmark: a red-black
// Gauss-Seidel sweep with barrier-separated half-iterations and an
// over-relaxation factor ω. Neighbour reads cross partition boundaries, so
// the hybrid detector (which ignores the barrier's lock operations) reports
// potential races — every one of them false: the barrier orders the phases,
// and RaceFuzzer confirms none is real. This is Table 1's sor row:
// 8 potential, 0 real.
func Sor(nw, n, iters int, probe ...*GrandeProbe) Program {
	const omega = 3 * fx / 2 // ω = 1.5 in fixed point
	return func(t *conc.Thread) {
		grid := conc.NewArray[int](t, "G", n*n)
		bar := conc.NewBarrier(t, "barrier", nw)
		for i := 0; i < n*n; i++ {
			grid.Set(t, i, (i%7)*fx/4)
		}
		workers := conc.ForkN(t, "sweep", nw, func(c *conc.Thread, id int) {
			loRow := 1 + id*(n-2)/nw
			hiRow := 1 + (id+1)*(n-2)/nw
			for it := 0; it < iters; it++ {
				for color := 0; color < 2; color++ {
					for r := loRow; r < hiRow; r++ {
						for col := 1; col < n-1; col++ {
							if (r+col)%2 != color {
								continue
							}
							up := grid.Get(c, (r-1)*n+col) // may cross partitions
							down := grid.Get(c, (r+1)*n+col)
							left := grid.Get(c, r*n+col-1)
							right := grid.Get(c, r*n+col+1)
							old := grid.Get(c, r*n+col)
							relaxed := old + omega*((up+down+left+right)/4-old)/fx
							grid.Set(c, r*n+col, relaxed)
						}
					}
					bar.Await(c)
				}
			}
		})
		conc.JoinAll(t, workers)
		if len(probe) > 0 {
			pr := probe[0]
			for i := 0; i < n*n; i++ {
				pr.Grid = append(pr.Grid, grid.Peek(i))
			}
		}
	}
}

func init() {
	register(Benchmark{
		Name:        "moldyn",
		Description: "Java Grande molecular dynamics: barrier phases; 2 real benign races on epot/vir reductions",
		Paper: PaperRow{SLOC: 1352, NormalSec: 2.07, HybridSec: 3600, RaceFuzzerSec: 42.37,
			HybridRaces: 59, RealRaces: 2, KnownRaces: 0, ExceptionPairs: 0, SimpleExceptions: 0, Probability: 1.0},
		Expect:       Expect{MinReal: 2, MaxReal: -1, MinPotential: 3, MinExceptionPairs: 0, MaxExceptionPairs: 0, MinProbability: 0.6},
		New:          func() Program { return Moldyn(3, 9, 2) },
		Phase1Trials: 4,
	})
	register(Benchmark{
		Name:        "raytracer",
		Description: "Java Grande raytracer: disjoint rows; 2 real races (checksum read–write, write–write)",
		Paper: PaperRow{SLOC: 1924, NormalSec: 3.25, HybridSec: 3600, RaceFuzzerSec: 3.81,
			HybridRaces: 2, RealRaces: 2, KnownRaces: 2, ExceptionPairs: 0, SimpleExceptions: 0, Probability: 1.0},
		Expect:       Expect{MinReal: 2, MaxReal: 2, MinPotential: 2, MinExceptionPairs: 0, MaxExceptionPairs: 0, MinProbability: 0.6},
		New:          func() Program { return Raytracer(3, 6, 4) },
		Phase1Trials: 4,
	})
	register(Benchmark{
		Name:        "montecarlo",
		Description: "Java Grande Monte Carlo: per-task result slots; 1 real benign race on tasksDone",
		Paper: PaperRow{SLOC: 3619, NormalSec: 3.48, HybridSec: 3600, RaceFuzzerSec: 6.44,
			HybridRaces: 5, RealRaces: 1, KnownRaces: 1, ExceptionPairs: 0, SimpleExceptions: 0, Probability: 1.0},
		Expect:       Expect{MinReal: 1, MaxReal: 1, MinPotential: 1, MinExceptionPairs: 0, MaxExceptionPairs: 0, MinProbability: 0.6},
		New:          func() Program { return Montecarlo(3, 9) },
		Phase1Trials: 4,
	})
	register(Benchmark{
		Name:        "sor",
		Description: "ETH successive over-relaxation: red-black barrier phases; potential races, none real",
		Paper: PaperRow{SLOC: 17689, NormalSec: 0.16, HybridSec: 0.35, RaceFuzzerSec: 0.23,
			HybridRaces: 8, RealRaces: 0, KnownRaces: 0, ExceptionPairs: 0, SimpleExceptions: 0, Probability: -1},
		Expect:       Expect{MinReal: 0, MaxReal: 0, MinPotential: 1, MinExceptionPairs: 0, MaxExceptionPairs: 0, MinProbability: 0},
		New:          func() Program { return Sor(3, 8, 2) },
		Phase1Trials: 4,
	})
}
