package vclock

import (
	"testing"
	"testing/quick"

	"racefuzzer/internal/event"
)

// fromSlice builds a clock from components (test helper).
func fromSlice(xs []int32) *VC {
	v := New()
	for i, x := range xs {
		if x < 0 {
			x = -x
		}
		v.Set(event.ThreadID(i), x%100)
	}
	return v
}

func TestBasicOps(t *testing.T) {
	v := New()
	if v.Get(3) != 0 {
		t.Fatal("fresh clock not zero")
	}
	v.Tick(2)
	v.Tick(2)
	v.Tick(0)
	if v.Get(2) != 2 || v.Get(0) != 1 || v.Get(1) != 0 {
		t.Fatalf("clock = %v", v)
	}
	c := v.Copy()
	c.Tick(2)
	if v.Get(2) != 2 {
		t.Fatal("Copy is not independent")
	}
	if v.String() == "" {
		t.Fatal("empty String")
	}
}

func TestJoinIsComponentwiseMax(t *testing.T) {
	a := fromSlice([]int32{1, 5, 0, 2})
	b := fromSlice([]int32{3, 1, 4})
	a.Join(b)
	want := []int32{3, 5, 4, 2}
	for i, w := range want {
		if a.Get(event.ThreadID(i)) != w {
			t.Fatalf("join[%d] = %d, want %d", i, a.Get(event.ThreadID(i)), w)
		}
	}
}

func TestLessEqAndConcurrent(t *testing.T) {
	a := fromSlice([]int32{1, 2})
	b := fromSlice([]int32{2, 2})
	if !a.LessEq(b) || b.LessEq(a) {
		t.Fatal("LessEq wrong on ordered clocks")
	}
	c := fromSlice([]int32{0, 3})
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Fatal("Concurrent wrong on incomparable clocks")
	}
	if a.Concurrent(a.Copy()) {
		t.Fatal("clock concurrent with itself")
	}
	if !a.Equal(a.Copy()) {
		t.Fatal("Equal wrong")
	}
	// Missing components are zero: {1,2} vs {1,2,0,0}.
	d := fromSlice([]int32{1, 2, 0, 0})
	if !a.Equal(d) {
		t.Fatal("trailing zeros must not affect equality")
	}
}

// Property: LessEq is a partial order — reflexive, antisymmetric (up to
// Equal), transitive.
func TestQuickPartialOrder(t *testing.T) {
	reflexive := func(xs []int32) bool {
		v := fromSlice(xs)
		return v.LessEq(v)
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error(err)
	}
	antisym := func(xs, ys []int32) bool {
		a, b := fromSlice(xs), fromSlice(ys)
		if a.LessEq(b) && b.LessEq(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	trans := func(xs, ys, zs []int32) bool {
		a, b, c := fromSlice(xs), fromSlice(ys), fromSlice(zs)
		// Force a ≤ b ≤ c by joining.
		b.Join(a)
		c.Join(b)
		return a.LessEq(c)
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
}

// Property: Join is the least upper bound — both operands ≤ join, and join
// is ≤ any other upper bound.
func TestQuickJoinIsLUB(t *testing.T) {
	lub := func(xs, ys []int32) bool {
		a, b := fromSlice(xs), fromSlice(ys)
		j := a.Copy()
		j.Join(b)
		if !a.LessEq(j) || !b.LessEq(j) {
			return false
		}
		// Any other upper bound u ≥ j.
		u := a.Copy()
		u.Join(b)
		u.Tick(0)
		return j.LessEq(u)
	}
	if err := quick.Check(lub, nil); err != nil {
		t.Error(err)
	}
}

// Property: Join is commutative, associative, idempotent.
func TestQuickJoinAlgebra(t *testing.T) {
	comm := func(xs, ys []int32) bool {
		a1, b1 := fromSlice(xs), fromSlice(ys)
		a1.Join(b1)
		b2, a2 := fromSlice(ys), fromSlice(xs)
		b2.Join(a2)
		return a1.Equal(b2)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	idem := func(xs []int32) bool {
		a := fromSlice(xs)
		b := a.Copy()
		a.Join(b)
		return a.Equal(b)
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Error(err)
	}
	assoc := func(xs, ys, zs []int32) bool {
		l := fromSlice(xs)
		l2 := fromSlice(ys)
		l2.Join(fromSlice(zs))
		l.Join(l2) // a ⊔ (b ⊔ c)
		r := fromSlice(xs)
		r.Join(fromSlice(ys))
		r.Join(fromSlice(zs)) // (a ⊔ b) ⊔ c
		return l.Equal(r)
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
}

// Property: Tick strictly increases the clock in the ordering.
func TestQuickTickIncreases(t *testing.T) {
	f := func(xs []int32, tid uint8) bool {
		a := fromSlice(xs)
		before := a.Copy()
		a.Tick(event.ThreadID(tid % 8))
		return before.LessEq(a) && !a.LessEq(before)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHappenedBefore(t *testing.T) {
	// Thread 0 performs an event at snapshot s0; thread 1 later joins it.
	s := New()
	s.Tick(0)
	snap := s.Copy()
	o := New()
	o.Tick(1)
	if HappenedBefore(snap, 0, o) {
		t.Fatal("unrelated clock claimed ordered")
	}
	o.Join(snap)
	if !HappenedBefore(snap, 0, o) {
		t.Fatal("joined clock must be ordered after the event")
	}
}

func TestLenAndGrowth(t *testing.T) {
	v := New()
	if v.Len() != 0 {
		t.Fatal("fresh length")
	}
	v.Set(9, 4)
	if v.Len() != 10 || v.Get(9) != 4 || v.Get(5) != 0 {
		t.Fatalf("growth wrong: len=%d", v.Len())
	}
}
