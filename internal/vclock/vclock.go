// Package vclock implements vector clocks, the mechanism the hybrid race
// detection algorithm (§2.2) uses to compute the happens-before relation ≼
// over MEM/SND/RCV events. A clock maps thread IDs to logical times; the
// usual component-wise partial order realizes happens-before:
//
//   - events of one thread are ordered by program order (the thread ticks
//     its own component after each event),
//   - SND(g,t1) ≼ RCV(g,t2) is realized by shipping the sender's clock with
//     the message and joining it into the receiver's clock,
//   - transitivity is inherited from the component-wise order.
package vclock

import (
	"fmt"
	"sort"
	"strings"

	"racefuzzer/internal/event"
)

// VC is a vector clock. It is represented densely: index i holds thread i's
// component. Thread IDs are small consecutive integers assigned by the
// scheduler, so dense representation is both compact and fast. The zero
// value is the all-zeros clock.
type VC struct {
	c []int32
}

// New returns an all-zeros clock.
func New() *VC { return &VC{} }

// Get returns t's component.
func (v *VC) Get(t event.ThreadID) int32 {
	if int(t) < 0 || int(t) >= len(v.c) {
		return 0
	}
	return v.c[t]
}

// Set assigns t's component, growing the vector as needed.
func (v *VC) Set(t event.ThreadID, n int32) {
	v.grow(int(t) + 1)
	v.c[t] = n
}

// Tick increments t's component and returns the new value. A thread ticks
// its own clock after each event it performs.
func (v *VC) Tick(t event.ThreadID) int32 {
	v.grow(int(t) + 1)
	v.c[t]++
	return v.c[t]
}

func (v *VC) grow(n int) {
	if n <= len(v.c) {
		return
	}
	nc := make([]int32, n)
	copy(nc, v.c)
	v.c = nc
}

// Join sets v to the component-wise maximum of v and o. This is the receive
// action: RCV(g, t) joins the clock that accompanied SND(g, ·).
func (v *VC) Join(o *VC) {
	v.grow(len(o.c))
	for i, x := range o.c {
		if x > v.c[i] {
			v.c[i] = x
		}
	}
}

// Copy returns an independent copy of v. Snapshots taken at MEM events are
// what the hybrid detector stores in its per-location histories.
func (v *VC) Copy() *VC {
	nc := make([]int32, len(v.c))
	copy(nc, v.c)
	return &VC{c: nc}
}

// LessEq reports whether v ≤ o component-wise, i.e. whether everything v
// knows about has also been seen by o.
func (v *VC) LessEq(o *VC) bool {
	for i, x := range v.c {
		var y int32
		if i < len(o.c) {
			y = o.c[i]
		}
		if x > y {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality (missing components are zero).
func (v *VC) Equal(o *VC) bool { return v.LessEq(o) && o.LessEq(v) }

// Concurrent reports whether neither v ≤ o nor o ≤ v: the two snapshots are
// causally unordered. This is the ¬(e_i ≼ e_j) ∧ ¬(e_j ≼ e_i) conjunct of
// the hybrid race condition.
func (v *VC) Concurrent(o *VC) bool { return !v.LessEq(o) && !o.LessEq(v) }

// HappenedBefore reports whether an event performed by thread t with clock
// snapshot v happens-before a later point whose clock is o. Because v was
// snapshotted when t performed the event, it suffices to compare t's own
// component: the event is visible at o iff o has seen at least that many of
// t's ticks.
func HappenedBefore(v *VC, t event.ThreadID, o *VC) bool {
	return v.Get(t) <= o.Get(t) && v.Get(t) > 0 || v.Get(t) == 0 && v.LessEq(o)
}

// Len returns the number of tracked components.
func (v *VC) Len() int { return len(v.c) }

// String renders the clock as {T0:3 T2:1} omitting zero components.
func (v *VC) String() string {
	var parts []string
	for i, x := range v.c {
		if x != 0 {
			parts = append(parts, fmt.Sprintf("T%d:%d", i, x))
		}
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, " ") + "}"
}
