package core

import (
	"racefuzzer/internal/event"
	"racefuzzer/internal/rng"
	"racefuzzer/internal/sched"
)

// RaceWitnessPolicy wraps any scheduling policy and passively watches for
// the moment the target pair's two statements are simultaneously pending on
// the same memory location with a write — i.e. the race condition has been
// created by the inner scheduler (the two events could execute temporally
// next to each other). It makes no scheduling decisions of its own.
//
// This is how the repository measures the paper's comparison baselines: the
// probability that a *simple random* (or default-like) scheduler happens to
// create the race that RaceFuzzer creates deliberately (§3.2, Table 1
// column 10's default-scheduler runs).
type RaceWitnessPolicy struct {
	// Inner is the actual scheduling policy (e.g. sched.RandomPolicy).
	Inner sched.Policy
	// Target is the statement pair to watch for.
	Target event.StmtPair

	hit     bool
	hitStep int
}

// NewRaceWitnessPolicy wraps inner to watch for target.
func NewRaceWitnessPolicy(inner sched.Policy, target event.StmtPair) *RaceWitnessPolicy {
	return &RaceWitnessPolicy{Inner: inner, Target: target}
}

// Name implements sched.Policy.
func (p *RaceWitnessPolicy) Name() string { return "witness(" + p.Inner.Name() + ")" }

// Hit reports whether the race condition was ever created.
func (p *RaceWitnessPolicy) Hit() bool { return p.hit }

// HitStep returns the step of the first witness (0 if none).
func (p *RaceWitnessPolicy) HitStep() int { return p.hitStep }

// Step implements sched.Policy.
func (p *RaceWitnessPolicy) Step(v *sched.View, r *rng.Rand) sched.Decision {
	if !p.hit {
		// Collect pending target ops among all live threads whose op is
		// executable now or merely pending; adjacency requires both enabled.
		var ops []sched.Op
		for _, tid := range v.Enabled {
			op := v.Op(tid)
			if op.IsMem() && p.Target.Contains(op.Stmt) {
				ops = append(ops, op)
			}
		}
		for i := 0; i < len(ops) && !p.hit; i++ {
			for j := i + 1; j < len(ops); j++ {
				if ops[i].ConflictsWith(ops[j]) {
					p.hit = true
					p.hitStep = v.Step
					break
				}
			}
		}
	}
	return p.Inner.Step(v, r)
}

// BaselineProbability estimates, over trials executions with derived seeds,
// the probability that the given scheduler creates the target race. Used
// for the Figure-2 sweep and the "Simple" comparisons.
func BaselineProbability(prog Program, pair event.StmtPair, mkPolicy func() sched.Policy, trials int, seed int64, maxSteps int) float64 {
	hits := 0
	for i := 0; i < trials; i++ {
		w := NewRaceWitnessPolicy(mkPolicy(), pair)
		sched.Run(prog, sched.Config{Seed: seed + int64(i)*101 + 3, Policy: w, MaxSteps: maxSteps})
		if w.Hit() {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// BaselineExceptions counts, over trials executions, how many runs under the
// given scheduler threw at least one model exception — Table 1's column 10
// (exceptions under the default scheduler).
func BaselineExceptions(prog Program, mkPolicy func() sched.Policy, trials int, seed int64, maxSteps int) int {
	n := 0
	for i := 0; i < trials; i++ {
		res := sched.Run(prog, sched.Config{Seed: seed + int64(i)*101 + 3, Policy: mkPolicy(), MaxSteps: maxSteps})
		if len(res.Exceptions) > 0 {
			n++
		}
	}
	return n
}
