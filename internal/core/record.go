package core

import (
	"fmt"
	"path/filepath"
	"strings"

	"racefuzzer/internal/event"
	"racefuzzer/internal/flightrec"
	"racefuzzer/internal/sched"
)

// Flight-recorded variants of the phase-2 runs. Each Record* function runs
// the exact execution its plain counterpart (FuzzRun, ConfirmDeadlock's
// trial, ConfirmAtomicity's trial) would run for the same seed — same
// policy, same configuration — with a flight recorder attached. Because a
// run is a pure function of (program, policy, seed) and recording is
// passive, the recorded execution IS the original execution; that identity
// is what makes campaign auto-capture (Options.TraceDir) sound and what the
// Verify* helpers check.

// RecordRace is FuzzRun with a flight recorder attached: it returns the run
// report plus the complete causal recording.
func RecordRace(prog Program, pair event.StmtPair, seed int64, o Options) (*RunReport, *flightrec.Recording) {
	pol := &RaceFuzzerPolicy{Target: pair, MaxPostponeAge: o.MaxPostponeAge}
	rec := flightrec.NewRecorder(flightrec.Header{
		Label: o.Label, Policy: pol.Name(), Kind: "race",
		Seed: seed, Pair: pair.String(), MaxSteps: o.MaxSteps,
	})
	res := sched.Run(prog, sched.Config{
		Seed: seed, Policy: pol, MaxSteps: o.MaxSteps,
		Name:       fmt.Sprintf("racefuzzer%v", pair),
		Flight:     rec,
		Introspect: o.Introspect,
	})
	rec.Finish(res)
	return &RunReport{Seed: seed, Result: res, Races: pol.Races(), RaceCreated: pol.RaceCreated()}, rec.Recording()
}

// RecordDeadlockRun is one ConfirmDeadlock trial with a flight recorder:
// a deadlock-directed run focused on the target lock pair.
func RecordDeadlockRun(prog Program, target [2]event.LockID, seed int64, o Options) (*sched.Result, *flightrec.Recording) {
	pol := NewDeadlockDirectedPolicy()
	pol.TargetLocks = &target
	pol.MaxPostponeAge = o.MaxPostponeAge
	rec := flightrec.NewRecorder(flightrec.Header{
		Label: o.Label, Policy: pol.Name(), Kind: "deadlock",
		Seed: seed, Pair: fmt.Sprintf("(%s, %s)", target[0], target[1]), MaxSteps: o.MaxSteps,
	})
	res := sched.Run(prog, sched.Config{
		Seed: seed, Policy: pol, MaxSteps: o.MaxSteps,
		Flight: rec, Introspect: o.Introspect,
	})
	rec.Finish(res)
	return res, rec.Recording()
}

// RecordAtomicityRun is one ConfirmAtomicity trial with a flight recorder:
// an atomicity-directed run against the target block.
func RecordAtomicityRun(prog Program, target AtomicityTarget, seed int64, o Options) (*sched.Result, []AtomicityViolation, *flightrec.Recording) {
	pol := NewAtomicityDirectedPolicy(target)
	pol.MaxPostponeAge = o.MaxPostponeAge
	rec := flightrec.NewRecorder(flightrec.Header{
		Label: o.Label, Policy: pol.Name(), Kind: "atomicity",
		Seed: seed, Pair: fmt.Sprintf("(%s, %s)", target.First, target.Second), MaxSteps: o.MaxSteps,
	})
	res := sched.Run(prog, sched.Config{
		Seed: seed, Policy: pol, MaxSteps: o.MaxSteps,
		Flight: rec, Introspect: o.Introspect,
	})
	rec.Finish(res)
	return res, pol.Violations(), rec.Recording()
}

// VerifyRaceReplay records the same race-directed (pair, seed) twice and
// returns the first divergence between the two recordings, or nil when the
// replay is exact — the paper's §2.2 determinism claim as a checkable
// invariant.
func VerifyRaceReplay(prog Program, pair event.StmtPair, seed int64, o Options) *flightrec.Divergence {
	_, a := RecordRace(prog, pair, seed, o)
	_, b := RecordRace(prog, pair, seed, o)
	return flightrec.Diverge(b, a)
}

// VerifyDeadlockReplay is VerifyRaceReplay for the deadlock pipeline.
func VerifyDeadlockReplay(prog Program, target [2]event.LockID, seed int64, o Options) *flightrec.Divergence {
	_, a := RecordDeadlockRun(prog, target, seed, o)
	_, b := RecordDeadlockRun(prog, target, seed, o)
	return flightrec.Diverge(b, a)
}

// VerifyAtomicityReplay is VerifyRaceReplay for the atomicity pipeline.
func VerifyAtomicityReplay(prog Program, target AtomicityTarget, seed int64, o Options) *flightrec.Divergence {
	_, _, a := RecordAtomicityRun(prog, target, seed, o)
	_, _, b := RecordAtomicityRun(prog, target, seed, o)
	return flightrec.Diverge(b, a)
}

// witnessPath names an auto-captured trace inside o.TraceDir:
// <label>-<kind>-p<target>-t<trial>.trace.jsonl.
func (o Options) witnessPath(kind string, targetIndex, trial int) string {
	label := sanitizeLabel(o.Label)
	return filepath.Join(o.TraceDir,
		fmt.Sprintf("%s-%s-p%d-t%d.trace.jsonl", label, kind, targetIndex, trial))
}

// sanitizeLabel makes a campaign label safe as a file-name component.
func sanitizeLabel(label string) string {
	if label == "" {
		return "run"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-' || r == '_' || r == '.':
			return r
		}
		return '-'
	}, label)
}

// capture saves a witness recording and reports the path ("" plus the error
// when saving failed; capture failures never fail the campaign).
func capture(rec *flightrec.Recording, path string) (string, error) {
	if err := rec.SaveFile(path); err != nil {
		return "", err
	}
	return path, nil
}
