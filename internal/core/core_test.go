package core

import (
	"errors"
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

func containsPair(ps []event.StmtPair, p event.StmtPair) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

func TestFigure1Phase1FindsBothPairs(t *testing.T) {
	pairs := DetectPotentialRaces(bench.Figure1(), Options{Seed: 1, Phase1Trials: 8})
	if !containsPair(pairs, bench.Fig1PairZ) {
		t.Fatalf("hybrid missed the real z race; pairs = %v", pairs)
	}
	if !containsPair(pairs, bench.Fig1PairX) {
		t.Fatalf("hybrid missed the x false alarm; pairs = %v", pairs)
	}
}

func TestFigure1RaceFuzzerConfirmsOnlyZ(t *testing.T) {
	o := Options{Seed: 7, Phase2Trials: 60}
	zRep := FuzzPair(bench.Figure1(), bench.Fig1PairZ, 0, o)
	if !zRep.IsReal {
		t.Fatalf("z pair not confirmed: %v", zRep)
	}
	if zRep.Probability < 0.95 {
		t.Fatalf("z race probability %.2f, want ~1.0 (paper §3.1 Case 2)", zRep.Probability)
	}
	// Resolving the race randomly must reach ERROR1 about half the time.
	frac := float64(zRep.ExceptionRuns) / float64(zRep.Trials)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("ERROR1 fraction %.2f, want ≈0.5", frac)
	}

	xRep := FuzzPair(bench.Figure1(), bench.Fig1PairX, 1, o)
	if xRep.IsReal {
		t.Fatalf("x pair (false alarm) wrongly confirmed: %v (paper §3.1 Case 1)", xRep)
	}
	if xRep.ExceptionRuns != 0 {
		t.Fatalf("false alarm produced exceptions: %v", xRep)
	}
}

func TestFigure1Error2Unreachable(t *testing.T) {
	// Across both targets and many seeds, ERROR2 must never fire: the x
	// accesses are implicitly synchronized by y (paper §3.1).
	for _, pair := range []event.StmtPair{bench.Fig1PairZ, bench.Fig1PairX} {
		for i := 0; i < 80; i++ {
			run := FuzzRun(bench.Figure1(), pair, int64(1000+i), Options{})
			for _, ex := range run.Result.Exceptions {
				if errors.Is(ex.Err, bench.ErrError2) {
					t.Fatalf("ERROR2 reached with pair %v seed %d", pair, 1000+i)
				}
			}
		}
	}
}

func TestFigure2RaceFuzzerHitsWithProbabilityOne(t *testing.T) {
	for _, n := range []int{5, 50, 200} {
		rep := FuzzPair(bench.Figure2(n), bench.Fig2Pair, 0, Options{Seed: 11, Phase2Trials: 40})
		if rep.Probability < 0.999 {
			t.Fatalf("prefix %d: RaceFuzzer probability %.2f, want 1.0 (§3.2)", n, rep.Probability)
		}
		frac := float64(rep.ExceptionRuns) / float64(rep.Trials)
		if frac < 0.25 || frac > 0.75 {
			t.Fatalf("prefix %d: ERROR fraction %.2f, want ≈0.5", n, frac)
		}
	}
}

func TestFigure2SimpleRandomDecaysWithPrefix(t *testing.T) {
	trials := 150
	pShort := BaselineProbability(bench.Figure2(2), bench.Fig2Pair,
		func() sched.Policy { return sched.NewRandomPolicy() }, trials, 5, 0)
	pLong := BaselineProbability(bench.Figure2(120), bench.Fig2Pair,
		func() sched.Policy { return sched.NewRandomPolicy() }, trials, 5, 0)
	if pLong > 0.2 {
		t.Fatalf("simple random hit prob %.2f with long prefix, want near 0", pLong)
	}
	if pShort <= pLong {
		t.Fatalf("probability did not decay: short=%.2f long=%.2f", pShort, pLong)
	}
}

func TestFigure2ReplayIsExact(t *testing.T) {
	// Find a seed that throws, then replay it: the replay must throw the
	// same exception at the same step — the paper's deterministic replay.
	o := Options{}
	var seed int64 = -1
	for i := int64(0); i < 50; i++ {
		run := FuzzRun(bench.Figure2(30), bench.Fig2Pair, 900+i, o)
		if len(run.Result.Exceptions) > 0 {
			seed = 900 + i
			break
		}
	}
	if seed < 0 {
		t.Fatal("no throwing seed found in 50 tries")
	}
	a := Replay(bench.Figure2(30), bench.Fig2Pair, seed, o)
	b := Replay(bench.Figure2(30), bench.Fig2Pair, seed, o)
	if len(a.Result.Exceptions) != 1 || len(b.Result.Exceptions) != 1 {
		t.Fatalf("replays differ in exceptions: %v vs %v", a.Result.Exceptions, b.Result.Exceptions)
	}
	if a.Result.Exceptions[0].Step != b.Result.Exceptions[0].Step {
		t.Fatalf("replay diverged: steps %d vs %d", a.Result.Exceptions[0].Step, b.Result.Exceptions[0].Step)
	}
	if a.Result.Steps != b.Result.Steps {
		t.Fatalf("replay diverged: total steps %d vs %d", a.Result.Steps, b.Result.Steps)
	}
	if len(a.Races) != len(b.Races) || a.Races[0].Step != b.Races[0].Step {
		t.Fatalf("replay diverged in races: %v vs %v", a.Races, b.Races)
	}
}

func TestAnalyzeEndToEndFigure1(t *testing.T) {
	rep := Analyze(bench.Figure1(), Options{Seed: 3, Phase1Trials: 8, Phase2Trials: 40})
	if len(rep.Potential) < 2 {
		t.Fatalf("potential = %v, want ≥2", rep.Potential)
	}
	if rep.RealCount() != 1 {
		t.Fatalf("real count = %d, want 1; pairs: %v", rep.RealCount(), rep.Pairs)
	}
	if rep.ExceptionPairCount() != 1 {
		t.Fatalf("exception pairs = %d, want 1", rep.ExceptionPairCount())
	}
	if rep.MeanProbability() < 0.9 {
		t.Fatalf("mean probability = %.2f, want ≈1", rep.MeanProbability())
	}
}

func TestRaceFuzzerPolicyReportsResolutionBothWays(t *testing.T) {
	sawCandFirst, sawPostFirst := false, false
	for i := int64(0); i < 40 && !(sawCandFirst && sawPostFirst); i++ {
		run := FuzzRun(bench.Figure2(10), bench.Fig2Pair, 300+i, Options{})
		for _, rr := range run.Races {
			if rr.CandidateFirst {
				sawCandFirst = true
			} else {
				sawPostFirst = true
			}
			if rr.Loc == event.NoLoc || rr.LocName == "" {
				t.Fatalf("race record missing location: %+v", rr)
			}
			if !rr.Target.Contains(rr.Pair.A) || !rr.Target.Contains(rr.Pair.B) {
				t.Fatalf("raced pair %v outside target %v", rr.Pair, rr.Target)
			}
		}
	}
	if !sawCandFirst || !sawPostFirst {
		t.Fatalf("random resolution did not explore both orders (cand=%v post=%v)", sawCandFirst, sawPostFirst)
	}
}

func TestPostponedSetDeadlockBreaking(t *testing.T) {
	// Target a pair whose statements never conflict (different locations):
	// both threads get postponed, and line 26 must release them so the run
	// terminates without deadlock.
	a := event.StmtFor("indep:a")
	b := event.StmtFor("indep:b")
	prog := func(mt *sched.Thread) {
		s := mt.Scheduler()
		la := s.NewLoc("va")
		lb := s.NewLoc("vb")
		t1 := mt.Fork("t1", func(c *sched.Thread) { c.MemWrite(la, a) })
		t2 := mt.Fork("t2", func(c *sched.Thread) { c.MemWrite(lb, b) })
		mt.Join(t1)
		mt.Join(t2)
	}
	for i := int64(0); i < 20; i++ {
		run := FuzzRun(prog, event.MakeStmtPair(a, b), 40+i, Options{})
		if run.RaceCreated {
			t.Fatalf("seed %d: race wrongly created on disjoint locations", 40+i)
		}
		if run.Result.Deadlock != nil || run.Result.Aborted {
			t.Fatalf("seed %d: run did not terminate cleanly: %+v", 40+i, run.Result)
		}
	}
}

func TestMultipleReadersInR(t *testing.T) {
	// One writer, several readers of the same location: all readers park in
	// postponed; the writer's arrival races with every one of them, and the
	// postponed-first resolution grants all of R (the readers don't mutually
	// race — Algorithm 1's multi-element R case).
	w := event.StmtFor("multi:w")
	r := event.StmtFor("multi:r")
	prog := func(mt *sched.Thread) {
		s := mt.Scheduler()
		loc := s.NewLoc("shared")
		kids := []*sched.Thread{}
		for i := 0; i < 3; i++ {
			kids = append(kids, mt.Fork("reader", func(c *sched.Thread) { c.MemRead(loc, r) }))
		}
		kids = append(kids, mt.Fork("writer", func(c *sched.Thread) { c.MemWrite(loc, w) }))
		for _, k := range kids {
			mt.Join(k)
		}
	}
	sawMulti := false
	for i := int64(0); i < 60 && !sawMulti; i++ {
		run := FuzzRun(prog, event.MakeStmtPair(w, r), 70+i, Options{})
		for _, rr := range run.Races {
			if len(rr.Postponed) >= 2 {
				sawMulti = true
			}
		}
		if run.Result.Deadlock != nil {
			t.Fatalf("seed %d: deadlock", 70+i)
		}
	}
	if !sawMulti {
		t.Fatal("never observed |R| ≥ 2 with three parked readers")
	}
}

func TestWitnessPolicyDetectsObviousRace(t *testing.T) {
	a := event.StmtFor("obvious:a")
	b := event.StmtFor("obvious:b")
	prog := func(mt *sched.Thread) {
		loc := mt.Scheduler().NewLoc("x")
		t1 := mt.Fork("t1", func(c *sched.Thread) { c.MemWrite(loc, a) })
		t2 := mt.Fork("t2", func(c *sched.Thread) { c.MemWrite(loc, b) })
		mt.Join(t1)
		mt.Join(t2)
	}
	// Even this trivial race is only co-pending when neither write fires
	// before the other thread parks at its own write — the random scheduler
	// often runs t1 to completion before t2 even starts. Empirically ≈0.4;
	// assert it is clearly nonzero (and contrast: RaceFuzzer would hit 1.0).
	p := BaselineProbability(prog, event.MakeStmtPair(a, b),
		func() sched.Policy { return sched.NewRandomPolicy() }, 100, 9, 0)
	if p < 0.2 {
		t.Fatalf("witness probability %.2f on trivially adjacent race, want ≳0.4", p)
	}
	rf := FuzzPair(prog, event.MakeStmtPair(a, b), 0, Options{Seed: 9, Phase2Trials: 50})
	if rf.Probability < 0.999 {
		t.Fatalf("RaceFuzzer probability %.2f on trivial race, want 1.0", rf.Probability)
	}
}

func TestLivelockMonitorReleasesAgedThreads(t *testing.T) {
	// Thread A parks forever at a target statement nobody else reaches,
	// while thread B spins. Without the livelock monitor, A would stay
	// postponed until B finishes; with a small MaxPostponeAge, A is released
	// early. Either way the run must terminate; we assert the aging counter
	// fires with a tiny bound.
	target := event.StmtFor("live:target")
	prog := func(mt *sched.Thread) {
		s := mt.Scheduler()
		loc := s.NewLoc("x")
		lspin := s.NewLoc("spin")
		a := mt.Fork("a", func(c *sched.Thread) { c.MemWrite(loc, target) })
		b := mt.Fork("b", func(c *sched.Thread) {
			for i := 0; i < 300; i++ {
				c.MemWrite(lspin, event.StmtFor("live:spin"))
			}
		})
		mt.Join(a)
		mt.Join(b)
	}
	pol := &RaceFuzzerPolicy{Target: event.MakeStmtPair(target, target), MaxPostponeAge: 20}
	res := sched.Run(prog, sched.Config{Seed: 4, Policy: pol})
	if res.Deadlock != nil || res.Aborted {
		t.Fatalf("run did not terminate: %+v", res)
	}
	_, aged := pol.Stats()
	if aged == 0 {
		t.Fatal("livelock monitor never released the postponed thread")
	}
}

func TestFuzzSetConfirmsOnlyRealPairsInOneCampaign(t *testing.T) {
	pairs := []event.StmtPair{bench.Fig1PairX, bench.Fig1PairZ}
	rep := FuzzSet(bench.Figure1(), pairs, Options{Seed: 13, Phase2Trials: 60})
	confirmed := rep.Confirmed()
	foundZ, foundX := false, false
	for _, p := range confirmed {
		if p == bench.Fig1PairZ {
			foundZ = true
		}
		if p == bench.Fig1PairX {
			foundX = true
		}
	}
	if !foundZ {
		t.Fatalf("set campaign missed the real z pair: %v", confirmed)
	}
	if foundX {
		t.Fatalf("set campaign confirmed the false x pair: %v", confirmed)
	}
	// Batched mode trades per-pair directedness for breadth: postponing the
	// x-pair's statement 1 delays thread1's y=1 publication, so in ~half the
	// runs thread2 dies before a z partner exists. The single-pair campaign
	// hits 1.0 (TestFigure1RaceFuzzerConfirmsOnlyZ); batched lands ≈0.5 —
	// which is exactly why the paper fuzzes one pair per invocation.
	if n := rep.ConfirmedRuns[bench.Fig1PairZ]; n < 15 {
		t.Fatalf("z confirmed in only %d/60 runs", n)
	}
	if rep.ExceptionRuns == 0 {
		t.Fatal("set campaign never reached ERROR1")
	}
}

func TestSetPolicyMatchesSinglePairOnLoneTarget(t *testing.T) {
	// With a single pair in the set, the set policy must behave like the
	// single-target policy (same seeds, same races).
	for i := int64(0); i < 15; i++ {
		seed := 600 + i
		single := NewRaceFuzzerPolicy(bench.Fig2Pair)
		sched.Run(bench.Figure2(20), sched.Config{Seed: seed, Policy: single})
		set := NewRaceFuzzerSetPolicy([]event.StmtPair{bench.Fig2Pair})
		sched.Run(bench.Figure2(20), sched.Config{Seed: seed, Policy: set})
		if len(single.Races()) != len(set.Races()) {
			t.Fatalf("seed %d: single %d races, set %d races", seed, len(single.Races()), len(set.Races()))
		}
		for j := range single.Races() {
			if single.Races()[j].Step != set.Races()[j].Step {
				t.Fatalf("seed %d: race %d at different steps", seed, j)
			}
		}
	}
}
