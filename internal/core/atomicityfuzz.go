package core

import (
	"fmt"

	"racefuzzer/internal/atomizer"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/sched"
)

// The atomicity instantiation of active testing (§1): phase 1 infers
// intended-atomic read-modify-write blocks and their potential interferers
// (internal/atomizer); phase 2 directs the scheduler to interleave an
// interferer inside the block.

// DetectAtomicityTargets is the atomicity phase 1: observe Phase1Trials
// random executions and union the inferred candidates.
func DetectAtomicityTargets(prog Program, o Options) []AtomicityTarget {
	o = o.withDefaults()
	seen := make(map[string]bool)
	var out []AtomicityTarget
	for i := 0; i < o.Phase1Trials; i++ {
		det := atomizer.New()
		var rm *obs.RunMetrics
		if o.observing() {
			rm = obs.NewRunMetrics()
		}
		res := sched.Run(prog, sched.Config{
			Seed:      o.Seed + int64(i),
			Policy:    sched.NewRandomPolicy(),
			Observers: []sched.Observer{det},
			MaxSteps:  o.MaxSteps,
			Metrics:   rm,
		})
		if o.observing() {
			o.emit(phase1Record("atomicity", i, o.Seed+int64(i), res))
		}
		for _, c := range det.Candidates() {
			key := fmt.Sprintf("%d/%d", c.First, c.Second)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, AtomicityTarget{
				First: c.First, Second: c.Second, Interferers: c.Interferers,
			})
		}
	}
	return out
}

// AtomicityReport is the phase-2 verdict for one target.
type AtomicityReport struct {
	Target AtomicityTarget
	// Trials is the number of directed executions.
	Trials int
	// ViolationRuns counts trials in which an interferer was actually
	// interleaved inside the block.
	ViolationRuns int
	// Probability = ViolationRuns / Trials.
	Probability float64
	// IsReal reports whether any trial created the violation.
	IsReal bool
	// ExceptionRuns counts violating trials that also threw.
	ExceptionRuns int
	// FirstTrial is the 0-based index of the first violating trial, -1 when
	// none (derived seeds can legitimately be 0, so the seed itself is not a
	// sentinel).
	FirstTrial int
	// FirstSeed replays a violating run (meaningful when FirstTrial >= 0).
	FirstSeed int64
	// TracePath is the auto-captured witness recording of the first
	// violating trial ("" unless Options.TraceDir was set and a violation
	// occurred); TraceErr reports a failed capture attempt.
	TracePath string
	TraceErr  error
}

func (a AtomicityReport) String() string {
	verdict := "NOT CONFIRMED"
	if a.IsReal {
		verdict = "REAL VIOLATION"
	}
	return fmt.Sprintf("block %s..%s: %s, p=%.2f (%d/%d runs, %d threw)",
		a.Target.First, a.Target.Second, verdict, a.Probability, a.ViolationRuns, a.Trials, a.ExceptionRuns)
}

// ConfirmAtomicity is the atomicity phase 2.
func ConfirmAtomicity(prog Program, target AtomicityTarget, targetIndex int, o Options) AtomicityReport {
	o = o.withDefaults()
	rep := AtomicityReport{Target: target, Trials: o.Phase2Trials, FirstTrial: -1}
	for i := 0; i < o.Phase2Trials; i++ {
		seed := pairSeed(o.Seed, targetIndex+9_000_000, i)
		pol := NewAtomicityDirectedPolicy(target)
		pol.MaxPostponeAge = o.MaxPostponeAge
		var rm *obs.RunMetrics
		if o.observing() {
			rm = obs.NewRunMetrics()
		}
		res := sched.Run(prog, sched.Config{Seed: seed, Policy: pol, MaxSteps: o.MaxSteps, Metrics: rm})
		violations := pol.Violations()
		tracePath := ""
		if len(violations) > 0 {
			rep.ViolationRuns++
			if rep.FirstTrial < 0 {
				rep.FirstTrial = i
				rep.FirstSeed = seed
				if o.TraceDir != "" {
					_, _, witness := RecordAtomicityRun(prog, target, seed, o)
					tracePath, rep.TraceErr = capture(witness, o.witnessPath("atomicity", targetIndex, i))
					rep.TracePath = tracePath
				}
			}
			if len(res.Exceptions) > 0 {
				rep.ExceptionRuns++
			}
		}
		if o.observing() {
			rec := runRecord("atomicity", targetIndex, i, seed, res)
			rec.Pair = fmt.Sprintf("(%s, %s)", target.First, target.Second)
			rec.RaceCreated = len(violations) > 0
			rec.Races = len(violations)
			if len(violations) > 0 {
				rec.StepsToRace = violations[0].Step
			}
			rec.Trace = tracePath
			o.emit(rec)
		}
	}
	rep.IsReal = rep.ViolationRuns > 0
	rep.Probability = float64(rep.ViolationRuns) / float64(rep.Trials)
	return rep
}

// AnalyzeAtomicity runs the full atomicity pipeline.
func AnalyzeAtomicity(prog Program, o Options) []AtomicityReport {
	targets := DetectAtomicityTargets(prog, o)
	out := make([]AtomicityReport, 0, len(targets))
	for i, tg := range targets {
		out = append(out, ConfirmAtomicity(prog, tg, i, o))
	}
	return out
}
