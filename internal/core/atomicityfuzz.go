package core

import (
	"fmt"

	"racefuzzer/internal/atomizer"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/sched"
)

// The atomicity instantiation of active testing (§1): phase 1 infers
// intended-atomic read-modify-write blocks and their potential interferers
// (internal/atomizer); phase 2 directs the scheduler to interleave an
// interferer inside the block.

// DetectAtomicityTargets is the atomicity phase 1: observe Phase1Trials
// random executions and union the inferred candidates.
func DetectAtomicityTargets(prog Program, o Options) []AtomicityTarget {
	o = o.withDefaults()
	seen := make(map[string]bool)
	var out []AtomicityTarget
	type obsRun struct {
		cands []atomizer.Candidate
		res   *sched.Result
	}
	runOrdered(o.workerCount(), o.Phase1Trials,
		func(i int) obsRun {
			det := atomizer.New()
			var rm *obs.RunMetrics
			if o.observing() {
				rm = obs.NewRunMetrics()
			}
			tr := o.Prof.StartTrial(o.Label, o.Seed+int64(i))
			res := sched.Run(prog, sched.Config{
				Seed:       o.Seed + int64(i),
				Policy:     sched.NewRandomPolicy(),
				Observers:  []sched.Observer{det},
				MaxSteps:   o.MaxSteps,
				Metrics:    rm,
				Introspect: o.Introspect,
				Prof:       tr,
			})
			o.Prof.FinishTrial(tr)
			return obsRun{cands: det.Candidates(), res: res}
		},
		func(i int, r obsRun) {
			if o.observing() {
				o.emit(o.phase1Record("atomicity", i, o.Seed+int64(i), r.res))
			}
			for _, c := range r.cands {
				key := fmt.Sprintf("%d/%d", c.First, c.Second)
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, AtomicityTarget{
					First: c.First, Second: c.Second, Interferers: c.Interferers,
				})
			}
		})
	return out
}

// AtomicityReport is the phase-2 verdict for one target.
type AtomicityReport struct {
	Target AtomicityTarget
	// Trials is the number of directed executions.
	Trials int
	// ViolationRuns counts trials in which an interferer was actually
	// interleaved inside the block.
	ViolationRuns int
	// Probability = ViolationRuns / Trials.
	Probability float64
	// IsReal reports whether any trial created the violation.
	IsReal bool
	// ExceptionRuns counts violating trials that also threw.
	ExceptionRuns int
	// FirstTrial is the 0-based index of the first violating trial, -1 when
	// none (derived seeds can legitimately be 0, so the seed itself is not a
	// sentinel).
	FirstTrial int
	// FirstSeed replays a violating run (meaningful when FirstTrial >= 0).
	FirstSeed int64
	// TracePath is the auto-captured witness recording of the first
	// violating trial ("" unless Options.TraceDir was set and a violation
	// occurred); TraceErr reports a failed capture attempt.
	TracePath string
	TraceErr  error
	// PerfPath is the Perfetto timeline exported for the first violating
	// trial (see PairReport.PerfPath); PerfErr reports a failed export.
	PerfPath string
	PerfErr  error
	// Known reports that the confirmed violation's signature was already in
	// the campaign's corpus (see PairReport.Known).
	Known bool
}

func (a AtomicityReport) String() string {
	verdict := "NOT CONFIRMED"
	if a.IsReal {
		verdict = "REAL VIOLATION"
		if a.Known {
			verdict += " [known]"
		}
	}
	return fmt.Sprintf("block %s..%s: %s, p=%.2f (%d/%d runs, %d threw)",
		a.Target.First, a.Target.Second, verdict, a.Probability, a.ViolationRuns, a.Trials, a.ExceptionRuns)
}

// ConfirmAtomicity is the atomicity phase 2. Trials run on the campaign
// executor and are merged in trial order (see parallel.go).
func ConfirmAtomicity(prog Program, target AtomicityTarget, targetIndex int, o Options) AtomicityReport {
	o = o.withDefaults()
	agg := newAtomicityAgg(prog, target, targetIndex, o)
	runOrdered(o.workerCount(), o.Phase2Trials,
		func(i int) atomicityTrialResult { return atomicityTrial(prog, target, targetIndex, i, o) },
		agg.add)
	return agg.finish()
}

// atomicityTrialResult is one directed execution's outcome: the scheduler
// result plus the policy's recorded violations (the policy itself stays
// worker-local).
type atomicityTrialResult struct {
	res        *sched.Result
	violations []AtomicityViolation
}

func atomicityTrial(prog Program, target AtomicityTarget, targetIndex, i int, o Options) atomicityTrialResult {
	seed := pairSeed(o.Seed, targetIndex+9_000_000, i)
	pol := NewAtomicityDirectedPolicy(target)
	pol.MaxPostponeAge = o.MaxPostponeAge
	var rm *obs.RunMetrics
	if o.observing() {
		rm = obs.NewRunMetrics()
	}
	tr := o.Prof.StartTrial(o.Label, seed)
	res := sched.Run(prog, sched.Config{
		Seed: seed, Policy: pol, MaxSteps: o.MaxSteps,
		Metrics: rm, Introspect: o.Introspect, Prof: tr,
	})
	o.Prof.FinishTrial(tr)
	return atomicityTrialResult{res: res, violations: pol.Violations()}
}

// atomicityAgg folds ConfirmAtomicity trial results in trial order.
type atomicityAgg struct {
	prog        Program
	targetIndex int
	o           Options
	rep         AtomicityReport
}

func newAtomicityAgg(prog Program, target AtomicityTarget, targetIndex int, o Options) *atomicityAgg {
	return &atomicityAgg{
		prog: prog, targetIndex: targetIndex, o: o,
		rep: AtomicityReport{Target: target, Trials: o.Phase2Trials, FirstTrial: -1},
	}
}

func (a *atomicityAgg) add(i int, r atomicityTrialResult) {
	rep, o := &a.rep, a.o
	seed := pairSeed(o.Seed, a.targetIndex+9_000_000, i)
	tracePath := ""
	perfPath := ""
	finding := ""
	newCells := 0
	if len(r.violations) > 0 {
		rep.ViolationRuns++
		if o.Corpus != nil {
			branch := "clean"
			if len(r.res.Exceptions) > 0 {
				branch = "threw"
			}
			if o.Corpus.Observe(atomicitySignature(rep.Target), branch) {
				newCells++
			}
		}
		if rep.FirstTrial < 0 {
			rep.FirstTrial = i
			rep.FirstSeed = seed
			sig := atomicitySignature(rep.Target)
			pairStr := fmt.Sprintf("(%s, %s)", rep.Target.First, rep.Target.Second)
			finding = o.reportFinding(sig, pairStr, a.targetIndex, i, seed, runExceptionKinds(r.res))
			rep.Known = finding == "known"
			if o.wantWitness(finding) {
				_, _, witness := RecordAtomicityRun(a.prog, rep.Target, seed, o)
				tracePath, rep.TraceErr = capture(witness, o.witnessPath("atomicity", a.targetIndex, i))
				rep.TracePath = tracePath
				if tracePath != "" {
					o.Corpus.AttachWitness(sig, tracePath)
				}
			}
			if o.PerfDir != "" {
				_, tl := ProfileAtomicityRun(a.prog, rep.Target, seed, o)
				perfPath, rep.PerfErr = savePerf(tl, o.perfPath("atomicity", a.targetIndex, i))
				rep.PerfPath = perfPath
			}
		}
		if len(r.res.Exceptions) > 0 {
			rep.ExceptionRuns++
		}
	}
	if o.observing() {
		rec := o.runRecord("atomicity", a.targetIndex, i, seed, r.res)
		rec.Pair = fmt.Sprintf("(%s, %s)", rep.Target.First, rep.Target.Second)
		rec.RaceCreated = len(r.violations) > 0
		rec.Races = len(r.violations)
		if len(r.violations) > 0 {
			rec.StepsToRace = r.violations[0].Step
		}
		rec.Trace = tracePath
		rec.Perf = perfPath
		rec.Finding = finding
		rec.NewCells = newCells
		o.emit(rec)
	}
}

func (a *atomicityAgg) finish() AtomicityReport {
	a.rep.IsReal = a.rep.ViolationRuns > 0
	a.rep.Probability = float64(a.rep.ViolationRuns) / float64(a.rep.Trials)
	return a.rep
}

// AnalyzeAtomicity runs the full atomicity pipeline. Like Analyze, phase 2
// fans the whole (targetIndex, trial) grid across the campaign executor and
// merges per target in trial order.
func AnalyzeAtomicity(prog Program, o Options) []AtomicityReport {
	o = o.withDefaults()
	targets := DetectAtomicityTargets(prog, o)
	if len(targets) == 0 {
		return []AtomicityReport{}
	}
	trials := o.Phase2Trials
	aggs := make([]*atomicityAgg, len(targets))
	for ti, tg := range targets {
		aggs[ti] = newAtomicityAgg(prog, tg, ti, o)
	}
	runOrdered(o.workerCount(), len(targets)*trials,
		func(k int) atomicityTrialResult {
			ti, i := k/trials, k%trials
			return atomicityTrial(prog, targets[ti], ti, i, o)
		},
		func(k int, r atomicityTrialResult) {
			aggs[k/trials].add(k%trials, r)
		})
	out := make([]AtomicityReport, 0, len(targets))
	for _, a := range aggs {
		out = append(out, a.finish())
	}
	return out
}
