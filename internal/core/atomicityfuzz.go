package core

import (
	"fmt"

	"racefuzzer/internal/atomizer"
	"racefuzzer/internal/sched"
)

// The atomicity instantiation of active testing (§1): phase 1 infers
// intended-atomic read-modify-write blocks and their potential interferers
// (internal/atomizer); phase 2 directs the scheduler to interleave an
// interferer inside the block.

// DetectAtomicityTargets is the atomicity phase 1: observe Phase1Trials
// random executions and union the inferred candidates.
func DetectAtomicityTargets(prog Program, o Options) []AtomicityTarget {
	o = o.withDefaults()
	seen := make(map[string]bool)
	var out []AtomicityTarget
	for i := 0; i < o.Phase1Trials; i++ {
		det := atomizer.New()
		sched.Run(prog, sched.Config{
			Seed:      o.Seed + int64(i),
			Policy:    sched.NewRandomPolicy(),
			Observers: []sched.Observer{det},
			MaxSteps:  o.MaxSteps,
		})
		for _, c := range det.Candidates() {
			key := fmt.Sprintf("%d/%d", c.First, c.Second)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, AtomicityTarget{
				First: c.First, Second: c.Second, Interferers: c.Interferers,
			})
		}
	}
	return out
}

// AtomicityReport is the phase-2 verdict for one target.
type AtomicityReport struct {
	Target AtomicityTarget
	// Trials is the number of directed executions.
	Trials int
	// ViolationRuns counts trials in which an interferer was actually
	// interleaved inside the block.
	ViolationRuns int
	// Probability = ViolationRuns / Trials.
	Probability float64
	// IsReal reports whether any trial created the violation.
	IsReal bool
	// ExceptionRuns counts violating trials that also threw.
	ExceptionRuns int
	// FirstSeed replays a violating run (0 if none).
	FirstSeed int64
}

func (a AtomicityReport) String() string {
	verdict := "NOT CONFIRMED"
	if a.IsReal {
		verdict = "REAL VIOLATION"
	}
	return fmt.Sprintf("block %s..%s: %s, p=%.2f (%d/%d runs, %d threw)",
		a.Target.First, a.Target.Second, verdict, a.Probability, a.ViolationRuns, a.Trials, a.ExceptionRuns)
}

// ConfirmAtomicity is the atomicity phase 2.
func ConfirmAtomicity(prog Program, target AtomicityTarget, targetIndex int, o Options) AtomicityReport {
	o = o.withDefaults()
	rep := AtomicityReport{Target: target, Trials: o.Phase2Trials}
	for i := 0; i < o.Phase2Trials; i++ {
		seed := pairSeed(o.Seed, targetIndex+9_000_000, i)
		pol := NewAtomicityDirectedPolicy(target)
		pol.MaxPostponeAge = o.MaxPostponeAge
		res := sched.Run(prog, sched.Config{Seed: seed, Policy: pol, MaxSteps: o.MaxSteps})
		if len(pol.Violations()) > 0 {
			rep.ViolationRuns++
			if rep.FirstSeed == 0 {
				rep.FirstSeed = seed
			}
			if len(res.Exceptions) > 0 {
				rep.ExceptionRuns++
			}
		}
	}
	rep.IsReal = rep.ViolationRuns > 0
	rep.Probability = float64(rep.ViolationRuns) / float64(rep.Trials)
	return rep
}

// AnalyzeAtomicity runs the full atomicity pipeline.
func AnalyzeAtomicity(prog Program, o Options) []AtomicityReport {
	targets := DetectAtomicityTargets(prog, o)
	out := make([]AtomicityReport, 0, len(targets))
	for i, tg := range targets {
		out = append(out, ConfirmAtomicity(prog, tg, i, o))
	}
	return out
}
