package core

// Model programs for the engine golden cross-check (golden_test.go).
//
// FROZEN FILE: Fork/Join/Interrupt label statements with CallerStmt, so the
// golden trace bytes embed this file's line numbers. Editing these programs
// (or moving them within the file) invalidates testdata/engine/* — regenerate
// with `go test ./internal/core -run TestEngineGolden -update-engine-goldens`
// ONLY when an intentional engine-behavior change is being pinned.

import (
	"errors"

	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

var errGoldenBoom = errors.New("golden: boom")

// goldenMixed exercises every scheduler op kind except fork-free paths in
// one program: fork/join, reentrant monitor locks, wait/notify/notifyAll,
// interrupt (both a waiting and a running target), nops, reads and writes,
// and a thread that throws while holding one lock (forced release on death).
func goldenMixed() Program {
	sProduce := event.StmtFor("gm:produce")
	sConsume := event.StmtFor("gm:consume")
	sFlag := event.StmtFor("gm:flag")
	sWork := event.StmtFor("gm:work")
	sAcq := event.StmtFor("gm:acq")
	sRel := event.StmtFor("gm:rel")
	sWait := event.StmtFor("gm:wait")
	sNotify := event.StmtFor("gm:notify")
	sNotifyAll := event.StmtFor("gm:notifyAll")
	sThrow := event.StmtFor("gm:throw")
	return func(mt *sched.Thread) {
		s := mt.Scheduler()
		mon := s.NewLock("mon")
		box := s.NewLoc("box")
		flagLoc := s.NewLoc("flag")
		ready := false

		consumers := make([]*sched.Thread, 2)
		for i := range consumers {
			consumers[i] = mt.Fork("consumer", func(c *sched.Thread) {
				c.LockAcquire(mon, sAcq)
				for {
					c.MemRead(flagLoc, sFlag)
					if ready {
						break
					}
					c.MonitorWait(mon, sWait)
				}
				c.MemRead(box, sConsume)
				c.LockRelease(mon, sRel)
			})
		}
		waiter := mt.Fork("interruptee", func(c *sched.Thread) {
			c.LockAcquire(mon, sAcq)
			c.MonitorWait(mon, sWait) // ended by interrupt -> InterruptedException
			c.LockRelease(mon, sRel)
		})
		spinner := mt.Fork("spinner", func(c *sched.Thread) {
			for i := 0; i < 4; i++ {
				c.Nop(sWork)
			}
			if c.IsInterrupted() {
				c.ClearInterrupt()
			}
			for i := 0; i < 3; i++ {
				c.Nop(sWork)
			}
		})
		thrower := mt.Fork("thrower", func(c *sched.Thread) {
			c.LockAcquire(mon, sAcq)
			c.LockAcquire(mon, sAcq) // reentrant
			c.LockRelease(mon, sRel)
			c.Nop(sThrow)
			c.Throw(errGoldenBoom) // dies holding one level of mon
		})

		for i := 0; i < 3; i++ {
			mt.Nop(sWork)
		}
		mt.Interrupt(spinner)
		mt.LockAcquire(mon, sAcq)
		mt.MemWrite(box, sProduce)
		mt.MemWrite(flagLoc, sFlag)
		ready = true
		mt.MonitorNotify(mon, sNotify)
		mt.MonitorNotifyAll(mon, sNotifyAll)
		mt.LockRelease(mon, sRel)
		mt.Interrupt(waiter)
		mt.Join(consumers[0])
		mt.Join(consumers[1])
		mt.Join(waiter)
		mt.Join(spinner)
		mt.Join(thrower)
	}
}

// goldenAbba is the classic ABBA deadlock: two threads acquire two locks in
// opposite orders with a little padding work, deadlocking under directed
// (and occasionally random) scheduling.
func goldenAbba() Program {
	sA := event.StmtFor("ga:a")
	sB := event.StmtFor("ga:b")
	sW := event.StmtFor("ga:w")
	return func(mt *sched.Thread) {
		s := mt.Scheduler()
		l1 := s.NewLock("L1")
		l2 := s.NewLock("L2")
		a := mt.Fork("a", func(c *sched.Thread) {
			c.Nop(sW)
			c.LockAcquire(l1, sA)
			c.Nop(sW)
			c.LockAcquire(l2, sA)
			c.LockRelease(l2, sA)
			c.LockRelease(l1, sA)
		})
		b := mt.Fork("b", func(c *sched.Thread) {
			c.Nop(sW)
			c.LockAcquire(l2, sB)
			c.Nop(sW)
			c.LockAcquire(l1, sB)
			c.LockRelease(l1, sB)
			c.LockRelease(l2, sB)
		})
		mt.Join(a)
		mt.Join(b)
	}
}

// goldenLostUpdate is the unlocked read-modify-write block the atomicity
// pipeline targets, with a locked counter alongside for contrast.
func goldenLostUpdate() Program {
	rStmt := event.StmtFor("glu:read")
	wStmt := event.StmtFor("glu:write")
	lr := event.StmtFor("glu:lockedread")
	lw := event.StmtFor("glu:lockedwrite")
	acq := event.StmtFor("glu:acq")
	rel := event.StmtFor("glu:rel")
	return func(mt *sched.Thread) {
		s := mt.Scheduler()
		loc := s.NewLoc("counter")
		safeLoc := s.NewLoc("safe")
		lk := s.NewLock("L")
		counter, safe := 0, 0
		body := func(c *sched.Thread) {
			c.MemRead(loc, rStmt)
			v := counter
			c.MemWrite(loc, wStmt)
			counter = v + 1

			c.LockAcquire(lk, acq)
			c.MemRead(safeLoc, lr)
			sv := safe
			c.MemWrite(safeLoc, lw)
			safe = sv + 1
			c.LockRelease(lk, rel)
		}
		a := mt.Fork("a", body)
		b := mt.Fork("b", body)
		mt.Join(a)
		mt.Join(b)
	}
}
