package core

import (
	"fmt"

	"racefuzzer/internal/deadlock"
	"racefuzzer/internal/event"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/sched"
)

// The deadlock instantiation of active testing (§1): phase 1 predicts
// potential deadlocks from lock-order-graph cycles; phase 2 confirms them by
// directing the scheduler to complete each cycle. This mirrors the
// race pipeline exactly — cycle warnings play the role of racing pairs, the
// DeadlockDirectedPolicy plays the role of RaceFuzzerPolicy, and a real
// deadlock reported by the scheduler is the confirmation.

// DetectPotentialDeadlocks is the deadlock phase 1: observe Phase1Trials
// random executions with the lock-order-graph detector and union the cycles.
func DetectPotentialDeadlocks(prog Program, o Options) []deadlock.Cycle {
	return DetectPotentialDeadlocksWithPolicy(prog, o, nil)
}

// DetectPotentialDeadlocksWithPolicy is DetectPotentialDeadlocks under an
// explicit observation policy (nil = random). The graph analysis is
// predictive: cycles are found even in executions that never deadlock.
//
// An explicit policy instance is stateful and shared across the trials, so
// in that case the trials run sequentially regardless of Options.Workers;
// with the default (nil) policy each trial builds its own and the trials
// fan out across the campaign executor.
func DetectPotentialDeadlocksWithPolicy(prog Program, o Options, pol sched.Policy) []deadlock.Cycle {
	o = o.withDefaults()
	type key struct{ a, b event.LockID }
	union := make(map[key]deadlock.Cycle)
	var order []key
	workers := o.workerCount()
	if pol != nil {
		workers = 1
	}
	type obsRun struct {
		cycles []deadlock.Cycle
		res    *sched.Result
	}
	runOrdered(workers, o.Phase1Trials,
		func(i int) obsRun {
			det := deadlock.New()
			p := pol
			if p == nil {
				p = sched.NewRandomPolicy()
			}
			var rm *obs.RunMetrics
			if o.observing() {
				rm = obs.NewRunMetrics()
			}
			tr := o.Prof.StartTrial(o.Label, o.Seed+int64(i))
			res := sched.Run(prog, sched.Config{
				Seed:       o.Seed + int64(i),
				Policy:     p,
				Observers:  []sched.Observer{det},
				MaxSteps:   o.MaxSteps,
				Metrics:    rm,
				Introspect: o.Introspect,
				Prof:       tr,
			})
			o.Prof.FinishTrial(tr)
			return obsRun{cycles: det.Cycles(), res: res}
		},
		func(i int, r obsRun) {
			if o.observing() {
				o.emit(o.phase1Record("deadlock", i, o.Seed+int64(i), r.res))
			}
			for _, c := range r.cycles {
				k := key{c.Locks[0], c.Locks[1]}
				if _, ok := union[k]; !ok {
					union[k] = c
					order = append(order, k)
				}
			}
		})
	out := make([]deadlock.Cycle, 0, len(order))
	for _, k := range order {
		out = append(out, union[k])
	}
	return out
}

// DeadlockReport is the phase-2 verdict for one potential cycle.
type DeadlockReport struct {
	Cycle deadlock.Cycle
	// Trials is the number of directed executions.
	Trials int
	// DeadlockRuns is the number that ended in a real deadlock on the
	// cycle's locks.
	DeadlockRuns int
	// Probability = DeadlockRuns / Trials.
	Probability float64
	// IsReal reports whether any trial created the deadlock.
	IsReal bool
	// FirstTrial is the 0-based index of the first deadlocking trial, -1
	// when none (derived seeds can legitimately be 0, so the seed itself is
	// not a sentinel).
	FirstTrial int
	// FirstSeed replays a deadlocking run (meaningful when FirstTrial >= 0).
	FirstSeed int64
	// TracePath is the auto-captured witness recording of the first
	// deadlocking trial ("" unless Options.TraceDir was set and a deadlock
	// occurred); TraceErr reports a failed capture attempt.
	TracePath string
	TraceErr  error
	// PerfPath is the Perfetto timeline exported for the first deadlocking
	// trial (see PairReport.PerfPath); PerfErr reports a failed export.
	PerfPath string
	PerfErr  error
	// Known reports that the confirmed deadlock's signature was already in
	// the campaign's corpus (see PairReport.Known).
	Known bool
}

func (d DeadlockReport) String() string {
	verdict := "NOT CONFIRMED"
	if d.IsReal {
		verdict = "REAL DEADLOCK"
		if d.Known {
			verdict += " [known]"
		}
	}
	return fmt.Sprintf("locks %s/%s: %s, p=%.2f (%d/%d runs)",
		d.Cycle.Locks[0], d.Cycle.Locks[1], verdict, d.Probability, d.DeadlockRuns, d.Trials)
}

// ConfirmDeadlock is the deadlock phase 2: Phase2Trials executions under a
// DeadlockDirectedPolicy focused on the cycle's lock pair. Trials run on the
// campaign executor and are merged in trial order (see parallel.go).
func ConfirmDeadlock(prog Program, cycle deadlock.Cycle, cycleIndex int, o Options) DeadlockReport {
	o = o.withDefaults()
	agg := newDeadlockAgg(prog, cycle, cycleIndex, o)
	runOrdered(o.workerCount(), o.Phase2Trials,
		func(i int) *sched.Result { return deadlockTrial(prog, agg.target, cycleIndex, i, o) },
		agg.add)
	return agg.finish()
}

// deadlockTrial is one directed execution of the deadlock phase 2.
func deadlockTrial(prog Program, target [2]event.LockID, cycleIndex, i int, o Options) *sched.Result {
	pol := NewDeadlockDirectedPolicy()
	pol.TargetLocks = &target
	pol.MaxPostponeAge = o.MaxPostponeAge
	var rm *obs.RunMetrics
	if o.observing() {
		rm = obs.NewRunMetrics()
	}
	seed := pairSeed(o.Seed, cycleIndex+7_000_000, i)
	tr := o.Prof.StartTrial(o.Label, seed)
	res := sched.Run(prog, sched.Config{
		Seed: seed, Policy: pol, MaxSteps: o.MaxSteps,
		Metrics: rm, Introspect: o.Introspect, Prof: tr,
	})
	o.Prof.FinishTrial(tr)
	return res
}

// deadlockAgg folds ConfirmDeadlock trial results in trial order.
type deadlockAgg struct {
	prog       Program
	cycleIndex int
	o          Options
	target     [2]event.LockID
	rep        DeadlockReport
}

func newDeadlockAgg(prog Program, cycle deadlock.Cycle, cycleIndex int, o Options) *deadlockAgg {
	return &deadlockAgg{
		prog: prog, cycleIndex: cycleIndex, o: o,
		target: [2]event.LockID{cycle.Locks[0], cycle.Locks[1]},
		rep:    DeadlockReport{Cycle: cycle, Trials: o.Phase2Trials, FirstTrial: -1},
	}
}

func (a *deadlockAgg) add(i int, res *sched.Result) {
	rep, o := &a.rep, a.o
	seed := pairSeed(o.Seed, a.cycleIndex+7_000_000, i)
	hit := res.Deadlock != nil && deadlockInvolves(res.Deadlock, a.target)
	tracePath := ""
	perfPath := ""
	finding := ""
	newCells := 0
	if hit {
		rep.DeadlockRuns++
		if o.Corpus != nil && o.Corpus.Observe(deadlockSignature(rep.Cycle), "deadlock") {
			newCells++
		}
		if rep.FirstTrial < 0 {
			rep.FirstTrial = i
			rep.FirstSeed = seed
			sig := deadlockSignature(rep.Cycle)
			pairStr := fmt.Sprintf("(%s, %s)", rep.Cycle.Locks[0], rep.Cycle.Locks[1])
			finding = o.reportFinding(sig, pairStr, a.cycleIndex, i, seed, runExceptionKinds(res))
			rep.Known = finding == "known"
			if o.wantWitness(finding) {
				_, witness := RecordDeadlockRun(a.prog, a.target, seed, o)
				tracePath, rep.TraceErr = capture(witness, o.witnessPath("deadlock", a.cycleIndex, i))
				rep.TracePath = tracePath
				if tracePath != "" {
					o.Corpus.AttachWitness(sig, tracePath)
				}
			}
			if o.PerfDir != "" {
				_, tl := ProfileDeadlockRun(a.prog, a.target, seed, o)
				perfPath, rep.PerfErr = savePerf(tl, o.perfPath("deadlock", a.cycleIndex, i))
				rep.PerfPath = perfPath
			}
		}
	}
	if o.observing() {
		rec := o.runRecord("deadlock", a.cycleIndex, i, seed, res)
		rec.Pair = fmt.Sprintf("(%s, %s)", rep.Cycle.Locks[0], rep.Cycle.Locks[1])
		rec.RaceCreated = hit
		if hit {
			rec.Races = 1
			rec.StepsToRace = res.Deadlock.Step
		}
		rec.Trace = tracePath
		rec.Perf = perfPath
		rec.Finding = finding
		rec.NewCells = newCells
		o.emit(rec)
	}
}

func (a *deadlockAgg) finish() DeadlockReport {
	a.rep.IsReal = a.rep.DeadlockRuns > 0
	a.rep.Probability = float64(a.rep.DeadlockRuns) / float64(a.rep.Trials)
	return a.rep
}

// deadlockInvolves reports whether a detected deadlock includes a thread
// blocked on either target lock (so an unrelated deadlock elsewhere in the
// program does not confirm this cycle).
func deadlockInvolves(d *sched.DeadlockInfo, target [2]event.LockID) bool {
	for _, b := range d.Blocked {
		if b.Lock == target[0] || b.Lock == target[1] {
			return true
		}
	}
	return false
}

// AnalyzeDeadlocks runs the full deadlock pipeline. Like Analyze, phase 2
// fans the whole (cycleIndex, trial) grid across the campaign executor and
// merges per cycle in trial order.
func AnalyzeDeadlocks(prog Program, o Options) []DeadlockReport {
	o = o.withDefaults()
	cycles := DetectPotentialDeadlocks(prog, o)
	if len(cycles) == 0 {
		return []DeadlockReport{}
	}
	trials := o.Phase2Trials
	aggs := make([]*deadlockAgg, len(cycles))
	for ci, c := range cycles {
		aggs[ci] = newDeadlockAgg(prog, c, ci, o)
	}
	runOrdered(o.workerCount(), len(cycles)*trials,
		func(k int) *sched.Result {
			ci, i := k/trials, k%trials
			return deadlockTrial(prog, aggs[ci].target, ci, i, o)
		},
		func(k int, res *sched.Result) {
			aggs[k/trials].add(k%trials, res)
		})
	out := make([]DeadlockReport, 0, len(cycles))
	for _, a := range aggs {
		out = append(out, a.finish())
	}
	return out
}
