package core

import (
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/obs"
)

// TestFirstRaceSeedZeroIsUsable pins the zero-seed sentinel fix: with base
// seed -1, pairSeed(-1, 0, 0) == 0, so the first race-creating trial has the
// perfectly legitimate seed 0. The trial index, not the seed, must signal
// "a race happened".
func TestFirstRaceSeedZeroIsUsable(t *testing.T) {
	if s := pairSeed(-1, 0, 0); s != 0 {
		t.Fatalf("pairSeed(-1,0,0) = %d, test premise broken", s)
	}
	rep := FuzzPair(bench.Figure2(5), bench.Fig2Pair, 0, Options{Seed: -1, Phase2Trials: 5})
	if !rep.IsReal {
		t.Fatalf("figure2 race not confirmed: %v", rep)
	}
	if rep.FirstRaceTrial != 0 {
		t.Fatalf("FirstRaceTrial = %d, want 0", rep.FirstRaceTrial)
	}
	if rep.FirstRaceSeed != 0 {
		t.Fatalf("FirstRaceSeed = %d, want 0", rep.FirstRaceSeed)
	}
	// The seed-0 run must replay to the same outcome.
	run := Replay(bench.Figure2(5), bench.Fig2Pair, 0, Options{})
	if !run.RaceCreated {
		t.Fatal("seed-0 replay did not recreate the race")
	}
}

func TestFirstTrialSentinelWhenNothingHappens(t *testing.T) {
	// Figure 1's x pair is a false alarm: no trial confirms it, so both
	// trial indices stay -1 even though seeds were consumed.
	rep := FuzzPair(bench.Figure1(), bench.Fig1PairX, 0, Options{Seed: 1, Phase2Trials: 10})
	if rep.IsReal {
		t.Fatalf("x pair unexpectedly confirmed: %v", rep)
	}
	if rep.FirstRaceTrial != -1 || rep.FirstExceptionTrial != -1 {
		t.Fatalf("sentinels = %d/%d, want -1/-1", rep.FirstRaceTrial, rep.FirstExceptionTrial)
	}
}

// collectSink records every emitted run record.
type collectSink struct{ recs []obs.RunRecord }

func (c *collectSink) Emit(rec obs.RunRecord) { c.recs = append(c.recs, rec) }

func TestFuzzPairEmitsOneRecordPerTrial(t *testing.T) {
	campaign := obs.NewCampaignMetrics()
	sink := &collectSink{}
	trials := 8
	rep := FuzzPair(bench.Figure2(5), bench.Fig2Pair, 0, Options{
		Seed: 3, Phase2Trials: trials, Label: "fig2",
		Metrics: campaign, Sink: sink,
	})
	if len(sink.recs) != trials {
		t.Fatalf("emitted %d records, want %d", len(sink.recs), trials)
	}
	if campaign.Runs() != int64(trials) {
		t.Fatalf("campaign aggregated %d runs, want %d", campaign.Runs(), trials)
	}
	for i, rec := range sink.recs {
		if rec.Label != "fig2" || rec.Phase != 2 || rec.Kind != "race" {
			t.Fatalf("record %d mislabelled: %+v", i, rec)
		}
		if rec.Trial != i || rec.Seed != pairSeed(3, 0, i) {
			t.Fatalf("record %d trial/seed = %d/%d", i, rec.Trial, rec.Seed)
		}
		if rec.Stats == nil {
			t.Fatalf("record %d missing stats", i)
		}
		if rec.RaceCreated && rec.StepsToRace < 0 {
			t.Fatalf("record %d created a race but StepsToRace = %d", i, rec.StepsToRace)
		}
	}
	// Per-pair aggregates come from the per-run stats.
	if rep.TotalDecisions <= 0 || rep.TotalSwitches <= 0 || rep.TotalPostpones <= 0 {
		t.Fatalf("aggregates empty: %+v", rep)
	}
	if int(rep.StepsToRace.Count) != rep.RaceRuns {
		t.Fatalf("steps-to-race count %d != race runs %d", rep.StepsToRace.Count, rep.RaceRuns)
	}
}

func TestAnalyzeAggregatesCampaignMetrics(t *testing.T) {
	campaign := obs.NewCampaignMetrics()
	o := Options{Seed: 1, Phase1Trials: 4, Phase2Trials: 10, Metrics: campaign}
	rep := Analyze(bench.Figure1(), o)
	wantRuns := int64(o.Phase1Trials + o.Phase2Trials*len(rep.Potential))
	if campaign.Runs() != wantRuns {
		t.Fatalf("campaign runs = %d, want %d", campaign.Runs(), wantRuns)
	}
	if rep.TotalSteps() <= 0 || rep.TotalDecisions() <= 0 {
		t.Fatalf("report totals empty: steps=%d decisions=%d",
			rep.TotalSteps(), rep.TotalDecisions())
	}
	s := campaign.Snapshot()
	counters := map[string]int64{}
	for _, nc := range s.Counters {
		counters[nc.Name] = nc.Value
	}
	if counters["runs.total"] != wantRuns || counters["runs.phase1"] != int64(o.Phase1Trials) {
		t.Fatalf("counters = %v", counters)
	}
	if counters["sched.steps"] <= 0 || counters["policy.decisions"] <= 0 {
		t.Fatalf("scheduler counters empty: %v", counters)
	}
}

// TestObservationDoesNotChangeVerdicts: attaching metrics must not perturb
// any schedule — identical seeds yield identical reports with and without
// observation.
func TestObservationDoesNotChangeVerdicts(t *testing.T) {
	plain := FuzzPair(bench.Figure1(), bench.Fig1PairZ, 0, Options{Seed: 5, Phase2Trials: 20})
	observed := FuzzPair(bench.Figure1(), bench.Fig1PairZ, 0, Options{
		Seed: 5, Phase2Trials: 20, Metrics: obs.NewCampaignMetrics(),
	})
	if plain.RaceRuns != observed.RaceRuns ||
		plain.ExceptionRuns != observed.ExceptionRuns ||
		plain.FirstRaceTrial != observed.FirstRaceTrial ||
		plain.FirstRaceSeed != observed.FirstRaceSeed ||
		plain.TotalSteps != observed.TotalSteps {
		t.Fatalf("observation changed outcomes:\nplain    = %+v\nobserved = %+v", plain, observed)
	}
}
