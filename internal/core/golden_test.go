package core

// Engine equivalence goldens: byte-exact pins of the scheduler's observable
// output — directed-pipeline reports, JSONL run logs, and flightrec trace
// recordings (the same bytes witness capture archives) — at fixed seeds.
// They were generated with the pre-optimization channel-based engine and
// prove the allocation-free grant engine reproduces it bit for bit.
//
// Regenerate (ONLY when intentionally changing engine-visible behavior):
//
//	go test ./internal/core -run TestEngineGolden -update-engine-goldens
//
// The model programs live in goldenprogs_test.go and are frozen: their
// CallerStmt labels embed line numbers, so that file must not be edited
// after generation.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/event"
	"racefuzzer/internal/flightrec"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/sched"
)

var updateEngineGoldens = flag.Bool("update-engine-goldens", false,
	"rewrite testdata/engine/* from the current engine instead of comparing")

func goldenCheck(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "engine", name)
	if *updateEngineGoldens {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-engine-goldens): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: engine output diverged from pre-change golden (%d bytes got, %d want)\nfirst divergence at byte %d",
			name, len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// dumpResult renders every deterministic field of a scheduler Result.
func dumpResult(b *bytes.Buffer, res *sched.Result) {
	fmt.Fprintf(b, "name=%q seed=%d steps=%d threads=%d locks=%d locations=%d aborted=%v stalls=%d\n",
		res.Name, res.Seed, res.Steps, res.Threads, res.Locks, res.Locations, res.Aborted, res.PolicyStalls)
	for _, ex := range res.Exceptions {
		fmt.Fprintf(b, "exception: %s\n", ex)
	}
	if res.Deadlock != nil {
		fmt.Fprintf(b, "%s\n", res.Deadlock)
	}
}

func dumpRaceReport(rep *Report) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "potential=%d\n", len(rep.Potential))
	for _, p := range rep.Potential {
		fmt.Fprintf(&b, "  %s\n", p)
	}
	for _, pr := range rep.Pairs {
		fmt.Fprintf(&b, "%s\n", pr.String())
		fmt.Fprintf(&b, "  firstRaceTrial=%d firstRaceSeed=%d firstExcTrial=%d firstExcSeed=%d deadlockRuns=%d totalSteps=%d\n",
			pr.FirstRaceTrial, pr.FirstRaceSeed, pr.FirstExceptionTrial, pr.FirstExceptionSeed,
			pr.DeadlockRuns, pr.TotalSteps)
	}
	fmt.Fprintf(&b, "real=%d\n", rep.RealCount())
	return b.Bytes()
}

// TestEngineGoldenRace pins the full race pipeline on the paper's figures:
// the report text and the JSONL run log at fixed seeds.
func TestEngineGoldenRace(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		seed int64
	}{
		{"figure1_s7", Program(bench.Figure1()), 7},
		{"figure2_s11", Program(bench.Figure2(12)), 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var log bytes.Buffer
			sink := obs.NewJSONLSink(&log)
			rep := Analyze(tc.prog, Options{
				Seed: tc.seed, Phase1Trials: 3, Phase2Trials: 20,
				Label: "golden-" + tc.name, Sink: sink,
			})
			if err := sink.Flush(); err != nil {
				t.Fatal(err)
			}
			goldenCheck(t, "report_race_"+tc.name+".txt", dumpRaceReport(rep))
			goldenCheck(t, "runlog_race_"+tc.name+".jsonl", log.Bytes())
		})
	}
}

// TestEngineGoldenRaceTraces pins the witness bytes of race-directed
// recorded runs (the same Save bytes witness auto-capture archives).
func TestEngineGoldenRaceTraces(t *testing.T) {
	for _, seed := range []int64{7, 999, 12345} {
		rr, rec := RecordRace(Program(bench.Figure1()), bench.Fig1PairZ, seed,
			Options{Label: "golden-trace"}.withDefaults())
		var b bytes.Buffer
		fmt.Fprintf(&b, "raceCreated=%v races=%d\n", rr.RaceCreated, len(rr.Races))
		dumpResult(&b, rr.Result)
		goldenCheck(t, fmt.Sprintf("result_race_figure1_s%d.txt", seed), b.Bytes())
		goldenCheck(t, fmt.Sprintf("trace_race_figure1_s%d.jsonl", seed), recordingBytes(t, rec))
	}
}

// TestEngineGoldenDeadlock pins the deadlock pipeline on the frozen ABBA
// program: the directed-trace bytes, the deadlocking Result, and the full
// AnalyzeDeadlocks report.
func TestEngineGoldenDeadlock(t *testing.T) {
	prog := goldenAbba()
	res, rec := RecordDeadlockRun(prog, [2]event.LockID{0, 1}, 5,
		Options{Label: "golden-abba"}.withDefaults())
	var b bytes.Buffer
	dumpResult(&b, res)
	goldenCheck(t, "result_deadlock_abba_s5.txt", b.Bytes())
	goldenCheck(t, "trace_deadlock_abba_s5.jsonl", recordingBytes(t, rec))

	var out bytes.Buffer
	for _, dr := range AnalyzeDeadlocks(prog, Options{Seed: 5, Phase1Trials: 3, Phase2Trials: 20}) {
		fmt.Fprintf(&out, "%s\n", dr.String())
		fmt.Fprintf(&out, "  firstTrial=%d firstSeed=%d\n", dr.FirstTrial, dr.FirstSeed)
	}
	goldenCheck(t, "report_deadlock_abba_s5.txt", out.Bytes())
}

// TestEngineGoldenAtomicity pins the atomicity pipeline on the frozen
// lost-update program: inferred targets, directed-trace bytes, and the full
// AnalyzeAtomicity report.
func TestEngineGoldenAtomicity(t *testing.T) {
	prog := goldenLostUpdate()
	targets := DetectAtomicityTargets(prog, Options{Seed: 8, Phase1Trials: 3})
	var b bytes.Buffer
	for _, tg := range targets {
		fmt.Fprintf(&b, "target %s..%s interferers=%d\n", tg.First, tg.Second, len(tg.Interferers))
	}
	if len(targets) > 0 {
		res, viols, rec := RecordAtomicityRun(prog, targets[0], 8,
			Options{Label: "golden-atom"}.withDefaults())
		fmt.Fprintf(&b, "violations=%d\n", len(viols))
		dumpResult(&b, res)
		goldenCheck(t, "trace_atom_lostupdate_s8.jsonl", recordingBytes(t, rec))
	}
	goldenCheck(t, "targets_atom_lostupdate_s8.txt", b.Bytes())

	var out bytes.Buffer
	for _, ar := range AnalyzeAtomicity(prog, Options{Seed: 8, Phase1Trials: 3, Phase2Trials: 20}) {
		fmt.Fprintf(&out, "%s\n", ar.String())
		fmt.Fprintf(&out, "  firstTrial=%d firstSeed=%d\n", ar.FirstTrial, ar.FirstSeed)
	}
	goldenCheck(t, "report_atom_lostupdate_s8.txt", out.Bytes())
}

// TestEngineGoldenMixed pins plain scheduler runs of the op-kind-complete
// mixed program (fork/join, reentrant locks, wait/notify/notifyAll,
// interrupts, a throw with a held lock) under random and quantum policies:
// full flightrec bytes — every event, decision, RNG draw count, and policy
// action — plus the Result.
func TestEngineGoldenMixed(t *testing.T) {
	cases := []struct {
		name   string
		policy sched.Policy
		seed   int64
	}{
		{"random_s3", sched.NewRandomPolicy(), 3},
		{"random_s42", sched.NewRandomPolicy(), 42},
		{"quantum_s9", sched.NewQuantumPolicy(3), 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := flightrec.NewRecorder(flightrec.Header{
				Label: "golden-mixed", Policy: tc.policy.Name(), Kind: "golden", Seed: tc.seed,
			})
			res := sched.Run(goldenMixed(), sched.Config{
				Seed: tc.seed, Policy: tc.policy, Name: "golden-mixed", Flight: rec,
			})
			rec.Finish(res)
			var b bytes.Buffer
			dumpResult(&b, res)
			goldenCheck(t, "result_mixed_"+tc.name+".txt", b.Bytes())
			goldenCheck(t, "trace_mixed_"+tc.name+".jsonl", recordingBytes(t, rec.Recording()))
		})
	}
}
