package core

import (
	"testing"

	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

// lostUpdateProgram: two threads perform unlocked counter increments (the
// classic lost-update block) plus one properly locked counter for contrast.
func lostUpdateProgram(final *int) Program {
	rStmt := event.StmtFor("lu:read")
	wStmt := event.StmtFor("lu:write")
	lrStmt := event.StmtFor("lu:lockedread")
	lwStmt := event.StmtFor("lu:lockedwrite")
	return func(mt *sched.Thread) {
		s := mt.Scheduler()
		loc := s.NewLoc("counter")
		safeLoc := s.NewLoc("safe")
		lk := s.NewLock("L")
		counter, safe := 0, 0
		body := func(c *sched.Thread) {
			c.MemRead(loc, rStmt)
			v := counter
			c.MemWrite(loc, wStmt)
			counter = v + 1

			c.LockAcquire(lk, event.StmtFor("lu:acq"))
			c.MemRead(safeLoc, lrStmt)
			sv := safe
			c.MemWrite(safeLoc, lwStmt)
			safe = sv + 1
			c.LockRelease(lk, event.StmtFor("lu:rel"))
		}
		a := mt.Fork("a", body)
		b := mt.Fork("b", body)
		mt.Join(a)
		mt.Join(b)
		if final != nil {
			*final = counter
		}
	}
}

func TestAtomicityPipelineFindsLostUpdate(t *testing.T) {
	opts := Options{Seed: 8, Phase1Trials: 6, Phase2Trials: 40}
	targets := DetectAtomicityTargets(lostUpdateProgram(nil), opts)
	var unlocked *AtomicityTarget
	for i := range targets {
		tg := targets[i]
		if tg.First == event.StmtFor("lu:read") {
			unlocked = &tg
		}
		if tg.First == event.StmtFor("lu:lockedread") {
			t.Fatalf("locked block inferred as candidate: %v", tg)
		}
	}
	if unlocked == nil {
		t.Fatalf("lost-update block not inferred; targets = %v", targets)
	}

	rep := ConfirmAtomicity(lostUpdateProgram(nil), *unlocked, 0, opts)
	if !rep.IsReal {
		t.Fatalf("violation not confirmed: %v", rep)
	}
	if rep.Probability < 0.5 {
		t.Fatalf("violation probability %.2f, want high (directed)", rep.Probability)
	}

	// The confirmed violation must manifest as a lost update in some run.
	lost := false
	for i := int64(0); i < 40 && !lost; i++ {
		var final int
		pol := NewAtomicityDirectedPolicy(*unlocked)
		sched.Run(lostUpdateProgram(&final), sched.Config{Seed: 3000 + i, Policy: pol})
		if len(pol.Violations()) > 0 && final == 1 {
			lost = true
		}
	}
	if !lost {
		t.Fatal("violation never manifested as a lost update")
	}
}

func TestAnalyzeAtomicityEndToEnd(t *testing.T) {
	reps := AnalyzeAtomicity(lostUpdateProgram(nil), Options{Seed: 17, Phase1Trials: 4, Phase2Trials: 20})
	if len(reps) == 0 {
		t.Fatal("no atomicity reports")
	}
	real := 0
	for _, r := range reps {
		if r.IsReal {
			real++
		}
		if r.String() == "" {
			t.Fatal("empty report")
		}
	}
	if real == 0 {
		t.Fatalf("no confirmed violations: %v", reps)
	}
}

func TestAtomicityPipelineQuietOnAtomicProgram(t *testing.T) {
	// All increments locked: no candidates at all.
	prog := func(mt *sched.Thread) {
		s := mt.Scheduler()
		loc := s.NewLoc("x")
		lk := s.NewLock("L")
		x := 0
		body := func(c *sched.Thread) {
			for i := 0; i < 3; i++ {
				c.LockAcquire(lk, event.StmtFor("qa:acq"))
				c.MemRead(loc, event.StmtFor("qa:read"))
				v := x
				c.MemWrite(loc, event.StmtFor("qa:write"))
				x = v + 1
				c.LockRelease(lk, event.StmtFor("qa:rel"))
			}
		}
		a := mt.Fork("a", body)
		b := mt.Fork("b", body)
		mt.Join(a)
		mt.Join(b)
	}
	targets := DetectAtomicityTargets(prog, Options{Seed: 4, Phase1Trials: 5})
	if len(targets) != 0 {
		t.Fatalf("candidates on a fully locked program: %v", targets)
	}
}
