// Package core implements the paper's primary contribution: the RaceFuzzer
// algorithm (Algorithms 1 and 2) and the two-phase active-testing pipeline
// around it — phase 1 computes potentially racing statement pairs with the
// hybrid detector; phase 2 runs the program under a race-directed random
// scheduler for each pair, creating real races with high probability,
// resolving them randomly to expose errors, and classifying real races from
// false warnings with no manual inspection.
//
// The package also contains the baselines the paper compares against
// (simple random scheduling, a run-to-block "default scheduler" stand-in,
// RAPOS) and the generalized active-testing guidances sketched in §1
// (deadlock-directed and atomicity-violation-directed scheduling).
package core

import (
	"fmt"
	"sort"

	"racefuzzer/internal/event"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/rng"
	"racefuzzer/internal/sched"
)

// DefaultMaxPostponeAge is the default bound (in scheduler steps) on how
// long a thread may sit in the postponed set. It realizes §4's livelock
// monitor — "periodically removes those threads from the postponed set that
// are waiting for a long time" — with deterministic step counting instead of
// wall-clock timers, preserving seed replay.
const DefaultMaxPostponeAge = 5000

// RealRace is a race condition RaceFuzzer actually created: two threads
// were simultaneously about to execute statements of the target pair on the
// same dynamic memory location, at least one writing. By construction there
// are no false positives (§3: "no false warnings").
type RealRace struct {
	// Target is the RaceSet (potential pair from phase 1) being tested.
	Target event.StmtPair
	// Pair is the pair of statements that actually raced (its statements are
	// drawn from Target; both may be the same statement).
	Pair event.StmtPair
	// Loc is the dynamic memory location both threads were about to touch.
	Loc event.MemLoc
	// LocName is Loc's debug name.
	LocName string
	// Candidate is the thread whose arrival completed the race; Postponed
	// are the parked threads it raced with (all of Racing(s, t, postponed)).
	Candidate event.ThreadID
	Postponed []event.ThreadID
	// Step is the scheduler step at which the race was created.
	Step int
	// CandidateFirst records the random resolution: true if the arriving
	// thread executed first, false if the postponed side went first.
	CandidateFirst bool
}

func (r RealRace) String() string {
	order := "postponed-first"
	if r.CandidateFirst {
		order = "candidate-first"
	}
	return fmt.Sprintf("real race %s on %s(%s) between %s and %v at step %d, resolved %s",
		r.Pair, r.Loc, r.LocName, r.Candidate, r.Postponed, r.Step, order)
}

// ResolutionMode selects how a created race is resolved. The paper's
// algorithm flips a fair coin (ResolveRandom); the deterministic modes exist
// for the ablation study in DESIGN.md — fixing the order halves the explored
// outcomes and can hide exactly the erroneous order.
type ResolutionMode int

const (
	// ResolveRandom is Algorithm 1 lines 10–19: a fair coin.
	ResolveRandom ResolutionMode = iota
	// ResolveCandidateFirst always executes the arriving thread first.
	ResolveCandidateFirst
	// ResolvePostponedFirst always executes the postponed side first.
	ResolvePostponedFirst
)

// RaceFuzzerPolicy is Algorithm 1: a scheduling policy that picks random
// enabled threads but postpones any thread whose next statement is in the
// target pair until another thread arrives at the pair with a genuinely
// conflicting access, then reports the real race and resolves it randomly.
type RaceFuzzerPolicy struct {
	// Target is the potentially racing statement pair (the RaceSet).
	Target event.StmtPair
	// Targets optionally widens the RaceSet to several pairs at once (their
	// union of statements): one campaign can then confirm many phase-1
	// warnings, at the cost of more postponement traffic per run. When
	// non-empty, Target is ignored.
	Targets []event.StmtPair
	// MaxPostponeAge bounds postponement (steps); <0 disables the livelock
	// monitor, 0 means DefaultMaxPostponeAge.
	MaxPostponeAge int
	// Resolution selects the race-resolution strategy (ablation knob;
	// the zero value is the paper's random resolution).
	Resolution ResolutionMode
	// Metrics, when non-nil, receives postpone/resume/livelock-breaker and
	// decision counts. Probe calls are nil-safe, so the off path costs one
	// nil check per event.
	Metrics *obs.RunMetrics

	postponed map[event.ThreadID]int // thread → step at which it was postponed
	// justReleased marks threads evicted from postponed (line 26 or the
	// livelock monitor): their next selection executes unconditionally —
	// evicting without running would just re-postpone them forever, which is
	// why the paper's implementation pairs eviction with progress (§4).
	justReleased map[event.ThreadID]bool
	races        []RealRace
	released     int // threads released by the postponed==enabled rule (line 26)
	aged         int // threads released by the livelock monitor
	tracked      int // executed target-statement accesses (RaceFuzzer's tracked work)
	steps        int // scheduling rounds taken
}

// NewRaceFuzzerPolicy returns a policy targeting pair.
func NewRaceFuzzerPolicy(pair event.StmtPair) *RaceFuzzerPolicy {
	return &RaceFuzzerPolicy{Target: pair}
}

// NewRaceFuzzerSetPolicy returns a policy whose RaceSet is the union of the
// given pairs.
func NewRaceFuzzerSetPolicy(pairs []event.StmtPair) *RaceFuzzerPolicy {
	return &RaceFuzzerPolicy{Targets: pairs}
}

// inRaceSet reports whether s is a statement of the (single or multi) target.
func (p *RaceFuzzerPolicy) inRaceSet(s event.Stmt) bool {
	if len(p.Targets) > 0 {
		for _, tg := range p.Targets {
			if tg.Contains(s) {
				return true
			}
		}
		return false
	}
	return p.Target.Contains(s)
}

// targetOf returns a pair from the RaceSet containing both statements, for
// attribution of a created race (falls back to the raw pair: a race between
// statements of different warnings is still a real race).
func (p *RaceFuzzerPolicy) targetOf(a, b event.Stmt) event.StmtPair {
	if len(p.Targets) == 0 {
		return p.Target
	}
	for _, tg := range p.Targets {
		if tg.Contains(a) && tg.Contains(b) {
			return tg
		}
	}
	return event.MakeStmtPair(a, b)
}

// Name implements sched.Policy.
func (p *RaceFuzzerPolicy) Name() string { return "racefuzzer" }

// Races returns the real races created during the run.
func (p *RaceFuzzerPolicy) Races() []RealRace { return p.races }

// RaceCreated reports whether at least one real race was created.
func (p *RaceFuzzerPolicy) RaceCreated() bool { return len(p.races) > 0 }

// Stats returns counters for the two relief valves (line-26 releases and
// livelock-monitor releases), used by ablation benchmarks.
func (p *RaceFuzzerPolicy) Stats() (released, aged int) { return p.released, p.aged }

// PostponedThreads implements sched.PostponedReporter: the current
// postponed set in ascending thread order, surfaced by live scheduler
// introspection (/debug/sched). Called on the controller goroutine only.
func (p *RaceFuzzerPolicy) PostponedThreads() []event.ThreadID { return p.sortedPostponed() }

// Tracked returns the number of target-statement encounters — the accesses
// RaceFuzzer actually had to reason about. The paper's low-overhead claim
// (§4) is that this is tiny compared to the total memory accesses the hybrid
// detector must track; the harness reports both side by side.
func (p *RaceFuzzerPolicy) Tracked() int { return p.tracked }

// sortedPostponed returns the postponed set in ascending thread order so
// random selections over it are seed-deterministic.
func (p *RaceFuzzerPolicy) sortedPostponed() []event.ThreadID {
	out := make([]event.ThreadID, 0, len(p.postponed))
	for tid := range p.postponed {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Step implements sched.Policy; it is one iteration of Algorithm 1's loop.
func (p *RaceFuzzerPolicy) Step(v *sched.View, r *rng.Rand) sched.Decision {
	if p.postponed == nil {
		p.postponed = make(map[event.ThreadID]int)
		p.justReleased = make(map[event.ThreadID]bool)
	}
	maxAge := p.MaxPostponeAge
	if maxAge == 0 {
		maxAge = DefaultMaxPostponeAge
	}
	if maxAge > 0 {
		for _, tid := range p.sortedPostponed() {
			if v.Step-p.postponed[tid] > maxAge {
				delete(p.postponed, tid)
				p.justReleased[tid] = true
				p.aged++
				p.Metrics.LivelockBreak()
				v.Act(sched.ActionRecord{Kind: sched.ActLivelockBreak, Step: v.Step, Thread: tid,
					Loc: event.NoLoc, Lock: event.NoLock})
			}
		}
	}

	// t := a random thread in Enabled(s) \ postponed   (line 5)
	cand := make([]event.ThreadID, 0, len(v.Enabled))
	for _, tid := range v.Enabled {
		if _, pp := p.postponed[tid]; !pp {
			cand = append(cand, tid)
		}
	}
	if len(cand) == 0 {
		// postponed ⊇ Enabled(s): remove a random element (lines 26–28).
		keys := p.sortedPostponed()
		if len(keys) == 0 {
			return sched.Decision{} // no live threads to manage; let the scheduler proceed
		}
		evicted := keys[r.Intn(len(keys))]
		delete(p.postponed, evicted)
		p.justReleased[evicted] = true
		p.released++
		p.Metrics.Resume()
		v.Act(sched.ActionRecord{Kind: sched.ActResume, Step: v.Step, Thread: evicted,
			Loc: event.NoLoc, Lock: event.NoLock})
		return sched.Decision{}
	}
	t := cand[r.Intn(len(cand))]
	op := v.Op(t)

	p.steps++
	p.Metrics.Decision()
	if p.justReleased[t] {
		// An evicted thread executes its pending statement unconditionally.
		delete(p.justReleased, t)
		if op.IsMem() && p.inRaceSet(op.Stmt) {
			p.tracked++
		}
		return v.Grant(t)
	}
	// if NextStmt(s, t) ∈ RaceSet   (line 6)
	if op.IsMem() && p.inRaceSet(op.Stmt) {
		// R := Racing(s, t, postponed)   (line 7, Algorithm 2)
		var races []event.ThreadID
		for _, tid := range p.sortedPostponed() {
			if v.IsAlive(tid) && v.Op(tid).ConflictsWith(op) {
				races = append(races, tid)
			}
		}
		if len(races) > 0 {
			// Actual race detected (lines 8–9); resolve randomly (10–19).
			// The raced statement pair is (op.Stmt, first postponed stmt) —
			// all members of R access the same location, and their statements
			// are in Target by the postponement invariant.
			raced := event.MakeStmtPair(op.Stmt, v.Op(races[0]).Stmt)
			rec := RealRace{
				Target: p.targetOf(op.Stmt, v.Op(races[0]).Stmt), Pair: raced, Loc: op.Loc,
				LocName: v.LocName(op.Loc), Candidate: t,
				Postponed: append([]event.ThreadID(nil), races...),
				Step:      v.Step,
			}
			candidateFirst := r.Bool() // line 11: the coin is always drawn,
			// keeping the random stream aligned across resolution modes.
			switch p.Resolution {
			case ResolveCandidateFirst:
				candidateFirst = true
			case ResolvePostponedFirst:
				candidateFirst = false
			}
			v.Act(sched.ActionRecord{
				Kind: sched.ActRace, Step: v.Step, Thread: t,
				Others: append([]event.ThreadID(nil), races...),
				Stmt:   op.Stmt, OtherStmt: v.Op(races[0]).Stmt,
				Loc: op.Loc, LocName: v.LocName(op.Loc), Lock: event.NoLock,
				CandidateFirst: candidateFirst,
			})
			if candidateFirst {
				rec.CandidateFirst = true
				p.races = append(p.races, rec)
				p.tracked++
				return v.Grant(t) // line 12
			}
			p.races = append(p.races, rec)
			p.postponed[t] = v.Step // line 14
			p.Metrics.Postpone()
			v.Act(sched.ActionRecord{Kind: sched.ActPostpone, Step: v.Step, Thread: t,
				Stmt: op.Stmt, Loc: op.Loc, LocName: v.LocName(op.Loc), Lock: event.NoLock})
			for _, tid := range races {
				delete(p.postponed, tid) // line 17
			}
			p.tracked += len(races)
			return sched.Decision{Grants: races} // line 16
		}
		// Wait for a race to happen (line 21).
		p.postponed[t] = v.Step
		p.Metrics.Postpone()
		v.Act(sched.ActionRecord{Kind: sched.ActPostpone, Step: v.Step, Thread: t,
			Stmt: op.Stmt, Loc: op.Loc, LocName: v.LocName(op.Loc), Lock: event.NoLock})
		return sched.Decision{}
	}
	// Trivial case: execute the next statement (line 24).
	return v.Grant(t)
}
