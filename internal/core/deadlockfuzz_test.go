package core

import (
	"testing"

	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

// gatedAbbaProgram nests the ABBA pattern under a common gate lock: the
// lock-order graph shows opposite edges, but the gate makes the deadlock
// infeasible — a phase-1 false positive the gate rule must suppress.
func gatedAbbaProgram() Program {
	return func(mt *sched.Thread) {
		s := mt.Scheduler()
		gate := s.NewLock("G")
		l1 := s.NewLock("L1")
		l2 := s.NewLock("L2")
		a := mt.Fork("a", func(c *sched.Thread) {
			c.LockAcquire(gate, event.StmtFor("gdl:a0"))
			c.LockAcquire(l1, event.StmtFor("gdl:a1"))
			c.LockAcquire(l2, event.StmtFor("gdl:a2"))
			c.LockRelease(l2, event.StmtFor("gdl:a3"))
			c.LockRelease(l1, event.StmtFor("gdl:a4"))
			c.LockRelease(gate, event.StmtFor("gdl:a5"))
		})
		b := mt.Fork("b", func(c *sched.Thread) {
			c.LockAcquire(gate, event.StmtFor("gdl:b0"))
			c.LockAcquire(l2, event.StmtFor("gdl:b1"))
			c.LockAcquire(l1, event.StmtFor("gdl:b2"))
			c.LockRelease(l1, event.StmtFor("gdl:b3"))
			c.LockRelease(l2, event.StmtFor("gdl:b4"))
			c.LockRelease(gate, event.StmtFor("gdl:b5"))
		})
		mt.Join(a)
		mt.Join(b)
	}
}

func TestDeadlockPipelineConfirmsABBA(t *testing.T) {
	opts := Options{Seed: 5, Phase1Trials: 6, Phase2Trials: 30}
	cycles := DetectPotentialDeadlocks(abbaProgram(), opts)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v, want 1", cycles)
	}
	rep := ConfirmDeadlock(abbaProgram(), cycles[0], 0, opts)
	if !rep.IsReal {
		t.Fatalf("ABBA not confirmed: %v", rep)
	}
	if rep.Probability < 0.9 {
		t.Fatalf("confirmation probability %.2f, want ≈1 (directed)", rep.Probability)
	}
	// Replay: the recorded seed must deadlock again.
	target := [2]event.LockID{cycles[0].Locks[0], cycles[0].Locks[1]}
	pol := NewDeadlockDirectedPolicy()
	pol.TargetLocks = &target
	res := sched.Run(abbaProgram(), sched.Config{Seed: rep.FirstSeed, Policy: pol})
	if res.Deadlock == nil {
		t.Fatalf("replay of seed %d did not deadlock", rep.FirstSeed)
	}
}

func TestDeadlockPipelineRefutesGatedCycle(t *testing.T) {
	opts := Options{Seed: 9, Phase1Trials: 6, Phase2Trials: 30}
	cycles := DetectPotentialDeadlocks(gatedAbbaProgram(), opts)
	// The gate rule already suppresses the warning in phase 1.
	if len(cycles) != 0 {
		t.Fatalf("gated cycle reported in phase 1: %v", cycles)
	}
	// Even when forced (construct the cycle by hand), phase 2 cannot create
	// the deadlock: the gate serializes the nested sections.
	reps := AnalyzeDeadlocks(gatedAbbaProgram(), opts)
	if len(reps) != 0 {
		t.Fatalf("reports on a gated program: %v", reps)
	}
	for seed := int64(0); seed < 30; seed++ {
		pol := NewDeadlockDirectedPolicy() // unfocused: postpone every nesting
		pol.MaxPostponeAge = 100
		res := sched.Run(gatedAbbaProgram(), sched.Config{Seed: seed, Policy: pol})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: directed scheduling deadlocked a gate-protected program", seed)
		}
		if res.Aborted {
			t.Fatalf("seed %d: aborted", seed)
		}
	}
}

func TestDeadlockPipelineEndToEnd(t *testing.T) {
	reps := AnalyzeDeadlocks(abbaProgram(), Options{Seed: 21, Phase1Trials: 6, Phase2Trials: 20})
	if len(reps) != 1 || !reps[0].IsReal {
		t.Fatalf("reports = %v", reps)
	}
	if reps[0].String() == "" {
		t.Fatal("empty report string")
	}
}

func TestDeadlockPhase1NeedsTheBadInterleavingNot(t *testing.T) {
	// Phase 1 predicts the ABBA cycle even from executions that do NOT
	// deadlock (that is what makes it predictive): run under the sequential
	// policy, which always completes, and still find the cycle.
	det := func() []event.LockID { return nil }
	_ = det
	opts := Options{Seed: 3, Phase1Trials: 1}
	// Sequential runs thread a fully, then b: both edge directions observed,
	// no deadlock occurs.
	cycles := DetectPotentialDeadlocksWithPolicy(abbaProgram(), opts, sched.SequentialPolicy{})
	if len(cycles) != 1 {
		t.Fatalf("cycles from non-deadlocking run = %v", cycles)
	}
}
