package core

import (
	"fmt"
	"sort"

	"racefuzzer/internal/event"
	"racefuzzer/internal/rng"
	"racefuzzer/internal/sched"
)

// The paper notes (§1) that the race-directed scheduler generalizes: "we can
// bias the random scheduler by other potential concurrency problems such as
// potential atomicity violations … or potential deadlocks. The only thing
// that the random scheduler needs to know is a set of statements whose
// simultaneous execution could lead to a concurrency problem." This file
// implements that generalization.

// DeadlockDirectedPolicy actively tries to create lock-order deadlocks: any
// thread about to acquire a lock while already holding one is postponed, so
// that another thread can grab the complementary lock first. Once each of
// two threads holds the lock the other wants, both become disabled and the
// scheduler reports a real deadlock (Result.Deadlock) — the analogue of
// RaceFuzzer's "real race" confirmation for deadlock warnings.
//
// An optional TargetLocks pair focuses the search on a specific suspected
// cycle (the way RaceSet focuses RaceFuzzer); when nil, every nested
// acquisition is postponed.
type DeadlockDirectedPolicy struct {
	// TargetLocks, when non-nil, restricts postponement to acquisitions of
	// these two locks.
	TargetLocks *[2]event.LockID
	// MaxPostponeAge is the livelock-relief bound (0 = DefaultMaxPostponeAge).
	MaxPostponeAge int

	postponed map[event.ThreadID]int
}

// NewDeadlockDirectedPolicy returns an unfocused deadlock-directed policy.
func NewDeadlockDirectedPolicy() *DeadlockDirectedPolicy {
	return &DeadlockDirectedPolicy{}
}

// Name implements sched.Policy.
func (p *DeadlockDirectedPolicy) Name() string { return "deadlockfuzzer" }

func (p *DeadlockDirectedPolicy) isTargetLock(l event.LockID) bool {
	if p.TargetLocks == nil {
		return true
	}
	return l == p.TargetLocks[0] || l == p.TargetLocks[1]
}

// Step implements sched.Policy.
func (p *DeadlockDirectedPolicy) Step(v *sched.View, r *rng.Rand) sched.Decision {
	if p.postponed == nil {
		p.postponed = make(map[event.ThreadID]int)
	}
	maxAge := p.MaxPostponeAge
	if maxAge == 0 {
		maxAge = DefaultMaxPostponeAge
	}
	keys := make([]event.ThreadID, 0, len(p.postponed))
	for tid := range p.postponed {
		keys = append(keys, tid)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, tid := range keys {
		// Postponed threads that became disabled are already contributing to
		// a forming cycle; leave them alone. Age out long-stuck enabled ones.
		if v.Step-p.postponed[tid] > maxAge {
			delete(p.postponed, tid)
			v.Act(sched.ActionRecord{Kind: sched.ActLivelockBreak, Step: v.Step, Thread: tid,
				Loc: event.NoLoc, Lock: event.NoLock})
		}
	}

	cand := make([]event.ThreadID, 0, len(v.Enabled))
	for _, tid := range v.Enabled {
		if _, pp := p.postponed[tid]; !pp {
			cand = append(cand, tid)
		}
	}
	if len(cand) == 0 {
		keys = keys[:0]
		for tid := range p.postponed {
			if v.IsEnabled(tid) {
				keys = append(keys, tid)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if len(keys) == 0 {
			return sched.Decision{}
		}
		evicted := keys[r.Intn(len(keys))]
		delete(p.postponed, evicted)
		v.Act(sched.ActionRecord{Kind: sched.ActResume, Step: v.Step, Thread: evicted,
			Loc: event.NoLoc, Lock: event.NoLock})
		return sched.Decision{}
	}
	t := cand[r.Intn(len(cand))]
	op := v.Op(t)
	if op.Kind == sched.OpLock && p.isTargetLock(op.Lock) && len(v.HeldLocks(t)) > 0 {
		// Nested acquisition: hold it back so a partner can form the cycle.
		p.postponed[t] = v.Step
		v.Act(sched.ActionRecord{Kind: sched.ActPostpone, Step: v.Step, Thread: t,
			Loc: event.NoLoc, Lock: op.Lock})
		return sched.Decision{}
	}
	return v.Grant(t)
}

// AtomicityTarget describes a suspected atomicity violation: a thread's
// two-access atomic block (First then Second on the same logical data) and
// the statements that, interleaved between them, break serializability.
// Such triples come from atomicity inference tools (Atomizer et al., cited
// in §1); here they are supplied by the caller.
type AtomicityTarget struct {
	// First and Second delimit the intended-atomic block (program order in
	// one thread).
	First, Second event.Stmt
	// Interferers are statements whose execution between First and Second
	// violates atomicity (they conflict on the block's data).
	Interferers []event.Stmt
}

// Contains reports whether s is one of the target's interferer statements.
func (a AtomicityTarget) interferer(s event.Stmt) bool {
	for _, x := range a.Interferers {
		if x == s {
			return true
		}
	}
	return false
}

// AtomicityViolation is a confirmed violation: an interferer executed
// between the two halves of the atomic block while both conflicting
// accesses touched the same memory location.
type AtomicityViolation struct {
	Target     AtomicityTarget
	Victim     event.ThreadID // the thread inside its atomic block
	Interferer event.ThreadID
	Loc        event.MemLoc
	Step       int
}

func (av AtomicityViolation) String() string {
	return fmt.Sprintf("atomicity violation: %s interleaved %s between %s..%s of %s on %s at step %d",
		av.Interferer, av.Target.Interferers, av.Target.First, av.Target.Second, av.Victim, av.Loc, av.Step)
}

// AtomicityDirectedPolicy drives the scheduler to violate a suspected
// atomic block: when the victim thread is about to execute Second (meaning
// First already ran), it is postponed until an interferer statement is
// pending on the same location in another thread; the interferer is then
// deliberately scheduled first, the violation is recorded, and the victim
// resumes — observing the broken invariant if the warning was real.
type AtomicityDirectedPolicy struct {
	Target AtomicityTarget
	// MaxPostponeAge is the livelock-relief bound (0 = DefaultMaxPostponeAge).
	MaxPostponeAge int

	postponed  map[event.ThreadID]int
	violations []AtomicityViolation
}

// NewAtomicityDirectedPolicy returns a policy for the given target.
func NewAtomicityDirectedPolicy(target AtomicityTarget) *AtomicityDirectedPolicy {
	return &AtomicityDirectedPolicy{Target: target}
}

// Name implements sched.Policy.
func (p *AtomicityDirectedPolicy) Name() string { return "atomicityfuzzer" }

// Violations returns the confirmed violations.
func (p *AtomicityDirectedPolicy) Violations() []AtomicityViolation { return p.violations }

// Step implements sched.Policy.
func (p *AtomicityDirectedPolicy) Step(v *sched.View, r *rng.Rand) sched.Decision {
	if p.postponed == nil {
		p.postponed = make(map[event.ThreadID]int)
	}
	maxAge := p.MaxPostponeAge
	if maxAge == 0 {
		maxAge = DefaultMaxPostponeAge
	}
	keys := make([]event.ThreadID, 0, len(p.postponed))
	for tid := range p.postponed {
		keys = append(keys, tid)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, tid := range keys {
		if v.Step-p.postponed[tid] > maxAge {
			delete(p.postponed, tid)
			v.Act(sched.ActionRecord{Kind: sched.ActLivelockBreak, Step: v.Step, Thread: tid,
				Loc: event.NoLoc, Lock: event.NoLock})
		}
	}

	cand := make([]event.ThreadID, 0, len(v.Enabled))
	for _, tid := range v.Enabled {
		if _, pp := p.postponed[tid]; !pp {
			cand = append(cand, tid)
		}
	}
	if len(cand) == 0 {
		if len(keys) == 0 {
			return sched.Decision{}
		}
		evicted := keys[r.Intn(len(keys))]
		delete(p.postponed, evicted)
		v.Act(sched.ActionRecord{Kind: sched.ActResume, Step: v.Step, Thread: evicted,
			Loc: event.NoLoc, Lock: event.NoLock})
		return sched.Decision{}
	}
	t := cand[r.Intn(len(cand))]
	op := v.Op(t)

	if op.IsMem() && op.Stmt == p.Target.Second {
		// Victim is between First and Second: look for a pending interferer
		// on the same location (enabled or already postponed is irrelevant —
		// interferers are never postponed by this policy).
		var hit event.ThreadID = event.NoThread
		for _, tid := range v.Enabled {
			if tid == t {
				continue
			}
			iop := v.Op(tid)
			if iop.IsMem() && p.Target.interferer(iop.Stmt) && iop.Loc == op.Loc &&
				(iop.IsWrite() || op.IsWrite()) {
				hit = tid
				break
			}
		}
		if hit != event.NoThread {
			p.violations = append(p.violations, AtomicityViolation{
				Target: p.Target, Victim: t, Interferer: hit, Loc: op.Loc, Step: v.Step,
			})
			delete(p.postponed, t)
			v.Act(sched.ActionRecord{Kind: sched.ActViolation, Step: v.Step, Thread: t,
				Others: []event.ThreadID{hit}, Stmt: p.Target.Second, OtherStmt: v.Op(hit).Stmt,
				Loc: op.Loc, LocName: v.LocName(op.Loc), Lock: event.NoLock})
			// Deliberately schedule the interferer inside the block, then
			// let the victim observe the damage.
			return sched.Decision{Grants: []event.ThreadID{hit, t}}
		}
		p.postponed[t] = v.Step
		v.Act(sched.ActionRecord{Kind: sched.ActPostpone, Step: v.Step, Thread: t,
			Stmt: op.Stmt, Loc: op.Loc, LocName: v.LocName(op.Loc), Lock: event.NoLock})
		return sched.Decision{}
	}

	if op.IsMem() && p.Target.interferer(op.Stmt) {
		// The mirror case (RaceFuzzer's Racing() over the postponed set):
		// a victim is already parked at Second; this candidate interferes
		// with it. Schedule the interferer inside the block, then release
		// the victim.
		for _, tid := range p.sortedPostponedKeys() {
			vop := v.Op(tid)
			if v.IsAlive(tid) && vop.IsMem() && vop.Stmt == p.Target.Second &&
				vop.Loc == op.Loc && (vop.IsWrite() || op.IsWrite()) {
				p.violations = append(p.violations, AtomicityViolation{
					Target: p.Target, Victim: tid, Interferer: t, Loc: op.Loc, Step: v.Step,
				})
				delete(p.postponed, tid)
				v.Act(sched.ActionRecord{Kind: sched.ActViolation, Step: v.Step, Thread: tid,
					Others: []event.ThreadID{t}, Stmt: p.Target.Second, OtherStmt: op.Stmt,
					Loc: op.Loc, LocName: v.LocName(op.Loc), Lock: event.NoLock})
				return sched.Decision{Grants: []event.ThreadID{t, tid}}
			}
		}
		// No victim is in its block yet: hold the interferer back the way
		// Algorithm 1 postpones both sides of the racing pair, so it is
		// still pending when a victim reaches Second.
		p.postponed[t] = v.Step
		v.Act(sched.ActionRecord{Kind: sched.ActPostpone, Step: v.Step, Thread: t,
			Stmt: op.Stmt, Loc: op.Loc, LocName: v.LocName(op.Loc), Lock: event.NoLock})
		return sched.Decision{}
	}
	return v.Grant(t)
}

// sortedPostponedKeys returns the postponed set in thread order for
// deterministic iteration.
func (p *AtomicityDirectedPolicy) sortedPostponedKeys() []event.ThreadID {
	out := make([]event.ThreadID, 0, len(p.postponed))
	for tid := range p.postponed {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
