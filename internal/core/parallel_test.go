package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/event"
	"racefuzzer/internal/obs"
)

// workerSweep is the acceptance grid: sequential (0 and 1 are both the
// sequential path), a small pool, and an oversubscribed pool.
var workerSweep = []int{0, 1, 4, 8}

func TestRunOrderedConsumesInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		var order []int
		runOrdered(workers, 17,
			func(i int) int { return i * i },
			func(i, r int) {
				if r != i*i {
					t.Fatalf("workers=%d: slot %d got %d", workers, i, r)
				}
				order = append(order, i)
			})
		for i, got := range order {
			if got != i {
				t.Fatalf("workers=%d: consume order %v", workers, order)
			}
		}
		if len(order) != 17 {
			t.Fatalf("workers=%d: consumed %d of 17", workers, len(order))
		}
	}
}

func TestRunOrderedEdgeCases(t *testing.T) {
	called := false
	runOrdered(4, 0, func(i int) int { return i }, func(i, r int) { called = true })
	if called {
		t.Fatal("consume called for n=0")
	}
	var n32 atomic.Int32
	runOrdered(-1, 1, func(i int) int { n32.Add(1); return i }, func(i, r int) {})
	if n32.Load() != 1 {
		t.Fatal("n=1 not executed")
	}
}

func TestRunOrderedPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom-7" {
					t.Fatalf("workers=%d: recovered %v, want boom-7", workers, r)
				}
			}()
			runOrdered(workers, 20, func(i int) int {
				if i == 7 {
					panic("boom-7")
				}
				return i
			}, func(i, r int) {
				if i >= 7 {
					t.Fatalf("workers=%d: consumed slot %d past the panic", workers, i)
				}
			})
			t.Fatalf("workers=%d: runOrdered returned instead of panicking", workers)
		}()
	}
}

func TestWorkerCountResolution(t *testing.T) {
	for _, tc := range []struct{ workers, want int }{
		{0, 1}, {1, 1}, {4, 4},
	} {
		if got := (Options{Workers: tc.workers}).workerCount(); got != tc.want {
			t.Errorf("Workers=%d resolved to %d, want %d", tc.workers, got, tc.want)
		}
	}
	if got := (Options{Workers: -1}).workerCount(); got < 1 {
		t.Errorf("Workers=-1 resolved to %d, want >= 1 (NumCPU)", got)
	}
}

// decodeRunLog parses a JSONL run log and zeroes the wall-clock field — the
// single nondeterministic column, populated only under Options.Timing — so
// logs from different worker counts can be compared entry-wise even in
// timing-enabled campaigns.
func decodeRunLog(t *testing.T, raw []byte) []obs.RunRecord {
	t.Helper()
	var recs []obs.RunRecord
	for ln, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if line == "" {
			continue
		}
		var rec obs.RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("run log line %d: %v", ln, err)
		}
		rec.DurationNs = 0
		recs = append(recs, rec)
	}
	return recs
}

// TestJSONLBitIdenticalWithoutTiming pins the determinism invariant offline
// analytics builds on: with Timing off (the default), two identical
// campaigns write byte-for-byte identical JSONL run logs — no wall-clock
// leaks into the stream. With Timing on, durationNs appears and carries a
// positive wall clock.
func TestJSONLBitIdenticalWithoutTiming(t *testing.T) {
	bm := bench.MustByName("figure2")
	runLog := func(timing bool) []byte {
		var buf bytes.Buffer
		jsonl := obs.NewJSONLSink(&buf)
		Analyze(bm.New(), Options{
			Seed: 9, Phase1Trials: bm.Phase1Trials, Phase2Trials: 10,
			MaxSteps: bm.MaxSteps, Label: bm.Name, Sink: jsonl, Timing: timing,
		})
		if err := jsonl.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runLog(false), runLog(false)
	if !bytes.Equal(a, b) {
		t.Fatal("untimed campaigns wrote differing JSONL bytes")
	}
	if strings.Contains(string(a), "durationNs") {
		t.Fatal("untimed log contains durationNs")
	}
	timed := decodeRunLogRaw(t, runLog(true))
	saw := false
	for _, rec := range timed {
		if rec.DurationNs > 0 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("timed log carries no positive durationNs")
	}
}

// decodeRunLogRaw parses a JSONL run log without normalizing any field.
func decodeRunLogRaw(t *testing.T, raw []byte) []obs.RunRecord {
	t.Helper()
	var recs []obs.RunRecord
	for ln, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if line == "" {
			continue
		}
		var rec obs.RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("run log line %d: %v", ln, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// campaignCounters snapshots a campaign's metrics with the wall-clock gauge
// dropped (the only nondeterministic metric).
func campaignCounters(c *obs.CampaignMetrics) obs.Snapshot {
	snap := c.Snapshot()
	gauges := snap.Gauges[:0]
	for _, g := range snap.Gauges {
		if g.Name != "wall.seconds" {
			gauges = append(gauges, g)
		}
	}
	snap.Gauges = gauges
	return snap
}

// analyzeOnce runs the race pipeline with full observability at the given
// worker count and returns everything the determinism contract covers.
func analyzeOnce(t *testing.T, bm bench.Benchmark, workers int) (*Report, []obs.RunRecord, obs.Snapshot) {
	t.Helper()
	var buf bytes.Buffer
	jsonl := obs.NewJSONLSink(&buf)
	metrics := obs.NewCampaignMetrics()
	rep := Analyze(bm.New(), Options{
		Seed:         7,
		Phase1Trials: bm.Phase1Trials,
		Phase2Trials: 25,
		MaxSteps:     bm.MaxSteps,
		Label:        bm.Name,
		Metrics:      metrics,
		Sink:         jsonl,
		Workers:      workers,
	})
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}
	return rep, decodeRunLog(t, buf.Bytes()), campaignCounters(metrics)
}

// TestParallelDeterminismRace is the cross-check the ISSUE's acceptance
// criterion names: Analyze must produce deeply-equal reports — every
// PairReport field, including first-trial indices and seeds, histograms and
// exception kind sets — and identical JSONL run logs at Workers ∈ {0,1,4,8}.
func TestParallelDeterminismRace(t *testing.T) {
	for _, name := range []string{"figure1", "linkedlist", "weblech"} {
		bm := bench.MustByName(name)
		t.Run(name, func(t *testing.T) {
			baseRep, baseLog, baseMetrics := analyzeOnce(t, bm, workerSweep[0])
			if len(baseRep.Potential) == 0 {
				t.Fatalf("%s reported no potential pairs; cross-check is vacuous", name)
			}
			for _, w := range workerSweep[1:] {
				rep, log, metrics := analyzeOnce(t, bm, w)
				if !reflect.DeepEqual(baseRep, rep) {
					t.Errorf("workers=%d: report diverged from sequential\nseq: %+v\npar: %+v", w, baseRep, rep)
				}
				if !reflect.DeepEqual(baseLog, log) {
					t.Errorf("workers=%d: JSONL run log diverged (%d vs %d records)", w, len(baseLog), len(log))
				}
				if !reflect.DeepEqual(baseMetrics, metrics) {
					t.Errorf("workers=%d: campaign metrics diverged\nseq: %+v\npar: %+v", w, baseMetrics, metrics)
				}
			}
		})
	}
}

// TestParallelDeterminismDeadlock cross-checks the deadlock pipeline on the
// classic ABBA model.
func TestParallelDeterminismDeadlock(t *testing.T) {
	run := func(workers int) ([]DeadlockReport, []obs.RunRecord) {
		var buf bytes.Buffer
		jsonl := obs.NewJSONLSink(&buf)
		reps := AnalyzeDeadlocks(abbaProgram(), Options{
			Seed: 3, Phase1Trials: 4, Phase2Trials: 20, Sink: jsonl, Workers: workers,
		})
		if err := jsonl.Close(); err != nil {
			t.Fatal(err)
		}
		return reps, decodeRunLog(t, buf.Bytes())
	}
	baseReps, baseLog := run(workerSweep[0])
	confirmed := 0
	for _, r := range baseReps {
		if r.IsReal {
			confirmed++
		}
	}
	if confirmed == 0 {
		t.Fatal("no confirmed deadlock; cross-check is vacuous")
	}
	for _, w := range workerSweep[1:] {
		reps, log := run(w)
		if !reflect.DeepEqual(baseReps, reps) {
			t.Errorf("workers=%d: deadlock reports diverged\nseq: %+v\npar: %+v", w, baseReps, reps)
		}
		if !reflect.DeepEqual(baseLog, log) {
			t.Errorf("workers=%d: deadlock run log diverged", w)
		}
	}
}

// TestParallelDeterminismAtomicity cross-checks the atomicity pipeline on
// the weblech model (lost-update pattern).
func TestParallelDeterminismAtomicity(t *testing.T) {
	bm := bench.MustByName("weblech")
	run := func(workers int) ([]AtomicityReport, []obs.RunRecord) {
		var buf bytes.Buffer
		jsonl := obs.NewJSONLSink(&buf)
		reps := AnalyzeAtomicity(bm.New(), Options{
			Seed: 5, Phase1Trials: 3, Phase2Trials: 15, MaxSteps: bm.MaxSteps,
			Sink: jsonl, Workers: workers,
		})
		if err := jsonl.Close(); err != nil {
			t.Fatal(err)
		}
		return reps, decodeRunLog(t, buf.Bytes())
	}
	baseReps, baseLog := run(workerSweep[0])
	if len(baseReps) == 0 {
		t.Fatal("no atomicity targets; cross-check is vacuous")
	}
	for _, w := range workerSweep[1:] {
		reps, log := run(w)
		if !reflect.DeepEqual(baseReps, reps) {
			t.Errorf("workers=%d: atomicity reports diverged", w)
		}
		if !reflect.DeepEqual(baseLog, log) {
			t.Errorf("workers=%d: atomicity run log diverged", w)
		}
	}
}

// TestParallelDeterminismFuzzSet cross-checks the batched multi-pair mode.
func TestParallelDeterminismFuzzSet(t *testing.T) {
	pairs := []event.StmtPair{bench.Fig1PairX, bench.Fig1PairZ}
	run := func(workers int) SetReport {
		return FuzzSet(bench.Figure1(), pairs, Options{Seed: 11, Phase2Trials: 30, Workers: workers})
	}
	base := run(workerSweep[0])
	if len(base.Confirmed()) == 0 {
		t.Fatal("FuzzSet confirmed nothing; cross-check is vacuous")
	}
	for _, w := range workerSweep[1:] {
		if got := run(w); !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: set report diverged\nseq: %+v\npar: %+v", w, base, got)
		}
	}
}

// TestParallelWitnessCaptureDeterministic: with TraceDir set, the witness
// must be the recording of the in-order first confirming trial — same
// relative path, byte-identical recording — at every worker count, even
// though under a pool a later trial can finish first.
func TestParallelWitnessCaptureDeterministic(t *testing.T) {
	bm := bench.MustByName("figure1")
	capture := func(workers int) (*Report, map[string][]byte) {
		dir := t.TempDir()
		rep := Analyze(bm.New(), Options{
			Seed: 7, Phase1Trials: bm.Phase1Trials, Phase2Trials: 20,
			MaxSteps: bm.MaxSteps, Label: bm.Name, TraceDir: dir, Workers: workers,
		})
		files := make(map[string][]byte)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		return rep, files
	}
	baseRep, baseFiles := capture(workerSweep[0])
	if len(baseFiles) == 0 {
		t.Fatal("sequential campaign captured no witnesses; cross-check is vacuous")
	}
	for _, w := range workerSweep[1:] {
		rep, files := capture(w)
		for i := range baseRep.Pairs {
			seqPath, parPath := filepath.Base(baseRep.Pairs[i].TracePath), filepath.Base(rep.Pairs[i].TracePath)
			if baseRep.Pairs[i].TracePath == "" {
				seqPath = ""
			}
			if rep.Pairs[i].TracePath == "" {
				parPath = ""
			}
			if seqPath != parPath {
				t.Errorf("workers=%d pair %d: witness path %q != sequential %q", w, i, parPath, seqPath)
			}
		}
		if len(files) != len(baseFiles) {
			t.Errorf("workers=%d: captured %d witnesses, sequential captured %d", w, len(files), len(baseFiles))
		}
		for name, data := range baseFiles {
			if !bytes.Equal(files[name], data) {
				t.Errorf("workers=%d: witness %s differs from sequential capture", w, name)
			}
		}
	}
}

// TestParallelPhase1Deterministic: phase-1 detection alone must report the
// same pair list at any worker count (union order is normalized by sorting,
// first-seen orders by in-order merge).
func TestParallelPhase1Deterministic(t *testing.T) {
	bm := bench.MustByName("weblech")
	base := DetectPotentialRaces(bm.New(), Options{Seed: 2, Phase1Trials: 6, MaxSteps: bm.MaxSteps})
	for _, w := range workerSweep[1:] {
		got := DetectPotentialRaces(bm.New(), Options{Seed: 2, Phase1Trials: 6, MaxSteps: bm.MaxSteps, Workers: w})
		if fmt.Sprint(got) != fmt.Sprint(base) {
			t.Errorf("workers=%d: phase-1 pairs %v != sequential %v", w, got, base)
		}
	}
}
