package core

import (
	"fmt"
	"sort"
	"strings"

	"racefuzzer/internal/corpus"
	"racefuzzer/internal/event"
	"racefuzzer/internal/hybrid"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/schedprof"
)

// Program is a model program: the body of its main thread. Everything the
// program does must go through the conc/sched instrumentation API.
type Program func(*sched.Thread)

// Options parameterizes the two-phase pipeline.
type Options struct {
	// Seed is the base seed; trial i uses Seed + i (phase 1) or a derived
	// per-pair stream (phase 2), so campaigns are fully reproducible.
	Seed int64
	// Phase1Trials is the number of random-scheduler executions observed by
	// the hybrid detector; their pair sets are unioned. Default 3.
	Phase1Trials int
	// Phase2Trials is the number of RaceFuzzer executions per potential pair
	// (the paper uses 100 to estimate the hit probability). Default 100.
	Phase2Trials int
	// MaxSteps bounds each execution (0 = sched.DefaultMaxSteps).
	MaxSteps int
	// MaxPostponeAge configures the livelock monitor (see RaceFuzzerPolicy).
	MaxPostponeAge int
	// Workers bounds the campaign executor's parallelism: 0 or 1 runs every
	// trial sequentially on the caller's goroutine, N > 1 fans independent
	// trials across N workers, and any negative value uses runtime.NumCPU().
	// Reports, per-target fields and witness paths are bit-identical at any
	// worker count: each trial's schedule is a pure function of its derived
	// seed, and trial results are merged in trial order (see parallel.go).
	// Programs must allocate their state per invocation (as every registry
	// model does) so independent trials can execute concurrently.
	Workers int
	// Timing opts into per-run wall-clock timing on emitted records
	// (RunRecord.DurationNs). Off by default: wall time is the one
	// nondeterministic column, and leaving it zeroed keeps JSONL run logs
	// bit-identical across repeat runs — the invariant CI's golden report
	// test and the analytics determinism contract rely on.
	Timing bool
	// Round stamps emitted records with the adaptive campaign's 1-based
	// allocation round (0 = not a budgeted campaign). See RunRecord.Round.
	Round int

	// Label annotates telemetry records with the campaign's name (usually
	// the benchmark under test).
	Label string
	// TraceDir, when non-empty, enables witness auto-capture: the first
	// trial of each target that confirms its goal (real race, real deadlock,
	// real violation) is re-run with a flight recorder — determinism makes
	// the re-run the same execution — and archived there as a replayable
	// *.trace.jsonl recording. The path is surfaced on the run's record
	// (RunRecord.Trace) and the target's report.
	TraceDir string
	// Metrics, when non-nil, aggregates per-run telemetry across the whole
	// campaign (phase 1 and phase 2).
	Metrics *obs.CampaignMetrics
	// Sink, when non-nil, receives one structured record per execution —
	// the JSONL run log and/or progress reporting.
	Sink obs.Sink
	// Corpus, when non-nil, deduplicates confirmed findings against the
	// persistent race corpus (internal/corpus): each target's first
	// confirming run is reported under its canonical signature and marked
	// new or known on the report and the run record, witness auto-capture
	// is skipped for known signatures (the corpus already holds their
	// regression baseline), and every confirming trial feeds the
	// (signature, resolution-branch) interleaving-coverage map. All corpus
	// calls happen on the ordered merge goroutine, so verdicts are
	// bit-identical at any Workers setting.
	Corpus *corpus.Store
	// Introspect, when non-nil, registers every execution with the live
	// scheduler-state introspector (the observatory's /debug/sched). Costs
	// one atomic load per scheduling round when attached, one nil check
	// when not; never perturbs schedules.
	Introspect *sched.Introspector
	// Prof, when non-nil, attaches a pooled schedprof trial to every
	// execution and folds it back campaign-wide: per-op-kind wait/service
	// latency, enabled-set sizes, decision rounds and phase timings (the
	// observatory's /debug/perf). Costs one nil check per probe site when
	// absent and never perturbs schedules.
	Prof *schedprof.Collector
	// PerfDir, when non-empty, exports a performance timeline for the first
	// confirming trial of each target: the trial is re-run with a
	// standalone schedprof trial attached — determinism makes the re-run
	// the same execution — and saved there as a Chrome trace-event
	// *.perf.json file, loadable in Perfetto or chrome://tracing. The path
	// is surfaced on the run's record (RunRecord.Perf) and the target's
	// report.
	PerfDir string
}

// observing reports whether per-run telemetry should be collected at all.
func (o Options) observing() bool { return o.Metrics != nil || o.Sink != nil }

// emit delivers one run record to the campaign aggregator and the sink.
func (o Options) emit(rec obs.RunRecord) {
	rec.Label = o.Label
	o.Metrics.Emit(rec)
	obs.Emit(o.Sink, rec)
}

// phase1Record assembles the record of one phase-1 detector observation.
func (o Options) phase1Record(kind string, trial int, seed int64, res *sched.Result) obs.RunRecord {
	rec := obs.RunRecord{
		Phase: 1, Kind: kind, PairIndex: -1, Trial: trial, Round: o.Round,
		Seed: seed, StepsToRace: -1,
		Deadlock: res.Deadlock != nil, Aborted: res.Aborted,
		Steps: res.Steps, Stats: res.Stats,
	}
	o.stampTiming(&rec, res)
	return rec
}

// runRecord assembles the common fields of a phase-2 record from a
// scheduler result.
func (o Options) runRecord(kind string, pairIndex, trial int, seed int64, res *sched.Result) obs.RunRecord {
	rec := obs.RunRecord{
		Phase:       2,
		Kind:        kind,
		PairIndex:   pairIndex,
		Trial:       trial,
		Round:       o.Round,
		Seed:        seed,
		StepsToRace: -1,
		Deadlock:    res.Deadlock != nil,
		Aborted:     res.Aborted,
		Steps:       res.Steps,
		Stats:       res.Stats,
	}
	seen := make(map[string]bool)
	for _, ex := range res.Exceptions {
		k := exceptionKind(ex)
		if !seen[k] {
			seen[k] = true
			rec.Exceptions = append(rec.Exceptions, k)
		}
	}
	o.stampTiming(&rec, res)
	return rec
}

// stampTiming copies the run's wall clock onto the record when the campaign
// opted into -timing (zeroed otherwise — see RunRecord.DurationNs).
func (o Options) stampTiming(rec *obs.RunRecord, res *sched.Result) {
	if o.Timing && res.Stats != nil {
		rec.DurationNs = res.Stats.Wall.Nanoseconds()
	}
}

func (o Options) withDefaults() Options {
	if o.Phase1Trials <= 0 {
		o.Phase1Trials = 3
	}
	if o.Phase2Trials <= 0 {
		o.Phase2Trials = 100
	}
	return o
}

// pairSeed derives the seed of phase-2 trial i for pair index pi.
func pairSeed(base int64, pi, i int) int64 {
	return base + int64(pi)*1_000_003 + int64(i)*7_919 + 1
}

// DetectPotentialRaces is phase 1: run the program under the simple random
// scheduler with the hybrid detector attached and union the potentially
// racing statement pairs over the trials.
func DetectPotentialRaces(prog Program, o Options) []event.StmtPair {
	o = o.withDefaults()
	union := make(map[event.StmtPair]bool)
	type obsRun struct {
		pairs []event.StmtPair
		res   *sched.Result
	}
	runOrdered(o.workerCount(), o.Phase1Trials,
		func(i int) obsRun {
			det := hybrid.New()
			var rm *obs.RunMetrics
			if o.observing() {
				rm = obs.NewRunMetrics()
			}
			tr := o.Prof.StartTrial(o.Label, o.Seed+int64(i))
			res := sched.Run(prog, sched.Config{
				Seed:       o.Seed + int64(i),
				Policy:     sched.NewRandomPolicy(),
				Observers:  []sched.Observer{det},
				MaxSteps:   o.MaxSteps,
				Metrics:    rm,
				Introspect: o.Introspect,
				Prof:       tr,
			})
			o.Prof.FinishTrial(tr)
			return obsRun{pairs: det.Pairs(), res: res}
		},
		func(i int, r obsRun) {
			for _, p := range r.pairs {
				union[p] = true
			}
			if o.observing() {
				o.emit(o.phase1Record("race", i, o.Seed+int64(i), r.res))
			}
		})
	out := make([]event.StmtPair, 0, len(union))
	for p := range union {
		out = append(out, p)
	}
	event.SortStmtPairs(out)
	return out
}

// RunReport is the outcome of one phase-2 execution.
type RunReport struct {
	Seed        int64
	Result      *sched.Result
	Races       []RealRace
	RaceCreated bool
}

// FuzzRun is one phase-2 execution: run prog under RaceFuzzer targeting
// pair with the given seed. Re-invoking with the same arguments replays the
// identical execution — the paper's lightweight replay.
func FuzzRun(prog Program, pair event.StmtPair, seed int64, o Options) *RunReport {
	pol := &RaceFuzzerPolicy{Target: pair, MaxPostponeAge: o.MaxPostponeAge}
	var rm *obs.RunMetrics
	if o.observing() {
		rm = obs.NewRunMetrics()
		pol.Metrics = rm
	}
	tr := o.Prof.StartTrial(o.Label, seed)
	res := sched.Run(prog, sched.Config{
		Seed: seed, Policy: pol, MaxSteps: o.MaxSteps,
		Name:       fmt.Sprintf("racefuzzer%v", pair),
		Metrics:    rm,
		Introspect: o.Introspect,
		Prof:       tr,
	})
	o.Prof.FinishTrial(tr)
	return &RunReport{Seed: seed, Result: res, Races: pol.Races(), RaceCreated: pol.RaceCreated()}
}

// Replay re-executes a prior FuzzRun from its seed. It is literally FuzzRun
// — the function exists to make the replay feature explicit in the API.
func Replay(prog Program, pair event.StmtPair, seed int64, o Options) *RunReport {
	return FuzzRun(prog, pair, seed, o)
}

// PairReport aggregates the phase-2 trials for one potential pair: whether
// the race is real, the estimated probability of creating it (Table 1,
// column 11), and whether resolving it randomly exposed exceptions or
// deadlocks (columns 9 and the §5.3 bug reports).
type PairReport struct {
	Pair   event.StmtPair
	Trials int
	// RaceRuns is the number of trials in which a real race was created.
	RaceRuns int
	// Probability = RaceRuns / Trials.
	Probability float64
	// IsReal reports whether any trial created the race.
	IsReal bool
	// ExceptionRuns counts trials in which a real race was created and a
	// model exception was subsequently thrown — the evidence that the race
	// is harmful, not benign.
	ExceptionRuns int
	// ExceptionKinds lists distinct exception messages observed after races.
	ExceptionKinds []string
	// DeadlockRuns counts trials ending in a real deadlock.
	DeadlockRuns int
	// FirstRaceTrial and FirstExceptionTrial are the 0-based indices of the
	// first race-creating and first exception-throwing trial, -1 when none
	// occurred. They are the authoritative "did it happen" signals: a derived
	// seed can legitimately be 0, so the seeds below carry no sentinel.
	FirstRaceTrial      int
	FirstExceptionTrial int
	// FirstRaceSeed and FirstExceptionSeed replay a race-creating and an
	// exception-throwing trial. Only meaningful when the corresponding trial
	// index is >= 0.
	FirstRaceSeed      int64
	FirstExceptionSeed int64
	// Telemetry aggregated over the trials. TotalSteps is always collected;
	// the remaining fields need Options metrics/sink observation enabled
	// (they come from the per-run RunStats) and are zero otherwise.
	TotalSteps     int64
	TotalSwitches  int64
	TotalDecisions int64
	TotalPostpones int64
	// StepsToRace is the distribution of the scheduler step at which the
	// race was created, over race-creating trials (empty unless observing).
	StepsToRace obs.HistogramSnapshot
	// TracePath is the auto-captured witness recording of the first
	// race-creating trial ("" unless Options.TraceDir was set and a race was
	// created); TraceErr reports a failed capture attempt.
	TracePath string
	TraceErr  error
	// PerfPath is the Perfetto timeline exported for the first race-creating
	// trial ("" unless Options.PerfDir was set and a race was created);
	// PerfErr reports a failed export attempt.
	PerfPath string
	PerfErr  error
	// Known reports that the confirmed race's signature was already in the
	// campaign's corpus (always false without Options.Corpus or when the
	// pair was not confirmed). Known findings skip witness auto-capture.
	Known bool
}

func (p PairReport) String() string {
	verdict := "NOT CONFIRMED"
	if p.IsReal {
		verdict = "REAL RACE"
	}
	s := fmt.Sprintf("%s: %s, p=%.2f (%d/%d runs)", p.Pair, verdict, p.Probability, p.RaceRuns, p.Trials)
	if p.IsReal && p.Known {
		s += " [known]"
	}
	if p.ExceptionRuns > 0 {
		s += fmt.Sprintf(", %d runs threw (%s)", p.ExceptionRuns, strings.Join(p.ExceptionKinds, "; "))
	}
	if p.DeadlockRuns > 0 {
		s += fmt.Sprintf(", %d deadlocks", p.DeadlockRuns)
	}
	return s
}

// FuzzPair runs phase 2 for one pair: Phase2Trials independent RaceFuzzer
// executions with derived seeds. pairIndex salts the seed stream so pairs
// explore different schedules. Trials run on the campaign executor
// (Options.Workers); results are folded in trial order, so the report is
// identical at any worker count.
func FuzzPair(prog Program, pair event.StmtPair, pairIndex int, o Options) PairReport {
	o = o.withDefaults()
	agg := newPairAgg(prog, pair, pairIndex, o)
	runOrdered(o.workerCount(), o.Phase2Trials,
		func(i int) *RunReport {
			return FuzzRun(prog, pair, pairSeed(o.Seed, pairIndex, i), o)
		},
		agg.add)
	return agg.finish()
}

// pairAgg folds one pair's phase-2 trial results into a PairReport. add must
// be called in strictly increasing trial order — the executor guarantees it —
// so first-trial fields, histogram contents and record emission are the
// sequential loop's, whatever order trials actually executed in.
type pairAgg struct {
	prog        Program
	pairIndex   int
	o           Options
	rep         PairReport
	kinds       map[string]bool
	stepsToRace *obs.Histogram
}

func newPairAgg(prog Program, pair event.StmtPair, pairIndex int, o Options) *pairAgg {
	a := &pairAgg{
		prog: prog, pairIndex: pairIndex, o: o,
		rep:   PairReport{Pair: pair, Trials: o.Phase2Trials, FirstRaceTrial: -1, FirstExceptionTrial: -1},
		kinds: make(map[string]bool),
	}
	if o.observing() {
		a.stepsToRace = obs.NewStepsToRaceHistogram()
	}
	return a
}

// add folds trial i. The witness-capture re-run for the first confirming
// trial happens here, on the consuming goroutine: under a parallel executor
// it is an ordinary extra task that never blocks the trial pool, and because
// add observes trials in order it records the deterministic first confirming
// trial, not the first to finish.
func (a *pairAgg) add(i int, run *RunReport) {
	rep, o, seed := &a.rep, a.o, run.Seed
	rep.TotalSteps += int64(run.Result.Steps)
	firstRaceStep := -1
	tracePath := ""
	perfPath := ""
	finding := ""
	newCells := 0
	if run.RaceCreated {
		firstRaceStep = run.Races[0].Step
		a.stepsToRace.Observe(float64(firstRaceStep))
		rep.RaceRuns++
		if o.Corpus != nil && o.Corpus.Observe(raceSignature(rep.Pair), raceBranch(run.Races[0])) {
			newCells++
		}
		if rep.FirstRaceTrial < 0 {
			rep.FirstRaceTrial = i
			rep.FirstRaceSeed = seed
			sig := raceSignature(rep.Pair)
			finding = o.reportFinding(sig, rep.Pair.String(), a.pairIndex, i, seed, runExceptionKinds(run.Result))
			rep.Known = finding == "known"
			if o.wantWitness(finding) {
				_, witness := RecordRace(a.prog, rep.Pair, seed, o)
				tracePath, rep.TraceErr = capture(witness, o.witnessPath("race", a.pairIndex, i))
				rep.TracePath = tracePath
				if tracePath != "" {
					o.Corpus.AttachWitness(sig, tracePath)
				}
			}
			if o.PerfDir != "" {
				_, tl := ProfileRace(a.prog, rep.Pair, seed, o)
				perfPath, rep.PerfErr = savePerf(tl, o.perfPath("race", a.pairIndex, i))
				rep.PerfPath = perfPath
			}
		}
		if len(run.Result.Exceptions) > 0 {
			rep.ExceptionRuns++
			if rep.FirstExceptionTrial < 0 {
				rep.FirstExceptionTrial = i
				rep.FirstExceptionSeed = seed
			}
			for _, ex := range run.Result.Exceptions {
				a.kinds[exceptionKind(ex)] = true
			}
		}
	}
	if run.Result.Deadlock != nil {
		rep.DeadlockRuns++
	}
	if stats := run.Result.Stats; stats != nil {
		rep.TotalSwitches += int64(stats.Switches)
		rep.TotalDecisions += int64(stats.Decisions)
		rep.TotalPostpones += int64(stats.Postpones)
	}
	if o.observing() {
		rec := o.runRecord("race", a.pairIndex, i, seed, run.Result)
		rec.Pair = rep.Pair.String()
		rec.RaceCreated = run.RaceCreated
		rec.Races = len(run.Races)
		rec.StepsToRace = firstRaceStep
		rec.Trace = tracePath
		rec.Perf = perfPath
		rec.Finding = finding
		rec.NewCells = newCells
		o.emit(rec)
	}
}

func (a *pairAgg) finish() PairReport {
	rep := &a.rep
	rep.StepsToRace = a.stepsToRace.Snapshot()
	rep.IsReal = rep.RaceRuns > 0
	rep.Probability = float64(rep.RaceRuns) / float64(rep.Trials)
	for k := range a.kinds {
		rep.ExceptionKinds = append(rep.ExceptionKinds, k)
	}
	sort.Strings(rep.ExceptionKinds)
	return a.rep
}

// exceptionKind reduces an exception to its class-like prefix, so distinct
// instances of e.g. ConcurrentModificationException count once.
func exceptionKind(ex sched.Exception) string {
	msg := ex.Err.Error()
	if i := strings.IndexByte(msg, ':'); i > 0 {
		return msg[:i]
	}
	return msg
}

// SetReport aggregates a multi-pair campaign (FuzzSet): one set of runs
// targeting the union of several warnings at once.
type SetReport struct {
	Pairs  []event.StmtPair
	Trials int
	// ConfirmedRuns counts, per warning pair, the runs that created a race
	// attributed to it. Cross-pair races (both statements in the RaceSet but
	// from different warnings) are tallied under their own synthesized pair.
	ConfirmedRuns map[event.StmtPair]int
	// ExceptionRuns counts runs that created some race and then threw.
	ExceptionRuns int
}

// Confirmed returns the warning pairs confirmed real, in deterministic order.
func (s SetReport) Confirmed() []event.StmtPair {
	var out []event.StmtPair
	for p, n := range s.ConfirmedRuns {
		if n > 0 {
			out = append(out, p)
		}
	}
	event.SortStmtPairs(out)
	return out
}

// FuzzSet runs a single campaign whose RaceSet is the union of pairs — the
// CalFuzzer-style batched mode: cheaper than one campaign per pair, at some
// loss of per-pair directedness (threads postponed for one warning can
// perturb another's window).
func FuzzSet(prog Program, pairs []event.StmtPair, o Options) SetReport {
	o = o.withDefaults()
	rep := SetReport{Pairs: pairs, Trials: o.Phase2Trials, ConfirmedRuns: make(map[event.StmtPair]int)}
	type setRun struct {
		res     *sched.Result
		races   []RealRace
		created bool
	}
	runOrdered(o.workerCount(), o.Phase2Trials,
		func(i int) setRun {
			seed := pairSeed(o.Seed, 3_000_000, i)
			pol := NewRaceFuzzerSetPolicy(pairs)
			pol.MaxPostponeAge = o.MaxPostponeAge
			var rm *obs.RunMetrics
			if o.observing() {
				rm = obs.NewRunMetrics()
				pol.Metrics = rm
			}
			tr := o.Prof.StartTrial(o.Label, seed)
			res := sched.Run(prog, sched.Config{
				Seed: seed, Policy: pol, MaxSteps: o.MaxSteps,
				Metrics: rm, Introspect: o.Introspect, Prof: tr,
			})
			o.Prof.FinishTrial(tr)
			return setRun{res: res, races: pol.Races(), created: pol.RaceCreated()}
		},
		func(i int, r setRun) {
			seen := make(map[event.StmtPair]bool)
			for _, rr := range r.races {
				if !seen[rr.Target] {
					seen[rr.Target] = true
					rep.ConfirmedRuns[rr.Target]++
				}
			}
			if r.created && len(r.res.Exceptions) > 0 {
				rep.ExceptionRuns++
			}
			if o.observing() {
				rec := o.runRecord("race-set", -1, i, pairSeed(o.Seed, 3_000_000, i), r.res)
				rec.RaceCreated = r.created
				rec.Races = len(r.races)
				if len(r.races) > 0 {
					rec.StepsToRace = r.races[0].Step
				}
				o.emit(rec)
			}
		})
	return rep
}

// Report is the full two-phase outcome for one program.
type Report struct {
	Potential []event.StmtPair
	Pairs     []PairReport
}

// RealPairs returns the confirmed real races.
func (r *Report) RealPairs() []PairReport {
	var out []PairReport
	for _, p := range r.Pairs {
		if p.IsReal {
			out = append(out, p)
		}
	}
	return out
}

// RealCount returns the number of confirmed real racing pairs (Table 1,
// column 7).
func (r *Report) RealCount() int { return len(r.RealPairs()) }

// ExceptionPairCount returns the number of racing pairs whose random
// resolution threw an exception (Table 1, column 9).
func (r *Report) ExceptionPairCount() int {
	n := 0
	for _, p := range r.Pairs {
		if p.IsReal && p.ExceptionRuns > 0 {
			n++
		}
	}
	return n
}

// MeanProbability averages the hit probability over real pairs (Table 1,
// column 11 reports this per benchmark).
func (r *Report) MeanProbability() float64 {
	real := r.RealPairs()
	if len(real) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range real {
		sum += p.Probability
	}
	return sum / float64(len(real))
}

// TotalSteps sums phase-2 scheduler steps over all pairs.
func (r *Report) TotalSteps() int64 {
	var n int64
	for _, p := range r.Pairs {
		n += p.TotalSteps
	}
	return n
}

// TotalDecisions sums the race-directed policy's scheduling decisions over
// all pairs (zero unless the campaign ran with observation enabled).
func (r *Report) TotalDecisions() int64 {
	var n int64
	for _, p := range r.Pairs {
		n += p.TotalDecisions
	}
	return n
}

// Analyze runs the complete pipeline: phase 1, then phase 2 for every
// reported pair. Phase 2 fans the whole (pairIndex, trial) grid across the
// campaign executor rather than parallelizing pair-by-pair, so a pair with a
// straggling trial never idles the pool; per-pair aggregation still happens
// in (pairIndex, trial) order, keeping the report bit-identical at any
// worker count.
func Analyze(prog Program, o Options) *Report {
	o = o.withDefaults()
	rep := &Report{Potential: DetectPotentialRaces(prog, o)}
	npairs := len(rep.Potential)
	if npairs == 0 {
		return rep
	}
	trials := o.Phase2Trials
	aggs := make([]*pairAgg, npairs)
	for pi, pair := range rep.Potential {
		aggs[pi] = newPairAgg(prog, pair, pi, o)
	}
	runOrdered(o.workerCount(), npairs*trials,
		func(k int) *RunReport {
			pi, i := k/trials, k%trials
			return FuzzRun(prog, rep.Potential[pi], pairSeed(o.Seed, pi, i), o)
		},
		func(k int, run *RunReport) {
			aggs[k/trials].add(k%trials, run)
		})
	for _, a := range aggs {
		rep.Pairs = append(rep.Pairs, a.finish())
	}
	return rep
}
