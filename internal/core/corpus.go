package core

import (
	"sort"
	"strings"

	"racefuzzer/internal/corpus"
	"racefuzzer/internal/deadlock"
	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

// Corpus glue: how the three pipelines turn a confirmed target into a
// canonical corpus signature and a replayable finding. Signatures are built
// from *statement labels* (file:line), never from dynamic identities
// (LockID, MemLoc, ThreadID): labels are stable across executions, seeds
// and processes, which is what lets a later campaign recognize the same
// bug. Lock and thread identities, which are per-execution counters, stay
// in the finding's rendered Pair string for human consumption and regress
// target matching.

// raceSignature is the canonical identity of a confirmed race on a
// statement pair.
func raceSignature(pair event.StmtPair) corpus.Signature {
	return corpus.MakeSignature("race", pair.A.Name(), pair.B.Name(), "race")
}

// deadlockSignature is the canonical identity of a confirmed deadlock: the
// sorted acquisition-statement labels of the lock cycle.
func deadlockSignature(c deadlock.Cycle) corpus.Signature {
	names := make([]string, 0, len(c.Stmts))
	seen := make(map[string]bool, len(c.Stmts))
	for _, s := range c.Stmts {
		n := s.Name()
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	a, b := locPair(names)
	return corpus.MakeSignature("deadlock", a, b, "deadlock")
}

// atomicitySignature is the canonical identity of a confirmed atomicity
// violation: the block's boundary statements.
func atomicitySignature(t AtomicityTarget) corpus.Signature {
	return corpus.MakeSignature("atomicity", t.First.Name(), t.Second.Name(), "violation")
}

// locPair reduces a sorted label list to the signature's two location
// slots: a cycle can involve more than two acquisition sites, so the tail
// is folded into the second slot rather than dropped.
func locPair(names []string) (a, b string) {
	switch len(names) {
	case 0:
		return "", ""
	case 1:
		return names[0], names[0]
	}
	return names[0], strings.Join(names[1:], "+")
}

// reportFinding records a target's first confirming trial in the campaign
// corpus and returns the dedup verdict for telemetry: "" (no corpus
// attached), "new" or "known". Aggregators call it from the ordered merge
// goroutine, so verdicts are bit-identical at any worker count.
func (o Options) reportFinding(sig corpus.Signature, pairStr string, targetIndex, trial int, witnessSeed int64, exceptions []string) string {
	if o.Corpus == nil {
		return ""
	}
	isNew := o.Corpus.Report(corpus.Finding{
		Sig:           sig,
		Bench:         o.Label,
		Pair:          pairStr,
		TargetIndex:   targetIndex,
		FirstSeenSeed: o.Seed,
		Phase1Trials:  o.Phase1Trials,
		MaxSteps:      o.MaxSteps,
		WitnessSeed:   witnessSeed,
		WitnessTrial:  trial,
		Exceptions:    exceptions,
	})
	if isNew {
		return "new"
	}
	return "known"
}

// wantWitness reports whether the target's confirming run should be
// archived: capture must be enabled, and with a corpus attached only new
// signatures record witnesses — the known ones already have a regression
// baseline on disk (the ISSUE's "traces.captured counts new signatures
// only" rule).
func (o Options) wantWitness(finding string) bool {
	return o.TraceDir != "" && finding != "known"
}

// raceBranch names the resolution branch of a created race — the §3 coin
// flip — for the interleaving-coverage map.
func raceBranch(r RealRace) string {
	if r.CandidateFirst {
		return "candidate-first"
	}
	return "postponed-first"
}

// runExceptionKinds reduces a result's exceptions to their distinct kinds,
// in order of first occurrence.
func runExceptionKinds(res *sched.Result) []string {
	var out []string
	seen := make(map[string]bool)
	for _, ex := range res.Exceptions {
		k := exceptionKind(ex)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
