package core

import (
	"racefuzzer/internal/event"
	"racefuzzer/internal/rng"
	"racefuzzer/internal/sched"
)

// RAPOSPolicy implements (a scheduler-level rendition of) RAPOS, the
// partial-order sampling algorithm of Sen's ASE'07 paper, which §6 discusses
// as the random-testing baseline RaceFuzzer improves on: RAPOS samples
// partial orders closer to uniformly than naive random scheduling, but with
// astronomically many partial orders it still rarely lands on error-prone
// schedules — motivating race-*directed* scheduling.
//
// At each round RAPOS picks a random enabled thread and then, with
// independent fair coin flips, adds every other enabled thread whose pending
// operation does not conflict with anything already chosen; the whole batch
// executes before the next sampling round. Concurrent non-conflicting
// operations thus frequently execute "together", which reduces the bias
// naive random scheduling has toward interleaving-sensitive orders.
type RAPOSPolicy struct {
	batches int
	grants  int
}

// NewRAPOSPolicy returns a RAPOS scheduler.
func NewRAPOSPolicy() *RAPOSPolicy { return &RAPOSPolicy{} }

// Name implements sched.Policy.
func (p *RAPOSPolicy) Name() string { return "rapos" }

// Stats returns the number of sampling rounds and total grants (the ratio
// measures how much batching RAPOS achieved).
func (p *RAPOSPolicy) Stats() (batches, grants int) { return p.batches, p.grants }

// conflicts reports whether two pending ops may not be reordered freely:
// conflicting memory accesses, or operations on the same lock.
func conflicts(a, b sched.Op) bool {
	if a.ConflictsWith(b) {
		return true
	}
	lockKind := func(k sched.OpKind) bool {
		switch k {
		case sched.OpLock, sched.OpUnlock, sched.OpWaitEnter, sched.OpWaitResume,
			sched.OpNotify, sched.OpNotifyAll:
			return true
		}
		return false
	}
	if lockKind(a.Kind) && lockKind(b.Kind) && a.Lock == b.Lock {
		return true
	}
	return false
}

// Step implements sched.Policy.
func (p *RAPOSPolicy) Step(v *sched.View, r *rng.Rand) sched.Decision {
	p.batches++
	first := v.Enabled[r.Intn(len(v.Enabled))]
	batch := []event.ThreadID{first}
	ops := []sched.Op{v.Op(first)}
	for _, tid := range v.Enabled {
		if tid == first {
			continue
		}
		op := v.Op(tid)
		ok := true
		for _, chosen := range ops {
			if conflicts(op, chosen) {
				ok = false
				break
			}
		}
		if ok && r.Bool() {
			batch = append(batch, tid)
			ops = append(ops, op)
		}
	}
	p.grants += len(batch)
	return sched.Decision{Grants: batch}
}
