package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/event"
	"racefuzzer/internal/flightrec"
	"racefuzzer/internal/obs"
)

// recordingBytes serializes a recording the way SaveFile would.
func recordingBytes(t *testing.T, rec *flightrec.Recording) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

// TestRecordedReplayByteIdentical is the §2.2 determinism claim as a test:
// for a fixed seed, two in-process recordings of the same directed run are
// byte-identical — decisions (with RNG draw positions), policy actions,
// events, and summary — for each of the three pipelines and several seeds.
func TestRecordedReplayByteIdentical(t *testing.T) {
	seeds := []int64{3, 47, 901, -12}
	o := Options{Label: "determinism"}

	t.Run("race", func(t *testing.T) {
		for _, seed := range seeds {
			if d := VerifyRaceReplay(bench.Figure2(20), bench.Fig2Pair, seed, o); d != nil {
				t.Fatalf("seed %d: %v", seed, d)
			}
			_, a := RecordRace(bench.Figure2(20), bench.Fig2Pair, seed, o)
			_, b := RecordRace(bench.Figure2(20), bench.Fig2Pair, seed, o)
			if !bytes.Equal(recordingBytes(t, a), recordingBytes(t, b)) {
				t.Fatalf("seed %d: serialized recordings differ", seed)
			}
		}
	})
	t.Run("deadlock", func(t *testing.T) {
		cycles := DetectPotentialDeadlocks(abbaProgram(), Options{Seed: 5, Phase1Trials: 6})
		if len(cycles) != 1 {
			t.Fatalf("cycles = %v", cycles)
		}
		target := [2]event.LockID{cycles[0].Locks[0], cycles[0].Locks[1]}
		for _, seed := range seeds {
			if d := VerifyDeadlockReplay(abbaProgram(), target, seed, o); d != nil {
				t.Fatalf("seed %d: %v", seed, d)
			}
			_, a := RecordDeadlockRun(abbaProgram(), target, seed, o)
			_, b := RecordDeadlockRun(abbaProgram(), target, seed, o)
			if !bytes.Equal(recordingBytes(t, a), recordingBytes(t, b)) {
				t.Fatalf("seed %d: serialized recordings differ", seed)
			}
		}
	})
	t.Run("atomicity", func(t *testing.T) {
		targets := DetectAtomicityTargets(lostUpdateProgram(nil), Options{Seed: 8, Phase1Trials: 6})
		if len(targets) == 0 {
			t.Fatal("no atomicity targets inferred")
		}
		tg := targets[0]
		for _, seed := range seeds {
			if d := VerifyAtomicityReplay(lostUpdateProgram(nil), tg, seed, o); d != nil {
				t.Fatalf("seed %d: %v", seed, d)
			}
			_, _, a := RecordAtomicityRun(lostUpdateProgram(nil), tg, seed, o)
			_, _, b := RecordAtomicityRun(lostUpdateProgram(nil), tg, seed, o)
			if !bytes.Equal(recordingBytes(t, a), recordingBytes(t, b)) {
				t.Fatalf("seed %d: serialized recordings differ", seed)
			}
		}
	})
}

// TestDivergeReportsExactPerturbedRecord perturbs one record of a recording
// and checks the detector names exactly that record index — the "fails
// loudly with the first divergent step" contract.
func TestDivergeReportsExactPerturbedRecord(t *testing.T) {
	_, want := RecordRace(bench.Figure2(10), bench.Fig2Pair, 7, Options{})
	if len(want.Records) < 10 {
		t.Fatalf("recording too short: %d records", len(want.Records))
	}
	// Find a decision record to perturb (its grants are scheduling-visible).
	idx := -1
	for i, r := range want.Records {
		if r.Dec != nil && len(r.Dec.Grants) > 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no granting decision in recording")
	}

	got := &flightrec.Recording{Header: want.Header, Records: append([]flightrec.Record(nil), want.Records...)}
	perturbed := *got.Records[idx].Dec
	perturbed.Grants = append([]int{99}, perturbed.Grants...)
	got.Records[idx] = flightrec.Record{Dec: &perturbed}

	d := flightrec.Diverge(got, want)
	if d == nil {
		t.Fatal("perturbation not detected")
	}
	if d.Index != idx {
		t.Fatalf("divergence at record %d, want %d: %v", d.Index, idx, d)
	}
	if d.Step != want.Records[idx].Step() {
		t.Fatalf("divergence step %d, want %d", d.Step, want.Records[idx].Step())
	}
	if !strings.Contains(d.String(), "replay divergence at record") {
		t.Fatalf("unhelpful divergence report: %q", d.String())
	}

	// A truncated recording is reported at the first missing record.
	short := &flightrec.Recording{Header: want.Header, Records: want.Records[:len(want.Records)-2]}
	d = flightrec.Diverge(short, want)
	if d == nil || d.Index != len(want.Records)-2 || d.Got != "<end of recording>" {
		t.Fatalf("truncation not pinpointed: %v", d)
	}

	// Header disagreement is its own case.
	other := &flightrec.Recording{Header: want.Header, Records: want.Records}
	other.Header.Seed++
	if d = flightrec.Diverge(other, want); d == nil || d.Index != -1 {
		t.Fatalf("header mismatch not detected: %v", d)
	}
}

// witnessDir is t.TempDir, except that when RACEFUZZER_TRACE_DIR is set
// (CI does this) the directory lives under it and is kept on failure so the
// captured *.trace.jsonl witnesses can be uploaded as artifacts.
func witnessDir(t *testing.T) string {
	base := os.Getenv("RACEFUZZER_TRACE_DIR")
	if base == "" {
		return t.TempDir()
	}
	dir := filepath.Join(base, strings.ReplaceAll(t.Name(), "/", "_"))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			os.RemoveAll(dir)
		}
	})
	return dir
}

// collectTraceSink captures emitted records that carry a trace path.
type collectTraceSink struct{ recs []obs.RunRecord }

func (c *collectTraceSink) Emit(rec obs.RunRecord) {
	if rec.Trace != "" {
		c.recs = append(c.recs, rec)
	}
}

func TestTraceDirCapturesRaceWitness(t *testing.T) {
	dir := witnessDir(t)
	metrics := obs.NewCampaignMetrics()
	sink := &collectTraceSink{}
	o := Options{Seed: 11, Phase2Trials: 20, Label: "fig2", TraceDir: dir, Metrics: metrics, Sink: sink}
	rep := FuzzPair(bench.Figure2(20), bench.Fig2Pair, 0, o)
	if !rep.IsReal {
		t.Fatalf("race not confirmed: %v", rep)
	}
	if rep.TraceErr != nil {
		t.Fatalf("capture failed: %v", rep.TraceErr)
	}
	if rep.TracePath == "" {
		t.Fatal("no witness path on report")
	}

	// Exactly one witness per target, surfaced in the run log and metrics.
	if len(sink.recs) != 1 || sink.recs[0].Trace != rep.TracePath {
		t.Fatalf("trace path not surfaced on the run record: %+v", sink.recs)
	}
	if sink.recs[0].Trial != rep.FirstRaceTrial || sink.recs[0].Seed != rep.FirstRaceSeed {
		t.Fatalf("witness attached to wrong trial: %+v", sink.recs[0])
	}
	if metrics.TraceCaptures() != 1 {
		t.Fatalf("traces.captured = %d, want 1", metrics.TraceCaptures())
	}

	// The archived witness reloads, confirms the race, and replays exactly.
	loaded, err := flightrec.LoadFile(rep.TracePath)
	if err != nil {
		t.Fatalf("load witness: %v", err)
	}
	if loaded.Summary().Races == 0 {
		t.Fatal("witness recording has no race")
	}
	if loaded.Header.Seed != rep.FirstRaceSeed || loaded.Header.Kind != "race" {
		t.Fatalf("witness header = %+v", loaded.Header)
	}
	_, fresh := RecordRace(bench.Figure2(20), bench.Fig2Pair, rep.FirstRaceSeed, o)
	if d := flightrec.Diverge(fresh, loaded); d != nil {
		t.Fatalf("witness does not replay: %v", d)
	}

	// Reloading must re-explain bit-identically.
	if fresh.Explain() != loaded.Explain() {
		t.Fatal("reloaded witness explains differently")
	}
	if !strings.Contains(loaded.Explain(), "REAL RACE") {
		t.Fatalf("explanation missing the race:\n%s", loaded.Explain())
	}
}

func TestTraceDirCapturesDeadlockAndAtomicityWitnesses(t *testing.T) {
	dir := witnessDir(t)
	o := Options{Seed: 5, Phase1Trials: 6, Phase2Trials: 20, Label: "dl", TraceDir: dir}
	cycles := DetectPotentialDeadlocks(abbaProgram(), o)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v", cycles)
	}
	dlRep := ConfirmDeadlock(abbaProgram(), cycles[0], 0, o)
	if !dlRep.IsReal || dlRep.TracePath == "" || dlRep.TraceErr != nil {
		t.Fatalf("deadlock witness not captured: %+v", dlRep)
	}
	loaded, err := flightrec.LoadFile(dlRep.TracePath)
	if err != nil {
		t.Fatalf("load deadlock witness: %v", err)
	}
	if !loaded.Summary().Deadlock {
		t.Fatal("deadlock witness has no deadlock")
	}
	if !strings.Contains(loaded.Explain(), "real deadlock at step") {
		t.Fatalf("deadlock explanation:\n%s", loaded.Explain())
	}

	ao := Options{Seed: 8, Phase1Trials: 6, Phase2Trials: 40, Label: "lu", TraceDir: dir}
	targets := DetectAtomicityTargets(lostUpdateProgram(nil), ao)
	var confirmed *AtomicityReport
	for i, tg := range targets {
		rep := ConfirmAtomicity(lostUpdateProgram(nil), tg, i, ao)
		if rep.IsReal {
			confirmed = &rep
			break
		}
	}
	if confirmed == nil {
		t.Fatal("no atomicity target confirmed")
	}
	if confirmed.TracePath == "" || confirmed.TraceErr != nil {
		t.Fatalf("atomicity witness not captured: %+v", confirmed)
	}
	aLoaded, err := flightrec.LoadFile(confirmed.TracePath)
	if err != nil {
		t.Fatalf("load atomicity witness: %v", err)
	}
	if aLoaded.Summary().Races == 0 {
		t.Fatal("atomicity witness has no violation")
	}
	if !strings.Contains(aLoaded.Explain(), "ATOMICITY VIOLATION") {
		t.Fatalf("atomicity explanation:\n%s", aLoaded.Explain())
	}

	// Witness files are named by label/kind/target/trial under TraceDir.
	names, err := filepath.Glob(filepath.Join(dir, "*.trace.jsonl"))
	if err != nil || len(names) < 2 {
		t.Fatalf("witness files = %v (err %v)", names, err)
	}
	for _, n := range names {
		if _, err := os.Stat(n); err != nil {
			t.Fatalf("stat %s: %v", n, err)
		}
	}
}

// TestCaptureDoesNotChangeVerdicts runs the same campaign with and without
// TraceDir: the auto-capture re-run must be invisible to every verdict and
// seed the campaign reports.
func TestCaptureDoesNotChangeVerdicts(t *testing.T) {
	plain := FuzzPair(bench.Figure2(20), bench.Fig2Pair, 0, Options{Seed: 11, Phase2Trials: 20})
	captured := FuzzPair(bench.Figure2(20), bench.Fig2Pair, 0,
		Options{Seed: 11, Phase2Trials: 20, TraceDir: witnessDir(t)})
	if plain.RaceRuns != captured.RaceRuns ||
		plain.FirstRaceTrial != captured.FirstRaceTrial ||
		plain.FirstRaceSeed != captured.FirstRaceSeed ||
		plain.ExceptionRuns != captured.ExceptionRuns {
		t.Fatalf("capture changed the campaign:\nplain:    %+v\ncaptured: %+v", plain, captured)
	}
}
