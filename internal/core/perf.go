package core

import (
	"fmt"
	"path/filepath"

	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/schedprof"
)

// Profiled variants of the phase-2 runs, mirroring the Record* family
// (record.go): each Profile* function re-executes the exact run its plain
// counterpart would run for the same seed with a standalone schedprof trial
// attached, and returns the trial's timeline for Perfetto export. Because a
// run is a pure function of (program, policy, seed) and profiling is
// passive, the profiled execution IS the original execution — the same
// identity that makes witness auto-capture sound makes perf capture sound.

// ProfileRace is FuzzRun with a performance timeline attached.
func ProfileRace(prog Program, pair event.StmtPair, seed int64, o Options) (*RunReport, *schedprof.Timeline) {
	pol := &RaceFuzzerPolicy{Target: pair, MaxPostponeAge: o.MaxPostponeAge}
	tr := schedprof.NewTrial(o.Label, seed, 0)
	res := sched.Run(prog, sched.Config{
		Seed: seed, Policy: pol, MaxSteps: o.MaxSteps,
		Name: fmt.Sprintf("racefuzzer%v", pair),
		Prof: tr,
	})
	return &RunReport{Seed: seed, Result: res, Races: pol.Races(), RaceCreated: pol.RaceCreated()}, tr.Timeline()
}

// ProfileDeadlockRun is one ConfirmDeadlock trial with a performance
// timeline attached.
func ProfileDeadlockRun(prog Program, target [2]event.LockID, seed int64, o Options) (*sched.Result, *schedprof.Timeline) {
	pol := NewDeadlockDirectedPolicy()
	pol.TargetLocks = &target
	pol.MaxPostponeAge = o.MaxPostponeAge
	tr := schedprof.NewTrial(o.Label, seed, 0)
	res := sched.Run(prog, sched.Config{
		Seed: seed, Policy: pol, MaxSteps: o.MaxSteps, Prof: tr,
	})
	return res, tr.Timeline()
}

// ProfileAtomicityRun is one ConfirmAtomicity trial with a performance
// timeline attached.
func ProfileAtomicityRun(prog Program, target AtomicityTarget, seed int64, o Options) (*sched.Result, *schedprof.Timeline) {
	pol := NewAtomicityDirectedPolicy(target)
	pol.MaxPostponeAge = o.MaxPostponeAge
	tr := schedprof.NewTrial(o.Label, seed, 0)
	res := sched.Run(prog, sched.Config{
		Seed: seed, Policy: pol, MaxSteps: o.MaxSteps, Prof: tr,
	})
	return res, tr.Timeline()
}

// perfPath names an exported performance timeline inside o.PerfDir:
// <label>-<kind>-p<target>-t<trial>.perf.json.
func (o Options) perfPath(kind string, targetIndex, trial int) string {
	return filepath.Join(o.PerfDir,
		fmt.Sprintf("%s-%s-p%d-t%d.perf.json", sanitizeLabel(o.Label), kind, targetIndex, trial))
}

// savePerf saves a timeline as Chrome trace-event JSON and reports the path
// ("" plus the error when saving failed; export failures never fail the
// campaign).
func savePerf(tl *schedprof.Timeline, path string) (string, error) {
	if err := tl.SaveFile(path); err != nil {
		return "", err
	}
	return path, nil
}
