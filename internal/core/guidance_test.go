package core

import (
	"testing"

	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

// abbaProgram is the classic two-lock deadlock candidate.
func abbaProgram() Program {
	return func(mt *sched.Thread) {
		s := mt.Scheduler()
		l1 := s.NewLock("L1")
		l2 := s.NewLock("L2")
		a := mt.Fork("a", func(c *sched.Thread) {
			c.LockAcquire(l1, event.StmtFor("dl:a1"))
			c.Nop(event.StmtFor("dl:a-work"))
			c.LockAcquire(l2, event.StmtFor("dl:a2"))
			c.LockRelease(l2, event.StmtFor("dl:a3"))
			c.LockRelease(l1, event.StmtFor("dl:a4"))
		})
		b := mt.Fork("b", func(c *sched.Thread) {
			c.LockAcquire(l2, event.StmtFor("dl:b1"))
			c.Nop(event.StmtFor("dl:b-work"))
			c.LockAcquire(l1, event.StmtFor("dl:b2"))
			c.LockRelease(l1, event.StmtFor("dl:b3"))
			c.LockRelease(l2, event.StmtFor("dl:b4"))
		})
		mt.Join(a)
		mt.Join(b)
	}
}

func TestDeadlockDirectedPolicyCreatesDeadlockReliably(t *testing.T) {
	// Random scheduling hits the ABBA deadlock only sometimes; the
	// deadlock-directed policy should create it in (nearly) every run.
	directed, random := 0, 0
	const trials = 40
	for i := int64(0); i < trials; i++ {
		res := sched.Run(abbaProgram(), sched.Config{Seed: 100 + i, Policy: NewDeadlockDirectedPolicy()})
		if res.Deadlock != nil {
			directed++
		}
		res = sched.Run(abbaProgram(), sched.Config{Seed: 100 + i, Policy: sched.NewRandomPolicy()})
		if res.Deadlock != nil {
			random++
		}
	}
	if directed < trials*9/10 {
		t.Fatalf("directed policy created the deadlock in only %d/%d runs", directed, trials)
	}
	if directed <= random {
		t.Fatalf("directed (%d) not better than random (%d)", directed, random)
	}
}

func TestDeadlockDirectedPolicyTerminatesWithoutCycle(t *testing.T) {
	// A program with nested locks but a consistent order can never deadlock;
	// the policy's postponements must not wedge it.
	prog := func(mt *sched.Thread) {
		s := mt.Scheduler()
		l1 := s.NewLock("L1")
		l2 := s.NewLock("L2")
		body := func(c *sched.Thread) {
			c.LockAcquire(l1, event.StmtFor("ord:1"))
			c.LockAcquire(l2, event.StmtFor("ord:2"))
			c.LockRelease(l2, event.StmtFor("ord:3"))
			c.LockRelease(l1, event.StmtFor("ord:4"))
		}
		a := mt.Fork("a", body)
		b := mt.Fork("b", body)
		mt.Join(a)
		mt.Join(b)
	}
	for i := int64(0); i < 20; i++ {
		pol := NewDeadlockDirectedPolicy()
		pol.MaxPostponeAge = 50
		res := sched.Run(prog, sched.Config{Seed: i, Policy: pol})
		if res.Deadlock != nil {
			t.Fatalf("seed %d: false deadlock on consistently ordered locks: %v", i, res.Deadlock)
		}
		if res.Aborted {
			t.Fatalf("seed %d: wedged", i)
		}
	}
}

func TestDeadlockDirectedPolicyTargetFocus(t *testing.T) {
	// With TargetLocks set to an unrelated pair, the ABBA locks are never
	// postponed, so the deadlock arises only as often as under plain random.
	prog := func(mt *sched.Thread) {
		s := mt.Scheduler()
		l1 := s.NewLock("L1")
		l2 := s.NewLock("L2")
		unrelated := s.NewLock("L3")
		_ = unrelated
		a := mt.Fork("a", func(c *sched.Thread) {
			c.LockAcquire(l1, event.StmtFor("tf:a1"))
			c.LockAcquire(l2, event.StmtFor("tf:a2"))
			c.LockRelease(l2, event.StmtFor("tf:a3"))
			c.LockRelease(l1, event.StmtFor("tf:a4"))
		})
		mt.Join(a)
	}
	pol := NewDeadlockDirectedPolicy()
	pol.TargetLocks = &[2]event.LockID{5, 6} // not the program's locks
	res := sched.Run(prog, sched.Config{Seed: 3, Policy: pol})
	if res.Deadlock != nil || res.Aborted {
		t.Fatalf("focused policy disturbed an unrelated program: %+v", res)
	}
}

// atomicityProgram: the victim reads a counter, then (intended atomically)
// writes it back incremented; the interferer writes the counter in between.
func atomicityProgram(firstS, secondS, interS event.Stmt, observed *int) Program {
	return func(mt *sched.Thread) {
		s := mt.Scheduler()
		loc := s.NewLoc("balance")
		balance := 100
		victim := mt.Fork("victim", func(c *sched.Thread) {
			c.MemRead(loc, firstS) // first half of the atomic block
			v := balance
			c.MemWrite(loc, secondS) // second half
			balance = v + 10
		})
		inter := mt.Fork("interferer", func(c *sched.Thread) {
			c.MemWrite(loc, interS)
			balance = 0
		})
		mt.Join(victim)
		mt.Join(inter)
		*observed = balance
	}
}

func TestAtomicityDirectedPolicyCreatesViolation(t *testing.T) {
	firstS := event.StmtFor("atom:read")
	secondS := event.StmtFor("atom:write")
	interS := event.StmtFor("atom:interfere")
	target := AtomicityTarget{First: firstS, Second: secondS, Interferers: []event.Stmt{interS}}

	violated, lost := 0, 0
	const trials = 40
	for i := int64(0); i < trials; i++ {
		var balance int
		pol := NewAtomicityDirectedPolicy(target)
		res := sched.Run(atomicityProgram(firstS, secondS, interS, &balance),
			sched.Config{Seed: 500 + i, Policy: pol})
		if res.Deadlock != nil || res.Aborted {
			t.Fatalf("seed %d: bad run %+v", i, res)
		}
		if len(pol.Violations()) > 0 {
			violated++
			v := pol.Violations()[0]
			if v.Victim == v.Interferer {
				t.Fatalf("degenerate violation: %v", v)
			}
			// The lost update: the interferer's write vanished.
			if balance == 110 {
				lost++
			}
		}
	}
	if violated < trials*3/4 {
		t.Fatalf("violation created in only %d/%d runs", violated, trials)
	}
	if lost == 0 {
		t.Fatal("the violation never manifested as a lost update")
	}
}

func TestRAPOSTerminatesAndBatches(t *testing.T) {
	for i := int64(0); i < 10; i++ {
		var final int
		pol := NewRAPOSPolicy()
		prog := func(mt *sched.Thread) {
			s := mt.Scheduler()
			locks := []event.LockID{s.NewLock("A"), s.NewLock("B")}
			locs := []event.MemLoc{s.NewLoc("x"), s.NewLoc("y")}
			kids := []*sched.Thread{}
			for w := 0; w < 4; w++ {
				w := w
				kids = append(kids, mt.Fork("w", func(c *sched.Thread) {
					for j := 0; j < 5; j++ {
						c.LockAcquire(locks[w%2], event.StmtFor("rp:acq"))
						c.MemWrite(locs[w%2], event.StmtFor("rp:write"))
						final++
						c.LockRelease(locks[w%2], event.StmtFor("rp:rel"))
					}
				}))
			}
			for _, k := range kids {
				mt.Join(k)
			}
		}
		res := sched.Run(prog, sched.Config{Seed: i, Policy: pol})
		if res.Deadlock != nil || res.Aborted {
			t.Fatalf("seed %d: %+v", i, res)
		}
		if final != 20 {
			t.Fatalf("seed %d: %d writes, want 20", i, final)
		}
		batches, grants := pol.Stats()
		if grants < batches {
			t.Fatalf("stats inverted: %d grants, %d batches", grants, batches)
		}
		if grants == batches {
			t.Fatalf("seed %d: RAPOS never batched independent ops", i)
		}
	}
}

func TestRAPOSExploresBothRaceOrders(t *testing.T) {
	a := event.StmtFor("rpo:w1")
	b := event.StmtFor("rpo:w2")
	firstWins, secondWins := 0, 0
	for i := int64(0); i < 60; i++ {
		order := 0
		prog := func(mt *sched.Thread) {
			loc := mt.Scheduler().NewLoc("x")
			t1 := mt.Fork("t1", func(c *sched.Thread) {
				c.MemWrite(loc, a)
				if order == 0 {
					order = 1
				}
			})
			t2 := mt.Fork("t2", func(c *sched.Thread) {
				c.MemWrite(loc, b)
				if order == 0 {
					order = 2
				}
			})
			mt.Join(t1)
			mt.Join(t2)
		}
		sched.Run(prog, sched.Config{Seed: 900 + i, Policy: NewRAPOSPolicy()})
		if order == 1 {
			firstWins++
		} else {
			secondWins++
		}
	}
	if firstWins == 0 || secondWins == 0 {
		t.Fatalf("RAPOS is order-biased: %d vs %d", firstWins, secondWins)
	}
}
