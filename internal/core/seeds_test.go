package core

import (
	"sync"
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/obs"
)

// Golden tests for per-trial seed derivation. Stored corpora, archived
// witness recordings and the regress mode all assume a trial's seed is a
// stable pure function of (base seed, target index, trial index) — changing
// any constant below silently invalidates every saved artifact, so the
// constants are pinned here as literals.

func TestPairSeedGoldenValues(t *testing.T) {
	cases := []struct {
		base   int64
		pi, i  int
		expect int64
	}{
		{0, 0, 0, 1},
		{42, 0, 0, 43},
		{42, 0, 1, 7_962},
		{42, 1, 0, 1_000_046},
		{42, 2, 3, 2_023_806},
		{7, 3_000_000, 5, 3_000_009_039_603},           // FuzzSet salt
		{21, 7_000_000, 0, 7_000_021_000_022},          // deadlock salt, cycle 0
		{17, 9_000_001, 2, 9_000_028_015_859},          // atomicity salt, target 1
		{-5, 0, 0, -4},                                 // negative bases stay linear
		{1 << 40, 1, 1, 1_099_511_627_776 + 1_007_923}, // large bases don't collide the salts
	}
	for _, c := range cases {
		if got := pairSeed(c.base, c.pi, c.i); got != c.expect {
			t.Errorf("pairSeed(%d, %d, %d) = %d, want %d", c.base, c.pi, c.i, got, c.expect)
		}
	}
}

// seedSink captures every emitted record for offline seed inspection.
type seedSink struct {
	mu   sync.Mutex
	recs []obs.RunRecord
}

func (s *seedSink) Emit(rec obs.RunRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
}

// checkSeeds asserts every captured record's seed matches the published
// derivation: phase 1 uses base+trial, phase 2 uses pairSeed with the
// pipeline's salt added to the target index.
func checkSeeds(t *testing.T, recs []obs.RunRecord, base int64, salt int) {
	t.Helper()
	if len(recs) == 0 {
		t.Fatal("no records emitted")
	}
	p1, p2 := 0, 0
	for _, r := range recs {
		switch r.Phase {
		case 1:
			p1++
			if want := base + int64(r.Trial); r.Seed != want {
				t.Fatalf("phase-1 trial %d: seed %d, want %d", r.Trial, r.Seed, want)
			}
		case 2:
			p2++
			want := base + int64(r.PairIndex+salt)*1_000_003 + int64(r.Trial)*7_919 + 1
			if r.Seed != want {
				t.Fatalf("phase-2 %s target %d trial %d: seed %d, want %d",
					r.Kind, r.PairIndex, r.Trial, r.Seed, want)
			}
		default:
			t.Fatalf("record with phase %d", r.Phase)
		}
	}
	if p1 == 0 || p2 == 0 {
		t.Fatalf("phase coverage: %d phase-1, %d phase-2 records", p1, p2)
	}
}

func TestRacePipelineSeedDerivationGolden(t *testing.T) {
	sink := &seedSink{}
	Analyze(bench.Figure1(), Options{Seed: 42, Phase1Trials: 3, Phase2Trials: 4, Sink: sink})
	checkSeeds(t, sink.recs, 42, 0)
}

func TestDeadlockPipelineSeedDerivationGolden(t *testing.T) {
	sink := &seedSink{}
	AnalyzeDeadlocks(abbaProgram(), Options{Seed: 21, Phase1Trials: 3, Phase2Trials: 4, Sink: sink})
	checkSeeds(t, sink.recs, 21, 7_000_000)
}

func TestAtomicityPipelineSeedDerivationGolden(t *testing.T) {
	sink := &seedSink{}
	AnalyzeAtomicity(lostUpdateProgram(nil), Options{Seed: 17, Phase1Trials: 3, Phase2Trials: 4, Sink: sink})
	checkSeeds(t, sink.recs, 17, 9_000_000)
}

func TestFuzzSetSeedDerivationGolden(t *testing.T) {
	sink := &seedSink{}
	pairs := DetectPotentialRaces(bench.Figure1(), Options{Seed: 13, Phase1Trials: 3})
	if len(pairs) == 0 {
		t.Fatal("no potential pairs")
	}
	FuzzSet(bench.Figure1(), pairs, Options{Seed: 13, Phase2Trials: 4, Sink: sink})
	if len(sink.recs) == 0 {
		t.Fatal("no records emitted")
	}
	for _, r := range sink.recs {
		if r.Phase != 2 {
			continue
		}
		// FuzzSet targets the whole set: PairIndex is -1 and the seed stream
		// uses the fixed 3_000_000 salt.
		if r.PairIndex != -1 {
			t.Fatalf("race-set record has pair index %d", r.PairIndex)
		}
		want := int64(13) + 3_000_000*1_000_003 + int64(r.Trial)*7_919 + 1
		if r.Seed != want {
			t.Fatalf("race-set trial %d: seed %d, want %d", r.Trial, r.Seed, want)
		}
	}
}
