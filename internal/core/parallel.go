package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The campaign executor. Every pipeline in this package is a loop over
// independent trials — phase-1 detector observations, phase-2 directed runs
// over a (target, trial) grid — and each trial's schedule is a pure function
// of its derived seed (the paper's replay guarantee, §2.2/§4). That makes
// campaigns embarrassingly parallel, with one catch: the *aggregation* is
// order-sensitive. FirstRaceTrial must be the first confirming trial in
// trial order (not the first to finish), telemetry records must reach sinks
// in a deterministic order, and witness capture must target the in-order
// first confirming trial.
//
// runOrdered is the whole abstraction: tasks execute on a bounded worker
// pool in whatever order the pool gets to them, while the caller's consume
// function observes results in strictly increasing task order on the calling
// goroutine. Aggregation code therefore reads exactly like the sequential
// loop it replaced, and a campaign's outputs are bit-identical at any worker
// count — the determinism cross-check tests assert this for all three
// pipelines.

// workerCount resolves Options.Workers to a concrete pool size:
// 0 or 1 → sequential, N > 1 → N workers, negative → runtime.NumCPU().
func (o Options) workerCount() int {
	switch {
	case o.Workers < 0:
		return runtime.NumCPU()
	case o.Workers <= 1:
		return 1
	}
	return o.Workers
}

// runOrdered executes task(0..n-1) with up to workers concurrent executions
// and calls consume(i, result) for every i in strictly increasing order on
// the caller's goroutine. With workers <= 1 it degenerates to the plain
// interleaved loop `consume(i, task(i))`, so the sequential path is
// literally the pre-executor code path.
//
// Tasks must be independent of one another; consume may be slow (e.g. the
// witness-capture re-run) without stalling the pool — workers keep filling
// later slots while the caller drains earlier ones. A panicking task stops
// the dispatch of new tasks, and the panic is re-raised on the caller's
// goroutine after in-flight tasks drain, matching sequential behaviour.
func runOrdered[T any](workers, n int, task func(i int) T, consume func(i int, r T)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			consume(i, task(i))
		}
		return
	}
	if workers > n {
		workers = n
	}

	type slot struct {
		ready    chan struct{}
		result   T
		panicked any
	}
	slots := make([]slot, n)
	for i := range slots {
		slots[i].ready = make(chan struct{})
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							slots[i].panicked = p
						}
						close(slots[i].ready)
					}()
					slots[i].result = task(i)
				}()
			}
		}()
	}

	for i := 0; i < n; i++ {
		<-slots[i].ready
		if p := slots[i].panicked; p != nil {
			// Stop dispatching, let in-flight tasks drain, then surface the
			// panic where the sequential loop would have raised it.
			next.Store(int64(n))
			wg.Wait()
			panic(p)
		}
		consume(i, slots[i].result)
	}
	wg.Wait()
}
