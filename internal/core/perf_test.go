package core

import (
	"encoding/json"
	"os"
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/obs"
	"racefuzzer/internal/schedprof"
)

// collectPerfSink captures emitted records that carry a perf-timeline path.
type collectPerfSink struct{ recs []obs.RunRecord }

func (c *collectPerfSink) Emit(rec obs.RunRecord) {
	if rec.Perf != "" {
		c.recs = append(c.recs, rec)
	}
}

func TestPerfDirExportsTimeline(t *testing.T) {
	dir := t.TempDir()
	sink := &collectPerfSink{}
	o := Options{Seed: 11, Phase2Trials: 20, Label: "fig2", PerfDir: dir,
		Metrics: obs.NewCampaignMetrics(), Sink: sink}
	rep := FuzzPair(bench.Figure2(20), bench.Fig2Pair, 0, o)
	if !rep.IsReal {
		t.Fatalf("race not confirmed: %v", rep)
	}
	if rep.PerfErr != nil {
		t.Fatalf("perf export failed: %v", rep.PerfErr)
	}
	if rep.PerfPath == "" {
		t.Fatal("no perf path on report")
	}
	// Exactly one export per target, attached to the first confirming trial.
	if len(sink.recs) != 1 || sink.recs[0].Perf != rep.PerfPath {
		t.Fatalf("perf path not surfaced on the run record: %+v", sink.recs)
	}
	if sink.recs[0].Trial != rep.FirstRaceTrial || sink.recs[0].Seed != rep.FirstRaceSeed {
		t.Fatalf("perf timeline attached to wrong trial: %+v", sink.recs[0])
	}
	// The exported file is valid Chrome trace-event JSON with slices.
	data, err := os.ReadFile(rep.PerfPath)
	if err != nil {
		t.Fatalf("read perf trace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("perf trace is not valid JSON: %v", err)
	}
	slices := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Fatalf("perf trace has no slices (%d events)", len(doc.TraceEvents))
	}
}

// TestPerfExportDoesNotChangeVerdicts mirrors TestCaptureDoesNotChangeVerdicts
// for the profiling re-run: attaching a collector and exporting a timeline
// must be invisible to every verdict and seed the campaign reports.
func TestPerfExportDoesNotChangeVerdicts(t *testing.T) {
	plain := FuzzPair(bench.Figure2(20), bench.Fig2Pair, 0, Options{Seed: 11, Phase2Trials: 20})
	profiled := FuzzPair(bench.Figure2(20), bench.Fig2Pair, 0,
		Options{Seed: 11, Phase2Trials: 20, PerfDir: t.TempDir(), Prof: schedprof.NewCollector()})
	if plain.RaceRuns != profiled.RaceRuns ||
		plain.FirstRaceTrial != profiled.FirstRaceTrial ||
		plain.FirstRaceSeed != profiled.FirstRaceSeed ||
		plain.ExceptionRuns != profiled.ExceptionRuns {
		t.Fatalf("profiling changed the campaign:\nplain:    %+v\nprofiled: %+v", plain, profiled)
	}
}

// TestProfCollectorAggregatesCampaign attaches a collector to a full
// pipeline (sequential and parallel) and checks every execution was folded
// in with per-op-kind latency aggregates.
func TestProfCollectorAggregatesCampaign(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prof := schedprof.NewCollector()
		rep := Analyze(bench.Figure2(20),
			Options{Seed: 3, Phase1Trials: 2, Phase2Trials: 10, Workers: workers, Prof: prof})
		s := prof.Summary()
		wantTrials := int64(2 + len(rep.Potential)*10)
		if s.Trials != wantTrials {
			t.Fatalf("workers=%d: profiled %d trials, campaign ran %d", workers, s.Trials, wantTrials)
		}
		if s.Grants == 0 || len(s.Ops) == 0 {
			t.Fatalf("workers=%d: empty summary: %+v", workers, s)
		}
		for _, op := range s.Ops {
			if op.Count > 0 && op.Service.MaxNs <= 0 {
				t.Fatalf("workers=%d: op %s has samples but no latency", workers, op.Kind)
			}
		}
		if len(s.Phases) != 3 {
			t.Fatalf("workers=%d: phases = %+v", workers, s.Phases)
		}
	}
}

// TestDeadlockAndAtomicityPerfExport checks the other two pipelines export
// timelines for their first confirming trials.
func TestDeadlockAndAtomicityPerfExport(t *testing.T) {
	dir := t.TempDir()
	o := Options{Seed: 5, Phase1Trials: 6, Phase2Trials: 20, Label: "dl", PerfDir: dir}
	cycles := DetectPotentialDeadlocks(abbaProgram(), o)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v", cycles)
	}
	dlRep := ConfirmDeadlock(abbaProgram(), cycles[0], 0, o)
	if !dlRep.IsReal || dlRep.PerfPath == "" || dlRep.PerfErr != nil {
		t.Fatalf("deadlock perf timeline not exported: %+v", dlRep)
	}

	ao := Options{Seed: 8, Phase1Trials: 6, Phase2Trials: 40, Label: "lu", PerfDir: dir}
	targets := DetectAtomicityTargets(lostUpdateProgram(nil), ao)
	exported := false
	for i, tg := range targets {
		rep := ConfirmAtomicity(lostUpdateProgram(nil), tg, i, ao)
		if rep.IsReal {
			if rep.PerfPath == "" || rep.PerfErr != nil {
				t.Fatalf("atomicity perf timeline not exported: %+v", rep)
			}
			exported = true
			break
		}
	}
	if !exported {
		t.Fatal("no atomicity target confirmed")
	}
	for _, path := range []string{dlRep.PerfPath} {
		data, err := os.ReadFile(path)
		if err != nil || !json.Valid(data) {
			t.Fatalf("perf trace %s unreadable or invalid (err %v)", path, err)
		}
	}
}
