package core

import (
	"reflect"
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/corpus"
)

// campaignInto runs all three pipelines over their standard test programs
// with every confirmation reported into store, and returns the counts.
func campaignInto(store *corpus.Store, workers int) (newSigs, knownSigs int64) {
	o := Options{Seed: 42, Phase1Trials: 3, Phase2Trials: 10, Workers: workers, Corpus: store}
	Analyze(bench.Figure1(), o)
	AnalyzeDeadlocks(abbaProgram(), o)
	AnalyzeAtomicity(lostUpdateProgram(nil), o)
	return store.Counts()
}

// Back-to-back campaigns sharing one store: the second run must rediscover
// only known signatures — the 100% dedup acceptance criterion.
func TestSecondCampaignIsFullyDeduplicated(t *testing.T) {
	store := corpus.NewStore()
	newSigs, knownSigs := campaignInto(store, 0)
	if newSigs == 0 {
		t.Fatal("first campaign reported no findings")
	}
	if knownSigs != 0 {
		t.Fatalf("first campaign on empty store marked %d findings known", knownSigs)
	}
	firstLen := store.Len()

	new2, known2 := campaignInto(store, 0)
	if new2 != newSigs {
		t.Fatalf("second campaign added signatures: new %d -> %d", newSigs, new2)
	}
	if known2 == 0 {
		t.Fatal("second campaign deduplicated nothing")
	}
	if store.Len() != firstLen {
		t.Fatalf("corpus grew on rerun: %d -> %d findings", firstLen, store.Len())
	}
	// Every finding was re-sighted: hits incremented across the board.
	for _, f := range store.Findings() {
		if f.Hits < 2 {
			t.Fatalf("finding %s has %d hits after two campaigns", f.Sig.Canon(), f.Hits)
		}
	}
}

// The corpus is populated from the pipelines' ordered merge goroutine, so
// its contents must be bit-identical at any worker-pool width.
func TestCorpusDeterministicAcrossWorkers(t *testing.T) {
	type snapshot struct {
		findings []corpus.Finding
		coverage []corpus.CoverageCell
	}
	var base *snapshot
	for _, workers := range []int{0, 1, 4, 8} {
		store := corpus.NewStore()
		campaignInto(store, workers)
		snap := &snapshot{findings: store.Findings(), coverage: store.Coverage()}
		if base == nil {
			base = snap
			if len(base.findings) == 0 || len(base.coverage) == 0 {
				t.Fatalf("baseline campaign empty: %d findings, %d cells",
					len(base.findings), len(base.coverage))
			}
			continue
		}
		if !reflect.DeepEqual(snap.findings, base.findings) {
			t.Fatalf("workers=%d: findings diverge from sequential baseline\n got: %+v\nwant: %+v",
				workers, snap.findings, base.findings)
		}
		if !reflect.DeepEqual(snap.coverage, base.coverage) {
			t.Fatalf("workers=%d: coverage diverges from sequential baseline\n got: %+v\nwant: %+v",
				workers, snap.coverage, base.coverage)
		}
	}
}

// Reports landing from several goroutines at once must stay race-free and
// converge to one finding (exercised under -race in CI).
func TestCorpusSharedAcrossConcurrentPipelines(t *testing.T) {
	store := corpus.NewStore()
	done := make(chan struct{}, 2)
	for g := 0; g < 2; g++ {
		go func(seed int64) {
			Analyze(bench.Figure1(), Options{
				Seed: seed, Phase1Trials: 3, Phase2Trials: 10, Workers: 4, Corpus: store,
			})
			done <- struct{}{}
		}(int64(g) * 1000)
	}
	<-done
	<-done
	if store.Len() == 0 {
		t.Fatal("no findings reported")
	}
	for _, f := range store.Findings() {
		if f.Hits < 1 {
			t.Fatalf("finding %s has zero hits", f.Sig.Canon())
		}
	}
}
