// Package event defines the core vocabulary shared by the scheduler, the
// race detectors and the RaceFuzzer algorithm: thread/lock/memory-location
// identities, statement labels, and the MEM/SND/RCV event model of §2.1 of
// the paper.
//
// All identities are small integers assigned by deterministic counters, so a
// given (program, seed) pair always produces the same identities. Statement
// labels are interned strings; by default they are captured automatically
// from the caller's file:line, mirroring the paper's use of program
// statements as the unit that phase 1 reports and phase 2 targets.
package event

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// ThreadID identifies a model thread within one execution. The main thread
// is always ThreadID 0 and children are numbered in fork order, which is
// deterministic because execution is serialized.
type ThreadID int

// NoThread is the zero-value "no such thread" sentinel.
const NoThread ThreadID = -1

func (t ThreadID) String() string {
	if t == NoThread {
		return "T?"
	}
	return fmt.Sprintf("T%d", int(t))
}

// LockID identifies a model lock (Java monitor) within one execution.
type LockID int

// NoLock is the "no lock" sentinel.
const NoLock LockID = -1

func (l LockID) String() string { return fmt.Sprintf("L%d", int(l)) }

// MemLoc identifies one dynamic shared memory location (a Var, or one slot
// of an Array). Two accesses race only if they touch the same MemLoc.
type MemLoc int

// NoLoc is the "no location" sentinel used by non-memory operations.
const NoLoc MemLoc = -1

func (m MemLoc) String() string { return fmt.Sprintf("m%d", int(m)) }

// MsgID identifies one SND/RCV message (fork, join, notify edges).
type MsgID int

// AccessKind distinguishes reads from writes in MEM events.
type AccessKind int

const (
	// Read is a shared-memory read access.
	Read AccessKind = iota
	// Write is a shared-memory write access.
	Write
)

func (a AccessKind) String() string {
	if a == Write {
		return "WRITE"
	}
	return "READ"
}

// Stmt is an interned statement label. Statements are the static program
// points the paper's phase 1 reports as potentially racing pairs and that
// RaceFuzzer's RaceSet is made of. The zero value NoStmt means "unlabeled".
type Stmt int

// NoStmt is the unlabeled statement.
const NoStmt Stmt = 0

var stmtTab = struct {
	sync.Mutex
	byName map[string]Stmt
	names  []string
}{
	byName: map[string]Stmt{"": NoStmt},
	names:  []string{""},
}

// StmtFor interns name and returns its statement label. Interning is global
// and append-only so labels are stable across executions in one process.
func StmtFor(name string) Stmt {
	stmtTab.Lock()
	defer stmtTab.Unlock()
	if s, ok := stmtTab.byName[name]; ok {
		return s
	}
	s := Stmt(len(stmtTab.names))
	stmtTab.byName[name] = s
	stmtTab.names = append(stmtTab.names, name)
	return s
}

// Name returns the interned name of s ("" for NoStmt).
func (s Stmt) Name() string {
	stmtTab.Lock()
	defer stmtTab.Unlock()
	if int(s) < 0 || int(s) >= len(stmtTab.names) {
		return fmt.Sprintf("stmt#%d", int(s))
	}
	return stmtTab.names[s]
}

func (s Stmt) String() string {
	n := s.Name()
	if n == "" {
		return "<unlabeled>"
	}
	return n
}

// CallerStmt returns a statement label derived from the caller's source
// position, skip frames above the caller of CallerStmt itself. It is the
// analogue of the paper's bytecode-level statement identity: two textual
// occurrences of an access in the model program get distinct labels.
func CallerStmt(skip int) Stmt {
	// A program counter identifies one call site, which always resolves to
	// the same file:line — so the formatted, interned label can be cached by
	// pc. Fork/Join/Interrupt call this on every execution of a model
	// program; the cache (and using Callers rather than the allocating
	// runtime.Caller) makes repeat visits allocation-free.
	var pcbuf [1]uintptr
	if runtime.Callers(skip+2, pcbuf[:]) == 0 {
		return NoStmt
	}
	pc := pcbuf[0]
	callerStmtCache.RLock()
	s, hit := callerStmtCache.m[pc]
	callerStmtCache.RUnlock()
	if hit {
		return s
	}
	frames := runtime.CallersFrames(pcbuf[:])
	frame, _ := frames.Next()
	file := frame.File
	// Keep the trailing two path segments: enough to be unique and stable,
	// short enough to read in reports.
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		if j := strings.LastIndexByte(file[:i], '/'); j >= 0 {
			file = file[j+1:]
		}
	}
	s = StmtFor(fmt.Sprintf("%s:%d", file, frame.Line))
	callerStmtCache.Lock()
	callerStmtCache.m[pc] = s
	callerStmtCache.Unlock()
	return s
}

// callerStmtCache memoizes CallerStmt by call-site program counter. Like the
// statement table it is global and append-only; a typed map is used (rather
// than sync.Map) so the hit path does not box the uintptr key.
var callerStmtCache = struct {
	sync.RWMutex
	m map[uintptr]Stmt
}{m: map[uintptr]Stmt{}}

// StmtPair is an unordered pair of statements — the unit phase 1 reports
// and phase 2 takes as its RaceSet. Construction normalizes the order so
// pairs compare and hash consistently.
type StmtPair struct {
	A, B Stmt
}

// MakeStmtPair returns the normalized (A ≤ B) pair of a and b.
func MakeStmtPair(a, b Stmt) StmtPair {
	if b < a {
		a, b = b, a
	}
	return StmtPair{A: a, B: b}
}

// Contains reports whether s is one of the pair's statements.
func (p StmtPair) Contains(s Stmt) bool { return s != NoStmt && (s == p.A || s == p.B) }

// Other returns the pair's other statement given one of them; it returns
// NoStmt when s is not in the pair. For a self-pair (A==B) it returns A.
func (p StmtPair) Other(s Stmt) Stmt {
	switch s {
	case p.A:
		return p.B
	case p.B:
		return p.A
	}
	return NoStmt
}

func (p StmtPair) String() string {
	return fmt.Sprintf("(%s, %s)", p.A, p.B)
}

// SortStmtPairs orders pairs deterministically (by interned label text,
// then numerically) for stable reports.
func SortStmtPairs(ps []StmtPair) {
	sort.Slice(ps, func(i, j int) bool {
		ai, bi := ps[i].A.Name(), ps[i].B.Name()
		aj, bj := ps[j].A.Name(), ps[j].B.Name()
		if ai != aj {
			return ai < aj
		}
		if bi != bj {
			return bi < bj
		}
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// Kind enumerates the event kinds of the paper's abstract model (§2.1).
type Kind int

const (
	// KindMem is a MEM(s, m, a, t, L) shared-memory access event.
	KindMem Kind = iota
	// KindSnd is a SND(g, t) message-send event (fork, exit-for-join,
	// delivered notify).
	KindSnd
	// KindRcv is a RCV(g, t) message-receive event (thread begin, join,
	// wakeup from wait).
	KindRcv
	// KindLock is a lock-acquire event (tracked for locksets; not part of
	// the happens-before relation in the hybrid algorithm).
	KindLock
	// KindUnlock is a lock-release event.
	KindUnlock

	// KindCount is the number of event kinds; telemetry indexes per-kind
	// counters with it.
	KindCount
)

func (k Kind) String() string {
	switch k {
	case KindMem:
		return "MEM"
	case KindSnd:
		return "SND"
	case KindRcv:
		return "RCV"
	case KindLock:
		return "LOCK"
	case KindUnlock:
		return "UNLOCK"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one observation delivered to detectors and trace recorders.
// Which fields are meaningful depends on Kind:
//
//   - KindMem:    Thread, Stmt, Loc, Access, Locks (locks held at the access)
//   - KindSnd:    Thread, Msg
//   - KindRcv:    Thread, Msg
//   - KindLock:   Thread, Stmt, Lock
//   - KindUnlock: Thread, Stmt, Lock
type Event struct {
	Kind   Kind
	Thread ThreadID
	Stmt   Stmt
	Loc    MemLoc
	Access AccessKind
	Lock   LockID
	Msg    MsgID
	Locks  []LockID // sorted snapshot of held locks (MEM events only)
	Step   int      // scheduler step index at which the event occurred
}

func (e Event) String() string {
	switch e.Kind {
	case KindMem:
		return fmt.Sprintf("MEM(%s, %s, %s, %s, %v)@%d", e.Stmt, e.Loc, e.Access, e.Thread, e.Locks, e.Step)
	case KindSnd:
		return fmt.Sprintf("SND(g%d, %s)@%d", int(e.Msg), e.Thread, e.Step)
	case KindRcv:
		return fmt.Sprintf("RCV(g%d, %s)@%d", int(e.Msg), e.Thread, e.Step)
	case KindLock:
		return fmt.Sprintf("LOCK(%s, %s)@%d", e.Lock, e.Thread, e.Step)
	case KindUnlock:
		return fmt.Sprintf("UNLOCK(%s, %s)@%d", e.Lock, e.Thread, e.Step)
	}
	return fmt.Sprintf("Event{kind=%d}", int(e.Kind))
}
