package event

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStmtInterning(t *testing.T) {
	a := StmtFor("pkg/file.go:10")
	b := StmtFor("pkg/file.go:10")
	c := StmtFor("pkg/file.go:11")
	if a != b {
		t.Fatal("same name interned to different Stmts")
	}
	if a == c {
		t.Fatal("different names interned to same Stmt")
	}
	if a.Name() != "pkg/file.go:10" {
		t.Fatalf("Name = %q", a.Name())
	}
	if NoStmt.Name() != "" || NoStmt.String() != "<unlabeled>" {
		t.Fatal("NoStmt rendering wrong")
	}
}

func TestCallerStmt(t *testing.T) {
	s := CallerStmt(0)
	if !strings.Contains(s.Name(), "event_test.go") {
		t.Fatalf("CallerStmt = %q, want this file", s.Name())
	}
	// Two calls on different lines must differ.
	s2 := CallerStmt(0)
	if s == s2 {
		t.Fatal("different lines share a Stmt")
	}
}

func TestStmtPairNormalization(t *testing.T) {
	a, b := StmtFor("pair:a"), StmtFor("pair:b")
	p1 := MakeStmtPair(a, b)
	p2 := MakeStmtPair(b, a)
	if p1 != p2 {
		t.Fatal("pair not normalized")
	}
	if !p1.Contains(a) || !p1.Contains(b) {
		t.Fatal("Contains wrong")
	}
	if p1.Contains(StmtFor("pair:c")) {
		t.Fatal("spurious Contains")
	}
	if p1.Other(a) != b || p1.Other(b) != a {
		t.Fatal("Other wrong")
	}
	if p1.Other(StmtFor("pair:d")) != NoStmt {
		t.Fatal("Other on non-member must be NoStmt")
	}
	self := MakeStmtPair(a, a)
	if !self.Contains(a) || self.Other(a) != a {
		t.Fatal("self-pair semantics wrong")
	}
	if NoStmt != StmtFor("") {
		t.Fatal("empty name must intern to NoStmt")
	}
	if p1.Contains(NoStmt) {
		t.Fatal("pair contains NoStmt")
	}
}

func TestQuickPairSymmetry(t *testing.T) {
	f := func(x, y uint16) bool {
		a := StmtFor("q:" + string(rune('a'+x%26)) + itoa(int(x)))
		b := StmtFor("q:" + string(rune('a'+y%26)) + itoa(int(y)))
		p, q := MakeStmtPair(a, b), MakeStmtPair(b, a)
		return p == q && p.A <= p.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	digits := "0123456789"
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(digits[i%10]) + s
		i /= 10
	}
	return s
}

func TestSortStmtPairsDeterministic(t *testing.T) {
	a, b, c := StmtFor("sort:a"), StmtFor("sort:b"), StmtFor("sort:c")
	ps := []StmtPair{MakeStmtPair(c, b), MakeStmtPair(a, c), MakeStmtPair(a, b)}
	SortStmtPairs(ps)
	if ps[0] != MakeStmtPair(a, b) || ps[1] != MakeStmtPair(a, c) || ps[2] != MakeStmtPair(b, c) {
		t.Fatalf("sorted = %v", ps)
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: KindMem, Thread: 1, Stmt: StmtFor("s:x"), Loc: 3, Access: Write, Locks: []LockID{0}}, "MEM"},
		{Event{Kind: KindSnd, Thread: 2, Msg: 7}, "SND(g7"},
		{Event{Kind: KindRcv, Thread: 2, Msg: 7}, "RCV(g7"},
		{Event{Kind: KindLock, Thread: 0, Lock: 4}, "LOCK(L4"},
		{Event{Kind: KindUnlock, Thread: 0, Lock: 4}, "UNLOCK(L4"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want contains %q", got, c.want)
		}
	}
}

func TestIDStrings(t *testing.T) {
	if ThreadID(3).String() != "T3" || NoThread.String() != "T?" {
		t.Fatal("ThreadID strings")
	}
	if LockID(2).String() != "L2" || MemLoc(5).String() != "m5" {
		t.Fatal("Lock/MemLoc strings")
	}
	if Read.String() != "READ" || Write.String() != "WRITE" {
		t.Fatal("AccessKind strings")
	}
	for _, k := range []Kind{KindMem, KindSnd, KindRcv, KindLock, KindUnlock} {
		if k.String() == "" {
			t.Fatal("Kind string empty")
		}
	}
}
