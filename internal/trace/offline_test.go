package trace

import (
	"bytes"
	"strings"
	"testing"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/event"
	"racefuzzer/internal/hb"
	"racefuzzer/internal/hybrid"
	"racefuzzer/internal/sched"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rec := New(0)
	res := sched.Run(bench.Figure1(), sched.Config{Seed: 5, Observers: []sched.Observer{rec}})
	if res.Steps == 0 {
		t.Fatal("no steps")
	}
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(rec.Events()) {
		t.Fatalf("loaded %d events, recorded %d", len(loaded), len(rec.Events()))
	}
	for i, e := range rec.Events() {
		if loaded[i].String() != e.String() {
			t.Fatalf("event %d mismatch:\n  %v\n  %v", i, e, loaded[i])
		}
	}
}

// TestOfflineEqualsOnline: the detectors are pure functions of the event
// stream, so running them offline on a recording must give the same pairs
// as running them online.
func TestOfflineEqualsOnline(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rec := New(0)
		onHy := hybrid.New()
		onHb := hb.New()
		sched.Run(bench.Figure1(), sched.Config{
			Seed: seed, Observers: []sched.Observer{rec, onHy, onHb},
		})

		var buf bytes.Buffer
		if err := rec.Save(&buf); err != nil {
			t.Fatal(err)
		}
		events, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		offHy := hybrid.New()
		offHb := hb.New()
		Feed(events, offHy, offHb)

		if !samePairs(onHy.Pairs(), offHy.Pairs()) {
			t.Fatalf("seed %d: hybrid offline %v != online %v", seed, offHy.Pairs(), onHy.Pairs())
		}
		if !samePairs(onHb.Pairs(), offHb.Pairs()) {
			t.Fatalf("seed %d: hb offline %v != online %v", seed, offHb.Pairs(), onHb.Pairs())
		}
	}
}

func samePairs(a, b []event.StmtPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("no error on garbage input")
	}
}

func TestSaveWritesVersionHeaderFirst(t *testing.T) {
	rec := New(0)
	sched.Run(bench.Figure1(), sched.Config{Seed: 5, Observers: []sched.Observer{rec}})
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	first, _, found := bytes.Cut(buf.Bytes(), []byte("\n"))
	if !found || string(first) != `{"v":1}` {
		t.Fatalf("first line = %q, want {\"v\":1}", first)
	}
}

func TestLoadRejectsUnsupportedVersion(t *testing.T) {
	_, err := Load(bytes.NewBufferString(`{"v":99}` + "\n"))
	if err == nil {
		t.Fatal("version 99 accepted")
	}
	if !strings.Contains(err.Error(), "unsupported trace version 99") {
		t.Fatalf("unhelpful version error: %v", err)
	}
}

func TestLoadAcceptsLegacyHeaderlessTrace(t *testing.T) {
	// Streams written before versioning start directly with an event line.
	in := `{"k":0,"t":1,"s":"legacy:1","m":2,"a":1,"l":-1,"g":0,"n":3}` + "\n"
	events, err := Load(bytes.NewBufferString(in))
	if err != nil || len(events) != 1 {
		t.Fatalf("events=%v err=%v", events, err)
	}
	if events[0].Stmt.Name() != "legacy:1" || events[0].Step != 3 {
		t.Fatalf("event = %v", events[0])
	}
}

func TestSaveEmptyRecording(t *testing.T) {
	var buf bytes.Buffer
	if err := New(0).Save(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := Load(&buf)
	if err != nil || len(events) != 0 {
		t.Fatalf("events=%v err=%v", events, err)
	}
}
