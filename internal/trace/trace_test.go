package trace

import (
	"strings"
	"testing"

	"racefuzzer/internal/event"
)

func mem(t event.ThreadID, loc event.MemLoc) event.Event {
	return event.Event{Kind: event.KindMem, Thread: t, Loc: loc, Stmt: event.StmtFor("tr:s"), Step: int(loc)}
}

func TestUnboundedRecording(t *testing.T) {
	r := New(0)
	for i := 0; i < 100; i++ {
		r.OnEvent(mem(0, event.MemLoc(i)))
	}
	if r.Total() != 100 || len(r.Events()) != 100 {
		t.Fatalf("total=%d len=%d", r.Total(), len(r.Events()))
	}
	if !strings.Contains(r.Dump(), "MEM") {
		t.Fatal("dump missing events")
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := New(10)
	for i := 0; i < 25; i++ {
		r.OnEvent(mem(0, event.MemLoc(i)))
	}
	evs := r.Events()
	if len(evs) != 10 || r.Total() != 25 {
		t.Fatalf("len=%d total=%d", len(evs), r.Total())
	}
	if evs[0].Loc != 15 || evs[9].Loc != 24 {
		t.Fatalf("ring contents wrong: first=%v last=%v", evs[0].Loc, evs[9].Loc)
	}
	if !strings.Contains(r.Dump(), "15 earlier events elided") {
		t.Fatalf("dump = %q", r.Dump())
	}
}

func TestFilterMem(t *testing.T) {
	r := New(0)
	r.OnEvent(mem(0, 1))
	r.OnEvent(event.Event{Kind: event.KindSnd, Thread: 0, Msg: 1})
	r.OnEvent(mem(1, 2))
	r.OnEvent(mem(2, 1))
	if got := r.FilterMem(1); len(got) != 2 {
		t.Fatalf("filter loc 1 = %d events", len(got))
	}
	if got := r.FilterMem(event.NoLoc); len(got) != 3 {
		t.Fatalf("filter all = %d events", len(got))
	}
}
