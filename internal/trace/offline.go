package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"racefuzzer/internal/event"
)

// Offline analysis support: an execution's event stream can be serialized
// and re-analyzed later with any detector, the remedy the paper mentions
// (§1, citing Narayanasamy et al.) for the runtime overhead of precise
// online detection — record cheaply now, analyze offline later. Because
// detectors are pure functions of the event stream, offline results are
// bit-identical to online ones (tested in offline_test.go).

// jsonEvent is the serialized form of one event. Statement labels are
// serialized by name so a recording is valid across processes.
type jsonEvent struct {
	Kind   int            `json:"k"`
	Thread int            `json:"t"`
	Stmt   string         `json:"s,omitempty"`
	Loc    int            `json:"m"`
	Access int            `json:"a"`
	Lock   int            `json:"l"`
	Msg    int            `json:"g"`
	Locks  []event.LockID `json:"L,omitempty"`
	Step   int            `json:"n"`
}

func toJSON(e event.Event) jsonEvent {
	return jsonEvent{
		Kind: int(e.Kind), Thread: int(e.Thread), Stmt: e.Stmt.Name(),
		Loc: int(e.Loc), Access: int(e.Access), Lock: int(e.Lock),
		Msg: int(e.Msg), Locks: e.Locks, Step: e.Step,
	}
}

func fromJSON(j jsonEvent) event.Event {
	return event.Event{
		Kind: event.Kind(j.Kind), Thread: event.ThreadID(j.Thread),
		Stmt: event.StmtFor(j.Stmt), Loc: event.MemLoc(j.Loc),
		Access: event.AccessKind(j.Access), Lock: event.LockID(j.Lock),
		Msg: event.MsgID(j.Msg), Locks: j.Locks, Step: j.Step,
	}
}

// Save writes the recorder's events as JSON lines.
func (r *Recorder) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.events {
		if err := enc.Encode(toJSON(e)); err != nil {
			return fmt.Errorf("trace: save: %w", err)
		}
	}
	return nil
}

// Load reads a JSON-lines recording.
func Load(r io.Reader) ([]event.Event, error) {
	dec := json.NewDecoder(r)
	var out []event.Event
	for {
		var j jsonEvent
		if err := dec.Decode(&j); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: load: %w", err)
		}
		out = append(out, fromJSON(j))
	}
}

// Feed replays a recorded stream into any set of observers (detectors),
// exactly as if they had observed the execution live.
func Feed(events []event.Event, observers ...interface{ OnEvent(event.Event) }) {
	for _, e := range events {
		for _, o := range observers {
			o.OnEvent(e)
		}
	}
}
