package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"racefuzzer/internal/event"
)

// Offline analysis support: an execution's event stream can be serialized
// and re-analyzed later with any detector, the remedy the paper mentions
// (§1, citing Narayanasamy et al.) for the runtime overhead of precise
// online detection — record cheaply now, analyze offline later. Because
// detectors are pure functions of the event stream, offline results are
// bit-identical to online ones (tested in offline_test.go).

// FormatVersion is the current trace serialization version. Save stamps it
// in a {"v":1} header line; Load rejects traces written by a newer format
// with an "unsupported trace version" error instead of misparsing them.
// internal/flightrec extends this wire format (same event encoding, extra
// record kinds) and shares the version.
const FormatVersion = 1

// Header is the first line of a serialized trace.
type Header struct {
	V int `json:"v"`
}

// WireEvent is the serialized form of one event. Statement labels are
// serialized by name so a recording is valid across processes.
type WireEvent struct {
	Kind   int            `json:"k"`
	Thread int            `json:"t"`
	Stmt   string         `json:"s,omitempty"`
	Loc    int            `json:"m"`
	Access int            `json:"a"`
	Lock   int            `json:"l"`
	Msg    int            `json:"g"`
	Locks  []event.LockID `json:"L,omitempty"`
	Step   int            `json:"n"`
}

// ToWire converts an event to its serialized form.
func ToWire(e event.Event) WireEvent {
	return WireEvent{
		Kind: int(e.Kind), Thread: int(e.Thread), Stmt: e.Stmt.Name(),
		Loc: int(e.Loc), Access: int(e.Access), Lock: int(e.Lock),
		Msg: int(e.Msg), Locks: e.Locks, Step: e.Step,
	}
}

// FromWire converts a serialized event back, re-interning its statement
// label in this process.
func FromWire(w WireEvent) event.Event {
	return event.Event{
		Kind: event.Kind(w.Kind), Thread: event.ThreadID(w.Thread),
		Stmt: event.StmtFor(w.Stmt), Loc: event.MemLoc(w.Loc),
		Access: event.AccessKind(w.Access), Lock: event.LockID(w.Lock),
		Msg: event.MsgID(w.Msg), Locks: w.Locks, Step: w.Step,
	}
}

// CheckVersion validates a loaded header's version against FormatVersion.
func CheckVersion(v int) error {
	if v != FormatVersion {
		return fmt.Errorf("trace: unsupported trace version %d (this build reads version %d)", v, FormatVersion)
	}
	return nil
}

// Save writes the recorder's events as JSON lines, preceded by the format
// version header.
func (r *Recorder) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(Header{V: FormatVersion}); err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	for _, e := range r.events {
		if err := enc.Encode(ToWire(e)); err != nil {
			return fmt.Errorf("trace: save: %w", err)
		}
	}
	return nil
}

// Load reads a JSON-lines recording. Traces carry a {"v":N} header line;
// an unsupported version is a graceful error. Headerless streams (written
// before versioning) are accepted as version 1.
func Load(r io.Reader) ([]event.Event, error) {
	dec := json.NewDecoder(r)
	var out []event.Event
	first := true
	for {
		// Each line decodes into the event shape plus the optional header
		// field; event lines never carry "v", so V != 0 identifies a header.
		var j struct {
			V int `json:"v"`
			WireEvent
		}
		if err := dec.Decode(&j); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: load: %w", err)
		}
		if first && j.V != 0 {
			first = false
			if err := CheckVersion(j.V); err != nil {
				return nil, err
			}
			continue
		}
		first = false
		out = append(out, FromWire(j.WireEvent))
	}
}

// Feed replays a recorded stream into any set of observers (detectors),
// exactly as if they had observed the execution live.
func Feed(events []event.Event, observers ...interface{ OnEvent(event.Event) }) {
	for _, e := range events {
		for _, o := range observers {
			o.OnEvent(e)
		}
	}
}
