// Package trace records an execution's event stream for debugging and for
// displaying replayed race-revealing schedules. RaceFuzzer itself never
// needs a recording — replay is seed-based (§2.2) — so the recorder is an
// optional observer used by the CLI's -trace mode and by tests.
package trace

import (
	"fmt"
	"strings"

	"racefuzzer/internal/event"
)

// Recorder is a sched.Observer that keeps the last Cap events (0 = all).
type Recorder struct {
	// Cap bounds the recording as a ring of the most recent events.
	Cap    int
	events []event.Event
	total  int
}

// New returns a recorder keeping at most cap events (0 = unbounded).
func New(cap int) *Recorder { return &Recorder{Cap: cap} }

// OnEvent implements sched.Observer.
func (r *Recorder) OnEvent(e event.Event) {
	r.total++
	if r.Cap > 0 && len(r.events) == r.Cap {
		copy(r.events, r.events[1:])
		r.events[len(r.events)-1] = e
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events (oldest first).
func (r *Recorder) Events() []event.Event { return r.events }

// Total returns the total number of events observed, including any that
// fell out of the ring.
func (r *Recorder) Total() int { return r.total }

// Dump renders the recording, one event per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	if r.Cap > 0 && r.total > len(r.events) {
		fmt.Fprintf(&b, "... %d earlier events elided ...\n", r.total-len(r.events))
	}
	for _, e := range r.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FilterMem returns only the MEM events touching loc (all MEM events when
// loc is event.NoLoc) — handy when inspecting one race.
func (r *Recorder) FilterMem(loc event.MemLoc) []event.Event {
	var out []event.Event
	for _, e := range r.events {
		if e.Kind != event.KindMem {
			continue
		}
		if loc == event.NoLoc || e.Loc == loc {
			out = append(out, e)
		}
	}
	return out
}
