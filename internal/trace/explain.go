package trace

import (
	"fmt"
	"strings"

	"racefuzzer/internal/event"
	"racefuzzer/internal/report"
)

// Explanation rendering: a replayed race is far easier to understand as a
// per-thread timeline — each thread a column, time flowing downward, with
// the scheduler's causal annotations (postpone points, the race check)
// interleaved — than as a flat event dump. This file renders the timeline
// for a raw event stream; internal/flightrec layers the policy's decision
// and action records on top of it.

// Mark is an annotation pinned into a timeline: scheduler-side context (a
// postpone decision, a race confirmation) that is not itself an event.
// Marks at step N render after the events of step N and before those of
// N+1; Thread selects the column (NoThread renders across the row).
type Mark struct {
	Step   int
	Thread event.ThreadID
	Text   string
}

// EventCell renders one event compactly for a timeline cell:
// "write m3 @file.go:12 {L0 L1}". Lock/unlock and message events render
// their operands; the step is carried by the row, not the cell.
func EventCell(e event.Event) string {
	switch e.Kind {
	case event.KindMem:
		held := "{}"
		if len(e.Locks) > 0 {
			parts := make([]string, len(e.Locks))
			for i, l := range e.Locks {
				parts[i] = l.String()
			}
			held = "{" + strings.Join(parts, " ") + "}"
		}
		access := "read"
		if e.Access == event.Write {
			access = "write"
		}
		return fmt.Sprintf("%s %s @%s %s", access, e.Loc, e.Stmt, held)
	case event.KindLock:
		return fmt.Sprintf("lock %s @%s", e.Lock, e.Stmt)
	case event.KindUnlock:
		return fmt.Sprintf("unlock %s @%s", e.Lock, e.Stmt)
	case event.KindSnd:
		return fmt.Sprintf("snd g%d", int(e.Msg))
	case event.KindRcv:
		return fmt.Sprintf("rcv g%d", int(e.Msg))
	}
	return e.String()
}

// Explain renders a per-thread ASCII timeline of the events with steps in
// [lo, hi], one column per thread, annotated with marks. Threads are the
// union of those appearing in the window's events and marks, so postponed
// threads (which execute nothing while parked) still get their column.
func Explain(events []event.Event, lo, hi int, marks []Mark) string {
	maxT := event.NoThread
	var window []event.Event
	for _, e := range events {
		if e.Step < lo || e.Step > hi {
			continue
		}
		window = append(window, e)
		if e.Thread > maxT {
			maxT = e.Thread
		}
	}
	for _, m := range marks {
		if m.Thread > maxT {
			maxT = m.Thread
		}
	}
	if maxT == event.NoThread {
		return "(no events in window)\n"
	}
	headers := []string{"step"}
	for t := event.ThreadID(0); t <= maxT; t++ {
		headers = append(headers, t.String())
	}
	tbl := report.NewTable(fmt.Sprintf("timeline (steps %d..%d, one column per thread)", lo, hi), headers...)

	addMark := func(m Mark) {
		row := make([]any, 1+int(maxT)+1)
		for i := range row {
			row[i] = ""
		}
		row[0] = fmt.Sprintf("%d*", m.Step)
		col := 1 // NoThread: annotate in the first thread column, prefixed
		text := m.Text
		if m.Thread != event.NoThread {
			col = 1 + int(m.Thread)
		}
		row[col] = text
		tbl.AddRow(row...)
	}

	mi := 0
	for mi < len(marks) && marks[mi].Step < lo {
		mi++
	}
	for _, e := range window {
		for mi < len(marks) && marks[mi].Step < e.Step {
			addMark(marks[mi])
			mi++
		}
		row := make([]any, 1+int(maxT)+1)
		for i := range row {
			row[i] = ""
		}
		row[0] = fmt.Sprintf("%d", e.Step)
		row[1+int(e.Thread)] = EventCell(e)
		tbl.AddRow(row...)
	}
	for mi < len(marks) && marks[mi].Step <= hi {
		addMark(marks[mi])
		mi++
	}
	return tbl.Render()
}
