// Package hb implements a precise happens-before race detector — the
// classical technique (Schonberg; FastTrack-style vector clocks) the paper
// contrasts with in §1 and §6. Unlike the hybrid detector, its
// happens-before relation includes lock release→acquire edges, so it only
// reports races that actually manifest (two accesses causally unordered in
// the observed execution) and never false alarms — but it misses races that
// a different schedule would expose, which is exactly the weakness Example 2
// (§3.2) illustrates and RaceFuzzer repairs.
package hb

import (
	"racefuzzer/internal/event"
	"racefuzzer/internal/vclock"
)

// access is one remembered MEM event for a location.
type access struct {
	thread event.ThreadID
	stmt   event.Stmt
	write  bool
	vc     *vclock.VC
}

// Detector is a sched.Observer implementing precise happens-before race
// detection with fork/join/notify and lock release→acquire edges.
type Detector struct {
	vcs   map[event.ThreadID]*vclock.VC
	msgs  map[event.MsgID]*vclock.VC
	locks map[event.LockID]*vclock.VC
	hist  map[event.MemLoc][]access
	races map[event.StmtPair]int
}

// New returns an empty detector.
func New() *Detector {
	return &Detector{
		vcs:   make(map[event.ThreadID]*vclock.VC),
		msgs:  make(map[event.MsgID]*vclock.VC),
		locks: make(map[event.LockID]*vclock.VC),
		hist:  make(map[event.MemLoc][]access),
		races: make(map[event.StmtPair]int),
	}
}

func (d *Detector) clock(t event.ThreadID) *vclock.VC {
	vc, ok := d.vcs[t]
	if !ok {
		vc = vclock.New()
		vc.Tick(t)
		d.vcs[t] = vc
	}
	return vc
}

// OnEvent implements sched.Observer.
func (d *Detector) OnEvent(e event.Event) {
	switch e.Kind {
	case event.KindSnd:
		vc := d.clock(e.Thread)
		vc.Tick(e.Thread)
		d.msgs[e.Msg] = vc.Copy()

	case event.KindRcv:
		vc := d.clock(e.Thread)
		vc.Tick(e.Thread)
		if mc, ok := d.msgs[e.Msg]; ok {
			vc.Join(mc)
		}

	case event.KindLock:
		vc := d.clock(e.Thread)
		vc.Tick(e.Thread)
		if lc, ok := d.locks[e.Lock]; ok {
			vc.Join(lc) // release → acquire edge
		}

	case event.KindUnlock:
		vc := d.clock(e.Thread)
		vc.Tick(e.Thread)
		d.locks[e.Lock] = vc.Copy()

	case event.KindMem:
		vc := d.clock(e.Thread)
		vc.Tick(e.Thread)
		snap := vc.Copy()
		h := d.hist[e.Loc]
		for i := range h {
			p := &h[i]
			if p.thread == e.Thread {
				continue
			}
			if !p.write && e.Access != event.Write {
				continue
			}
			if p.vc.Get(p.thread) <= snap.Get(p.thread) {
				continue // ordered: p happens-before e
			}
			d.races[event.MakeStmtPair(p.stmt, e.Stmt)]++
		}
		d.hist[e.Loc] = append(h, access{
			thread: e.Thread, stmt: e.Stmt, write: e.Access == event.Write, vc: snap,
		})
	}
}

// Pairs returns the racing statement pairs actually observed, in
// deterministic order.
func (d *Detector) Pairs() []event.StmtPair {
	out := make([]event.StmtPair, 0, len(d.races))
	for p := range d.races {
		out = append(out, p)
	}
	event.SortStmtPairs(out)
	return out
}

// Count returns the number of witnessing event pairs for p.
func (d *Detector) Count(p event.StmtPair) int { return d.races[p] }
