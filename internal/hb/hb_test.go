package hb

import (
	"testing"

	"racefuzzer/internal/event"
)

func mem(t event.ThreadID, stmt string, loc event.MemLoc, w bool) event.Event {
	a := event.Read
	if w {
		a = event.Write
	}
	return event.Event{Kind: event.KindMem, Thread: t, Stmt: event.StmtFor(stmt), Loc: loc, Access: a}
}

func run(events ...event.Event) *Detector {
	d := New()
	for _, e := range events {
		d.OnEvent(e)
	}
	return d
}

func TestUnorderedWritesRace(t *testing.T) {
	d := run(
		mem(0, "hb:w0", 1, true),
		mem(1, "hb:w1", 1, true),
	)
	if len(d.Pairs()) != 1 {
		t.Fatalf("pairs = %v", d.Pairs())
	}
	p := d.Pairs()[0]
	if d.Count(p) != 1 {
		t.Fatalf("count = %d", d.Count(p))
	}
}

func TestLockEdgeOrders(t *testing.T) {
	// Unlike the hybrid detector, HB honours release→acquire: accesses
	// separated by a lock handoff are NOT races — precisely why a pure HB
	// detector misses the Figure-2 race in most schedules.
	d := run(
		mem(0, "hb:fw", 1, true),
		event.Event{Kind: event.KindLock, Thread: 0, Lock: 9},
		event.Event{Kind: event.KindUnlock, Thread: 0, Lock: 9},
		event.Event{Kind: event.KindLock, Thread: 1, Lock: 9},
		event.Event{Kind: event.KindUnlock, Thread: 1, Lock: 9},
		mem(1, "hb:fr", 1, false),
	)
	if len(d.Pairs()) != 0 {
		t.Fatalf("lock-handoff-ordered accesses reported: %v", d.Pairs())
	}
}

func TestMessageEdgeOrders(t *testing.T) {
	d := run(
		mem(0, "hb:mw", 1, true),
		event.Event{Kind: event.KindSnd, Thread: 0, Msg: 1},
		event.Event{Kind: event.KindRcv, Thread: 1, Msg: 1},
		mem(1, "hb:mr", 1, false),
	)
	if len(d.Pairs()) != 0 {
		t.Fatalf("fork-ordered accesses reported: %v", d.Pairs())
	}
}

func TestSameThreadNoRace(t *testing.T) {
	d := run(
		mem(0, "hb:a", 1, true),
		mem(0, "hb:b", 1, true),
	)
	if len(d.Pairs()) != 0 {
		t.Fatal("program order violated")
	}
}

func TestReadReadNoRace(t *testing.T) {
	d := run(
		mem(0, "hb:r0", 1, false),
		mem(1, "hb:r1", 1, false),
	)
	if len(d.Pairs()) != 0 {
		t.Fatal("read-read reported")
	}
}

func TestHBDetectsOnlyWhatManifests(t *testing.T) {
	// Same program, two schedules. Schedule A separates the accesses with a
	// lock handoff → no race observed. Schedule B has the write before the
	// reader takes the lock → race observed. This is the schedule-dependence
	// the paper criticizes HB detectors for (§1, §3.2).
	scheduleA := []event.Event{
		mem(0, "hb:sw", 1, true),
		{Kind: event.KindLock, Thread: 0, Lock: 3},
		{Kind: event.KindUnlock, Thread: 0, Lock: 3},
		{Kind: event.KindLock, Thread: 1, Lock: 3},
		{Kind: event.KindUnlock, Thread: 1, Lock: 3},
		mem(1, "hb:sr", 1, false),
	}
	scheduleB := []event.Event{
		{Kind: event.KindLock, Thread: 1, Lock: 3},
		{Kind: event.KindUnlock, Thread: 1, Lock: 3},
		mem(0, "hb:sw", 1, true),
		{Kind: event.KindLock, Thread: 0, Lock: 3},
		{Kind: event.KindUnlock, Thread: 0, Lock: 3},
		mem(1, "hb:sr", 1, false),
	}
	if got := len(run(scheduleA...).Pairs()); got != 0 {
		t.Fatalf("schedule A reported %d races", got)
	}
	if got := len(run(scheduleB...).Pairs()); got != 1 {
		t.Fatalf("schedule B reported %d races, want 1", got)
	}
}
