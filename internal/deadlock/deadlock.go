// Package deadlock implements phase 1 of the deadlock-directed instantiation
// of active testing (§1 of the paper: "we can bias the random scheduler by
// other potential concurrency problems such as … potential deadlocks. …
// Such sets of problematic statements could be provided by a static or
// dynamic analysis technique").
//
// The analysis is the classic lock-order graph (GoodLock-style): observing
// one execution, record an edge l1 → l2 whenever a thread acquires l2 while
// holding l1, annotated with the acquiring thread, the acquisition
// statement, and the gate set (all locks held at the acquisition). A pair of
// opposite edges l1 → l2 and l2 → l1 taken by different threads whose gate
// sets (minus the cycle's own locks) are disjoint is a *potential deadlock*
// — imprecise in exactly the way hybrid race detection is, and confirmed or
// refuted by core.DeadlockDirectedPolicy in phase 2.
package deadlock

import (
	"fmt"
	"sort"

	"racefuzzer/internal/event"
	"racefuzzer/internal/lockset"
)

// edgeKey identifies one lock-order edge.
type edgeKey struct {
	from, to event.LockID
}

// edgeInfo accumulates the contexts in which an edge was taken.
type edgeInfo struct {
	// byThread maps each acquiring thread to the gate sets seen. Gate sets
	// are deduplicated by signature.
	byThread map[event.ThreadID][]lockset.Set
	// stmts records acquisition statements (for reports).
	stmts map[event.Stmt]bool
}

// Cycle is a potential deadlock: two locks acquired in opposite orders by
// two different threads with disjoint gates.
type Cycle struct {
	Locks   [2]event.LockID
	Threads [2]event.ThreadID // example witnesses (first seen)
	Stmts   []event.Stmt      // acquisition statements involved
}

func (c Cycle) String() string {
	return fmt.Sprintf("potential deadlock: %v acquires %s then %s; %v acquires %s then %s",
		c.Threads[0], c.Locks[0], c.Locks[1], c.Threads[1], c.Locks[1], c.Locks[0])
}

// Detector is a sched.Observer building the lock-order graph.
type Detector struct {
	edges map[edgeKey]*edgeInfo
}

// New returns an empty detector.
func New() *Detector {
	return &Detector{edges: make(map[edgeKey]*edgeInfo)}
}

// OnEvent implements sched.Observer. Lock events carry the post-acquisition
// lockset snapshot, so no unlock bookkeeping is needed: the held-before set
// is the snapshot minus the acquired lock.
func (d *Detector) OnEvent(e event.Event) {
	if e.Kind != event.KindLock {
		return
	}
	heldAfter := lockset.Of(e.Locks...)
	heldBefore := heldAfter.Remove(e.Lock)
	if heldBefore.Len() == 0 {
		return
	}
	for _, from := range heldBefore.Slice() {
		k := edgeKey{from: from, to: e.Lock}
		info := d.edges[k]
		if info == nil {
			info = &edgeInfo{
				byThread: make(map[event.ThreadID][]lockset.Set),
				stmts:    make(map[event.Stmt]bool),
			}
			d.edges[k] = info
		}
		info.stmts[e.Stmt] = true
		gates := heldBefore.Remove(from) // gate set: everything else held
		dup := false
		for _, g := range info.byThread[e.Thread] {
			if g.Equal(gates) {
				dup = true
				break
			}
		}
		if !dup {
			info.byThread[e.Thread] = append(info.byThread[e.Thread], gates)
		}
	}
}

// Cycles returns the potential deadlocks, deterministically ordered.
func (d *Detector) Cycles() []Cycle {
	var out []Cycle
	seen := make(map[edgeKey]bool)
	keys := make([]edgeKey, 0, len(d.edges))
	for k := range d.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		if k.from >= k.to {
			continue // handle each unordered lock pair once
		}
		rk := edgeKey{from: k.to, to: k.from}
		rev, ok := d.edges[rk]
		if !ok {
			continue
		}
		if seen[k] {
			continue
		}
		fwd := d.edges[k]
		// Two different threads with disjoint gate sets?
		cyc, found := d.findWitness(k, fwd, rev)
		if found {
			seen[k] = true
			out = append(out, cyc)
		}
	}
	return out
}

func (d *Detector) findWitness(k edgeKey, fwd, rev *edgeInfo) (Cycle, bool) {
	fwdThreads := sortedThreads(fwd.byThread)
	revThreads := sortedThreads(rev.byThread)
	for _, t1 := range fwdThreads {
		for _, t2 := range revThreads {
			if t1 == t2 {
				continue
			}
			for _, g1 := range fwd.byThread[t1] {
				for _, g2 := range rev.byThread[t2] {
					gates1 := g1.Remove(k.from).Remove(k.to)
					gates2 := g2.Remove(k.from).Remove(k.to)
					if gates1.Disjoint(gates2) {
						c := Cycle{
							Locks:   [2]event.LockID{k.from, k.to},
							Threads: [2]event.ThreadID{t1, t2},
						}
						for s := range fwd.stmts {
							c.Stmts = append(c.Stmts, s)
						}
						for s := range rev.stmts {
							c.Stmts = append(c.Stmts, s)
						}
						sort.Slice(c.Stmts, func(i, j int) bool { return c.Stmts[i] < c.Stmts[j] })
						return c, true
					}
				}
			}
		}
	}
	return Cycle{}, false
}

func sortedThreads(m map[event.ThreadID][]lockset.Set) []event.ThreadID {
	out := make([]event.ThreadID, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EdgeCount returns the number of distinct lock-order edges observed.
func (d *Detector) EdgeCount() int { return len(d.edges) }
