package deadlock

import (
	"testing"

	"racefuzzer/internal/event"
	"racefuzzer/internal/lockset"
)

func lockEvent(t event.ThreadID, stmt string, l event.LockID, heldAfter ...event.LockID) event.Event {
	return event.Event{
		Kind: event.KindLock, Thread: t, Stmt: event.StmtFor(stmt),
		Lock: l, Locks: heldAfter,
	}
}

func TestOppositeOrdersMakeCycle(t *testing.T) {
	d := New()
	// T0: lock(1) then lock(2); T1: lock(2) then lock(1).
	d.OnEvent(lockEvent(0, "dl:t0a", 1, 1))
	d.OnEvent(lockEvent(0, "dl:t0b", 2, 1, 2))
	d.OnEvent(lockEvent(1, "dl:t1a", 2, 2))
	d.OnEvent(lockEvent(1, "dl:t1b", 1, 1, 2))
	cycles := d.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v", cycles)
	}
	c := cycles[0]
	if c.Locks != [2]event.LockID{1, 2} {
		t.Fatalf("locks = %v", c.Locks)
	}
	if len(c.Stmts) == 0 {
		t.Fatal("no witness statements recorded")
	}
	if d.EdgeCount() != 2 {
		t.Fatalf("edges = %d", d.EdgeCount())
	}
}

func TestConsistentOrderNoCycle(t *testing.T) {
	d := New()
	d.OnEvent(lockEvent(0, "dl:a", 2, 1, 2))
	d.OnEvent(lockEvent(1, "dl:b", 2, 1, 2))
	if len(d.Cycles()) != 0 {
		t.Fatalf("cycle from consistent order: %v", d.Cycles())
	}
}

func TestSameThreadNoCycle(t *testing.T) {
	d := New()
	// One thread takes both orders at different times: not a deadlock (a
	// thread cannot deadlock with itself through reentrant monitors).
	d.OnEvent(lockEvent(0, "dl:a", 2, 1, 2))
	d.OnEvent(lockEvent(0, "dl:b", 1, 1, 2))
	if len(d.Cycles()) != 0 {
		t.Fatalf("self-cycle reported: %v", d.Cycles())
	}
}

func TestGateLockSuppressesCycle(t *testing.T) {
	d := New()
	// Both nested acquisitions happen under a common gate lock 9: the cycle
	// is infeasible (GoodLock's guarded-cycle rule).
	d.OnEvent(lockEvent(0, "dl:g0a", 1, 9, 1))
	d.OnEvent(lockEvent(0, "dl:g0b", 2, 9, 1, 2))
	d.OnEvent(lockEvent(1, "dl:g1a", 2, 9, 2))
	d.OnEvent(lockEvent(1, "dl:g1b", 1, 9, 1, 2))
	if len(d.Cycles()) != 0 {
		t.Fatalf("gated cycle reported: %v", d.Cycles())
	}
	// With different gates, the cycle is feasible.
	d2 := New()
	d2.OnEvent(lockEvent(0, "dl:h0a", 1, 8, 1))
	d2.OnEvent(lockEvent(0, "dl:h0b", 2, 8, 1, 2))
	d2.OnEvent(lockEvent(1, "dl:h1a", 2, 9, 2))
	d2.OnEvent(lockEvent(1, "dl:h1b", 1, 9, 1, 2))
	if len(d2.Cycles()) != 1 {
		t.Fatalf("differently-gated cycle missed: %v", d2.Cycles())
	}
}

func TestTopLevelAcquisitionsIgnored(t *testing.T) {
	d := New()
	d.OnEvent(lockEvent(0, "dl:x", 1, 1))
	d.OnEvent(lockEvent(1, "dl:y", 1, 1))
	if d.EdgeCount() != 0 {
		t.Fatalf("edges from top-level acquisitions: %d", d.EdgeCount())
	}
}

func TestNonLockEventsIgnored(t *testing.T) {
	d := New()
	d.OnEvent(event.Event{Kind: event.KindMem, Thread: 0, Loc: 1, Locks: []event.LockID{1, 2}})
	d.OnEvent(event.Event{Kind: event.KindUnlock, Thread: 0, Lock: 1})
	d.OnEvent(event.Event{Kind: event.KindSnd, Thread: 0, Msg: 1})
	if d.EdgeCount() != 0 || len(d.Cycles()) != 0 {
		t.Fatal("non-lock events affected the graph")
	}
}

func TestGateDedup(t *testing.T) {
	d := New()
	// The same edge with the same gates many times stays one context.
	for i := 0; i < 50; i++ {
		d.OnEvent(lockEvent(0, "dl:rep", 2, 1, 2))
	}
	if d.EdgeCount() != 1 {
		t.Fatalf("edges = %d", d.EdgeCount())
	}
	if len(lockset.Of(1).Slice()) != 1 { // exercise the helper import
		t.Fatal("lockset helper broken")
	}
}
