package benchsnap

import (
	"fmt"

	"racefuzzer/internal/fleetspan"
)

// FleetspanSuite measures the fleet flight recorder's per-unit cost: the
// full queued→leased→heartbeat→result→ingested hook sequence against a live
// collector, and the identical sequence against a nil collector — the
// product configuration for untraced campaigns, which PR policy holds to a
// ≤1% overhead budget (enforced as a hard test in
// fleetspan.TestCollectorDisabledOverhead; the snapshot tracks the numbers
// release over release).
func FleetspanSuite(o SuiteOptions) *Snapshot {
	o = o.withDefaults()
	snap := &Snapshot{
		Schema: SchemaVersion,
		Suite:  "fleetspan",
		Description: "Fleet span-collector unit-lifecycle cost: live collector vs the " +
			"nil-collector no-op path untraced campaigns run. The disabled path's " +
			"budget is a hard test (fleetspan disabled-overhead); these numbers track drift.",
		Benchtime: o.Benchtime.String(),
		Note:      o.Note,
	}

	// One op = one unit's full hook sequence, worker sub-spans included.
	// The collector is recycled every 4096 units the way a campaign's rounds
	// bound it, so the measurement doesn't degenerate into append cost on an
	// ever-growing trail.
	lifecycle := func(c *fleetspan.Collector, i int64) {
		id := fmt.Sprintf("r1-t%d", i&4095)
		c.UnitQueued(id, 1, int(i&4095), "benchsnap")
		c.UnitLeased(id, "w1", i)
		c.Heartbeat("w1", id, 0)
		c.UnitResult(id, "w1", i, true, "", &fleetspan.WorkerSpans{})
		c.UnitIngested(id)
	}
	{
		col := fleetspan.NewCollector(fleetspan.Config{Token: "benchsnap"})
		var i int64
		res := Measure("unit_lifecycle_traced", o.Benchtime, func() {
			if i&4095 == 4095 {
				col = fleetspan.NewCollector(fleetspan.Config{Token: "benchsnap"})
			}
			lifecycle(col, i)
			i++
		})
		snap.Results = append(snap.Results, res)
	}
	{
		var nilCol *fleetspan.Collector
		var i int64
		res := Measure("unit_lifecycle_disabled", o.Benchtime, func() {
			lifecycle(nilCol, i)
			i++
		})
		snap.Results = append(snap.Results, res)
	}
	return snap
}
