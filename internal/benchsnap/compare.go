package benchsnap

import (
	"fmt"
)

// CheckOptions tunes Compare's regression thresholds.
type CheckOptions struct {
	// NsTolerance is the fractional ns/op growth that triggers a warning
	// (default 0.5 — wall clock on shared CI machines is noisy, so this only
	// ever warns).
	NsTolerance float64
	// AllocTolerance is the fractional allocs/op growth that triggers a hard
	// failure (default 0.1). Allocation counts are a property of the code,
	// not the machine, so they are held much tighter than wall clock.
	AllocTolerance float64
	// AllocSlack is an absolute allocs/op grace on top of AllocTolerance
	// (default 64), so near-zero baselines don't fail on a single extra
	// allocation of incidental variance.
	AllocSlack float64
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.NsTolerance <= 0 {
		o.NsTolerance = 0.5
	}
	if o.AllocTolerance <= 0 {
		o.AllocTolerance = 0.1
	}
	if o.AllocSlack <= 0 {
		o.AllocSlack = 64
	}
	return o
}

// Compare holds cur against base. Failures are regressions CI must reject:
// schema/suite mismatches, benchmarks that disappeared, and allocs/op growth
// beyond tolerance. Warnings are signals worth reading but too noisy to
// gate on: ns/op drift and benchmarks the baseline doesn't know yet.
func Compare(cur, base *Snapshot, o CheckOptions) (warnings, failures []string) {
	o = o.withDefaults()
	if base.Schema != cur.Schema {
		failures = append(failures, fmt.Sprintf(
			"schema mismatch: baseline v%d vs current v%d — regenerate the baseline with this benchsnap",
			base.Schema, cur.Schema))
		return warnings, failures
	}
	if base.Suite != cur.Suite {
		failures = append(failures, fmt.Sprintf("suite mismatch: baseline %q vs current %q", base.Suite, cur.Suite))
		return warnings, failures
	}
	curByName := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	for _, b := range base.Results {
		c, ok := curByName[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("benchmark %q in baseline but not measured", b.Name))
			continue
		}
		if limit := b.AllocsPerOp*(1+o.AllocTolerance) + o.AllocSlack; c.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %.0f exceeds baseline %.0f (+%.0f%% + %.0f slack = %.0f)",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, o.AllocTolerance*100, o.AllocSlack, limit))
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+o.NsTolerance) {
			warnings = append(warnings, fmt.Sprintf(
				"%s: ns/op %.0f is %.1fx baseline %.0f (wall clock; not gating)",
				b.Name, c.NsPerOp, c.NsPerOp/b.NsPerOp, b.NsPerOp))
		}
	}
	baseNames := make(map[string]bool, len(base.Results))
	for _, b := range base.Results {
		baseNames[b.Name] = true
	}
	for _, c := range cur.Results {
		if !baseNames[c.Name] {
			warnings = append(warnings, fmt.Sprintf("benchmark %q has no baseline yet (refresh the snapshot)", c.Name))
		}
	}
	return warnings, failures
}
