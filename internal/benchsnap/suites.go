package benchsnap

import (
	"fmt"
	"time"

	"racefuzzer/internal/bench"
	"racefuzzer/internal/core"
	"racefuzzer/internal/sched"
	"racefuzzer/internal/schedprof"
)

// SuiteOptions parameterizes a suite run.
type SuiteOptions struct {
	// Seed is the base seed for every measured execution (default 12345 —
	// the repository's experiment seed).
	Seed int64
	// Benchtime is the minimum timed span per measurement (default 200ms).
	Benchtime time.Duration
	// Note is carried verbatim into the snapshot.
	Note string
}

func (o SuiteOptions) withDefaults() SuiteOptions {
	if o.Seed == 0 {
		o.Seed = 12345
	}
	if o.Benchtime <= 0 {
		o.Benchtime = 200 * time.Millisecond
	}
	return o
}

// Suites names the suites cmd/benchsnap can run.
func Suites() []string { return []string{"sched", "parallel", "fleetspan"} }

// RunSuite dispatches by suite name. The returned timeline (may be nil) is
// a Perfetto-exportable sample trial for CI failure artifacts.
func RunSuite(suite string, o SuiteOptions) (*Snapshot, *schedprof.Timeline, error) {
	switch suite {
	case "sched":
		s, tl := SchedSuite(o)
		return s, tl, nil
	case "parallel":
		return ParallelSuite(o), nil, nil
	case "fleetspan":
		return FleetspanSuite(o), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown suite %q (have %v)", suite, Suites())
	}
}

// schedWorkloads are the grant-loop micro-workloads (bench/micro.go): one
// enabled thread, two alternating, and a wide fan-out. Step counts differ
// per shape, so each result also reports steps/op and ns/step.
var schedWorkloads = []struct {
	name string
	prog func() bench.Program
}{
	{"grant_serial/ops=256", func() bench.Program { return bench.GrantSerial(256) }},
	{"grant_ping/rounds=64", func() bench.Program { return bench.GrantPing(64) }},
	{"grant_fanout/threads=8,ops=16", func() bench.Program { return bench.GrantFanout(8, 16) }},
}

// SchedSuite measures the scheduler substrate: the grant-loop micros with
// profiling off (the product configuration), the serial micro again with a
// schedprof trial attached (so the probes' cost is itself a tracked number),
// and a profiled pass over every workload that yields the per-op-kind
// wait/service latency quantiles. The returned timeline is one profiled
// fan-out trial, exportable as a Perfetto trace.
func SchedSuite(o SuiteOptions) (*Snapshot, *schedprof.Timeline) {
	o = o.withDefaults()
	snap := &Snapshot{
		Schema: SchemaVersion,
		Suite:  "sched",
		Description: "Scheduler grant-loop micro-benchmarks (bench/micro.go workloads) " +
			"with per-op-kind latency quantiles from a schedprof-profiled pass. " +
			"allocs_per_op regressions are hard CI failures; ns_per_op drift warns.",
		Benchtime: o.Benchtime.String(),
		Note:      o.Note,
	}

	for _, w := range schedWorkloads {
		w := w
		var steps int
		var i int64
		res := Measure(w.name, o.Benchtime, func() {
			r := sched.Run(w.prog(), sched.Config{Seed: o.Seed + i, Policy: sched.NewRandomPolicy()})
			steps = r.Steps
			i++
		})
		res.Metrics = map[string]float64{
			"steps_per_op": float64(steps),
			"ns_per_step":  res.NsPerOp / float64(steps),
		}
		snap.Results = append(snap.Results, res)
	}

	// The steady-state pooled trial: program and policy are built once and
	// millions of runs recycle one scheduler tree through the pool, the way
	// a fuzzing campaign's inner loop does. After warmup the engine itself
	// allocates nothing per round; what remains per run is the Result, the
	// model program's own fork-body closures, and goroutine start — so this
	// number is the floor the per-construction workloads above sit on.
	{
		prog := bench.GrantSerial(256)
		pol := sched.NewRandomPolicy()
		var steps int
		var i int64
		for ; i < 16; i++ { // warm the pool and the stmt caches
			sched.Run(prog, sched.Config{Seed: o.Seed + i, Policy: pol})
		}
		res := Measure("grant_serial_steady/ops=256", o.Benchtime, func() {
			r := sched.Run(prog, sched.Config{Seed: o.Seed + i, Policy: pol})
			steps = r.Steps
			i++
		})
		res.Metrics = map[string]float64{
			"steps_per_op": float64(steps),
			"ns_per_step":  res.NsPerOp / float64(steps),
		}
		snap.Results = append(snap.Results, res)
	}

	// The serial micro with profiling on: the delta against grant_serial is
	// the whole probe cost, tracked release over release. A collector-backed
	// trial is reused through the pool exactly as campaigns use it.
	prof := schedprof.NewCollector()
	{
		var steps int
		var i int64
		res := Measure("grant_serial_profiled/ops=256", o.Benchtime, func() {
			tr := prof.StartTrial("benchsnap", o.Seed+i)
			r := sched.Run(bench.GrantSerial(256), sched.Config{
				Seed: o.Seed + i, Policy: sched.NewRandomPolicy(), Prof: tr,
			})
			prof.FinishTrial(tr)
			steps = r.Steps
			i++
		})
		res.Metrics = map[string]float64{
			"steps_per_op": float64(steps),
			"ns_per_step":  res.NsPerOp / float64(steps),
		}
		snap.Results = append(snap.Results, res)
	}

	// Latency quantiles: a fixed profiled pass over every workload shape
	// (fresh collector so the measurement loop above doesn't skew counts).
	lat := schedprof.NewCollector()
	const latTrials = 20
	var timeline *schedprof.Timeline
	for _, w := range schedWorkloads {
		for i := 0; i < latTrials; i++ {
			tr := lat.StartTrial(w.name, o.Seed+int64(i))
			sched.Run(w.prog(), sched.Config{Seed: o.Seed + int64(i), Policy: sched.NewRandomPolicy(), Prof: tr})
			if timeline == nil && w.name == schedWorkloads[len(schedWorkloads)-1].name {
				timeline = tr.Timeline()
			}
			lat.FinishTrial(tr)
		}
	}
	sum := lat.Summary()
	snap.SchedSummary = &sum
	return snap, timeline
}

// ParallelSuite measures the full two-phase pipeline on jigsaw (the
// registry's widest phase-2 grid) at increasing campaign-executor widths —
// the benchsnap form of BenchmarkAnalyzeParallel, with allocs/op tracked.
// Reports are bit-identical at every width; only wall-clock and the pool's
// allocation overhead change.
func ParallelSuite(o SuiteOptions) *Snapshot {
	o = o.withDefaults()
	bm := bench.MustByName("jigsaw")
	snap := &Snapshot{
		Schema: SchemaVersion,
		Suite:  "parallel",
		Description: "Full two-phase pipeline on the jigsaw model (phase-2 grid x 50 trials) " +
			"at increasing campaign-executor widths. Reports are bit-identical at every " +
			"width (TestParallelDeterminismRace); only wall-clock may change.",
		Benchtime:      o.Benchtime.String(),
		Note:           o.Note,
		SpeedupVsWidth: map[string]float64{},
	}
	widths := []struct {
		name string
		w    int
	}{{"workers=1", 1}, {"workers=2", 2}, {"workers=numcpu", -1}}
	var seqNs float64
	for _, cfg := range widths {
		cfg := cfg
		real := 0
		res := Measure(cfg.name, o.Benchtime, func() {
			rep := core.Analyze(bm.New(), core.Options{
				Seed:         o.Seed,
				Phase1Trials: bm.Phase1Trials,
				Phase2Trials: 50,
				MaxSteps:     bm.MaxSteps,
				Workers:      cfg.w,
			})
			real = rep.RealCount()
		})
		res.Metrics = map[string]float64{"real_races": float64(real)}
		snap.Results = append(snap.Results, res)
		if cfg.w == 1 {
			seqNs = res.NsPerOp
		} else if res.NsPerOp > 0 {
			snap.SpeedupVsWidth[cfg.name] = roundTo(seqNs/res.NsPerOp, 2)
		}
	}
	return snap
}

func roundTo(v float64, digits int) float64 {
	scale := 1.0
	for i := 0; i < digits; i++ {
		scale *= 10
	}
	return float64(int64(v*scale+0.5)) / scale
}
